(* Verified collections: the vstd-style lemma libraries.

   Verus ships vstd, a standard library of specifications and broadcast
   lemmas for Seq/Map/Set that user proofs lean on.  This repository's
   analogues are Vstd_seq (stated in VIR, verified through the full
   pipeline) and Vstd_map / Vstd_set (stated over curated theory axioms and
   discharged directly by the solver).  This example proves all three
   libraries push-button and then shows the axioms catching a wrong claim.

     dune exec examples/verified_collections.exe                          *)

let banner title = Printf.printf "\n== %s ==\n" title

let () =
  banner "vstd::seq — 15 lemmas through the full VIR pipeline";
  let r = Verus.Vstd_seq.verify () in
  List.iter
    (fun (fnr : Verus.Driver.fn_result) ->
      Printf.printf "   %-28s %s  (%.2fs)\n" fnr.Verus.Driver.fnr_name
        (if fnr.Verus.Driver.fnr_ok then "proved" else "FAILED")
        fnr.Verus.Driver.fnr_time_s)
    r.Verus.Driver.pr_fns;
  Printf.printf "   => %s\n" (if r.Verus.Driver.pr_ok then "all proved" else "FAILURES");

  banner "vstd::map — read-over-write, domains, cardinality";
  let obs = Verus.Vstd_map.run () in
  List.iter
    (fun (o : Verus.Vstd_map.obligation) ->
      Printf.printf "   %-64s %s  (%.2fs)\n" o.Verus.Vstd_map.name
        (if o.Verus.Vstd_map.proved then "proved" else "FAILED " ^ o.Verus.Vstd_map.detail)
        o.Verus.Vstd_map.time_s)
    obs;

  banner "vstd::set — boolean algebra, Skolem-witness subset, cardinality";
  let obs = Verus.Vstd_set.run () in
  List.iter
    (fun (o : Verus.Vstd_set.obligation) ->
      Printf.printf "   %-64s %s  (%.2fs)\n" o.Verus.Vstd_set.name
        (if o.Verus.Vstd_set.proved then "proved" else "FAILED " ^ o.Verus.Vstd_set.detail)
        o.Verus.Vstd_set.time_s)
    obs;

  banner "a wrong claim is refuted, not waved through";
  let module T = Smt.Term in
  let module Vm = Verus.Vstd_map in
  let m = T.const (T.Sym.declare "ex.m" [] Vm.map_sort) in
  let k = T.const (T.Sym.declare "ex.k" [] Smt.Sort.Int) in
  (* store(m, k, 3)[k] == 4 has a countermodel. *)
  let r =
    Smt.Solver.check_valid ~hyps:Vm.axioms
      (T.eq (Vm.sel (Vm.store m k (T.int_of 3)) k) (T.int_of 4))
  in
  Printf.printf "   store(m,k,3)[k] == 4 : %s\n"
    (match r.Smt.Solver.answer with
    | Smt.Solver.Sat -> "refuted (countermodel found)"
    | Smt.Solver.Unsat -> "BUG: proved"
    | Smt.Solver.Unknown _ ->
      (* With quantified axioms around, saturation without refutation is
         the honest verdict; the candidate model is the countermodel. *)
      "not provable (instantiation saturated with a candidate countermodel)")
