(* Quickstart: the paper's Figure 2 experience end to end.

   We take the singly linked list program (push/pop/index with
   requires/ensures against a Seq view — the Figure 2 example), verify it
   under the Verus profile, demonstrate a broken variant failing with a
   counterexample-ish diagnosis, and run the same program concretely
   through the interpreter with dynamic contract checking.

     dune exec examples/quickstart.exe                                    *)

let () =
  print_endline "== Verus-OCaml quickstart ==";
  print_endline "";
  print_endline "1. Verifying the singly linked list (Figure 2's pop, plus push/index):";
  let prog = Verus.Bench_programs.singly_linked in
  let r = Verus.Driver.verify_program Verus.Profiles.verus prog in
  List.iter
    (fun (fnr : Verus.Driver.fn_result) ->
      Printf.printf "   %-14s %-4s  %d obligations, %.2fs\n" fnr.Verus.Driver.fnr_name
        (if fnr.Verus.Driver.fnr_ok then "OK" else "FAIL")
        (List.length fnr.Verus.Driver.fnr_vcs)
        fnr.Verus.Driver.fnr_time_s)
    r.Verus.Driver.pr_fns;
  Printf.printf "   => %s in %.2fs (%d bytes of SMT queries)\n\n"
    (if r.Verus.Driver.pr_ok then "VERIFIED" else "FAILED")
    r.Verus.Driver.pr_time_s r.Verus.Driver.pr_bytes;

  print_endline "2. Breaking pop's precondition (the Figure 8 experiment):";
  let broken = Verus.Driver.verify_program Verus.Profiles.verus Verus.Bench_programs.break_pop in
  (match Verus.Driver.first_failure broken with
  | Some (fn, vc, code) -> Printf.printf "   as expected, unprovable: %s (%s, %s)\n\n" vc fn code
  | None -> print_endline "   unexpected: still verified?!");

  print_endline "3. Running the same program concretely (contracts checked at runtime):";
  let open Verus.Interp in
  let nil = VData ("Nil", []) in
  let l = ref nil in
  let push x =
    let _, muts = run_fn prog "push_front" [ !l; VInt (Vbase.Bigint.of_int x) ] in
    l := List.assoc "self" muts
  in
  List.iter push [ 30; 20; 10 ];
  Printf.printf "   after pushes: %s\n" (value_to_string !l);
  let res, muts = run_fn prog "pop_front" [ !l ] in
  l := List.assoc "self" muts;
  Printf.printf "   pop_front returned %s; index(1) = %s\n"
    (value_to_string (Option.get res))
    (value_to_string
       (Option.get (fst (run_fn prog "list_index" [ !l; VInt (Vbase.Bigint.of_int 1) ]))));
  print_endline "";
  print_endline "Done.  See DESIGN.md for the system inventory and bench/ for the paper's tables."
