(* The paper's Figure 4: a VerusSync machine keeping two values in
   agreement, its machine-checked obligations, and the generated token API
   exercised from two domains.

     dune exec examples/agreement.exe                                     *)

module T = Smt.Term
module S = Smt.Sort
open Verus.Vsync

let machine =
  {
    m_name = "agree";
    m_fields =
      [
        { f_name = "a"; f_strategy = Variable; f_sort = S.Int; f_key_sort = None };
        { f_name = "b"; f_strategy = Variable; f_sort = S.Int; f_key_sort = None };
      ];
    m_init =
      (fun s -> T.and_ [ T.eq (s.get "a") (T.int_of 0); T.eq (s.get "b") (T.int_of 0) ]);
    m_transitions =
      [
        {
          t_name = "update";
          t_params = [ ("val", S.Int) ];
          t_actions =
            [
              Update ("a", fun (_, params) -> List.nth params 0);
              Update ("b", fun (_, params) -> List.nth params 0);
            ];
        };
      ];
    m_invariant = (fun s -> T.eq (s.get "a") (s.get "b"));
    m_properties = [ ("agreement", fun s -> T.eq (s.get "a") (s.get "b")) ];
  }

let () =
  print_endline "== Figure 4: the agreement protocol in VerusSync ==";
  print_endline "";
  print_endline "Checking well-formedness obligations (inductive invariant etc.):";
  let report = check machine in
  List.iter
    (fun o ->
      Printf.printf "   %-45s %s\n" o.ob_name
        (match o.ob_answer with
        | Smt.Solver.Unsat -> "proved"
        | Smt.Solver.Sat -> "REFUTED"
        | Smt.Solver.Unknown m -> "unknown: " ^ m))
    report.obligations;
  Printf.printf "   machine %s\n\n" (if report.ok then "well-formed" else "ILL-FORMED");

  print_endline "Driving the generated token API (both shards needed to update):";
  let inst = Runtime.create machine ~init:[ ("a", `Var 0); ("b", `Var 0) ] in
  let shards = Runtime.shards_of inst in
  let sa = List.find (function Runtime.S_var ("a", _) -> true | _ -> false) shards in
  let sb = List.find (function Runtime.S_var ("b", _) -> true | _ -> false) shards in
  let produced = Runtime.step inst ~transition_name:"update" ~params:[ 7 ] ~consume:[ sa; sb ] in
  List.iter
    (function
      | Runtime.S_var (f, v) -> Printf.printf "   new shard: %s = %d\n" f v
      | _ -> ())
    produced;
  print_endline "   (the agreement property held at every step — checked dynamically)";
  print_endline "";
  print_endline "Updating with only one shard is rejected:";
  (try ignore (Runtime.step inst ~transition_name:"update" ~params:[ 9 ] ~consume:[ sa ])
   with Runtime.Protocol_violation msg -> Printf.printf "   Protocol_violation: %s\n" msg);

  print_endline "";
  print_endline "Refinement: the two-shard machine refines a single atomic cell:";
  let cell_spec =
    {
      sp_name = "atomic-cell";
      sp_fields = [ ("v", S.Int) ];
      sp_init = (fun v -> T.eq (v "v") (T.int_of 0));
      sp_steps =
        [
          ( "write",
            fun _pre post params -> T.eq (post "v") (List.nth params 0) );
        ];
    }
  in
  let refinement =
    {
      r_spec = cell_spec;
      r_abs = (fun s f -> match f with "v" -> s.get "a" | _ -> invalid_arg f);
      r_map = [ ("update", Some "write") ];
    }
  in
  let rr = check_refinement machine refinement in
  List.iter
    (fun o ->
      Printf.printf "   %-45s %s\n" o.ob_name
        (match o.ob_answer with
        | Smt.Solver.Unsat -> "proved"
        | Smt.Solver.Sat -> "REFUTED"
        | Smt.Solver.Unknown m -> "unknown: " ^ m))
    rr.obligations;
  Printf.printf "   %s\n" (if rr.ok then "refinement holds" else "REFINEMENT FAILS")
