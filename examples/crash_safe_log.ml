(* Persistent-log demo (§4.2.5): crash-atomic appends on simulated
   persistent memory, recovery after a crash, CRC detection of metadata
   corruption, and an atomic multi-log append.

     dune exec examples/crash_safe_log.exe                                *)

module P = Plog.Pmem
module L = Plog.Log

let () =
  print_endline "== Crash-safe persistent log ==";
  print_endline "";
  let len = 4096 + L.header_bytes in
  let mem = P.create ~size:len () in
  L.format mem ~base:0 ~len;
  let log = Result.get_ok (L.attach mem ~base:0 ~len) in
  List.iter
    (fun s -> ignore (L.append log s))
    [ "put k1=v1;"; "put k2=v2;"; "del k1;" ];
  Printf.printf "appended 3 records; head=%d tail=%d\n" (L.head log) (L.tail log);

  print_endline "writing a 4th record's data but crashing before its commit flush...";
  P.write mem ~addr:(L.header_bytes + L.tail log) "TORN APPEND";
  P.crash mem;
  (match L.attach mem ~base:0 ~len with
  | Ok l ->
    Printf.printf "recovered: head=%d tail=%d contents=%S\n" (L.head l) (L.tail l)
      (Result.get_ok (L.read l ~offset:0 ~len:(L.tail l)))
  | Error e -> Printf.printf "recovery failed: %s\n" e);

  print_endline "";
  print_endline "flipping a bit in both header slots (media corruption):";
  P.flip_bit mem ~addr:2 ~bit:4;
  P.flip_bit mem ~addr:34 ~bit:4;
  (match L.attach mem ~base:0 ~len with
  | Ok _ -> print_endline "   !! corrupt metadata went undetected"
  | Error e -> Printf.printf "   CRC caught it: %s\n" e);

  print_endline "";
  print_endline "atomic multi-log append (3 logs, one commit point):";
  let mem2 = P.create ~size:65536 () in
  Plog.Multilog.format mem2 ~base:0 ~log_len:1024 ~logs:3;
  let ml = Result.get_ok (Plog.Multilog.attach mem2 ~base:0 ~log_len:1024 ~logs:3) in
  ignore (Plog.Multilog.append_all ml [ "meta"; "data-block"; "index" ]);
  Printf.printf "   tails after atomic append: %s\n"
    (String.concat ", " (List.map string_of_int (Plog.Multilog.tails ml)));
  ignore (Plog.Multilog.append_all ml [ "m2"; "d2"; "i2" ]);
  P.crash mem2;
  let ml2 = Result.get_ok (Plog.Multilog.attach mem2 ~base:0 ~log_len:1024 ~logs:3) in
  Printf.printf "   tails after crash+recovery: %s (both appends committed)\n"
    (String.concat ", " (List.map string_of_int (Plog.Multilog.tails ml2)))
