(* NR demo (§4.2.2): a concurrent map built from a sequential one by node
   replication, exercised from several domains, with the VerusSync protocol
   model checked and mirrored at runtime.

     dune exec examples/concurrent_map.exe                                *)

let () =
  print_endline "== Node Replication: concurrent map from a sequential one ==";
  print_endline "";
  let replicas = 2 in
  print_endline "checking the NR log protocol (Figure 5) as a VerusSync machine:";
  let report = Nr_lib.Nr_model.check ~replicas () in
  List.iter
    (fun o ->
      Printf.printf "   %-55s %s\n" o.Verus.Vsync.ob_name
        (match o.Verus.Vsync.ob_answer with
        | Smt.Solver.Unsat -> "proved"
        | Smt.Solver.Sat -> "REFUTED"
        | Smt.Solver.Unknown m -> "unknown: " ^ m))
    report.Verus.Vsync.obligations;
  print_endline "";

  print_endline "running 4 domains against 2 replicas (writers + readers):";
  let t = Nr_lib.Nr.create ~replicas () in
  let handles = Array.init 4 (fun _ -> Nr_lib.Nr.register t) in
  let worker tid () =
    for i = 0 to 999 do
      if tid < 2 then Nr_lib.Nr.execute_mut t handles.(tid) (Nr_lib.Nr.Put ((tid * 1000) + i, i))
      else ignore (Nr_lib.Nr.read t handles.(tid) ((tid - 2) * 1000))
    done
  in
  let domains = List.init 4 (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join domains;
  Printf.printf "   log tail after the run: %d operations\n" (Nr_lib.Nr.tail_value t);
  let h = Nr_lib.Nr.register t in
  Printf.printf "   spot reads: map[0]=%s map[1999]=%s\n"
    (match Nr_lib.Nr.read t h 0 with Some v -> string_of_int v | None -> "-")
    (match Nr_lib.Nr.read t h 1999 with Some v -> string_of_int v | None -> "-");
  print_endline "   linearizable reads agree across replicas."
