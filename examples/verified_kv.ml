(* IronKV demo (§4.2.1): a three-host sharded key-value store over the
   in-memory network — sets, gets, range delegation — plus the EPR-mode
   proof of the delegation-map abstraction (Figure 3).

     dune exec examples/verified_kv.exe                                   *)

let () =
  print_endline "== IronKV: sharded key-value store ==";
  print_endline "";
  let hosts = 3 and client = 3 (* endpoint after the hosts *) in
  let net = Ironkv.Network.create ~endpoints:(hosts + 1) () in
  let h = Array.init hosts (fun id -> Ironkv.Host.create ~style:`Inplace ~id ~hosts ()) in
  let drain () =
    let progress = ref true in
    while !progress do
      progress := false;
      Array.iteri
        (fun i host ->
          match Ironkv.Network.recv net ~me:i with
          | Some raw ->
            Ironkv.Host.handle host net raw;
            progress := true
          | None -> ())
        h
    done
  in
  let seq = ref 0 in
  let request msg =
    incr seq;
    Ironkv.Network.send net ~dst:0 (Ironkv.Message.to_bytes msg);
    drain ();
    match Ironkv.Network.recv net ~me:client with
    | Some raw -> Ironkv.Message.of_bytes raw
    | None -> None
  in
  (* Shard the keyspace: [0,100) stays on host 0, [100,200) -> 1, rest -> 2. *)
  Ironkv.Host.delegate h.(0) net ~lo:100 ~hi:200 ~dest:1;
  Ironkv.Host.delegate h.(0) net ~lo:200 ~hi:Ironkv.Delegation_map.max_key ~dest:2;
  drain ();
  Printf.printf "delegated; host pivots: %s\n"
    (String.concat " "
       (List.map (fun (k, host) -> Printf.sprintf "[%d->h%d]" k host)
          (List.init 3 (fun i -> (i * 100, i)))));
  List.iter
    (fun (k, v) ->
      match request (Ironkv.Message.Set { client; seq = !seq + 1; key = k; value = v }) with
      | Some (Ironkv.Message.Reply _) -> Printf.printf "set %d := %-8s (routed+forwarded ok)\n" k v
      | _ -> Printf.printf "set %d failed\n" k)
    [ (42, "alpha"); (150, "beta"); (950, "gamma") ];
  List.iter
    (fun k ->
      match request (Ironkv.Message.Get { client; seq = !seq + 1; key = k }) with
      | Some (Ironkv.Message.Reply { value; _ }) ->
        Printf.printf "get %d = %s\n" k (Option.value ~default:"<none>" value)
      | _ -> Printf.printf "get %d failed\n" k)
    [ 42; 150; 950; 7777 ];
  Array.iteri (fun i host -> Printf.printf "host %d stores %d keys\n" i (Ironkv.Host.store_size host)) h;
  print_endline "";
  print_endline "EPR-mode proof of the delegation map abstraction (Figure 3):";
  let obs = Ironkv.Delegation_proof.run () in
  List.iter
    (fun (o : Ironkv.Delegation_proof.obligation) ->
      Printf.printf "   %-45s %s (%.3fs)\n" o.Ironkv.Delegation_proof.name
        (match o.Ironkv.Delegation_proof.answer with
        | Smt.Solver.Unsat -> "proved automatically"
        | Smt.Solver.Sat -> "REFUTED"
        | Smt.Solver.Unknown m -> "unknown: " ^ m)
        o.Ironkv.Delegation_proof.time_s)
    obs;
  Printf.printf "   (abstraction boilerplate: ~%d lines; the invariant check itself is push-button)\n"
    Ironkv.Delegation_proof.boilerplate_lines
