#!/bin/sh
# Repo health check: build everything, run the full test battery, run the
# Vlint static analyses over every bundled program in strict mode (Error
# or Warn findings fail), the fault-injection smoke check (IronKV
# crosscheck at 5% drop+dup, one torn-write log recovery), the profiler
# JSON smoke (verus_cli profile --json must emit a document that parses
# and validates against the verus-profile/1 schema), and — when odoc is
# installed — the API-doc build, warnings-as-errors.  This is the
# tree-must-stay-green gate:
#
#   scripts/check.sh
#
# Exit code 0 means every stage passed (the doc stage reports "skipped"
# on machines without odoc rather than failing).
set -eu

cd "$(dirname "$0")/.."

echo "== 1/6 build =="
dune build @all

echo "== 2/6 tests =="
dune runtest

echo "== 3/6 lint (strict) =="
dune build @lint

echo "== 4/6 fault smoke =="
dune build @faults

echo "== 5/6 profile JSON smoke =="
dune build @profile

echo "== 6/6 api docs =="
if command -v odoc >/dev/null 2>&1; then
  dune build @doc 2>doc-warnings.log || {
    cat doc-warnings.log
    rm -f doc-warnings.log
    exit 1
  }
  if [ -s doc-warnings.log ]; then
    echo "odoc warnings:"
    cat doc-warnings.log
    rm -f doc-warnings.log
    exit 1
  fi
  rm -f doc-warnings.log
  echo "docs built warning-clean"
else
  echo "odoc not installed; skipped (install odoc to enable)"
fi

echo "== all checks passed =="
