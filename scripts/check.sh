#!/bin/sh
# Repo health check: build everything, run the full test battery, run the
# Vlint static analyses over every bundled program in strict mode (Error
# or Warn findings fail), the fault-injection smoke check (IronKV
# crosscheck at 5% drop+dup, one torn-write log recovery), the profiler
# JSON smoke (verus_cli profile --json must emit a document that parses
# and validates against the verus-profile/2 schema), the verification-
# cache smoke (a cold run fills the store, a warm run serves 100% of the
# obligations from it with an identical result digest, counters are
# deterministic under jobs>1, and a corrupted store degrades to a cold
# run), the proof-certificate smoke (every bundled program verifies with
# certification on and every Unsat's certificate replays to Checked
# through the independent Vcheck kernel — one Rejected fails the gate),
# the durable-IronKV smoke (a seeded crash+partition storm over durable
# hosts with linearizability crosschecks and a no-acked-write-lost
# readback sweep, plus a recovery-time probe),
# the verification-daemon smoke (an in-process daemon serving two
# overlapping streaming clients whose digests must match in-process
# jobs=1 runs, a warm third client that must hit the shared cache, and
# the docs gate validating every fenced JSON example in
# docs/PROTOCOL.md against the verus-rpc/1 schema),
# the Vflow analyze smoke (every obligation the abstract-interpretation
# prescreen proves at rung 0 is independently re-proved by the SMT
# solver across the whole bundled suite — one disagreement fails —
# plus discharge and digest-stability pins),
# the Vladder escalation-ladder smoke (escalate-ladder runs must digest
# identically to monolithic runs across a program x profile suite, every
# recorded winning rung must reproduce its answer pinned standalone, the
# deprecated budget override must equal its single-rung ladder, and warm
# runs must jump to the recorded winning rung with zero wasted
# lower-rung attempts),
# and — when odoc is installed — the API-doc build,
# warnings-as-errors.  This is the tree-must-stay-green gate:
#
#   scripts/check.sh
#
# Exit code 0 means every stage passed (the doc stage reports "skipped"
# on machines without odoc rather than failing).
set -eu

cd "$(dirname "$0")/.."

echo "== 1/12 build =="
dune build @all

echo "== 2/12 tests =="
dune runtest

echo "== 3/12 lint (strict) =="
dune build @lint

echo "== 4/12 fault smoke =="
dune build @faults

echo "== 5/12 profile JSON smoke =="
dune build @profile

echo "== 6/12 cache smoke (cold/warm/corrupt) =="
dune build @cache

echo "== 7/12 api docs =="
if command -v odoc >/dev/null 2>&1; then
  dune build @doc 2>doc-warnings.log || {
    cat doc-warnings.log
    rm -f doc-warnings.log
    exit 1
  }
  if [ -s doc-warnings.log ]; then
    echo "odoc warnings:"
    cat doc-warnings.log
    rm -f doc-warnings.log
    exit 1
  fi
  rm -f doc-warnings.log
  echo "docs built warning-clean"
else
  echo "odoc not installed; skipped (install odoc to enable)"
fi

echo "== 8/12 certificate smoke (emit + kernel replay) =="
dune build @certify

echo "== 9/12 durable kv smoke (storm + recovery) =="
dune build @kv

echo "== 10/12 daemon smoke (scheduler + rpc + docs gate) =="
dune build @daemon

echo "== 11/12 analyze smoke (prescreen/SMT crosscheck) =="
dune build @analyze

echo "== 12/12 ladder smoke (escalation/monolithic digest parity + rung pins) =="
dune build @ladder

echo "== all checks passed =="
