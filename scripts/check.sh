#!/bin/sh
# Repo health check: build everything, run the full test battery, then run
# the Vlint static analyses over every bundled program in strict mode
# (Error or Warn findings fail).  This is the tree-must-stay-green gate:
#
#   scripts/check.sh
#
# Exit code 0 means all three stages passed.
set -eu

cd "$(dirname "$0")/.."

echo "== 1/3 build =="
dune build @all

echo "== 2/3 tests =="
dune runtest

echo "== 3/3 lint (strict) =="
dune build @lint

echo "== all checks passed =="
