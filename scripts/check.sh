#!/bin/sh
# Repo health check: build everything, run the full test battery, run the
# Vlint static analyses over every bundled program in strict mode (Error
# or Warn findings fail), then the fault-injection smoke check (IronKV
# crosscheck at 5% drop+dup, one torn-write log recovery).  This is the
# tree-must-stay-green gate:
#
#   scripts/check.sh
#
# Exit code 0 means all four stages passed.
set -eu

cd "$(dirname "$0")/.."

echo "== 1/4 build =="
dune build @all

echo "== 2/4 tests =="
dune runtest

echo "== 3/4 lint (strict) =="
dune build @lint

echo "== 4/4 fault smoke =="
dune build @faults

echo "== all checks passed =="
