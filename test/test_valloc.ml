(* Allocator case-study tests: size classes, non-aliasing, double-free
   detection, cross-thread frees, concurrent stress, and the VerusSync
   delayed-free protocol. *)

module A = Valloc.Alloc
module OS = Valloc.Os_mem

let mk ?(checked = true) ?(heaps = 2) () =
  let os = OS.create ~max_segments:256 () in
  (os, A.create ~checked ~heaps os)

let test_basic () =
  let _, a = mk () in
  let b1 = A.malloc a ~heap:0 100 in
  let b2 = A.malloc a ~heap:0 100 in
  Alcotest.(check bool) "distinct" true (b1 <> b2);
  Alcotest.(check int) "usable size" 128 (A.usable_size a b1);
  A.free a ~heap:0 b1;
  let b3 = A.malloc a ~heap:0 100 in
  Alcotest.(check int) "lifo reuse" b1 b3;
  (* Size limits, as in the paper's port. *)
  Alcotest.check_raises "too big" (Invalid_argument "Alloc: unsupported size") (fun () ->
      ignore (A.malloc a ~heap:0 (A.max_alloc + 1)));
  Alcotest.(check bool) "max ok" true (A.malloc a ~heap:0 A.max_alloc > 0)

let test_double_free () =
  let _, a = mk () in
  let b = A.malloc a ~heap:0 64 in
  A.free a ~heap:0 b;
  Alcotest.check_raises "double free" (A.Heap_corruption "double free") (fun () ->
      A.free a ~heap:0 b);
  (* Foreign pointer. *)
  (try
     A.free a ~heap:0 0xDEAD000;
     Alcotest.fail "expected corruption"
   with A.Heap_corruption _ -> ())

let test_cross_thread_free () =
  let _, a = mk () in
  (* Allocate on heap 0, free from heap 1 (delayed), then reallocate:
     block returns only after the owner collects. *)
  let b1 = A.malloc a ~heap:0 32 in
  A.free a ~heap:1 b1;
  (* Exhaust the page so malloc must collect the delayed list. *)
  let seen = ref false in
  (try
     for _ = 1 to 100_000 do
       let b = A.malloc a ~heap:0 32 in
       if b = b1 then begin
         seen := true;
         raise Exit
       end;
       ignore b
     done
   with Exit -> ());
  Alcotest.(check bool) "delayed block eventually reused" true !seen

let test_usable_size_classes () =
  let _, a = mk () in
  List.iter
    (fun (req, cls) ->
      let b = A.malloc a ~heap:0 req in
      Alcotest.(check int) (Printf.sprintf "class of %d" req) cls (A.usable_size a b))
    [ (1, 8); (8, 8); (9, 16); (100, 128); (1024, 1024); (1025, 2048); (65536, 65536) ]

let prop_aliasing =
  QCheck.Test.make ~name:"allocations never alias, contents survive" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      match Valloc.Workloads.crosscheck_aliasing ~ops:3000 ~seed () with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_report e)

let test_concurrent_stress () =
  let _, a = mk ~heaps:2 () in
  let errors = Atomic.make 0 in
  let worker tid () =
    try
      let rng = Vbase.Rng.create ~seed:(tid + 77) in
      let live = Array.make 64 (-1) in
      for _ = 1 to 5_000 do
        let slot = Vbase.Rng.int rng 64 in
        if live.(slot) >= 0 then begin
          (* Half the frees go through the wrong heap: delayed path. *)
          A.free a ~heap:(if Vbase.Rng.bool rng then tid mod 2 else (tid + 1) mod 2) live.(slot);
          live.(slot) <- -1
        end
        else live.(slot) <- A.malloc a ~heap:(tid mod 2) (8 + Vbase.Rng.int rng 500)
      done
    with _ -> Atomic.incr errors
  in
  let domains = List.init 4 (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join domains;
  Alcotest.(check int) "no corruption under concurrency" 0 (Atomic.get errors)

let test_vsync_model () =
  let report = Valloc.Alloc_model.check ~capacity:1024 () in
  List.iter
    (fun (o : Verus.Vsync.obligation_result) ->
      Alcotest.(check bool)
        o.Verus.Vsync.ob_name true
        (o.Verus.Vsync.ob_answer = Smt.Solver.Unsat))
    report.Verus.Vsync.obligations;
  Alcotest.(check bool) "ok" true report.Verus.Vsync.ok

let test_vsync_runtime_protocol () =
  let m = Valloc.Alloc_model.machine ~capacity:8 in
  let inst =
    Verus.Vsync.Runtime.create m
      ~init:[ ("capacity", `Var 8); ("live", `Map []); ("delayed", `Map []) ]
  in
  let produced =
    Verus.Vsync.Runtime.step inst ~transition_name:"malloc" ~params:[ 3 ] ~consume:[]
  in
  Alcotest.(check int) "one shard" 1 (List.length produced);
  (* Allocating the same block again violates the freshness requirement. *)
  (try
     ignore (Verus.Vsync.Runtime.step inst ~transition_name:"malloc" ~params:[ 3 ] ~consume:[]);
     Alcotest.fail "expected violation"
   with Verus.Vsync.Runtime.Protocol_violation _ -> ());
  (* Remote free then collect. *)
  let shard = List.hd produced in
  let produced2 =
    Verus.Vsync.Runtime.step inst ~transition_name:"free_remote" ~params:[ 3 ] ~consume:[ shard ]
  in
  Alcotest.(check int) "delayed shard" 1 (List.length produced2);
  ignore
    (Verus.Vsync.Runtime.step inst ~transition_name:"collect" ~params:[ 3 ]
       ~consume:produced2);
  (* Now the block can be allocated again. *)
  ignore (Verus.Vsync.Runtime.step inst ~transition_name:"malloc" ~params:[ 3 ] ~consume:[])

let test_mmap_oom_degrades () =
  (* Transient mmap failures: malloc_opt returns None instead of raising,
     recovers on the next (non-firing) attempt, and reclaims freed blocks
     rather than demanding fresh segments. *)
  let plan = Vbase.Faultplan.create ~seed:6 () in
  (* The first three mappings fail, then the OS recovers. *)
  Vbase.Faultplan.fire_at plan "mmap.oom" [ 1; 2; 3 ];
  let os = OS.create ~faults:plan ~max_segments:256 () in
  let a = A.create ~checked:true ~heaps:1 os in
  Alcotest.(check (option int)) "first carve refused" None (A.malloc_opt a ~heap:0 64);
  Alcotest.(check (option int)) "still refused" None (A.malloc_opt a ~heap:0 64);
  Alcotest.check_raises "raising API raises" (Failure "Alloc: out of memory") (fun () ->
      ignore (A.malloc a ~heap:0 64));
  Alcotest.(check int) "three refusals recorded" 3 (OS.oom_failures os);
  (* Pressure lifted: same allocator object now succeeds. *)
  (match A.malloc_opt a ~heap:0 64 with
  | None -> Alcotest.fail "allocation after recovery"
  | Some b ->
    A.free a ~heap:0 b;
    (* With a page carved, renewed OOM pressure is absorbed by the free
       list: no fresh mapping is needed. *)
    Vbase.Faultplan.fire_at plan "mmap.oom"
      (List.init 50 (fun i -> Vbase.Faultplan.step plan "mmap.oom" + i + 1));
    (match A.malloc_opt a ~heap:0 64 with
    | Some b' -> Alcotest.(check int) "reused freed block" b b'
    | None -> Alcotest.fail "free-list reuse must not need mmap"));
  Alcotest.(check int) "one segment mapped in total" 1 (OS.mapped_segments os)

let test_workloads_smoke () =
  (* Each workload runs to completion quickly at a small scale; timing is
     the bench harness's job. *)
  List.iter
    (fun name ->
      let t = Valloc.Workloads.run ~name { checked = true; heaps = 2; threads = 2 } in
      Alcotest.(check bool) (name ^ " runs") true (t >= 0.0))
    [ "cache-scratch1"; "glibc-simple" ]

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "valloc"
    [
      ( "alloc",
        [
          Alcotest.test_case "basics" `Quick test_basic;
          Alcotest.test_case "double free" `Quick test_double_free;
          Alcotest.test_case "cross-thread free" `Quick test_cross_thread_free;
          Alcotest.test_case "size classes" `Quick test_usable_size_classes;
          Alcotest.test_case "concurrent stress" `Quick test_concurrent_stress;
        ] );
      qsuite "alloc-props" [ prop_aliasing ];
      ( "vsync",
        [
          Alcotest.test_case "delayed-free machine" `Slow test_vsync_model;
          Alcotest.test_case "runtime protocol" `Quick test_vsync_runtime_protocol;
        ] );
      ("faults", [ Alcotest.test_case "mmap OOM degrades" `Quick test_mmap_oom_degrades ]);
      ("workloads", [ Alcotest.test_case "smoke" `Quick test_workloads_smoke ]);
    ]
