(* NR case-study tests: the VerusSync protocol model, the runtime token
   API, the concurrent implementation, and the two driven together. *)

module R = Verus.Vsync.Runtime

(* ------------------------------------------------------------------ *)
(* VerusSync machine obligations                                       *)
(* ------------------------------------------------------------------ *)

let test_model_obligations () =
  let report = Nr_lib.Nr_model.check ~replicas:3 () in
  List.iter
    (fun (o : Verus.Vsync.obligation_result) ->
      Alcotest.(check bool)
        o.Verus.Vsync.ob_name true
        (o.Verus.Vsync.ob_answer = Smt.Solver.Unsat))
    report.Verus.Vsync.obligations;
  Alcotest.(check bool) "machine ok" true report.Verus.Vsync.ok

(* A broken machine: combiner_finish without the lower-bound requirement
   would let versions exceed the tail... construct one where the invariant
   genuinely breaks: an append that moves the tail backwards. *)
let test_model_catches_bugs () =
  let m = Nr_lib.Nr_model.machine ~replicas:2 in
  let broken =
    {
      m with
      Verus.Vsync.m_transitions =
        [
          {
            Verus.Vsync.t_name = "bad_append";
            t_params = [ ("n", Smt.Sort.Int) ];
            t_actions =
              [
                Verus.Vsync.Update
                  ( "tail",
                    fun (s, params) ->
                      Smt.Term.sub (s.Verus.Vsync.get "tail") (List.nth params 0) );
              ];
          };
        ];
    }
  in
  let report = Verus.Vsync.check broken in
  Alcotest.(check bool) "bug caught" false report.Verus.Vsync.ok

(* Refinement to the atomic log spec (§3.4 soundness story). *)
let test_model_refinement () =
  let report = Nr_lib.Nr_model.check_refinement ~replicas:3 () in
  List.iter
    (fun (o : Verus.Vsync.obligation_result) ->
      Alcotest.(check bool)
        o.Verus.Vsync.ob_name true
        (o.Verus.Vsync.ob_answer = Smt.Solver.Unsat))
    report.Verus.Vsync.obligations;
  Alcotest.(check bool) "refines" true report.Verus.Vsync.ok;
  Alcotest.(check int) "init + one per transition" 4
    (List.length report.Verus.Vsync.obligations)

let test_model_refinement_catches_bugs () =
  (* Claiming append is a stutter must be refuted: the abstraction (the
     tail) visibly changes. *)
  let m = Nr_lib.Nr_model.machine ~replicas:2 in
  let bad_map =
    {
      Nr_lib.Nr_model.refinement with
      Verus.Vsync.r_map =
        [ ("append", None); ("combiner_start", None); ("combiner_finish", None) ];
    }
  in
  let report = Verus.Vsync.check_refinement m bad_map in
  Alcotest.(check bool) "false stutter caught" false report.Verus.Vsync.ok;
  (* An unmapped transition is a usage error, not a proof failure. *)
  Alcotest.check_raises "unmapped transition"
    (Invalid_argument "VerusSync refinement: transition append has no spec mapping")
    (fun () ->
      ignore (Verus.Vsync.check_refinement m { bad_map with Verus.Vsync.r_map = [] }))

(* ------------------------------------------------------------------ *)
(* Runtime token API                                                   *)
(* ------------------------------------------------------------------ *)

let find_var_shard name shards =
  List.find (function R.S_var (n, _) -> n = name | _ -> false) shards

let find_map_shard name key shards =
  List.find (function R.S_map (n, k, _) -> n = name && k = key | _ -> false) shards

let test_runtime_protocol () =
  let inst, shards = Nr_lib.Nr_model.make_runtime ~replicas:2 ~log_size:16 in
  let tail = find_var_shard "tail" shards in
  (* append 3 slots *)
  let produced = R.step inst ~transition_name:"append" ~params:[ 3 ] ~consume:[ tail ] in
  let tail = find_var_shard "tail" produced in
  (match tail with
  | R.S_var (_, v) -> Alcotest.(check int) "tail" 3 v
  | _ -> Alcotest.fail "no tail shard");
  (* combiner_start for replica 0 targeting 3 *)
  let comb0 = find_map_shard "combiner" 0 shards in
  let lv0 = find_map_shard "local_versions" 0 shards in
  let produced2 =
    R.step inst ~transition_name:"combiner_start" ~params:[ 0; 3 ] ~consume:[ comb0 ]
  in
  let comb0' = find_map_shard "combiner" 0 produced2 in
  (* combiner_finish publishes version 3 *)
  let produced3 =
    R.step inst ~transition_name:"combiner_finish" ~params:[ 0 ] ~consume:[ comb0'; lv0 ]
  in
  (match find_map_shard "local_versions" 0 produced3 with
  | R.S_map (_, _, v) -> Alcotest.(check int) "version" 3 v
  | _ -> Alcotest.fail "no version shard");
  Alcotest.(check int) "steps" 3 (R.steps_taken inst)

let test_runtime_violations () =
  let inst, shards = Nr_lib.Nr_model.make_runtime ~replicas:2 ~log_size:16 in
  let tail = find_var_shard "tail" shards in
  let comb0 = find_map_shard "combiner" 0 shards in
  (* append with n = 0 violates the enabling condition *)
  Alcotest.check_raises "append 0" (R.Protocol_violation "append: enabling condition failed")
    (fun () -> ignore (R.step inst ~transition_name:"append" ~params:[ 0 ] ~consume:[ tail ]));
  (* combiner_start beyond the tail *)
  Alcotest.check_raises "start beyond tail"
    (R.Protocol_violation "combiner_start: enabling condition failed") (fun () ->
      ignore (R.step inst ~transition_name:"combiner_start" ~params:[ 0; 5 ] ~consume:[ comb0 ]));
  (* missing shard *)
  (try
     ignore (R.step inst ~transition_name:"combiner_start" ~params:[ 0; 0 ] ~consume:[]);
     Alcotest.fail "expected violation"
   with R.Protocol_violation _ -> ());
  (* finish while idle *)
  (try
     ignore
       (R.step inst ~transition_name:"combiner_finish" ~params:[ 1 ]
          ~consume:[ find_map_shard "combiner" 1 shards; find_map_shard "local_versions" 1 shards ]);
     Alcotest.fail "expected violation"
   with R.Protocol_violation _ -> ())

(* Randomized differential drive of the token API: a model of the protocol
   in plain OCaml picks legal (and occasionally illegal) transitions; the
   runtime must accept exactly the legal ones and agree with the model on
   the aggregate state throughout. *)
let prop_runtime_vs_model =
  QCheck.Test.make ~name:"token runtime agrees with protocol model" ~count:60
    QCheck.(pair small_nat (int_range 10 60))
    (fun (seed, steps) ->
      let replicas = 2 in
      let inst, shards0 = Nr_lib.Nr_model.make_runtime ~replicas ~log_size:(1 lsl 20) in
      let rng = Vbase.Rng.create ~seed in
      (* Mutable shard inventory + model state. *)
      let tail_shard = ref (find_var_shard "tail" shards0) in
      let comb = Array.init replicas (fun r -> ref (find_map_shard "combiner" r shards0)) in
      let lv = Array.init replicas (fun r -> ref (find_map_shard "local_versions" r shards0)) in
      let m_tail = ref 0 in
      let m_comb = Array.make replicas (-1) in
      let m_lv = Array.make replicas 0 in
      let ok = ref true in
      for _ = 1 to steps do
        if !ok then
          match Vbase.Rng.int rng 4 with
          | 0 ->
            (* append: legal for n >= 1. *)
            let n = 1 + Vbase.Rng.int rng 5 in
            let produced =
              R.step inst ~transition_name:"append" ~params:[ n ] ~consume:[ !tail_shard ]
            in
            m_tail := !m_tail + n;
            tail_shard := find_var_shard "tail" produced;
            (match !tail_shard with
            | R.S_var (_, v) -> if v <> !m_tail then ok := false
            | _ -> ok := false)
          | 1 ->
            (* combiner_start, only when idle in the model. *)
            let r = Vbase.Rng.int rng replicas in
            if m_comb.(r) = -1 then begin
              let t0 = m_lv.(r) + Vbase.Rng.int rng (!m_tail - m_lv.(r) + 1) in
              let produced =
                R.step inst ~transition_name:"combiner_start" ~params:[ r; t0 ]
                  ~consume:[ !(comb.(r)) ]
              in
              m_comb.(r) <- t0;
              comb.(r) := find_map_shard "combiner" r produced
            end
          | 2 ->
            (* combiner_finish, only when active in the model. *)
            let r = Vbase.Rng.int rng replicas in
            if m_comb.(r) >= 0 then begin
              let produced =
                R.step inst ~transition_name:"combiner_finish" ~params:[ r ]
                  ~consume:[ !(comb.(r)); !(lv.(r)) ]
              in
              m_lv.(r) <- m_comb.(r);
              m_comb.(r) <- -1;
              comb.(r) := find_map_shard "combiner" r produced;
              lv.(r) := find_map_shard "local_versions" r produced;
              match !(lv.(r)) with
              | R.S_map (_, _, v) -> if v <> m_lv.(r) then ok := false
              | _ -> ok := false
            end
          | _ -> (
            (* An illegal move must raise and leave the state unchanged. *)
            let before = R.steps_taken inst in
            try
              ignore
                (R.step inst ~transition_name:"append" ~params:[ 0 ] ~consume:[ !tail_shard ]);
              ok := false
            with R.Protocol_violation _ -> if R.steps_taken inst <> before then ok := false)
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* NR implementation                                                   *)
(* ------------------------------------------------------------------ *)

let test_nr_sequential () =
  let t = Nr_lib.Nr.create ~replicas:2 () in
  let h = Nr_lib.Nr.register t in
  let model = Hashtbl.create 64 in
  let rng = Vbase.Rng.create ~seed:3 in
  for _ = 1 to 2000 do
    let key = Vbase.Rng.int rng 100 in
    if Vbase.Rng.int rng 100 < 40 then begin
      let v = Vbase.Rng.int rng 1000 in
      Hashtbl.replace model key v;
      Nr_lib.Nr.execute_mut t h (Nr_lib.Nr.Put (key, v))
    end
    else if Vbase.Rng.int rng 100 < 10 then begin
      Hashtbl.remove model key;
      Nr_lib.Nr.execute_mut t h (Nr_lib.Nr.Del key)
    end
    else
      Alcotest.(check (option int))
        "read" (Hashtbl.find_opt model key)
        (Nr_lib.Nr.read t h key)
  done

let test_nr_two_handles () =
  (* Ops through one handle are visible through another (linearizable
     reads sync to the tail). *)
  let t = Nr_lib.Nr.create ~replicas:2 () in
  let h1 = Nr_lib.Nr.register t in
  let h2 = Nr_lib.Nr.register t in
  Nr_lib.Nr.execute_mut t h1 (Nr_lib.Nr.Put (1, 42));
  Alcotest.(check (option int)) "cross-replica read" (Some 42) (Nr_lib.Nr.read t h2 1)

let test_nr_log_wraparound () =
  (* More writes than log slots force GC and wrap-around. *)
  let t = Nr_lib.Nr.create ~log_size:8 ~replicas:2 () in
  let h1 = Nr_lib.Nr.register t in
  let h2 = Nr_lib.Nr.register t in
  for i = 1 to 100 do
    Nr_lib.Nr.execute_mut t h1 (Nr_lib.Nr.Put (i mod 5, i))
  done;
  Alcotest.(check int) "tail" 100 (Nr_lib.Nr.tail_value t);
  Alcotest.(check (option int)) "last write wins" (Some 100) (Nr_lib.Nr.read t h2 0)

let test_nr_concurrent () =
  (* Concurrent writers on disjoint key ranges; all writes must be present
     and linearizable reads must agree across replicas afterwards. *)
  let t = Nr_lib.Nr.create ~log_size:256 ~replicas:2 () in
  let nthreads = 4 and per = 500 in
  let handles = Array.init nthreads (fun _ -> Nr_lib.Nr.register t) in
  let worker tid () =
    for i = 0 to per - 1 do
      Nr_lib.Nr.execute_mut t handles.(tid) (Nr_lib.Nr.Put ((tid * per) + i, tid))
    done
  in
  let domains = List.init nthreads (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join domains;
  let h = Nr_lib.Nr.register t in
  let ok = ref true in
  for tid = 0 to nthreads - 1 do
    for i = 0 to per - 1 do
      if Nr_lib.Nr.read t h ((tid * per) + i) <> Some tid then ok := false
    done
  done;
  Alcotest.(check bool) "all writes visible" true !ok;
  Alcotest.(check int) "tail counts all ops" (nthreads * per) (Nr_lib.Nr.tail_value t)

let test_nr_read_local_staleness () =
  (* read_local may be stale; sync catches up. *)
  let t = Nr_lib.Nr.create ~replicas:2 () in
  let h1 = Nr_lib.Nr.register t in
  let h2 = Nr_lib.Nr.register t in
  Nr_lib.Nr.execute_mut t h1 (Nr_lib.Nr.Put (7, 1));
  (* h2's replica has not applied anything yet. *)
  Alcotest.(check (option int)) "stale" None (Nr_lib.Nr.read_local t h2 7);
  Nr_lib.Nr.sync t h2;
  Alcotest.(check (option int)) "after sync" (Some 1) (Nr_lib.Nr.read_local t h2 7)

(* ------------------------------------------------------------------ *)
(* Implementation driven alongside the protocol model                  *)
(* ------------------------------------------------------------------ *)

let test_nr_with_ghost_protocol () =
  (* Mirror a single-threaded NR run through the VerusSync runtime: every
     execute_mut is an append + combiner_start/finish; the protocol
     checker validates each step. *)
  let replicas = 2 in
  let t = Nr_lib.Nr.create ~replicas () in
  let h = Nr_lib.Nr.register t in
  let inst, shards = Nr_lib.Nr_model.make_runtime ~replicas ~log_size:4096 in
  let tail = ref (find_var_shard "tail" shards) in
  let combs = Array.init replicas (fun r -> ref (find_map_shard "combiner" r shards)) in
  let versions = Array.init replicas (fun r -> ref (find_map_shard "local_versions" r shards)) in
  let mirror_mut replica =
    let produced = R.step inst ~transition_name:"append" ~params:[ 1 ] ~consume:[ !tail ] in
    tail := find_var_shard "tail" produced;
    let target = match !tail with R.S_var (_, v) -> v | _ -> assert false in
    let produced =
      R.step inst ~transition_name:"combiner_start" ~params:[ replica; target ]
        ~consume:[ !(combs.(replica)) ]
    in
    combs.(replica) := find_map_shard "combiner" replica produced;
    let produced =
      R.step inst ~transition_name:"combiner_finish" ~params:[ replica ]
        ~consume:[ !(combs.(replica)); !(versions.(replica)) ]
    in
    combs.(replica) := find_map_shard "combiner" replica produced;
    versions.(replica) := find_map_shard "local_versions" replica produced
  in
  for i = 1 to 50 do
    Nr_lib.Nr.execute_mut t h (Nr_lib.Nr.Put (i, i));
    mirror_mut 0
  done;
  (* The ghost tail agrees with the implementation tail. *)
  (match !tail with
  | R.S_var (_, v) -> Alcotest.(check int) "ghost tail" (Nr_lib.Nr.tail_value t) v
  | _ -> Alcotest.fail "no tail");
  Alcotest.(check int) "steps" 150 (R.steps_taken inst)

let () =
  Alcotest.run "nr"
    [
      ( "vsync-model",
        [
          Alcotest.test_case "obligations" `Slow test_model_obligations;
          Alcotest.test_case "catches bugs" `Slow test_model_catches_bugs;
          Alcotest.test_case "refinement" `Slow test_model_refinement;
          Alcotest.test_case "refinement catches bugs" `Slow test_model_refinement_catches_bugs;
        ] );
      ( "vsync-runtime",
        [
          Alcotest.test_case "protocol" `Quick test_runtime_protocol;
          Alcotest.test_case "violations" `Quick test_runtime_violations;
          QCheck_alcotest.to_alcotest prop_runtime_vs_model;
        ] );
      ( "nr-impl",
        [
          Alcotest.test_case "sequential" `Quick test_nr_sequential;
          Alcotest.test_case "two handles" `Quick test_nr_two_handles;
          Alcotest.test_case "wraparound" `Quick test_nr_log_wraparound;
          Alcotest.test_case "concurrent" `Quick test_nr_concurrent;
          Alcotest.test_case "stale local reads" `Quick test_nr_read_local_staleness;
        ] );
      ( "nr-ghost",
        [ Alcotest.test_case "implementation + protocol" `Quick test_nr_with_ghost_protocol ] );
    ]
