(* Vcache tests: the hit/miss/invalidation matrix a content-addressed
   cache must honor (touching a spec function re-solves exactly its
   dependents; renaming an unrelated function keeps every hit), counter
   determinism under jobs > 1, the on-disk store's fixpoint and repair
   behavior, corruption tolerance (truncated documents, wrong schema
   tags, malformed entries — all degrade to misses, never failures),
   fingerprint stability, and the deprecated pre-Config entry point. *)

module J = Vbase.Json
open Verus
open Vir

(* Minimal program scaffolding (same idiom as test_vlint). *)
let p name ty = { pname = name; pty = ty; pmut = false }

let fn ?(mode = Exec) ?(params = []) ?ret ?(requires = []) ?(ensures = []) ?body ?spec_body
    ?(attrs = []) name =
  { fname = name; fmode = mode; params; ret; requires; ensures; body; spec_body; attrs }

let prog ?(datatypes = []) functions = { datatypes; functions }
let int_ = TInt I_math

(* A two-client program: [use_double]'s contract depends on the spec
   function [double]; [other]'s does not.  Editing [double] must
   invalidate exactly [use_double]'s obligations. *)
let double_body_v0 = v "x" +: v "x"

let program ?(double_body = double_body_v0) ?(other_name = "other") () =
  prog
    [
      fn "double" ~mode:Spec ~params:[ p "x" int_ ] ~ret:("result", int_) ~spec_body:double_body;
      fn "use_double" ~mode:Exec ~params:[ p "x" int_ ] ~ret:("result", int_)
        ~ensures:[ v "result" ==: ECall ("double", [ v "x" ]) ]
        ~body:[ SReturn (Some (v "x" +: v "x")) ];
      fn other_name ~mode:Exec ~params:[ p "y" int_ ] ~ret:("result", int_)
        ~ensures:[ v "result" >=: v "y" ]
        ~body:[ SReturn (Some (v "y" +: i 1)) ];
    ]

(* The edited spec body must survive term normalization (constant folding
   erases [+ 0]; equal-branch [ite]s collapse), while staying provably
   equal to the original so the program still verifies. *)
let double_body_v1 = ((v "x" +: v "x") +: v "x") -: v "x"

(* Each test gets its own directory under the system temp dir; [clear]
   makes reruns start cold. *)
let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "verus-test-vcache-%d" !n)
    in
    (match Vcache.clear ~dir with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("could not clear " ^ dir ^ ": " ^ e));
    dir

let run ?(jobs = 1) ?(profile = false) dir pr =
  let config =
    Driver.Config.(default |> with_cache dir |> with_jobs jobs |> with_profile profile)
  in
  Driver.verify_program ~config Profiles.verus pr

let cstats (r : Driver.program_result) =
  match r.Driver.pr_cache with
  | Some s -> s
  | None -> Alcotest.fail "run reported no cache stats"

let store_path dir = Filename.concat dir Vcache.file_name
let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* ------------------------------------------------------------------ *)
(* The hit/miss/invalidation matrix                                    *)
(* ------------------------------------------------------------------ *)

let test_matrix () =
  let dir = fresh_dir () in
  (* Cold: everything misses and is stored. *)
  let cold = run dir (program ()) in
  let cs = cstats cold in
  Alcotest.(check bool) "cold verifies" true cold.Driver.pr_ok;
  Alcotest.(check int) "cold has no hits" 0 cs.Vcache.hits;
  Alcotest.(check bool) "cold misses everything" true (cs.Vcache.misses > 0);
  Alcotest.(check int) "cold has no invalidations" 0 cs.Vcache.invalidations;
  Alcotest.(check bool) "cold stores entries" true (cs.Vcache.stores > 0);
  (* Warm: everything hits. *)
  let warm = run dir (program ()) in
  let ws = cstats warm in
  Alcotest.(check int) "warm hits everything" cs.Vcache.misses ws.Vcache.hits;
  Alcotest.(check int) "warm has no misses" 0 ws.Vcache.misses;
  Alcotest.(check int) "warm stores nothing" 0 ws.Vcache.stores;
  Alcotest.(check string) "warm digest equals cold"
    (Driver.result_digest cold) (Driver.result_digest warm);
  (* Touch the spec function: its dependents are invalidated (same VC
     name, new fingerprint), the independent function still hits. *)
  let touched = run dir (program ~double_body:double_body_v1 ()) in
  let ts = cstats touched in
  Alcotest.(check bool) "touched program verifies" true touched.Driver.pr_ok;
  Alcotest.(check bool) "dependents are invalidated" true (ts.Vcache.invalidations > 0);
  Alcotest.(check bool) "independent VCs still hit" true (ts.Vcache.hits > 0);
  Alcotest.(check int) "no brand-new obligations" 0 ts.Vcache.misses;
  Alcotest.(check int) "every obligation accounted for" cs.Vcache.misses
    (ts.Vcache.hits + ts.Vcache.invalidations);
  (* Rename a function: the store is keyed by content, not by name, so
     even the renamed function's own obligations still hit (their
     fingerprints are unchanged). *)
  let renamed = run dir (program ~other_name:"renamed" ()) in
  let rs = cstats renamed in
  Alcotest.(check bool) "renamed program verifies" true renamed.Driver.pr_ok;
  Alcotest.(check int) "renames keep every hit" cs.Vcache.misses rs.Vcache.hits;
  Alcotest.(check int) "renames never miss" 0 rs.Vcache.misses;
  Alcotest.(check int) "renames never invalidate" 0 rs.Vcache.invalidations;
  (* A genuinely new obligation — a function added to the program — is a
     miss (its name and fingerprint are both unknown). *)
  let base = program () in
  let third =
    fn "third" ~mode:Exec ~params:[ p "z" int_ ] ~ret:("result", int_)
      ~ensures:[ v "result" >=: v "z" +: i 1 ]
      ~body:[ SReturn (Some (v "z" +: i 2)) ]
  in
  let grown = run dir { base with functions = base.functions @ [ third ] } in
  let gs = cstats grown in
  Alcotest.(check bool) "grown program verifies" true grown.Driver.pr_ok;
  Alcotest.(check bool) "new obligations are misses" true (gs.Vcache.misses > 0);
  Alcotest.(check int) "existing obligations still hit" cs.Vcache.misses gs.Vcache.hits;
  Alcotest.(check int) "growth never invalidates" 0 gs.Vcache.invalidations

(* ------------------------------------------------------------------ *)
(* Determinism under jobs > 1                                          *)
(* ------------------------------------------------------------------ *)

let test_jobs_determinism () =
  let dir = fresh_dir () in
  let cold = run ~jobs:2 dir (program ()) in
  let cs = cstats cold in
  Alcotest.(check bool) "parallel cold verifies" true cold.Driver.pr_ok;
  let warm1 = run ~jobs:1 dir (program ()) in
  let warm3 = run ~jobs:3 dir (program ()) in
  let w1 = cstats warm1 and w3 = cstats warm3 in
  Alcotest.(check int) "jobs=1 and jobs=3 hits agree" w1.Vcache.hits w3.Vcache.hits;
  Alcotest.(check int) "warm hits everything the cold run missed" cs.Vcache.misses w1.Vcache.hits;
  Alcotest.(check int) "no misses under jobs=3" 0 w3.Vcache.misses;
  Alcotest.(check int) "no invalidations under jobs=3" 0 w3.Vcache.invalidations;
  Alcotest.(check string) "digests agree across jobs"
    (Driver.result_digest warm1) (Driver.result_digest warm3)

(* ------------------------------------------------------------------ *)
(* Store fixpoint, disk stats, and the profile-upgrade path            *)
(* ------------------------------------------------------------------ *)

let test_store_fixpoint () =
  let dir = fresh_dir () in
  let cold = run dir (program ()) in
  let cs = cstats cold in
  let bytes0 = read_file (store_path dir) in
  (* A warm run changes nothing, so flush must not rewrite the file. *)
  let _ = run dir (program ()) in
  Alcotest.(check string) "warm run leaves the store byte-identical" bytes0
    (read_file (store_path dir));
  (* Offline stats agree with the run's own accounting; a fully verified
     program stores only unsat answers. *)
  let ds = Vcache.disk_stats ~dir in
  Alcotest.(check bool) "store exists" true ds.Vcache.ds_exists;
  Alcotest.(check int) "entry count matches stores" cs.Vcache.stores ds.Vcache.ds_entries;
  Alcotest.(check int) "no dropped entries" 0 ds.Vcache.ds_dropped;
  Alcotest.(check bool) "not corrupt" false ds.Vcache.ds_corrupt;
  Alcotest.(check bool) "size reported" true (ds.Vcache.ds_bytes > 0);
  Alcotest.(check (list (pair string int))) "all entries are unsat"
    [ ("unsat", cs.Vcache.stores) ] ds.Vcache.ds_answers;
  (* Parse → re-serialize is a fixpoint of the document format. *)
  (match J.of_string bytes0 with
  | Error e -> Alcotest.fail ("store does not parse: " ^ e)
  | Ok doc -> Alcotest.(check string) "print/parse fixpoint" bytes0 (J.to_string doc ^ "\n"));
  (* Profiled runs cannot be served by unprofiled entries: the first
     re-solves (upgrade), the second hits. *)
  let prof1 = run ~profile:true dir (program ()) in
  let p1 = cstats prof1 in
  Alcotest.(check int) "profiled lookup of unprofiled entries misses" cs.Vcache.misses
    p1.Vcache.misses;
  Alcotest.(check bool) "upgrade stores profiled entries" true (p1.Vcache.stores > 0);
  let prof2 = run ~profile:true dir (program ()) in
  let p2 = cstats prof2 in
  Alcotest.(check int) "second profiled run hits everything" cs.Vcache.misses p2.Vcache.hits;
  Alcotest.(check bool) "profiled warm run reports a profile" true
    (prof2.Driver.pr_prof <> None);
  (* And upgraded (profiled) entries still serve unprofiled runs. *)
  let plain = cstats (run dir (program ())) in
  Alcotest.(check int) "profiled entries serve unprofiled runs" cs.Vcache.misses
    plain.Vcache.hits

(* ------------------------------------------------------------------ *)
(* Corruption tolerance                                                *)
(* ------------------------------------------------------------------ *)

let test_wrong_schema () =
  let dir = fresh_dir () in
  let cold = run dir (program ()) in
  let cs = cstats cold in
  write_file (store_path dir) "{ \"schema\": \"verus-cache/999\", \"entries\": {} }";
  let r = run dir (program ()) in
  let s = cstats r in
  Alcotest.(check bool) "wrong schema detected as corrupt" true s.Vcache.corrupt_load;
  Alcotest.(check int) "wrong schema serves no hits" 0 s.Vcache.hits;
  Alcotest.(check int) "degrades to a full cold run" cs.Vcache.misses s.Vcache.misses;
  Alcotest.(check bool) "still verifies" true r.Driver.pr_ok;
  Alcotest.(check string) "digest unchanged" (Driver.result_digest cold) (Driver.result_digest r);
  (* The flush repaired the store: next run is warm again. *)
  let s2 = cstats (run dir (program ())) in
  Alcotest.(check bool) "store repaired" false s2.Vcache.corrupt_load;
  Alcotest.(check int) "warm again after repair" cs.Vcache.misses s2.Vcache.hits

let test_malformed_entry () =
  let dir = fresh_dir () in
  let cold = run dir (program ()) in
  let cs = cstats cold in
  (* Replace one entry's value with a non-object: that entry alone is
     dropped at load; every other obligation still hits. *)
  let doc =
    match J.of_string (read_file (store_path dir)) with
    | Ok d -> d
    | Error e -> Alcotest.fail ("store does not parse: " ^ e)
  in
  let mangled =
    match doc with
    | J.Obj kvs ->
      J.Obj
        (List.map
           (function
             | "entries", J.Obj ((fp, _) :: rest) -> ("entries", J.Obj ((fp, J.String "garbage") :: rest))
             | kv -> kv)
           kvs)
    | _ -> Alcotest.fail "store document is not an object"
  in
  write_file (store_path dir) (J.to_string mangled);
  let r = run dir (program ()) in
  let s = cstats r in
  Alcotest.(check int) "one entry dropped" 1 s.Vcache.entries_dropped;
  Alcotest.(check bool) "document itself is not corrupt" false s.Vcache.corrupt_load;
  (* The dropped entry's obligation re-solves; the solve may cover more
     than one obligation (entries are shared across identical VCs), so
     compare via loaded entries rather than assuming 1 miss = 1 VC. *)
  Alcotest.(check int) "surviving entries all loaded" (cs.Vcache.stores - 1)
    s.Vcache.entries_loaded;
  Alcotest.(check bool) "dropped entry re-solves" true (s.Vcache.misses > 0);
  Alcotest.(check int) "everything else hits" cs.Vcache.misses (s.Vcache.hits + s.Vcache.misses);
  Alcotest.(check bool) "still verifies" true r.Driver.pr_ok;
  Alcotest.(check string) "digest unchanged" (Driver.result_digest cold) (Driver.result_digest r);
  (* Flush repaired the document (the dropped entry was re-stored). *)
  let s2 = cstats (run dir (program ())) in
  Alcotest.(check int) "repaired store serves everything" cs.Vcache.misses s2.Vcache.hits;
  Alcotest.(check int) "no dropped entries after repair" 0 s2.Vcache.entries_dropped

(* Torn-write corruption: truncate the document at Faultplan-drawn cut
   points (the same oracle the PMEM device uses for torn writes).  Every
   prefix must degrade to misses — never a crash, never a wrong answer —
   and the digest must match the cold run's. *)
let test_torn_store () =
  let dir = fresh_dir () in
  let cold = run dir (program ()) in
  let cold_digest = Driver.result_digest cold in
  let full = read_file (store_path dir) in
  let plan = Vbase.Faultplan.create ~seed:7 () in
  for _ = 1 to 4 do
    let cut = Vbase.Faultplan.draw plan "cache.torn" (String.length full) in
    write_file (store_path dir) (String.sub full 0 cut);
    let r = run dir (program ()) in
    let s = cstats r in
    Alcotest.(check bool) "torn store never yields wrong results" true r.Driver.pr_ok;
    Alcotest.(check string)
      (Printf.sprintf "digest unchanged after truncation at %d" cut)
      cold_digest (Driver.result_digest r);
    Alcotest.(check bool) "torn store is detected or loads a clean prefix" true
      (s.Vcache.corrupt_load || s.Vcache.hits + s.Vcache.misses > 0);
    (* Each iteration's flush repairs the store for the next one. *)
    let s2 = cstats (run dir (program ())) in
    Alcotest.(check int) "store repaired after torn write" 0 s2.Vcache.misses
  done

(* ------------------------------------------------------------------ *)
(* Fingerprint stability                                               *)
(* ------------------------------------------------------------------ *)

let test_fingerprint () =
  let pr = program () in
  let use_double = List.nth pr.functions 1 in
  let other = List.nth pr.functions 2 in
  let fp_of fndecl =
    match Encode.encode_function Profiles.verus pr fndecl with
    | [] -> Alcotest.fail ("no VCs for " ^ fndecl.fname)
    | vc :: _ ->
      let context = Driver.context_for Profiles.verus pr vc in
      Vcache.fingerprint ~profile:Profiles.verus ~prog:pr ~context vc
  in
  let fp1 = fp_of use_double in
  let fp2 = fp_of use_double in
  Alcotest.(check string) "fingerprint is a pure function" fp1 fp2;
  Alcotest.(check int) "fingerprint is 128 bits of hex" 32 (String.length fp1);
  String.iter
    (fun c ->
      Alcotest.(check bool) "fingerprint is lowercase hex" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    fp1;
  Alcotest.(check bool) "different goals, different fingerprints" true
    (not (String.equal fp1 (fp_of other)));
  (* The solver budget is a fingerprint input: a budget override must
     invalidate (a result proved under one budget says nothing about
     another). *)
  let tight =
    Profiles.with_budget
      { (Profiles.budget Profiles.verus) with Smt.Solver.max_rounds = 2 }
      Profiles.verus
  in
  let fp_tight =
    match Encode.encode_function tight pr use_double with
    | vc :: _ ->
      let context = Driver.context_for tight pr vc in
      Vcache.fingerprint ~profile:tight ~prog:pr ~context vc
    | [] -> Alcotest.fail "no VCs"
  in
  Alcotest.(check bool) "budget override changes the fingerprint" true
    (not (String.equal fp1 fp_tight))

(* ------------------------------------------------------------------ *)
(* The deprecated pre-Config entry point                               *)
(* ------------------------------------------------------------------ *)

module Old_api = struct
  [@@@alert "-deprecated"]

  let verify = Driver.verify_program_opts
end

let test_deprecated_wrapper () =
  let r = Old_api.verify ~lint:Driver.Lint_warn Profiles.verus (program ()) in
  Alcotest.(check bool) "wrapper verifies" true r.Driver.pr_ok;
  Alcotest.(check bool) "wrapper has no cache" true (r.Driver.pr_cache = None);
  (* Same decisions as the Config entry point. *)
  let r2 =
    Driver.verify_program
      ~config:Driver.Config.(with_lint Driver.Lint_warn default)
      Profiles.verus (program ())
  in
  Alcotest.(check string) "wrapper and Config digest equally" (Driver.result_digest r2)
    (Driver.result_digest r)

let () =
  Alcotest.run "vcache"
    [
      ( "matrix",
        [
          Alcotest.test_case "hit/miss/invalidation" `Quick test_matrix;
          Alcotest.test_case "jobs determinism" `Quick test_jobs_determinism;
        ] );
      ( "store",
        [
          Alcotest.test_case "fixpoint and upgrade" `Quick test_store_fixpoint;
          Alcotest.test_case "wrong schema" `Quick test_wrong_schema;
          Alcotest.test_case "malformed entry" `Quick test_malformed_entry;
          Alcotest.test_case "torn store" `Quick test_torn_store;
        ] );
      ( "fingerprint", [ Alcotest.test_case "stability" `Quick test_fingerprint ] );
      ( "api", [ Alcotest.test_case "deprecated wrapper" `Quick test_deprecated_wrapper ] );
    ]
