(* IronKV case-study tests: marshalling round-trips, delegation map vs. a
   naive model, the cluster differential test, and the EPR proof of the
   delegation map abstraction. *)

module M = Ironkv.Marshal
module Dm = Ironkv.Delegation_map

(* ------------------------------------------------------------------ *)
(* Marshalling                                                         *)
(* ------------------------------------------------------------------ *)

let test_marshal_primitives () =
  Alcotest.(check (option int)) "u8" (Some 200) (M.of_bytes M.u8 (M.to_bytes M.u8 200));
  Alcotest.(check (option int)) "u64 big" (Some max_int)
    (M.of_bytes M.u64 (M.to_bytes M.u64 max_int));
  Alcotest.(check (option string)) "string" (Some "hello")
    (M.of_bytes M.byte_string (M.to_bytes M.byte_string "hello"));
  Alcotest.(check (option bool)) "bool" (Some true) (M.of_bytes M.boolean (M.to_bytes M.boolean true));
  (* Truncated input is rejected, not crashed on. *)
  Alcotest.(check (option int)) "truncated" None (M.of_bytes M.u64 (Bytes.of_string "abc"));
  (* Trailing garbage rejected by of_bytes. *)
  let b = M.to_bytes M.u8 7 in
  let b' = Bytes.cat b (Bytes.of_string "x") in
  Alcotest.(check (option int)) "trailing" None (M.of_bytes M.u8 b')

let prop_marshal_roundtrip =
  QCheck.Test.make ~name:"message roundtrip" ~count:500
    QCheck.(
      quad (int_range 0 1000) (int_range 0 100000) (int_range 0 1_000_000) (string_of_size (QCheck.Gen.int_range 0 200)))
    (fun (client, seq, key, value) ->
      let open Ironkv.Message in
      let msgs =
        [
          Get { client; seq; key };
          Set { client; seq; key; value };
          Reply { client; seq; key; value = Some value };
          Reply { client; seq; key; value = None };
          Ack { src = client mod 7; epoch = seq };
          Delegate
            {
              src = client mod 5;
              lo = key;
              hi = key + 10;
              dest = client mod 7;
              epoch = seq;
              kvs = [ (key, value); (key + 1, "") ];
              cache = [ (client, (seq, key, Some value)); (client + 1, (seq, key, None)) ];
            };
        ]
      in
      List.for_all (fun m -> of_bytes (to_bytes m) = Some m) msgs)

let prop_vec_roundtrip =
  QCheck.Test.make ~name:"vec/pair/option roundtrip" ~count:300
    QCheck.(list (pair small_nat (option (string_of_size (QCheck.Gen.int_range 0 30)))))
    (fun xs ->
      let m = M.vec (M.pair M.u64 (M.option M.byte_string)) in
      M.of_bytes m (M.to_bytes m xs) = Some xs)

(* ------------------------------------------------------------------ *)
(* Delegation map vs. naive model                                      *)
(* ------------------------------------------------------------------ *)

let test_dmap_basics () =
  let dm = Dm.create ~default_host:0 in
  Alcotest.(check int) "default" 0 (Dm.get dm 12345);
  Dm.set_range dm ~lo:100 ~hi:200 ~host:1;
  Alcotest.(check int) "inside" 1 (Dm.get dm 150);
  Alcotest.(check int) "below" 0 (Dm.get dm 99);
  Alcotest.(check int) "boundary lo" 1 (Dm.get dm 100);
  Alcotest.(check int) "boundary hi" 0 (Dm.get dm 200);
  Alcotest.(check (result unit string)) "invariant" (Ok ()) (Dm.check_invariant dm);
  (* Overwrite part of the range. *)
  Dm.set_range dm ~lo:150 ~hi:250 ~host:2;
  Alcotest.(check int) "old part" 1 (Dm.get dm 120);
  Alcotest.(check int) "new part" 2 (Dm.get dm 220);
  Alcotest.(check int) "after" 0 (Dm.get dm 250);
  Alcotest.(check (result unit string)) "invariant 2" (Ok ()) (Dm.check_invariant dm)

let prop_dmap_vs_model =
  (* Random set_range sequences; compare against a flat array model at
     sampled points, and re-check the representation invariant. *)
  QCheck.Test.make ~name:"delegation map matches flat model" ~count:200
    QCheck.(list (triple (int_range 0 999) (int_range 0 999) (int_range 0 5)))
    (fun ops ->
      let dm = Dm.create ~default_host:0 in
      let model = Array.make 1000 0 in
      List.iter
        (fun (a, b, host) ->
          let lo = min a b and hi = max a b in
          Dm.set_range dm ~lo ~hi ~host;
          for k = lo to hi - 1 do
            model.(k) <- host
          done)
        ops;
      Dm.check_invariant dm = Ok ()
      && List.for_all
           (fun k -> Dm.get dm k = model.(k))
           (List.init 100 (fun i -> i * 10)))

let prop_dmap_pivot_compact =
  QCheck.Test.make ~name:"pivot count bounded by distinct ranges" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 30) (triple (int_range 0 999) (int_range 1 100) (int_range 0 5)))
    (fun ops ->
      let dm = Dm.create ~default_host:0 in
      List.iter (fun (lo, len, host) -> Dm.set_range dm ~lo ~hi:(lo + len) ~host) ops;
      (* Each set_range adds at most 2 pivots (canonicalization may remove
         more). *)
      Dm.pivot_count dm <= (2 * List.length ops) + 1)

(* ------------------------------------------------------------------ *)
(* Cluster differential test                                           *)
(* ------------------------------------------------------------------ *)

let test_cluster_crosscheck () =
  match Ironkv.Workload.crosscheck ~ops:1500 ~seed:11 () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_cluster_crosscheck_seeds () =
  List.iter
    (fun seed ->
      match Ironkv.Workload.crosscheck ~ops:600 ~seed () with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed e))
    [ 1; 2; 3; 4; 5 ]

let test_cluster_duplicates () =
  (* A flaky client channel: 30% of requests are resent with the same seq.
     The at-most-once table must absorb every duplicate. *)
  List.iter
    (fun seed ->
      match Ironkv.Workload.crosscheck ~ops:600 ~seed ~dup_pct:30 () with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "dup seed %d: %s" seed e))
    [ 21; 22; 23 ]

let test_at_most_once () =
  (* Duplicate Set must not execute twice: after a Set with seq s, a second
     Set with the same seq but different value is suppressed — the host
     re-sends the cached reply (so a retransmitting client terminates)
     without re-executing. *)
  let net = Ironkv.Network.create ~endpoints:2 () in
  let h = Ironkv.Host.create ~style:`Inplace ~id:0 ~hosts:1 () in
  let client = 1 in
  let send m = Ironkv.Host.handle h net (Ironkv.Message.to_bytes m) in
  send (Ironkv.Message.Set { client; seq = 1; key = 5; value = "first" });
  (match Ironkv.Network.recv net ~me:client with Some _ -> () | None -> Alcotest.fail "no reply");
  send (Ironkv.Message.Set { client; seq = 1; key = 5; value = "dup" });
  (* Duplicate of the latest request: the *cached* reply is re-sent (value
     "first", not "dup") and the store is untouched. *)
  (match Ironkv.Network.recv net ~me:client with
  | None -> Alcotest.fail "expected cached reply retransmission"
  | Some raw -> (
    match Ironkv.Message.of_bytes raw with
    | Some (Ironkv.Message.Reply { seq; key; value; _ }) ->
      Alcotest.(check int) "dup reply seq" 1 seq;
      Alcotest.(check int) "dup reply key" 5 key;
      Alcotest.(check (option string)) "dup reply value" (Some "first") value
    | _ -> Alcotest.fail "unexpected message"));
  Alcotest.(check bool) "only one cached reply" true (Ironkv.Network.recv net ~me:client = None);
  Alcotest.(check (list (pair int string))) "value" [ (5, "first") ] (Ironkv.Host.dump h);
  (* An *older* duplicate (seq below the cached high-water mark) is dropped
     outright: the client has already moved on. *)
  send (Ironkv.Message.Set { client; seq = 2; key = 6; value = "second" });
  (match Ironkv.Network.recv net ~me:client with Some _ -> () | None -> Alcotest.fail "no reply 2");
  send (Ironkv.Message.Set { client; seq = 1; key = 5; value = "stale" });
  Alcotest.(check bool) "stale dup dropped" true (Ironkv.Network.recv net ~me:client = None)

(* ------------------------------------------------------------------ *)
(* Fault injection: adversarial network + determinism                  *)
(* ------------------------------------------------------------------ *)

let test_crosscheck_fault_mix () =
  (* Every fault class armed at once: message drop, network duplication,
     reordering, delay, a flaky client channel resending requests, and
     concurrent re-delegation.  Exactly-once execution must survive the
     combination. *)
  List.iter
    (fun (seed, fault_seed) ->
      match
        Ironkv.Workload.crosscheck ~ops:400 ~seed ~dup_pct:20 ~drop_pct:10 ~net_dup_pct:10
          ~reorder_pct:15 ~delay_pct:10 ~redelegate:true ~fault_seed ()
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "mix seed %d/%d: %s" seed fault_seed e))
    [ (31, 1); (32, 2); (33, 3); (34, 4) ]

let test_crosscheck_single_faults () =
  (* Each fault class alone, at a nastier rate than in the mix. *)
  List.iter
    (fun (label, drop, ndup, reorder, delay) ->
      match
        Ironkv.Workload.crosscheck ~ops:400 ~seed:44 ~drop_pct:drop ~net_dup_pct:ndup
          ~reorder_pct:reorder ~delay_pct:delay ~fault_seed:9 ()
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" label e))
    [
      ("drop 25%", 25, 0, 0, 0);
      ("dup 25%", 0, 25, 0, 0);
      ("reorder 40%", 0, 0, 40, 0);
      ("delay 25%", 0, 0, 0, 25);
    ]

let test_fault_replay_deterministic () =
  (* Same workload seed + same plan seed ⇒ the same faults fire at the
     same steps: the plan traces are byte-identical. *)
  let trace () =
    let plan = Vbase.Faultplan.create ~seed:123 () in
    Vbase.Faultplan.set_prob plan "net.drop" ~pct:8;
    Vbase.Faultplan.set_prob plan "net.dup" ~pct:8;
    Vbase.Faultplan.set_prob plan "net.reorder" ~pct:8;
    Vbase.Faultplan.set_prob plan "net.delay" ~pct:8;
    (match Ironkv.Workload.crosscheck ~ops:300 ~seed:55 ~faults:plan () with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    Vbase.Faultplan.trace_to_string plan
  in
  let t1 = trace () and t2 = trace () in
  Alcotest.(check bool) "faults actually fired" true (String.length t1 > 0);
  Alcotest.(check string) "replay trace is byte-identical" t1 t2

let test_sequenced_channel () =
  let plan = Vbase.Faultplan.create ~seed:2 () in
  (* Force the first three sends to be duplicated and the second to be
     reordered: the sequenced layer must mask both. *)
  Vbase.Faultplan.fire_at plan "net.dup" [ 1; 2; 3 ];
  Vbase.Faultplan.fire_at plan "net.reorder" [ 2 ];
  let net = Ironkv.Network.create ~endpoints:2 ~faults:plan ~sequenced:true () in
  List.iter
    (fun s -> Ironkv.Network.send_seq net ~src:0 ~dst:1 (Bytes.of_string s))
    [ "a"; "b"; "c" ];
  let rec drain acc =
    match Ironkv.Network.recv net ~me:1 with
    | Some b -> drain (Bytes.to_string b :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list string)) "in order, exactly once" [ "a"; "b"; "c" ] (drain []);
  let suppressed =
    match List.assoc_opt "dedup_suppressed" (Ironkv.Network.stats net) with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check bool) "duplicates were suppressed" true (suppressed >= 3)

let test_sequenced_never_dropped () =
  let plan = Vbase.Faultplan.create ~seed:4 () in
  Vbase.Faultplan.set_prob plan "net.drop" ~pct:100;
  let net = Ironkv.Network.create ~endpoints:2 ~faults:plan ~sequenced:true () in
  (* Raw sends all die; sequenced sends are exempt (retransmitting
     transport). *)
  Ironkv.Network.send net ~src:0 ~dst:1 (Bytes.of_string "raw");
  Alcotest.(check bool) "raw dropped" true (Ironkv.Network.recv net ~me:1 = None);
  Ironkv.Network.send_seq net ~src:0 ~dst:1 (Bytes.of_string "seq");
  Alcotest.(check (option string)) "sequenced delivered" (Some "seq")
    (Option.map Bytes.to_string (Ironkv.Network.recv net ~me:1))

let test_partition_park_heal () =
  let net = Ironkv.Network.create ~endpoints:3 () in
  Ironkv.Network.set_partition net [ 2 ];
  Ironkv.Network.send net ~src:0 ~dst:2 (Bytes.of_string "cross");
  Ironkv.Network.send net ~src:0 ~dst:1 (Bytes.of_string "same-side");
  Alcotest.(check bool) "cross-cut parked" true (Ironkv.Network.recv net ~me:2 = None);
  Alcotest.(check (option string)) "same side flows" (Some "same-side")
    (Option.map Bytes.to_string (Ironkv.Network.recv net ~me:1));
  Ironkv.Network.heal_partition net;
  Alcotest.(check (option string)) "parked delivered after heal" (Some "cross")
    (Option.map Bytes.to_string (Ironkv.Network.recv net ~me:2))

let test_run_with_faults_terminates () =
  (* The closed-loop benchmark client must terminate (via retransmission)
     under a lossy network, and report its retries. *)
  let r =
    Ironkv.Workload.run ~hosts:3 ~clients:4 ~keys:500 ~payload:32 ~ops:300 ~drop_pct:15
      ~net_dup_pct:10 ~fault_seed:5 ~style:`Inplace ()
  in
  Alcotest.(check int) "all ops completed" 300 r.Ironkv.Workload.ops_done;
  Alcotest.(check bool) "losses forced retransmissions" true
    (r.Ironkv.Workload.retransmissions > 0)

(* ------------------------------------------------------------------ *)
(* Durability: group commit, crash recovery, storms                    *)
(* ------------------------------------------------------------------ *)

module W = Ironkv.Workload

let dur group = { W.du_group = group; du_mem_bytes = 1 lsl 22 }

let test_durable_crosscheck () =
  (* Durable hosts on a clean network must be observationally identical
     to volatile ones — group commit only defers, never changes, the
     replies. *)
  List.iter
    (fun group ->
      match W.crosscheck ~ops:400 ~seed:61 ~durability:(dur group) () with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "group %d: %s" group e))
    [ 1; 4; 16 ]

let test_storm_crosscheck () =
  (* Crash + partition storms over durable hosts with torn commit flushes
     composed in: every reply must stay linearizable, the cluster must
     converge after every storm, and the closing readback sweep must find
     every acknowledged write. *)
  List.iter
    (fun (seed, fault_seed) ->
      let report, verdict =
        W.crosscheck_report ~ops:350 ~seed ~fault_seed ~durability:(dur 4) ~crash_pct:2
          ~partition_pct:1 ~torn_pct:1 ()
      in
      (match verdict with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "storm %d/%d: %s" seed fault_seed e));
      Alcotest.(check bool) "storm actually struck" true
        (report.W.sr_crashes + report.W.sr_torn + report.W.sr_partitions > 0);
      Alcotest.(check bool) "readback covered acked writes" true (report.W.sr_readback > 0);
      Alcotest.(check int) "every crash recovered"
        (report.W.sr_crashes + report.W.sr_torn)
        report.W.sr_recoveries)
    [ (71, 11); (72, 12); (73, 13) ]

let test_storm_double_fault () =
  (* Crash-during-recovery: power fails again while replay is in flight.
     Recovery is read-only, so the reboot restarts it from the same
     committed prefix — the storm must still end with no acked write
     lost. *)
  let plan = Vbase.Faultplan.create ~seed:5 () in
  Vbase.Faultplan.set_prob plan Ironkv.Durable.crash_during_recovery_site ~pct:40;
  let report, verdict =
    W.crosscheck_report ~ops:300 ~seed:81 ~faults:plan ~durability:(dur 2) ~crash_pct:3
      ~torn_pct:2 ()
  in
  (match verdict with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "crashes struck" true (report.W.sr_crashes + report.W.sr_torn > 0)

let canon h =
  ( List.sort compare (Ironkv.Host.dump h),
    List.sort compare (Ironkv.Host.cache_snapshot h),
    Ironkv.Host.max_epoch h )

let prop_crash_points =
  (* Sweep the power-failure point across every flush of a group-committed
     run: whatever flush the crash lands on, recovery must rebuild exactly
     one of the group-commit boundary states — a committed prefix, never a
     torn batch. *)
  QCheck.Test.make ~name:"every crash point recovers to a commit boundary" ~count:20
    QCheck.(pair (int_range 5 40) (int_range 1 6))
    (fun (n, group) ->
      let drive budget =
        let net = Ironkv.Network.create ~endpoints:2 ~sequenced:true () in
        let mem = Plog.Pmem.create ~size:(1 lsl 20) () in
        Ironkv.Durable.format mem;
        let d =
          match Ironkv.Durable.attach ~group mem with Ok d -> d | Error e -> failwith e
        in
        let h = Ironkv.Host.create ~durable:d ~style:`Inplace ~id:0 ~hosts:1 () in
        (match budget with Some b -> Plog.Pmem.set_flush_budget mem b | None -> ());
        (* Snapshot the host state at every successful group commit (plus
           the initial state); these are the only states recovery may
           legally produce. *)
        let snaps = ref [ canon h ] in
        let last_syncs = ref 0 in
        for i = 1 to n do
          if not (Ironkv.Host.is_dead h) then begin
            Ironkv.Host.handle h net
              (Ironkv.Message.to_bytes
                 (Ironkv.Message.Set
                    { client = 1; seq = i; key = i mod 7; value = Printf.sprintf "v%d" i }));
            match Ironkv.Host.durable h with
            | Some d
              when (not (Ironkv.Host.is_dead h)) && Ironkv.Durable.syncs d > !last_syncs ->
              last_syncs := Ironkv.Durable.syncs d;
              snaps := canon h :: !snaps
            | _ -> ()
          end
        done;
        if not (Ironkv.Host.is_dead h) then (
          match Ironkv.Host.sync h net with
          | `Ok _ -> snaps := canon h :: !snaps
          | `Crashed -> ());
        (* If power failed at the very last header flush the batch may
           still have committed: the state at death is also a legal
           boundary. *)
        if Ironkv.Host.is_dead h then snaps := canon h :: !snaps;
        (mem, !snaps)
      in
      let mem0, _ = drive None in
      let flushes = Plog.Pmem.flushes mem0 in
      let ok = ref true in
      for b = 0 to flushes do
        let mem, snaps = drive (Some b) in
        Plog.Pmem.crash mem;
        match Ironkv.Durable.recover ~group mem with
        | Error e -> failwith e
        | Ok (d, ops, routes) ->
          let h = Ironkv.Host.of_replay ~style:`Inplace ~id:0 ~hosts:1 ~durable:d (ops, routes) in
          if not (List.mem (canon h) snaps) then ok := false
      done;
      !ok)

let prop_crash_points_double_fault =
  (* Same sweep, but every recovery also has a 50% chance of crashing
     mid-replay (double fault): replay is read-only, so the retried
     recovery must land on the same boundary. *)
  QCheck.Test.make ~name:"double-fault recovery is idempotent" ~count:10
    QCheck.(triple (int_range 5 30) (int_range 1 4) (int_range 1 1000))
    (fun (n, group, fseed) ->
      let net = Ironkv.Network.create ~endpoints:2 ~sequenced:true () in
      let mem = Plog.Pmem.create ~size:(1 lsl 20) () in
      Ironkv.Durable.format mem;
      let d = match Ironkv.Durable.attach ~group mem with Ok d -> d | Error e -> failwith e in
      let h = Ironkv.Host.create ~durable:d ~style:`Inplace ~id:0 ~hosts:1 () in
      for i = 1 to n do
        Ironkv.Host.handle h net
          (Ironkv.Message.to_bytes
             (Ironkv.Message.Set
                { client = 1; seq = i; key = i mod 5; value = Printf.sprintf "w%d" i }))
      done;
      (match Ironkv.Host.sync h net with `Ok _ -> () | `Crashed -> failwith "unexpected");
      let committed = canon h in
      Plog.Pmem.crash mem;
      let plan = Vbase.Faultplan.create ~seed:fseed () in
      Vbase.Faultplan.set_prob plan Ironkv.Durable.crash_during_recovery_site ~pct:50;
      match Ironkv.Durable.recover ~group ~faults:plan mem with
      | Error e -> failwith e
      | Ok (d, ops, routes) ->
        let h' = Ironkv.Host.of_replay ~style:`Inplace ~id:0 ~hosts:1 ~durable:d (ops, routes) in
        canon h' = committed)

let test_kv_bench_schema () =
  (* Producer and checker share one implementation: a real (tiny) run,
     rendered through kv_bench_row/doc, must validate — and near-miss
     documents must not. *)
  let r = W.run ~hosts:2 ~clients:2 ~keys:200 ~payload:16 ~ops:60 ~style:`Inplace () in
  let doc = W.kv_bench_doc [ W.kv_bench_row ~name:"smoke" ~acked_write_loss:0 r ] in
  (match W.validate_kv_bench doc with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("emitted doc rejected: " ^ e));
  (* Round-trip through the serializer too. *)
  (match Vbase.Json.of_string (Vbase.Json.to_string doc) with
  | Ok doc' -> (
    match W.validate_kv_bench doc' with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("round-tripped doc rejected: " ^ e))
  | Error e -> Alcotest.fail ("round-trip parse failed: " ^ e));
  let reject name j =
    match W.validate_kv_bench j with
    | Ok () -> Alcotest.fail (name ^ ": bogus doc accepted")
    | Error _ -> ()
  in
  reject "wrong schema"
    (Vbase.Json.Obj
       [ ("schema", Vbase.Json.String "nope/9"); ("rows", Vbase.Json.List []) ]);
  reject "empty rows" (W.kv_bench_doc []);
  reject "missing field"
    (W.kv_bench_doc [ Vbase.Json.Obj [ ("name", Vbase.Json.String "x") ] ])

(* ------------------------------------------------------------------ *)
(* EPR proof of the delegation map                                     *)
(* ------------------------------------------------------------------ *)

let test_marshal_proofs () =
  let obs = Ironkv.Marshal_proofs.run () in
  List.iter
    (fun (o : Ironkv.Marshal_proofs.obligation) ->
      Alcotest.(check bool)
        (Printf.sprintf "[%s] %s %s" o.Ironkv.Marshal_proofs.mode o.Ironkv.Marshal_proofs.name
           o.Ironkv.Marshal_proofs.detail)
        true o.Ironkv.Marshal_proofs.proved)
    obs

let test_epr_proof () =
  let obs = Ironkv.Delegation_proof.run () in
  List.iter
    (fun (o : Ironkv.Delegation_proof.obligation) ->
      Alcotest.(check bool)
        (Printf.sprintf "EPR: %s" o.Ironkv.Delegation_proof.name)
        true
        (o.Ironkv.Delegation_proof.answer = Smt.Solver.Unsat))
    obs;
  Alcotest.(check bool) "all proved" true (Ironkv.Delegation_proof.all_proved obs)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ironkv"
    [
      ( "marshal",
        [ Alcotest.test_case "primitives" `Quick test_marshal_primitives ] );
      qsuite "marshal-props" [ prop_marshal_roundtrip; prop_vec_roundtrip ];
      ( "delegation-map",
        [ Alcotest.test_case "basics" `Quick test_dmap_basics ] );
      qsuite "dmap-props" [ prop_dmap_vs_model; prop_dmap_pivot_compact ];
      ( "cluster",
        [
          Alcotest.test_case "crosscheck" `Quick test_cluster_crosscheck;
          Alcotest.test_case "crosscheck seeds" `Quick test_cluster_crosscheck_seeds;
          Alcotest.test_case "duplicate absorption" `Quick test_cluster_duplicates;
          Alcotest.test_case "at-most-once" `Quick test_at_most_once;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crosscheck full fault mix" `Quick test_crosscheck_fault_mix;
          Alcotest.test_case "crosscheck single faults" `Quick test_crosscheck_single_faults;
          Alcotest.test_case "replay determinism" `Quick test_fault_replay_deterministic;
          Alcotest.test_case "sequenced channel" `Quick test_sequenced_channel;
          Alcotest.test_case "sequenced never dropped" `Quick test_sequenced_never_dropped;
          Alcotest.test_case "partition park/heal" `Quick test_partition_park_heal;
          Alcotest.test_case "lossy run terminates" `Quick test_run_with_faults_terminates;
        ] );
      ( "durability",
        [
          Alcotest.test_case "durable crosscheck" `Quick test_durable_crosscheck;
          Alcotest.test_case "crash+partition storms" `Quick test_storm_crosscheck;
          Alcotest.test_case "double fault" `Quick test_storm_double_fault;
          Alcotest.test_case "bench schema" `Quick test_kv_bench_schema;
        ] );
      qsuite "durability-props" [ prop_crash_points; prop_crash_points_double_fault ];
      ( "epr-proof",
        [
          Alcotest.test_case "delegation map" `Slow test_epr_proof;
          Alcotest.test_case "marshalling lemmas" `Slow test_marshal_proofs;
        ] );
    ]
