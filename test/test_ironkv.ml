(* IronKV case-study tests: marshalling round-trips, delegation map vs. a
   naive model, the cluster differential test, and the EPR proof of the
   delegation map abstraction. *)

module M = Ironkv.Marshal
module Dm = Ironkv.Delegation_map

(* ------------------------------------------------------------------ *)
(* Marshalling                                                         *)
(* ------------------------------------------------------------------ *)

let test_marshal_primitives () =
  Alcotest.(check (option int)) "u8" (Some 200) (M.of_bytes M.u8 (M.to_bytes M.u8 200));
  Alcotest.(check (option int)) "u64 big" (Some max_int)
    (M.of_bytes M.u64 (M.to_bytes M.u64 max_int));
  Alcotest.(check (option string)) "string" (Some "hello")
    (M.of_bytes M.byte_string (M.to_bytes M.byte_string "hello"));
  Alcotest.(check (option bool)) "bool" (Some true) (M.of_bytes M.boolean (M.to_bytes M.boolean true));
  (* Truncated input is rejected, not crashed on. *)
  Alcotest.(check (option int)) "truncated" None (M.of_bytes M.u64 (Bytes.of_string "abc"));
  (* Trailing garbage rejected by of_bytes. *)
  let b = M.to_bytes M.u8 7 in
  let b' = Bytes.cat b (Bytes.of_string "x") in
  Alcotest.(check (option int)) "trailing" None (M.of_bytes M.u8 b')

let prop_marshal_roundtrip =
  QCheck.Test.make ~name:"message roundtrip" ~count:500
    QCheck.(
      quad (int_range 0 1000) (int_range 0 100000) (int_range 0 1_000_000) (string_of_size (QCheck.Gen.int_range 0 200)))
    (fun (client, seq, key, value) ->
      let open Ironkv.Message in
      let msgs =
        [
          Get { client; seq; key };
          Set { client; seq; key; value };
          Reply { client; seq; key; value = Some value };
          Reply { client; seq; key; value = None };
          Delegate { lo = key; hi = key + 10; dest = client mod 7; kvs = [ (key, value); (key + 1, "") ] };
        ]
      in
      List.for_all (fun m -> of_bytes (to_bytes m) = Some m) msgs)

let prop_vec_roundtrip =
  QCheck.Test.make ~name:"vec/pair/option roundtrip" ~count:300
    QCheck.(list (pair small_nat (option (string_of_size (QCheck.Gen.int_range 0 30)))))
    (fun xs ->
      let m = M.vec (M.pair M.u64 (M.option M.byte_string)) in
      M.of_bytes m (M.to_bytes m xs) = Some xs)

(* ------------------------------------------------------------------ *)
(* Delegation map vs. naive model                                      *)
(* ------------------------------------------------------------------ *)

let test_dmap_basics () =
  let dm = Dm.create ~default_host:0 in
  Alcotest.(check int) "default" 0 (Dm.get dm 12345);
  Dm.set_range dm ~lo:100 ~hi:200 ~host:1;
  Alcotest.(check int) "inside" 1 (Dm.get dm 150);
  Alcotest.(check int) "below" 0 (Dm.get dm 99);
  Alcotest.(check int) "boundary lo" 1 (Dm.get dm 100);
  Alcotest.(check int) "boundary hi" 0 (Dm.get dm 200);
  Alcotest.(check (result unit string)) "invariant" (Ok ()) (Dm.check_invariant dm);
  (* Overwrite part of the range. *)
  Dm.set_range dm ~lo:150 ~hi:250 ~host:2;
  Alcotest.(check int) "old part" 1 (Dm.get dm 120);
  Alcotest.(check int) "new part" 2 (Dm.get dm 220);
  Alcotest.(check int) "after" 0 (Dm.get dm 250);
  Alcotest.(check (result unit string)) "invariant 2" (Ok ()) (Dm.check_invariant dm)

let prop_dmap_vs_model =
  (* Random set_range sequences; compare against a flat array model at
     sampled points, and re-check the representation invariant. *)
  QCheck.Test.make ~name:"delegation map matches flat model" ~count:200
    QCheck.(list (triple (int_range 0 999) (int_range 0 999) (int_range 0 5)))
    (fun ops ->
      let dm = Dm.create ~default_host:0 in
      let model = Array.make 1000 0 in
      List.iter
        (fun (a, b, host) ->
          let lo = min a b and hi = max a b in
          Dm.set_range dm ~lo ~hi ~host;
          for k = lo to hi - 1 do
            model.(k) <- host
          done)
        ops;
      Dm.check_invariant dm = Ok ()
      && List.for_all
           (fun k -> Dm.get dm k = model.(k))
           (List.init 100 (fun i -> i * 10)))

let prop_dmap_pivot_compact =
  QCheck.Test.make ~name:"pivot count bounded by distinct ranges" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 30) (triple (int_range 0 999) (int_range 1 100) (int_range 0 5)))
    (fun ops ->
      let dm = Dm.create ~default_host:0 in
      List.iter (fun (lo, len, host) -> Dm.set_range dm ~lo ~hi:(lo + len) ~host) ops;
      (* Each set_range adds at most 2 pivots (canonicalization may remove
         more). *)
      Dm.pivot_count dm <= (2 * List.length ops) + 1)

(* ------------------------------------------------------------------ *)
(* Cluster differential test                                           *)
(* ------------------------------------------------------------------ *)

let test_cluster_crosscheck () =
  match Ironkv.Workload.crosscheck ~ops:1500 ~seed:11 () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_cluster_crosscheck_seeds () =
  List.iter
    (fun seed ->
      match Ironkv.Workload.crosscheck ~ops:600 ~seed () with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed e))
    [ 1; 2; 3; 4; 5 ]

let test_cluster_duplicates () =
  (* A flaky client channel: 30% of requests are resent with the same seq.
     The at-most-once table must absorb every duplicate. *)
  List.iter
    (fun seed ->
      match Ironkv.Workload.crosscheck ~ops:600 ~seed ~dup_pct:30 () with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "dup seed %d: %s" seed e))
    [ 21; 22; 23 ]

let test_at_most_once () =
  (* Duplicate Set must not execute twice: after a Set with seq s, a second
     Set with the same seq but different value is suppressed. *)
  let net = Ironkv.Network.create ~endpoints:2 () in
  let h = Ironkv.Host.create ~style:`Inplace ~id:0 ~hosts:1 in
  let client = 1 in
  let send m = Ironkv.Host.handle h net (Ironkv.Message.to_bytes m) in
  send (Ironkv.Message.Set { client; seq = 1; key = 5; value = "first" });
  (match Ironkv.Network.recv net ~me:client with Some _ -> () | None -> Alcotest.fail "no reply");
  send (Ironkv.Message.Set { client; seq = 1; key = 5; value = "dup" });
  (* Duplicate: no second reply, value unchanged. *)
  Alcotest.(check bool) "no dup reply" true (Ironkv.Network.recv net ~me:client = None);
  Alcotest.(check (list (pair int string))) "value" [ (5, "first") ] (Ironkv.Host.dump h)

(* ------------------------------------------------------------------ *)
(* EPR proof of the delegation map                                     *)
(* ------------------------------------------------------------------ *)

let test_marshal_proofs () =
  let obs = Ironkv.Marshal_proofs.run () in
  List.iter
    (fun (o : Ironkv.Marshal_proofs.obligation) ->
      Alcotest.(check bool)
        (Printf.sprintf "[%s] %s %s" o.Ironkv.Marshal_proofs.mode o.Ironkv.Marshal_proofs.name
           o.Ironkv.Marshal_proofs.detail)
        true o.Ironkv.Marshal_proofs.proved)
    obs

let test_epr_proof () =
  let obs = Ironkv.Delegation_proof.run () in
  List.iter
    (fun (o : Ironkv.Delegation_proof.obligation) ->
      Alcotest.(check bool)
        (Printf.sprintf "EPR: %s" o.Ironkv.Delegation_proof.name)
        true
        (o.Ironkv.Delegation_proof.answer = Smt.Solver.Unsat))
    obs;
  Alcotest.(check bool) "all proved" true (Ironkv.Delegation_proof.all_proved obs)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ironkv"
    [
      ( "marshal",
        [ Alcotest.test_case "primitives" `Quick test_marshal_primitives ] );
      qsuite "marshal-props" [ prop_marshal_roundtrip; prop_vec_roundtrip ];
      ( "delegation-map",
        [ Alcotest.test_case "basics" `Quick test_dmap_basics ] );
      qsuite "dmap-props" [ prop_dmap_vs_model; prop_dmap_pivot_compact ];
      ( "cluster",
        [
          Alcotest.test_case "crosscheck" `Quick test_cluster_crosscheck;
          Alcotest.test_case "crosscheck seeds" `Quick test_cluster_crosscheck_seeds;
          Alcotest.test_case "duplicate absorption" `Quick test_cluster_duplicates;
          Alcotest.test_case "at-most-once" `Quick test_at_most_once;
        ] );
      ( "epr-proof",
        [
          Alcotest.test_case "delegation map" `Slow test_epr_proof;
          Alcotest.test_case "marshalling lemmas" `Slow test_marshal_proofs;
        ] );
    ]
