(* Core verifier tests: front-end checkers reject bad programs, the proof
   modes decide their fragments, Gröbner/poly algebra, EPR decides and
   rejects correctly, the driver verifies/refutes VIR programs, and the
   interpreter agrees with the specs on random traffic. *)

module T = Smt.Term
module S = Smt.Sort
open Verus

(* ------------------------------------------------------------------ *)
(* Poly / Groebner                                                     *)
(* ------------------------------------------------------------------ *)

let test_poly () =
  let x = Poly.var "x" and y = Poly.var "y" in
  let p = Poly.mul (Poly.add x y) (Poly.add x y) in
  (* (x+y)^2 = x^2 + 2xy + y^2 *)
  let q =
    Poly.add
      (Poly.add (Poly.mul x x) (Poly.scale (Vbase.Rat.of_int 2) (Poly.mul x y)))
      (Poly.mul y y)
  in
  Alcotest.(check bool) "binomial" true (Poly.equal p q);
  Alcotest.(check bool) "sub to zero" true (Poly.is_zero (Poly.sub p q));
  Alcotest.(check string) "print" "x^2 + 2*x*y + y^2" (Poly.to_string p)

let test_groebner () =
  let x = Poly.var "x" and y = Poly.var "y" in
  (* Ideal <x - y>: x^2 - y^2 is a member, x + y is not. *)
  let gens = [ Poly.sub x y ] in
  Alcotest.(check bool) "member" true
    (Groebner.ideal_member (Poly.sub (Poly.mul x x) (Poly.mul y y)) gens);
  Alcotest.(check bool) "non-member" false (Groebner.ideal_member (Poly.add x y) gens);
  (* S-polynomial case needing completion: <xy - 1, y^2 - 1> contains x - y...
     x*y^2 - x = x(y^2-1) and also (xy-1)y = xy^2 - y => x - y in ideal. *)
  let gens2 = [ Poly.sub (Poly.mul x y) (Poly.const Vbase.Rat.one); Poly.sub (Poly.mul y y) (Poly.const Vbase.Rat.one) ] in
  Alcotest.(check bool) "completion" true (Groebner.ideal_member (Poly.sub x y) gens2)

(* ------------------------------------------------------------------ *)
(* Proof modes                                                         *)
(* ------------------------------------------------------------------ *)

let ic name = T.const (T.Sym.declare ("tv." ^ name) [] S.Int)

let test_mode_bitvector () =
  let band a b = T.app (T.Sym.declare "u64.and" [ S.Int; S.Int ] S.Int) [ a; b ] in
  let x = ic "bx" in
  Alcotest.(check bool) "paper example" true
    (Modes.prove_bit_vector (T.eq (band x (T.int_of 511)) (T.imod x (T.int_of 512))) = Modes.Proved);
  (* A falsehood is refuted, not proved. *)
  Alcotest.(check bool) "refutes" true
    (match Modes.prove_bit_vector (T.eq (band x (T.int_of 3)) (T.int_of 7)) with
    | Modes.Refuted _ -> true
    | _ -> false);
  (* Unsupported constructs are reported, not mis-proved. *)
  Alcotest.(check bool) "unsupported" true
    (match Modes.prove_bit_vector (T.eq (T.imod x (ic "by")) (T.int_of 0)) with
    | Modes.Unsupported _ -> true
    | _ -> false)

let test_mode_nonlinear () =
  let a = ic "na" and q = ic "nq" in
  let t = T.add [ T.mul a a; T.int_of 1 ] in
  Alcotest.(check bool) "paper example" true
    (Modes.prove_nonlinear
       (T.implies (T.gt q (T.int_of 2)) (T.ge (T.mul t q) (T.mul t (T.int_of 2))))
    = Modes.Proved);
  Alcotest.(check bool) "square nonneg" true
    (Modes.prove_nonlinear (T.ge (T.mul a a) (T.int_of 0)) = Modes.Proved);
  Alcotest.(check bool) "ring identity" true
    (Modes.prove_nonlinear
       (T.eq
          (T.mul (T.add [ a; q ]) (T.add [ a; q ]))
          (T.add [ T.mul a a; T.mul (T.int_of 2) (T.mul a q); T.mul q q ]))
    = Modes.Proved);
  Alcotest.(check bool) "false is not proved" true
    (Modes.prove_nonlinear (T.ge (T.mul a q) (T.int_of 0)) <> Modes.Proved)

let test_mode_integer_ring () =
  let a = ic "ra" and b = ic "rb" and c = ic "rc" in
  (* The paper's subtract_mod_eq_zero. *)
  Alcotest.(check bool) "paper example" true
    (Modes.prove_integer_ring
       (T.implies
          (T.and_
             [ T.eq (T.imod a c) (T.int_of 0); T.eq (T.imod b c) (T.int_of 0) ])
          (T.eq (T.imod (T.sub b a) c) (T.int_of 0)))
    = Modes.Proved);
  (* (a+b)^2 - (a^2 + 2ab + b^2) = 0 as a pure equality. *)
  Alcotest.(check bool) "equality" true
    (Modes.prove_integer_ring
       (T.eq
          (T.mul (T.add [ a; b ]) (T.add [ a; b ]))
          (T.add [ T.mul a a; T.mul (T.int_of 2) (T.mul a b); T.mul b b ]))
    = Modes.Proved);
  Alcotest.(check bool) "non-theorem rejected" true
    (Modes.prove_integer_ring (T.eq (T.imod (T.add [ a; T.int_of 1 ]) c) (T.int_of 0))
    <> Modes.Proved)

let test_mode_compute () =
  let prog = Plog.Crc_proof.spec_program in
  ignore prog;
  (* Simple ground arithmetic. *)
  let p = { Vir.datatypes = []; functions = [] } in
  Alcotest.(check bool) "ground true" true
    (Modes.prove_compute p Vir.(EBinop (Eq, i 6 *: i 7, i 42)) = Modes.Proved);
  Alcotest.(check bool) "ground false" true
    (match Modes.prove_compute p Vir.(EBinop (Eq, i 6 *: i 7, i 41)) with
    | Modes.Refuted _ -> true
    | _ -> false);
  (* Three sampled CRC entries (the full battery runs in fig9/test_plog). *)
  List.iter
    (fun idx ->
      Alcotest.(check bool)
        (Printf.sprintf "crc entry %d" idx)
        true
        (Plog.Crc_proof.check_entry idx = Modes.Proved))
    [ 0; 1; 255 ]

(* ------------------------------------------------------------------ *)
(* EPR                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dlock_epr () =
  let obs = Dlock_epr.run () in
  List.iter
    (fun (o : Dlock_epr.obligation) ->
      Alcotest.(check bool) o.Dlock_epr.name true (o.Dlock_epr.answer = Smt.Solver.Unsat))
    obs;
  Alcotest.(check bool) "all proved" true (Dlock_epr.all_proved obs)

let test_epr () =
  let node = S.Usort "TNode" in
  let edge = T.Sym.declare "t.edge" [ node; node ] S.Bool in
  let a = T.const (T.Sym.declare "t.na" [] node) in
  let b = T.const (T.Sym.declare "t.nb" [] node) in
  let x = T.bvar "x" node and y = T.bvar "y" node in
  let sym_ax =
    T.forall [ ("x", node); ("y", node) ]
      (T.implies (T.app edge [ x; y ]) (T.app edge [ y; x ]))
  in
  (* Symmetric closure: definitively unsat / valid answers. *)
  let r = Smt.Epr.check_valid ~hyps:[ sym_ax; T.app edge [ a; b ] ] (T.app edge [ b; a ]) in
  Alcotest.(check bool) "valid" true (r.Smt.Solver.answer = Smt.Solver.Unsat);
  (* And a definitive SAT (not provable): edge(b,a) without symmetry. *)
  let r2 = Smt.Epr.check_valid ~hyps:[ T.app edge [ a; b ] ] (T.app edge [ b; a ]) in
  Alcotest.(check bool) "definitive countermodel" true (r2.Smt.Solver.answer = Smt.Solver.Sat);
  (* Fragment rejection: arithmetic. *)
  Alcotest.(check bool) "rejects arithmetic" true
    (Result.is_error (Smt.Epr.check_fragment [ T.le (T.int_of 0) (ic "ep") ]));
  (* Fragment rejection: function cycle (f : node -> node). *)
  let f = T.Sym.declare "t.nf" [ node ] node in
  let cyc = T.forall [ ("x", node) ] (T.not_ (T.eq (T.app f [ x ]) x)) in
  Alcotest.(check bool) "rejects sort cycle" true (Result.is_error (Smt.Epr.check_fragment [ cyc ]))

(* ------------------------------------------------------------------ *)
(* Front-end rejection                                                 *)
(* ------------------------------------------------------------------ *)

let test_typecheck_rejects () =
  let bad_fn body =
    {
      Vir.fname = "t_bad";
      fmode = Vir.Exec;
      params = [];
      ret = Some ("r", Vir.TInt Vir.I_u64);
      requires = [];
      ensures = [];
      body = Some body;
      spec_body = None;
      attrs = [];
    }
  in
  let check_error body =
    match Typecheck.check_program { Vir.datatypes = []; functions = [ bad_fn body ] } with
    | Error _ -> true
    | Ok () -> false
  in
  Alcotest.(check bool) "unbound var" true (check_error [ Vir.SReturn (Some (Vir.v "nope")) ]);
  Alcotest.(check bool) "bool arith" true
    (check_error [ Vir.SReturn (Some Vir.(EBool true +: i 1)) ]);
  Alcotest.(check bool) "shadowing" true
    (check_error
       [ Vir.SLet ("x", Vir.TInt Vir.I_u64, Vir.i 1); Vir.SLet ("x", Vir.TInt Vir.I_u64, Vir.i 2) ]);
  Alcotest.(check bool) "good one passes" true
    (Typecheck.check_program
       { Vir.datatypes = []; functions = [ bad_fn [ Vir.SReturn (Some (Vir.i 1)) ] ] }
    = Ok ())

let test_ownership_rejects () =
  (* Use-after-move of a datatype value. *)
  let dt = { Vir.dname = "TBox"; variants = [ ("TBox", [ ("tval", Vir.TInt Vir.I_u64) ]) ] } in
  let consume =
    {
      Vir.fname = "t_consume";
      fmode = Vir.Exec;
      params = [ { Vir.pname = "b"; pty = Vir.TData "TBox"; pmut = false } ];
      ret = None;
      requires = [];
      ensures = [];
      body = Some [];
      spec_body = None;
      attrs = [];
    }
  in
  let double_use =
    {
      Vir.fname = "t_double";
      fmode = Vir.Exec;
      params = [ { Vir.pname = "b"; pty = Vir.TData "TBox"; pmut = false } ];
      ret = None;
      requires = [];
      ensures = [];
      body =
        Some [ Vir.SCall (None, "t_consume", [ Vir.v "b" ]); Vir.SCall (None, "t_consume", [ Vir.v "b" ]) ];
      spec_body = None;
      attrs = [];
    }
  in
  (match Ownership.check_program { Vir.datatypes = [ dt ]; functions = [ consume; double_use ] } with
  | Error (e :: _) ->
    Alcotest.(check bool) "mentions move" true
      (try ignore (Str.search_forward (Str.regexp "move") e 0); true with Not_found -> false)
  | _ -> Alcotest.fail "double move accepted");
  (* Loop moving an outer value is rejected. *)
  let loop_move =
    {
      double_use with
      Vir.fname = "t_loopmove";
      body =
        Some
          [
            Vir.SWhile
              {
                cond = Vir.EBool true;
                invariants = [];
                decreases = None;
                body = [ Vir.SCall (None, "t_consume", [ Vir.v "b" ]) ];
              };
          ];
    }
  in
  Alcotest.(check bool) "loop move rejected" true
    (Result.is_error
       (Ownership.check_program { Vir.datatypes = [ dt ]; functions = [ consume; loop_move ] }))

(* ------------------------------------------------------------------ *)
(* Driver: refutation and verification                                 *)
(* ------------------------------------------------------------------ *)

let test_driver_refutes () =
  (* A function with a false postcondition must fail. *)
  let bad =
    {
      Vir.fname = "t_wrongpost";
      fmode = Vir.Exec;
      params = [ { Vir.pname = "x"; pty = Vir.TInt Vir.I_u64; pmut = false } ];
      ret = Some ("r", Vir.TInt Vir.I_u64);
      requires = [];
      ensures = [ Vir.(v "r" >: v "x") ];
      body = Some [ Vir.SReturn (Some (Vir.v "x")) ];
      spec_body = None;
      attrs = [];
    }
  in
  let r = Driver.verify_program Profiles.verus { Vir.datatypes = []; functions = [ bad ] } in
  Alcotest.(check bool) "refuted" false r.Driver.pr_ok;
  (* Overflow obligations: x + 1 on u64 without a bound must fail... *)
  let overflow =
    {
      bad with
      Vir.fname = "t_overflow";
      ensures = [];
      body = Some [ Vir.SReturn (Some Vir.(v "x" +: i 1)) ];
    }
  in
  let r2 = Driver.verify_program Profiles.verus { Vir.datatypes = []; functions = [ overflow ] } in
  Alcotest.(check bool) "overflow caught" false r2.Driver.pr_ok;
  (* ... and pass with the right precondition. *)
  let bounded =
    {
      overflow with
      Vir.fname = "t_bounded";
      requires = [ Vir.(v "x" <: i 1000) ];
    }
  in
  let r3 = Driver.verify_program Profiles.verus { Vir.datatypes = []; functions = [ bounded ] } in
  Alcotest.(check bool) "bounded ok" true r3.Driver.pr_ok;
  (* Division by zero. *)
  let div =
    {
      overflow with
      Vir.fname = "t_div";
      requires = [];
      body = Some [ Vir.SReturn (Some Vir.(EBinop (Div, i 100, v "x"))) ];
    }
  in
  let r4 = Driver.verify_program Profiles.verus { Vir.datatypes = []; functions = [ div ] } in
  Alcotest.(check bool) "div by zero caught" false r4.Driver.pr_ok

let test_vstd_lemmas () =
  let r = Vstd_seq.verify () in
  List.iter
    (fun (f : Driver.fn_result) ->
      Alcotest.(check bool) f.Driver.fnr_name true f.Driver.fnr_ok)
    r.Driver.pr_fns;
  Alcotest.(check int) "15 lemmas" 15 (List.length r.Driver.pr_fns)

let test_vstd_map () =
  let obs = Vstd_map.run () in
  List.iter
    (fun (o : Vstd_map.obligation) ->
      Alcotest.(check bool) (o.Vstd_map.name ^ " " ^ o.Vstd_map.detail) true o.Vstd_map.proved)
    obs;
  Alcotest.(check bool) "13 map lemmas" true (List.length obs >= 13)

let test_vstd_set () =
  let obs = Vstd_set.run () in
  List.iter
    (fun (o : Vstd_set.obligation) ->
      Alcotest.(check bool) (o.Vstd_set.name ^ " " ^ o.Vstd_set.detail) true o.Vstd_set.proved)
    obs;
  Alcotest.(check bool) "15 set lemmas" true (List.length obs >= 15)

let test_vstd_map_refute () =
  (* A wrong statement must never be proved.  With quantified axioms in
     context the solver cannot soundly answer Sat after saturation, so the
     expected outcome is anything but Unsat (here: a candidate model). *)
  let module T = Smt.Term in
  let m = T.const (T.Sym.declare "vmr.m" [] Vstd_map.map_sort) in
  let k = T.const (T.Sym.declare "vmr.k" [] Smt.Sort.Int) in
  let r =
    Smt.Solver.check_valid ~hyps:Vstd_map.axioms
      (T.eq (Vstd_map.sel (Vstd_map.store m k (T.int_of 3)) k) (T.int_of 4))
  in
  Alcotest.(check bool) "wrong read not proved" true (r.Smt.Solver.answer <> Smt.Solver.Unsat);
  (* On a quantifier-free consequence of the ground axioms the solver can
     and does answer Sat outright. *)
  let r2 =
    Smt.Solver.check_valid
      (T.eq (T.add [ T.const (T.Sym.declare "vmr.x" [] Smt.Sort.Int); T.int_of 1 ])
         (T.int_of 0))
  in
  Alcotest.(check bool) "qf wrong claim is Sat" true (r2.Smt.Solver.answer = Smt.Solver.Sat)

let test_driver_dlock () =
  let r = Driver.verify_program Profiles.verus Bench_programs.dlock_default in
  Alcotest.(check bool) "distributed lock verified" true r.Driver.pr_ok

let test_driver_break_programs () =
  List.iter
    (fun (name, prog) ->
      let r = Driver.verify_program Profiles.verus prog in
      Alcotest.(check bool) (name ^ " fails as intended") false r.Driver.pr_ok)
    [ ("break_pop", Bench_programs.break_pop); ("break_index", Bench_programs.break_index) ]

(* ------------------------------------------------------------------ *)
(* Interpreter vs specs (differential)                                 *)
(* ------------------------------------------------------------------ *)

let prop_interp_sll =
  QCheck.Test.make ~name:"interpreted SLL satisfies its contracts" ~count:60
    QCheck.(list (int_range 0 1000))
    (fun xs ->
      (* Random pushes then pops with dynamic contract checking on; any
         contract violation raises. *)
      let prog = Bench_programs.singly_linked in
      let open Interp in
      let l = ref (VData ("Nil", [])) in
      (try
         List.iter
           (fun x ->
             let _, muts = run_fn prog "push_front" [ !l; VInt (Vbase.Bigint.of_int x) ] in
             l := List.assoc "self" muts)
           xs;
         (* Pop everything back: LIFO order. *)
         let popped = ref [] in
         List.iter
           (fun _ ->
             let res, muts = run_fn prog "pop_front" [ !l ] in
             l := List.assoc "self" muts;
             match res with
             | Some (VInt v) -> popped := Vbase.Bigint.to_int_exn v :: !popped
             | _ -> failwith "bad pop result")
           xs;
         !popped = xs
       with Assertion_failed m -> QCheck.Test.fail_report ("contract violated: " ^ m)))

let prop_vstd_map_ground =
  (* Differential: a random chain of store/remove, then a read at a random
     key must be decided by the solver exactly as the OCaml model says
     (valid when equal to the model's answer, not provable when off by
     one). *)
  QCheck.Test.make ~name:"vstd map ground chains match OCaml model" ~count:12
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 6) (triple (int_range 0 4) (int_range 0 50) bool)) (int_range 0 4))
    (fun (ops, probe) ->
      let module Vm = Vstd_map in
      let term = ref Vm.empty and model = ref [] in
      List.iter
        (fun (k, v, is_store) ->
          if is_store then (
            term := Vm.store !term (T.int_of k) (T.int_of v);
            model := (k, v) :: List.remove_assoc k !model)
          else (
            term := Vm.remove !term (T.int_of k);
            model := List.remove_assoc k !model))
        ops;
      let in_dom = List.mem_assoc probe !model in
      let dom_goal = Vm.dom !term (T.int_of probe) in
      let r =
        Smt.Solver.check_valid ~hyps:Vm.axioms
          (if in_dom then dom_goal else T.not_ dom_goal)
      in
      let dom_ok = r.Smt.Solver.answer = Smt.Solver.Unsat in
      let sel_ok =
        if not in_dom then true
        else
          let v = List.assoc probe !model in
          let good =
            Smt.Solver.check_valid ~hyps:Vm.axioms
              (T.eq (Vm.sel !term (T.int_of probe)) (T.int_of v))
          in
          let bad =
            Smt.Solver.check_valid ~hyps:Vm.axioms
              (T.eq (Vm.sel !term (T.int_of probe)) (T.int_of (v + 1)))
          in
          (* The wrong read must not be provable; with quantified axioms in
             context the solver reports a candidate model (Unknown) rather
             than claiming Sat. *)
          good.Smt.Solver.answer = Smt.Solver.Unsat
          && bad.Smt.Solver.answer <> Smt.Solver.Unsat
      in
      dom_ok && sel_ok)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "verus-core"
    [
      ( "algebra",
        [
          Alcotest.test_case "poly" `Quick test_poly;
          Alcotest.test_case "groebner" `Quick test_groebner;
        ] );
      ( "modes",
        [
          Alcotest.test_case "bit_vector" `Quick test_mode_bitvector;
          Alcotest.test_case "nonlinear" `Quick test_mode_nonlinear;
          Alcotest.test_case "integer_ring" `Quick test_mode_integer_ring;
          Alcotest.test_case "compute" `Quick test_mode_compute;
        ] );
      ( "epr",
        [
          Alcotest.test_case "decide + reject" `Quick test_epr;
          Alcotest.test_case "distributed lock (EPR mode)" `Quick test_dlock_epr;
        ] );
      ( "front-end",
        [
          Alcotest.test_case "typecheck rejects" `Quick test_typecheck_rejects;
          Alcotest.test_case "ownership rejects" `Quick test_ownership_rejects;
        ] );
      ( "driver",
        [
          Alcotest.test_case "refutations" `Slow test_driver_refutes;
          Alcotest.test_case "distributed lock" `Slow test_driver_dlock;
          Alcotest.test_case "vstd seq lemmas" `Slow test_vstd_lemmas;
          Alcotest.test_case "vstd map lemmas" `Slow test_vstd_map;
          Alcotest.test_case "vstd set lemmas" `Slow test_vstd_set;
          Alcotest.test_case "vstd map refutes" `Quick test_vstd_map_refute;
          Alcotest.test_case "broken programs fail" `Slow test_driver_break_programs;
        ] );
      qsuite "interp" [ prop_interp_sll ];
      qsuite "vstd-ground" [ prop_vstd_map_ground ];
    ]
