(* Verusd tests: the obligation scheduler (execution, dynamic batches,
   subtask submission, exception propagation, stats), the verus-rpc/1
   wire protocol (request/event JSON roundtrips, framing over a real
   pipe, the validator the docs gate reuses), the protocol negatives
   (garbage payloads, truncated frames, wrong schema versions — each
   answered with its documented RPCxxx code), and the end-to-end
   equivalences the daemon is sold on: byte-identical result digests
   for in-process jobs=1, an external scheduler pool, and a live
   daemon conversation; plus a second client on a warm daemon hitting
   the shared verification cache. *)

module J = Vbase.Json
module Sched = Verusd.Sched
module Rpc = Verusd.Rpc

(* ------------------------------------------------------------------ *)
(* Sched                                                              *)
(* ------------------------------------------------------------------ *)

let test_sched_run_results () =
  let pool = Sched.create ~domains:3 in
  Fun.protect
    ~finally:(fun () -> Sched.shutdown pool)
    (fun () ->
      let n = 50 in
      let tasks = Array.init n (fun i () -> i * i) in
      let out = Sched.run pool tasks in
      Alcotest.(check (list int))
        "results index-aligned"
        (List.init n (fun i -> i * i))
        (Array.to_list out))

let test_sched_run_seq_order () =
  let order = ref [] in
  let tasks =
    Array.init 5 (fun i () ->
        order := i :: !order;
        i)
  in
  let out = Sched.run_seq tasks in
  Alcotest.(check (list int)) "sequential order" [ 0; 1; 2; 3; 4 ] (List.rev !order);
  Alcotest.(check (list int)) "results" [ 0; 1; 2; 3; 4 ] (Array.to_list out)

(* A task may submit subtasks into its own batch; await must drain the
   whole growing set — this is exactly how the driver's per-function
   encode tasks spawn their per-VC solve chains. *)
let test_sched_dynamic_batch () =
  let pool = Sched.create ~domains:2 in
  Fun.protect
    ~finally:(fun () -> Sched.shutdown pool)
    (fun () ->
      let count = Atomic.make 0 in
      let b = Sched.batch () in
      let rec task depth () =
        Atomic.incr count;
        if depth > 0 then (
          Sched.submit pool b (task (depth - 1));
          Sched.submit pool b (task (depth - 1)))
      in
      for _ = 1 to 4 do
        Sched.submit pool b (task 3)
      done;
      Sched.await b;
      (* 4 roots, each a full binary tree of depth 3: 4 * (2^4 - 1). *)
      Alcotest.(check int) "all subtasks ran" 60 (Atomic.get count))

let test_sched_exception () =
  let pool = Sched.create ~domains:2 in
  Fun.protect
    ~finally:(fun () -> Sched.shutdown pool)
    (fun () ->
      let ran = Atomic.make 0 in
      let tasks =
        Array.init 10 (fun i () ->
            if i = 4 then failwith "boom";
            Atomic.incr ran)
      in
      (match Sched.run pool tasks with
      | _ -> Alcotest.fail "expected the task exception to propagate"
      | exception Failure m -> Alcotest.(check string) "first exception" "boom" m);
      (* The batch drained before re-raising: every other task ran. *)
      Alcotest.(check int) "no stragglers abandoned" 9 (Atomic.get ran))

let test_sched_stats () =
  let pool = Sched.create ~domains:2 in
  Fun.protect
    ~finally:(fun () -> Sched.shutdown pool)
    (fun () ->
      let _ = Sched.run pool (Array.init 20 (fun i () -> i)) in
      let s = Sched.stats pool in
      Alcotest.(check int) "domains" 2 s.Sched.sd_domains;
      Alcotest.(check int) "submitted" 20 s.Sched.sd_submitted;
      Alcotest.(check int) "executed sums to submitted" 20
        (List.fold_left ( + ) 0 s.Sched.sd_executed);
      Alcotest.(check int) "one batch" 1 s.Sched.sd_batches)

(* ------------------------------------------------------------------ *)
(* Rpc: JSON roundtrips and the validator                              *)
(* ------------------------------------------------------------------ *)

let check_valid what j =
  match Rpc.validate_frame j with
  | Ok () -> ()
  | Error e -> Alcotest.fail (what ^ ": validate_frame rejected: " ^ e)

let test_rpc_request_roundtrip () =
  let reqs =
    [
      Rpc.request Rpc.M_ping;
      Rpc.request ~id:7 Rpc.M_status;
      Rpc.request ~id:1 Rpc.M_shutdown;
      Rpc.request ~id:42
        (Rpc.M_job
           (Rpc.query ~profile:"Dafny" ~lint:Rpc.Lint_strict ~certify:true ~cache:false
              ~deadline_s:2.5 ~max_rounds:9 ~stream:false Rpc.Verify "dlock"));
    ]
  in
  List.iter
    (fun r ->
      let j = Rpc.request_to_json r in
      check_valid "request" j;
      match Rpc.request_of_json j with
      | Ok r' -> Alcotest.(check bool) "request roundtrips" true (r = r')
      | Error e -> Alcotest.fail ("request_of_json: " ^ e.Rpc.code ^ " " ^ e.Rpc.message))
    reqs

let test_rpc_event_roundtrip () =
  let events =
    [
      Rpc.E_vc
        {
          fn = "pop";
          vc = "pop: postcondition 0";
          answer = "unsat";
          reason = None;
          time_s = 0.12;
          cached = true;
          rung = None;
        };
      Rpc.E_vc
        {
          fn = "pop";
          vc = "pop: assertion";
          answer = "unknown";
          reason = Some "deadline";
          time_s = 1.0;
          cached = false;
          rung = Some 2;
        };
      Rpc.E_fn { fn = "pop"; ok = true; time_s = 0.3; vcs = 4 };
      Rpc.E_done
        (J.Obj
           [
             ("kind", J.String "verify");
             ("program", J.String "singly_linked");
             ("profile", J.String "Verus");
             ("ok", J.Bool true);
             ("exit_code", J.Int 0);
             ("digest", J.String "d41d8cd98f00b204e9800998ecf8427e");
             ("time_s", J.Float 0.5);
           ]);
      Rpc.E_error { Rpc.code = "RPC004"; message = "unknown program nope" };
      Rpc.E_pong;
      Rpc.E_status
        (J.Obj
           [ ("uptime_s", J.Float 1.5); ("requests", J.Int 3); ("domains", J.Int 4) ]);
    ]
  in
  List.iter
    (fun ev ->
      let j = Rpc.event_to_json ~id:9 ev in
      check_valid "event" j;
      match Rpc.event_of_json j with
      | Ok (id, ev') ->
        Alcotest.(check int) "id" 9 id;
        Alcotest.(check bool) "event roundtrips" true (ev = ev')
      | Error e -> Alcotest.fail ("event_of_json: " ^ e.Rpc.code ^ " " ^ e.Rpc.message))
    events

let test_rpc_version_rejected () =
  let j =
    J.Obj [ ("rpc", J.String "verus-rpc/2"); ("id", J.Int 0); ("method", J.String "ping") ]
  in
  (match Rpc.request_of_json j with
  | Error e -> Alcotest.(check string) "wrong version" "RPC002" e.Rpc.code
  | Ok _ -> Alcotest.fail "verus-rpc/2 request accepted");
  match Rpc.validate_frame j with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "validator accepted a wrong-version frame"

let test_rpc_framing_roundtrip () =
  let rd, wr = Unix.pipe () in
  Fun.protect
    ~finally:(fun () -> Unix.close rd)
    (fun () ->
      let j = Rpc.request_to_json (Rpc.request ~id:3 Rpc.M_status) in
      Rpc.write_frame wr j;
      (match Rpc.read_frame rd with
      | Rpc.Frame j' -> Alcotest.(check bool) "frame roundtrips" true (j = j')
      | _ -> Alcotest.fail "expected a frame");
      (* Orderly close reads as Eof, not an error. *)
      Unix.close wr;
      match Rpc.read_frame rd with
      | Rpc.Eof -> ()
      | _ -> Alcotest.fail "expected Eof after close")

let test_rpc_framing_bad () =
  (* Well-framed garbage payload: RPC001. *)
  let rd, wr = Unix.pipe () in
  let payload = "not json at all" in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (String.length payload));
  ignore (Unix.write wr hdr 0 4);
  ignore (Unix.write_substring wr payload 0 (String.length payload));
  (match Rpc.read_frame rd with
  | Rpc.Bad e -> Alcotest.(check string) "garbage payload" "RPC001" e.Rpc.code
  | _ -> Alcotest.fail "expected Bad RPC001");
  (* Truncated mid-frame: RPC007. *)
  Bytes.set_int32_be hdr 0 100l;
  ignore (Unix.write wr hdr 0 4);
  ignore (Unix.write_substring wr "short" 0 5);
  Unix.close wr;
  (match Rpc.read_frame rd with
  | Rpc.Bad e -> Alcotest.(check string) "truncated frame" "RPC007" e.Rpc.code
  | _ -> Alcotest.fail "expected Bad RPC007");
  Unix.close rd

(* ------------------------------------------------------------------ *)
(* End-to-end: a live daemon on a thread                               *)
(* ------------------------------------------------------------------ *)

open Verus

let fresh_dir =
  let n = ref 0 in
  fun tag ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "verus-test-verusd-%s-%d-%d" tag (Unix.getpid ()) !n)
    in
    (match Vcache.clear ~dir with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("could not clear " ^ dir ^ ": " ^ e));
    dir

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "verus-test-verusd-%d-%d.sock" (Unix.getpid ()) !n)

(* Run [f] against a freshly served daemon; always shut it down. *)
let with_daemon ?cache_dir ~domains f =
  let socket_path = fresh_socket () in
  let served = ref (Ok ()) in
  let th =
    Thread.create (fun () -> served := Vservice.serve ~socket_path ~domains ?cache_dir ()) ()
  in
  (* The server binds before accepting; poll until the socket answers. *)
  let rec wait_up tries =
    if tries = 0 then Alcotest.fail "daemon did not come up"
    else
      match Verusd.Client.connect ~socket_path with
      | Ok c -> Verusd.Client.close c
      | Error _ ->
        Thread.delay 0.05;
        wait_up (tries - 1)
  in
  wait_up 100;
  let shutdown () =
    match Verusd.Client.connect ~socket_path with
    | Error _ -> ()
    | Ok c ->
      ignore (Verusd.Client.call c (Rpc.request Rpc.M_shutdown));
      Verusd.Client.close c
  in
  let r =
    try f socket_path
    with e ->
      shutdown ();
      Thread.join th;
      raise e
  in
  shutdown ();
  Thread.join th;
  (match !served with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("daemon serve failed: " ^ e));
  r

let call_exn c ?on_event req =
  match Verusd.Client.call c ?on_event req with
  | Ok ev -> ev
  | Error e -> Alcotest.fail ("client call failed: " ^ e)

let done_exn = function
  | Rpc.E_done j -> j
  | Rpc.E_error e -> Alcotest.fail ("daemon answered error " ^ e.Rpc.code ^ ": " ^ e.Rpc.message)
  | _ -> Alcotest.fail "expected a done event"

let jstr j key =
  match J.member key j with
  | Some (J.String s) -> s
  | _ -> Alcotest.fail ("done payload missing string " ^ key)

let jint j key =
  match J.member key j with
  | Some (J.Int n) -> n
  | _ -> Alcotest.fail ("payload missing int " ^ key)

let verify_query ?(stream = true) program =
  Rpc.request ~id:1 (Rpc.M_job (Rpc.query ~certify:true ~stream Rpc.Verify program))

(* The headline equivalence: one program verified three ways — inline
   jobs=1, on an external scheduler pool, and over a live daemon
   conversation — produces byte-identical result digests, and the
   daemon's done payload agrees with the local exit-code policy. *)
let test_digests_agree () =
  let prog = Bench_programs.singly_linked in
  let cfg certify = Driver.Config.(default |> with_certify certify) in
  let local = Driver.verify_program ~config:(cfg true) Profiles.verus prog in
  let local_digest = Driver.result_digest local in
  (* External pool, with streaming callbacks exercised. *)
  let pool = Sched.create ~domains:3 in
  let pooled =
    Fun.protect
      ~finally:(fun () -> Sched.shutdown pool)
      (fun () ->
        Driver.verify_program
          ~config:Driver.Config.(cfg true |> with_sched pool)
          ~on_progress:(fun _ -> ())
          Profiles.verus prog)
  in
  Alcotest.(check string) "pool digest = jobs=1 digest" local_digest
    (Driver.result_digest pooled);
  (* Live daemon. *)
  with_daemon ~domains:2 (fun socket_path ->
      match Verusd.Client.connect ~socket_path with
      | Error e -> Alcotest.fail e
      | Ok c ->
        Fun.protect
          ~finally:(fun () -> Verusd.Client.close c)
          (fun () ->
            let vcs = ref 0 and fns = ref 0 in
            let on_event = function
              | Rpc.E_vc _ -> incr vcs
              | Rpc.E_fn _ -> incr fns
              | _ -> ()
            in
            let d = done_exn (call_exn c ~on_event (verify_query "singly_linked")) in
            Alcotest.(check string) "daemon digest = jobs=1 digest" local_digest
              (jstr d "digest");
            Alcotest.(check int) "exit_code mirrors local policy"
              (Vservice.result_exit_code local) (jint d "exit_code");
            Alcotest.(check int) "one vc event per obligation" (jint d "vcs") !vcs;
            Alcotest.(check int) "one fn event per function" (jint d "fns") !fns))

(* Two clients sharing one warm daemon: the first fills the shared
   cache, the second hits in it (>= 90%) and still digests equally. *)
let test_shared_cache_across_clients () =
  let cache_dir = fresh_dir "cache" in
  with_daemon ~domains:2 ~cache_dir (fun socket_path ->
      let run_client () =
        match Verusd.Client.connect ~socket_path with
        | Error e -> Alcotest.fail e
        | Ok c ->
          Fun.protect
            ~finally:(fun () -> Verusd.Client.close c)
            (fun () -> done_exn (call_exn c (verify_query ~stream:false "singly_linked")))
      in
      let d1 = run_client () in
      let d2 = run_client () in
      Alcotest.(check string) "warm digest = cold digest" (jstr d1 "digest")
        (jstr d2 "digest");
      let cache = match J.member "cache" d2 with Some c -> c | None -> Alcotest.fail "no cache stats" in
      let hits = jint cache "hits" and misses = jint cache "misses" in
      Alcotest.(check bool)
        (Printf.sprintf "second client >= 90%% hits (%d/%d)" hits (hits + misses))
        true
        (hits + misses > 0 && float_of_int hits /. float_of_int (hits + misses) >= 0.9))

(* Protocol negatives against a live daemon, each answered with its
   documented code. *)
let test_daemon_negatives () =
  with_daemon ~domains:1 (fun socket_path ->
      (* Unknown program: RPC004, and the connection survives. *)
      (match Verusd.Client.connect ~socket_path with
      | Error e -> Alcotest.fail e
      | Ok c ->
        Fun.protect
          ~finally:(fun () -> Verusd.Client.close c)
          (fun () ->
            (match call_exn c (Rpc.request (Rpc.M_job (Rpc.query Rpc.Verify "nope"))) with
            | Rpc.E_error e -> Alcotest.(check string) "unknown program" "RPC004" e.Rpc.code
            | _ -> Alcotest.fail "expected RPC004");
            match call_exn c (Rpc.request Rpc.M_ping) with
            | Rpc.E_pong -> ()
            | _ -> Alcotest.fail "connection should survive an RPC004"));
      (* Wrong schema version on an intact frame: RPC002, connection
         survives. *)
      (match Verusd.Client.connect ~socket_path with
      | Error e -> Alcotest.fail e
      | Ok c ->
        Fun.protect
          ~finally:(fun () -> Verusd.Client.close c)
          (fun () ->
            let payload = {|{"rpc":"verus-rpc/2","id":5,"method":"ping"}|} in
            let hdr = Bytes.create 4 in
            Bytes.set_int32_be hdr 0 (Int32.of_int (String.length payload));
            Verusd.Client.send_raw c (Bytes.to_string hdr ^ payload);
            (match Verusd.Client.read_event c with
            | Ok (_, Rpc.E_error e) ->
              Alcotest.(check string) "wrong version" "RPC002" e.Rpc.code
            | Ok _ -> Alcotest.fail "expected an RPC002 error event"
            | Error e -> Alcotest.fail ("read_event: " ^ e));
            match call_exn c (Rpc.request Rpc.M_ping) with
            | Rpc.E_pong -> ()
            | _ -> Alcotest.fail "connection should survive an RPC002"));
      (* Malformed frame (garbage payload): RPC001, then the daemon
         closes the connection — framing is lost for good. *)
      match Verusd.Client.connect ~socket_path with
      | Error e -> Alcotest.fail e
      | Ok c ->
        Fun.protect
          ~finally:(fun () -> Verusd.Client.close c)
          (fun () ->
            let payload = "this is not json" in
            let hdr = Bytes.create 4 in
            Bytes.set_int32_be hdr 0 (Int32.of_int (String.length payload));
            Verusd.Client.send_raw c (Bytes.to_string hdr ^ payload);
            (match Verusd.Client.read_event c with
            | Ok (_, Rpc.E_error e) ->
              Alcotest.(check string) "garbage payload" "RPC001" e.Rpc.code
            | Ok _ -> Alcotest.fail "expected an RPC001 error event"
            | Error e -> Alcotest.fail ("read_event: " ^ e));
            match Verusd.Client.read_event c with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "daemon should close after a malformed frame"))

(* status: required fields present and sane. *)
let test_daemon_status () =
  with_daemon ~domains:2 (fun socket_path ->
      match Verusd.Client.connect ~socket_path with
      | Error e -> Alcotest.fail e
      | Ok c ->
        Fun.protect
          ~finally:(fun () -> Verusd.Client.close c)
          (fun () ->
            match call_exn c (Rpc.request Rpc.M_status) with
            | Rpc.E_status j ->
              Alcotest.(check int) "domains" 2 (jint j "domains");
              Alcotest.(check bool) "requests counted" true (jint j "requests" >= 1);
              (match J.member "uptime_s" j with
              | Some v when Option.is_some (J.to_float v) -> ()
              | _ -> Alcotest.fail "status missing uptime_s")
            | _ -> Alcotest.fail "expected a status event"))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "verusd"
    [
      ( "sched",
        [
          Alcotest.test_case "run results" `Quick test_sched_run_results;
          Alcotest.test_case "run_seq order" `Quick test_sched_run_seq_order;
          Alcotest.test_case "dynamic batch" `Quick test_sched_dynamic_batch;
          Alcotest.test_case "exception propagation" `Quick test_sched_exception;
          Alcotest.test_case "stats" `Quick test_sched_stats;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "request roundtrip" `Quick test_rpc_request_roundtrip;
          Alcotest.test_case "event roundtrip" `Quick test_rpc_event_roundtrip;
          Alcotest.test_case "version rejected" `Quick test_rpc_version_rejected;
          Alcotest.test_case "framing roundtrip" `Quick test_rpc_framing_roundtrip;
          Alcotest.test_case "framing negatives" `Quick test_rpc_framing_bad;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "digests agree" `Quick test_digests_agree;
          Alcotest.test_case "shared cache across clients" `Quick
            test_shared_cache_across_clients;
          Alcotest.test_case "protocol negatives" `Quick test_daemon_negatives;
          Alcotest.test_case "status" `Quick test_daemon_status;
        ] );
    ]
