(* Tests for the certificate pipeline: the solver's emission side
   (Smt.Cert) against the independent replay kernel (Vcheck).

   The adversarial half mutates real certificates — dropping resolution
   antecedents, perturbing Farkas coefficients, splicing congruence
   chains across unrelated terms, truncating the derivation — and
   demands the kernel reject each with the right code.  A checker that
   accepts a damaged proof is strictly worse than no checker. *)

module T = Smt.Term
module S = Smt.Sort
module Solver = Smt.Solver
module Cert = Smt.Cert
module Json = Vbase.Json

let certify_config = { Solver.default_config with certify = true }

let icon name = T.const (T.Sym.fresh name [] S.Int)
let bcon name = T.const (T.Sym.fresh name [] S.Bool)

(* Solve with certification on; the assertions must be unsat, and the
   result must carry a certificate. *)
let cert_of assertions =
  let r = Solver.solve ~config:certify_config assertions in
  Alcotest.(check bool) "unsat" true (r.Solver.answer = Solver.Unsat);
  match r.Solver.cert with
  | Some c -> c
  | None -> Alcotest.fail "no certificate on Unsat result"

let check_ok what c =
  match Vcheck.check (Cert.to_json c) with
  | Vcheck.Checked _ -> ()
  | Vcheck.Rejected { code; reason } ->
    Alcotest.fail (Printf.sprintf "%s: rejected %s: %s" what code reason)

(* ------------------------------------------------------------------ *)
(* End-to-end: emit and replay                                         *)
(* ------------------------------------------------------------------ *)

let test_prop_unsat () =
  (* Purely propositional: exercises input + learned (RUP) steps. *)
  let p = bcon "p" and q = bcon "q" in
  let c = cert_of [ T.or_ [ p; q ]; T.or_ [ T.not_ p; q ]; T.or_ [ p; T.not_ q ];
                    T.or_ [ T.not_ p; T.not_ q ] ] in
  check_ok "prop" c

let test_euf_unsat () =
  let f = T.Sym.fresh "f" [ S.Int ] S.Int in
  let a = icon "a" and b = icon "b" and c = icon "c" in
  let cert =
    cert_of
      [ T.eq (T.app f [ a ]) b; T.eq a c; T.not_ (T.eq (T.app f [ c ]) b) ]
  in
  check_ok "euf" cert

let test_lia_pair_unsat () =
  let x = icon "x" in
  let c = cert_of [ T.le x (T.int_of 3); T.le (T.int_of 5) x ] in
  check_ok "lia-pair" c

let test_lia_simplex_unsat () =
  let x = icon "x" and y = icon "y" in
  let c =
    cert_of
      [
        T.le (T.add [ x; y ]) (T.int_of 2);
        T.le (T.int_of 2) x;
        T.le (T.int_of 1) y;
      ]
  in
  check_ok "lia-simplex" c

let test_eq_split_unsat () =
  (* Forces the trichotomy path: x <> y with x and y pinned equal. *)
  let x = icon "x" and y = icon "y" in
  let c =
    cert_of
      [ T.not_ (T.eq x y); T.le x y; T.le y x ]
  in
  check_ok "eq-split" c

let test_mixed_unsat () =
  (* EUF and LIA cooperating: f(x) = 1, f(y) = 2, x = y. *)
  let f = T.Sym.fresh "g" [ S.Int ] S.Int in
  let x = icon "mx" and y = icon "my" in
  let c =
    cert_of
      [
        T.eq (T.app f [ x ]) (T.int_of 1);
        T.eq (T.app f [ y ]) (T.int_of 2);
        T.eq x y;
      ]
  in
  check_ok "mixed" c

let test_quant_unsat () =
  (* Instantiation: (forall i. f(i) <= 10) /\ f(7) > 10. *)
  let f = T.Sym.fresh "h" [ S.Int ] S.Int in
  let i = T.bvar "i" S.Int in
  let body = T.le (T.app f [ i ]) (T.int_of 10) in
  let q = T.forall [ ("i", S.Int) ] body in
  let c = cert_of [ q; T.lt (T.int_of 10) (T.app f [ T.int_of 7 ]) ] in
  check_ok "quant" c

let test_digest_stable () =
  let x = icon "x" in
  let mk () = cert_of [ T.le x (T.int_of 3); T.le (T.int_of 5) x ] in
  let d1 = Cert.digest (mk ()) and d2 = Cert.digest (mk ()) in
  Alcotest.(check string) "digest deterministic" d1 d2

(* ------------------------------------------------------------------ *)
(* Mutations: every damaged certificate must be rejected               *)
(* ------------------------------------------------------------------ *)

let expect_reject what code j =
  match Vcheck.check j with
  | Vcheck.Checked _ -> Alcotest.fail (what ^ ": damaged certificate was accepted")
  | Vcheck.Rejected { code = got; reason = _ } ->
    Alcotest.(check string) (what ^ " code") code got

(* Map over the steps array of an smt certificate. *)
let map_steps f j =
  match j with
  | Json.Obj fields ->
    Json.Obj
      (List.map
         (function
           | "steps", Json.List steps -> ("steps", Json.List (f steps))
           | kv -> kv)
         fields)
  | _ -> Alcotest.fail "not an object"

let with_field k v j =
  match j with
  | Json.Obj fields ->
    Json.Obj (List.map (function k', _ when k' = k -> (k, v) | kv -> kv) fields)
  | _ -> Alcotest.fail "not an object"

let test_mutation_drop_antecedent () =
  (* Removing one antecedent from a resolution step must break restricted
     unit propagation. *)
  let p = bcon "dp" and q = bcon "dq" in
  let c = cert_of [ T.or_ [ p; q ]; T.or_ [ T.not_ p; q ]; T.or_ [ p; T.not_ q ];
                    T.or_ [ T.not_ p; T.not_ q ] ] in
  let j = Cert.to_json c in
  let mutated = ref false in
  let j' =
    map_steps
      (List.map (fun step ->
           match step with
           | Json.List [ lits; Json.List (Json.String "r" :: (_ :: _ :: _ as antes)) ]
             when not !mutated ->
             mutated := true;
             Json.List [ lits; Json.List (Json.String "r" :: List.tl antes) ]
           | s -> s))
      j
  in
  Alcotest.(check bool) "found a resolution step to damage" true !mutated;
  expect_reject "drop-antecedent" "CK002" j'

let test_mutation_perturb_farkas () =
  (* Bumping one multiplier breaks the cancellation. *)
  let x = icon "fx" and y = icon "fy" in
  let c =
    cert_of
      [
        T.le (T.add [ x; y ]) (T.int_of 2);
        T.le (T.int_of 2) x;
        T.le (T.int_of 1) y;
      ]
  in
  let j = Cert.to_json c in
  let mutated = ref false in
  let j' =
    map_steps
      (List.map (fun step ->
           match step with
           | Json.List [ lits; Json.List (Json.String "f" :: combo) ] when not !mutated ->
             mutated := true;
             let combo =
               match combo with
               | Json.List [ l; Json.String _; ix ] :: rest ->
                 Json.List [ l; Json.String "17/3"; ix ] :: rest
               | _ -> combo
             in
             Json.List [ lits; Json.List (Json.String "f" :: combo) ]
           | s -> s))
      j
  in
  Alcotest.(check bool) "found a Farkas step to damage" true !mutated;
  expect_reject "perturb-farkas" "CK005" j'

let test_mutation_splice_euf () =
  (* Redirecting an equality meaning to unrelated nodes must make the
     congruence replay fall short. *)
  let f = T.Sym.fresh "sf" [ S.Int ] S.Int in
  let a = icon "sa" and b = icon "sb" and c = icon "sc" in
  let cert =
    cert_of [ T.eq (T.app f [ a ]) b; T.eq a c; T.not_ (T.eq (T.app f [ c ]) b) ]
  in
  let j = Cert.to_json cert in
  (* Point every positive-equality meaning at node pair (n, n): the merges
     become trivial and the disequality can no longer be violated. *)
  let j' =
    match Json.member "lits" j with
    | Some (Json.List lits) ->
      let lits =
        List.map
          (fun entry ->
            match entry with
            | Json.List [ l; Json.List [ Json.Bool true; Json.Int n; Json.Int _ ]; views ]
              ->
              Json.List [ l; Json.List [ Json.Bool true; Json.Int n; Json.Int n ]; views ]
            | e -> e)
          lits
      in
      with_field "lits" (Json.List lits) j
    | _ -> Alcotest.fail "no lits"
  in
  expect_reject "splice-euf" "CK004" j'

let test_mutation_truncate () =
  (* Cutting the tail of the log leaves the terminal empty-clause step
     dangling. *)
  let x = icon "tx" in
  let c = cert_of [ T.le x (T.int_of 3); T.le (T.int_of 5) x ] in
  let j = Cert.to_json c in
  let j' =
    map_steps
      (fun steps ->
        let n = List.length steps in
        List.filteri (fun i _ -> i < n - 1) steps)
      j
  in
  expect_reject "truncate" "CK007" j'

let test_mutation_garbage () =
  expect_reject "garbage" "CK001" (Json.Obj [ ("schema", Json.String "nope") ]);
  match Vcheck.check_string "{" with
  | Vcheck.Rejected { code = "CK001"; _ } -> ()
  | _ -> Alcotest.fail "unparseable certificate accepted"

(* ------------------------------------------------------------------ *)
(* End-to-end driver properties                                        *)
(* ------------------------------------------------------------------ *)

let test_jobs_determinism () =
  (* Certified replay is deterministic under parallel verification: the
     same program digests identically (including every certificate
     digest) at jobs=1 and jobs=4, and every obligation's certificate
     checks. *)
  let prog = Verus.Bench_programs.singly_linked in
  let profile = Verus.Profiles.verus in
  let config n =
    Verus.Driver.Config.(default |> with_jobs n |> with_certify true)
  in
  let r1 = Verus.Driver.verify_program ~config:(config 1) profile prog in
  let r4 = Verus.Driver.verify_program ~config:(config 4) profile prog in
  Alcotest.(check bool) "jobs=1 certified ok" true r1.Verus.Driver.pr_ok;
  Alcotest.(check bool) "jobs=4 certified ok" true r4.Verus.Driver.pr_ok;
  List.iter
    (fun (fnr : Verus.Driver.fn_result) ->
      List.iter
        (fun (v : Verus.Driver.vc_result) ->
          match v.Verus.Driver.vcr_cert with
          | Verus.Driver.Cert_checked _ -> ()
          | _ ->
            Alcotest.fail
              (Printf.sprintf "obligation %S lacks a checked certificate"
                 v.Verus.Driver.vcr_name))
        fnr.Verus.Driver.fnr_vcs)
    r1.Verus.Driver.pr_fns;
  Alcotest.(check string) "replay deterministic under jobs>1"
    (Verus.Driver.result_digest r1)
    (Verus.Driver.result_digest r4)

let test_kernel_independence () =
  (* The design constraint the dune stanza encodes: the kernel's entire
     dependency surface is vbase.  Linking lib/smt into lib/vcheck would
     silently collapse the two sides of the certification story. *)
  let rec find dir n =
    if n <= 0 then None
    else
      let p = Filename.concat dir "lib/vcheck/dune" in
      if Sys.file_exists p then Some p
      else
        let parent = Filename.dirname dir in
        if String.equal parent dir then None else find parent (n - 1)
  in
  match find (Sys.getcwd ()) 8 with
  | None -> Alcotest.fail "lib/vcheck/dune not found above the test cwd"
  | Some path ->
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let stanza =
      String.split_on_char '\n' s
      |> List.filter (fun l ->
             let l = String.trim l in
             not (String.length l > 0 && l.[0] = ';'))
      |> String.concat "\n"
    in
    let matches re =
      try
        ignore (Str.search_forward (Str.regexp re) stanza 0);
        true
      with Not_found -> false
    in
    Alcotest.(check bool) "vcheck libraries stanza is vbase alone" true
      (matches "(libraries[ \t\n]+vbase[ \t\n]*)");
    Alcotest.(check bool) "vcheck must not link the solver" false (matches "\\bsmt\\b")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "vcheck"
    [
      ( "replay",
        [
          Alcotest.test_case "prop" `Quick test_prop_unsat;
          Alcotest.test_case "euf" `Quick test_euf_unsat;
          Alcotest.test_case "lia-pair" `Quick test_lia_pair_unsat;
          Alcotest.test_case "lia-simplex" `Quick test_lia_simplex_unsat;
          Alcotest.test_case "eq-split" `Quick test_eq_split_unsat;
          Alcotest.test_case "mixed" `Quick test_mixed_unsat;
          Alcotest.test_case "quant" `Quick test_quant_unsat;
          Alcotest.test_case "digest-stable" `Quick test_digest_stable;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "drop-antecedent" `Quick test_mutation_drop_antecedent;
          Alcotest.test_case "perturb-farkas" `Quick test_mutation_perturb_farkas;
          Alcotest.test_case "splice-euf" `Quick test_mutation_splice_euf;
          Alcotest.test_case "truncate" `Quick test_mutation_truncate;
          Alcotest.test_case "garbage" `Quick test_mutation_garbage;
        ] );
      ( "driver",
        [
          Alcotest.test_case "jobs-determinism" `Quick test_jobs_determinism;
          Alcotest.test_case "kernel-independence" `Quick test_kernel_independence;
        ] );
    ]
