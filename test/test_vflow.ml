(* Vflow tests: the abstract domains (hand-computed transfer cases plus
   qcheck soundness sweeps against concrete arithmetic), the VIR abstract
   interpreter (over-approximation of the concrete Interp, widening
   termination on adversarial loop nests, invariant-guided narrowing),
   the VC-level prescreen verdicts, the driver integration (discharge,
   digest stability, certify demotion, cache salt), the VL040–VL046 lint
   codes with a static-vs-dynamic pin on the bundled constant-condition
   program, and the verus-lint/1 + verus-analyze-bench/1 schemas. *)

module B = Vbase.Bigint
module J = Vbase.Json
module T = Smt.Term
module S = Smt.Sort
module D = Vflow.Dom
module P = Vflow.Prescreen
open Verus
open Vir

let fin n = D.Fin (B.of_int n)

let dom_equal a b = D.leq a b && D.leq b a

let check_dom name a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s ≡ %s" name (D.to_string a) (D.to_string b))
    true (dom_equal a b)

let mem n a = D.mem_int (B.of_int n) a

let check_mem name n a expected =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d ∈ %s" name n (D.to_string a))
    expected (mem n a)

let b3 = Alcotest.testable (Fmt.of_to_string (function
  | D.Btrue -> "Btrue" | D.Bfalse -> "Bfalse" | D.Bmaybe -> "Bmaybe")) ( = )

(* Minimal program scaffolding, as in test_vlint. *)
let p name ty = { pname = name; pty = ty; pmut = false }

let fn ?(mode = Exec) ?(params = []) ?ret ?(requires = []) ?(ensures = []) ?body ?spec_body
    ?(attrs = []) name =
  { fname = name; fmode = mode; params; ret; requires; ensures; body; spec_body; attrs }

let prog ?(datatypes = []) functions = { datatypes; functions }
let empty_prog = prog []
let int_ = TInt I_math

let has code ds = List.exists (fun d -> String.equal d.Vlint.code code) ds
let check_has name code ds = Alcotest.(check bool) (name ^ " fires " ^ code) true (has code ds)

let check_not name code ds =
  Alcotest.(check bool) (name ^ " silent on " ^ code) false (has code ds)

(* ------------------------------------------------------------------ *)
(* Dom: hand-computed transfer cases                                   *)
(* ------------------------------------------------------------------ *)

let test_dom_interval () =
  check_dom "add" (D.add (D.range_i 0 10) (D.range_i 5 7)) (D.range_i 5 17);
  check_dom "sub" (D.sub (D.range_i 0 10) (D.range_i 5 7)) (D.range_i (-7) 5);
  check_dom "mul signs" (D.mul (D.range_i (-2) 3) (D.range_i 4 5)) (D.range_i (-10) 15);
  check_dom "const fold" (D.mul (D.of_int 6) (D.of_int 7)) (D.of_int 42);
  Alcotest.(check (option string))
    "const_int" (Some "42")
    (Option.map B.to_string (D.const_int (D.mul (D.of_int 6) (D.of_int 7))));
  (* Euclidean division: 7/4 = 1, 19/4 = 4. *)
  let q = D.ediv (D.range_i 7 19) (D.of_int 4) in
  check_mem "ediv lo" 1 q true;
  check_mem "ediv hi" 4 q true;
  Alcotest.(check bool) "ediv within [1,4]" true (D.leq q (D.range_i 1 4));
  (* Remainders land in [0, divisor). *)
  Alcotest.(check bool) "emod range" true
    (D.leq (D.emod D.top_int (D.of_int 8)) (D.range_i 0 7));
  check_dom "neg" (D.neg_ (D.range_i 2 5)) (D.range_i (-5) (-2));
  (* Meets: overlapping intervals intersect, disjoint ones are Bot. *)
  check_dom "meet" (D.meet (D.range_i 0 10) (D.range_i 5 20)) (D.range_i 5 10);
  Alcotest.(check bool) "disjoint meet is Bot" true
    (D.is_bot (D.meet (D.range_i 0 4) (D.range_i 5 9)));
  check_dom "clamp_le" (D.clamp_le D.top_int (fin 5)) (D.range D.NegInf (fin 5))

let even = D.mk_int { D.lo = D.NegInf; hi = D.PosInf } { D.m = B.two; r = B.zero }
let odd = D.mk_int { D.lo = D.NegInf; hi = D.PosInf } { D.m = B.two; r = B.one }

let test_dom_congruence () =
  check_mem "even" 4 even true;
  check_mem "even excludes odd" 3 even false;
  (* even + even = even; even * anything = even. *)
  check_mem "even+even" 3 (D.add even even) false;
  check_mem "even*top" 3 (D.mul even D.top_int) false;
  check_mem "even*top keeps evens" 6 (D.mul even D.top_int) true;
  (* (≡1 mod 3) + (≡2 mod 3) ≡ 0 (mod 3). *)
  let c1 = D.mk_int { D.lo = D.NegInf; hi = D.PosInf } { D.m = B.of_int 3; r = B.one } in
  let c2 = D.mk_int { D.lo = D.NegInf; hi = D.PosInf } { D.m = B.of_int 3; r = B.two } in
  check_mem "cong add hit" 6 (D.add c1 c2) true;
  check_mem "cong add miss" 7 (D.add c1 c2) false;
  (* join of two even constants keeps parity: 3 ∉ join(2,4). *)
  let j = D.join (D.of_int 2) (D.of_int 4) in
  check_mem "join parity" 3 j false;
  check_mem "join lo" 2 j true;
  check_mem "join hi" 4 j true;
  (* mk_int reduces the interval against the congruence. *)
  let r = D.mk_int { D.lo = fin 1; hi = fin 9 } { D.m = B.of_int 4; r = B.zero } in
  check_dom "reduce vs cong"
    r
    (D.meet (D.range_i 4 8)
       (D.mk_int { D.lo = D.NegInf; hi = D.PosInf } { D.m = B.of_int 4; r = B.zero }))

let test_dom_lattice () =
  (* Widening: the unstable bound escapes to infinity, the stable one stays. *)
  let w = D.widen (D.range_i 0 10) (D.range_i 0 11) in
  check_mem "widen keeps lo" (-1) w false;
  check_mem "widen opens hi" 1000000 w true;
  check_dom "widen stable" (D.widen (D.range_i 0 10) (D.range_i 0 10)) (D.range_i 0 10);
  Alcotest.(check bool) "widen above join" true
    (D.leq (D.join (D.range_i 0 10) (D.range_i 0 11)) w);
  (* Comparisons are definite only when they hold for every member. *)
  Alcotest.check b3 "disjoint eq3" D.Bfalse (D.eq3 (D.range_i 0 4) (D.range_i 5 9));
  Alcotest.check b3 "parity eq3" D.Bfalse (D.eq3 even odd);
  Alcotest.check b3 "const eq3" D.Btrue (D.eq3 (D.of_int 3) (D.of_int 3));
  Alcotest.check b3 "le3 touching" D.Btrue (D.le3 (D.range_i 0 4) (D.range_i 4 9));
  Alcotest.check b3 "lt3 touching" D.Bmaybe (D.lt3 (D.range_i 0 4) (D.range_i 4 9));
  Alcotest.check b3 "lt3 separated" D.Btrue (D.lt3 (D.range_i 0 3) (D.range_i 4 9));
  (* Three-valued connectives: Kleene tables, spot-checked. *)
  Alcotest.check b3 "and3 absorbs false" D.Bfalse (D.and3 D.Bmaybe D.Bfalse);
  Alcotest.check b3 "or3 absorbs true" D.Btrue (D.or3 D.Bmaybe D.Btrue);
  Alcotest.check b3 "not3 maybe" D.Bmaybe (D.not3 D.Bmaybe);
  Alcotest.check b3 "implies3 false premise" D.Btrue (D.implies3 D.Bfalse D.Bmaybe);
  Alcotest.check b3 "iff3" D.Btrue (D.iff3 D.Bfalse D.Bfalse)

(* ------------------------------------------------------------------ *)
(* Dom: qcheck soundness — abstract ops over-approximate concrete ones *)
(* ------------------------------------------------------------------ *)

(* A concrete integer together with an abstract value that contains it:
   an interval slop around the point, optionally meeted with the exact
   congruence class the point lives in. *)
let gen_member =
  QCheck.Gen.(
    int_range (-50) 50 >>= fun n ->
    int_range 0 20 >>= fun dl ->
    int_range 0 20 >>= fun dh ->
    int_range 0 6 >>= fun m ->
    let base = D.range_i (n - dl) (n + dh) in
    let a =
      if m < 2 then base
      else
        let r = ((n mod m) + m) mod m in
        D.meet base
          (D.mk_int { D.lo = D.NegInf; hi = D.PosInf }
             { D.m = B.of_int m; r = B.of_int r })
    in
    return (n, a))

let euclid a b =
  let q, r = B.ediv_rem (B.of_int a) (B.of_int b) in
  (q, r)

let qcheck_dom_sound =
  QCheck.Test.make ~name:"abstract arithmetic over-approximates ints" ~count:2000
    (QCheck.make QCheck.Gen.(pair gen_member gen_member))
    (fun ((x, a), (y, b)) ->
      let memb v d = D.mem_int v d in
      let ops =
        [
          ("add", B.add, D.add);
          ("sub", B.sub, D.sub);
          ("mul", B.mul, D.mul);
        ]
      in
      List.iter
        (fun (nm, c, abs_op) ->
          if not (memb (c (B.of_int x) (B.of_int y)) (abs_op a b)) then
            QCheck.Test.fail_reportf "%s unsound on %d, %d" nm x y)
        ops;
      (if y <> 0 then begin
         let q, r = euclid x y in
         if not (memb q (D.ediv a b)) then
           QCheck.Test.fail_reportf "ediv unsound on %d, %d" x y;
         if not (memb r (D.emod a b)) then
           QCheck.Test.fail_reportf "emod unsound on %d, %d" x y
       end);
      (* Definite comparison verdicts must agree with the concrete pair. *)
      (match D.le3 a b with
      | D.Btrue when not (x <= y) -> QCheck.Test.fail_reportf "le3 Btrue but %d > %d" x y
      | D.Bfalse when x <= y -> QCheck.Test.fail_reportf "le3 Bfalse but %d <= %d" x y
      | _ -> ());
      (match D.eq3 a b with
      | D.Btrue when x <> y -> QCheck.Test.fail_reportf "eq3 Btrue but %d <> %d" x y
      | D.Bfalse when x = y -> QCheck.Test.fail_reportf "eq3 Bfalse but both %d" x
      | _ -> ());
      (* Lattice: join keeps both members, widen sits above join. *)
      if not (memb (B.of_int x) (D.join a b) && memb (B.of_int y) (D.join a b)) then
        QCheck.Test.fail_reportf "join lost a member";
      if not (D.leq (D.join a b) (D.widen a b)) then
        QCheck.Test.fail_reportf "widen below join";
      true)

(* ------------------------------------------------------------------ *)
(* Absint.eval_expr: over-approximates the concrete interpreter        *)
(* ------------------------------------------------------------------ *)

(* Random VIR expressions over two integer variables.  Division and
   modulus keep constant nonzero divisors so the concrete run cannot
   fault; everything else composes freely. *)
let gen_iexpr =
  QCheck.Gen.(
    fix (fun self n ->
        let leaf =
          oneof
            [ map (fun k -> EInt k) (int_range (-20) 20); oneofl [ v "x"; v "y" ] ]
        in
        if n <= 0 then leaf
        else
          let sub = self (n / 2) in
          frequency
            [
              (2, leaf);
              (3, map2 ( +: ) sub sub);
              (2, map2 ( -: ) sub sub);
              (2, map2 ( *: ) sub sub);
              (1, map (fun e -> EUnop (Neg, e)) sub);
              ( 1,
                map2 (fun e k -> EBinop (Div, e, i k)) sub (oneofl [ 2; 3; 5; 7; -4 ]) );
              (1, map2 (fun e k -> EBinop (Mod, e, i k)) sub (oneofl [ 2; 3; 5; 7 ]));
            ]))

let gen_bexpr =
  QCheck.Gen.(
    let cmp =
      map3
        (fun op a b -> EBinop (op, a, b))
        (oneofl [ Lt; Le; Gt; Ge; Eq; Ne ])
        (gen_iexpr 3) (gen_iexpr 3)
    in
    frequency
      [
        (4, cmp);
        (1, map2 ( &&: ) cmp cmp);
        (1, map2 ( ||: ) cmp cmp);
        (1, map enot cmp);
        (1, map2 ( ==>: ) cmp cmp);
      ])

let gen_expr =
  QCheck.Gen.(
    frequency
      [
        (3, gen_iexpr 5);
        (2, gen_bexpr);
        (1, map3 (fun c a b -> EIte (c, a, b)) gen_bexpr (gen_iexpr 3) (gen_iexpr 3));
      ])

let qcheck_absint_sound =
  QCheck.Test.make ~name:"Absint.eval_expr over-approximates Interp" ~count:2000
    (QCheck.make
       QCheck.Gen.(
         gen_expr >>= fun e ->
         int_range (-10) 10 >>= fun xv ->
         int_range (-10) 10 >>= fun yv ->
         int_range 0 5 >>= fun dx ->
         int_range 0 5 >>= fun dy ->
         return (e, xv, yv, dx, dy)))
    (fun (e, xv, yv, dx, dy) ->
      let cenv =
        [ ("x", Interp.VInt (B.of_int xv)); ("y", Interp.VInt (B.of_int yv)) ]
      in
      let aenv =
        [ ("x", D.range_i (xv - dx) (xv + dx)); ("y", D.range_i (yv - dy) (yv + dy)) ]
      in
      let concrete = Interp.eval_expr empty_prog cenv e in
      let abstract = Vflow.Absint.eval_expr empty_prog aenv e in
      match concrete with
      | Interp.VInt n ->
        if D.mem_int n abstract then true
        else
          QCheck.Test.fail_reportf "concrete %s escapes %s" (B.to_string n)
            (D.to_string abstract)
      | Interp.VBool b ->
        if D.mem_bool b abstract then true
        else
          QCheck.Test.fail_reportf "concrete %b escapes %s" b (D.to_string abstract)
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* Absint: widening termination and invariant-guided narrowing         *)
(* ------------------------------------------------------------------ *)

(* Adversarial loop nests: counters that grow without bound, oscillate
   in sign, and feed each other across nesting levels — every loop head
   must still reach a fixpoint through widening. *)
let test_widening_terminates () =
  let rec nest d =
    if d = 0 then
      [ SAssign ("x", v "x" +: v "y"); SAssign ("y", i 0 -: v "y" +: i 1) ]
    else
      [
        SWhile
          {
            cond = v "x" <: i 1000000;
            invariants = [];
            decreases = None;
            body = nest (d - 1) @ [ SAssign ("x", v "x" +: i 1) ];
          };
      ]
  in
  let f =
    fn
      ~body:([ SLet ("x", int_, i 0); SLet ("y", int_, i 1) ] @ nest 5)
      "nest"
  in
  let findings = Vflow.Absint.analyze_fn (prog [ f ]) f in
  Alcotest.(check bool) "deep nest reaches a fixpoint" true (List.length findings >= 0);
  (* A loop that never stabilises without widening: x doubles forever. *)
  let g =
    fn
      ~body:
        [
          SLet ("x", int_, i 1);
          SWhile
            {
              cond = EBool true;
              invariants = [];
              decreases = None;
              body = [ SAssign ("x", v "x" *: i 2) ];
            };
        ]
      "doubler"
  in
  let findings = Vflow.Absint.analyze_fn (prog [ g ]) g in
  Alcotest.(check bool) "doubling loop reaches a fixpoint" true (List.length findings >= 0)

(* After `while (i < 10) invariant i <= 10 { i += 1 }` starting at 0,
   narrowing the widened head against the invariant pins i = 10 at loop
   exit — observable as VL045 on the following assert.  Without the
   invariant the widened head is [0, +inf) and the assert stays Bmaybe. *)
let test_narrowing () =
  let body inv =
    [
      SLet ("j", int_, i 0);
      SWhile
        {
          cond = v "j" <: i 10;
          invariants = inv;
          decreases = None;
          body = [ SAssign ("j", v "j" +: i 1) ];
        };
      SAssert (v "j" ==: i 10, H_default);
    ]
  in
  let with_inv = fn "f" ~body:(body [ v "j" <=: i 10 ]) in
  check_has "narrowed exit state proves assert" "VL045"
    (Vflow.Absint.analyze_fn (prog [ with_inv ]) with_inv
    |> List.map (fun (f : Vflow.Absint.finding) ->
           { Vlint.code = f.Vflow.Absint.f_code; severity = Vlint.Info;
             fn = Some f.Vflow.Absint.f_fn; message = f.Vflow.Absint.f_msg }));
  let without = fn "f" ~body:(body []) in
  let ds =
    Vflow.Absint.analyze_fn (prog [ without ]) without
    |> List.filter (fun (f : Vflow.Absint.finding) -> f.Vflow.Absint.f_code = "VL045")
  in
  Alcotest.(check int) "widened head alone cannot prove it" 0 (List.length ds)

(* ------------------------------------------------------------------ *)
(* Prescreen: VC-level verdicts                                        *)
(* ------------------------------------------------------------------ *)

let xi = T.const (T.Sym.declare "pv_x" [] S.Int)
let yi = T.const (T.Sym.declare "pv_y" [] S.Int)
let box lo hi t = [ T.ge t (T.int_of lo); T.le t (T.int_of hi) ]

let verdict_of ~hyps ~goal = (P.check ~hyps ~goal ()).P.verdict

let test_prescreen_verdicts () =
  let hyps = box 0 10 xi in
  Alcotest.(check string) "range goal proved" "proved"
    (P.verdict_string (verdict_of ~hyps ~goal:(T.le xi (T.int_of 20))));
  Alcotest.(check string) "tight goal unknown" "unknown"
    (P.verdict_string (verdict_of ~hyps ~goal:(T.le xi (T.int_of 5))));
  Alcotest.(check string) "impossible goal refuted" "refuted"
    (P.verdict_string (verdict_of ~hyps ~goal:(T.ge xi (T.int_of 11))));
  (* Arithmetic propagates through definitions: y = x + 5 with x in
     [0,10] proves y <= 15. *)
  let hyps = T.eq yi (T.add [ xi; T.int_of 5 ]) :: box 0 10 xi in
  Alcotest.(check string) "derived range proved" "proved"
    (P.verdict_string (verdict_of ~hyps ~goal:(T.le yi (T.int_of 15))))

let test_prescreen_vacuous () =
  let r =
    P.check ~hyps:[ T.ge xi (T.int_of 5); T.le xi (T.int_of 3) ] ~goal:(T.eq yi (T.int_of 99)) ()
  in
  Alcotest.(check string) "contradictory hyps prove anything" "proved"
    (P.verdict_string r.P.verdict);
  Alcotest.(check bool) "and are flagged vacuous" true r.P.vacuous

let test_prescreen_residue () =
  (* A guarded hypothesis whose guard is abstractly false is prunable. *)
  let dead = T.implies (T.lt xi (T.int_of 0)) (T.eq yi (T.int_of 99)) in
  let r =
    P.check
      ~hyps:(dead :: T.eq yi (T.add [ xi; xi ]) :: box 0 10 xi)
      ~goal:(T.le yi (T.int_of 5)) ()
  in
  Alcotest.(check string) "goal stays unknown" "unknown" (P.verdict_string r.P.verdict);
  Alcotest.(check bool) "dead guard lands in drop" true
    (List.exists (T.equal dead) r.P.drop);
  (* Facts are ground, sorted by rendering, and not already hypotheses. *)
  let rendered = List.map T.to_string r.P.facts in
  Alcotest.(check (list string)) "facts sorted" (List.sort compare rendered) rendered;
  List.iter
    (fun f ->
      Alcotest.(check bool) "fact is ground" true (T.free_bvars f = []);
      Alcotest.(check bool) "fact not already a hypothesis" false
        (List.exists (T.equal f) (dead :: box 0 10 xi)))
    r.P.facts;
  (* Determinism: same inputs, same verdict/facts/pass count. *)
  let r2 =
    P.check
      ~hyps:(dead :: T.eq yi (T.add [ xi; xi ]) :: box 0 10 xi)
      ~goal:(T.le yi (T.int_of 5)) ()
  in
  Alcotest.(check int) "pass count deterministic" r.P.passes r2.P.passes;
  Alcotest.(check (list string)) "facts deterministic" rendered
    (List.map T.to_string r2.P.facts)

(* ------------------------------------------------------------------ *)
(* Driver integration                                                  *)
(* ------------------------------------------------------------------ *)

let test_driver_discharge () =
  let run config = Driver.verify_program ~config Profiles.verus Bench_programs.const_cond in
  let plain = run Driver.Config.default in
  let pre = run Driver.Config.(default |> with_analyze true) in
  Alcotest.(check bool) "verifies with prescreen" true pre.Driver.pr_ok;
  Alcotest.(check bool) "discharges at rung 0" true (Driver.prescreen_discharged pre > 0);
  List.iter
    (fun (fr : Driver.fn_result) ->
      List.iter
        (fun (vr : Driver.vc_result) ->
          if vr.Driver.vcr_source = Driver.Src_prescreen then
            Alcotest.(check int) "prescreen ships zero query bytes" 0 vr.Driver.vcr_bytes)
        fr.Driver.fnr_vcs)
    pre.Driver.pr_fns;
  (* The prescreen changes cost, never the digest. *)
  Alcotest.(check string) "digest matches plain run" (Driver.result_digest plain)
    (Driver.result_digest pre);
  let pre2 = run Driver.Config.(default |> with_analyze true |> with_jobs 2) in
  Alcotest.(check string) "digest stable under jobs=2" (Driver.result_digest pre)
    (Driver.result_digest pre2);
  (* Under --certify the prescreen is demoted: every proof must carry a
     replayable certificate, so everything goes to the solver. *)
  let cert = run Driver.Config.(default |> with_analyze true |> with_certify true) in
  Alcotest.(check bool) "certify run still verifies" true cert.Driver.pr_ok;
  Alcotest.(check int) "certify demotes the prescreen" 0 (Driver.prescreen_discharged cert)

let test_fingerprint_salt () =
  let fd = find_fn Bench_programs.const_cond "clamp_add" in
  let vc = List.hd (Encode.encode_function Profiles.verus Bench_programs.const_cond fd) in
  let context = Driver.context_for Profiles.verus Bench_programs.const_cond vc in
  let fp ?analyze () =
    Vcache.fingerprint ?analyze ~profile:Profiles.verus ~prog:Bench_programs.const_cond
      ~context vc
  in
  Alcotest.(check bool) "analyze salts the fingerprint" false
    (String.equal (fp ()) (fp ~analyze:true ()));
  Alcotest.(check string) "salted fingerprint deterministic" (fp ~analyze:true ())
    (fp ~analyze:true ())

let test_vl047_refuted_advisory () =
  (* With x <= 10 the assertion x >= 11 is definitely false in the
     interval domain: the prescreen returns an advisory [Refuted], the
     obligation still goes to the solver (which agrees it fails), and
     under a lint mode the driver surfaces the advisory as VL047. *)
  let refute_prog =
    prog
      [
        fn "refute_me"
          ~params:[ p "x" (TInt I_u64) ]
          ~requires:[ v "x" <=: i 10 ]
          ~body:[ SAssert (v "x" >=: i 11, H_default) ];
      ]
  in
  let run config = Driver.verify_program ~config Profiles.verus refute_prog in
  let warned = run Driver.Config.(default |> with_analyze true |> with_lint Lint_warn) in
  Alcotest.(check bool) "refuted obligation fails" false warned.Driver.pr_ok;
  Alcotest.(check bool) "advisory recorded on the obligation" true
    (List.exists
       (fun (fr : Driver.fn_result) ->
         List.exists
           (fun (vr : Driver.vc_result) -> vr.Driver.vcr_prescreen_refuted)
           fr.Driver.fnr_vcs)
       warned.Driver.pr_fns);
  let vl047 =
    List.filter (fun (d : Vlint.diag) -> String.equal d.Vlint.code "VL047")
      warned.Driver.pr_lint
  in
  Alcotest.(check bool) "VL047 fires under lint" true (vl047 <> []);
  List.iter
    (fun (d : Vlint.diag) ->
      Alcotest.(check bool) "VL047 is Info severity" true (d.Vlint.severity = Vlint.Info))
    vl047;
  (* Advisory only: with lint off it stays silent, and it never reaches
     the result digest (decisions-only). *)
  let quiet = run Driver.Config.(default |> with_analyze true) in
  Alcotest.(check bool) "silent without a lint mode" false
    (List.exists (fun (d : Vlint.diag) -> String.equal d.Vlint.code "VL047")
       quiet.Driver.pr_lint);
  Alcotest.(check string) "digest excludes the advisory" (Driver.result_digest quiet)
    (Driver.result_digest warned);
  (* And a plain (unanalyzed) run decides identically: the prescreen
     changes provenance, never truth. *)
  let plain = run Driver.Config.default in
  Alcotest.(check string) "digest matches unanalyzed run" (Driver.result_digest plain)
    (Driver.result_digest warned)

(* ------------------------------------------------------------------ *)
(* VL040–VL046: seeded positives, a clean negative                     *)
(* ------------------------------------------------------------------ *)

let flow = Vlint.check_flow

let test_vl040_vl043 () =
  let bad =
    prog
      [
        fn "f" ~ret:("r", int_)
          ~body:[ SIf (EBool true, [ SReturn (Some (i 1)) ], [ SReturn (Some (i 0)) ]) ];
      ]
  in
  check_has "literal condition" "VL043" (flow bad);
  check_has "dead else" "VL040" (flow bad);
  (* Constant by typing, not by literal: a u8 is always < 256. *)
  let typed =
    prog
      [
        fn "g" ~params:[ p "x" (TInt I_u8) ] ~ret:("r", int_)
          ~body:
            [ SIf (v "x" <: i 256, [ SReturn (Some (i 1)) ], [ SReturn (Some (i 0)) ]) ];
      ]
  in
  check_has "type-range condition" "VL043" (flow typed);
  check_has "its dead else" "VL040" (flow typed)

let test_vl041 () =
  let bad =
    prog
      [
        fn "f" ~params:[ p "x" (TInt I_u64) ]
          ~body:
            [
              SWhile
                {
                  cond = v "x" <: i 10;
                  invariants = [ v "x" >=: i 0 ];
                  decreases = None;
                  body = [ SAssign ("x", v "x" +: i 1) ];
                };
            ];
      ]
  in
  check_has "u64 nonnegativity invariant is dead weight" "VL041" (flow bad)

let test_vl042 () =
  let contradiction =
    prog
      [ fn "f" ~params:[ p "x" int_ ] ~requires:[ v "x" >=: i 5; v "x" <=: i 3 ] ~body:[] ]
  in
  check_has "contradictory requires" "VL042" (flow contradiction);
  let literal = prog [ fn "g" ~requires:[ EBool false ] ~body:[] ] in
  check_has "literally false requires" "VL042" (flow literal);
  (* VL042 is the one Warn-severity flow code: contradictory requires
     makes every obligation vacuous, which deserves more than Info. *)
  let d = List.find (fun d -> d.Vlint.code = "VL042") (flow literal) in
  Alcotest.(check string) "VL042 severity" "warn" (Vlint.severity_to_string d.Vlint.severity)

let test_vl044 () =
  check_has "clamp_add u64 sum fits" "VL044" (flow Bench_programs.const_cond);
  let u8 =
    prog
      [
        fn "f"
          ~params:[ p "a" (TInt I_u8); p "b" (TInt I_u8) ]
          ~requires:[ v "a" <=: i 10; v "b" <=: i 10 ]
          ~body:[ SLet ("s", TInt I_u8, v "a" +: v "b") ];
      ]
  in
  check_has "bounded u8 sum fits" "VL044" (flow u8);
  (* Without the requires the sum can reach 510 > 255: no finding. *)
  let hot =
    prog
      [
        fn "f"
          ~params:[ p "a" (TInt I_u8); p "b" (TInt I_u8) ]
          ~body:[ SLet ("s", TInt I_u8, v "a" +: v "b") ];
      ]
  in
  check_not "unbounded u8 sum" "VL044" (flow hot)

let test_vl045 () =
  let bad =
    prog
      [
        fn "f" ~params:[ p "x" (TInt I_u64) ]
          ~body:[ SAssert (v "x" >=: i 0, H_default) ];
      ]
  in
  check_has "range-vacuous assert" "VL045" (flow bad)

let test_vl046 () =
  (* x <> 5 holds on entry (x = 0) but the interval fixpoint loses it
     once x sweeps [1, 10] — true, not rung-0-inductive. *)
  let bad =
    prog
      [
        fn "f"
          ~body:
            [
              SLet ("x", int_, i 0);
              SWhile
                {
                  cond = v "x" <: i 10;
                  invariants = [ v "x" <>: i 5 ];
                  decreases = None;
                  body = [ SAssign ("x", v "x" +: i 1) ];
                };
            ];
      ]
  in
  check_has "non-inductive invariant" "VL046" (flow bad)

let test_flow_clean () =
  let clean =
    prog [ fn "id" ~params:[ p "x" int_ ] ~ret:("r", int_) ~ensures:[ v "r" ==: v "x" ]
             ~body:[ SReturn (Some (v "x")) ] ]
  in
  let ds = flow clean in
  List.iter (fun c -> check_not "unbounded identity" c ds)
    [ "VL040"; "VL041"; "VL042"; "VL043"; "VL044"; "VL045"; "VL046" ]

(* ------------------------------------------------------------------ *)
(* VL043 static-vs-dynamic pin on the bundled program                  *)
(* ------------------------------------------------------------------ *)

(* Static claim: the else-branch of clamp_add (returning the 4242
   sentinel) is dead.  Dynamic check: run the interpreter over the whole
   precondition box's corners plus random interior points — the sentinel
   must never come back. *)
let test_vl043_pin () =
  let ds = flow Bench_programs.const_cond in
  check_has "clamp_add constant condition" "VL043" ds;
  check_has "clamp_add dead branch" "VL040" ds;
  let run a bnd =
    match
      Interp.run_fn Bench_programs.const_cond "clamp_add"
        [ Interp.VInt (B.of_int a); Interp.VInt (B.of_int bnd) ]
    with
    | Some (Interp.VInt r), _ -> r
    | _ -> Alcotest.fail "clamp_add returned no integer"
  in
  let cases =
    [ (0, 0); (0, 999); (999, 0); (999, 999) ]
    @ List.init 50 (fun k -> ((k * 131) mod 1000, (k * 277) mod 1000))
  in
  List.iter
    (fun (a, bnd) ->
      let r = run a bnd in
      Alcotest.(check bool)
        (Printf.sprintf "clamp_add %d %d avoids the dead branch" a bnd)
        true
        (B.equal r (B.of_int (a + bnd)) && not (B.equal r (B.of_int 4242))))
    cases

(* ------------------------------------------------------------------ *)
(* verus-lint/1 and verus-analyze-bench/1 schemas                      *)
(* ------------------------------------------------------------------ *)

let test_lint_report_schema () =
  List.iter
    (fun (name, prog) ->
      let ds = Vlint.lint Profiles.verus prog in
      match
        Vlint.validate_report (Vlint.report_to_json ~prog_name:name ~profile_name:"Verus" ds)
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s report invalid: %s" name e)
    [
      ("const_cond", Bench_programs.const_cond);
      ("singly_linked", Bench_programs.singly_linked);
    ]

let lint_doc ?(schema = Vlint.report_schema) ?(code = "VL043") ?(sev = "info") ?(info = 1) ()
    =
  J.Obj
    [
      ("schema", J.String schema);
      ("program", J.String "p");
      ("profile", J.String "Verus");
      ( "counts",
        J.Obj [ ("error", J.Int 0); ("warn", J.Int 0); ("info", J.Int info) ] );
      ( "findings",
        J.List
          [
            J.Obj
              [
                ("code", J.String code);
                ("severity", J.String sev);
                ("fn", J.Null);
                ("message", J.String "m");
              ];
          ] );
    ]

let check_rejects what doc =
  match Vlint.validate_report doc with
  | Ok () -> Alcotest.failf "validator accepted %s" what
  | Error _ -> ()

let test_lint_schema_negatives () =
  (match Vlint.validate_report (lint_doc ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "minimal doc rejected: %s" e);
  check_rejects "a wrong schema tag" (lint_doc ~schema:"verus-lint/2" ());
  check_rejects "an unknown code" (lint_doc ~code:"VL999" ());
  check_rejects "a bad severity" (lint_doc ~sev:"fatal" ());
  check_rejects "mismatched counts" (lint_doc ~info:2 ())

let bench_doc ?(schema = Vflow.bench_schema) ?(discharged = 1) ?(total_discharged = 1)
    ?(rate = 0.5) ?(verified = true) ?(rows = true) ?(totals = true) () =
  let row =
    J.Obj
      [
        ("profile", J.String "Verus");
        ("program", J.String "const_cond");
        ("vcs", J.Int 2);
        ("discharged", J.Int discharged);
        ("base_s", J.Float 1.0);
        ("analyze_s", J.Float 0.5);
        ("base_bytes", J.Int 10);
        ("analyze_bytes", J.Int 5);
        ("verified_equal", J.Bool verified);
      ]
  in
  J.Obj
    ([
       ("schema", J.String schema);
       ("analysis", J.String Vflow.version);
       ("rows", J.List (if rows then [ row ] else []));
     ]
    @
    if totals then
      [
        ( "totals",
          J.Obj
            [
              ("total_vcs", J.Int 2);
              ("total_discharged", J.Int total_discharged);
              ("discharge_rate", J.Float rate);
            ] );
      ]
    else [])

let check_bench_rejects what doc =
  match Vflow.validate_analyze_bench doc with
  | Ok () -> Alcotest.failf "bench validator accepted %s" what
  | Error _ -> ()

let test_bench_schema () =
  (match Vflow.validate_analyze_bench (bench_doc ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "minimal bench doc rejected: %s" e);
  check_bench_rejects "a wrong schema tag" (bench_doc ~schema:"verus-analyze-bench/0" ());
  check_bench_rejects "a zero discharge total" (bench_doc ~total_discharged:0 ());
  check_bench_rejects "an out-of-range rate" (bench_doc ~rate:1.5 ());
  check_bench_rejects "a verification mismatch" (bench_doc ~verified:false ());
  check_bench_rejects "empty rows" (bench_doc ~rows:false ());
  check_bench_rejects "missing totals" (bench_doc ~totals:false ());
  check_bench_rejects "row discharge above vcs" (bench_doc ~discharged:3 ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "vflow"
    [
      ( "dom",
        [
          Alcotest.test_case "intervals" `Quick test_dom_interval;
          Alcotest.test_case "congruences" `Quick test_dom_congruence;
          Alcotest.test_case "lattice" `Quick test_dom_lattice;
          QCheck_alcotest.to_alcotest qcheck_dom_sound;
        ] );
      ( "absint",
        [
          QCheck_alcotest.to_alcotest qcheck_absint_sound;
          Alcotest.test_case "widening terminates" `Quick test_widening_terminates;
          Alcotest.test_case "invariant-guided narrowing" `Quick test_narrowing;
        ] );
      ( "prescreen",
        [
          Alcotest.test_case "verdicts" `Quick test_prescreen_verdicts;
          Alcotest.test_case "vacuous hypotheses" `Quick test_prescreen_vacuous;
          Alcotest.test_case "residue and determinism" `Quick test_prescreen_residue;
        ] );
      ( "driver",
        [
          Alcotest.test_case "discharge and digests" `Quick test_driver_discharge;
          Alcotest.test_case "cache salt" `Quick test_fingerprint_salt;
          Alcotest.test_case "VL047 refuted advisory" `Quick test_vl047_refuted_advisory;
        ] );
      ( "lint",
        [
          Alcotest.test_case "VL040/VL043" `Quick test_vl040_vl043;
          Alcotest.test_case "VL041" `Quick test_vl041;
          Alcotest.test_case "VL042" `Quick test_vl042;
          Alcotest.test_case "VL044" `Quick test_vl044;
          Alcotest.test_case "VL045" `Quick test_vl045;
          Alcotest.test_case "VL046" `Quick test_vl046;
          Alcotest.test_case "clean function" `Quick test_flow_clean;
          Alcotest.test_case "VL043 static-vs-dynamic pin" `Quick test_vl043_pin;
        ] );
      ( "schemas",
        [
          Alcotest.test_case "lint report round-trip" `Quick test_lint_report_schema;
          Alcotest.test_case "lint report negatives" `Quick test_lint_schema_negatives;
          Alcotest.test_case "analyze bench schema" `Quick test_bench_schema;
        ] );
    ]
