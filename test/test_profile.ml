(* Tests for the solver/driver observability layer (PR 3):

   - Smt.Profile: label stability, merge algebra, and hand-computable
     per-quantifier counters driven directly through Ematch;
   - Smt.Solver: every result carries a populated profile;
   - Driver: per-program hot-spot aggregation is deterministic and
     identical under jobs=1 and jobs=2;
   - Profile_report: the JSON document validates against its own schema,
     and corrupted documents are rejected;
   - the VL010 cross-validation: on a pointer-linked program under the
     liberal-trigger heap profile, the *measured* #1 instantiation
     hot-spot shares a trigger head with the matching loop Vlint
     *predicts* statically. *)

module T = Smt.Term
module S = Smt.Sort
module P = Smt.Profile
module J = Vbase.Json

let ic name = T.const (T.Sym.declare name [] S.Int)
let uc name srt = T.const (T.Sym.declare name [] srt)

(* Multi-line substring check ([Str]'s ['.'] stops at newlines). *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Labels                                                              *)
(* ------------------------------------------------------------------ *)

let test_label_masks_fresh () =
  let srt = S.Usort "PL" in
  let f = T.Sym.declare "plf" [ srt ] S.Int in
  let k = T.const (T.Sym.fresh "plk" [] srt) in
  let lbl = P.label_of ~nvars:1 ~patterns:[ T.app f [ k ] ] in
  Alcotest.(check bool)
    (Printf.sprintf "fresh counter masked (got %s)" lbl)
    true
    (Str.string_match (Str.regexp ".*plk!\\*.*") lbl 0);
  Alcotest.(check bool) "no raw counter survives" false
    (Str.string_match (Str.regexp ".*plk![0-9].*") lbl 0);
  (* Two fresh constants with different counters produce the SAME label:
     that is what makes aggregation keys stable across runs. *)
  let k2 = T.const (T.Sym.fresh "plk" [] srt) in
  let lbl2 = P.label_of ~nvars:1 ~patterns:[ T.app f [ k2 ] ] in
  Alcotest.(check string) "stable across fresh counters" lbl lbl2;
  (* No trigger: the label says so instead of being empty. *)
  let none = P.label_of ~nvars:2 ~patterns:[] in
  Alcotest.(check bool) "no-trigger label" true
    (Str.string_match (Str.regexp "forall/2 {<no trigger.*") none 0)

(* ------------------------------------------------------------------ *)
(* Hand-computable Ematch counters                                     *)
(* ------------------------------------------------------------------ *)

let test_ematch_counters () =
  (* Index: f(a), f(b), g(a).  Quantifiers Q1 = forall x. f(x) = x
     (trigger f(x)) and Q2 = forall y. g(y) >= 0 (trigger g(y)).

     Round 1: Q1 matches f(a) and f(b) -> 2 instances; Q2 matches g(a)
     -> 1 instance.  Round 2 re-finds exactly the same candidates, all
     discarded by the dedup table (we never index the produced bodies,
     standing in for a solver round that learned nothing new). *)
  let srt = S.Usort "EMC" in
  let f = T.Sym.declare "emcf" [ srt ] srt in
  let g = T.Sym.declare "emcg" [ srt ] S.Int in
  let a = uc "emca" srt and b = uc "emcb" srt in
  let x = T.bvar "x" srt and y = T.bvar "y" srt in
  let q1 = T.forall [ ("x", srt) ] (T.eq (T.app f [ x ]) x) in
  let q2 = T.forall [ ("y", srt) ] (T.ge (T.app g [ y ]) (T.int_of 0)) in
  let em = Smt.Ematch.create Smt.Triggers.Conservative in
  Smt.Ematch.add_quant em ~guard:None q1;
  Smt.Ematch.add_quant em ~guard:None q2;
  Smt.Ematch.add_ground em (T.app f [ a ]);
  Smt.Ematch.add_ground em (T.app f [ b ]);
  Smt.Ematch.add_ground em (T.app g [ a ]);
  let r1 = Smt.Ematch.round em ~max_instances:100 in
  Alcotest.(check int) "round 1 emits 3 instances" 3 (List.length r1);
  let r2 = Smt.Ematch.round em ~max_instances:100 in
  Alcotest.(check int) "round 2 emits nothing new" 0 (List.length r2);
  let prof = Smt.Ematch.profile em in
  Alcotest.(check int) "two quantifiers profiled" 2 (List.length prof);
  let find frag =
    match
      List.find_opt
        (fun (q : P.quant_profile) ->
          Str.string_match (Str.regexp (".*" ^ Str.quote frag ^ ".*")) q.P.q_label 0)
        prof
    with
    | Some q -> q
    | None -> Alcotest.failf "no profiled quantifier mentions %s" frag
  in
  let p1 = find "emcf" and p2 = find "emcg" in
  Alcotest.(check int) "Q1 instances" 2 p1.P.q_instances;
  Alcotest.(check int) "Q1 matched (2 fresh + 2 dups)" 4 p1.P.q_matched;
  Alcotest.(check int) "Q1 duplicates" 2 p1.P.q_duplicates;
  Alcotest.(check int) "Q1 first round" 1 p1.P.q_first_round;
  Alcotest.(check int) "Q1 last round" 1 p1.P.q_last_round;
  Alcotest.(check int) "Q1 nvars" 1 p1.P.q_nvars;
  Alcotest.(check int) "Q2 instances" 1 p2.P.q_instances;
  Alcotest.(check int) "Q2 matched (1 fresh + 1 dup)" 2 p2.P.q_matched;
  Alcotest.(check int) "Q2 duplicates" 1 p2.P.q_duplicates;
  (* Sorted hottest-first: Q1 (2 instances) before Q2 (1). *)
  (match prof with
  | first :: _ -> Alcotest.(check int) "hottest first" 2 first.P.q_instances
  | [] -> Alcotest.fail "empty profile");
  Alcotest.(check int) "total_instances"
    3
    (P.total_instances { P.empty with P.quants = prof })

(* ------------------------------------------------------------------ *)
(* Merge algebra                                                       *)
(* ------------------------------------------------------------------ *)

let qp ?(heads = []) label ~inst ~matched ~dup ~first ~last =
  {
    P.q_label = label;
    q_heads = heads;
    q_nvars = 1;
    q_instances = inst;
    q_matched = matched;
    q_duplicates = dup;
    q_first_round = first;
    q_last_round = last;
  }

let test_merge () =
  let a =
    {
      P.quants = [ qp "A" ~inst:3 ~matched:5 ~dup:2 ~first:1 ~last:2 ];
      phase = { P.ph_sat = 0.5; ph_euf = 1.0; ph_lia = 0.0; ph_comb = 0.25; ph_ematch = 0.125 };
      inst_rounds = 2;
      euf_conflicts = 1;
      lia_conflicts = 2;
      theory_lemmas = 3;
    }
  in
  let b =
    {
      P.quants =
        [
          qp "A" ~inst:1 ~matched:2 ~dup:1 ~first:3 ~last:4;
          qp "B" ~inst:10 ~matched:11 ~dup:0 ~first:1 ~last:1;
        ];
      phase = { P.ph_sat = 0.5; ph_euf = 0.0; ph_lia = 2.0; ph_comb = 0.0; ph_ematch = 0.125 };
      inst_rounds = 4;
      euf_conflicts = 10;
      lia_conflicts = 20;
      theory_lemmas = 30;
    }
  in
  let check_m m =
    Alcotest.(check int) "rows" 2 (List.length m.P.quants);
    (* B (10 instances) sorts before the combined A (4). *)
    (match m.P.quants with
    | b' :: a' :: _ ->
      Alcotest.(check string) "hottest label" "B" b'.P.q_label;
      Alcotest.(check int) "A instances summed" 4 a'.P.q_instances;
      Alcotest.(check int) "A matched summed" 7 a'.P.q_matched;
      Alcotest.(check int) "A dups summed" 3 a'.P.q_duplicates;
      Alcotest.(check int) "A first = min nonzero" 1 a'.P.q_first_round;
      Alcotest.(check int) "A last = max" 4 a'.P.q_last_round
    | _ -> Alcotest.fail "unexpected merge shape");
    Alcotest.(check (float 1e-9)) "sat adds" 1.0 m.P.phase.P.ph_sat;
    Alcotest.(check (float 1e-9)) "lia adds" 2.0 m.P.phase.P.ph_lia;
    Alcotest.(check int) "rounds add" 6 m.P.inst_rounds;
    Alcotest.(check int) "euf conflicts add" 11 m.P.euf_conflicts;
    Alcotest.(check int) "theory lemmas add" 33 m.P.theory_lemmas
  in
  check_m (P.merge a b);
  (* Commutative up to the deterministic re-sort. *)
  check_m (P.merge b a);
  (* Identity. *)
  let id = P.merge a P.empty in
  Alcotest.(check int) "merge with empty keeps rows" 1 (List.length id.P.quants)

(* ------------------------------------------------------------------ *)
(* Solver results always carry a profile                               *)
(* ------------------------------------------------------------------ *)

let test_solver_profile () =
  let srt = S.Usort "SP" in
  let g = T.Sym.declare "spg" [ srt ] srt in
  let a = uc "spa" srt in
  (* g(g(a)) <> a against forall x. g(x) = x: refuted after chained
     instantiation — at least two instances over at least one round. *)
  let axg = T.forall [ ("x", srt) ] (T.eq (T.app g [ T.bvar "x" srt ]) (T.bvar "x" srt)) in
  let r = Smt.Solver.solve [ axg; T.neq (T.app g [ T.app g [ a ] ]) a ] in
  Alcotest.(check bool) "unsat" true (r.Smt.Solver.answer = Smt.Solver.Unsat);
  let p = r.Smt.Solver.profile in
  Alcotest.(check bool) "some instantiation" true (P.total_instances p >= 2);
  Alcotest.(check bool) "at least one round" true (p.P.inst_rounds >= 1);
  Alcotest.(check bool) "quantifier attributed" true
    (List.exists
       (fun (q : P.quant_profile) ->
         Str.string_match (Str.regexp ".*spg.*") q.P.q_label 0 && q.P.q_instances >= 2)
       p.P.quants);
  let ph = p.P.phase in
  List.iter
    (fun (n, v) ->
      Alcotest.(check bool) (n ^ " finite and non-negative") true (v >= 0.0 && v < 3600.0))
    [
      ("sat", ph.P.ph_sat);
      ("euf", ph.P.ph_euf);
      ("lia", ph.P.ph_lia);
      ("comb", ph.P.ph_comb);
      ("ematch", ph.P.ph_ematch);
    ];
  (* Quantifier-free solves profile as all-quiet, not as an error. *)
  let x = ic "spx" in
  let r0 = Smt.Solver.solve [ T.ge x (T.int_of 0); T.lt x (T.int_of 0) ] in
  Alcotest.(check bool) "qf unsat" true (r0.Smt.Solver.answer = Smt.Solver.Unsat);
  Alcotest.(check int) "qf: no quantifier fired" 0
    (P.total_instances r0.Smt.Solver.profile)

(* ------------------------------------------------------------------ *)
(* Driver aggregation: determinism across jobs                         *)
(* ------------------------------------------------------------------ *)

let hotspot_fingerprint (r : Verus.Driver.program_result) =
  match r.Verus.Driver.pr_prof with
  | None -> Alcotest.fail "no profile on profiled run"
  | Some pp ->
    ( List.map
        (fun (q : P.quant_profile) -> (q.P.q_label, q.P.q_instances, q.P.q_matched))
        pp.Verus.Driver.pp_smt.P.quants,
      List.map
        (fun (a : Verus.Driver.axiom_cost) ->
          (a.Verus.Driver.ac_index, a.Verus.Driver.ac_label, a.Verus.Driver.ac_bytes,
           a.Verus.Driver.ac_contexts))
        pp.Verus.Driver.pp_axiom_costs,
      pp.Verus.Driver.pp_vcs )

let test_driver_jobs_stable () =
  let prog = Verus.Bench_programs.singly_linked in
  let p = Verus.Profiles.verus in
  let cfg jobs = Verus.Driver.Config.(default |> with_jobs jobs |> with_profile true) in
  let r1 = Verus.Driver.verify_program ~config:(cfg 1) p prog in
  let r2 = Verus.Driver.verify_program ~config:(cfg 2) p prog in
  Alcotest.(check bool) "jobs=1 verifies" true r1.Verus.Driver.pr_ok;
  Alcotest.(check bool) "jobs=2 verifies" true r2.Verus.Driver.pr_ok;
  let q1, a1, v1 = hotspot_fingerprint r1 in
  let q2, a2, v2 = hotspot_fingerprint r2 in
  Alcotest.(check int) "same VC count" v1 v2;
  Alcotest.(check bool) "some quantifier rows" true (q1 <> []);
  Alcotest.(check bool) "identical hot-spot table" true (q1 = q2);
  Alcotest.(check bool) "identical axiom attribution" true (a1 = a2);
  (* Labels are parallel-safe: no unmasked fresh counter in any key. *)
  List.iter
    (fun (lbl, _, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "masked label %s" lbl)
        false
        (Str.string_match (Str.regexp ".*![0-9].*") lbl 0))
    q1;
  (* The aggregate is sorted by the documented order. *)
  let rec sorted = function
    | (l1, i1, m1) :: ((l2, i2, m2) :: _ as rest) ->
      (i1 > i2 || (i1 = i2 && (m1 > m2 || (m1 = m2 && l1 <= l2)))) && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "deterministic order" true (sorted q1)

let test_driver_profile_off () =
  (* The opt-in really is opt-in: no retained profile unless requested. *)
  let r =
    Verus.Driver.verify_program Verus.Profiles.verus Verus.Bench_programs.singly_linked
  in
  Alcotest.(check bool) "no profile by default" true (r.Verus.Driver.pr_prof = None);
  List.iter
    (fun (f : Verus.Driver.fn_result) ->
      Alcotest.(check bool) "no per-fn profile" true (f.Verus.Driver.fnr_prof = None))
    r.Verus.Driver.pr_fns

(* ------------------------------------------------------------------ *)
(* Report schema                                                       *)
(* ------------------------------------------------------------------ *)

let profiled_result () =
  let config =
    Verus.Driver.Config.(default |> with_profile true |> with_lint Verus.Driver.Lint_warn)
  in
  Verus.Driver.verify_program ~config Verus.Profiles.verus Verus.Bench_programs.singly_linked

let test_report_json_validates () =
  let r = profiled_result () in
  let j = Verus.Profile_report.to_json ~prog_name:"singly_linked" r in
  (match Verus.Profile_report.validate j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "self-emitted document rejected: %s" e);
  (* Round-trips through the actual printer and parser.  Float printing
     is not bit-lossless (%.6g), so the check is the print fixpoint:
     parse(print(j)) prints identically, and still validates. *)
  let text = J.to_string ~indent:true j in
  (match J.of_string text with
  | Ok j' -> (
    Alcotest.(check string) "print fixpoint" text (J.to_string ~indent:true j');
    match Verus.Profile_report.validate j' with
    | Ok () -> ()
    | Error e -> Alcotest.failf "round-tripped document rejected: %s" e)
  | Error e -> Alcotest.failf "emitted JSON does not parse: %s" e);
  (* Every required key is genuinely checked: deleting any one of them
     turns the document invalid. *)
  List.iter
    (fun key ->
      let stripped =
        match j with
        | J.Obj kvs -> J.Obj (List.filter (fun (k, _) -> k <> key) kvs)
        | _ -> Alcotest.fail "document is not an object"
      in
      match Verus.Profile_report.validate stripped with
      | Ok () -> Alcotest.failf "dropping %S went unnoticed" key
      | Error _ -> ())
    Verus.Profile_report.required_keys;
  (* A wrong schema version is rejected. *)
  let wrong =
    match j with
    | J.Obj kvs ->
      J.Obj
        (List.map (fun (k, v) -> if k = "schema" then (k, J.String "bogus/9") else (k, v)) kvs)
    | _ -> assert false
  in
  match Verus.Profile_report.validate wrong with
  | Ok () -> Alcotest.fail "wrong schema version accepted"
  | Error _ -> ()

let test_report_text () =
  let r = profiled_result () in
  let text = Verus.Profile_report.render_text ~prog_name:"singly_linked" r in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "text mentions %S" frag) true (contains text frag))
    [
      "VERIFIED";
      "quantifiers by instantiation";
      "context bytes by axiom";
      "per-function";
      "lint cross-check";
      "list_index";
    ];
  (* An unprofiled result renders an explanation, not an empty string. *)
  let bare =
    Verus.Driver.verify_program Verus.Profiles.verus Verus.Bench_programs.singly_linked
  in
  let msg = Verus.Profile_report.render_text ~prog_name:"singly_linked" bare in
  Alcotest.(check bool) "explains missing profile" true (contains msg "no profile collected")

(* ------------------------------------------------------------------ *)
(* VL010 cross-validation: static prediction == dynamic measurement    *)
(* ------------------------------------------------------------------ *)

let test_vl010_cross_validation () =
  (* mem4 builds on the pointer-linked List datatype; under the liberal-
     trigger heap profile its axiom set contains the alloc-reachability /
     view-unfolding matching loop VL010 flags.  Verify with tight solver
     budgets (the VCs degrade to Unknown instead of hanging) and check
     the measured #1 instantiation hot-spot shares a trigger head with
     the static finding — the Axiom-Profiler-style agreement the paper's
     trigger story predicts. *)
  let profile = Verus.Profiles.liberal Verus.Profiles.dafny in
  Alcotest.(check string) "liberal naming" "Dafny-liberal" profile.Verus.Profiles.name;
  let profile =
    Verus.Profiles.with_budget
      { (Verus.Profiles.budget profile) with Smt.Solver.max_rounds = 5; deadline_s = 1.0 }
      profile
  in
  let prog = Verus.Bench_programs.memory_reasoning 4 in
  (* Static side: VL010 fires and names trigger heads. *)
  let static_heads = Verus.Vlint.vl010_heads (Verus.Vlint.lint profile prog) in
  Alcotest.(check bool) "VL010 fires statically" true (static_heads <> []);
  (* Dynamic side: the profiled run's top hot-spot. *)
  let r =
    Verus.Driver.verify_program
      ~config:Verus.Driver.Config.(default |> with_lint Verus.Driver.Lint_warn |> with_profile true)
      profile prog
  in
  (match Verus.Profile_report.vl010_cross_check r with
  | Some (heads, matches) ->
    Alcotest.(check (list string)) "same heads via the result" static_heads heads;
    Alcotest.(check bool) "top hot-spot matches the flagged loop" true matches
  | None -> Alcotest.fail "no quantifier activity in the profiled run");
  (* And the conservative control: the stock Dafny profile lints clean
     on the same program (the curated triggers break the cycle). *)
  Alcotest.(check (list string))
    "curated triggers: no VL010" []
    (Verus.Vlint.vl010_heads (Verus.Vlint.lint Verus.Profiles.dafny prog))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "profile"
    [
      ( "labels",
        [ Alcotest.test_case "fresh-counter masking" `Quick test_label_masks_fresh ] );
      ( "ematch",
        [ Alcotest.test_case "hand-computed counters" `Quick test_ematch_counters ] );
      ("merge", [ Alcotest.test_case "merge algebra" `Quick test_merge ]);
      ( "solver",
        [ Alcotest.test_case "result carries profile" `Quick test_solver_profile ] );
      ( "driver",
        [
          Alcotest.test_case "jobs=1 == jobs=2 aggregation" `Quick test_driver_jobs_stable;
          Alcotest.test_case "profile is opt-in" `Quick test_driver_profile_off;
        ] );
      ( "report",
        [
          Alcotest.test_case "JSON validates + round-trips" `Quick test_report_json_validates;
          Alcotest.test_case "text rendering" `Quick test_report_text;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "VL010 static == profiler dynamic" `Slow
            test_vl010_cross_validation;
        ] );
    ]
