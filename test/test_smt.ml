(* Tests for the SMT substrate: SAT solver vs. brute force, terms, and (as
   they land) the theory solvers and the full solver loop. *)

module Sat = Smt.Sat
module T = Smt.Term
module S = Smt.Sort

(* ------------------------------------------------------------------ *)
(* SAT                                                                 *)
(* ------------------------------------------------------------------ *)

let test_sat_trivial () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ Sat.pos a; Sat.pos b ];
  Sat.add_clause s [ Sat.neg a ];
  Alcotest.(check bool) "sat" true (Sat.solve s = Sat.Sat);
  Alcotest.(check bool) "b true" true (Sat.value s b);
  Alcotest.(check bool) "a false" false (Sat.value s a);
  Sat.add_clause s [ Sat.neg b ];
  Alcotest.(check bool) "unsat" true (Sat.solve s = Sat.Unsat)

let test_sat_pigeonhole () =
  (* 4 pigeons, 3 holes: classically unsat, needs real search. *)
  let s = Sat.create () in
  let np = 4 and nh = 3 in
  let v = Array.init np (fun _ -> Array.init nh (fun _ -> Sat.new_var s)) in
  for p = 0 to np - 1 do
    Sat.add_clause s (List.init nh (fun h -> Sat.pos v.(p).(h)))
  done;
  for h = 0 to nh - 1 do
    for p1 = 0 to np - 1 do
      for p2 = p1 + 1 to np - 1 do
        Sat.add_clause s [ Sat.neg v.(p1).(h); Sat.neg v.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "php unsat" true (Sat.solve s = Sat.Unsat)

(* Brute-force CNF satisfiability for up to ~15 vars. *)
let brute_force nvars clauses =
  let rec go assignment v =
    if v = nvars then
      List.for_all
        (fun clause ->
          List.exists
            (fun lit ->
              let var = lit / 2 and negated = lit land 1 = 1 in
              if negated then not assignment.(var) else assignment.(var))
            clause)
        clauses
    else begin
      assignment.(v) <- true;
      go assignment (v + 1)
      ||
      (assignment.(v) <- false;
       go assignment (v + 1))
    end
  in
  go (Array.make nvars false) 0

let cnf_gen =
  (* Random 3-CNF-ish instances near the phase transition. *)
  QCheck.Gen.(
    let* nvars = int_range 3 10 in
    let* nclauses = int_range 1 (4 * nvars) in
    let* clauses =
      list_size (return nclauses)
        (list_size (int_range 1 3)
           (let* v = int_range 0 (nvars - 1) in
            let* s = bool in
            return ((2 * v) + if s then 1 else 0)))
    in
    return (nvars, clauses))

let prop_sat_matches_brute_force =
  QCheck.Test.make ~name:"cdcl agrees with brute force" ~count:300
    (QCheck.make cnf_gen) (fun (nvars, clauses) ->
      let s = Sat.create () in
      for _ = 1 to nvars do
        ignore (Sat.new_var s)
      done;
      List.iter (fun c -> Sat.add_clause s c) clauses;
      let got = Sat.solve s = Sat.Sat in
      let expected = brute_force nvars clauses in
      if got <> expected then false
      else if got then
        (* The produced model must actually satisfy the clauses. *)
        List.for_all
          (fun clause ->
            List.exists
              (fun lit ->
                let var = lit / 2 and negated = lit land 1 = 1 in
                if negated then not (Sat.value s var) else Sat.value s var)
              clause)
          clauses
      else true)

let prop_sat_incremental =
  QCheck.Test.make ~name:"incremental clause addition stays correct" ~count:100
    (QCheck.make cnf_gen) (fun (nvars, clauses) ->
      (* Add clauses one at a time, solving after each; result must match
         brute force on the prefix. *)
      let s = Sat.create () in
      for _ = 1 to nvars do
        ignore (Sat.new_var s)
      done;
      let rec go prefix = function
        | [] -> true
        | c :: rest ->
          let prefix = c :: prefix in
          Sat.add_clause s c;
          let got = Sat.solve s = Sat.Sat in
          let expected = brute_force nvars prefix in
          got = expected && go prefix rest
      in
      go [] clauses)

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

let test_term_hashcons () =
  let x = T.const (T.Sym.declare "tx" [] S.Int) in
  let y = T.const (T.Sym.declare "ty" [] S.Int) in
  Alcotest.(check bool) "same term shared" true (T.equal (T.add [ x; y ]) (T.add [ x; y ]));
  Alcotest.(check bool) "eq canonical order" true (T.equal (T.eq x y) (T.eq y x));
  Alcotest.(check bool) "and flattening" true
    (T.equal
       (T.and_ [ T.le x y; T.and_ [ T.le y x; T.tru ] ])
       (T.and_ [ T.le x y; T.le y x ]))

let test_term_folding () =
  Alcotest.(check string) "add fold" "5" (T.to_string (T.add [ T.int_of 2; T.int_of 3 ]));
  Alcotest.(check string) "mul fold" "6" (T.to_string (T.mul (T.int_of 2) (T.int_of 3)));
  Alcotest.(check bool) "lt fold" true (T.equal (T.lt (T.int_of 2) (T.int_of 3)) T.tru);
  Alcotest.(check bool) "ite fold" true
    (T.equal (T.ite T.fls (T.int_of 1) (T.int_of 2)) (T.int_of 2));
  Alcotest.(check bool) "not not" true
    (T.equal (T.not_ (T.not_ (T.le (T.int_of 0) (T.int_of 1)))) T.tru);
  (* Euclidean semantics for div/mod folding. *)
  Alcotest.(check string) "ediv" "(- 3)" (T.to_string (T.idiv (T.int_of (-7)) (T.int_of 3)));
  Alcotest.(check string) "emod" "2" (T.to_string (T.imod (T.int_of (-7)) (T.int_of 3)))

let test_term_bv_folding () =
  let bv v = T.bv_lit ~width:8 (Vbase.Bigint.of_int v) in
  let check name expected t =
    Alcotest.(check bool) name true (T.equal (bv expected) t)
  in
  check "and" 0b1000 (T.bv_op T.Band [ bv 0b1100; bv 0b1010 ]);
  check "or" 0b1110 (T.bv_op T.Bor [ bv 0b1100; bv 0b1010 ]);
  check "xor" 0b0110 (T.bv_op T.Bxor [ bv 0b1100; bv 0b1010 ]);
  check "add wrap" 4 (T.bv_op T.Badd [ bv 250; bv 10 ]);
  check "sub wrap" 246 (T.bv_op T.Bsub [ bv 0; bv 10 ]);
  check "mul wrap" 144 (T.bv_op T.Bmul [ bv 20; bv 20 ]);
  check "not" 0b00110011 (T.bv_op T.Bnot [ bv 0b11001100 ]);
  check "shl" 0b11000 (T.bv_op T.Bshl [ bv 0b110; T.int_of 2 ]);
  check "lshr" 0b1 (T.bv_op T.Blshr [ bv 0b110; T.int_of 2 ]);
  Alcotest.(check bool) "ule" true (T.equal (T.bv_op T.Bule [ bv 3; bv 3 ]) T.tru);
  Alcotest.(check bool) "ult" true (T.equal (T.bv_op T.Bult [ bv 3; bv 3 ]) T.fls);
  (* extract/concat *)
  Alcotest.(check bool) "extract" true
    (T.equal
       (T.bv_op (T.Bextract (5, 2)) [ bv 0b110100 ])
       (T.bv_lit ~width:4 (Vbase.Bigint.of_int 0b1101)));
  Alcotest.(check bool) "concat" true
    (T.equal
       (T.bv_op T.Bconcat [ T.bv_lit ~width:4 (Vbase.Bigint.of_int 0xA); T.bv_lit ~width:4 (Vbase.Bigint.of_int 0x5) ])
       (T.bv_lit ~width:8 (Vbase.Bigint.of_int 0xA5)))

let test_term_subst () =
  let f = T.Sym.declare "tf" [ S.Int ] S.Int in
  let x = T.bvar "xs" S.Int in
  let body = T.le (T.app f [ x ]) x in
  let inst = T.subst [ ("xs", T.int_of 5) ] body in
  Alcotest.(check bool) "subst" true (T.equal inst (T.le (T.app f [ T.int_of 5 ]) (T.int_of 5)));
  (* Shadowing: inner binder protects its variable. *)
  let c = T.const (T.Sym.declare "tc_subst" [] S.Int) in
  let inner = T.forall [ ("xs", S.Int) ] (T.le x c) in
  let outer = T.and_ [ T.le x c; inner ] in
  let sub = T.subst [ ("xs", T.int_of 7) ] outer in
  (match sub.T.node with
  | T.And [ a; b ] ->
    Alcotest.(check bool) "outer substituted" true (T.equal a (T.le (T.int_of 7) c));
    Alcotest.(check bool) "inner untouched" true (T.equal b inner)
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check (list string)) "free vars" [ "xs" ] (List.map fst (T.free_bvars body))

let test_term_sizes () =
  let x = T.const (T.Sym.declare "tsx" [] S.Int) in
  let t = T.add [ x; x ] in
  Alcotest.(check int) "dag size" 2 (T.size t);
  Alcotest.(check int) "tree size" 3 (T.tree_size t);
  Alcotest.(check bool) "printed size positive" true (T.printed_size t > 0)


(* ------------------------------------------------------------------ *)
(* Solver: ground EUF + LIA + combination                              *)
(* ------------------------------------------------------------------ *)

module Solver = Smt.Solver

let ic name = T.const (T.Sym.declare name [] S.Int)
let uc name srt = T.const (T.Sym.declare name [] srt)

let is_unsat r = match r.Solver.answer with Solver.Unsat -> true | _ -> false
let is_sat r = match r.Solver.answer with Solver.Sat -> true | _ -> false

let check_unsat name assertions =
  let r = Solver.solve assertions in
  Alcotest.(check bool) (name ^ " unsat") true (is_unsat r)

let check_sat name assertions =
  let r = Solver.solve assertions in
  (match r.Solver.answer with
  | Solver.Unknown reason -> Printf.printf "unknown: %s\n" reason
  | _ -> ());
  Alcotest.(check bool) (name ^ " sat") true (is_sat r)

let test_solver_lia () =
  let x = ic "slx" and y = ic "sly" in
  check_unsat "x<y<x" [ T.lt x y; T.lt y x ];
  check_sat "x<y" [ T.lt x y ];
  check_unsat "bounds" [ T.le (T.int_of 5) x; T.le x (T.int_of 4) ];
  (* Integrality: 2x = 3 has no integer solution. *)
  check_unsat "2x=3" [ T.eq (T.mul (T.int_of 2) x) (T.int_of 3) ];
  (* 2x + 2y = 1 unsat over Z but sat over Q. *)
  check_unsat "parity" [ T.eq (T.add [ T.mul (T.int_of 2) x; T.mul (T.int_of 2) y ]) (T.int_of 1) ];
  (* x >= 0, y >= 0, x + y <= 1, x + y >= 2 *)
  check_unsat "sum bounds"
    [ T.ge x (T.int_of 0); T.ge y (T.int_of 0); T.le (T.add [ x; y ]) (T.int_of 1);
      T.ge (T.add [ x; y ]) (T.int_of 2) ];
  (* Strictness over ints: x < y /\ y < x + 2 /\ x < z < y is unsat
     (no integer strictly between x and x+1). *)
  check_unsat "between"
    [ T.lt x y; T.lt y (T.add [ x; T.int_of 2 ]);
      (let z = ic "slz" in T.and_ [ T.lt x z; T.lt z y ]) ]

let test_solver_euf () =
  let srt = S.Usort "E" in
  let a = uc "sea" srt and b = uc "seb" srt and c = uc "sec" srt in
  let f = T.Sym.declare "sef" [ srt ] srt in
  let app1 t = T.app f [ t ] in
  check_unsat "transitivity" [ T.eq a b; T.eq b c; T.neq a c ];
  check_unsat "congruence" [ T.eq a b; T.neq (app1 a) (app1 b) ];
  check_sat "diseq ok" [ T.neq a b; T.eq b c ];
  (* f(f(f(a))) = a, f(f(f(f(f(a))))) = a |- f(a) = a  (classic) *)
  let rec fn n t = if n = 0 then t else fn (n - 1) (app1 t) in
  check_unsat "f3 f5"
    [ T.eq (fn 3 a) a; T.eq (fn 5 a) a; T.neq (app1 a) a ];
  (* Predicate congruence: a = b, P(a), not P(b). *)
  let p = T.Sym.declare "sep" [ srt ] S.Bool in
  check_unsat "pred congruence" [ T.eq a b; T.app p [ a ]; T.not_ (T.app p [ b ]) ]

let test_solver_combination () =
  (* EUF over Int with arithmetic: x <= y, y <= x |- f(x) = f(y). *)
  let x = ic "scx" and y = ic "scy" in
  let f = T.Sym.declare "scf" [ S.Int ] S.Int in
  check_unsat "NO combination"
    [ T.le x y; T.le y x; T.neq (T.app f [ x ]) (T.app f [ y ]) ];
  (* Purification: f(x+1) = f(1+x) must hold (same term after smart
     constructors? x+1 and 1+x normalize to the same Add); use
     f(x+1) vs f(y) with y = x + 1. *)
  check_unsat "purified args"
    [ T.eq y (T.add [ x; T.int_of 1 ]);
      T.neq (T.app f [ T.add [ x; T.int_of 1 ] ]) (T.app f [ y ]) ];
  (* f(x) = x + 2, f(f(x)) = x + 4 consistency. *)
  check_unsat "chained"
    [ T.eq (T.app f [ x ]) (T.add [ x; T.int_of 2 ]);
      T.eq (T.app f [ T.app f [ x ] ])
        (T.add [ T.app f [ x ]; T.int_of 2 ]);
      T.neq (T.app f [ T.app f [ x ] ]) (T.add [ x; T.int_of 4 ]) ]

let test_solver_bool_structure () =
  let p = uc "sbp" S.Bool and q = uc "sbq" S.Bool in
  check_unsat "modus ponens" [ T.implies p q; p; T.not_ q ];
  check_sat "iff sat" [ T.iff p q; p; q ];
  check_unsat "iff unsat" [ T.iff p q; p; T.not_ q ];
  let x = ic "sbx" in
  check_unsat "ite"
    [ T.eq (T.ite p (T.int_of 1) (T.int_of 2)) x; p; T.neq x (T.int_of 1) ]

let test_solver_divmod () =
  let x = ic "sdx" in
  (* x mod 4 = 3 and x mod 2 = 0 is impossible. *)
  check_unsat "mod parity"
    [ T.eq (T.imod x (T.int_of 4)) (T.int_of 3);
      T.eq (T.imod x (T.int_of 2)) (T.int_of 0) ];
  check_sat "mod sat" [ T.eq (T.imod x (T.int_of 4)) (T.int_of 3) ];
  (* Euclidean division: x = 4*(x div 4) + (x mod 4). *)
  check_unsat "div identity"
    [ T.neq x (T.add [ T.mul (T.int_of 4) (T.idiv x (T.int_of 4)); T.imod x (T.int_of 4) ]) ]

let test_solver_bv () =
  let bv8 v = T.bv_lit ~width:8 (Vbase.Bigint.of_int v) in
  let x = uc "svx" (S.Bv 8) in
  (* x & 0x0F <= 15 always: negation unsat. *)
  check_unsat "mask bound"
    [ T.not_ (T.bv_op T.Bule [ T.bv_op T.Band [ x; bv8 0x0F ]; bv8 15 ]) ];
  (* x + 1 = 0 has the solution x = 255. *)
  check_sat "wraparound" [ T.eq (T.bv_op T.Badd [ x; bv8 1 ]) (bv8 0) ];
  (* x ^ x = 0 always. *)
  check_unsat "xor self" [ T.neq (T.bv_op T.Bxor [ x; x ]) (bv8 0) ];
  (* x & 7 = x mod 8 as bit-vectors: (x & 7) <u 8 always. *)
  check_unsat "low bits"
    [ T.not_ (T.bv_op T.Bult [ T.bv_op T.Band [ x; bv8 7 ]; bv8 8 ]) ]

let test_solver_quant () =
  let srt = S.Usort "Q" in
  let f = T.Sym.declare "sqf" [ srt ] S.Int in
  let a = uc "sqa" srt and b = uc "sqb" srt in
  (* forall x. f(x) >= 0, with f(a) < 0: unsat via instantiation. *)
  let ax = T.forall [ ("x", srt) ] (T.ge (T.app f [ T.bvar "x" srt ]) (T.int_of 0)) in
  check_unsat "axiom instantiation" [ ax; T.lt (T.app f [ a ]) (T.int_of 0) ];
  (* forall x. f(x) = 1 and f(a) + f(b) = 3: unsat. *)
  let ax1 = T.forall [ ("x", srt) ] (T.eq (T.app f [ T.bvar "x" srt ]) (T.int_of 1)) in
  check_unsat "two instances"
    [ ax1; T.eq (T.add [ T.app f [ a ]; T.app f [ b ] ]) (T.int_of 3) ];
  (* Chained: forall x. g(x) = x allows g(g(c)) <> c to be refuted. *)
  let g = T.Sym.declare "sqg" [ srt ] srt in
  let axg = T.forall [ ("x", srt) ] (T.eq (T.app g [ T.bvar "x" srt ]) (T.bvar "x" srt)) in
  check_unsat "chained instantiation" [ axg; T.neq (T.app g [ T.app g [ a ] ]) a ];
  (* Satisfiable with quantifier: should be unknown, not unsat. *)
  let r = Solver.solve [ ax; T.ge (T.app f [ a ]) (T.int_of 0) ] in
  Alcotest.(check bool) "not unsat" false (is_unsat r)

let test_solver_exists () =
  let x = ic "sxx" in
  (* exists y. y > x  — satisfiable via skolemization. *)
  check_sat "exists skolem"
    [ T.exists [ ("y", S.Int) ] (T.gt (T.bvar "y" S.Int) x) ];
  (* not (exists y. y = x) is unsat: the negation is forall y. y <> x,
     instantiated with x itself. *)
  check_unsat "neg exists"
    [ T.not_ (T.exists [ ("y", S.Int) ] (T.eq (T.bvar "y" S.Int) x)) ]

let test_check_valid () =
  let x = ic "svalx" in
  let r = Solver.check_valid ~hyps:[ T.ge x (T.int_of 0) ] (T.ge (T.add [ x; T.int_of 1 ]) (T.int_of 1)) in
  Alcotest.(check bool) "valid" true (is_unsat r);
  let r2 = Solver.check_valid ~hyps:[ T.ge x (T.int_of 0) ] (T.ge x (T.int_of 1)) in
  Alcotest.(check bool) "invalid" false (is_unsat r2)


(* ------------------------------------------------------------------ *)
(* EUF directly                                                        *)
(* ------------------------------------------------------------------ *)

module Euf = Smt.Euf

let test_euf_direct () =
  let srt = S.Usort "ED" in
  let a = uc "eda" srt and b = uc "edb" srt and c = uc "edc" srt in
  let f = T.Sym.declare "edf" [ srt ] srt in
  let e = Euf.create () in
  Euf.merge e a b ~reason:1;
  Euf.merge e b c ~reason:2;
  Alcotest.(check bool) "trans" true (Euf.are_equal e a c);
  (* Congruence after the fact. *)
  Euf.add_term e (T.app f [ a ]);
  Euf.add_term e (T.app f [ c ]);
  Alcotest.(check bool) "check ok" true (Euf.check e = Ok ());
  Alcotest.(check bool) "congruent" true (Euf.are_equal e (T.app f [ a ]) (T.app f [ c ]));
  (* Explanation is exactly the two input reasons. *)
  Alcotest.(check (list int)) "explain" [ 1; 2 ] (Euf.explain e (T.app f [ a ]) (T.app f [ c ]));
  (* Disequality conflict with a small core. *)
  Euf.assert_diseq e (T.app f [ a ]) (T.app f [ c ]) ~reason:3;
  (match Euf.check e with
  | Error core -> Alcotest.(check (list int)) "core" [ 1; 2; 3 ] core
  | Ok () -> Alcotest.fail "missed conflict");
  (* class_members exposes the merged class. *)
  Alcotest.(check int) "class size" 3 (List.length (Euf.class_members e a))

(* ------------------------------------------------------------------ *)
(* LIA directly                                                        *)
(* ------------------------------------------------------------------ *)

module Lia = Smt.Lia
module Rat = Vbase.Rat

let test_lia_direct () =
  let l = Lia.create () in
  let x = Lia.var_of_term l (ic "ldx") in
  let y = Lia.var_of_term l (ic "ldy") in
  (* x + y <= 4, x >= 3, y >= 2: conflict with all three reasons. *)
  Lia.assert_le l [ (Rat.one, x); (Rat.one, y) ] (Rat.of_int 4) ~reason:0;
  Lia.assert_ge l [ (Rat.one, x) ] (Rat.of_int 3) ~reason:1;
  Lia.assert_ge l [ (Rat.one, y) ] (Rat.of_int 2) ~reason:2;
  (match Lia.check l with
  | Lia.Conflict core -> Alcotest.(check (list int)) "farkas core" [ 0; 1; 2 ] (List.sort compare core)
  | _ -> Alcotest.fail "expected conflict");
  (* Fresh instance: satisfiable system has an integral model. *)
  let l2 = Lia.create () in
  let x = Lia.var_of_term l2 (ic "ld2x") in
  let y = Lia.var_of_term l2 (ic "ld2y") in
  Lia.assert_ge l2 [ (Rat.one, x) ] (Rat.of_int 1) ~reason:0;
  Lia.assert_le l2 [ (Rat.of_int 2, x); (Rat.of_int 3, y) ] (Rat.of_int 12) ~reason:1;
  Lia.assert_ge l2 [ (Rat.one, y) ] (Rat.of_int 2) ~reason:2;
  (match Lia.check l2 with
  | Lia.Sat ->
    let vx = Lia.model_value l2 x and vy = Lia.model_value l2 y in
    Alcotest.(check bool) "integral" true (Rat.is_integer vx && Rat.is_integer vy);
    Alcotest.(check bool) "satisfies" true
      (Rat.compare vx Rat.one >= 0
      && Rat.compare vy (Rat.of_int 2) >= 0
      && Rat.compare (Rat.add (Rat.mul (Rat.of_int 2) vx) (Rat.mul (Rat.of_int 3) vy)) (Rat.of_int 12) <= 0)
  | _ -> Alcotest.fail "expected sat");
  (* reset_bounds keeps the tableau but drops constraints. *)
  Lia.reset_bounds l2;
  (match Lia.check l2 with Lia.Sat -> () | _ -> Alcotest.fail "reset not clean")

let prop_lia_vs_bruteforce =
  (* Random small integer constraint systems: compare against brute force
     over a bounded box. *)
  QCheck.Test.make ~name:"lia agrees with brute force on box problems" ~count:100
    QCheck.(
      list_of_size (QCheck.Gen.int_range 1 5)
        (triple (int_range (-3) 3) (int_range (-3) 3) (int_range (-6) 6)))
    (fun constraints ->
      let l = Lia.create () in
      let xt = ic "pbx" and yt = ic "pby" in
      let x = Lia.var_of_term l xt and y = Lia.var_of_term l yt in
      (* Bound the box so brute force is exact. *)
      Lia.assert_ge l [ (Rat.one, x) ] (Rat.of_int (-5)) ~reason:100;
      Lia.assert_le l [ (Rat.one, x) ] (Rat.of_int 5) ~reason:101;
      Lia.assert_ge l [ (Rat.one, y) ] (Rat.of_int (-5)) ~reason:102;
      Lia.assert_le l [ (Rat.one, y) ] (Rat.of_int 5) ~reason:103;
      List.iteri
        (fun i (a, b, c) ->
          Lia.assert_le l [ (Rat.of_int a, x); (Rat.of_int b, y) ] (Rat.of_int c) ~reason:i)
        constraints;
      let brute =
        let ok = ref false in
        for vx = -5 to 5 do
          for vy = -5 to 5 do
            if List.for_all (fun (a, b, c) -> (a * vx) + (b * vy) <= c) constraints then ok := true
          done
        done;
        !ok
      in
      match Lia.check l with
      | Lia.Sat -> brute
      | Lia.Conflict _ -> not brute
      | Lia.Unknown -> true (* budget; cannot judge *))

(* ------------------------------------------------------------------ *)
(* BV bit-blasting vs. native evaluation                               *)
(* ------------------------------------------------------------------ *)

let prop_bv_vs_native =
  (* Random width-8 expressions over two variables with pinned values:
     the bit-blaster must prove the natively computed result and must
     find the countermodel for an off-by-one claim.  Ground BV is
     decidable here, so Sat (not Unknown) is required on the wrong
     claim. *)
  QCheck.Test.make ~name:"bitblaster agrees with native u8 evaluation" ~count:60
    QCheck.(triple (int_range 0 255) (int_range 0 255) (list_of_size (QCheck.Gen.int_range 1 4) (int_range 0 7)))
    (fun (va, vb, opcodes) ->
      let w = 8 in
      let lit v = T.bv_lit ~width:w (Vbase.Bigint.of_int (v land 0xFF)) in
      let a = T.const (T.Sym.declare "bvp.a" [] (S.Bv w)) in
      let b = T.const (T.Sym.declare "bvp.b" [] (S.Bv w)) in
      (* Fold the opcode list into an expression tree and its native value. *)
      let step (t, v) code =
        match code with
        | 0 -> (T.bv_op T.Band [ t; b ], v land vb)
        | 1 -> (T.bv_op T.Bor [ t; b ], v lor vb)
        | 2 -> (T.bv_op T.Bxor [ t; b ], v lxor vb)
        | 3 -> (T.bv_op T.Badd [ t; b ], (v + vb) land 0xFF)
        | 4 -> (T.bv_op T.Bsub [ t; b ], (v - vb) land 0xFF)
        | 5 -> (T.bv_op T.Bmul [ t; b ], v * vb land 0xFF)
        | 6 -> (T.bv_op T.Bshl [ t; T.int_of 3 ], v lsl 3 land 0xFF)
        | _ -> (T.bv_op T.Blshr [ t; T.int_of 2 ], (v land 0xFF) lsr 2)
      in
      let expr, value = List.fold_left step (a, va) opcodes in
      let hyps = [ T.eq a (lit va); T.eq b (lit vb) ] in
      let right = Smt.Solver.check_valid ~hyps (T.eq expr (lit value)) in
      let wrong = Smt.Solver.check_valid ~hyps (T.eq expr (lit (value + 1))) in
      right.Smt.Solver.answer = Smt.Solver.Unsat
      && wrong.Smt.Solver.answer = Smt.Solver.Sat)

(* ------------------------------------------------------------------ *)
(* EUF vs. union-find model                                            *)
(* ------------------------------------------------------------------ *)

let prop_euf_vs_unionfind =
  (* Random ground equalities over 6 constants: the solver must decide
     ci = cj (and f(ci) = f(cj)) valid exactly when a reference
     union-find connects i and j.  Ground EUF is decidable, so the
     negative cases must come back Sat. *)
  QCheck.Test.make ~name:"euf decides ground equalities like union-find" ~count:80
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 0 8) (pair (int_range 0 5) (int_range 0 5)))
        (pair (int_range 0 5) (int_range 0 5)))
    (fun (eqs, (qi, qj)) ->
      let srt = S.Usort "EUFP" in
      let c = Array.init 6 (fun i -> T.const (T.Sym.declare (Printf.sprintf "eufp.c%d" i) [] srt)) in
      let f = T.Sym.declare "eufp.f" [ srt ] srt in
      let hyps = List.map (fun (i, j) -> T.eq c.(i) c.(j)) eqs in
      (* Reference union-find. *)
      let parent = Array.init 6 (fun i -> i) in
      let rec find i = if parent.(i) = i then i else find parent.(i) in
      List.iter (fun (i, j) -> parent.(find i) <- find j) eqs;
      let connected = find qi = find qj in
      let r1 = Smt.Solver.check_valid ~hyps (T.eq c.(qi) c.(qj)) in
      let r2 = Smt.Solver.check_valid ~hyps (T.eq (T.app f [ c.(qi) ]) (T.app f [ c.(qj) ])) in
      if connected then
        r1.Smt.Solver.answer = Smt.Solver.Unsat && r2.Smt.Solver.answer = Smt.Solver.Unsat
      else
        (* Distinct constants are not forced equal, and congruence must
           not invent the equality either. *)
        r1.Smt.Solver.answer = Smt.Solver.Sat && r2.Smt.Solver.answer = Smt.Solver.Sat)

(* ------------------------------------------------------------------ *)
(* Trigger selection                                                   *)
(* ------------------------------------------------------------------ *)

let test_triggers () =
  let srt = S.Usort "TG" in
  let f = T.Sym.declare "tgf" [ srt ] S.Int in
  let g = T.Sym.declare "tgg" [ srt ] S.Int in
  let x = T.bvar "x" srt in
  let body = T.implies (T.ge (T.app f [ x ]) (T.int_of 0)) (T.ge (T.app g [ x ]) (T.int_of 1)) in
  let q = match (T.forall [ ("x", srt) ] body).T.node with T.Forall q -> q | _ -> assert false in
  let cons = Smt.Triggers.select Smt.Triggers.Conservative q in
  let lib = Smt.Triggers.select Smt.Triggers.Liberal q in
  (* Both policies find covering groups; liberal never selects fewer. *)
  Alcotest.(check bool) "conservative nonempty" true (cons <> []);
  Alcotest.(check bool) "liberal >= conservative" true (List.length lib >= List.length cons);
  List.iter (fun gp -> Alcotest.(check int) "singleton groups" 1 (List.length gp)) cons;
  (* Explicit triggers are honoured verbatim. *)
  let q2 =
    match
      (T.forall ~triggers:[ [ T.app f [ x ] ] ] [ ("x", srt) ] body).T.node
    with
    | T.Forall q -> q
    | _ -> assert false
  in
  Alcotest.(check int) "explicit respected" 1
    (List.length (Smt.Triggers.select Smt.Triggers.Liberal q2))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "smt"
    [
      ( "sat",
        [
          Alcotest.test_case "trivial" `Quick test_sat_trivial;
          Alcotest.test_case "pigeonhole" `Quick test_sat_pigeonhole;
        ] );
      qsuite "sat-props" [ prop_sat_matches_brute_force; prop_sat_incremental ];
      ( "solver",
        [
          Alcotest.test_case "lia" `Quick test_solver_lia;
          Alcotest.test_case "euf" `Quick test_solver_euf;
          Alcotest.test_case "combination" `Quick test_solver_combination;
          Alcotest.test_case "bool" `Quick test_solver_bool_structure;
          Alcotest.test_case "divmod" `Quick test_solver_divmod;
          Alcotest.test_case "bv" `Quick test_solver_bv;
          Alcotest.test_case "quant" `Quick test_solver_quant;
          Alcotest.test_case "exists" `Quick test_solver_exists;
          Alcotest.test_case "check_valid" `Quick test_check_valid;
        ] );
      ( "euf-lia",
        [
          Alcotest.test_case "euf direct" `Quick test_euf_direct;
          Alcotest.test_case "lia direct" `Quick test_lia_direct;
          Alcotest.test_case "triggers" `Quick test_triggers;
        ] );
      qsuite "lia-props" [ prop_lia_vs_bruteforce ];
      qsuite "theory-props" [ prop_bv_vs_native; prop_euf_vs_unionfind ];
      ( "term",
        [
          Alcotest.test_case "hashcons" `Quick test_term_hashcons;
          Alcotest.test_case "folding" `Quick test_term_folding;
          Alcotest.test_case "bv folding" `Quick test_term_bv_folding;
          Alcotest.test_case "subst" `Quick test_term_subst;
          Alcotest.test_case "sizes" `Quick test_term_sizes;
        ] );
    ]
