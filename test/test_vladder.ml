(* The escalation ladder: the Rung/Ladder API, the one resolver shared
   by CLI and daemon, escalation determinism across scheduling modes
   (jobs=1 / jobs>1 / borrowed pool / live daemon), the deprecated
   budget-wrapper equivalence, and the warm winning-rung jump. *)

open Verus
module Rung = Vladder.Rung
module Ladder = Vladder.Ladder

(* ------------------------------------------------------------------ *)
(* Rung / Ladder unit surface                                          *)
(* ------------------------------------------------------------------ *)

let test_rung_fingerprint () =
  let r = Rung.profile_rung in
  Alcotest.(check string)
    "display name excluded from the fingerprint"
    (Rung.fingerprint r)
    (Rung.fingerprint { r with Rung.r_name = "renamed" });
  let scaled =
    { r with Rung.r_budget = Rung.B_scaled { deadline = 0.25; rounds = 0.25; instances = 0.25 } }
  in
  Alcotest.(check bool)
    "budget spec is part of the fingerprint" false
    (String.equal (Rung.fingerprint r) (Rung.fingerprint scaled));
  (* Integer knobs round up and clamp to >= 1; the deadline scales. *)
  let b =
    Rung.scale_budget Smt.Solver.default_budget ~deadline:0.25 ~rounds:0.001 ~instances:0.5
  in
  Alcotest.(check (float 1e-9)) "deadline scales directly"
    (Smt.Solver.default_budget.Smt.Solver.deadline_s /. 4.0)
    b.Smt.Solver.deadline_s;
  Alcotest.(check int) "rounds clamp to >= 1" 1 b.Smt.Solver.max_rounds;
  Alcotest.(check bool) "instance caps stay >= 1" true
    (b.Smt.Solver.max_instances_per_round >= 1 && b.Smt.Solver.max_instances_per_quant >= 1)

let test_ladder_api () =
  (try
     ignore (Ladder.make []);
     Alcotest.fail "make [] should raise"
   with Invalid_argument _ -> ());
  Alcotest.(check int) "identity is single-rung" 1 (Ladder.length Ladder.identity);
  List.iter
    (fun (name, l) ->
      Alcotest.(check string) "builtin name matches table key" name (Ladder.name l);
      (match Ladder.by_name name with
      | Some l' ->
        Alcotest.(check string) "by_name finds the same ladder" (Ladder.fingerprint l)
          (Ladder.fingerprint l')
      | None -> Alcotest.fail ("by_name misses " ^ name));
      Alcotest.(check bool) "no builtin widens beyond the profile" false (Ladder.widens l))
    Ladder.builtins;
  Alcotest.(check bool) "a P_full rung widens" true
    (Ladder.widens
       (Ladder.make
          [ { Rung.profile_rung with Rung.r_pruning = Rung.P_full } ]));
  (* Distinct builtins fingerprint distinctly. *)
  let fps = List.map (fun (_, l) -> Ladder.fingerprint l) Ladder.builtins in
  Alcotest.(check int) "builtin fingerprints are distinct"
    (List.length fps)
    (List.length (List.sort_uniq compare fps));
  (* pin: in-bounds single-rung, out-of-bounds rejected. *)
  (match Ladder.pin Ladder.escalate 1 with
  | Ok l ->
    Alcotest.(check int) "pin yields a single rung" 1 (Ladder.length l);
    Alcotest.(check string) "pin names the rung" "escalate@1" (Ladder.name l);
    Alcotest.(check string) "pinned rung is rung 1 verbatim"
      (Rung.fingerprint (Ladder.rung Ladder.escalate 1))
      (Rung.fingerprint (Ladder.rung l 0))
  | Error e -> Alcotest.fail e);
  (match Ladder.pin Ladder.escalate 3 with
  | Ok _ -> Alcotest.fail "pin past the top rung should be rejected"
  | Error _ -> ());
  let b = { Smt.Solver.default_budget with Smt.Solver.deadline_s = 7.0 } in
  let l = Ladder.of_budget b in
  Alcotest.(check int) "of_budget is single-rung" 1 (Ladder.length l);
  Alcotest.(check string) "of_budget default name" "budget-override" (Ladder.name l)

(* ------------------------------------------------------------------ *)
(* resolve_ladder: the shared CLI/daemon resolver                      *)
(* ------------------------------------------------------------------ *)

let test_resolve_ladder () =
  let p = Profiles.verus in
  let resolve ?ladder ?rung ?deadline_s ?max_rounds () =
    Vservice.resolve_ladder p ~ladder ~rung ~deadline_s ~max_rounds
  in
  (match resolve () with
  | Ok None -> ()
  | _ -> Alcotest.fail "all-None must resolve to the implicit identity ladder");
  (match resolve ~deadline_s:5.0 () with
  | Ok (Some l) ->
    Alcotest.(check string) "sugar builds the budget-override ladder" "budget-override"
      (Ladder.name l);
    Alcotest.(check int) "sugar ladder is single-rung" 1 (Ladder.length l)
  | _ -> Alcotest.fail "deadline sugar must resolve to a single-rung ladder");
  (match resolve ~ladder:"deep" () with
  | Ok (Some l) -> Alcotest.(check string) "named ladder resolves" "deep" (Ladder.name l)
  | _ -> Alcotest.fail "deep should resolve");
  (match resolve ~rung:2 () with
  | Ok (Some l) ->
    Alcotest.(check string) "bare rung pins the default escalate ladder" "escalate@2"
      (Ladder.name l)
  | _ -> Alcotest.fail "rung without ladder should pin escalate");
  (match resolve ~ladder:"cautious" ~rung:1 () with
  | Ok (Some l) -> Alcotest.(check string) "rung pins the named ladder" "cautious@1" (Ladder.name l)
  | _ -> Alcotest.fail "cautious rung 1 should resolve");
  (match resolve ~ladder:"nope" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown ladder name must be rejected");
  (match resolve ~ladder:"escalate" ~rung:9 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range rung must be rejected");
  match resolve ~ladder:"escalate" ~deadline_s:5.0 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "deprecated sugar combined with a ladder must be rejected"

(* ------------------------------------------------------------------ *)
(* Escalation determinism across scheduling modes                      *)
(* ------------------------------------------------------------------ *)

(* break_pop: one obligation climbs to the top rung (a Sat from a
   pruned, conservatively-triggered rung is never final), the rest win
   at rung 0 — escalation chains interleave with first attempts under
   every scheduling mode, and the digest must not notice. *)
let test_escalation_determinism () =
  let prog = Bench_programs.break_pop in
  let cfg = Driver.Config.(default |> with_ladder Ladder.escalate) in
  let d1 =
    Driver.result_digest (Driver.verify_program ~config:cfg Profiles.verus prog)
  in
  List.iter
    (fun jobs ->
      let r =
        Driver.verify_program
          ~config:Driver.Config.(cfg |> with_jobs jobs)
          Profiles.verus prog
      in
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d digest = jobs=1 digest" jobs)
        d1 (Driver.result_digest r))
    [ 2; 4 ];
  let pool = Verusd.Sched.create ~domains:3 in
  let pooled =
    Fun.protect
      ~finally:(fun () -> Verusd.Sched.shutdown pool)
      (fun () ->
        Driver.verify_program ~config:Driver.Config.(cfg |> with_sched pool) Profiles.verus prog)
  in
  Alcotest.(check string) "borrowed-pool digest = jobs=1 digest" d1
    (Driver.result_digest pooled);
  (* The climb itself is deterministic, not just the verdicts. *)
  let again = Driver.verify_program ~config:cfg Profiles.verus prog in
  let tried r =
    List.concat_map
      (fun (f : Driver.fn_result) ->
        List.map (fun (v : Driver.vc_result) -> v.Driver.vcr_rungs_tried) f.Driver.fnr_vcs)
      r.Driver.pr_fns
  in
  Alcotest.(check bool) "rungs tried are reproducible" true
    (tried (Driver.verify_program ~config:cfg Profiles.verus prog) = tried again)

(* ------------------------------------------------------------------ *)
(* Deprecated wrapper == single-rung ladder                            *)
(* ------------------------------------------------------------------ *)

let test_budget_wrapper_equivalence () =
  let b = { (Profiles.budget Profiles.verus) with Smt.Solver.deadline_s = 11.0 } in
  let via_wrapper =
    Driver.verify_program
      ~config:(Driver.Config.with_budget b Driver.Config.default [@alert "-deprecated"])
      Profiles.verus Bench_programs.const_cond
  in
  let via_ladder =
    Driver.verify_program
      ~config:Driver.Config.(default |> with_ladder (Ladder.of_budget b))
      Profiles.verus Bench_programs.const_cond
  in
  Alcotest.(check string) "wrapper digest = of_budget ladder digest"
    (Driver.result_digest via_wrapper)
    (Driver.result_digest via_ladder)

(* ------------------------------------------------------------------ *)
(* The warm winning-rung jump                                          *)
(* ------------------------------------------------------------------ *)

let fresh_dir =
  let n = ref 0 in
  fun tag ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "verus-test-vladder-%s-%d-%d" tag (Unix.getpid ()) !n)
    in
    (match Vcache.clear ~dir with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("could not clear " ^ dir ^ ": " ^ e));
    dir

let wasted (r : Driver.program_result) =
  List.fold_left
    (fun acc (f : Driver.fn_result) ->
      List.fold_left
        (fun acc (v : Driver.vc_result) ->
          match v.Driver.vcr_rung with
          | Some w -> acc + List.length (List.filter (fun t -> t < w) v.Driver.vcr_rungs_tried)
          | None -> acc)
        acc f.Driver.fnr_vcs)
    0 r.Driver.pr_fns

let test_warm_rung_jump () =
  let dir = fresh_dir "jump" in
  let run ~profile () =
    Driver.verify_program
      ~config:
        Driver.Config.(
          default |> with_ladder Ladder.escalate |> with_cache dir |> with_profile profile)
      Profiles.verus Bench_programs.break_pop
  in
  let cold = run ~profile:false () in
  Alcotest.(check bool) "cold run escalates" true (wasted cold > 0);
  (* Warm, same configuration: pure cache hits. *)
  let warm = run ~profile:false () in
  (match warm.Driver.pr_ladder with
  | Some ls ->
    let vcs =
      List.fold_left
        (fun acc (f : Driver.fn_result) -> acc + List.length f.Driver.fnr_vcs)
        0 warm.Driver.pr_fns
    in
    Alcotest.(check int) "warm run hits on every obligation" vcs ls.Driver.ls_cache_hits
  | None -> Alcotest.fail "warm run lost its ladder stats");
  Alcotest.(check string) "warm digest = cold digest" (Driver.result_digest cold)
    (Driver.result_digest warm);
  (* Warm but profiled: lookups are gated out (the cold entries carry no
     profile), so the recorded winning rung steers the fresh solve. *)
  let jump = run ~profile:true () in
  (match jump.Driver.pr_ladder with
  | Some ls ->
    Alcotest.(check bool) "profiled warm run jumps to a recorded rung" true
      (ls.Driver.ls_hint_starts > 0)
  | None -> Alcotest.fail "profiled warm run lost its ladder stats");
  Alcotest.(check int) "profiled warm run wastes zero lower-rung attempts" 0 (wasted jump);
  Alcotest.(check string) "profiled warm digest = cold digest" (Driver.result_digest cold)
    (Driver.result_digest jump)

(* ------------------------------------------------------------------ *)
(* Daemon parity: the ladder param over verus-rpc/1                    *)
(* ------------------------------------------------------------------ *)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "verus-test-vladder-%d-%d.sock" (Unix.getpid ()) !n)

let with_daemon ~domains f =
  let socket_path = fresh_socket () in
  let served = ref (Ok ()) in
  let th =
    Thread.create (fun () -> served := Vservice.serve ~socket_path ~domains ()) ()
  in
  let rec wait_up tries =
    if tries = 0 then Alcotest.fail "daemon did not come up"
    else
      match Verusd.Client.connect ~socket_path with
      | Ok c -> Verusd.Client.close c
      | Error _ ->
        Thread.delay 0.05;
        wait_up (tries - 1)
  in
  wait_up 100;
  let shutdown () =
    match Verusd.Client.connect ~socket_path with
    | Error _ -> ()
    | Ok c ->
      ignore (Verusd.Client.call c (Verusd.Rpc.request Verusd.Rpc.M_shutdown));
      Verusd.Client.close c
  in
  let r =
    try f socket_path
    with e ->
      shutdown ();
      Thread.join th;
      raise e
  in
  shutdown ();
  Thread.join th;
  (match !served with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("daemon serve failed: " ^ e));
  r

let test_daemon_ladder_parity () =
  let local =
    Driver.verify_program
      ~config:Driver.Config.(default |> with_ladder Ladder.escalate)
      Profiles.verus Bench_programs.break_pop
  in
  let local_digest = Driver.result_digest local in
  with_daemon ~domains:2 (fun socket_path ->
      match Verusd.Client.connect ~socket_path with
      | Error e -> Alcotest.fail e
      | Ok c ->
        Fun.protect
          ~finally:(fun () -> Verusd.Client.close c)
          (fun () ->
            let rungs_seen = ref [] in
            let on_event = function
              | Verusd.Rpc.E_vc { rung = Some r; _ } -> rungs_seen := r :: !rungs_seen
              | _ -> ()
            in
            let req =
              Verusd.Rpc.request ~id:3
                (Verusd.Rpc.M_job
                   (Verusd.Rpc.query ~ladder:"escalate" Verusd.Rpc.Verify "break_pop"))
            in
            (match Verusd.Client.call c ~on_event req with
            | Ok (Verusd.Rpc.E_done j) ->
              (match Vbase.Json.member "digest" j with
              | Some (Vbase.Json.String d) ->
                Alcotest.(check string) "daemon ladder digest = local ladder digest"
                  local_digest d
              | _ -> Alcotest.fail "done payload missing digest");
              Alcotest.(check bool) "vc events carry rung provenance" true
                (!rungs_seen <> [])
            | Ok (Verusd.Rpc.E_error e) ->
              Alcotest.fail ("daemon answered " ^ e.Verusd.Rpc.code ^ ": " ^ e.Verusd.Rpc.message)
            | Ok _ -> Alcotest.fail "expected done"
            | Error e -> Alcotest.fail e);
            (* Sugar combined with a ladder: RPC004, connection survives. *)
            let bad =
              Verusd.Rpc.request ~id:4
                (Verusd.Rpc.M_job
                   (Verusd.Rpc.query ~ladder:"escalate" ~deadline_s:5.0 Verusd.Rpc.Verify
                      "break_pop"))
            in
            (match Verusd.Client.call c bad with
            | Ok (Verusd.Rpc.E_error e) ->
              Alcotest.(check string) "sugar + ladder is RPC004" "RPC004" e.Verusd.Rpc.code
            | Ok _ -> Alcotest.fail "expected RPC004"
            | Error e -> Alcotest.fail e);
            match Verusd.Client.call c (Verusd.Rpc.request Verusd.Rpc.M_ping) with
            | Ok Verusd.Rpc.E_pong -> ()
            | _ -> Alcotest.fail "connection should survive an RPC004"))

let () =
  Alcotest.run "vladder"
    [
      ( "api",
        [
          Alcotest.test_case "rung fingerprints" `Quick test_rung_fingerprint;
          Alcotest.test_case "ladder surface" `Quick test_ladder_api;
          Alcotest.test_case "resolve_ladder" `Quick test_resolve_ladder;
        ] );
      ( "driver",
        [
          Alcotest.test_case "escalation determinism" `Quick test_escalation_determinism;
          Alcotest.test_case "budget wrapper equivalence" `Quick
            test_budget_wrapper_equivalence;
          Alcotest.test_case "warm rung jump" `Quick test_warm_rung_jump;
        ] );
      ( "daemon",
        [ Alcotest.test_case "ladder parity" `Quick test_daemon_ladder_parity ] );
    ]
