(* Vlint static-analysis tests: every diagnostic code fires on a seeded
   defect (positive) and stays silent on the bundled benchmark programs
   under the Verus profile (negative).  Includes the acceptance case from
   the paper's trigger story: a liberal-trigger heap-axiom instantiation
   cycle is flagged as a matching loop while the conservative/curated
   Verus-style axioms are not. *)

module T = Smt.Term
module S = Smt.Sort
open Verus
open Vir

let codes ds = List.sort_uniq compare (List.map (fun d -> d.Vlint.code) ds)
let has code ds = List.exists (fun d -> String.equal d.Vlint.code code) ds
let check_has name code ds = Alcotest.(check bool) (name ^ " fires " ^ code) true (has code ds)

let check_not name code ds =
  Alcotest.(check bool) (name ^ " silent on " ^ code) false (has code ds)

(* Minimal program scaffolding. *)
let p name ty = { pname = name; pty = ty; pmut = false }
let pmut name ty = { pname = name; pty = ty; pmut = true }

let fn ?(mode = Exec) ?(params = []) ?ret ?(requires = []) ?(ensures = []) ?body ?spec_body
    ?(attrs = []) name =
  { fname = name; fmode = mode; params; ret; requires; ensures; body; spec_body; attrs }

let prog ?(datatypes = []) functions = { datatypes; functions }
let lint_verus pr = Vlint.lint Profiles.verus pr
let int_ = TInt I_math

(* ------------------------------------------------------------------ *)
(* VL00x — termination                                                 *)
(* ------------------------------------------------------------------ *)

(* A recursive spec function without a measure: f(x) = f(x) + 1 would be
   unsound; even f(x) = f(x) is enough to form the recursion SCC. *)
let test_vl001 () =
  let bad =
    prog
      [
        fn "f" ~mode:Spec ~params:[ p "x" int_ ] ~ret:("result", int_)
          ~spec_body:(ECall ("f", [ v "x" ]));
      ]
  in
  check_has "recursive spec fn" "VL001" (lint_verus bad);
  (* Mutual recursion through two functions. *)
  let mutual =
    prog
      [
        fn "g" ~mode:Spec ~params:[ p "x" int_ ] ~ret:("result", int_)
          ~spec_body:(ECall ("h", [ v "x" ]));
        fn "h" ~mode:Spec ~params:[ p "x" int_ ] ~ret:("result", int_)
          ~spec_body:(ECall ("g", [ v "x" ]));
      ]
  in
  let ds = lint_verus mutual in
  Alcotest.(check int) "both SCC members flagged" 2 (List.length (List.filter (fun d -> d.Vlint.code = "VL001") ds));
  (* With a decreases measure the code is silent. *)
  let good =
    prog
      [
        fn "f" ~mode:Spec ~params:[ p "x" int_ ] ~ret:("result", int_)
          ~spec_body:(EIte (v "x" <=: i 0, i 0, ECall ("f", [ v "x" -: i 1 ])))
          ~attrs:[ A_decreases (v "x") ];
      ]
  in
  check_not "measured recursion" "VL001" (lint_verus good)

let test_vl002_vl003 () =
  let loop ~decreases body = SWhile { cond = v "b" <: i 10; invariants = []; decreases; body } in
  (* Proof-mode loop without decreases: Error. *)
  let bad_proof =
    prog
      [
        fn "lemma" ~mode:Proof ~params:[ p "b" int_ ]
          ~body:[ SLet ("x", int_, i 0); loop ~decreases:None [ SAssign ("x", v "x" +: i 1) ] ];
      ]
  in
  let ds = lint_verus bad_proof in
  check_has "proof loop" "VL002" ds;
  Alcotest.(check bool) "proof loop is Error" true
    (List.exists (fun d -> d.Vlint.code = "VL002" && d.Vlint.severity = Vlint.Error) ds);
  (* Exec-mode loop without decreases: Warn only. *)
  let exec_loop =
    prog
      [
        fn "run" ~mode:Exec ~params:[ p "b" int_ ]
          ~body:[ SLet ("x", int_, i 0); loop ~decreases:None [ SAssign ("x", v "x" +: i 1) ] ];
      ]
  in
  Alcotest.(check bool) "exec loop is Warn" true
    (List.exists
       (fun d -> d.Vlint.code = "VL002" && d.Vlint.severity = Vlint.Warn)
       (lint_verus exec_loop));
  (* VL003: measure over loop-constant variables cannot decrease. *)
  let const_measure =
    prog
      [
        fn "run" ~mode:Exec ~params:[ p "b" int_ ]
          ~body:
            [ SLet ("x", int_, i 0); loop ~decreases:(Some (v "b")) [ SAssign ("x", v "x" +: i 1) ] ];
      ]
  in
  check_has "constant measure" "VL003" (lint_verus const_measure);
  (* VL003 on a function-level measure naming no parameter. *)
  let const_fn_measure =
    prog
      [
        fn "f" ~mode:Spec ~params:[ p "x" int_ ] ~ret:("result", int_)
          ~spec_body:(ECall ("f", [ v "x" ]))
          ~attrs:[ A_decreases (i 7) ];
      ]
  in
  check_has "parameterless fn measure" "VL003" (lint_verus const_fn_measure)

(* ------------------------------------------------------------------ *)
(* VL01x — matching loops                                              *)
(* ------------------------------------------------------------------ *)

(* The classic diverging axiom  forall x {p(x)}. p(x) => p(f(x)) :
   every instantiation manufactures a deeper trigger. *)
let test_vl010_classic () =
  let u = S.Usort "VlintU" in
  let psym = T.Sym.declare "vlint.p" [ u ] S.Bool in
  let fsym = T.Sym.declare "vlint.f" [ u ] u in
  let x = T.bvar "x" u in
  let ax =
    T.forall
      ~triggers:[ [ T.app psym [ x ] ] ]
      [ ("x", u) ]
      (T.implies (T.app psym [ x ]) (T.app psym [ T.app fsym [ x ] ]))
  in
  (* Drive the detector directly on the hand-built axiom... *)
  check_has "hand-built p(x) => p(f(x))" "VL010" (Vlint.check_axioms Profiles.verus [ ax ]);
  (* ...and through a seeded one-axiom "program": a spec function whose
     definitional axiom IS a matching loop — recursive without decreases
     (hence un-exempt). *)
  let looping =
    prog
      [
        fn "f" ~mode:Spec ~params:[ p "x" int_ ] ~ret:("result", int_)
          ~spec_body:(ECall ("f", [ EUnop (Neg, v "x") ]) +: i 1);
      ]
  in
  let ds = Vlint.check_matching_loops Profiles.verus looping in
  check_has "recursive spec axiom" "VL010" ds;
  (* The same definition with a decreases measure is fuel-bounded. *)
  let measured =
    prog
      [
        fn "f" ~mode:Spec ~params:[ p "x" int_ ] ~ret:("result", int_)
          ~spec_body:(EIte (v "x" <=: i 0, i 0, ECall ("f", [ v "x" -: i 1 ]) +: i 1))
          ~attrs:[ A_decreases (v "x") ];
      ]
  in
  check_not "measured spec axiom" "VL010" (Vlint.check_matching_loops Profiles.verus measured)

(* The acceptance case: the Dafny-style alloc-reachability heap axiom
   (forall h, rho. alloc(h, rho) => alloc(h, unbox(rd(h, rho)))) is a
   matching loop once the trigger is the liberal alloc(h, rho) — each
   round produces a new alloc term two levels deeper.  The curated
   triggers the conservative profiles attach ({rd(h,rho)} and the
   goal-directed {alloc(h, target)}) break the cycle. *)
let heap_program =
  (* A datatype with a self-referencing field generates exactly the
     reachability axiom above under the Heap encoding. *)
  prog
    ~datatypes:
      [ { dname = "Node"; variants = [ ("Leaf", []); ("Node", [ ("next", TData "Node") ]) ] } ]
    [
      fn "touch" ~mode:Exec
        ~params:[ p "n" (TData "Node") ]
        ~body:[ SReturn None ];
    ]

let liberal_heap_profile =
  {
    Profiles.dafny with
    Profiles.name = "Dafny-liberal";
    curated_triggers = false;
    trigger_policy = Smt.Triggers.Liberal;
  }

let test_vl010_heap_axioms () =
  let liberal = Vlint.check_matching_loops liberal_heap_profile heap_program in
  check_has "liberal heap axioms" "VL010" liberal;
  Alcotest.(check bool) "cycle goes through heap.alloc" true
    (List.exists
       (fun d ->
         d.Vlint.code = "VL010"
         && Str.string_match (Str.regexp ".*heap\\.alloc.*") d.Vlint.message 0)
       liberal);
  (* Curated conservative triggers (Dafny profile as shipped): clean. *)
  check_not "curated heap axioms" "VL010"
    (Vlint.check_matching_loops Profiles.dafny heap_program);
  (* The Verus profile does not even build heap axioms (ownership). *)
  check_not "ownership encoding" "VL010"
    (Vlint.check_matching_loops Profiles.verus heap_program)

let test_vl010_degrades_to_unknown () =
  (* The same liberal heap axiom set Vlint flags as VL010 really is a
     matching loop — but the solver must degrade gracefully: with a round
     budget and a deadline configured, the solve returns [Unknown] with a
     budget reason within the allotted wall-clock instead of hanging.  (A
     ground alloc fact seeds the loop: each round instantiates the
     reachability axiom one level deeper.) *)
  let axioms = Encode.program_axioms liberal_heap_profile heap_program in
  Alcotest.(check bool) "liberal encoding produced heap axioms" true (axioms <> []);
  let h0 = T.const (T.Sym.fresh "h0" [] Theories.heap_sort) in
  let r0 = T.const (T.Sym.fresh "r0" [] Theories.ref_sort) in
  let seed = T.app Theories.alloc_sym [ h0; r0 ] in
  let deadline_s = 5.0 in
  let config =
    {
      Smt.Solver.default_config with
      Smt.Solver.budget =
        { Smt.Solver.default_budget with Smt.Solver.max_rounds = 4; deadline_s };
    }
  in
  let t0 = Unix.gettimeofday () in
  let r = Smt.Solver.solve ~config (seed :: axioms) in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match r.Smt.Solver.answer with
  | Smt.Solver.Unknown reason ->
    Alcotest.(check bool)
      (Printf.sprintf "budget reason (got %S)" reason)
      true
      (List.exists
         (fun frag ->
           Str.string_match (Str.regexp (".*" ^ Str.quote frag ^ ".*")) reason 0)
         [ "round"; "timeout"; "budget"; "quantifier" ])
  | Smt.Solver.Unsat -> Alcotest.fail "matching-loop set cannot be refuted from a ground seed"
  | Smt.Solver.Sat -> Alcotest.fail "quantified heap axioms cannot be definitively Sat");
  (* The deadline is honoured (generous slack for a loaded machine). *)
  Alcotest.(check bool)
    (Printf.sprintf "returned within deadline (%.2fs)" elapsed)
    true
    (elapsed < deadline_s +. 2.0);
  Alcotest.(check bool) "rounds capped" true (r.Smt.Solver.stats.Smt.Solver.rounds <= 4)

let test_vl011 () =
  (* An axiom quantifying over a variable no candidate pattern covers:
     pure arithmetic body, no uninterpreted application at all.  Trigger
     selection has nothing to pick, so the axiom can never instantiate. *)
  let x = T.bvar "x" S.Int in
  let dead =
    (* x*x >= 0 — true, but with no uninterpreted application the solver
       has no pattern to match on.  (Simpler bodies like x + 0 = x are
       simplified away by the hash-consing smart constructors.) *)
    T.forall [ ("x", S.Int) ]
      (T.le (T.int_lit (Vbase.Bigint.of_int 0)) (T.mul x x))
  in
  check_has "arithmetic-only axiom" "VL011" (Vlint.check_axioms Profiles.verus [ dead ]);
  (* Spec-function definitional axioms always carry their own application
     as a curated trigger, so even an arithmetic-only body stays live. *)
  let arith_only =
    prog
      [
        fn "f" ~mode:Spec ~params:[ p "x" int_ ] ~ret:("result", int_)
          ~spec_body:(v "x" +: i 1);
      ]
  in
  check_not "spec fn axiom is self-triggering" "VL011"
    (Vlint.check_matching_loops Profiles.verus arith_only)

(* ------------------------------------------------------------------ *)
(* VL02x — mode discipline                                             *)
(* ------------------------------------------------------------------ *)

let spec_id =
  fn "sid" ~mode:Spec ~params:[ p "x" int_ ] ~ret:("result", int_) ~spec_body:(v "x")

let test_vl020 () =
  let bad =
    prog [ spec_id; fn "run" ~mode:Exec ~body:[ SCall (Some "y", "sid", [ i 1 ]); SReturn None ] ]
  in
  check_has "stmt call to spec fn" "VL020" (lint_verus bad);
  let good = prog [ spec_id; fn "run" ~mode:Exec ~body:[ SLet ("y", int_, ECall ("sid", [ i 1 ])); SReturn None ] ] in
  check_not "expr call to spec fn" "VL020" (lint_verus good)

let test_vl021 () =
  let exec_fn = fn "work" ~mode:Exec ~body:[ SReturn None ] in
  let bad = prog [ exec_fn; fn "lemma" ~mode:Proof ~body:[ SCall (None, "work", []) ] ] in
  check_has "proof calls exec" "VL021" (lint_verus bad);
  let proof_fn = fn "helper" ~mode:Proof ~body:[] in
  let good = prog [ proof_fn; fn "lemma" ~mode:Proof ~body:[ SCall (None, "helper", []) ] ] in
  check_not "proof calls proof" "VL021" (lint_verus good)

let test_vl022 () =
  let exec_fn = fn "work" ~mode:Exec ~ret:("result", int_) ~body:[ SReturn (Some (i 1)) ] in
  let bad =
    prog
      [
        exec_fn;
        fn "run" ~mode:Exec ~ret:("result", int_)
          ~ensures:[ v "result" ==: ECall ("work", [] ) ]
          ~body:[ SReturn (Some (i 1)) ];
      ]
  in
  check_has "exec fn in spec position" "VL022" (lint_verus bad)

let test_vl023 () =
  let bad =
    prog
      [ fn "s" ~mode:Spec ~params:[ pmut "x" int_ ] ~ret:("result", int_) ~spec_body:(v "x") ]
  in
  check_has "spec fn with &mut" "VL023" (lint_verus bad)

let test_vl024 () =
  let opaque =
    fn "hidden" ~mode:Spec ~params:[ p "x" int_ ] ~ret:("result", int_) ~spec_body:(v "x" +: i 1)
      ~attrs:[ A_opaque ]
  in
  let bad =
    prog
      [
        opaque;
        fn "run" ~mode:Exec ~params:[ p "x" int_ ] ~ret:("result", int_)
          ~ensures:[ v "result" ==: ECall ("hidden", [ v "x" ]) ]
          ~body:[ SReturn (Some (v "x" +: i 1)) ];
      ]
  in
  check_has "ensures needs opaque body" "VL024" (lint_verus bad);
  (* Non-opaque version is fine. *)
  let transparent = { opaque with attrs = [] } in
  let good =
    prog
      [
        transparent;
        fn "run" ~mode:Exec ~params:[ p "x" int_ ] ~ret:("result", int_)
          ~ensures:[ v "result" ==: ECall ("hidden", [ v "x" ]) ]
          ~body:[ SReturn (Some (v "x" +: i 1)) ];
      ]
  in
  check_not "transparent spec fn" "VL024" (lint_verus good)

(* ------------------------------------------------------------------ *)
(* VL03x — proof hygiene                                               *)
(* ------------------------------------------------------------------ *)

let test_vl030 () =
  let bad =
    prog
      [
        fn "run" ~mode:Exec ~params:[ p "n" int_ ]
          ~body:
            [
              SLet ("x", int_, i 0);
              SWhile
                {
                  cond = v "x" <: v "n";
                  invariants = [ v "n" >=: i 0 (* loop-constant: vacuous *) ];
                  decreases = Some (v "n" -: v "x");
                  body = [ SAssign ("x", v "x" +: i 1) ];
                };
              SReturn None;
            ];
      ]
  in
  check_has "loop-constant invariant" "VL030" (lint_verus bad);
  let good =
    prog
      [
        fn "run" ~mode:Exec ~params:[ p "n" int_ ]
          ~body:
            [
              SLet ("x", int_, i 0);
              SWhile
                {
                  cond = v "x" <: v "n";
                  invariants = [ v "x" <=: v "n" ];
                  decreases = Some (v "n" -: v "x");
                  body = [ SAssign ("x", v "x" +: i 1) ];
                };
              SReturn None;
            ];
      ]
  in
  check_not "invariant over loop variable" "VL030" (lint_verus good)

let test_vl031 () =
  let bad =
    prog
      [
        fn "run" ~mode:Exec ~params:[ p "x" int_ ] ~ret:("result", int_)
          ~ensures:[ v "x" >=: i 0 ]
          ~body:[ SReturn (Some (v "x")) ];
      ]
  in
  check_has "ensures ignore result" "VL031" (lint_verus bad);
  let good =
    prog
      [
        fn "run" ~mode:Exec ~params:[ p "x" int_ ] ~ret:("result", int_)
          ~ensures:[ v "result" ==: v "x" ]
          ~body:[ SReturn (Some (v "x")) ];
      ]
  in
  check_not "ensures mention result" "VL031" (lint_verus good)

let test_vl032 () =
  let bad =
    prog
      [
        fn "run" ~mode:Exec
          ~params:[ p "x" int_; p "y" int_ ]
          ~ret:("result", int_)
          ~requires:[ v "y" >=: i 0 (* y is never used *) ]
          ~ensures:[ v "result" ==: v "x" ]
          ~body:[ SReturn (Some (v "x")) ];
      ]
  in
  check_has "unused requires" "VL032" (lint_verus bad);
  let good =
    prog
      [
        fn "run" ~mode:Exec
          ~params:[ p "x" int_ ]
          ~ret:("result", int_)
          ~requires:[ v "x" >=: i 0 ]
          ~ensures:[ v "result" ==: v "x" ]
          ~body:[ SReturn (Some (v "x")) ];
      ]
  in
  check_not "used requires" "VL032" (lint_verus good)

let test_vl033 () =
  let bad =
    prog
      [
        fn "run" ~mode:Exec ~ret:("result", int_)
          ~body:[ SReturn (Some (i 1)); SLet ("x", int_, i 2) ];
      ]
  in
  check_has "code after return" "VL033" (lint_verus bad);
  let bad2 =
    prog
      [
        fn "lemma" ~mode:Proof
          ~body:[ SAssert (EBool false, H_default); SAssume (EBool true) ];
      ]
  in
  check_has "code after assert false" "VL033" (lint_verus bad2)

(* ------------------------------------------------------------------ *)
(* Negative: bundled programs are clean under the Verus profile        *)
(* ------------------------------------------------------------------ *)

let bundled =
  [
    ("singly_linked", Bench_programs.singly_linked);
    ("doubly_linked", Bench_programs.doubly_linked);
    ("mem4", Bench_programs.memory_reasoning 4);
    ("mem8", Bench_programs.memory_reasoning 8);
    ("dlock", Bench_programs.dlock_default);
    ("break_pop", Bench_programs.break_pop);
    ("break_index", Bench_programs.break_index);
    ("vstd_seq", Vstd_seq.program);
  ]

(* "Clean" means no actionable (Error/Warn) findings.  The VL04x
   abstract-interpretation pass intentionally reports Info-level facts on
   real programs (e.g. VL044 "this overflow obligation is provably
   impossible" on singly_linked's indexer) — those are observations, not
   defects, and must not fail this gate. *)
let test_bundled_clean () =
  List.iter
    (fun (name, pr) ->
      let ds =
        List.filter (fun d -> d.Vlint.severity <> Vlint.Info) (lint_verus pr)
      in
      Alcotest.(check (list string)) (name ^ " clean under Verus") [] (codes ds))
    bundled

(* Theory axiom sets under every shipped profile stay loop-free: the
   conservative/curated triggers are the paper's §3.1 point. *)
let test_profiles_loop_free () =
  List.iter
    (fun (prof : Profiles.t) ->
      List.iter
        (fun (name, pr) ->
          check_not
            (name ^ " under " ^ prof.Profiles.name)
            "VL010"
            (Vlint.check_matching_loops prof pr))
        bundled)
    Profiles.all

(* ------------------------------------------------------------------ *)
(* Driver integration                                                  *)
(* ------------------------------------------------------------------ *)

let test_driver_lint_strict () =
  let bad =
    prog
      [
        fn "f" ~mode:Spec ~params:[ p "x" int_ ] ~ret:("result", int_)
          ~spec_body:(ECall ("f", [ v "x" ]));
        fn "run" ~mode:Exec ~ret:("result", int_) ~body:[ SReturn (Some (i 1)) ];
      ]
  in
  let r =
    Driver.verify_program
      ~config:Driver.Config.(with_lint Driver.Lint_strict default)
      Profiles.verus bad
  in
  Alcotest.(check bool) "strict lint fails" false r.Driver.pr_ok;
  Alcotest.(check bool) "no VCs were run" true (r.Driver.pr_fns = []);
  (match Driver.first_failure r with
  | Some (where, _, code) ->
    Alcotest.(check string) "failure code is the lint code" "VL001" code;
    Alcotest.(check string) "failure names the function" "f" where
  | None -> Alcotest.fail "expected a first_failure");
  (* Warn mode records but does not fail. *)
  let r2 =
    Driver.verify_program
      ~config:Driver.Config.(with_lint Driver.Lint_warn default)
      Profiles.verus bad
  in
  Alcotest.(check bool) "warn mode verifies" true r2.Driver.pr_ok;
  Alcotest.(check bool) "warn mode records findings" true (r2.Driver.pr_lint <> [])

let test_first_failure_codes () =
  (* Clean program: no failure triple at all. *)
  let ok =
    Driver.verify_program
      ~config:Driver.Config.(with_lint Driver.Lint_strict default)
      Profiles.verus Bench_programs.singly_linked
  in
  Alcotest.(check bool) "clean program verifies strict" true ok.Driver.pr_ok;
  Alcotest.(check bool) "no first_failure" true (Driver.first_failure ok = None);
  (* Broken program: VC-level code.  Depending on solver budget the broken
     assertion is reported as refuted (VC001) or unknown (VC002); either way
     the code namespace distinguishes it from lint/front-end failures. *)
  let broken = Driver.verify_program Profiles.verus Bench_programs.break_pop in
  (match Driver.first_failure broken with
  | Some (fnname, _, code) ->
    Alcotest.(check bool) "unproved VC code" true (code = "VC001" || code = "VC002");
    Alcotest.(check string) "failure in pop_front" "pop_front" fnname
  | None -> Alcotest.fail "break_pop should fail")

let () =
  Alcotest.run "vlint"
    [
      ( "termination",
        [
          Alcotest.test_case "VL001 recursion without measure" `Quick test_vl001;
          Alcotest.test_case "VL002/VL003 loops and measures" `Quick test_vl002_vl003;
        ] );
      ( "matching-loops",
        [
          Alcotest.test_case "VL010 recursive definitional axiom" `Quick test_vl010_classic;
          Alcotest.test_case "VL010 liberal heap axioms loop, curated do not" `Quick
            test_vl010_heap_axioms;
          Alcotest.test_case "VL010 liberal set degrades to Unknown under budget" `Quick
            test_vl010_degrades_to_unknown;
          Alcotest.test_case "VL011 triggerless axiom" `Quick test_vl011;
        ] );
      ( "modes",
        [
          Alcotest.test_case "VL020 stmt call to spec" `Quick test_vl020;
          Alcotest.test_case "VL021 proof calls exec" `Quick test_vl021;
          Alcotest.test_case "VL022 spec-position exec call" `Quick test_vl022;
          Alcotest.test_case "VL023 spec &mut param" `Quick test_vl023;
          Alcotest.test_case "VL024 opaque relied on by ensures" `Quick test_vl024;
        ] );
      ( "hygiene",
        [
          Alcotest.test_case "VL030 vacuous invariant" `Quick test_vl030;
          Alcotest.test_case "VL031 ensures ignore result" `Quick test_vl031;
          Alcotest.test_case "VL032 unused requires" `Quick test_vl032;
          Alcotest.test_case "VL033 unreachable statements" `Quick test_vl033;
        ] );
      ( "clean-programs",
        [
          Alcotest.test_case "bundled programs clean (Verus)" `Quick test_bundled_clean;
          Alcotest.test_case "no matching loops under any profile" `Quick
            test_profiles_loop_free;
        ] );
      ( "driver",
        [
          Alcotest.test_case "strict mode fails fast" `Quick test_driver_lint_strict;
          Alcotest.test_case "first_failure carries codes" `Quick test_first_failure_codes;
        ] );
    ]
