(* Page-table case study tests: bit packing, map/unmap vs. the MMU walker
   spec and a flat model, directory reclamation, and the §3.3 proof
   battery. *)

module PM = Pagetable.Phys_mem
module Pte = Pagetable.Pte
module Impl = Pagetable.Impl

let test_phys_mem () =
  let m = PM.create ~frames:8 () in
  let f1 = PM.alloc_frame m and f2 = PM.alloc_frame m in
  Alcotest.(check bool) "distinct" true (f1 <> f2);
  PM.write_word m ((f1 * PM.frame_size) + 16) 0xABCDL;
  Alcotest.(check int64) "rw" 0xABCDL (PM.read_word m ((f1 * PM.frame_size) + 16));
  Alcotest.(check int64) "zeroed" 0L (PM.read_word m (f2 * PM.frame_size));
  PM.free_frame m f1;
  Alcotest.check_raises "double free" (Invalid_argument "Phys_mem.free_frame: not allocated")
    (fun () -> PM.free_frame m f1);
  Alcotest.check_raises "use after free"
    (Invalid_argument (Printf.sprintf "Phys_mem: access to unallocated frame %d" f1)) (fun () ->
      ignore (PM.read_word m (f1 * PM.frame_size)));
  (* Freed frames are reused and re-zeroed. *)
  let f3 = PM.alloc_frame m in
  Alcotest.(check int) "reuse" f1 f3;
  Alcotest.(check int64) "rezeroed" 0L (PM.read_word m ((f3 * PM.frame_size) + 16))

let test_pte_roundtrip () =
  let flags = { Pte.present = true; writable = true; user = false } in
  let e = Pte.pack flags ~frame:0x12345 in
  let flags', frame' = Pte.unpack e in
  Alcotest.(check bool) "present" true flags'.Pte.present;
  Alcotest.(check bool) "writable" true flags'.Pte.writable;
  Alcotest.(check bool) "user" false flags'.Pte.user;
  Alcotest.(check int) "frame" 0x12345 frame';
  Alcotest.(check bool) "empty absent" false (Pte.is_present Pte.empty)

let prop_pte_roundtrip =
  QCheck.Test.make ~name:"pte pack/unpack roundtrip" ~count:300
    QCheck.(
      quad bool bool bool (int_range 0 ((1 lsl 40) - 1)))
    (fun (p, w, u, frame) ->
      let f = { Pte.present = p; writable = w; user = u } in
      let f', frame' = Pte.unpack (Pte.pack f ~frame) in
      f' = f && frame' = frame)

let prop_index_matches_spec =
  QCheck.Test.make ~name:"index = (va / 4096*512^(l-1)) mod 512" ~count:300
    QCheck.(pair (int_range 1 4) (int_range 0 ((1 lsl 48) - 1)))
    (fun (level, va) ->
      let divisor = 4096 * int_of_float (512. ** float_of_int (level - 1)) in
      Pte.index ~level va = va / divisor mod 512)

let test_map_translate () =
  let m = PM.create () in
  let pt = Impl.create m in
  Alcotest.(check (option int)) "unmapped" None (Impl.translate pt 0x1000);
  let frame = PM.alloc_frame m in
  Alcotest.(check (result unit string)) "map" (Ok ())
    (Impl.map4k pt ~va:0x7FFF_0000_1000 ~frame ~writable:true);
  Alcotest.(check (option int)) "translate"
    (Some ((frame * 4096) + 0x321))
    (Impl.translate pt (0x7FFF_0000_1000 + 0x321));
  Alcotest.(check bool) "double map fails" true
    (Impl.map4k pt ~va:0x7FFF_0000_1000 ~frame ~writable:false = Error "already mapped");
  Alcotest.(check (result unit string)) "unmap" (Ok ()) (Impl.unmap4k pt ~va:0x7FFF_0000_1000);
  Alcotest.(check (option int)) "gone" None (Impl.translate pt 0x7FFF_0000_1000);
  Alcotest.(check bool) "double unmap fails" true (Impl.unmap4k pt ~va:0x7FFF_0000_1000 = Error "not mapped")

let test_reclamation () =
  let m = PM.create () in
  let pt = Impl.create m in
  Alcotest.(check int) "just root" 1 (Impl.table_frames pt);
  (* Map a clustered region (shares directories) and a distant one. *)
  let frames = List.init 16 (fun _ -> PM.alloc_frame m) in
  List.iteri
    (fun i f -> ignore (Impl.map4k pt ~va:(0x1000_0000 + (i * 4096)) ~frame:f ~writable:true))
    frames;
  ignore (Impl.map4k pt ~va:0x7FFF_FFFF_F000 ~frame:(PM.alloc_frame m) ~writable:true);
  let used = Impl.table_frames pt in
  Alcotest.(check bool) "allocated directories" true (used > 4);
  (* Unmap everything: all directories must be reclaimed. *)
  List.iteri (fun i _ -> ignore (Impl.unmap4k pt ~va:(0x1000_0000 + (i * 4096)))) frames;
  ignore (Impl.unmap4k pt ~va:0x7FFF_FFFF_F000);
  Alcotest.(check int) "all reclaimed" 1 (Impl.table_frames pt);
  (* The no-reclaim variant keeps its directories. *)
  let m2 = PM.create () in
  let pt2 = Impl.create ~reclaim:false m2 in
  ignore (Impl.map4k pt2 ~va:0x1000_0000 ~frame:(PM.alloc_frame m2) ~writable:true);
  ignore (Impl.unmap4k pt2 ~va:0x1000_0000);
  Alcotest.(check int) "no reclaim keeps tables" 4 (Impl.table_frames pt2)

let prop_pagetable_vs_model =
  QCheck.Test.make ~name:"map/unmap matches flat model" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 0 60) (pair (int_range 0 200) bool))
    (fun ops ->
      let m = PM.create () in
      let pt = Impl.create m in
      let model : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let next_frame = ref 1000 in
      List.iter
        (fun (slot, is_map) ->
          let va = 0x4000_0000 + (slot * 4096 * 7) in
          if is_map then begin
            incr next_frame;
            let ok = Impl.map4k pt ~va ~frame:!next_frame ~writable:true = Ok () in
            if ok && not (Hashtbl.mem model va) then Hashtbl.replace model va !next_frame
          end
          else begin
            let ok = Impl.unmap4k pt ~va = Ok () in
            ignore ok;
            Hashtbl.remove model va
          end)
        ops;
      Hashtbl.fold
        (fun va frame acc -> acc && Impl.translate pt va = Some (frame * 4096))
        model true
      && List.for_all
           (fun (slot, _) ->
             let va = 0x4000_0000 + (slot * 4096 * 7) in
             match Hashtbl.find_opt model va with
             | Some frame -> Impl.translate pt va = Some (frame * 4096)
             | None -> Impl.translate pt va = None)
           ops)

let test_impl_agrees_with_baseline () =
  let m1 = PM.create () and m2 = PM.create () in
  let pt = Impl.create m1 in
  let bl = Pagetable.Baseline.create m2 in
  let rng = Vbase.Rng.create ~seed:5 in
  for _ = 1 to 500 do
    let va = Vbase.Rng.int rng 300 * 4096 in
    if Vbase.Rng.bool rng then begin
      let frame = 500 + Vbase.Rng.int rng 1000 in
      let a = Impl.map4k pt ~va ~frame ~writable:true in
      let b = Pagetable.Baseline.map4k bl ~va ~frame ~writable:true in
      if (a = Ok ()) <> (b = Ok ()) then Alcotest.fail "map result divergence"
    end
    else begin
      let a = Impl.unmap4k pt ~va in
      let b = Pagetable.Baseline.unmap4k bl ~va in
      if (a = Ok ()) <> (b = Ok ()) then Alcotest.fail "unmap result divergence"
    end;
    let probe = Vbase.Rng.int rng 300 * 4096 in
    if Impl.translate pt probe <> Pagetable.Baseline.translate bl probe then
      Alcotest.fail "translate divergence"
  done

let test_proof_battery () =
  let obs = Pagetable.Pagetable_proofs.run () in
  List.iter
    (fun (o : Pagetable.Pagetable_proofs.obligation) ->
      Alcotest.(check bool)
        (Printf.sprintf "[%s] %s" o.Pagetable.Pagetable_proofs.mode o.Pagetable.Pagetable_proofs.name)
        true
        (o.Pagetable.Pagetable_proofs.outcome = Verus.Modes.Proved))
    obs;
  (* All three custom modes are exercised, echoing the §4.2.3 counts. *)
  let counts = Pagetable.Pagetable_proofs.count_by_mode obs in
  List.iter
    (fun mode ->
      Alcotest.(check bool) (mode ^ " present") true (List.mem_assoc mode counts))
    [ "bit_vector"; "nonlinear_arith"; "integer_ring"; "compute" ]

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "pagetable"
    [
      ( "phys-mem",
        [ Alcotest.test_case "alloc/rw/free" `Quick test_phys_mem ] );
      ( "pte",
        [ Alcotest.test_case "roundtrip" `Quick test_pte_roundtrip ] );
      qsuite "pte-props" [ prop_pte_roundtrip; prop_index_matches_spec ];
      ( "impl",
        [
          Alcotest.test_case "map/translate/unmap" `Quick test_map_translate;
          Alcotest.test_case "reclamation" `Quick test_reclamation;
          Alcotest.test_case "baseline agreement" `Quick test_impl_agrees_with_baseline;
        ] );
      qsuite "impl-props" [ prop_pagetable_vs_model ];
      ("proofs", [ Alcotest.test_case "3.3 battery" `Slow test_proof_battery ]);
    ]
