(* Tests for the vbase substrate: bignums and rationals against native-int
   reference semantics, plus CRC-32 known-answer vectors. *)

module B = Vbase.Bigint
module R = Vbase.Rat

let bi = B.of_int

let check_b msg expected actual =
  Alcotest.(check string) msg (B.to_string expected) (B.to_string actual)

(* ------------------------------------------------------------------ *)
(* Bigint unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_bigint_basics () =
  check_b "add" (bi 7) (B.add (bi 3) (bi 4));
  check_b "add neg" (bi (-1)) (B.add (bi 3) (bi (-4)));
  check_b "sub" (bi (-5)) (B.sub (bi 2) (bi 7));
  check_b "mul" (bi (-12)) (B.mul (bi 3) (bi (-4)));
  check_b "mul zero" B.zero (B.mul (bi 0) (bi 12345));
  Alcotest.(check int) "compare" (-1) (B.compare (bi (-2)) (bi 3));
  Alcotest.(check int) "sign" (-1) (B.sign (bi (-9)));
  Alcotest.(check bool) "is_zero" true (B.is_zero (B.sub (bi 5) (bi 5)))

let test_bigint_large () =
  (* (2^100 + 1) * (2^100 - 1) = 2^200 - 1 *)
  let p100 = B.pow B.two 100 in
  let lhs = B.mul (B.add p100 B.one) (B.sub p100 B.one) in
  let rhs = B.sub (B.pow B.two 200) B.one in
  check_b "2^200-1" rhs lhs;
  (* String roundtrip on a big decimal literal. *)
  let s = "123456789012345678901234567890123456789" in
  Alcotest.(check string) "roundtrip" s (B.to_string (B.of_string s));
  Alcotest.(check string) "neg roundtrip" ("-" ^ s) (B.to_string (B.of_string ("-" ^ s)))

let test_bigint_divrem () =
  let cases = [ (17, 5); (-17, 5); (17, -5); (-17, -5); (0, 3); (100, 10) ] in
  let f (a, b) =
    let q, r = B.div_rem (bi a) (bi b) in
    Alcotest.(check int) (Printf.sprintf "q %d/%d" a b) (a / b) (B.to_int_exn q);
    Alcotest.(check int) (Printf.sprintf "r %d/%d" a b) (a mod b) (B.to_int_exn r)
  in
  List.iter f cases;
  (* Large division: ((2^200-1) / (2^100+1)) reconstructs. *)
  let n = B.sub (B.pow B.two 200) B.one in
  let d = B.add (B.pow B.two 100) B.one in
  let q, r = B.div_rem n d in
  check_b "reconstruct" n (B.add (B.mul q d) r);
  Alcotest.(check bool) "rem small" true (B.compare (B.abs r) (B.abs d) < 0)

let test_bigint_fdiv_fmod () =
  let f (a, b) =
    let q = B.fdiv (bi a) (bi b) and r = B.fmod (bi a) (bi b) in
    let fq = int_of_float (Float.floor (float_of_int a /. float_of_int b)) in
    Alcotest.(check int) (Printf.sprintf "fdiv %d %d" a b) fq (B.to_int_exn q);
    Alcotest.(check int) (Printf.sprintf "fmod %d %d" a b) (a - (fq * b)) (B.to_int_exn r)
  in
  List.iter f [ (17, 5); (-17, 5); (17, -5); (-17, -5); (12, 4); (-12, 4) ]

let test_bigint_gcd_pow () =
  Alcotest.(check int) "gcd" 6 (B.to_int_exn (B.gcd (bi 54) (bi (-24))));
  Alcotest.(check int) "gcd zero" 7 (B.to_int_exn (B.gcd (bi 0) (bi 7)));
  Alcotest.(check int) "pow" 1024 (B.to_int_exn (B.pow B.two 10));
  Alcotest.(check int) "pow0" 1 (B.to_int_exn (B.pow (bi 99) 0))

let test_bigint_bits () =
  Alcotest.(check int) "shift_left" 40 (B.to_int_exn (B.shift_left (bi 5) 3));
  Alcotest.(check int) "logand2p" 5 (B.to_int_exn (B.logand2p (bi 0b110101) 4));
  Alcotest.(check bool) "testbit" true (B.testbit (bi 0b100) 2);
  Alcotest.(check bool) "testbit0" false (B.testbit (bi 0b100) 1);
  (* Bits of a large number. *)
  let n = B.pow B.two 90 in
  Alcotest.(check bool) "testbit 90" true (B.testbit n 90);
  Alcotest.(check bool) "testbit 89" false (B.testbit n 89)

let test_bigint_to_int () =
  Alcotest.(check (option int)) "small" (Some 42) (B.to_int_opt (bi 42));
  Alcotest.(check (option int)) "neg" (Some (-42)) (B.to_int_opt (bi (-42)));
  Alcotest.(check (option int)) "max_int" (Some max_int) (B.to_int_opt (bi max_int));
  Alcotest.(check (option int)) "too big" None (B.to_int_opt (B.pow B.two 80))

(* ------------------------------------------------------------------ *)
(* Bigint property tests (reference: native int on small operands)     *)
(* ------------------------------------------------------------------ *)

let small_int = QCheck.int_range (-1_000_000) 1_000_000

let prop_ring_ops =
  QCheck.Test.make ~name:"bigint matches int on +,-,*" ~count:150
    (QCheck.pair small_int small_int) (fun (a, b) ->
      B.to_int_exn (B.add (bi a) (bi b)) = a + b
      && B.to_int_exn (B.sub (bi a) (bi b)) = a - b
      && B.to_int_exn (B.mul (bi a) (bi b)) = a * b)

let prop_divrem =
  QCheck.Test.make ~name:"bigint div_rem matches int" ~count:150
    (QCheck.pair small_int small_int) (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = B.div_rem (bi a) (bi b) in
      B.to_int_exn q = a / b && B.to_int_exn r = a mod b)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bigint string roundtrip" ~count:80
    (QCheck.list (QCheck.int_range 0 999999999)) (fun limbs ->
      (* Build a big number from decimal chunks and round-trip it. *)
      let n =
        List.fold_left
          (fun acc c -> B.add (B.mul acc (bi 1_000_000_000)) (bi c))
          B.zero limbs
      in
      B.equal n (B.of_string (B.to_string n)))

let prop_mul_div_big =
  QCheck.Test.make ~name:"bigint (a*b)/b = a on big operands" ~count:80
    (QCheck.pair (QCheck.pair small_int small_int) (QCheck.pair small_int small_int))
    (fun ((a1, a2), (b1, b2)) ->
      (* Compose ~40-bit operands from two small ints each. *)
      let mk h l = B.add (B.mul (bi h) (bi 1_000_000)) (bi (abs l)) in
      let a = mk a1 a2 and b = mk b1 b2 in
      QCheck.assume (not (B.is_zero b));
      let q, r = B.div_rem (B.mul a b) b in
      B.equal q a && B.is_zero r)

(* ------------------------------------------------------------------ *)
(* Rat tests                                                           *)
(* ------------------------------------------------------------------ *)

let test_rat_basics () =
  let half = R.of_ints 1 2 and third = R.of_ints 1 3 in
  Alcotest.(check string) "add" "5/6" (R.to_string (R.add half third));
  Alcotest.(check string) "sub" "1/6" (R.to_string (R.sub half third));
  Alcotest.(check string) "mul" "1/6" (R.to_string (R.mul half third));
  Alcotest.(check string) "div" "3/2" (R.to_string (R.div half third));
  Alcotest.(check string) "normalize" "1/2" (R.to_string (R.of_ints 4 8));
  Alcotest.(check string) "neg den" "-1/2" (R.to_string (R.of_ints 4 (-8)));
  Alcotest.(check bool) "compare" true (R.compare third half < 0)

let test_rat_floor_ceil () =
  let f (n, d, fl, ce) =
    let q = R.of_ints n d in
    Alcotest.(check int) (Printf.sprintf "floor %d/%d" n d) fl (B.to_int_exn (R.floor q));
    Alcotest.(check int) (Printf.sprintf "ceil %d/%d" n d) ce (B.to_int_exn (R.ceil q))
  in
  List.iter f [ (7, 2, 3, 4); (-7, 2, -4, -3); (6, 3, 2, 2); (-6, 3, -2, -2); (0, 5, 0, 0) ]

let prop_rat_field =
  QCheck.Test.make ~name:"rat field laws" ~count:100
    (QCheck.pair (QCheck.pair small_int (QCheck.int_range 1 1000))
       (QCheck.pair small_int (QCheck.int_range 1 1000)))
    (fun ((a, b), (c, d)) ->
      let x = R.of_ints a b and y = R.of_ints c d in
      R.equal (R.add x y) (R.add y x)
      && R.equal (R.mul x y) (R.mul y x)
      && R.equal (R.sub (R.add x y) y) x
      && (R.is_zero y || R.equal (R.mul (R.div x y) y) x))

let prop_rat_floor =
  QCheck.Test.make ~name:"rat floor <= q < floor+1" ~count:100
    (QCheck.pair small_int (QCheck.int_range 1 1000)) (fun (n, d) ->
      let q = R.of_ints n d in
      let fl = R.of_bigint (R.floor q) in
      R.compare fl q <= 0 && R.compare q (R.add fl R.one) < 0)

(* ------------------------------------------------------------------ *)
(* CRC-32, RNG, Vecbuf                                                 *)
(* ------------------------------------------------------------------ *)

let test_crc32 () =
  (* Standard known-answer test: CRC32("123456789") = 0xCBF43926. *)
  Alcotest.(check int32) "kat" 0xCBF43926l (Vbase.Crc32.digest_string "123456789");
  Alcotest.(check int32) "empty" 0l (Vbase.Crc32.digest_string "");
  (* The table matches its specification (the compute-mode proof target). *)
  let t = Vbase.Crc32.table () in
  for i = 0 to 255 do
    Alcotest.(check int32)
      (Printf.sprintf "table[%d]" i)
      (Vbase.Crc32.table_entry_spec i) t.(i)
  done;
  (* Incremental digest equals one-shot digest. *)
  let s = "hello, persistent world" in
  let b = Bytes.of_string s in
  let c1 = Vbase.Crc32.digest b 0 (Bytes.length b) in
  let mid = 7 in
  let c2 =
    Vbase.Crc32.digest ~crc:(Vbase.Crc32.digest b 0 mid) b mid (Bytes.length b - mid)
  in
  Alcotest.(check int32) "incremental" c1 c2

let test_rng_determinism () =
  let r1 = Vbase.Rng.create ~seed:42 and r2 = Vbase.Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Vbase.Rng.int r1 1000) (Vbase.Rng.int r2 1000)
  done;
  let r3 = Vbase.Rng.create ~seed:43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Vbase.Rng.int r1 1000 <> Vbase.Rng.int r3 1000 then differs := true
  done;
  Alcotest.(check bool) "different seed differs" true !differs

let prop_rng_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:80
    (QCheck.pair QCheck.small_int (QCheck.int_range 1 10000)) (fun (seed, bound) ->
      let r = Vbase.Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Vbase.Rng.int r bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let test_zipf_determinism () =
  (* Same seed, same (s, n) ⇒ the same rank stream; the storm workloads
     rely on replayable skew. *)
  let draw seed =
    let r = Vbase.Rng.create ~seed in
    let z = Vbase.Rng.zipf ~s:1.1 ~n:10_000 in
    List.init 200 (fun _ -> Vbase.Rng.zipf_draw r z)
  in
  Alcotest.(check (list int)) "same stream" (draw 9) (draw 9);
  Alcotest.(check bool) "different seed differs" true (draw 9 <> draw 10);
  List.iter
    (fun rank -> Alcotest.(check bool) "in range" true (rank >= 0 && rank < 10_000))
    (draw 11)

let test_zipf_rank_frequency () =
  (* Rank-frequency monotonicity: lower ranks must be drawn at least as
     often as (binned) higher ranks, and the pmf must match empirical
     frequencies for the head ranks. *)
  let n = 1000 and draws = 200_000 in
  let r = Vbase.Rng.create ~seed:7 in
  let z = Vbase.Rng.zipf ~s:1.2 ~n in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let k = Vbase.Rng.zipf_draw r z in
    counts.(k) <- counts.(k) + 1
  done;
  (* Bin ranks geometrically; each bin's mean frequency must dominate the
     next bin's (binning smooths sampling noise). *)
  let bin lo hi =
    let s = ref 0 in
    for i = lo to hi - 1 do
      s := !s + counts.(i)
    done;
    float_of_int !s /. float_of_int (hi - lo)
  in
  let bins = [ (0, 1); (1, 4); (4, 16); (16, 64); (64, 256); (256, 1000) ] in
  let means = List.map (fun (lo, hi) -> bin lo hi) bins in
  let rec check_mono = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool)
        (Printf.sprintf "bin mean %.1f >= %.1f" a b)
        true (a >= b);
      check_mono rest
    | _ -> ()
  in
  check_mono means;
  (* Head-rank empirical frequency vs. the analytic pmf (within 10%). *)
  List.iter
    (fun rank ->
      let expect = Vbase.Rng.zipf_pmf z rank *. float_of_int draws in
      let got = float_of_int counts.(rank) in
      Alcotest.(check bool)
        (Printf.sprintf "rank %d: %.0f within 10%% of %.0f" rank got expect)
        true
        (abs_float (got -. expect) <= 0.1 *. expect))
    [ 0; 1; 2 ];
  (* The pmf itself is a distribution. *)
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. Vbase.Rng.zipf_pmf z i
  done;
  Alcotest.(check bool) "pmf sums to 1" true (abs_float (!total -. 1.0) < 1e-9)

let test_vecbuf () =
  let v = Vbase.Vecbuf.create ~dummy:(-1) in
  for i = 0 to 99 do
    Vbase.Vecbuf.push v i
  done;
  Alcotest.(check int) "len" 100 (Vbase.Vecbuf.length v);
  Alcotest.(check int) "get" 57 (Vbase.Vecbuf.get v 57);
  Alcotest.(check int) "pop" 99 (Vbase.Vecbuf.pop v);
  Vbase.Vecbuf.shrink v 10;
  Alcotest.(check int) "shrink" 10 (Vbase.Vecbuf.length v);
  Alcotest.(check (list int)) "to_list" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (Vbase.Vecbuf.to_list v);
  Vbase.Vecbuf.set v 3 33;
  Alcotest.(check int) "set" 33 (Vbase.Vecbuf.get v 3);
  Alcotest.(check int) "fold" (33 + 45 - 3) (Vbase.Vecbuf.fold ( + ) 0 v);
  Vbase.Vecbuf.clear v;
  Alcotest.(check bool) "clear" true (Vbase.Vecbuf.is_empty v)

(* ------------------------------------------------------------------ *)
(* Fault plans                                                          *)
(* ------------------------------------------------------------------ *)

module Fp = Vbase.Faultplan

let test_faultplan_explicit () =
  let p = Fp.create ~seed:9 () in
  Fp.fire_at p "net.drop" [ 2; 5 ];
  let fired = List.init 6 (fun _ -> Fp.fires p "net.drop") in
  Alcotest.(check (list bool)) "fires exactly at 2 and 5"
    [ false; true; false; false; true; false ]
    fired;
  Alcotest.(check int) "step" 6 (Fp.step p "net.drop");
  Alcotest.(check int) "fired" 2 (Fp.fired p "net.drop");
  Alcotest.(check (list (pair string int))) "trace"
    [ ("net.drop", 2); ("net.drop", 5) ]
    (Fp.trace p)

let test_faultplan_unarmed () =
  let p = Fp.create ~seed:3 () in
  for _ = 1 to 50 do
    Alcotest.(check bool) "unarmed never fires" false (Fp.fires p "pmem.torn")
  done;
  Alcotest.(check int) "step still advances" 50 (Fp.step p "pmem.torn")

let test_faultplan_determinism () =
  (* Same seed + same per-site consult counts ⇒ identical traces, even
     when consults of distinct sites interleave differently. *)
  let consult plan order =
    List.iter (fun site -> ignore (Fp.fires plan site)) order
  in
  let build order =
    let p = Fp.create ~seed:77 () in
    Fp.set_prob p "net.drop" ~pct:30;
    Fp.set_prob p "net.dup" ~pct:30;
    consult p order;
    p
  in
  let interleaved =
    List.concat (List.init 100 (fun _ -> [ "net.drop"; "net.dup" ]))
  in
  let grouped =
    List.init 100 (fun _ -> "net.drop") @ List.init 100 (fun _ -> "net.dup")
  in
  let p1 = build interleaved and p2 = build interleaved in
  Alcotest.(check string) "replay is byte-identical" (Fp.trace_to_string p1)
    (Fp.trace_to_string p2);
  let p3 = build grouped in
  (* Per-site streams are independent of cross-site interleaving: the set
     of firing steps per site is unchanged, only global trace order moves. *)
  let steps plan site =
    List.filter_map (fun (s, k) -> if s = site then Some k else None) (Fp.trace plan)
  in
  Alcotest.(check (list int)) "drop schedule interleaving-independent"
    (steps p1 "net.drop") (steps p3 "net.drop");
  Alcotest.(check (list int)) "dup schedule interleaving-independent"
    (steps p1 "net.dup") (steps p3 "net.dup");
  let p4 = Fp.create ~seed:78 () in
  Fp.set_prob p4 "net.drop" ~pct:30;
  Fp.set_prob p4 "net.dup" ~pct:30;
  consult p4 interleaved;
  Alcotest.(check bool) "different seed differs" true
    (Fp.trace_to_string p1 <> Fp.trace_to_string p4)

let test_faultplan_draw_isolated () =
  (* draw must not perturb the firing schedule. *)
  let build ~with_draws =
    let p = Fp.create ~seed:5 () in
    Fp.set_prob p "net.delay" ~pct:40;
    for _ = 1 to 200 do
      if Fp.fires p "net.delay" && with_draws then ignore (Fp.draw p "net.delay" 7)
    done;
    Fp.trace_to_string p
  in
  Alcotest.(check string) "draws do not shift schedule" (build ~with_draws:false)
    (build ~with_draws:true)

let prop_faultplan_rate =
  QCheck.Test.make ~name:"probabilistic rate is roughly honoured" ~count:30
    QCheck.(pair small_int (int_range 5 95))
    (fun (seed, pct) ->
      let p = Fp.create ~seed () in
      Fp.set_prob p "x" ~pct;
      let n = 2000 in
      let hits = ref 0 in
      for _ = 1 to n do
        if Fp.fires p "x" then incr hits
      done;
      let rate = 100 * !hits / n in
      abs (rate - pct) <= 10)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

module J = Vbase.Json

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("null", J.Null);
        ("bools", J.List [ J.Bool true; J.Bool false ]);
        ("ints", J.List [ J.Int 0; J.Int (-7); J.Int 123456789 ]);
        ("floats", J.List [ J.Float 0.5; J.Float (-2.25); J.Float 3.0 ]);
        ("str", J.String "line\nbreak \"quoted\" back\\slash\ttab");
        ("empty_list", J.List []);
        ("empty_obj", J.Obj []);
        ("nested", J.Obj [ ("xs", J.List [ J.Obj [ ("k", J.Int 1) ] ]) ]);
      ]
  in
  List.iter
    (fun indent ->
      match J.of_string (J.to_string ~indent doc) with
      | Ok doc' ->
        Alcotest.(check bool)
          (Printf.sprintf "roundtrip indent=%b" indent)
          true (doc = doc')
      | Error e -> Alcotest.failf "roundtrip (indent=%b) failed: %s" indent e)
    [ true; false ]

let test_json_parse_errors () =
  List.iter
    (fun bad ->
      match J.of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" bad)
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\":1} extra" ]

let test_json_accessors () =
  let j = J.Obj [ ("a", J.Obj [ ("b", J.Int 3) ]); ("f", J.Float 1.5) ] in
  Alcotest.(check bool) "member" true (J.member "f" j = Some (J.Float 1.5));
  Alcotest.(check bool) "member missing" true (J.member "zz" j = None);
  Alcotest.(check bool) "path" true (J.path [ "a"; "b" ] j = Some (J.Int 3));
  Alcotest.(check bool) "to_float of int" true
    (Option.bind (J.path [ "a"; "b" ] j) J.to_float = Some 3.0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "vbase"
    [
      ( "bigint",
        [
          Alcotest.test_case "basics" `Quick test_bigint_basics;
          Alcotest.test_case "large" `Quick test_bigint_large;
          Alcotest.test_case "div_rem" `Quick test_bigint_divrem;
          Alcotest.test_case "fdiv/fmod" `Quick test_bigint_fdiv_fmod;
          Alcotest.test_case "gcd/pow" `Quick test_bigint_gcd_pow;
          Alcotest.test_case "bits" `Quick test_bigint_bits;
          Alcotest.test_case "to_int" `Quick test_bigint_to_int;
        ] );
      qsuite "bigint-props" [ prop_ring_ops; prop_divrem; prop_string_roundtrip; prop_mul_div_big ];
      ( "rat",
        [
          Alcotest.test_case "basics" `Quick test_rat_basics;
          Alcotest.test_case "floor/ceil" `Quick test_rat_floor_ceil;
        ] );
      qsuite "rat-props" [ prop_rat_field; prop_rat_floor ];
      ( "misc",
        [
          Alcotest.test_case "crc32" `Quick test_crc32;
          Alcotest.test_case "rng" `Quick test_rng_determinism;
          Alcotest.test_case "zipf determinism" `Quick test_zipf_determinism;
          Alcotest.test_case "zipf rank-frequency" `Quick test_zipf_rank_frequency;
          Alcotest.test_case "vecbuf" `Quick test_vecbuf;
        ] );
      qsuite "misc-props" [ prop_rng_bounds ];
      ( "faultplan",
        [
          Alcotest.test_case "explicit steps" `Quick test_faultplan_explicit;
          Alcotest.test_case "unarmed" `Quick test_faultplan_unarmed;
          Alcotest.test_case "determinism" `Quick test_faultplan_determinism;
          Alcotest.test_case "draw isolation" `Quick test_faultplan_draw_isolated;
        ] );
      qsuite "faultplan-props" [ prop_faultplan_rate ];
      ( "json",
        [
          Alcotest.test_case "print/parse roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "malformed inputs rejected" `Quick test_json_parse_errors;
          Alcotest.test_case "member/path/to_float" `Quick test_json_accessors;
        ] );
    ]
