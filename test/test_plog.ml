(* Persistent-log case study tests: basic append/read, recovery after
   crashes at adversarial points, CRC corruption detection, head advance /
   wrap-around, multilog atomicity, and a randomized crash-consistency
   property. *)

module P = Plog.Pmem
module L = Plog.Log

let mk ?(len = 4096 + L.header_bytes) () =
  let mem = P.create ~size:(len + 64) () in
  L.format mem ~base:0 ~len;
  let log = Result.get_ok (L.attach mem ~base:0 ~len) in
  (mem, log)

let test_append_read () =
  let _, log = mk () in
  Alcotest.(check (result unit string)) "a1" (Ok ()) (L.append log "hello ");
  Alcotest.(check (result unit string)) "a2" (Ok ()) (L.append log "world");
  Alcotest.(check int) "tail" 11 (L.tail log);
  Alcotest.(check (result string string)) "read" (Ok "hello world") (L.read log ~offset:0 ~len:11);
  Alcotest.(check (result string string)) "partial" (Ok "wor") (L.read log ~offset:6 ~len:3);
  Alcotest.(check bool) "oob" true (Result.is_error (L.read log ~offset:6 ~len:100))

let test_recovery_basic () =
  let mem, log = mk () in
  ignore (L.append log "abc");
  ignore (L.append log "defg");
  P.crash mem;
  let log2 = Result.get_ok (L.attach mem ~base:0 ~len:(4096 + L.header_bytes)) in
  Alcotest.(check int) "tail recovered" 7 (L.tail log2);
  Alcotest.(check (result string string)) "data recovered" (Ok "abcdefg")
    (L.read log2 ~offset:0 ~len:7)

let test_crash_mid_append () =
  (* Crash after data flush but before the commit slot flush: the append
     must not be visible.  We emulate by writing data manually. *)
  let mem, log = mk () in
  ignore (L.append log "committed");
  (* Start an append whose commit never lands: write data without header. *)
  P.write mem ~addr:(L.header_bytes + 9) "UNCOMMITTED";
  (* no flush of a new header slot *)
  P.crash mem;
  let log2 = Result.get_ok (L.attach mem ~base:0 ~len:(4096 + L.header_bytes)) in
  Alcotest.(check int) "tail excludes torn append" 9 (L.tail log2);
  Alcotest.(check (result string string)) "prefix intact" (Ok "committed")
    (L.read log2 ~offset:0 ~len:9)

let test_corruption_detected () =
  let mem, log = mk () in
  ignore (L.append log "data!");
  (* Corrupt the active header slot (slot index = version mod 2). *)
  P.flip_bit mem ~addr:3 ~bit:2;
  (* slot 0 *)
  P.flip_bit mem ~addr:35 ~bit:5;
  (* slot 1 *)
  (match L.attach mem ~base:0 ~len:(4096 + L.header_bytes) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt metadata accepted");
  (* A single corrupted slot still recovers from the other. *)
  let mem2, log2 = mk () in
  ignore (L.append log2 "x");
  ignore (L.append log2 "y");
  (* After format (version 1) and two appends the version is 3, so the
     active slot is index 1; corrupt the stale slot 0 only. *)
  P.flip_bit mem2 ~addr:5 ~bit:0;
  (match L.attach mem2 ~base:0 ~len:(4096 + L.header_bytes) with
  | Ok l -> Alcotest.(check int) "recovered from good slot" 2 (L.tail l)
  | Error e -> Alcotest.fail e)

let test_advance_head_wraparound () =
  let _, log = mk ~len:(256 + L.header_bytes) () in
  (* Fill, advance, and wrap several times. *)
  for round = 0 to 9 do
    let payload = String.make 100 (Char.chr (Char.code 'a' + round)) in
    (match L.append log payload with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Printf.sprintf "round %d: %s" round e));
    if L.tail log - L.head log > 150 then
      Alcotest.(check (result unit string)) "advance" (Ok ())
        (L.advance_head log (L.tail log - 100))
  done;
  (* The last append is intact across the wrap. *)
  Alcotest.(check (result string string)) "wrap read" (Ok (String.make 100 'j'))
    (L.read log ~offset:(L.tail log - 100) ~len:100)

let test_log_full () =
  let _, log = mk ~len:(64 + L.header_bytes) () in
  Alcotest.(check (result unit string)) "fits" (Ok ()) (L.append log (String.make 64 'x'));
  Alcotest.(check bool) "full" true (Result.is_error (L.append log "y"));
  ignore (L.advance_head log 10);
  Alcotest.(check (result unit string)) "after advance" (Ok ()) (L.append log "0123456789")

(* Randomized crash consistency: appends are acked only when append
   returns; after a crash at a random point, recovery must yield exactly a
   prefix of acked appends (nothing lost that was acked, nothing invented). *)
let prop_crash_consistency =
  QCheck.Test.make ~name:"crash recovery yields acked prefix" ~count:60
    QCheck.(pair small_nat (int_range 0 10000))
    (fun (seed, _) ->
      let len = 512 + L.header_bytes in
      let mem = P.create ~size:len () in
      L.format mem ~base:0 ~len;
      let log = Result.get_ok (L.attach mem ~base:0 ~len) in
      let rng = Vbase.Rng.create ~seed in
      let acked = Buffer.create 256 in
      let crash_after = Vbase.Rng.int rng 30 + 1 in
      (try
         for i = 1 to 40 do
           if i = crash_after then raise Exit;
           let payload =
             String.init (1 + Vbase.Rng.int rng 20) (fun _ ->
                 Char.chr (Char.code 'a' + Vbase.Rng.int rng 26))
           in
           (* Keep space available. *)
           if L.tail log - L.head log + String.length payload > 400 then
             ignore (L.advance_head log (L.tail log - 50));
           match L.append log payload with
           | Ok () -> Buffer.add_string acked payload
           | Error _ -> ()
         done
       with Exit -> ());
      P.crash mem;
      match L.attach mem ~base:0 ~len with
      | Error e -> QCheck.Test.fail_report e
      | Ok log2 ->
        let h = L.head log2 and t = L.tail log2 in
        (* Everything acked must be present: tail >= total acked bytes. *)
        if t < Buffer.length acked then QCheck.Test.fail_report "acked data lost"
        else begin
          (* Readable region must match the acked byte stream. *)
          match L.read log2 ~offset:h ~len:(min (t - h) (Buffer.length acked - h)) with
          | Ok s ->
            let expect = Buffer.sub acked h (String.length s) in
            if s = expect then true else QCheck.Test.fail_report "recovered bytes differ"
          | Error e -> QCheck.Test.fail_report e
        end)

(* --- multilog ------------------------------------------------------- *)

let test_multilog_atomic () =
  let mem = P.create ~size:65536 () in
  Plog.Multilog.format mem ~base:0 ~log_len:1024 ~logs:3;
  let ml = Result.get_ok (Plog.Multilog.attach mem ~base:0 ~log_len:1024 ~logs:3) in
  Alcotest.(check (result unit string)) "append" (Ok ())
    (Plog.Multilog.append_all ml [ "aa"; "bbb"; "c" ]);
  Alcotest.(check (list int)) "tails" [ 2; 3; 1 ] (Plog.Multilog.tails ml);
  (* Data written but not committed disappears on crash. *)
  ignore (Plog.Multilog.append_all ml [ "XX"; "YYY"; "Z" ]);
  P.crash mem;
  let ml2 = Result.get_ok (Plog.Multilog.attach mem ~base:0 ~log_len:1024 ~logs:3) in
  Alcotest.(check (list int)) "committed tails survive" [ 4; 6; 2 ] (Plog.Multilog.tails ml2);
  Alcotest.(check (result string string)) "log1 contents" (Ok "bbbYYY")
    (Plog.Multilog.read ml2 ~log:1 ~offset:0 ~len:6)

let test_multilog_all_or_nothing () =
  let mem = P.create ~size:65536 () in
  Plog.Multilog.format mem ~base:0 ~log_len:64 ~logs:2;
  let ml = Result.get_ok (Plog.Multilog.attach mem ~base:0 ~log_len:64 ~logs:2) in
  (* Second payload too big: nothing commits. *)
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Plog.Multilog.append_all ml [ "ok"; String.make 100 'x' ]));
  Alcotest.(check (list int)) "unchanged" [ 0; 0 ] (Plog.Multilog.tails ml)

(* Power cut inside a single-log append (the fence never lands): recovery
   must yield a clean *prefix* of the append stream — an append whose
   commit didn't persist may vanish, but nothing torn, reordered or
   invented may appear. *)
let prop_log_powercut =
  QCheck.Test.make ~name:"log power cut yields clean prefix" ~count:80
    QCheck.(pair small_nat (int_range 0 25))
    (fun (seed, budget) ->
      let len = 2048 + L.header_bytes in
      let mem = P.create ~size:len () in
      L.format mem ~base:0 ~len;
      let log = Result.get_ok (L.attach mem ~base:0 ~len) in
      let rng = Vbase.Rng.create ~seed in
      let stream = Buffer.create 256 in
      P.set_flush_budget mem budget;
      for _ = 1 to 12 do
        let payload =
          String.init (1 + Vbase.Rng.int rng 20) (fun _ ->
              Char.chr (Char.code 'a' + Vbase.Rng.int rng 26))
        in
        match L.append log payload with
        | Ok () -> Buffer.add_string stream payload
        | Error _ -> ()
      done;
      P.crash mem;
      match L.attach mem ~base:0 ~len with
      | Error e -> QCheck.Test.fail_report ("recovery failed: " ^ e)
      | Ok log2 ->
        let t = L.tail log2 in
        if t > Buffer.length stream then QCheck.Test.fail_report "invented data"
        else begin
          match L.read log2 ~offset:0 ~len:t with
          | Ok s ->
            if s = Buffer.sub stream 0 t then true
            else QCheck.Test.fail_report "recovered bytes are not a stream prefix"
          | Error e -> QCheck.Test.fail_report e
        end)

(* Torn writes: the "pmem.torn" fault site cuts power *mid-flush* at a
   plan-chosen flush, persisting only a prefix of the flushed range — the
   torn / partial-cache-line write of a real power failure.  Wherever the
   tear lands (data, or worse, inside a header slot), recovery must still
   come up, rejecting torn metadata via CRC and exposing a clean committed
   prefix of the append stream. *)
let prop_log_torn_write =
  QCheck.Test.make ~name:"torn flush yields clean prefix (CRC rejects torn slot)" ~count:120
    QCheck.(pair small_nat (int_range 1 60))
    (fun (seed, torn_at) ->
      let torn_at = max 1 torn_at (* shrinker may step below the range *) in
      let len = 2048 + L.header_bytes in
      let plan = Vbase.Faultplan.create ~seed:(seed + 1) () in
      let mem = P.create ~faults:plan ~size:len () in
      L.format mem ~base:0 ~len;
      let log = Result.get_ok (L.attach mem ~base:0 ~len) in
      (* Tear the [torn_at]-th flush *after* formatting (a tear during
         format loses the log before it ever existed — not a recovery
         scenario); every later flush is lost too. *)
      Vbase.Faultplan.fire_at plan "pmem.torn"
        [ Vbase.Faultplan.step plan "pmem.torn" + torn_at ];
      let rng = Vbase.Rng.create ~seed in
      let stream = Buffer.create 256 in
      for _ = 1 to 12 do
        let payload =
          String.init (1 + Vbase.Rng.int rng 20) (fun _ ->
              Char.chr (Char.code 'a' + Vbase.Rng.int rng 26))
        in
        match L.append log payload with
        | Ok () -> Buffer.add_string stream payload
        | Error _ -> ()
      done;
      P.crash mem;
      match L.attach mem ~base:0 ~len with
      | Error e -> QCheck.Test.fail_report ("recovery failed: " ^ e)
      | Ok log2 ->
        let t = L.tail log2 in
        if t > Buffer.length stream then QCheck.Test.fail_report "invented data"
        else begin
          match L.read log2 ~offset:0 ~len:t with
          | Ok s ->
            if s = Buffer.sub stream 0 t then true
            else QCheck.Test.fail_report "recovered bytes are not a stream prefix"
          | Error e -> QCheck.Test.fail_report e
        end)

(* Replaying the same fault plan tears the same flush at the same byte:
   recovery lands in the same state both times. *)
let test_torn_write_replay () =
  let run () =
    let len = 1024 + L.header_bytes in
    let plan = Vbase.Faultplan.create ~seed:99 () in
    Vbase.Faultplan.set_prob plan "pmem.torn" ~pct:4;
    let mem = P.create ~faults:plan ~size:len () in
    L.format mem ~base:0 ~len;
    let log = Result.get_ok (L.attach mem ~base:0 ~len) in
    for i = 1 to 20 do
      ignore (L.append log (Printf.sprintf "payload-%02d" i))
    done;
    P.crash mem;
    let log2 = Result.get_ok (L.attach mem ~base:0 ~len) in
    let t = L.tail log2 in
    (t, Result.get_ok (L.read log2 ~offset:0 ~len:t), Vbase.Faultplan.trace_to_string plan)
  in
  let t1, s1, tr1 = run () and t2, s2, tr2 = run () in
  Alcotest.(check int) "same recovered tail" t1 t2;
  Alcotest.(check string) "same recovered bytes" s1 s2;
  Alcotest.(check string) "same fault trace" tr1 tr2

(* Randomized power-cut atomicity: flushes stop persisting after a random
   budget (the fence never lands), so the cut can fall anywhere inside an
   append_all's write sequence — between data flushes, or between data and
   commit.  Recovery must expose exactly the first k multi-appends for a
   single k across ALL logs: never a torn append. *)
let prop_multilog_powercut =
  QCheck.Test.make ~name:"multilog survives mid-append power cut" ~count:80
    QCheck.(pair small_nat (int_range 0 40))
    (fun (seed, budget) ->
      let logs = 3 and log_len = 2048 in
      let mem = P.create ~size:65536 () in
      Plog.Multilog.format mem ~base:0 ~log_len ~logs;
      let ml = Result.get_ok (Plog.Multilog.attach mem ~base:0 ~log_len ~logs) in
      let rng = Vbase.Rng.create ~seed in
      let n_appends = 1 + Vbase.Rng.int rng 8 in
      (* Per-append payloads, possibly empty for some logs. *)
      let appends =
        List.init n_appends (fun _ ->
            List.init logs (fun _ ->
                String.init (Vbase.Rng.int rng 30) (fun _ ->
                    Char.chr (Char.code 'a' + Vbase.Rng.int rng 26))))
      in
      P.set_flush_budget mem budget;
      List.iter (fun ps -> ignore (Plog.Multilog.append_all ml ps)) appends;
      P.crash mem;
      match Plog.Multilog.attach mem ~base:0 ~log_len ~logs with
      | Error e -> QCheck.Test.fail_report ("recovery failed: " ^ e)
      | Ok ml2 ->
        let tails = Plog.Multilog.tails ml2 in
        (* Find the unique k whose cumulative lengths match every log. *)
        let cumulative k =
          List.init logs (fun l ->
              List.fold_left
                (fun acc ps -> acc + String.length (List.nth ps l))
                0
                (List.filteri (fun i _ -> i < k) appends))
        in
        let rec find_k k =
          if k > n_appends then None
          else if cumulative k = tails then Some k
          else find_k (k + 1)
        in
        (match find_k 0 with
        | None ->
          QCheck.Test.fail_report
            (Printf.sprintf "torn append: tails %s match no prefix"
               (String.concat "," (List.map string_of_int tails)))
        | Some k ->
          (* Contents of each log must equal the first k payloads. *)
          List.for_all
            (fun l ->
              let expect =
                String.concat ""
                  (List.filteri (fun i _ -> i < k) appends |> List.map (fun ps -> List.nth ps l))
              in
              match Plog.Multilog.read ml2 ~log:l ~offset:0 ~len:(String.length expect) with
              | Ok s -> s = expect
              | Error _ -> String.length expect = 0)
            (List.init logs (fun l -> l))))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "plog"
    [
      ( "log",
        [
          Alcotest.test_case "append/read" `Quick test_append_read;
          Alcotest.test_case "recovery" `Quick test_recovery_basic;
          Alcotest.test_case "crash mid-append" `Quick test_crash_mid_append;
          Alcotest.test_case "corruption detected" `Quick test_corruption_detected;
          Alcotest.test_case "advance/wrap" `Quick test_advance_head_wraparound;
          Alcotest.test_case "log full" `Quick test_log_full;
        ] );
      qsuite "crash-props"
        [
          prop_crash_consistency;
          prop_log_powercut;
          prop_log_torn_write;
          prop_multilog_powercut;
        ];
      ( "torn-writes",
        [ Alcotest.test_case "replay determinism" `Quick test_torn_write_replay ] );
      ( "multilog",
        [
          Alcotest.test_case "atomic append" `Quick test_multilog_atomic;
          Alcotest.test_case "all-or-nothing" `Quick test_multilog_all_or_nothing;
        ] );
    ]
