(* daemon_smoke — the `dune build @daemon` gate, two modes:

     daemon_smoke
       End-to-end daemon smoke: serve an in-process daemon on a
       thread, drive it with two overlapping clients verifying
       different programs (their obligations interleave in one shared
       pool), check every daemon digest against the corresponding
       in-process jobs=1 run, then hit the shared warm cache from a
       third client (>= 90% hits) and exercise ping/status/shutdown.

     daemon_smoke --validate-docs PATH
       The docs gate: extract every fenced ```json block from PATH
       (docs/PROTOCOL.md in CI) and pass it through
       Verusd.Rpc.validate_frame — the same validator the daemon and
       client are built on.  A schema change that forgets to update
       the documentation, or a documented example the implementation
       would reject, fails the build.

   Exit 0 on success, 1 with a FAIL line on any check. *)

module J = Vbase.Json
module Rpc = Verusd.Rpc
open Verus

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("daemon_smoke: FAIL: " ^ m);
      exit 1)
    fmt

let pass fmt = Printf.ksprintf (fun m -> print_endline ("daemon_smoke: " ^ m)) fmt

(* ------------------------- docs gate ------------------------------- *)

(* Fenced ```json blocks, with the line number each starts on. *)
let json_blocks path =
  let ic = open_in path in
  let blocks = ref [] in
  let buf = Buffer.create 256 in
  let in_block = ref false in
  let block_start = ref 0 in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let trimmed = String.trim line in
       if !in_block then
         if trimmed = "```" then begin
           blocks := (!block_start, Buffer.contents buf) :: !blocks;
           Buffer.clear buf;
           in_block := false
         end
         else begin
           Buffer.add_string buf line;
           Buffer.add_char buf '\n'
         end
       else if trimmed = "```json" then begin
         in_block := true;
         block_start := !lineno + 1
       end
     done
   with End_of_file -> close_in ic);
  if !in_block then fail "%s: unterminated ```json block at line %d" path !block_start;
  List.rev !blocks

let validate_docs path =
  let blocks = json_blocks path in
  let bad = ref 0 in
  List.iter
    (fun (line, text) ->
      match J.of_string text with
      | Error e ->
        incr bad;
        Printf.eprintf "%s:%d: example is not valid JSON: %s\n" path line e
      | Ok j -> (
        match Rpc.validate_frame j with
        | Ok () -> ()
        | Error e ->
          incr bad;
          Printf.eprintf "%s:%d: example violates %s: %s\n" path line Rpc.schema_version e))
    blocks;
  if !bad > 0 then fail "%d of %d documented example(s) failed validation" !bad (List.length blocks);
  (* An empty document must not vacuously pass: the protocol spec keeps
     at least one example per method and per event kind. *)
  if List.length blocks < 10 then
    fail "%s documents only %d examples (expected the full method/event set)" path
      (List.length blocks);
  pass "docs gate: %d protocol examples validate against %s" (List.length blocks)
    Rpc.schema_version

(* --------------------------- smoke --------------------------------- *)

let fresh_tmp tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "verus-daemon-smoke-%s-%d" tag (Unix.getpid ()))

let local_digest program certify =
  let r =
    Driver.verify_program
      ~config:Driver.Config.(default |> with_certify certify)
      Profiles.verus program
  in
  Driver.result_digest r

let connect socket_path =
  match Verusd.Client.connect ~socket_path with
  | Ok c -> c
  | Error e -> fail "connect: %s" e

let call c ?on_event req =
  match Verusd.Client.call c ?on_event req with
  | Ok ev -> ev
  | Error e -> fail "call: %s" e

let done_of = function
  | Rpc.E_done j -> j
  | Rpc.E_error e -> fail "daemon error %s: %s" e.Rpc.code e.Rpc.message
  | _ -> fail "expected a done event"

let jstr j k = match J.member k j with Some (J.String s) -> s | _ -> fail "done payload missing %s" k
let jint j k = match J.member k j with Some (J.Int n) -> n | _ -> fail "payload missing %s" k

let verify_req ?(stream = true) program =
  Rpc.request ~id:1 (Rpc.M_job (Rpc.query ~certify:true ~stream Rpc.Verify program))

let smoke () =
  let socket_path = fresh_tmp "sock" in
  let cache_dir = fresh_tmp "cache" in
  (match Vcache.clear ~dir:cache_dir with
  | Ok () -> ()
  | Error e -> fail "could not clear %s: %s" cache_dir e);
  if Sys.file_exists socket_path then Sys.remove socket_path;
  (* Reference digests, computed in-process at jobs=1 before the daemon
     exists. *)
  let progs =
    [ ("singly_linked", Bench_programs.singly_linked); ("dlock", Bench_programs.dlock_default) ]
  in
  let want = List.map (fun (n, p) -> (n, local_digest p true)) progs in
  (* Serve. *)
  let served = ref (Ok ()) in
  let th =
    Thread.create
      (fun () -> served := Vservice.serve ~socket_path ~domains:2 ~cache_dir ())
      ()
  in
  let rec wait_up tries =
    if tries = 0 then fail "daemon did not come up at %s" socket_path
    else
      match Verusd.Client.connect ~socket_path with
      | Ok c -> Verusd.Client.close c
      | Error _ ->
        Thread.delay 0.05;
        wait_up (tries - 1)
  in
  wait_up 100;
  (* Two overlapping clients, one per program, each streaming. *)
  let results = Array.make (List.length progs) None in
  let client_threads =
    List.mapi
      (fun i (name, _) ->
        Thread.create
          (fun () ->
            let c = connect socket_path in
            let vcs = ref 0 in
            let on_event = function Rpc.E_vc _ -> incr vcs | _ -> () in
            let d = done_of (call c ~on_event (verify_req name)) in
            Verusd.Client.close c;
            results.(i) <- Some (name, d, !vcs))
          ())
      progs
  in
  List.iter Thread.join client_threads;
  Array.iter
    (function
      | None -> fail "a client thread produced no result"
      | Some (name, d, vcs) ->
        let expect = List.assoc name want in
        if jstr d "digest" <> expect then
          fail "%s: daemon digest %s <> in-process digest %s" name (jstr d "digest") expect;
        if jint d "exit_code" <> 0 then fail "%s: exit_code %d" name (jint d "exit_code");
        if vcs <> jint d "vcs" then
          fail "%s: streamed %d vc events for %d obligations" name vcs (jint d "vcs");
        pass "%s: daemon digest matches in-process run (%d obligations streamed)" name vcs)
    results;
  (* Third client onto the now-warm shared cache. *)
  let c = connect socket_path in
  let d = done_of (call c (verify_req ~stream:false "singly_linked")) in
  Verusd.Client.close c;
  if jstr d "digest" <> List.assoc "singly_linked" want then
    fail "warm digest drifted: %s" (jstr d "digest");
  let cache = match J.member "cache" d with Some c -> c | None -> fail "no cache stats" in
  let hits = jint cache "hits" and misses = jint cache "misses" in
  let rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  if rate < 0.9 then fail "warm client hit rate %.0f%% (< 90%%)" (100. *. rate);
  pass "warm client: %d/%d cache hits (%.0f%%), digest unchanged" hits (hits + misses)
    (100. *. rate);
  (* ping / status / shutdown. *)
  let c = connect socket_path in
  (match call c (Rpc.request Rpc.M_ping) with
  | Rpc.E_pong -> ()
  | _ -> fail "ping did not pong");
  (match call c (Rpc.request Rpc.M_status) with
  | Rpc.E_status j ->
    if jint j "domains" <> 2 then fail "status domains <> 2";
    pass "status: %d requests served on %d domains" (jint j "requests") (jint j "domains")
  | _ -> fail "status did not answer");
  (match call c (Rpc.request Rpc.M_shutdown) with
  | Rpc.E_done j when jstr j "kind" = "shutdown" -> ()
  | _ -> fail "shutdown did not acknowledge");
  Verusd.Client.close c;
  Thread.join th;
  (match !served with Ok () -> () | Error e -> fail "serve: %s" e);
  if Sys.file_exists socket_path then fail "socket file not removed on shutdown";
  pass "orderly shutdown, socket removed";
  print_endline "daemon_smoke: PASS"

let () =
  match Array.to_list Sys.argv with
  | [ _ ] -> smoke ()
  | [ _; "--validate-docs"; path ] -> validate_docs path
  | _ ->
    prerr_endline "usage: daemon_smoke [--validate-docs PATH]";
    exit 2
