(* CI smoke for the profiler's JSON surface.

   Reads a document produced by `verus_cli profile --json` (from the
   file named on the command line, or stdin when none is given), parses
   it with Vbase.Json, and runs Profile_report.validate over it: schema
   version, every required top-level key, the five numeric phase times,
   and the per-row fields of the quantifier / axiom / function arrays.

   Exit 0 when the document validates, 1 with a diagnostic otherwise.
   This is the check behind `dune build @profile` and the profile stage
   of scripts/check.sh — because the emitter and the validator are the
   same module, the schema the CLI writes and the schema CI accepts
   cannot drift apart. *)

let read_all ic =
  let b = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel b ic 4096
     done
   with End_of_file -> ());
  Buffer.contents b

let () =
  let src, text =
    match Sys.argv with
    | [| _ |] -> ("<stdin>", read_all stdin)
    | [| _; path |] ->
      let ic = open_in_bin path in
      let text = read_all ic in
      close_in ic;
      (path, text)
    | _ ->
      prerr_endline "usage: profile_smoke [profile.json]  (reads stdin when no file given)";
      exit 2
  in
  match Vbase.Json.of_string text with
  | Error e ->
    Printf.eprintf "profile_smoke: %s: JSON parse error: %s\n" src e;
    exit 1
  | Ok j -> (
    match Verus.Profile_report.validate j with
    | Error e ->
      Printf.eprintf "profile_smoke: %s: invalid profile document: %s\n" src e;
      exit 1
    | Ok () ->
      Printf.printf "profile_smoke: %s: ok (schema %s, %d required keys present)\n" src
        Verus.Profile_report.schema_version
        (List.length Verus.Profile_report.required_keys))
