(* Command-line driver with a small subcommand interface:

     verus_cli verify  <program> [<profile>] [--fn NAME] [--jobs N] [--lint MODE]
                       [--deadline SECS] [--max-rounds N] [--cache DIR] [--no-cache]
                       [--certify]
     verus_cli profile <program> [<profile>] [--json] [--top K] [--liberal]
                       [--fn NAME] [--jobs N] [--deadline SECS] [--max-rounds N]
                       [--cache DIR] [--no-cache]
     verus_cli lint    [<program>|--all] [<profile>] [--strict]
     verus_cli cache   stats|clear [DIR]
     verus_cli list            (also available as --list)
     verus_cli codes           (the VL0xx diagnostic table)
     verus_cli help

   The verification cache directory comes from --cache DIR or, when the
   flag is absent, the VERUS_CACHE environment variable; --no-cache turns
   caching off regardless.

   Exit codes: 0 ok, 1 findings / verification failure (a refutation, a
   front-end error, or a strict-mode lint), 2 usage error, 3 budget
   exhausted — every failed obligation is Unknown (solver deadline /
   round budget), none refuted.  Distinguishing 3 from 1 lets CI retry
   with a bigger --deadline instead of reporting a counterexample.  The
   cache subcommands use 4 for I/O problems (unreadable/corrupt store,
   failed delete) — distinct from 0 so scripts notice, distinct from 1
   so it is never mistaken for a verification failure.  Under --certify,
   5 means a certificate rejection (VC003): the solver said Unsat but
   the independent Vcheck kernel would not replay its proof — a solver
   bug or a damaged certificate, categorically different from both a
   counterexample (1) and a timeout (3). *)

let programs =
  [
    ("singly_linked", fun () -> Verus.Bench_programs.singly_linked);
    ("doubly_linked", fun () -> Verus.Bench_programs.doubly_linked);
    ("mem4", fun () -> Verus.Bench_programs.memory_reasoning 4);
    ("mem8", fun () -> Verus.Bench_programs.memory_reasoning 8);
    ("dlock", fun () -> Verus.Bench_programs.dlock_default);
    ("break_pop", fun () -> Verus.Bench_programs.break_pop);
    ("break_index", fun () -> Verus.Bench_programs.break_index);
    ("vstd_seq", fun () -> Verus.Vstd_seq.program);
  ]

let profile_names =
  List.map (fun (p : Verus.Profiles.t) -> p.Verus.Profiles.name) Verus.Profiles.all

let usage oc =
  Printf.fprintf oc
    "usage: verus_cli <command> [args]\n\n\
     commands:\n\
    \  verify <program> [<profile>] [--fn NAME] [--jobs N] [--lint ignore|warn|strict]\n\
    \         [--deadline SECS] [--max-rounds N] [--cache DIR] [--no-cache] [--certify]\n\
    \      verify one bundled program under a profile (default: Verus);\n\
    \      --deadline / --max-rounds override the profile's solver budgets;\n\
    \      --cache DIR (or VERUS_CACHE) reuses cached VC results across runs;\n\
    \      --certify replays every Unsat's proof certificate through the\n\
    \      independent Vcheck kernel and fails (exit 5, VC003) on rejection\n\
    \  profile <program> [<profile>] [--json] [--top K] [--liberal] [--fn NAME]\n\
    \          [--jobs N] [--deadline SECS] [--max-rounds N] [--cache DIR] [--no-cache]\n\
    \      verify with the solver profiler on and print instantiation /\n\
    \      phase-time hot-spot tables (--json: versioned machine-readable\n\
    \      document; --liberal: degrade the profile to Dafny-style broad\n\
    \      trigger selection first, the configuration behind the VL010\n\
    \      cross-check)\n\
    \  lint [<program>|--all] [<profile>] [--strict] [--liberal]\n\
    \      run the Vlint static analyses; exit 1 on Error findings\n\
    \      (--strict: also fail on Warn findings; --liberal: lint the\n\
    \      broad-trigger degradation of the profile)\n\
    \  cache stats|clear [DIR]\n\
    \      inspect or delete the verification cache in DIR (or VERUS_CACHE);\n\
    \      exit 4 on I/O problems (unreadable or corrupt store, failed delete)\n\
    \  list\n\
    \      list bundled programs and profiles\n\
    \  codes\n\
    \      print the VL0xx diagnostic-code table\n\
    \  help\n\
    \      this message\n\n\
     programs: %s\n\
     profiles: %s (case-insensitive; 'fstar' and 'lowstar' also accepted)\n\
     exit codes: 0 ok / 1 findings or failure / 2 usage / 3 solver budget exhausted\n\
    \            (3 = every failed obligation is Unknown: a timeout is not a refutation)\n\
    \            / 4 cache I/O problem (cache subcommands only)\n\
    \            / 5 certificate rejected under --certify (VC003: the kernel\n\
    \            would not replay an Unsat's proof — not a counterexample)\n"
    (String.concat ", " (List.map fst programs))
    (String.concat ", " profile_names)

let die_usage fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline m;
      usage stderr;
      exit 2)
    fmt

let find_profile name =
  (* Case-insensitive, and "fstar"/"lowstar" for the awkward "F*/Low*". *)
  let norm s = String.lowercase_ascii s in
  let matches (p : Verus.Profiles.t) =
    String.equal (norm p.Verus.Profiles.name) (norm name)
    || (String.equal p.Verus.Profiles.name "F*/Low*"
       && List.mem (norm name) [ "fstar"; "f*"; "lowstar"; "low*" ])
  in
  match List.find_opt matches Verus.Profiles.all with
  | Some p -> p
  | None ->
    die_usage "unknown profile %s (have: %s)" name (String.concat ", " profile_names)

let find_program name =
  match List.assoc_opt name programs with
  | Some f -> f ()
  | None -> die_usage "unknown program %s (have: %s)" name (String.concat ", " (List.map fst programs))

let cmd_list () =
  print_endline "programs:";
  List.iter (fun (n, _) -> print_endline ("  " ^ n)) programs;
  print_endline "profiles:";
  List.iter (fun n -> print_endline ("  " ^ n)) profile_names;
  exit 0

let cmd_codes () =
  Printf.printf "%-7s %-6s %s\n" "code" "sev" "description";
  List.iter
    (fun (code, sev, descr) ->
      Printf.printf "%-7s %-6s %s\n" code (Verus.Vlint.severity_to_string sev) descr)
    Verus.Vlint.code_table;
  exit 0

(* Per-run solver budget overrides: a tighter (or looser) deadline /
   instantiation-round cap than the profile bakes in, expressed as a
   [Driver.Config] budget override (so the cache fingerprints see it). *)
let budget_override profile deadline max_rounds =
  match (deadline, max_rounds) with
  | None, None -> None
  | d, r ->
    let b = Verus.Profiles.budget profile in
    Some
      {
        b with
        Smt.Solver.deadline_s = Option.value ~default:b.Smt.Solver.deadline_s d;
        Smt.Solver.max_rounds = Option.value ~default:b.Smt.Solver.max_rounds r;
      }

(* --cache DIR wins; otherwise VERUS_CACHE; --no-cache beats both. *)
let resolve_cache_dir ~no_cache ~cache_dir =
  if no_cache then None
  else
    match cache_dir with
    | Some d -> Some d
    | None -> (
      match Sys.getenv_opt "VERUS_CACHE" with Some "" | None -> None | Some d -> Some d)

let cache_summary_line (r : Verus.Driver.program_result) =
  match r.Verus.Driver.pr_cache with
  | None -> ()
  | Some cs ->
    Printf.printf "cache: %d hit(s), %d miss(es), %d invalidation(s), %d store(s)%s\n"
      cs.Verus.Vcache.hits cs.Verus.Vcache.misses cs.Verus.Vcache.invalidations
      cs.Verus.Vcache.stores
      (if cs.Verus.Vcache.corrupt_load then " — store was corrupt at load, rebuilt" else "")

(* Restrict verification to one exec/proof function (debugging aid);
   spec functions stay, the others' axioms may be needed. *)
let apply_fn_filter prog = function
  | None -> prog
  | Some keep ->
    {
      prog with
      Verus.Vir.functions =
        List.filter
          (fun (fd : Verus.Vir.fndecl) ->
            fd.Verus.Vir.fmode = Verus.Vir.Spec || String.equal fd.Verus.Vir.fname keep)
          prog.Verus.Vir.functions;
    }

(* A run that failed *only* on Unknown answers (solver deadline /
   instantiation budget) is a budget exhaustion, not a refutation: exit
   3 so callers can distinguish "needs a bigger --deadline" from "has a
   counterexample". *)
let budget_only (r : Verus.Driver.program_result) =
  (not r.Verus.Driver.pr_ok)
  && r.Verus.Driver.pr_front_end_errors = []
  && r.Verus.Driver.pr_fns <> []
  && List.for_all
       (fun (fnr : Verus.Driver.fn_result) ->
         List.for_all
           (fun (vr : Verus.Driver.vc_result) ->
             match vr.Verus.Driver.vcr_answer with
             | Smt.Solver.Unsat | Smt.Solver.Unknown _ -> true
             | Smt.Solver.Sat -> false)
           fnr.Verus.Driver.fnr_vcs)
       r.Verus.Driver.pr_fns

(* Any obligation the certificate kernel disowned (rejected or missing
   certificate under --certify).  Checked before [budget_only]: such a
   run's answers are all Unsat, which would otherwise read as exit 3. *)
let cert_failed (r : Verus.Driver.program_result) =
  List.exists
    (fun (fnr : Verus.Driver.fn_result) ->
      List.exists
        (fun (vr : Verus.Driver.vc_result) ->
          match vr.Verus.Driver.vcr_cert with
          | Verus.Driver.Cert_rejected _ | Verus.Driver.Cert_unavailable _ -> true
          | _ -> false)
        fnr.Verus.Driver.fnr_vcs)
    r.Verus.Driver.pr_fns

let exit_cert_rejected = 5

let result_exit_code r =
  if r.Verus.Driver.pr_ok then 0
  else if cert_failed r then exit_cert_rejected
  else if budget_only r then 3
  else 1

(* --------------------------- verify ------------------------------- *)

let cmd_verify args =
  let prog_name = ref None in
  let profile_name = ref "Verus" in
  let fn_filter = ref None in
  let jobs = ref 1 in
  let lint = ref Verus.Driver.Lint_ignore in
  let deadline = ref None in
  let max_rounds = ref None in
  let cache_dir = ref None in
  let no_cache = ref false in
  let certify = ref false in
  let rec parse = function
    | [] -> ()
    | "--fn" :: v :: rest ->
      fn_filter := Some v;
      parse rest
    | "--cache" :: v :: rest ->
      cache_dir := Some v;
      parse rest
    | "--no-cache" :: rest ->
      no_cache := true;
      parse rest
    | "--certify" :: rest ->
      certify := true;
      parse rest
    | "--deadline" :: v :: rest ->
      (match float_of_string_opt v with
      | Some s when s > 0.0 -> deadline := Some s
      | _ -> die_usage "--deadline expects a positive number of seconds, got %s" v);
      parse rest
    | "--max-rounds" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> max_rounds := Some n
      | _ -> die_usage "--max-rounds expects a positive integer, got %s" v);
      parse rest
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> jobs := n
      | _ -> die_usage "--jobs expects a positive integer, got %s" v);
      parse rest
    | "--lint" :: v :: rest ->
      (match v with
      | "ignore" -> lint := Verus.Driver.Lint_ignore
      | "warn" -> lint := Verus.Driver.Lint_warn
      | "strict" -> lint := Verus.Driver.Lint_strict
      | _ -> die_usage "--lint expects ignore|warn|strict, got %s" v);
      parse rest
    | a :: _ when String.length a > 1 && a.[0] = '-' -> die_usage "unknown option %s" a
    | a :: rest ->
      (if !prog_name = None then prog_name := Some a else profile_name := a);
      parse rest
  in
  parse args;
  let prog_name = match !prog_name with Some p -> p | None -> "singly_linked" in
  let profile = find_profile !profile_name in
  let prog = apply_fn_filter (find_program prog_name) !fn_filter in
  let config =
    {
      Verus.Driver.Config.default with
      Verus.Driver.Config.jobs = !jobs;
      lint = !lint;
      certify = !certify;
      budget = budget_override profile !deadline !max_rounds;
      cache =
        Option.map
          (fun dir -> { Verus.Vcache.dir })
          (resolve_cache_dir ~no_cache:!no_cache ~cache_dir:!cache_dir);
    }
  in
  let r = Verus.Driver.verify_program ~config profile prog in
  List.iter
    (fun d -> Printf.printf "lint: %s\n" (Verus.Vlint.diag_to_string d))
    r.Verus.Driver.pr_lint;
  List.iter (fun e -> Printf.printf "front-end error: %s\n" e) r.Verus.Driver.pr_front_end_errors;
  List.iter
    (fun (fnr : Verus.Driver.fn_result) ->
      Printf.printf "%-24s %s  (%.3fs, %d bytes)\n" fnr.Verus.Driver.fnr_name
        (if fnr.Verus.Driver.fnr_ok then "OK" else "FAIL")
        fnr.Verus.Driver.fnr_time_s fnr.Verus.Driver.fnr_bytes;
      List.iter
        (fun (vr : Verus.Driver.vc_result) ->
          let status =
            match (vr.Verus.Driver.vcr_answer, vr.Verus.Driver.vcr_cert) with
            | Smt.Solver.Unsat, Verus.Driver.Cert_rejected (code, reason) ->
              Printf.sprintf "CERT REJECTED (%s: %s)" code reason
            | Smt.Solver.Unsat, Verus.Driver.Cert_unavailable why ->
              "CERT MISSING (" ^ why ^ ")"
            | Smt.Solver.Unsat, Verus.Driver.Cert_checked _ -> "proved+cert"
            | Smt.Solver.Unsat, Verus.Driver.Cert_cached _ -> "proved+cert(cached)"
            | Smt.Solver.Unsat, _ -> "proved"
            | Smt.Solver.Sat, _ -> "COUNTEREXAMPLE"
            | Smt.Solver.Unknown m, _ -> "UNKNOWN: " ^ m
          in
          Printf.printf "    %-60s %-10s %.3fs  [%s]\n" vr.Verus.Driver.vcr_name status
            vr.Verus.Driver.vcr_time_s vr.Verus.Driver.vcr_detail)
        fnr.Verus.Driver.fnr_vcs)
    r.Verus.Driver.pr_fns;
  (match Verus.Driver.first_failure r with
  | Some (where, what, code) when not r.Verus.Driver.pr_ok ->
    Printf.printf "first failure: [%s] %s: %s\n" code where what
  | _ -> ());
  cache_summary_line r;
  (* A run that failed *only* on Unknown answers (solver deadline /
     instantiation budget) is a budget exhaustion, not a refutation: exit
     3 so callers can distinguish "needs a bigger --deadline" from "has a
     counterexample". *)
  Printf.printf "== %s / %s: %s in %.3fs, %d query bytes\n" prog_name
    profile.Verus.Profiles.name
    (if r.Verus.Driver.pr_ok then if !certify then "VERIFIED (certified)" else "VERIFIED"
     else if cert_failed r then "CERTIFICATE REJECTED"
     else if budget_only r then "UNKNOWN (solver budget exhausted)"
     else "FAILED")
    r.Verus.Driver.pr_time_s r.Verus.Driver.pr_bytes;
  Smt.Solver.dump_debug ();
  exit (result_exit_code r)

(* --------------------------- profile ------------------------------ *)

let cmd_profile args =
  let prog_name = ref None in
  let profile_name = ref "Verus" in
  let fn_filter = ref None in
  let jobs = ref 1 in
  let json = ref false in
  let top = ref 10 in
  let liberal = ref false in
  let deadline = ref None in
  let max_rounds = ref None in
  let cache_dir = ref None in
  let no_cache = ref false in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--liberal" :: rest ->
      liberal := true;
      parse rest
    | "--cache" :: v :: rest ->
      cache_dir := Some v;
      parse rest
    | "--no-cache" :: rest ->
      no_cache := true;
      parse rest
    | "--top" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> top := n
      | _ -> die_usage "--top expects a positive integer, got %s" v);
      parse rest
    | "--fn" :: v :: rest ->
      fn_filter := Some v;
      parse rest
    | "--deadline" :: v :: rest ->
      (match float_of_string_opt v with
      | Some s when s > 0.0 -> deadline := Some s
      | _ -> die_usage "--deadline expects a positive number of seconds, got %s" v);
      parse rest
    | "--max-rounds" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> max_rounds := Some n
      | _ -> die_usage "--max-rounds expects a positive integer, got %s" v);
      parse rest
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> jobs := n
      | _ -> die_usage "--jobs expects a positive integer, got %s" v);
      parse rest
    | a :: _ when String.length a > 1 && a.[0] = '-' -> die_usage "unknown option %s" a
    | a :: rest ->
      (if !prog_name = None then prog_name := Some a else profile_name := a);
      parse rest
  in
  parse args;
  let prog_name = match !prog_name with Some p -> p | None -> "singly_linked" in
  let profile = find_profile !profile_name in
  let profile = if !liberal then Verus.Profiles.liberal profile else profile in
  let prog = apply_fn_filter (find_program prog_name) !fn_filter in
  (* Lint in warn mode so the VL010 cross-check has findings to compare
     the measured hot-spots against; warn never aborts the run. *)
  let config =
    {
      Verus.Driver.Config.jobs = !jobs;
      lint = Verus.Driver.Lint_warn;
      profile = true;
      certify = false;
      budget = budget_override profile !deadline !max_rounds;
      cache =
        Option.map
          (fun dir -> { Verus.Vcache.dir })
          (resolve_cache_dir ~no_cache:!no_cache ~cache_dir:!cache_dir);
    }
  in
  let r = Verus.Driver.verify_program ~config profile prog in
  if !json then
    print_endline (Vbase.Json.to_string ~indent:true (Verus.Profile_report.to_json ~prog_name r))
  else begin
    List.iter
      (fun e -> Printf.printf "front-end error: %s\n" e)
      r.Verus.Driver.pr_front_end_errors;
    print_string (Verus.Profile_report.render_text ~top:!top ~prog_name r)
  end;
  exit (result_exit_code r)

(* ---------------------------- lint -------------------------------- *)

let cmd_lint args =
  let prog_names = ref [] in
  let profile_name = ref "Verus" in
  let strict = ref false in
  let liberal = ref false in
  let rec parse = function
    | [] -> ()
    | "--all" :: rest ->
      prog_names := List.map fst programs;
      parse rest
    | "--strict" :: rest ->
      strict := true;
      parse rest
    | "--liberal" :: rest ->
      liberal := true;
      parse rest
    | a :: _ when String.length a > 1 && a.[0] = '-' -> die_usage "unknown option %s" a
    | a :: rest ->
      (if List.mem_assoc a programs then prog_names := !prog_names @ [ a ]
       else profile_name := a);
      parse rest
  in
  parse args;
  let prog_names = if !prog_names = [] then List.map fst programs else !prog_names in
  let profile = find_profile !profile_name in
  let profile = if !liberal then Verus.Profiles.liberal profile else profile in
  let n_err = ref 0 and n_warn = ref 0 and n_info = ref 0 in
  List.iter
    (fun name ->
      let prog = find_program name in
      let ds = Verus.Vlint.lint profile prog in
      Printf.printf "%-16s %s: %d finding(s)\n" name profile.Verus.Profiles.name
        (List.length ds);
      List.iter
        (fun (d : Verus.Vlint.diag) ->
          (match d.Verus.Vlint.severity with
          | Verus.Vlint.Error -> incr n_err
          | Verus.Vlint.Warn -> incr n_warn
          | Verus.Vlint.Info -> incr n_info);
          print_endline ("  " ^ Verus.Vlint.diag_to_string d))
        ds)
    prog_names;
  Printf.printf "== lint: %d error(s), %d warning(s), %d info\n" !n_err !n_warn !n_info;
  let failing = !n_err > 0 || (!strict && !n_warn > 0) in
  exit (if failing then 1 else 0)

(* ---------------------------- cache ------------------------------- *)

(* Exit 4 ("cache I/O problem") is deliberately distinct from both 0 and
   1: a corrupt or undeletable store is an environment problem, not a
   verification verdict, and scripts must not mistake one for the other. *)
let exit_cache_io = 4

let cmd_cache args =
  let action, dir_arg =
    match args with
    | [ a ] when a = "stats" || a = "clear" -> (a, None)
    | [ a; d ] when a = "stats" || a = "clear" -> (a, Some d)
    | a :: _ when a <> "stats" && a <> "clear" ->
      die_usage "cache expects stats or clear, got %s" a
    | _ -> die_usage "usage: verus_cli cache stats|clear [DIR]"
  in
  let dir =
    match resolve_cache_dir ~no_cache:false ~cache_dir:dir_arg with
    | Some d -> d
    | None -> die_usage "cache %s needs a directory (argument or VERUS_CACHE)" action
  in
  match action with
  | "clear" -> (
    match Verus.Vcache.clear ~dir with
    | Ok () ->
      Printf.printf "cache cleared: %s\n" (Filename.concat dir Verus.Vcache.file_name);
      exit 0
    | Error e ->
      Printf.eprintf "cache clear failed: %s\n" e;
      exit exit_cache_io)
  | _ ->
    let ds = Verus.Vcache.disk_stats ~dir in
    Printf.printf "cache %s (schema %s)\n"
      (Filename.concat dir Verus.Vcache.file_name)
      Verus.Vcache.schema_version;
    if not ds.Verus.Vcache.ds_exists then begin
      Printf.printf "  no store present (a cached verify run will create it)\n";
      exit 0
    end
    else begin
      Printf.printf "  entries: %d (%d bytes on disk)\n" ds.Verus.Vcache.ds_entries
        ds.Verus.Vcache.ds_bytes;
      List.iter
        (fun (kind, n) -> Printf.printf "    %-8s %d\n" kind n)
        ds.Verus.Vcache.ds_answers;
      if ds.Verus.Vcache.ds_dropped > 0 then
        Printf.printf "  malformed entries: %d (dropped at load)\n" ds.Verus.Vcache.ds_dropped;
      if ds.Verus.Vcache.ds_corrupt then
        Printf.printf "  store is CORRUPT (verify runs degrade to cold and rebuild it)\n";
      if ds.Verus.Vcache.ds_corrupt || ds.Verus.Vcache.ds_dropped > 0 then exit exit_cache_io
      else exit 0
    end

(* ----------------------------- main ------------------------------- *)

let () =
  let argv = Array.to_list Sys.argv in
  match argv with
  | _ :: "verify" :: rest -> cmd_verify rest
  | _ :: "profile" :: rest -> cmd_profile rest
  | _ :: "lint" :: rest -> cmd_lint rest
  | _ :: "cache" :: rest -> cmd_cache rest
  | _ :: ("list" | "--list") :: _ -> cmd_list ()
  | _ :: "codes" :: _ -> cmd_codes ()
  | _ :: ("help" | "--help" | "-h") :: _ | [ _ ] ->
    usage stdout;
    exit 0
  | _ :: cmd :: _ -> die_usage "unknown command %s" cmd
  | [] -> exit 2
