(* Command-line driver: verify the bundled benchmark programs under a
   chosen framework profile and print per-VC results. *)

let programs =
  [
    ("singly_linked", fun () -> Verus.Bench_programs.singly_linked);
    ("doubly_linked", fun () -> Verus.Bench_programs.doubly_linked);
    ("mem4", fun () -> Verus.Bench_programs.memory_reasoning 4);
    ("mem8", fun () -> Verus.Bench_programs.memory_reasoning 8);
    ("dlock", fun () -> Verus.Bench_programs.dlock_default);
    ("break_pop", fun () -> Verus.Bench_programs.break_pop);
    ("break_index", fun () -> Verus.Bench_programs.break_index);
  ]

let () =
  let prog_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "singly_linked" in
  let profile_name = if Array.length Sys.argv > 2 then Sys.argv.(2) else "Verus" in
  let profile =
    (* Case-insensitive, and "fstar"/"lowstar" for the awkward "F*/Low*". *)
    let norm s = String.lowercase_ascii s in
    let matches (p : Verus.Profiles.t) =
      String.equal (norm p.Verus.Profiles.name) (norm profile_name)
      || (String.equal p.Verus.Profiles.name "F*/Low*"
         && List.mem (norm profile_name) [ "fstar"; "f*"; "lowstar"; "low*" ])
    in
    match List.find_opt matches Verus.Profiles.all with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown profile %s (have: %s)\n" profile_name
        (String.concat ", "
           (List.map (fun (p : Verus.Profiles.t) -> p.Verus.Profiles.name) Verus.Profiles.all));
      exit 2
  in
  let prog =
    match List.assoc_opt prog_name programs with
    | Some f -> f ()
    | None ->
      Printf.eprintf "unknown program %s (have: %s)\n" prog_name
        (String.concat ", " (List.map fst programs));
      exit 2
  in
  let prog =
    match Array.length Sys.argv > 3 with
    | true ->
      (* Restrict verification to one function (debugging aid). *)
      let keep = Sys.argv.(3) in
      {
        prog with
        Verus.Vir.functions =
          List.filter
            (fun (fd : Verus.Vir.fndecl) ->
              fd.Verus.Vir.fmode = Verus.Vir.Spec || String.equal fd.Verus.Vir.fname keep)
            prog.Verus.Vir.functions;
      }
    | false -> prog
  in
  let r = Verus.Driver.verify_program profile prog in
  List.iter (fun e -> Printf.printf "front-end error: %s\n" e) r.Verus.Driver.pr_front_end_errors;
  List.iter
    (fun (fnr : Verus.Driver.fn_result) ->
      Printf.printf "%-24s %s  (%.3fs, %d bytes)\n" fnr.Verus.Driver.fnr_name
        (if fnr.Verus.Driver.fnr_ok then "OK" else "FAIL")
        fnr.Verus.Driver.fnr_time_s fnr.Verus.Driver.fnr_bytes;
      List.iter
        (fun (vr : Verus.Driver.vc_result) ->
          let status =
            match vr.Verus.Driver.vcr_answer with
            | Smt.Solver.Unsat -> "proved"
            | Smt.Solver.Sat -> "COUNTEREXAMPLE"
            | Smt.Solver.Unknown m -> "UNKNOWN: " ^ m
          in
          Printf.printf "    %-60s %-10s %.3fs  [%s]\n" vr.Verus.Driver.vcr_name status
            vr.Verus.Driver.vcr_time_s vr.Verus.Driver.vcr_detail)
        fnr.Verus.Driver.fnr_vcs)
    r.Verus.Driver.pr_fns;
  Printf.printf "== %s / %s: %s in %.3fs, %d query bytes\n" prog_name profile_name
    (if r.Verus.Driver.pr_ok then "VERIFIED" else "FAILED")
    r.Verus.Driver.pr_time_s r.Verus.Driver.pr_bytes;
  Smt.Solver.dump_debug ();
  exit (if r.Verus.Driver.pr_ok then 0 else 1)
