(* Command-line driver with a small subcommand interface:

     verus_cli verify  <program> [<profile>] [--fn NAME] [--jobs N] [--lint MODE]
                       [--ladder NAME] [--rung N] [--cache DIR] [--no-cache]
                       [--certify] [--prescreen]
     verus_cli analyze <program> [<profile>] [--fn NAME]
     verus_cli profile <program> [<profile>] [--json] [--top K] [--liberal]
                       [--fn NAME] [--jobs N] [--ladder NAME] [--rung N]
                       [--cache DIR] [--no-cache]
     verus_cli lint    [<program>|--all] [<profile>] [--strict] [--json]
     verus_cli cache   stats|clear [DIR]
     verus_cli daemon  [--socket PATH] [--domains N] [--cache DIR]
     verus_cli client  ping|status|shutdown|verify|lint|profile [<program> [<profile>]]
                       [--socket PATH] [--lint MODE] [--certify] [--prescreen] [--no-cache]
                       [--ladder NAME] [--rung N] [--no-stream]
     verus_cli list            (also available as --list)
     verus_cli codes           (the VL0xx diagnostic table)
     verus_cli ladders         (the built-in escalation ladders, rung by rung)
     verus_cli help

   --deadline SECS / --max-rounds N remain accepted on verify / profile /
   client as deprecated sugar: they resolve to a single-rung ladder
   carrying the overridden absolute budget (Vladder.Ladder.of_budget),
   and cannot be combined with --ladder / --rung.

   The verification cache directory comes from --cache DIR or, when the
   flag is absent, the VERUS_CACHE environment variable; --no-cache turns
   caching off regardless.

   Exit codes: 0 ok, 1 findings / verification failure (a refutation, a
   front-end error, or a strict-mode lint), 2 usage error, 3 budget
   exhausted — every failed obligation is Unknown (solver deadline /
   round budget), none refuted.  Distinguishing 3 from 1 lets CI retry
   with a bigger --deadline instead of reporting a counterexample.  The
   cache subcommands use 4 for I/O problems (unreadable/corrupt store,
   failed delete) — distinct from 0 so scripts notice, distinct from 1
   so it is never mistaken for a verification failure.  Under --certify,
   5 means a certificate rejection (VC003): the solver said Unsat but
   the independent Vcheck kernel would not replay its proof — a solver
   bug or a damaged certificate, categorically different from both a
   counterexample (1) and a timeout (3).  The daemon/client pair uses 6
   for connection or protocol failures (no daemon at the socket, framing
   errors, RPC-level rejections): an environment problem, never a
   verdict — a client run that reaches a verdict mirrors the daemon's
   exit_code field, so 0/1/3/5 mean the same thing in both modes.

   The bundled program and profile tables, and the verdict-to-exit-code
   mapping, live in Verus.Vservice — one table for the CLI and the
   daemon, so both resolve the same names to the same computations. *)

let programs = Verus.Vservice.programs
let profile_names = Verus.Vservice.profile_names

let usage oc =
  Printf.fprintf oc
    "usage: verus_cli <command> [args]\n\n\
     commands:\n\
    \  verify <program> [<profile>] [--fn NAME] [--jobs N] [--lint ignore|warn|strict]\n\
    \         [--ladder NAME] [--rung N] [--cache DIR] [--no-cache] [--certify]\n\
    \         [--prescreen]\n\
    \      verify one bundled program under a profile (default: Verus);\n\
    \      --ladder runs each obligation up a named escalation ladder\n\
    \      (see `verus_cli ladders`): cheap rungs first, escalating on\n\
    \      non-Unsat; --rung N pins every obligation to one rung instead;\n\
    \      --deadline SECS / --max-rounds N are deprecated sugar for a\n\
    \      single-rung ladder with an overridden budget (cannot be\n\
    \      combined with --ladder / --rung);\n\
    \      --cache DIR (or VERUS_CACHE) reuses cached VC results across runs\n\
    \      (with a ladder, the cache also remembers each obligation's\n\
    \      winning rung, so warm runs skip straight to it);\n\
    \      --certify replays every Unsat's proof certificate through the\n\
    \      independent Vcheck kernel and fails (exit 5, VC003) on rejection;\n\
    \      --prescreen runs the Vflow abstract-interpretation prescreen first\n\
    \      (rung 0): obligations it proves skip the solver entirely\n\
    \  analyze <program> [<profile>] [--fn NAME]\n\
    \      run only the Vflow prescreen: per-obligation verdicts (proved /\n\
    \      refuted-hypothetical / unknown), derived facts shipped to SMT on\n\
    \      fall-through, and the VL04x flow findings — no solver runs\n\
    \  profile <program> [<profile>] [--json] [--top K] [--liberal] [--fn NAME]\n\
    \          [--jobs N] [--ladder NAME] [--rung N] [--cache DIR] [--no-cache]\n\
    \      verify with the solver profiler on and print instantiation /\n\
    \      phase-time hot-spot tables (--json: versioned machine-readable\n\
    \      document; --liberal: degrade the profile to Dafny-style broad\n\
    \      trigger selection first, the configuration behind the VL010\n\
    \      cross-check)\n\
    \  lint [<program>|--all] [<profile>] [--strict] [--liberal] [--json]\n\
    \      run the Vlint static analyses; exit 1 on Error findings\n\
    \      (--strict: also fail on Warn findings; --liberal: lint the\n\
    \      broad-trigger degradation of the profile; --json: one program\n\
    \      only, emit the versioned verus-lint/1 report)\n\
    \  cache stats|clear [DIR]\n\
    \      inspect or delete the verification cache in DIR (or VERUS_CACHE);\n\
    \      exit 4 on I/O problems (unreadable or corrupt store, failed delete)\n\
    \  daemon [--socket PATH] [--domains N] [--cache DIR]\n\
    \      run the persistent verification daemon in the foreground: binds a\n\
    \      Unix-domain socket speaking verus-rpc/1 (docs/PROTOCOL.md), keeps a\n\
    \      warm work-stealing pool and a shared verification cache across\n\
    \      requests, serves until a client sends shutdown\n\
    \  client ping|status|shutdown|verify|lint|profile [<program> [<profile>]]\n\
    \         [--socket PATH] [--lint ignore|warn|strict] [--certify] [--prescreen]\n\
    \         [--no-cache] [--ladder NAME] [--rung N] [--no-stream]\n\
    \      send one request to a running daemon; job verdicts stream as they\n\
    \      land and the process exits with the daemon's exit_code (the same\n\
    \      0/1/3/5 as local verify), or 6 on connection/protocol failure;\n\
    \      --ladder / --rung and the deprecated --deadline / --max-rounds\n\
    \      sugar behave exactly as in local verify\n\
    \  list\n\
    \      list bundled programs and profiles\n\
    \  codes\n\
    \      print the VL0xx diagnostic-code table\n\
    \  ladders\n\
    \      print the built-in escalation ladders, rung by rung, with each\n\
    \      rung's semantic fingerprint\n\
    \  help\n\
    \      this message\n\n\
     programs: %s\n\
     profiles: %s (case-insensitive; 'fstar' and 'lowstar' also accepted)\n\
     exit codes: 0 ok / 1 findings or failure / 2 usage / 3 solver budget exhausted\n\
    \            (3 = every failed obligation is Unknown: a timeout is not a refutation)\n\
    \            / 4 cache I/O problem (cache subcommands only)\n\
    \            / 5 certificate rejected under --certify (VC003: the kernel\n\
    \            would not replay an Unsat's proof — not a counterexample)\n\
    \            / 6 daemon connection or protocol failure (client/daemon only)\n"
    (String.concat ", " (List.map fst programs))
    (String.concat ", " profile_names)

let die_usage fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline m;
      usage stderr;
      exit 2)
    fmt

let find_profile name =
  match Verus.Vservice.find_profile name with
  | Ok p -> p
  | Error msg -> die_usage "%s" msg

let find_program name =
  match Verus.Vservice.find_program name with
  | Ok p -> p
  | Error msg -> die_usage "%s" msg

let cmd_list () =
  print_endline "programs:";
  List.iter (fun (n, _) -> print_endline ("  " ^ n)) programs;
  print_endline "profiles:";
  List.iter (fun n -> print_endline ("  " ^ n)) profile_names;
  exit 0

let cmd_codes () =
  Printf.printf "%-7s %-6s %s\n" "code" "sev" "description";
  List.iter
    (fun (code, sev, descr) ->
      Printf.printf "%-7s %-6s %s\n" code (Verus.Vlint.severity_to_string sev) descr)
    Verus.Vlint.code_table;
  exit 0

let cmd_ladders () =
  List.iter
    (fun (name, l) ->
      Printf.printf "%s (%d rung%s)\n" name
        (Verus.Driver.Ladder.length l)
        (if Verus.Driver.Ladder.length l = 1 then "" else "s");
      Array.iteri
        (fun i (r : Verus.Driver.Rung.t) ->
          Printf.printf "  %d  %-8s %s\n" i r.Verus.Driver.Rung.r_name
            (Verus.Driver.Rung.fingerprint r))
        (Verus.Driver.Ladder.rungs l))
    Verus.Driver.Ladder.builtins;
  print_endline
    "(--rung N pins every obligation to rung N; --deadline/--max-rounds build a\n\
    \ deprecated single-rung ladder named budget-override)";
  exit 0

(* One resolver for automation strength, shared with the daemon's request
   handler (Vservice.resolve_ladder): --ladder names a built-in, --rung
   pins one rung of it, and the deprecated --deadline / --max-rounds
   sugar becomes a single-rung ladder over the profile's budget. *)
let ladder_override profile ~ladder ~rung ~deadline ~max_rounds =
  match
    Verus.Vservice.resolve_ladder profile ~ladder ~rung ~deadline_s:deadline
      ~max_rounds
  with
  | Ok l -> l
  | Error msg -> die_usage "%s" msg

(* --cache DIR wins; otherwise VERUS_CACHE; --no-cache beats both. *)
let resolve_cache_dir ~no_cache ~cache_dir =
  if no_cache then None
  else
    match cache_dir with
    | Some d -> Some d
    | None -> (
      match Sys.getenv_opt "VERUS_CACHE" with Some "" | None -> None | Some d -> Some d)

let cache_summary_line (r : Verus.Driver.program_result) =
  match r.Verus.Driver.pr_cache with
  | None -> ()
  | Some cs ->
    Printf.printf "cache: %d hit(s), %d miss(es), %d invalidation(s), %d store(s)%s\n"
      cs.Verus.Vcache.hits cs.Verus.Vcache.misses cs.Verus.Vcache.invalidations
      cs.Verus.Vcache.stores
      (if cs.Verus.Vcache.corrupt_load then " — store was corrupt at load, rebuilt" else "")

let ladder_summary_line (r : Verus.Driver.program_result) =
  match r.Verus.Driver.pr_ladder with
  | None -> ()
  | Some ls ->
    let per_rung a =
      String.concat "/" (List.map string_of_int (Array.to_list a))
    in
    Printf.printf
      "ladder: %s (%d rungs): attempts %s, wins %s, %d escalation(s), %d steered, %d \
       cache hit(s), %d warm rung jump(s)\n"
      ls.Verus.Driver.ls_ladder ls.Verus.Driver.ls_rungs
      (per_rung ls.Verus.Driver.ls_attempts)
      (per_rung ls.Verus.Driver.ls_wins)
      ls.Verus.Driver.ls_escalations ls.Verus.Driver.ls_steered
      ls.Verus.Driver.ls_cache_hits ls.Verus.Driver.ls_hint_starts

(* Restrict verification to one exec/proof function (debugging aid);
   spec functions stay, the others' axioms may be needed. *)
let apply_fn_filter prog = function
  | None -> prog
  | Some keep ->
    {
      prog with
      Verus.Vir.functions =
        List.filter
          (fun (fd : Verus.Vir.fndecl) ->
            fd.Verus.Vir.fmode = Verus.Vir.Spec || String.equal fd.Verus.Vir.fname keep)
          prog.Verus.Vir.functions;
    }

(* The verdict-to-exit-code policy (0/1/3/5) is shared with the daemon:
   Vservice computes a job's exit_code once, and both this process and a
   `verus_cli client` run report the same number for the same result. *)
let budget_only = Verus.Vservice.budget_only
let cert_failed = Verus.Vservice.cert_failed
let result_exit_code = Verus.Vservice.result_exit_code

(* --------------------------- verify ------------------------------- *)

let cmd_verify args =
  let prog_name = ref None in
  let profile_name = ref "Verus" in
  let fn_filter = ref None in
  let jobs = ref 1 in
  let lint = ref Verus.Driver.Lint_ignore in
  let deadline = ref None in
  let max_rounds = ref None in
  let ladder_name = ref None in
  let rung = ref None in
  let cache_dir = ref None in
  let no_cache = ref false in
  let certify = ref false in
  let prescreen = ref false in
  let rec parse = function
    | [] -> ()
    | "--fn" :: v :: rest ->
      fn_filter := Some v;
      parse rest
    | "--ladder" :: v :: rest ->
      ladder_name := Some v;
      parse rest
    | "--rung" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 0 -> rung := Some n
      | _ -> die_usage "--rung expects a non-negative integer, got %s" v);
      parse rest
    | "--cache" :: v :: rest ->
      cache_dir := Some v;
      parse rest
    | "--no-cache" :: rest ->
      no_cache := true;
      parse rest
    | "--certify" :: rest ->
      certify := true;
      parse rest
    | "--prescreen" :: rest ->
      prescreen := true;
      parse rest
    | "--deadline" :: v :: rest ->
      (match float_of_string_opt v with
      | Some s when s > 0.0 -> deadline := Some s
      | _ -> die_usage "--deadline expects a positive number of seconds, got %s" v);
      parse rest
    | "--max-rounds" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> max_rounds := Some n
      | _ -> die_usage "--max-rounds expects a positive integer, got %s" v);
      parse rest
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> jobs := n
      | _ -> die_usage "--jobs expects a positive integer, got %s" v);
      parse rest
    | "--lint" :: v :: rest ->
      (match v with
      | "ignore" -> lint := Verus.Driver.Lint_ignore
      | "warn" -> lint := Verus.Driver.Lint_warn
      | "strict" -> lint := Verus.Driver.Lint_strict
      | _ -> die_usage "--lint expects ignore|warn|strict, got %s" v);
      parse rest
    | a :: _ when String.length a > 1 && a.[0] = '-' -> die_usage "unknown option %s" a
    | a :: rest ->
      (if !prog_name = None then prog_name := Some a else profile_name := a);
      parse rest
  in
  parse args;
  let prog_name = match !prog_name with Some p -> p | None -> "singly_linked" in
  let profile = find_profile !profile_name in
  let prog = apply_fn_filter (find_program prog_name) !fn_filter in
  let config =
    {
      Verus.Driver.Config.default with
      Verus.Driver.Config.jobs = !jobs;
      lint = !lint;
      certify = !certify;
      analyze = !prescreen;
      ladder =
        ladder_override profile ~ladder:!ladder_name ~rung:!rung ~deadline:!deadline
          ~max_rounds:!max_rounds;
      cache =
        Option.map
          (fun dir -> { Verus.Vcache.dir })
          (resolve_cache_dir ~no_cache:!no_cache ~cache_dir:!cache_dir);
    }
  in
  let r = Verus.Driver.verify_program ~config profile prog in
  List.iter
    (fun d -> Printf.printf "lint: %s\n" (Verus.Vlint.diag_to_string d))
    r.Verus.Driver.pr_lint;
  List.iter (fun e -> Printf.printf "front-end error: %s\n" e) r.Verus.Driver.pr_front_end_errors;
  List.iter
    (fun (fnr : Verus.Driver.fn_result) ->
      Printf.printf "%-24s %s  (%.3fs, %d bytes)\n" fnr.Verus.Driver.fnr_name
        (if fnr.Verus.Driver.fnr_ok then "OK" else "FAIL")
        fnr.Verus.Driver.fnr_time_s fnr.Verus.Driver.fnr_bytes;
      List.iter
        (fun (vr : Verus.Driver.vc_result) ->
          let status =
            match (vr.Verus.Driver.vcr_answer, vr.Verus.Driver.vcr_cert) with
            | Smt.Solver.Unsat, Verus.Driver.Cert_rejected (code, reason) ->
              Printf.sprintf "CERT REJECTED (%s: %s)" code reason
            | Smt.Solver.Unsat, Verus.Driver.Cert_unavailable why ->
              "CERT MISSING (" ^ why ^ ")"
            | Smt.Solver.Unsat, Verus.Driver.Cert_checked _ -> "proved+cert"
            | Smt.Solver.Unsat, Verus.Driver.Cert_cached _ -> "proved+cert(cached)"
            | Smt.Solver.Unsat, _
              when vr.Verus.Driver.vcr_source = Verus.Driver.Src_prescreen ->
              "proved(prescreen)"
            | Smt.Solver.Unsat, _ -> "proved"
            | Smt.Solver.Sat, _ -> "COUNTEREXAMPLE"
            | Smt.Solver.Unknown m, _ -> "UNKNOWN: " ^ m
          in
          Printf.printf "    %-60s %-10s %.3fs  [%s]\n" vr.Verus.Driver.vcr_name status
            vr.Verus.Driver.vcr_time_s vr.Verus.Driver.vcr_detail)
        fnr.Verus.Driver.fnr_vcs)
    r.Verus.Driver.pr_fns;
  (match Verus.Driver.first_failure r with
  | Some (where, what, code) when not r.Verus.Driver.pr_ok ->
    Printf.printf "first failure: [%s] %s: %s\n" code where what
  | _ -> ());
  cache_summary_line r;
  ladder_summary_line r;
  (if !prescreen then
     let total =
       List.fold_left
         (fun acc (fnr : Verus.Driver.fn_result) ->
           acc + List.length fnr.Verus.Driver.fnr_vcs)
         0 r.Verus.Driver.pr_fns
     in
     Printf.printf "prescreen: discharged %d of %d obligation(s) without SMT\n"
       (Verus.Driver.prescreen_discharged r)
       total);
  (* A run that failed *only* on Unknown answers (solver deadline /
     instantiation budget) is a budget exhaustion, not a refutation: exit
     3 so callers can distinguish "needs a bigger --deadline" from "has a
     counterexample". *)
  Printf.printf "== %s / %s: %s in %.3fs, %d query bytes\n" prog_name
    profile.Verus.Profiles.name
    (if r.Verus.Driver.pr_ok then if !certify then "VERIFIED (certified)" else "VERIFIED"
     else if cert_failed r then "CERTIFICATE REJECTED"
     else if budget_only r then "UNKNOWN (solver budget exhausted)"
     else "FAILED")
    r.Verus.Driver.pr_time_s r.Verus.Driver.pr_bytes;
  Smt.Solver.dump_debug ();
  exit (result_exit_code r)

(* --------------------------- analyze ------------------------------ *)

(* The prescreen alone, made visible: per-obligation rung-0 verdicts with
   the facts that would ship to SMT on fall-through, then the VL04x flow
   findings.  No solver runs; informational, always exit 0 (use
   `verify --prescreen` for a verdict). *)
let cmd_analyze args =
  let prog_name = ref None in
  let profile_name = ref "Verus" in
  let fn_filter = ref None in
  let rec parse = function
    | [] -> ()
    | "--fn" :: v :: rest ->
      fn_filter := Some v;
      parse rest
    | a :: _ when String.length a > 1 && a.[0] = '-' -> die_usage "unknown option %s" a
    | a :: rest ->
      (if !prog_name = None then prog_name := Some a else profile_name := a);
      parse rest
  in
  parse args;
  let prog_name = match !prog_name with Some p -> p | None -> "singly_linked" in
  let profile = find_profile !profile_name in
  let prog = apply_fn_filter (find_program prog_name) !fn_filter in
  let targets =
    List.filter
      (fun (fd : Verus.Vir.fndecl) ->
        fd.Verus.Vir.fmode <> Verus.Vir.Spec && fd.Verus.Vir.body <> None)
      prog.Verus.Vir.functions
  in
  let total = ref 0 and proved = ref 0 in
  Printf.printf "== analyze: %s / %s (Vflow %s) ==\n" prog_name profile.Verus.Profiles.name
    Vflow.version;
  List.iter
    (fun (fd : Verus.Vir.fndecl) ->
      let vcs = Verus.Encode.encode_function profile prog fd in
      Printf.printf "%s: %d obligation(s)\n" fd.Verus.Vir.fname (List.length vcs);
      List.iter
        (fun (vc : Verus.Encode.vc) ->
          incr total;
          let context = Verus.Driver.context_for profile prog vc in
          let r =
            Vflow.Prescreen.check ~hyps:(context @ vc.Verus.Encode.vc_hyps)
              ~goal:vc.Verus.Encode.vc_goal ()
          in
          let verdict = r.Vflow.Prescreen.verdict in
          if verdict = Vflow.Prescreen.Proved then incr proved;
          Printf.printf "    %-60s %-8s%s\n" vc.Verus.Encode.vc_name
            (Vflow.Prescreen.verdict_string verdict)
            (if r.Vflow.Prescreen.vacuous then "  (hypotheses contradictory)"
             else if verdict = Vflow.Prescreen.Proved then
               Printf.sprintf "  (%d passes)" r.Vflow.Prescreen.passes
             else
               Printf.sprintf "  (%d fact(s), %d droppable hyp(s))"
                 (List.length r.Vflow.Prescreen.facts)
                 (List.length r.Vflow.Prescreen.drop));
          List.iter
            (fun f -> Printf.printf "        fact: %s\n" (Smt.Term.to_string f))
            r.Vflow.Prescreen.facts)
        vcs)
    targets;
  let findings = Vflow.Absint.analyze_program prog in
  if findings <> [] then begin
    print_endline "flow findings:";
    List.iter
      (fun (f : Vflow.Absint.finding) ->
        Printf.printf "  %s [%s] %s\n" f.Vflow.Absint.f_code f.Vflow.Absint.f_fn
          f.Vflow.Absint.f_msg)
      findings
  end;
  Printf.printf "== prescreen would discharge %d of %d obligation(s) without SMT\n" !proved
    !total;
  exit 0

(* --------------------------- profile ------------------------------ *)

let cmd_profile args =
  let prog_name = ref None in
  let profile_name = ref "Verus" in
  let fn_filter = ref None in
  let jobs = ref 1 in
  let json = ref false in
  let top = ref 10 in
  let liberal = ref false in
  let deadline = ref None in
  let max_rounds = ref None in
  let ladder_name = ref None in
  let rung = ref None in
  let cache_dir = ref None in
  let no_cache = ref false in
  let rec parse = function
    | [] -> ()
    | "--ladder" :: v :: rest ->
      ladder_name := Some v;
      parse rest
    | "--rung" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 0 -> rung := Some n
      | _ -> die_usage "--rung expects a non-negative integer, got %s" v);
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--liberal" :: rest ->
      liberal := true;
      parse rest
    | "--cache" :: v :: rest ->
      cache_dir := Some v;
      parse rest
    | "--no-cache" :: rest ->
      no_cache := true;
      parse rest
    | "--top" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> top := n
      | _ -> die_usage "--top expects a positive integer, got %s" v);
      parse rest
    | "--fn" :: v :: rest ->
      fn_filter := Some v;
      parse rest
    | "--deadline" :: v :: rest ->
      (match float_of_string_opt v with
      | Some s when s > 0.0 -> deadline := Some s
      | _ -> die_usage "--deadline expects a positive number of seconds, got %s" v);
      parse rest
    | "--max-rounds" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> max_rounds := Some n
      | _ -> die_usage "--max-rounds expects a positive integer, got %s" v);
      parse rest
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> jobs := n
      | _ -> die_usage "--jobs expects a positive integer, got %s" v);
      parse rest
    | a :: _ when String.length a > 1 && a.[0] = '-' -> die_usage "unknown option %s" a
    | a :: rest ->
      (if !prog_name = None then prog_name := Some a else profile_name := a);
      parse rest
  in
  parse args;
  let prog_name = match !prog_name with Some p -> p | None -> "singly_linked" in
  let profile = find_profile !profile_name in
  let profile = if !liberal then Verus.Profiles.liberal profile else profile in
  let prog = apply_fn_filter (find_program prog_name) !fn_filter in
  (* Lint in warn mode so the VL010 cross-check has findings to compare
     the measured hot-spots against; warn never aborts the run. *)
  let config =
    {
      Verus.Driver.Config.jobs = !jobs;
      lint = Verus.Driver.Lint_warn;
      profile = true;
      certify = false;
      analyze = false;
      ladder =
        ladder_override profile ~ladder:!ladder_name ~rung:!rung ~deadline:!deadline
          ~max_rounds:!max_rounds;
      cache =
        Option.map
          (fun dir -> { Verus.Vcache.dir })
          (resolve_cache_dir ~no_cache:!no_cache ~cache_dir:!cache_dir);
      sched = None;
    }
  in
  let r = Verus.Driver.verify_program ~config profile prog in
  if !json then
    print_endline (Vbase.Json.to_string ~indent:true (Verus.Profile_report.to_json ~prog_name r))
  else begin
    List.iter
      (fun e -> Printf.printf "front-end error: %s\n" e)
      r.Verus.Driver.pr_front_end_errors;
    print_string (Verus.Profile_report.render_text ~top:!top ~prog_name r);
    cache_summary_line r;
    ladder_summary_line r
  end;
  exit (result_exit_code r)

(* ---------------------------- lint -------------------------------- *)

let cmd_lint args =
  let prog_names = ref [] in
  let profile_name = ref "Verus" in
  let strict = ref false in
  let liberal = ref false in
  let json = ref false in
  let rec parse = function
    | [] -> ()
    | "--all" :: rest ->
      prog_names := List.map fst programs;
      parse rest
    | "--strict" :: rest ->
      strict := true;
      parse rest
    | "--liberal" :: rest ->
      liberal := true;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | a :: _ when String.length a > 1 && a.[0] = '-' -> die_usage "unknown option %s" a
    | a :: rest ->
      (if List.mem_assoc a programs then prog_names := !prog_names @ [ a ]
       else profile_name := a);
      parse rest
  in
  parse args;
  let prog_names = if !prog_names = [] then List.map fst programs else !prog_names in
  let profile = find_profile !profile_name in
  let profile = if !liberal then Verus.Profiles.liberal profile else profile in
  if !json then begin
    (* One versioned document per invocation: the schema has a single
       "program" key, so --json covers exactly one program. *)
    let name =
      match prog_names with
      | [ n ] -> n
      | _ -> die_usage "lint --json expects exactly one program"
    in
    let ds = Verus.Vlint.lint profile (find_program name) in
    print_endline
      (Vbase.Json.to_string ~indent:true
         (Verus.Vlint.report_to_json ~prog_name:name
            ~profile_name:profile.Verus.Profiles.name ds));
    let n_err = List.length (Verus.Vlint.errors ds) in
    let n_warn =
      List.length (List.filter (fun d -> d.Verus.Vlint.severity = Verus.Vlint.Warn) ds)
    in
    exit (if n_err > 0 || (!strict && n_warn > 0) then 1 else 0)
  end;
  let n_err = ref 0 and n_warn = ref 0 and n_info = ref 0 in
  List.iter
    (fun name ->
      let prog = find_program name in
      let ds = Verus.Vlint.lint profile prog in
      Printf.printf "%-16s %s: %d finding(s)\n" name profile.Verus.Profiles.name
        (List.length ds);
      List.iter
        (fun (d : Verus.Vlint.diag) ->
          (match d.Verus.Vlint.severity with
          | Verus.Vlint.Error -> incr n_err
          | Verus.Vlint.Warn -> incr n_warn
          | Verus.Vlint.Info -> incr n_info);
          print_endline ("  " ^ Verus.Vlint.diag_to_string d))
        ds)
    prog_names;
  Printf.printf "== lint: %d error(s), %d warning(s), %d info\n" !n_err !n_warn !n_info;
  let failing = !n_err > 0 || (!strict && !n_warn > 0) in
  exit (if failing then 1 else 0)

(* ---------------------------- cache ------------------------------- *)

(* Exit 4 ("cache I/O problem") is deliberately distinct from both 0 and
   1: a corrupt or undeletable store is an environment problem, not a
   verification verdict, and scripts must not mistake one for the other. *)
let exit_cache_io = 4

let cmd_cache args =
  let action, dir_arg =
    match args with
    | [ a ] when a = "stats" || a = "clear" -> (a, None)
    | [ a; d ] when a = "stats" || a = "clear" -> (a, Some d)
    | a :: _ when a <> "stats" && a <> "clear" ->
      die_usage "cache expects stats or clear, got %s" a
    | _ -> die_usage "usage: verus_cli cache stats|clear [DIR]"
  in
  let dir =
    match resolve_cache_dir ~no_cache:false ~cache_dir:dir_arg with
    | Some d -> d
    | None -> die_usage "cache %s needs a directory (argument or VERUS_CACHE)" action
  in
  match action with
  | "clear" -> (
    match Verus.Vcache.clear ~dir with
    | Ok () ->
      Printf.printf "cache cleared: %s\n" (Filename.concat dir Verus.Vcache.file_name);
      exit 0
    | Error e ->
      Printf.eprintf "cache clear failed: %s\n" e;
      exit exit_cache_io)
  | _ ->
    let ds = Verus.Vcache.disk_stats ~dir in
    Printf.printf "cache %s (schema %s)\n"
      (Filename.concat dir Verus.Vcache.file_name)
      Verus.Vcache.schema_version;
    if not ds.Verus.Vcache.ds_exists then begin
      Printf.printf "  no store present (a cached verify run will create it)\n";
      exit 0
    end
    else begin
      Printf.printf "  entries: %d (%d bytes on disk)\n" ds.Verus.Vcache.ds_entries
        ds.Verus.Vcache.ds_bytes;
      List.iter
        (fun (kind, n) -> Printf.printf "    %-8s %d\n" kind n)
        ds.Verus.Vcache.ds_answers;
      if ds.Verus.Vcache.ds_dropped > 0 then
        Printf.printf "  malformed entries: %d (dropped at load)\n" ds.Verus.Vcache.ds_dropped;
      if ds.Verus.Vcache.ds_corrupt then
        Printf.printf "  store is CORRUPT (verify runs degrade to cold and rebuild it)\n";
      if ds.Verus.Vcache.ds_corrupt || ds.Verus.Vcache.ds_dropped > 0 then exit exit_cache_io
      else exit 0
    end

(* ---------------------------- daemon ------------------------------- *)

(* Exit 6 ("daemon connection or protocol failure") is an environment
   problem, like the cache subcommands' 4: no daemon at the socket, an
   unreadable frame, an RPC-level rejection.  Never a verdict — verdicts
   arrive in the done event and the client mirrors their exit_code. *)
let exit_daemon_io = 6

let default_socket () =
  match Sys.getenv_opt "VERUSD_SOCKET" with
  | Some p when p <> "" -> p
  | _ -> "verusd.sock"

let cmd_daemon args =
  let socket = ref None in
  let domains = ref 4 in
  let cache_dir = ref (Sys.getenv_opt "VERUS_CACHE") in
  let rec parse = function
    | [] -> ()
    | "--socket" :: v :: rest ->
      socket := Some v;
      parse rest
    | "--cache" :: v :: rest ->
      cache_dir := Some v;
      parse rest
    | "--domains" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> domains := n
      | _ -> die_usage "--domains expects a positive integer, got %s" v);
      parse rest
    | a :: _ -> die_usage "unknown daemon argument %s" a
  in
  parse args;
  let socket_path = match !socket with Some p -> p | None -> default_socket () in
  let cache_dir = match !cache_dir with Some "" -> None | c -> c in
  Printf.printf "verusd: listening on %s (%d domain%s%s)\n%!" socket_path !domains
    (if !domains = 1 then "" else "s")
    (match cache_dir with Some d -> ", cache " ^ d | None -> ", no cache");
  match Verus.Vservice.serve ~socket_path ~domains:!domains ?cache_dir () with
  | Ok () ->
    Printf.printf "verusd: shut down\n%!";
    exit 0
  | Error e ->
    Printf.eprintf "verusd: %s\n" e;
    exit exit_daemon_io

(* ---------------------------- client ------------------------------- *)

let print_stream_event = function
  | Verusd.Rpc.E_vc { fn; vc; answer; reason; time_s; cached; rung } ->
    Printf.printf "vc  %-16s %-44s %-8s %.3fs%s%s%s\n%!" fn vc answer time_s
      (if cached then "  (cached)" else "")
      (match rung with Some r -> Printf.sprintf "  (rung %d)" r | None -> "")
      (match reason with Some r -> "  [" ^ r ^ "]" | None -> "")
  | Verusd.Rpc.E_fn { fn; ok; time_s; vcs } ->
    Printf.printf "fn  %-16s %-44s %-8s %.3fs\n%!" fn
      (Printf.sprintf "(%d vc%s)" vcs (if vcs = 1 then "" else "s"))
      (if ok then "OK" else "FAIL")
      time_s
  | _ -> ()

let done_int j key = match Vbase.Json.member key j with Some (Vbase.Json.Int n) -> Some n | _ -> None
let done_str j key = match Vbase.Json.member key j with Some (Vbase.Json.String s) -> Some s | _ -> None

let print_done j =
  let s key = Option.value ~default:"?" (done_str j key) in
  match done_str j "kind" with
  | Some "shutdown" -> print_endline "daemon shut down"
  | _ ->
    let time_s =
      match Vbase.Json.member "time_s" j with
      | Some v -> Option.value ~default:0.0 (Vbase.Json.to_float v)
      | None -> 0.0
    in
    let verdict =
      match done_int j "exit_code" with
      | Some 0 -> "VERIFIED"
      | Some 3 -> "UNKNOWN (solver budget exhausted)"
      | Some 5 -> "CERTIFICATE REJECTED"
      | _ -> "FAILED"
    in
    let verdict = match done_str j "kind" with Some "lint" -> (match done_int j "exit_code" with Some 0 -> "CLEAN" | _ -> "FINDINGS") | _ -> verdict in
    (match Vbase.Json.member "cache" j with
    | Some (Vbase.Json.Obj _ as c) ->
      let ci k = Option.value ~default:0 (done_int c k) in
      Printf.printf "cache: %d hit(s), %d miss(es), %d invalidation(s), %d store(s)\n"
        (ci "hits") (ci "misses") (ci "invalidations") (ci "stores")
    | _ -> ());
    Printf.printf "== %s / %s: %s in %.3fs (digest %s)\n" (s "program") (s "profile") verdict
      time_s (s "digest")

let cmd_client args =
  let meth = ref None in
  let prog_name = ref None in
  let profile_name = ref None in
  let socket = ref None in
  let lint = ref None in
  let certify = ref false in
  let prescreen = ref false in
  let no_cache = ref false in
  let deadline = ref None in
  let max_rounds = ref None in
  let ladder_name = ref None in
  let rung = ref None in
  let stream = ref true in
  let rec parse = function
    | [] -> ()
    | "--ladder" :: v :: rest ->
      ladder_name := Some v;
      parse rest
    | "--rung" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 0 -> rung := Some n
      | _ -> die_usage "--rung expects a non-negative integer, got %s" v);
      parse rest
    | "--socket" :: v :: rest ->
      socket := Some v;
      parse rest
    | "--lint" :: v :: rest ->
      (match v with
      | "ignore" -> lint := Some Verusd.Rpc.Lint_off
      | "warn" -> lint := Some Verusd.Rpc.Lint_warn
      | "strict" -> lint := Some Verusd.Rpc.Lint_strict
      | _ -> die_usage "--lint expects ignore|warn|strict, got %s" v);
      parse rest
    | "--certify" :: rest ->
      certify := true;
      parse rest
    | "--prescreen" :: rest ->
      prescreen := true;
      parse rest
    | "--no-cache" :: rest ->
      no_cache := true;
      parse rest
    | "--no-stream" :: rest ->
      stream := false;
      parse rest
    | "--deadline" :: v :: rest ->
      (match float_of_string_opt v with
      | Some s when s > 0.0 -> deadline := Some s
      | _ -> die_usage "--deadline expects a positive number of seconds, got %s" v);
      parse rest
    | "--max-rounds" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> max_rounds := Some n
      | _ -> die_usage "--max-rounds expects a positive integer, got %s" v);
      parse rest
    | a :: _ when String.length a > 1 && a.[0] = '-' -> die_usage "unknown option %s" a
    | a :: rest ->
      (if !meth = None then meth := Some a
       else if !prog_name = None then prog_name := Some a
       else profile_name := Some a);
      parse rest
  in
  parse args;
  let socket_path = match !socket with Some p -> p | None -> default_socket () in
  let job kind =
    let program = match !prog_name with Some p -> p | None -> "singly_linked" in
    Verusd.Rpc.M_job
      (Verusd.Rpc.query ?profile:!profile_name ?lint:!lint ~certify:!certify
         ~analyze:!prescreen ~cache:(not !no_cache) ?deadline_s:!deadline
         ?max_rounds:!max_rounds ?ladder:!ladder_name ?rung:!rung ~stream:!stream
         kind program)
  in
  let method_ =
    match !meth with
    | Some "ping" -> Verusd.Rpc.M_ping
    | Some "status" -> Verusd.Rpc.M_status
    | Some "shutdown" -> Verusd.Rpc.M_shutdown
    | Some "verify" -> job Verusd.Rpc.Verify
    | Some "lint" -> job Verusd.Rpc.Lint
    | Some "profile" -> job Verusd.Rpc.Profile
    | Some m -> die_usage "unknown client method %s" m
    | None -> die_usage "client needs a method (ping|status|shutdown|verify|lint|profile)"
  in
  match Verusd.Client.connect ~socket_path with
  | Error e ->
    Printf.eprintf "client: %s\n" e;
    exit exit_daemon_io
  | Ok c -> (
    let r = Verusd.Client.call c ~on_event:print_stream_event (Verusd.Rpc.request method_) in
    Verusd.Client.close c;
    match r with
    | Error e ->
      Printf.eprintf "client: %s\n" e;
      exit exit_daemon_io
    | Ok (Verusd.Rpc.E_pong) ->
      print_endline "pong";
      exit 0
    | Ok (Verusd.Rpc.E_status j) ->
      print_endline (Vbase.Json.to_string ~indent:true j);
      exit 0
    | Ok (Verusd.Rpc.E_done j) ->
      print_done j;
      exit (Option.value ~default:0 (done_int j "exit_code"))
    | Ok (Verusd.Rpc.E_error { code; message }) ->
      Printf.eprintf "client: daemon error %s: %s\n" code message;
      exit exit_daemon_io
    | Ok _ ->
      Printf.eprintf "client: unexpected terminal event\n";
      exit exit_daemon_io)

(* ----------------------------- main ------------------------------- *)

let () =
  let argv = Array.to_list Sys.argv in
  match argv with
  | _ :: "verify" :: rest -> cmd_verify rest
  | _ :: "analyze" :: rest -> cmd_analyze rest
  | _ :: "profile" :: rest -> cmd_profile rest
  | _ :: "lint" :: rest -> cmd_lint rest
  | _ :: "cache" :: rest -> cmd_cache rest
  | _ :: "daemon" :: rest -> cmd_daemon rest
  | _ :: "client" :: rest -> cmd_client rest
  | _ :: ("list" | "--list") :: _ -> cmd_list ()
  | _ :: "codes" :: _ -> cmd_codes ()
  | _ :: "ladders" :: _ -> cmd_ladders ()
  | _ :: ("help" | "--help" | "-h") :: _ | [ _ ] ->
    usage stdout;
    exit 0
  | _ :: cmd :: _ -> die_usage "unknown command %s" cmd
  | [] -> exit 2
