(* CI smoke for the certification pipeline (`dune build @certify`):
   every bundled program runs under the default (Verus) profile with
   certification on, and every Unsat obligation must carry a certificate
   the independent Vcheck kernel replays to Checked.  A single Rejected
   (or missing) certificate fails the build: the solver claimed a proof
   the kernel would not accept.

   The two deliberately broken programs (break_pop, break_index — the
   error-localization benchmarks) must still fail for their *ordinary*
   reason (a refutation or an Unknown, never a certificate problem), and
   whatever they do prove must certify like everything else.

   Exit 0 when the whole suite certifies, 1 with a message otherwise. *)

let fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("certify_smoke: FAIL: " ^ m); exit 1) fmt

(* The same bundled suite verus_cli exposes; [`Ok] verifies, [`Broken]
   fails on purpose. *)
let programs =
  [
    ("singly_linked", `Ok, fun () -> Verus.Bench_programs.singly_linked);
    ("doubly_linked", `Ok, fun () -> Verus.Bench_programs.doubly_linked);
    ("mem4", `Ok, fun () -> Verus.Bench_programs.memory_reasoning 4);
    ("mem8", `Ok, fun () -> Verus.Bench_programs.memory_reasoning 8);
    ("dlock", `Ok, fun () -> Verus.Bench_programs.dlock_default);
    ("break_pop", `Broken, fun () -> Verus.Bench_programs.break_pop);
    ("break_index", `Broken, fun () -> Verus.Bench_programs.break_index);
    ("vstd_seq", `Ok, fun () -> Verus.Vstd_seq.program);
  ]

let () =
  let grand_total = ref 0 in
  List.iter
    (fun (name, expect, prog) ->
      let prog = prog () in
      let config = Verus.Driver.Config.(default |> with_certify true) in
      let r = Verus.Driver.verify_program ~config Verus.Profiles.verus prog in
      (match (expect, r.Verus.Driver.pr_ok) with
      | `Ok, false -> (
        match Verus.Driver.first_failure r with
        | Some (where, what, code) -> fail "%s: [%s] %s: %s" name code where what
        | None -> fail "%s: verification failed with no reported failure" name)
      | `Broken, true -> fail "%s: expected to fail but verified" name
      | `Broken, false -> (
        (* It must fail for the ordinary reason, never a certificate one. *)
        match Verus.Driver.first_failure r with
        | Some (_, _, "VC003") -> fail "%s: failed on a certificate rejection" name
        | Some _ -> ()
        | None -> fail "%s: failed with no reported failure" name)
      | `Ok, true -> ());
      let total = ref 0 in
      List.iter
        (fun (fnr : Verus.Driver.fn_result) ->
          List.iter
            (fun (v : Verus.Driver.vc_result) ->
              match (v.Verus.Driver.vcr_answer, v.Verus.Driver.vcr_cert) with
              | Smt.Solver.Unsat, Verus.Driver.Cert_checked _ -> incr total
              | Smt.Solver.Unsat, Verus.Driver.Cert_rejected (code, reason) ->
                fail "%s: %S certificate REJECTED %s: %s" name
                  v.Verus.Driver.vcr_name code reason
              | Smt.Solver.Unsat, _ ->
                fail "%s: %S proved without a checked certificate" name
                  v.Verus.Driver.vcr_name
              | _ -> ())
            fnr.Verus.Driver.fnr_vcs)
        r.Verus.Driver.pr_fns;
      grand_total := !grand_total + !total;
      Printf.printf "  ok: %-16s %3d obligation(s) certified in %.3fs%s\n%!" name !total
        r.Verus.Driver.pr_time_s
        (match expect with `Broken -> "  (fails as intended)" | `Ok -> ""))
    programs;
  Printf.printf "certify_smoke: %d obligation(s) across %d program(s) certified\n"
    !grand_total (List.length programs)
