(* CI smoke for the Vladder escalation ladder (`dune build @ladder`):

   1. verdict agreement: for a suite of program x profile combinations,
      an escalate-ladder run's result digest equals the monolithic
      (ladder-free) run's — the ladder may change cost, never truth
      (the escalate ladder's top rung is the untouched profile, so even
      obligations that climb all the way answer identically);
   2. winning rungs stand alone: every obligation's recorded winning
      rung, re-run pinned ([Ladder.pin]) as a single-rung ladder, must
      reproduce the same answer — a win is a property of the rung's
      configuration, not of the climb that led there;
   3. the deprecated budget override is a single-rung ladder:
      [Config.with_budget b] and [Config.with_ladder (Ladder.of_budget b)]
      produce identical digests;
   4. the winning-rung jump: a cold escalate run over a program with
      real escalations fills the cache; a warm identical run serves
      every obligation from it with an identical digest; and a warm
      profiled run — whose lookups are gated out because the cold
      entries carry no profile — must jump straight to each recorded
      winning rung, wasting zero lower-rung attempts.

   Exit 0 when all hold, 1 with a message otherwise. *)

let fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("ladder_smoke: FAIL: " ^ m); exit 1) fmt

let check name cond = if not cond then fail "%s" name else Printf.printf "  ok: %s\n%!" name

let digest = Verus.Driver.result_digest

let vcs_of (r : Verus.Driver.program_result) =
  List.concat_map (fun (f : Verus.Driver.fn_result) -> f.Verus.Driver.fnr_vcs)
    r.Verus.Driver.pr_fns

(* Attempts spent at rungs strictly below the winning rung. *)
let wasted r =
  List.fold_left
    (fun acc (v : Verus.Driver.vc_result) ->
      match v.Verus.Driver.vcr_rung with
      | Some w ->
        acc + List.length (List.filter (fun t -> t < w) v.Verus.Driver.vcr_rungs_tried)
      | None -> acc)
    0 (vcs_of r)

let suite =
  [
    ("singly_linked", Verus.Bench_programs.singly_linked, Verus.Profiles.verus);
    ("singly_linked", Verus.Bench_programs.singly_linked, Verus.Profiles.dafny);
    ( "singly_linked",
      Verus.Bench_programs.singly_linked,
      Verus.Profiles.liberal Verus.Profiles.verus );
    ("const_cond", Verus.Bench_programs.const_cond, Verus.Profiles.verus);
    ("break_pop", Verus.Bench_programs.break_pop, Verus.Profiles.verus);
  ]

let () =
  let ladder = Verus.Driver.Ladder.escalate in
  (* 1 + 2: digest agreement, then every winning rung re-verified pinned. *)
  List.iter
    (fun (name, prog, (p : Verus.Profiles.t)) ->
      let tag = Printf.sprintf "%s / %s" name p.Verus.Profiles.name in
      let mono = Verus.Driver.verify_program p prog in
      let lad =
        Verus.Driver.verify_program
          ~config:Verus.Driver.Config.(default |> with_ladder ladder)
          p prog
      in
      check (tag ^ ": ladder digest equals monolithic digest")
        (String.equal (digest mono) (digest lad));
      (* Group obligations by winning rung; one pinned run per rung. *)
      let rungs =
        List.sort_uniq compare
          (List.filter_map (fun (v : Verus.Driver.vc_result) -> v.Verus.Driver.vcr_rung)
             (vcs_of lad))
      in
      check (tag ^ ": every obligation records a winning rung")
        (List.for_all
           (fun (v : Verus.Driver.vc_result) -> v.Verus.Driver.vcr_rung <> None)
           (vcs_of lad));
      List.iter
        (fun w ->
          let pinned =
            match Verus.Driver.Ladder.pin ladder w with
            | Ok l -> l
            | Error e -> fail "%s: pin %d: %s" tag w e
          in
          let pr =
            Verus.Driver.verify_program
              ~config:Verus.Driver.Config.(default |> with_ladder pinned)
              p prog
          in
          (* Obligation names can repeat (two assertions in one body), so
             match positionally: [fnr_vcs] is back in encoding order in
             both runs. *)
          let lad_vcs = vcs_of lad and pin_vcs = vcs_of pr in
          if List.length lad_vcs <> List.length pin_vcs then
            fail "%s: pinned run has %d obligation(s), ladder run %d" tag
              (List.length pin_vcs) (List.length lad_vcs);
          List.iter2
            (fun (v : Verus.Driver.vc_result) (pv : Verus.Driver.vc_result) ->
              if not (String.equal v.Verus.Driver.vcr_name pv.Verus.Driver.vcr_name) then
                fail "%s: obligation order differs (%S vs %S)" tag v.Verus.Driver.vcr_name
                  pv.Verus.Driver.vcr_name;
              if
                v.Verus.Driver.vcr_rung = Some w
                && v.Verus.Driver.vcr_answer <> pv.Verus.Driver.vcr_answer
              then
                fail "%s: %S won at rung %d but answers differently when pinned there"
                  tag v.Verus.Driver.vcr_name w)
            lad_vcs pin_vcs;
          Printf.printf "  ok: %s: rung-%d winners reproduce pinned\n%!" tag w)
        rungs)
    suite;

  (* 3: the deprecated budget override is exactly a single-rung ladder. *)
  let b =
    { (Verus.Profiles.budget Verus.Profiles.verus) with Smt.Solver.deadline_s = 10.0 }
  in
  let via_wrapper =
    Verus.Driver.verify_program
      ~config:
        (Verus.Driver.Config.with_budget b Verus.Driver.Config.default
         [@alert "-deprecated"])
      Verus.Profiles.verus Verus.Bench_programs.singly_linked
  in
  let via_ladder =
    Verus.Driver.verify_program
      ~config:
        Verus.Driver.Config.(
          default |> with_ladder (Verus.Driver.Ladder.of_budget b))
      Verus.Profiles.verus Verus.Bench_programs.singly_linked
  in
  check "with_budget digest equals with_ladder (of_budget) digest"
    (String.equal (digest via_wrapper) (digest via_ladder));

  (* 4: the winning-rung jump, over a program with real escalations
     (break_pop's refuted obligation must climb to the top rung — a Sat
     from a pruned, conservatively-triggered rung is never final). *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "verus-ladder-smoke-%d" (Unix.getpid ()))
  in
  (match Verus.Vcache.clear ~dir with Ok () -> () | Error _ -> ());
  let run ~profile () =
    Verus.Driver.verify_program
      ~config:
        Verus.Driver.Config.(
          default |> with_ladder ladder |> with_cache dir |> with_profile profile)
      Verus.Profiles.verus Verus.Bench_programs.break_pop
  in
  let cold = run ~profile:false () in
  check "cold break_pop run escalates (wasted lower-rung attempts > 0)" (wasted cold > 0);
  let warm = run ~profile:false () in
  let hits =
    match warm.Verus.Driver.pr_ladder with
    | Some ls -> ls.Verus.Driver.ls_cache_hits
    | None -> 0
  in
  check
    (Printf.sprintf "warm run serves all %d obligation(s) from the cache"
       (List.length (vcs_of warm)))
    (hits = List.length (vcs_of warm));
  check "warm digest equals cold digest" (String.equal (digest cold) (digest warm));
  let jump = run ~profile:true () in
  let hint_starts =
    match jump.Verus.Driver.pr_ladder with
    | Some ls -> ls.Verus.Driver.ls_hint_starts
    | None -> 0
  in
  check "warm profiled run jumps to a recorded winning rung" (hint_starts > 0);
  check "warm profiled run wastes zero lower-rung attempts" (wasted jump = 0);
  check "warm profiled digest equals cold digest" (String.equal (digest cold) (digest jump));

  print_endline "ladder_smoke: all checks passed"
