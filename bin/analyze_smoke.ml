(* CI smoke for the Vflow prescreen (`dune build @analyze`):

   1. soundness crosscheck, full suite: for every bundled program under
      every non-EPR framework profile, every obligation the prescreen
      proves at rung 0 is re-proved by the SMT solver — a single
      disagreement (prescreen Proved, solver not Unsat) fails the build;
   2. the const_cond pin: a prescreened verify discharges at least one
      obligation without SMT and still verifies;
   3. digest stability: prescreened and plain runs of the same program
      produce identical result digests, and a prescreened jobs=2 run
      digests identically to jobs=1 (derived facts are ordered by their
      printed rendering, never by term identity).

   Exit 0 when all hold, 1 with a message otherwise. *)

let fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("analyze_smoke: FAIL: " ^ m); exit 1) fmt

let check name cond = if not cond then fail "%s" name else Printf.printf "  ok: %s\n%!" name

(* The EPR profile (Ivy) routes obligations through the fragment checker
   rather than the general solver, and the prescreen only feeds the
   general path — crosscheck where the prescreen actually runs. *)
let profiles =
  List.filter (fun (p : Verus.Profiles.t) -> not p.Verus.Profiles.epr_only) Verus.Profiles.all

let () =
  (* 1: prescreen-Proved ⇒ solver-Unsat, across the whole suite. *)
  let checked = ref 0 and discharged = ref 0 in
  List.iter
    (fun (name, mk) ->
      let prog : Verus.Vir.program = mk () in
      List.iter
        (fun (p : Verus.Profiles.t) ->
          let targets =
            List.filter
              (fun (fd : Verus.Vir.fndecl) ->
                fd.Verus.Vir.fmode <> Verus.Vir.Spec && fd.Verus.Vir.body <> None)
              prog.Verus.Vir.functions
          in
          List.iter
            (fun fd ->
              List.iter
                (fun (vc : Verus.Encode.vc) ->
                  incr checked;
                  let context = Verus.Driver.context_for p prog vc in
                  let r =
                    Vflow.Prescreen.check
                      ~hyps:(context @ vc.Verus.Encode.vc_hyps)
                      ~goal:vc.Verus.Encode.vc_goal ()
                  in
                  if r.Vflow.Prescreen.verdict = Vflow.Prescreen.Proved then begin
                    incr discharged;
                    let s =
                      Smt.Solver.check_valid ~config:p.Verus.Profiles.solver_config
                        ~hyps:(context @ vc.Verus.Encode.vc_hyps)
                        vc.Verus.Encode.vc_goal
                    in
                    if s.Smt.Solver.answer <> Smt.Solver.Unsat then
                      fail "prescreen/SMT disagreement on %s / %s / %S" name
                        p.Verus.Profiles.name vc.Verus.Encode.vc_name
                  end)
                (Verus.Encode.encode_function p prog fd))
            targets)
        profiles)
    Verus.Vservice.programs;
  check
    (Printf.sprintf "crosscheck: %d prescreen-proved obligation(s) of %d all SMT-Unsat"
       !discharged !checked)
    (!discharged > 0);

  (* 2: const_cond discharges under a prescreened verify. *)
  let run ?(analyze = false) ?(jobs = 1) prog =
    let config =
      Verus.Driver.Config.(default |> with_analyze analyze |> with_jobs jobs)
    in
    Verus.Driver.verify_program ~config Verus.Profiles.verus prog
  in
  let pre = run ~analyze:true Verus.Bench_programs.const_cond in
  check "const_cond verifies with prescreen" pre.Verus.Driver.pr_ok;
  check "const_cond discharges at least one obligation at rung 0"
    (Verus.Driver.prescreen_discharged pre > 0);

  (* 3: digests agree plain vs. prescreened, and across jobs. *)
  List.iter
    (fun (name, prog) ->
      let plain = run prog in
      let pre1 = run ~analyze:true prog in
      let pre2 = run ~analyze:true ~jobs:2 prog in
      check
        (name ^ ": prescreened digest equals plain digest")
        (String.equal (Verus.Driver.result_digest plain) (Verus.Driver.result_digest pre1));
      check
        (name ^ ": prescreened digest stable under jobs=2")
        (String.equal (Verus.Driver.result_digest pre1) (Verus.Driver.result_digest pre2));
      check (name ^ ": verified-function count unchanged")
        (List.length plain.Verus.Driver.pr_fns = List.length pre1.Verus.Driver.pr_fns
        && plain.Verus.Driver.pr_ok = pre1.Verus.Driver.pr_ok))
    [
      ("const_cond", Verus.Bench_programs.const_cond);
      ("singly_linked", Verus.Bench_programs.singly_linked);
      ("mem4", Verus.Bench_programs.memory_reasoning 4);
    ];

  print_endline "analyze_smoke: all checks passed"
