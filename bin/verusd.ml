(* verusd — the persistent verification daemon.

     verusd [--socket PATH] [--domains N] [--cache DIR]

   Binds a Unix-domain socket speaking verus-rpc/1 (docs/PROTOCOL.md),
   spawns a work-stealing pool of N worker domains, and serves
   verify/lint/profile jobs until a shutdown request arrives.  The
   socket path defaults to $VERUSD_SOCKET, then ./verusd.sock; the
   cache directory defaults to $VERUS_CACHE (unset = no shared cache).

   Exit codes: 0 after an orderly shutdown, 2 usage error, 6 when the
   socket cannot be bound (a live daemon already owns it, or the path
   is not writable) — the same "connection/protocol" code verus_cli's
   client side uses, so scripts treat both ends uniformly. *)

let usage oc =
  Printf.fprintf oc
    "usage: verusd [--socket PATH] [--domains N] [--cache DIR]\n\n\
    \  --socket PATH   Unix-domain socket to bind (default: $VERUSD_SOCKET,\n\
    \                  then ./verusd.sock)\n\
    \  --domains N     worker domains in the obligation pool (default: 4)\n\
    \  --cache DIR     shared verification-cache directory (default:\n\
    \                  $VERUS_CACHE; unset = no cache)\n\n\
     The daemon serves until a client sends a shutdown request\n\
     (verus_cli client shutdown).  Protocol: docs/PROTOCOL.md.\n"

let die_usage fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline m;
      usage stderr;
      exit 2)
    fmt

let () =
  let socket = ref None in
  let domains = ref 4 in
  let cache_dir = ref (Sys.getenv_opt "VERUS_CACHE") in
  let rec parse = function
    | [] -> ()
    | "--socket" :: v :: rest ->
      socket := Some v;
      parse rest
    | "--cache" :: v :: rest ->
      cache_dir := Some v;
      parse rest
    | "--domains" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> domains := n
      | _ -> die_usage "--domains expects a positive integer, got %s" v);
      parse rest
    | ("--help" | "-h") :: _ ->
      usage stdout;
      exit 0
    | a :: _ -> die_usage "unknown argument %s" a
  in
  parse (List.tl (Array.to_list Sys.argv));
  let socket_path =
    match !socket with
    | Some p -> p
    | None -> (
      match Sys.getenv_opt "VERUSD_SOCKET" with
      | Some p when p <> "" -> p
      | _ -> "verusd.sock")
  in
  let cache_dir = match !cache_dir with Some "" -> None | c -> c in
  Printf.printf "verusd: listening on %s (%d domain%s%s)\n%!" socket_path !domains
    (if !domains = 1 then "" else "s")
    (match cache_dir with Some d -> ", cache " ^ d | None -> ", no cache");
  match Verus.Vservice.serve ~socket_path ~domains:!domains ?cache_dir () with
  | Ok () ->
    Printf.printf "verusd: shut down\n%!";
    exit 0
  | Error e ->
    Printf.eprintf "verusd: %s\n" e;
    exit 6
