(* Durable-IronKV smoke check (`dune build @kv`, stage 9 of
   scripts/check.sh): one short seeded crash+partition storm over durable
   hosts with the full network fault mix composed in, plus an isolated
   recovery-time probe.

   The storm runs the differential crosscheck: linearizable replies
   throughout, cluster convergence after every storm, and a closing
   readback sweep proving no acknowledged write was lost to any crash.
   Exit 0 on success, 1 with a diagnosis on the first failure. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("kv-smoke: " ^ m); exit 1) fmt

let check_storm () =
  let module W = Ironkv.Workload in
  let plan = Vbase.Faultplan.create ~seed:19 () in
  Vbase.Faultplan.set_prob plan "net.drop" ~pct:5;
  Vbase.Faultplan.set_prob plan "net.dup" ~pct:5;
  Vbase.Faultplan.set_prob plan "net.reorder" ~pct:5;
  Vbase.Faultplan.set_prob plan "net.delay" ~pct:5;
  Vbase.Faultplan.set_prob plan Ironkv.Durable.crash_during_recovery_site ~pct:10;
  let report, verdict =
    W.crosscheck_report ~ops:500 ~seed:23 ~dup_pct:10 ~faults:plan
      ~durability:{ W.du_group = 4; du_mem_bytes = 1 lsl 22 }
      ~crash_pct:2 ~partition_pct:1 ~torn_pct:1 ()
  in
  (match verdict with
  | Ok () -> ()
  | Error e -> fail "storm crosscheck diverged: %s" e);
  if report.W.sr_crashes + report.W.sr_torn = 0 then fail "storm never crashed a host";
  if report.W.sr_partitions = 0 then fail "storm never partitioned the cluster";
  if report.W.sr_recoveries <> report.W.sr_crashes + report.W.sr_torn then
    fail "a crash did not recover (%d crashes+torn, %d recoveries)"
      (report.W.sr_crashes + report.W.sr_torn)
      report.W.sr_recoveries;
  if report.W.sr_readback = 0 then fail "readback sweep verified nothing";
  Printf.printf
    "kv-smoke: storm ok (%d ops; %d crashes + %d torn + %d partitions; %d recoveries \
     replaying %d records in %.3fs; %d acked writes re-verified; %d client retries)\n"
    report.W.sr_ops report.W.sr_crashes report.W.sr_torn report.W.sr_partitions
    report.W.sr_recoveries report.W.sr_replayed report.W.sr_recovery_s report.W.sr_readback
    report.W.sr_retransmissions

let check_recovery_probe () =
  let secs, replayed = Ironkv.Workload.recovery_probe ~records:5_000 ~payload:64 ~group:64 () in
  if replayed < 5_000 then fail "recovery probe replayed %d < 5000 records" replayed;
  Printf.printf "kv-smoke: recovery probe ok (%d records replayed in %.3fs)\n" replayed secs

let () =
  check_storm ();
  check_recovery_probe ();
  print_endline "kv-smoke: all ok"
