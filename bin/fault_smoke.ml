(* Fault-injection smoke check (`dune build @faults`, stage 4 of
   scripts/check.sh): quick end-to-end confirmation that the hardened
   runtime paths survive an adversarial environment.

   1. IronKV differential crosscheck at 5% message drop + 5% network
      duplication (clients retransmit; at-most-once absorbs duplicates;
      concurrent re-delegation stays on).
   2. Persistent-log torn-write recovery: a flush torn mid-append must
      leave an attachable log holding a committed prefix.

   Exit 0 on success, 1 with a diagnosis on the first failure. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("fault-smoke: " ^ m); exit 1) fmt

let check_crosscheck () =
  match
    Ironkv.Workload.crosscheck ~ops:800 ~seed:7 ~drop_pct:5 ~net_dup_pct:5 ~fault_seed:7 ()
  with
  | Ok () -> print_endline "fault-smoke: ironkv crosscheck @ 5% drop+dup ok"
  | Error e -> fail "ironkv crosscheck diverged: %s" e

let check_torn_recovery () =
  let module P = Plog.Pmem in
  let module L = Plog.Log in
  let len = 1024 + L.header_bytes in
  let plan = Vbase.Faultplan.create ~seed:11 () in
  let mem = P.create ~faults:plan ~size:len () in
  L.format mem ~base:0 ~len;
  let log =
    match L.attach mem ~base:0 ~len with Ok l -> l | Error e -> fail "attach: %s" e
  in
  (* Arm the tear after format, then append until it bites. *)
  Vbase.Faultplan.fire_at plan "pmem.torn" [ Vbase.Faultplan.step plan "pmem.torn" + 5 ];
  let acked = Buffer.create 128 in
  for i = 1 to 10 do
    match L.append log (Printf.sprintf "entry-%02d" i) with
    | Ok () -> Buffer.add_string acked (Printf.sprintf "entry-%02d" i)
    | Error _ -> ()
  done;
  if Vbase.Faultplan.fired plan "pmem.torn" = 0 then fail "torn-write site never fired";
  P.crash mem;
  match L.attach mem ~base:0 ~len with
  | Error e -> fail "recovery after torn write failed: %s" e
  | Ok log2 -> (
    let t = L.tail log2 in
    if t > Buffer.length acked then fail "recovered more bytes than were acked";
    match L.read log2 ~offset:0 ~len:t with
    | Error e -> fail "read after recovery: %s" e
    | Ok s ->
      if s <> Buffer.sub acked 0 t then fail "recovered bytes are not a committed prefix";
      Printf.printf "fault-smoke: plog torn-write recovery ok (%d/%d bytes committed)\n" t
        (Buffer.length acked))

let () =
  check_crosscheck ();
  check_torn_recovery ();
  print_endline "fault-smoke: all ok"
