(* CI smoke for the verification cache (`dune build @cache`):

   1. a cold run through an empty cache must solve (and store) everything;
   2. a warm run must serve 100% of the obligations from the store and
      produce a result digest identical to the cold run's;
   3. a warm run on more domains must report the same counters (the
      statistics are defined against the load-time snapshot, not the
      worker interleaving);
   4. corrupting the store must degrade to a full cold run — same digest,
      zero failures — and rewrite the store, after which one more run is
      warm again.

   Exit 0 when all hold, 1 with a message otherwise. *)

let dir = Filename.concat (Filename.get_temp_dir_name ()) "verus-cache-smoke"

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("cache_smoke: FAIL: " ^ m); exit 1) fmt

let check name cond = if not cond then fail "%s" name else Printf.printf "  ok: %s\n%!" name

let stats (r : Verus.Driver.program_result) =
  match r.Verus.Driver.pr_cache with
  | Some s -> s
  | None -> fail "run reported no cache stats"

let run ?(jobs = 1) () =
  let config = Verus.Driver.Config.(default |> with_cache dir |> with_jobs jobs) in
  Verus.Driver.verify_program ~config Verus.Profiles.verus Verus.Bench_programs.singly_linked

let () =
  (match Verus.Vcache.clear ~dir with
  | Ok () -> ()
  | Error e -> fail "could not clear %s: %s" dir e);

  (* 1: cold. *)
  let cold = run () in
  let cs = stats cold in
  check "cold run verifies" cold.Verus.Driver.pr_ok;
  check "cold run has no hits" (cs.Verus.Vcache.hits = 0);
  check "cold run misses every obligation"
    (cs.Verus.Vcache.misses > 0 && cs.Verus.Vcache.invalidations = 0);
  check "cold run stores entries" (cs.Verus.Vcache.stores > 0);

  (* 2: warm — 100% hit rate, identical digest. *)
  let warm = run () in
  let ws = stats warm in
  check "warm run verifies" warm.Verus.Driver.pr_ok;
  check "warm run hits every obligation"
    (ws.Verus.Vcache.hits = cs.Verus.Vcache.misses
    && ws.Verus.Vcache.misses = 0
    && ws.Verus.Vcache.invalidations = 0);
  check "warm run stores nothing" (ws.Verus.Vcache.stores = 0);
  check "warm digest equals cold digest"
    (String.equal (Verus.Driver.result_digest cold) (Verus.Driver.result_digest warm));

  (* 3: same counters under jobs > 1. *)
  let warm2 = run ~jobs:2 () in
  let w2 = stats warm2 in
  check "warm jobs=2 digest unchanged"
    (String.equal (Verus.Driver.result_digest warm) (Verus.Driver.result_digest warm2));
  check "warm jobs=2 counters unchanged"
    (w2.Verus.Vcache.hits = ws.Verus.Vcache.hits
    && w2.Verus.Vcache.misses = 0
    && w2.Verus.Vcache.invalidations = 0);

  (* 4: corruption degrades to cold, repairs, then warms again. *)
  let path = Filename.concat dir Verus.Vcache.file_name in
  let oc = open_out path in
  output_string oc "{ \"schema\": \"verus-cache/1\", \"entries\": { truncated";
  close_out oc;
  let recovered = run () in
  let rs = stats recovered in
  check "corrupt store is detected" rs.Verus.Vcache.corrupt_load;
  check "corrupt store degrades to a full cold run"
    (rs.Verus.Vcache.hits = 0 && rs.Verus.Vcache.misses = cs.Verus.Vcache.misses);
  check "corrupt-store run still verifies" recovered.Verus.Driver.pr_ok;
  check "corrupt-store digest unchanged"
    (String.equal (Verus.Driver.result_digest cold) (Verus.Driver.result_digest recovered));
  let rewarm = run () in
  let rw = stats rewarm in
  check "store was rebuilt after corruption"
    ((not rw.Verus.Vcache.corrupt_load) && rw.Verus.Vcache.hits = ws.Verus.Vcache.hits);

  Printf.printf "cache_smoke: all checks passed (%d obligations, store %s)\n"
    ws.Verus.Vcache.hits path
