(* Rung/Ladder: named, fingerprintable solver configurations arranged
   into per-obligation escalation sequences.  See vladder.mli for the
   design; the driver in lib/core owns the retry loop, the steering and
   the cache integration — this module is pure data + arithmetic, so the
   same ladder means the same thing to the CLI, the daemon and the
   bench harness. *)

module Rung = struct
  type triggers = T_profile | T_conservative | T_liberal
  type pruning = P_profile | P_prune | P_full

  type budget_spec =
    | B_profile
    | B_scaled of { deadline : float; rounds : float; instances : float }
    | B_absolute of Smt.Solver.budget

  type t = {
    r_name : string;
    r_triggers : triggers;
    r_pruning : pruning;
    r_budget : budget_spec;
  }

  let profile_rung =
    { r_name = "full"; r_triggers = T_profile; r_pruning = P_profile; r_budget = B_profile }

  let triggers_tag = function
    | T_profile -> "profile"
    | T_conservative -> "conservative"
    | T_liberal -> "liberal"

  let pruning_tag = function
    | P_profile -> "profile"
    | P_prune -> "on"
    | P_full -> "full-context"

  let budget_tag = function
    | B_profile -> "profile"
    | B_scaled { deadline; rounds; instances } ->
      (* %h: exact hex floats, so the rendering (and therefore every cache
         fingerprint derived from it) never depends on decimal rounding. *)
      Printf.sprintf "scale:d=%h,r=%h,i=%h" deadline rounds instances
    | B_absolute b -> "abs:" ^ Smt.Solver.budget_fingerprint b

  (* The display name is deliberately excluded: renaming a rung must not
     invalidate cache entries recorded under it, mirroring
     Profiles.solver_fingerprint. *)
  let fingerprint r =
    Printf.sprintf "trig=%s;prune=%s;budget=%s" (triggers_tag r.r_triggers)
      (pruning_tag r.r_pruning) (budget_tag r.r_budget)

  let scale_budget (b : Smt.Solver.budget) ~deadline ~rounds ~instances =
    let s frac x = max 1 (int_of_float (ceil (float_of_int x *. frac))) in
    {
      Smt.Solver.deadline_s = b.Smt.Solver.deadline_s *. deadline;
      max_rounds = s rounds b.Smt.Solver.max_rounds;
      max_instances_per_round = s instances b.Smt.Solver.max_instances_per_round;
      max_instances_per_quant = s instances b.Smt.Solver.max_instances_per_quant;
      sat_conflict_budget = s instances b.Smt.Solver.sat_conflict_budget;
      bb_budget = s instances b.Smt.Solver.bb_budget;
      combination_pairs_per_round = s instances b.Smt.Solver.combination_pairs_per_round;
      ring_pairs_budget = s instances b.Smt.Solver.ring_pairs_budget;
    }

  let apply_config r (cfg : Smt.Solver.config) =
    let cfg =
      match r.r_triggers with
      | T_profile -> cfg
      | T_conservative -> { cfg with Smt.Solver.trigger_policy = Smt.Triggers.Conservative }
      | T_liberal -> { cfg with Smt.Solver.trigger_policy = Smt.Triggers.Liberal }
    in
    match r.r_budget with
    | B_profile -> cfg
    | B_scaled { deadline; rounds; instances } ->
      {
        cfg with
        Smt.Solver.budget = scale_budget cfg.Smt.Solver.budget ~deadline ~rounds ~instances;
      }
    | B_absolute b -> { cfg with Smt.Solver.budget = b }

  let apply_pruning r profile_prunes =
    match r.r_pruning with
    | P_profile -> profile_prunes
    | P_prune -> true
    | P_full -> false
end

module Ladder = struct
  type t = { l_name : string; l_rungs : Rung.t array }

  let make ?(name = "custom") rungs =
    if rungs = [] then invalid_arg "Vladder.Ladder.make: a ladder needs at least one rung";
    { l_name = name; l_rungs = Array.of_list rungs }

  let name l = l.l_name
  let rungs l = Array.copy l.l_rungs
  let length l = Array.length l.l_rungs
  let rung l i = l.l_rungs.(i)

  let schema_version = "verus-ladder/1"

  let fingerprint l =
    let b = Buffer.create 256 in
    Buffer.add_string b schema_version;
    Array.iter
      (fun r ->
        Buffer.add_char b '|';
        Buffer.add_string b (Rung.fingerprint r))
      l.l_rungs;
    Vbase.Hash.string128 (Buffer.contents b)

  let widens l =
    Array.exists (fun (r : Rung.t) -> r.Rung.r_pruning = Rung.P_full) l.l_rungs

  let identity = make ~name:"profile" [ Rung.profile_rung ]

  let quick =
    {
      Rung.r_name = "quick";
      r_triggers = Rung.T_conservative;
      r_pruning = Rung.P_prune;
      r_budget = Rung.B_scaled { deadline = 0.25; rounds = 0.25; instances = 0.25 };
    }

  let steady =
    {
      Rung.r_name = "steady";
      r_triggers = Rung.T_profile;
      r_pruning = Rung.P_profile;
      r_budget = Rung.B_scaled { deadline = 0.5; rounds = 0.5; instances = 0.5 };
    }

  let escalate = make ~name:"escalate" [ quick; steady; Rung.profile_rung ]

  let deep =
    make ~name:"deep"
      [
        quick;
        {
          Rung.r_name = "wide";
          r_triggers = Rung.T_liberal;
          r_pruning = Rung.P_profile;
          r_budget = Rung.B_profile;
        };
        Rung.profile_rung;
        {
          Rung.r_name = "boost";
          r_triggers = Rung.T_profile;
          r_pruning = Rung.P_profile;
          r_budget = Rung.B_scaled { deadline = 2.0; rounds = 2.0; instances = 2.0 };
        };
      ]

  let cautious =
    make ~name:"cautious"
      [
        {
          Rung.r_name = "narrow";
          r_triggers = Rung.T_conservative;
          r_pruning = Rung.P_prune;
          r_budget = Rung.B_profile;
        };
        Rung.profile_rung;
      ]

  let builtins = [ ("escalate", escalate); ("deep", deep); ("cautious", cautious) ]

  let by_name n = List.assoc_opt n builtins

  let pin l i =
    if i < 0 || i >= length l then
      Error
        (Printf.sprintf "ladder %s has rungs 0..%d, no rung %d" l.l_name (length l - 1) i)
    else
      Ok (make ~name:(Printf.sprintf "%s@%d" l.l_name i) [ l.l_rungs.(i) ])

  let of_budget ?(name = "budget-override") b =
    make ~name
      [
        {
          Rung.r_name = "override";
          r_triggers = Rung.T_profile;
          r_pruning = Rung.P_profile;
          r_budget = Rung.B_absolute b;
        };
      ]
end

(* --------------------- bench-document schema ----------------------- *)

module J = Vbase.Json

let bench_schema = "verus-ladder-bench/1"

(* BENCH_ladder.json: the escalation-ladder ablation.  Each row runs the
   same program x profile three ways — monolithic (ladder-free), cold
   escalate ladder (fills a cache), and warm profile-guided (jumps each
   obligation straight to its recorded winning rung).  The validator
   pins the soundness bits (all three digests equal, warm runs waste
   zero lower-rung attempts) and the point of the exercise (at least
   one row where the warm run beats the monolithic one). *)
let validate_ladder_bench (j : J.t) =
  let ( let* ) = Result.bind in
  let str o k = match J.member k o with Some (J.String s) -> Some s | _ -> None in
  let num o k = match J.member k o with Some v -> J.to_float v | None -> None in
  let int_ o k = match J.member k o with Some (J.Int n) -> Some n | _ -> None in
  let bool_ o k = match J.member k o with Some (J.Bool b) -> Some b | _ -> None in
  let need what o k f =
    match f o k with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "%s: missing or mistyped %S" what k)
  in
  let* () =
    match str j "schema" with
    | Some s when s = bench_schema -> Ok ()
    | Some s -> Error (Printf.sprintf "schema %S (expected %s)" s bench_schema)
    | None -> Error "missing schema tag"
  in
  let* _ = need "doc" j "ladder" str in
  let* rows =
    match J.member "rows" j with
    | Some (J.List (_ :: _ as rows)) -> Ok rows
    | _ -> Error "rows: missing or empty"
  in
  let* improved =
    List.fold_left
      (fun acc row ->
        let* improved = acc in
        let* _ = need "rows[]" row "program" str in
        let* _ = need "rows[]" row "profile" str in
        let* mono_s = need "rows[]" row "monolithic_s" num in
        let* _ = need "rows[]" row "ladder_s" num in
        let* warm_s = need "rows[]" row "warm_s" num in
        let* _ = need "rows[]" row "escalations" int_ in
        let* _ = need "rows[]" row "hint_starts" int_ in
        let* wasted = need "rows[]" row "warm_wasted_attempts" int_ in
        let* () =
          if wasted = 0 then Ok ()
          else Error (Printf.sprintf "rows[]: warm run wasted %d lower-rung attempts" wasted)
        in
        let* verdicts = need "rows[]" row "verdicts_equal" bool_ in
        let* wins =
          match J.member "wins_per_rung" row with
          | Some (J.List (_ :: _ as ws))
            when List.for_all (function J.Int n -> n >= 0 | _ -> false) ws ->
            Ok ws
          | _ -> Error "rows[]: wins_per_rung missing or mistyped"
        in
        let* () =
          if List.exists (function J.Int n -> n > 0 | _ -> false) wins then Ok ()
          else Error "rows[]: no obligation won at any rung"
        in
        if verdicts then Ok (improved || warm_s < mono_s)
        else Error "rows[]: verdicts_equal is false")
      (Ok false) rows
  in
  let* () =
    if improved then Ok ()
    else Error "no row's warm profile-guided run beat the monolithic one"
  in
  let* warm =
    match J.member "warm" j with
    | Some (J.Obj _ as w) -> Ok w
    | _ -> Error "missing warm object"
  in
  let* _ = need "warm" warm "cache_hits" int_ in
  let* _ = need "warm" warm "hint_starts" int_ in
  let* wasted = need "warm" warm "wasted_lower_rung_attempts" int_ in
  let* () =
    if wasted = 0 then Ok ()
    else Error (Printf.sprintf "warm run wasted %d lower-rung attempts" wasted)
  in
  let* ok = need "warm" warm "digest_equal_cold" bool_ in
  if ok then Ok () else Error "warm.digest_equal_cold is false"
