(** The per-obligation escalation ladder: the solver-side rungs above the
    {!Vflow} prescreen (rung 0).

    "Tunable Automation in Automated Program Verification" argues that
    automation strength should be a per-obligation dial, not a global
    switch.  This library is the dial: a {!Rung.t} names one solver
    configuration (trigger policy, search budgets, context-pruning level)
    relative to a framework profile, and a {!Ladder.t} is the ordered
    non-empty list of rungs an obligation climbs — each attempt that does
    not prove the goal escalates to the next, stronger rung.

    Layering: vladder sits below lib/core (which wires it into the
    driver's retry loop) and depends only on vbase and smt — it knows
    nothing of profiles, caching or scheduling.  A rung is therefore
    expressed as a {e transformation} of a profile's base
    {!Smt.Solver.config} and pruning decision, applied by the driver. *)

module Rung : sig
  (** E-matching trigger-policy override.  Only the solver-side policy is
      affected: the profile-level policy also steers curated-axiom trigger
      selection at encoding time, which happens once per program, before
      any rung runs. *)
  type triggers =
    | T_profile  (** keep the profile's solver trigger policy *)
    | T_conservative  (** force minimal trigger groups *)
    | T_liberal  (** force broad (Dafny-style) trigger selection *)

  (** Context-pruning override. *)
  type pruning =
    | P_profile  (** prune iff the profile prunes *)
    | P_prune  (** always prune to symbols reachable from the VC *)
    | P_full
        (** ship the full axiom set even under a pruning profile.  A
            ladder containing such a rung {e widens} beyond the
            profile-level context — see {!Ladder.widens} (the driver must
            fingerprint the full axiom set for cache soundness) *)

  (** Search-budget override, relative to the profile's budget. *)
  type budget_spec =
    | B_profile  (** the profile's own budget, untouched *)
    | B_scaled of { deadline : float; rounds : float; instances : float }
        (** fractions of the profile budget: [deadline] scales the
            wall-clock deadline, [rounds] the instantiation-round cap,
            [instances] every per-round/per-quantifier/conflict-style
            counter (each clamped to at least 1) *)
    | B_absolute of Smt.Solver.budget  (** a fully explicit budget *)

  type t = {
    r_name : string;  (** display name, excluded from the fingerprint *)
    r_triggers : triggers;
    r_pruning : pruning;
    r_budget : budget_spec;
  }

  val profile_rung : t
  (** The identity rung ["full"]: profile triggers, profile pruning,
      profile budget — one attempt of exactly the monolithic solve. *)

  val fingerprint : t -> string
  (** Canonical one-line [k=v;...] rendering of everything semantic about
      the rung (name excluded).  [B_absolute] budgets render through
      {!Smt.Solver.budget_fingerprint}. *)

  val scale_budget :
    Smt.Solver.budget ->
    deadline:float ->
    rounds:float ->
    instances:float ->
    Smt.Solver.budget
  (** The [B_scaled] arithmetic: integer knobs round up and clamp to
      [>= 1], the deadline scales directly. *)

  val apply_config : t -> Smt.Solver.config -> Smt.Solver.config
  (** The rung's effective solver configuration, given the profile's
      base config (with [certify] already set by the caller). *)

  val apply_pruning : t -> bool -> bool
  (** [apply_pruning r profile_prunes] — whether this rung's context is
      pruned. *)
end

module Ladder : sig
  type t
  (** An ordered, non-empty sequence of rungs.  Attempts run in order;
      a non-[Unsat] answer below the top rung escalates (an [Unsat] at
      any rung is definitive: it was obtained from a subset of the full
      context under a sound trigger policy, so it implies the monolithic
      answer).  The top rung's answer is final, whatever it is. *)

  val make : ?name:string -> Rung.t list -> t
  (** Raises [Invalid_argument] on the empty list. *)

  val name : t -> string
  val rungs : t -> Rung.t array
  (** A fresh copy; mutation does not affect the ladder. *)

  val length : t -> int
  val rung : t -> int -> Rung.t

  val fingerprint : t -> string
  (** 128-bit content hash over the ordered rung fingerprints, salted
      with the ladder schema version — what the verification cache mixes
      into its per-VC keys so entries recorded under one ladder never
      satisfy a lookup under another. *)

  val widens : t -> bool
  (** Whether any rung ships more context than the profile would
      ([Rung.P_full]); such ladders must be fingerprinted against the
      full axiom set. *)

  val identity : t
  (** The single-rung ladder [{profile_rung}] — exactly the monolithic
      solve.  What the driver runs when no ladder is configured. *)

  val escalate : t
  (** The default 3-rung ladder: [quick] (conservative triggers, pruned
      context, quarter budgets) → [steady] (profile configuration at half
      budgets) → [full] (the untouched profile).  Its top rung equals the
      monolithic solve, so final verdicts match a ladder-free run. *)

  val deep : t
  (** 4 rungs: [quick] → [wide] (liberal triggers at profile budget — the
      rung VL010-steering skips when the axiom set has a flagged matching
      loop) → [full] → [boost] (double budgets).  The boost rung can
      prove obligations the monolithic configuration times out on, so
      verdicts may {e improve} over a ladder-free run. *)

  val cautious : t
  (** 2 rungs: [narrow] (conservative triggers, pruned context, profile
      budget) → [full]. *)

  val builtins : (string * t) list
  (** The named ladders the CLI's [--ladder] flag and the daemon's
      [ladder] param accept: [escalate], [deep], [cautious]. *)

  val by_name : string -> t option

  val pin : t -> int -> (t, string) result
  (** [pin l n] — the single-rung ladder holding only rung [n] of [l]
      (the CLI's [--rung n]); [Error] when [n] is out of bounds. *)

  val of_budget : ?name:string -> Smt.Solver.budget -> t
  (** The deprecated budget-override surface as a single-rung ladder:
      profile triggers and pruning, [B_absolute] budget.  What
      [Driver.Config.with_budget] and the CLI's [--deadline] /
      [--max-rounds] sugar construct. *)
end

val bench_schema : string
(** ["verus-ladder-bench/1"], the schema tag of [BENCH_ladder.json]. *)

val validate_ladder_bench : Vbase.Json.t -> (unit, string) result
(** Structural validation of the ladder ablation document the bench
    harness emits; the harness self-validates before writing.  Beyond
    shape, it pins the claims: every row's three arms (monolithic, cold
    ladder, warm profile-guided) agree on the result digest, warm runs
    waste zero lower-rung attempts, and at least one row's warm run is
    faster than its monolithic one. *)
