module T = Smt.Term
module S = Smt.Sort
open Verus.Vsync

(* Fields:
   - capacity : Constant int
   - live     : Map block -> 1   (block handed out to a client)
   - delayed  : Map block -> 1   (freed cross-thread, awaiting collection)

   malloc b:     add live[b]           (b fresh: safety condition)
   free_local b: remove live[b]
   free_remote b:remove live[b], add delayed[b]
   collect b:    remove delayed[b]                                        *)

let machine ~capacity =
  let i n = T.int_of n in
  let fields =
    [
      { f_name = "capacity"; f_strategy = Constant; f_sort = S.Int; f_key_sort = None };
      { f_name = "live"; f_strategy = Map; f_sort = S.Int; f_key_sort = Some S.Int };
      { f_name = "delayed"; f_strategy = Map; f_sort = S.Int; f_key_sort = Some S.Int };
    ]
  in
  let b = T.bvar "b!q" S.Int in
  let forall_blocks body = T.forall [ ("b!q", S.Int) ] body in
  let init (s : state) =
    T.and_
      [
        T.eq (s.get "capacity") (i capacity);
        forall_blocks (T.not_ (s.map_dom "live" b));
        forall_blocks (T.not_ (s.map_dom "delayed" b));
      ]
  in
  let invariant (s : state) =
    T.and_
      [
        (* A block is never both live and delayed (no aliased ownership). *)
        forall_blocks (T.not_ (T.and_ [ s.map_dom "live" b; s.map_dom "delayed" b ]));
        (* Tracked blocks are within the page. *)
        forall_blocks
          (T.implies
             (T.or_ [ s.map_dom "live" b; s.map_dom "delayed" b ])
             (T.and_ [ T.le (i 0) b; T.lt b (s.get "capacity") ]));
      ]
  in
  let p n params = List.nth params n in
  let malloc =
    {
      t_name = "malloc";
      t_params = [ ("b", S.Int) ];
      t_actions =
        [
          Require
            (fun (s, params) ->
              T.and_
                [
                  T.le (i 0) (p 0 params);
                  T.lt (p 0 params) (s.get "capacity");
                  (* The allocator only hands out blocks on its free list:
                     neither live nor awaiting collection. *)
                  T.not_ (s.map_dom "live" (p 0 params));
                  T.not_ (s.map_dom "delayed" (p 0 params));
                ]);
          Map_add ("live", (fun (_, params) -> p 0 params), fun _ -> i 1);
        ];
    }
  in
  let free_local =
    {
      t_name = "free_local";
      t_params = [ ("b", S.Int) ];
      t_actions = [ Map_remove ("live", fun (_, params) -> p 0 params) ];
    }
  in
  let free_remote =
    {
      t_name = "free_remote";
      t_params = [ ("b", S.Int) ];
      t_actions =
        [
          Map_remove ("live", fun (_, params) -> p 0 params);
          Map_add ("delayed", (fun (_, params) -> p 0 params), fun _ -> i 1);
        ];
    }
  in
  let collect =
    {
      t_name = "collect";
      t_params = [ ("b", S.Int) ];
      t_actions = [ Map_remove ("delayed", fun (_, params) -> p 0 params) ];
    }
  in
  {
    m_name = "alloc_delayed_free";
    m_fields = fields;
    m_init = init;
    m_transitions = [ malloc; free_local; free_remote; collect ];
    m_invariant = invariant;
    m_properties =
      [
        ( "no_dual_ownership",
          fun s -> forall_blocks (T.not_ (T.and_ [ s.map_dom "live" b; s.map_dom "delayed" b ]))
        );
      ];
  }

let check ?config ~capacity () = Verus.Vsync.check ?config (machine ~capacity)
