exception Heap_corruption of string

let page_size = 64 * 1024
let max_alloc = 128 * 1024

(* Size classes: powers of two, 8 bytes .. 128 KiB.  (Large classes use
   multi-page "large pages".) *)
let class_of_size size =
  if size <= 0 || size > max_alloc then invalid_arg "Alloc: unsupported size";
  let rec go c bytes = if bytes >= size then c else go (c + 1) (bytes * 2) in
  go 0 8

let class_bytes c = 8 lsl c
let n_classes = class_of_size max_alloc + 1

type page = {
  p_base : int;
  p_bytes : int; (* page footprint (page_size, or more for large classes) *)
  p_class : int;
  p_capacity : int;
  p_owner : int;
  mutable p_free : int list; (* local free list: block addresses *)
  p_delayed : int list Atomic.t; (* cross-thread frees (Treiber stack) *)
  mutable p_used : int;
  p_allocated : Bytes.t; (* checked mode: per-block allocation bitmap *)
}

type heap = {
  h_id : int;
  h_pages : page list ref array; (* per class: pages owned by this heap *)
  h_lock : Mutex.t; (* one combiner lock per heap (threads may share) *)
}

type t = {
  os : Os_mem.t;
  checked : bool;
  heaps : heap array;
  page_of : (int, page) Hashtbl.t; (* addr / page_size -> page *)
  global_lock : Mutex.t; (* segment carving + page table *)
  mutable cursor : (int * int) option; (* segment base, next offset *)
  mutable pages_live : int;
}

let create ?(checked = true) ?(heaps = 4) os =
  {
    os;
    checked;
    heaps =
      Array.init heaps (fun h_id ->
          { h_id; h_pages = Array.init n_classes (fun _ -> ref []); h_lock = Mutex.create () });
    page_of = Hashtbl.create 256;
    global_lock = Mutex.create ();
    cursor = None;
    pages_live = 0;
  }

let heap_count t = Array.length t.heaps
let pages_in_use t = t.pages_live

(* --- checked-mode bitmap helpers ------------------------------------- *)

let block_index p addr =
  let off = addr - p.p_base in
  if off < 0 || off mod class_bytes p.p_class <> 0 then
    raise (Heap_corruption "pointer does not address a block");
  let i = off / class_bytes p.p_class in
  if i >= p.p_capacity then raise (Heap_corruption "pointer past page capacity");
  i

let bit_get b i = Char.code (Bytes.get b (i / 8)) land (1 lsl (i mod 8)) <> 0

let bit_set b i v =
  let cur = Char.code (Bytes.get b (i / 8)) in
  let mask = 1 lsl (i mod 8) in
  Bytes.set b (i / 8) (Char.chr (if v then cur lor mask else cur land lnot mask))

(* --- page management -------------------------------------------------- *)

(* [None] when the OS refuses the backing mapping (exhaustion or an
   injected transient OOM) — the allocator degrades instead of crashing. *)
let carve_page t ~owner ~cls =
  Mutex.lock t.global_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.global_lock)
    (fun () ->
      let bytes = max page_size (class_bytes cls) in
      let base =
        match t.cursor with
        | Some (seg, off) when off + bytes <= Os_mem.segment_size ->
          t.cursor <- Some (seg, off + bytes);
          Some (seg + off)
        | _ -> (
          match Os_mem.mmap_opt t.os with
          | None -> None
          | Some seg ->
            t.cursor <- Some (seg, bytes);
            Some seg)
      in
      match base with
      | None -> None
      | Some base ->
        let capacity = bytes / class_bytes cls in
        let p =
          {
            p_base = base;
            p_bytes = bytes;
            p_class = cls;
            p_capacity = capacity;
            p_owner = owner;
            p_free = List.init capacity (fun i -> base + (i * class_bytes cls));
            p_delayed = Atomic.make [];
            p_used = 0;
            p_allocated = Bytes.make ((capacity + 7) / 8) '\000';
          }
        in
        for i = 0 to (bytes / page_size) - 1 do
          Hashtbl.replace t.page_of ((base / page_size) + i) p
        done;
        t.pages_live <- t.pages_live + 1;
        Some p)

let page_of_addr t addr =
  match Hashtbl.find_opt t.page_of (addr / page_size) with
  | Some p -> p
  | None -> raise (Heap_corruption "free of pointer outside any page")

(* Owner-side collection of the cross-thread delayed-free stack. *)
let collect_delayed t p =
  match Atomic.exchange p.p_delayed [] with
  | [] -> ()
  | blocks ->
    List.iter
      (fun addr ->
        if t.checked then begin
          let i = block_index p addr in
          if not (bit_get p.p_allocated i) then raise (Heap_corruption "delayed double free");
          bit_set p.p_allocated i false
        end;
        p.p_free <- addr :: p.p_free;
        p.p_used <- p.p_used - 1)
      blocks

let malloc_opt t ~heap size =
  let cls = class_of_size size in
  let h = t.heaps.(heap) in
  Mutex.lock h.h_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock h.h_lock)
    (fun () ->
      let rec find_page = function
        | [] -> None
        | p :: rest ->
          if p.p_free = [] then collect_delayed t p;
          if p.p_free <> [] then Some p else find_page rest
      in
      let p =
        match find_page !(h.h_pages.(cls)) with
        | Some p -> Some p
        | None -> (
          match carve_page t ~owner:heap ~cls with
          | Some p ->
            h.h_pages.(cls) := p :: !(h.h_pages.(cls));
            Some p
          | None ->
            (* The OS refused the mapping (transient OOM).  Degrade
               gracefully: harvest every page's delayed-free stack — a
               cross-thread free may have returned a block since the scan
               above — and only then report failure to the caller. *)
            List.iter (fun p -> collect_delayed t p) !(h.h_pages.(cls));
            find_page !(h.h_pages.(cls)))
      in
      match p with
      | None -> None
      | Some p -> (
        match p.p_free with
        | [] -> assert false
        | addr :: rest ->
          p.p_free <- rest;
          p.p_used <- p.p_used + 1;
          if t.checked then begin
            let i = block_index p addr in
            if bit_get p.p_allocated i then raise (Heap_corruption "allocating a live block");
            bit_set p.p_allocated i true
          end;
          Some addr))

let malloc t ~heap size =
  match malloc_opt t ~heap size with
  | Some addr -> addr
  | None -> failwith "Alloc: out of memory"

let free t ~heap addr =
  let p = page_of_addr t addr in
  if p.p_owner = heap then begin
    let h = t.heaps.(heap) in
    Mutex.lock h.h_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock h.h_lock)
      (fun () ->
        if t.checked then begin
          let i = block_index p addr in
          if not (bit_get p.p_allocated i) then raise (Heap_corruption "double free");
          bit_set p.p_allocated i false
        end;
        p.p_free <- addr :: p.p_free;
        p.p_used <- p.p_used - 1)
  end
  else begin
    (* Cross-thread: push onto the page's atomic delayed-free stack (the
       §4.2.4 lock-free list; permissions ride along as ghost state in the
       verified version). *)
    if t.checked then ignore (block_index p addr);
    let rec push () =
      let old = Atomic.get p.p_delayed in
      if not (Atomic.compare_and_set p.p_delayed old (addr :: old)) then push ()
    in
    push ()
  end

let usable_size t addr =
  let p = page_of_addr t addr in
  class_bytes p.p_class
