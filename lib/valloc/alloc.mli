(** The mimalloc-style allocator (§4.2.4): per-heap size-class pages carved
    from OS segments, local free lists for same-thread frees, and an atomic
    (Treiber-stack) delayed-free list per page for cross-thread
    deallocations — the structure whose ghost-permission protocol the paper
    verifies; {!Alloc_model} is that protocol as a VerusSync machine.

    Like the paper's Verus-mimalloc, allocations above 128 KiB are not
    supported (they fail with [Invalid_argument]).

    [checked = true] is the "verified allocator" configuration: it keeps
    per-block allocation bitmaps and validates every operation (double
    free, foreign pointer, size-class integrity) — the bookkeeping whose
    cost Figure 13 measures.  [checked = false] plays the role of the
    unverified C original. *)

type t

val create : ?checked:bool -> ?heaps:int -> Os_mem.t -> t

val max_alloc : int
(** 128 KiB. *)

val malloc : t -> heap:int -> int -> int
(** [malloc t ~heap size] returns the block address.  The block is
    exclusively owned until freed (the non-aliasing property the test
    suite checks).  Raises [Failure] when the OS refuses backing memory
    and no freed block can be reclaimed — use {!malloc_opt} to handle
    that case without an exception. *)

val malloc_opt : t -> heap:int -> int -> int option
(** As {!malloc}, but degrades gracefully under memory pressure: on a
    refused mapping (e.g. the ["mmap.oom"] fault site of {!Os_mem}) it
    first harvests every delayed-free stack in the size class, and
    returns [None] only if no block can be produced at all.  A later call
    may succeed — transient OOM does not poison the allocator. *)

val free : t -> heap:int -> int -> unit
(** May be called from a different heap than the allocating one
    (cross-thread deallocation path). *)

val usable_size : t -> int -> int
(** Size class capacity of an allocated block. *)

val heap_count : t -> int
val pages_in_use : t -> int

exception Heap_corruption of string
(** Raised by [checked] allocators on protocol violations. *)
