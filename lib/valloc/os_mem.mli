(** The simulated OS memory interface the allocator is built over — the
    trusted [mmap] specification of §4.2.4: coarse-grained, segment-aligned
    allocations only.

    Addresses are flat integers; each mapped segment is backed by real
    [Bytes], so allocator clients genuinely read and write the memory they
    are handed (the aliasing tests depend on this). *)

val segment_size : int
(** 4 MiB, the only granularity the OS hands out. *)

type t

val create : ?max_segments:int -> unit -> t

val mmap : t -> int
(** Returns the base address of a fresh zeroed segment. *)

val munmap : t -> int -> unit
(** Base address must come from [mmap]; raises on double-unmap. *)

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit
val blit_fill : t -> addr:int -> len:int -> byte:int -> unit
val check_fill : t -> addr:int -> len:int -> byte:int -> bool
val mapped_segments : t -> int
