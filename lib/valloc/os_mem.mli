(** The simulated OS memory interface the allocator is built over — the
    trusted [mmap] specification of §4.2.4: coarse-grained, segment-aligned
    allocations only.

    Addresses are flat integers; each mapped segment is backed by real
    [Bytes], so allocator clients genuinely read and write the memory they
    are handed (the aliasing tests depend on this). *)

val segment_size : int
(** 4 MiB, the only granularity the OS hands out. *)

type t

val create : ?faults:Vbase.Faultplan.t -> ?max_segments:int -> unit -> t
(** [faults] arms the ["mmap.oom"] fault site: when it fires, the next
    {!mmap_opt} returns [None] ({!mmap} raises) — a transient allocation
    failure under memory pressure.  The mapping is refused, not consumed:
    a later call may succeed. *)

val mmap : t -> int
(** Returns the base address of a fresh zeroed segment.  Raises [Failure]
    on exhaustion or injected OOM — callers that can degrade gracefully
    should use {!mmap_opt}. *)

val mmap_opt : t -> int option
(** As {!mmap}, but [None] on exhaustion or injected transient OOM. *)

val oom_failures : t -> int
(** How many mappings the ["mmap.oom"] fault site has refused. *)

val munmap : t -> int -> unit
(** Base address must come from [mmap]; raises on double-unmap. *)

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit
val blit_fill : t -> addr:int -> len:int -> byte:int -> unit
val check_fill : t -> addr:int -> len:int -> byte:int -> bool
val mapped_segments : t -> int
