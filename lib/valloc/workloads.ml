type config = { checked : bool; heaps : int; threads : int }

let names =
  [
    "cfrac";
    "larsonN-sized";
    "sh6benchN";
    "xmalloc-testN";
    "cache-scratch1";
    "cache-scratchN";
    "glibc-simple";
    "glibc-thread";
  ]

let with_alloc (cfg : config) f =
  let os = Os_mem.create ~max_segments:512 () in
  let a = Alloc.create ~checked:cfg.checked ~heaps:cfg.heaps os in
  let t0 = Unix.gettimeofday () in
  f a;
  Unix.gettimeofday () -. t0

let spawn_threads n body =
  let domains = List.init n (fun tid -> Domain.spawn (fun () -> body tid)) in
  List.iter Domain.join domains

(* cfrac: single-threaded, many short-lived small allocations with a
   modest working set (the paper calls it a "real world" benchmark). *)
let cfrac cfg =
  with_alloc cfg (fun a ->
      let rng = Vbase.Rng.create ~seed:1 in
      let live = Array.make 512 (-1) in
      for i = 0 to 200_000 do
        let slot = i mod 512 in
        if live.(slot) >= 0 then Alloc.free a ~heap:0 live.(slot);
        live.(slot) <- Alloc.malloc a ~heap:0 (8 + Vbase.Rng.int rng 56)
      done)

(* larson: server-style — each thread keeps a slot ring and replaces
   random entries; a fraction of frees happen on the "wrong" thread. *)
let larson cfg =
  with_alloc cfg (fun a ->
      let shared = Array.make (cfg.threads * 64) (-1) in
      let locks = Array.init cfg.threads (fun _ -> Mutex.create ()) in
      spawn_threads cfg.threads (fun tid ->
          let heap = tid mod cfg.heaps in
          let rng = Vbase.Rng.create ~seed:(tid + 10) in
          for _ = 1 to 30_000 do
            (* Pick any slot — possibly another thread's: cross-thread
               free. *)
            let victim = Vbase.Rng.int rng (Array.length shared) in
            let owner = victim / 64 in
            Mutex.lock locks.(owner);
            let old = shared.(victim) in
            shared.(victim) <- -2 (* claimed *);
            Mutex.unlock locks.(owner);
            if old >= 0 then Alloc.free a ~heap old;
            let fresh = Alloc.malloc a ~heap (8 + Vbase.Rng.int rng 1016) in
            Mutex.lock locks.(owner);
            shared.(victim) <- fresh;
            Mutex.unlock locks.(owner)
          done))

(* sh6bench: batched alloc, then free everything, repeat. *)
let sh6bench cfg =
  with_alloc cfg (fun a ->
      spawn_threads cfg.threads (fun tid ->
          let heap = tid mod cfg.heaps in
          let rng = Vbase.Rng.create ~seed:(tid + 20) in
          for _ = 1 to 30 do
            let batch = Array.init 1000 (fun _ -> Alloc.malloc a ~heap (8 + Vbase.Rng.int rng 120)) in
            Array.iter (fun b -> Alloc.free a ~heap b) batch
          done))

(* xmalloc-test: producer/consumer — blocks are freed by the next thread. *)
let xmalloc cfg =
  with_alloc cfg (fun a ->
      let n = cfg.threads in
      let mailboxes = Array.init n (fun _ -> Atomic.make []) in
      spawn_threads n (fun tid ->
          let heap = tid mod cfg.heaps in
          let next = (tid + 1) mod n in
          for _ = 1 to 20_000 do
            (* Drain our mailbox (blocks other threads allocated). *)
            List.iter (fun b -> Alloc.free a ~heap b) (Atomic.exchange mailboxes.(tid) []);
            let b = Alloc.malloc a ~heap 64 in
            let rec push () =
              let old = Atomic.get mailboxes.(next) in
              if not (Atomic.compare_and_set mailboxes.(next) old (b :: old)) then push ()
            in
            push ()
          done;
          List.iter (fun b -> Alloc.free a ~heap b) (Atomic.exchange mailboxes.(tid) [])))

(* cache-scratch: allocate a buffer per thread and hammer writes on it. *)
let cache_scratch cfg =
  let os = Os_mem.create () in
  let a = Alloc.create ~checked:cfg.checked ~heaps:cfg.heaps os in
  let t0 = Unix.gettimeofday () in
  spawn_threads cfg.threads (fun tid ->
      let heap = tid mod cfg.heaps in
      let b = Alloc.malloc a ~heap 4096 in
      for i = 0 to 400_000 do
        Os_mem.write_byte os (b + (i land 1023)) i
      done;
      Alloc.free a ~heap b);
  Unix.gettimeofday () -. t0

(* glibc-simple: tight alloc/free pairs. *)
let glibc_simple cfg =
  with_alloc cfg (fun a ->
      for i = 1 to 300_000 do
        let b = Alloc.malloc a ~heap:0 (8 + (i land 255)) in
        Alloc.free a ~heap:0 b
      done)

let glibc_thread cfg =
  with_alloc cfg (fun a ->
      spawn_threads cfg.threads (fun tid ->
          let heap = tid mod cfg.heaps in
          for i = 1 to 100_000 do
            let b = Alloc.malloc a ~heap (8 + (i land 255)) in
            Alloc.free a ~heap b
          done))

let run ~name cfg =
  match name with
  | "cfrac" -> cfrac cfg
  | "larsonN-sized" -> larson cfg
  | "sh6benchN" -> sh6bench cfg
  | "xmalloc-testN" -> xmalloc cfg
  | "cache-scratch1" -> cache_scratch { cfg with threads = 1 }
  | "cache-scratchN" -> cache_scratch cfg
  | "glibc-simple" -> glibc_simple cfg
  | "glibc-thread" -> glibc_thread cfg
  | _ -> invalid_arg ("Workloads.run: unknown workload " ^ name)

(* ------------------------------------------------------------------ *)
(* Aliasing crosscheck                                                 *)
(* ------------------------------------------------------------------ *)

let crosscheck_aliasing ?(ops = 20_000) ?(seed = 9) () =
  let os = Os_mem.create ~max_segments:512 () in
  let a = Alloc.create ~checked:true ~heaps:2 os in
  let rng = Vbase.Rng.create ~seed in
  (* live: address -> (size, fill byte) *)
  let live : (int, int * int) Hashtbl.t = Hashtbl.create 256 in
  let error = ref None in
  (try
     for i = 1 to ops do
       if !error = None then begin
         if Vbase.Rng.int rng 100 < 60 || Hashtbl.length live = 0 then begin
           let size = 1 + Vbase.Rng.int rng 2000 in
           let addr = Alloc.malloc a ~heap:(Vbase.Rng.int rng 2) size in
           (* Freshness: must not overlap any live block. *)
           Hashtbl.iter
             (fun b (sz, _) ->
               if addr < b + sz && b < addr + size && !error = None then
                 error := Some (Printf.sprintf "op %d: %#x overlaps %#x" i addr b))
             live;
           let byte = i land 0xFF in
           Os_mem.blit_fill os ~addr ~len:size ~byte;
           Hashtbl.replace live addr (size, byte)
         end
         else begin
           (* Free a random live block, verifying its contents survived. *)
           let keys = Hashtbl.fold (fun k _ acc -> k :: acc) live [] in
           let addr = List.nth keys (Vbase.Rng.int rng (List.length keys)) in
           let size, byte = Hashtbl.find live addr in
           if not (Os_mem.check_fill os ~addr ~len:size ~byte) then
             error := Some (Printf.sprintf "op %d: contents of %#x corrupted" i addr);
           Hashtbl.remove live addr;
           Alloc.free a ~heap:(Vbase.Rng.int rng 2) addr
         end
       end
     done
   with e -> error := Some (Printexc.to_string e));
  match !error with None -> Ok () | Some e -> Error e
