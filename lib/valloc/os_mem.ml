let segment_size = 4 * 1024 * 1024

type t = {
  segments : (int, Bytes.t) Hashtbl.t; (* segment index -> backing *)
  mutable next : int;
  max_segments : int;
  lock : Mutex.t;
  faults : Vbase.Faultplan.t option;
      (* fault site "mmap.oom": transient allocation failures — the mmap
         syscall returning MAP_FAILED under memory pressure.  The mapping
         is simply refused; a later call may succeed. *)
  mutable oom_failures : int;
}

let create ?faults ?(max_segments = 256) () =
  {
    segments = Hashtbl.create 16;
    next = 1;
    max_segments;
    lock = Mutex.create ();
    faults;
    oom_failures = 0;
  }

let mmap_opt t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let transient_oom =
        match t.faults with
        | Some plan -> Vbase.Faultplan.fires plan "mmap.oom"
        | None -> false
      in
      if transient_oom || Hashtbl.length t.segments >= t.max_segments then begin
        if transient_oom then t.oom_failures <- t.oom_failures + 1;
        None
      end
      else begin
        let idx = t.next in
        t.next <- idx + 1;
        Hashtbl.replace t.segments idx (Bytes.make segment_size '\000');
        Some (idx * segment_size)
      end)

let mmap t =
  match mmap_opt t with
  | Some addr -> addr
  | None -> failwith "Os_mem: address space exhausted"

let oom_failures t = t.oom_failures

let munmap t addr =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if addr mod segment_size <> 0 then invalid_arg "Os_mem.munmap: unaligned";
      let idx = addr / segment_size in
      if not (Hashtbl.mem t.segments idx) then invalid_arg "Os_mem.munmap: not mapped";
      Hashtbl.remove t.segments idx)

let locate t addr =
  let idx = addr / segment_size in
  match Hashtbl.find_opt t.segments idx with
  | Some b -> (b, addr mod segment_size)
  | None -> invalid_arg (Printf.sprintf "Os_mem: access to unmapped address %#x" addr)

let read_byte t addr =
  let b, off = locate t addr in
  Char.code (Bytes.get b off)

let write_byte t addr v =
  let b, off = locate t addr in
  Bytes.set b off (Char.chr (v land 0xFF))

let blit_fill t ~addr ~len ~byte =
  let b, off = locate t addr in
  if off + len > Bytes.length b then invalid_arg "Os_mem.blit_fill: crosses segment";
  Bytes.fill b off len (Char.chr (byte land 0xFF))

let check_fill t ~addr ~len ~byte =
  let b, off = locate t addr in
  let rec go i = i >= len || (Bytes.get b (off + i) = Char.chr (byte land 0xFF) && go (i + 1)) in
  off + len <= Bytes.length b && go 0

let mapped_segments t = Hashtbl.length t.segments
