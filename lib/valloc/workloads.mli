(** The Figure 13 benchmark workloads, reimplemented as synthetic loads
    with the same character as their mimalloc-bench namesakes (the
    container has no C toolchain or original suite; see DESIGN.md).

    Each workload runs against a configurable allocator and returns elapsed
    seconds; the harness compares [checked] (Verus-mimalloc) against
    unchecked (the C original's role) and a single-heap/global-lock
    configuration (a naive allocator). *)

type config = {
  checked : bool;
  heaps : int;
  threads : int;
}

val run : name:string -> config -> float
(** Known names: cfrac, larsonN-sized, sh6benchN, xmalloc-testN,
    cache-scratch1, cache-scratchN, glibc-simple, glibc-thread.
    Raises [Invalid_argument] on unknown names. *)

val names : string list

val crosscheck_aliasing : ?ops:int -> ?seed:int -> unit -> (unit, string) Stdlib.result
(** The §4.2.4 correctness property, dynamically: random malloc/free/write
    traffic; every allocation must be fresh non-overlapping memory and
    writes through one block must never disturb another. *)
