(** VerusSync model of the allocator's cross-thread deallocation protocol
    (§4.2.4): memory permissions deposited into a page's atomic
    delayed-free list and collected by the page owner.

    Fields: [live] (blocks handed to clients), [delayed] (permissions
    parked in the atomic list).  The invariant — no block is simultaneously
    live and delayed, and blocks stay within the page capacity — is what
    makes "every allocation returns non-aliased memory" inductive. *)

val machine : capacity:int -> Verus.Vsync.machine
(** The delayed-free sharded state machine for a page of [capacity] blocks. *)

val check : ?config:Smt.Solver.config -> capacity:int -> unit -> Verus.Vsync.report
(** Discharge the machine's inductiveness obligations with the solver. *)
