(** Node Replication (NR, §4.2.2): turns a sequential data structure into a
    linearizable concurrent one by replicating it per "node" and funnelling
    mutations through a shared operation log (a cyclic buffer).

    This is the executable port of the system the paper verifies: writers
    reserve log slots with an atomic fetch-and-add on the tail, fill the
    slot, and replay the log into their local replica; readers take the
    tail as their linearization point and catch their replica up before
    answering.  Garbage collection of the cyclic buffer waits on the
    minimum published per-replica version — the [local_versions] map whose
    ghost protocol Figure 5 shows; {!Nr_model} is that protocol as a
    VerusSync machine, and the runtime tests drive both together. *)

type op = Put of int * int | Del of int

type t

type handle
(** A registered thread's binding to a replica. *)

val create : ?log_size:int -> replicas:int -> unit -> t

val register : t -> handle
(** Dynamic thread registration (round-robin across replicas) — one of the
    fidelity improvements the Verus port makes over IronSync-NR. *)

val execute_mut : t -> handle -> op -> unit
(** Append a mutating operation to the log and apply it (linearizable). *)

val read : t -> handle -> int -> int option
(** Linearizable read of a key. *)

val read_local : t -> handle -> int -> int option
(** Read without syncing to the log tail (eventually-consistent; used to
    show the test harness detects the difference). *)

val sync : t -> handle -> unit
(** Catch the handle's replica up to the current tail. *)

val replica_count : t -> int
val tail_value : t -> int
