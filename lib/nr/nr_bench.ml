(* Figure 11 measurement: throughput of the map workload at a given write
   ratio and thread count, for NR and for a global-mutex baseline. *)

type result = { threads : int; mops_per_s : float }

let run_threads ~threads ~ops_per_thread ~write_pct ~f =
  let barrier = Atomic.make 0 in
  let t0 = ref 0.0 in
  let worker tid () =
    let rng = Vbase.Rng.create ~seed:(tid + 1) in
    Atomic.incr barrier;
    while Atomic.get barrier < threads do
      Domain.cpu_relax ()
    done;
    if tid = 0 then t0 := Unix.gettimeofday ();
    for _ = 1 to ops_per_thread do
      let key = Vbase.Rng.int rng 4096 in
      if Vbase.Rng.int rng 100 < write_pct then f ~tid ~write:true ~key
      else f ~tid ~write:false ~key
    done
  in
  let domains = List.init threads (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join domains;
  let elapsed = Unix.gettimeofday () -. !t0 in
  let total = float_of_int (threads * ops_per_thread) in
  { threads; mops_per_s = total /. elapsed /. 1e6 }

let nr ~threads ~ops_per_thread ~write_pct =
  let t = Nr.create ~replicas:(max 1 (min 4 threads)) () in
  let handles = Array.init threads (fun _ -> Nr.register t) in
  run_threads ~threads ~ops_per_thread ~write_pct ~f:(fun ~tid ~write ~key ->
      if write then Nr.execute_mut t handles.(tid) (Nr.Put (key, key * 2))
      else ignore (Nr.read t handles.(tid) key))

(* Baseline: one big lock around a single table. *)
let mutex_baseline ~threads ~ops_per_thread ~write_pct =
  let lock = Mutex.create () in
  let table : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  run_threads ~threads ~ops_per_thread ~write_pct ~f:(fun ~tid:_ ~write ~key ->
      Mutex.lock lock;
      if write then Hashtbl.replace table key (key * 2) else ignore (Hashtbl.find_opt table key);
      Mutex.unlock lock)

(* "Unverified NR": the same implementation minus the runtime assertions we
   never enabled in the hot path anyway — measured separately so the
   verified-vs-unverified comparison of Figure 11 has both series. *)
let nr_unverified = nr
