(** The VerusSync model of the NR cyclic-buffer protocol (§3.4, Figure 5).

    Fields mirror the paper's sharding plan: [tail] is a [Variable] shard
    tied to the atomically-updated log frontier, [buffer_size] is a
    [Constant] (permanently read-shared), [local_versions] is a [Map] with
    one ownable shard per replica, and [combiner] is a [Map] tracking each
    replica's multi-step executor state ([-1] = Idle, otherwise the target
    log index the combiner is advancing to — the [Reading] state of the
    paper's [ExecutorState]).

    {!machine} packages the transitions ([append], [combiner_start],
    [combiner_finish] — the paper's [reader_finish]); {!check} discharges
    the inductiveness obligations; {!make_runtime} instantiates the
    executable token API that the concurrent tests drive alongside the real
    {!Nr} implementation. *)

val machine : replicas:int -> Verus.Vsync.machine

val check : ?config:Smt.Solver.config -> replicas:int -> unit -> Verus.Vsync.report

val atomic_log_spec : Verus.Vsync.spec
(** The atomic specification the protocol refines: a log whose length
    grows atomically ([grow] by n ≥ 1 slots). *)

val refinement : Verus.Vsync.refinement
(** [append] simulates [grow]; the combiner phases are stutters. *)

val check_refinement : ?config:Smt.Solver.config -> replicas:int -> unit -> Verus.Vsync.report
(** Discharge the refinement obligations (init + one per transition). *)

val make_runtime :
  replicas:int -> log_size:int -> Verus.Vsync.Runtime.inst * Verus.Vsync.Runtime.shard list
(** A fresh protocol instance in its initial state plus the initial shard
    decomposition (one [local_versions] and one [combiner] shard per
    replica, plus the [tail] shard). *)
