module T = Smt.Term
module S = Smt.Sort
open Verus.Vsync

(* Fields:
   - tail          : Variable int   (next free log index)
   - buffer_size   : Constant int
   - local_versions: Map replica -> int (applied log prefix)
   - combiner      : Map replica -> int (-1 idle, else target index)     *)

let machine ~replicas =
  let i n = T.int_of n in
  let fields =
    [
      { f_name = "tail"; f_strategy = Variable; f_sort = S.Int; f_key_sort = None };
      { f_name = "buffer_size"; f_strategy = Constant; f_sort = S.Int; f_key_sort = None };
      { f_name = "local_versions"; f_strategy = Map; f_sort = S.Int; f_key_sort = Some S.Int };
      { f_name = "combiner"; f_strategy = Map; f_sort = S.Int; f_key_sort = Some S.Int };
    ]
  in
  let rvar = T.bvar "r!q" S.Int in
  let forall_replica body =
    T.forall [ ("r!q", S.Int) ]
      (T.implies (T.and_ [ T.le (i 0) rvar; T.lt rvar (i replicas) ]) body)
  in
  let init (s : state) =
    T.and_
      [
        T.eq (s.get "tail") (i 0);
        T.gt (s.get "buffer_size") (i 0);
        forall_replica
          (T.and_
             [
               s.map_dom "local_versions" rvar;
               T.eq (s.map_val "local_versions" rvar) (i 0);
               s.map_dom "combiner" rvar;
               T.eq (s.map_val "combiner" rvar) (T.int_of (-1));
             ]);
      ]
  in
  let invariant (s : state) =
    T.and_
      [
        T.ge (s.get "tail") (i 0);
        forall_replica
          (T.implies
             (s.map_dom "local_versions" rvar)
             (T.and_
                [
                  T.le (i 0) (s.map_val "local_versions" rvar);
                  T.le (s.map_val "local_versions" rvar) (s.get "tail");
                ]));
        forall_replica
          (T.implies
             (T.and_ [ s.map_dom "combiner" rvar; T.ge (s.map_val "combiner" rvar) (i 0) ])
             (T.le (s.map_val "combiner" rvar) (s.get "tail")));
      ]
  in
  let p n params = List.nth params n in
  (* A writer reserves n slots: the tail only grows. *)
  let append =
    {
      t_name = "append";
      t_params = [ ("n", S.Int) ];
      t_actions =
        [
          Require (fun (_, params) -> T.ge (p 0 params) (i 1));
          Update ("tail", fun (s, params) -> T.add [ s.get "tail"; p 0 params ]);
        ];
    }
  in
  (* A combiner picks its target: the current tail (or an earlier point). *)
  let combiner_start =
    {
      t_name = "combiner_start";
      t_params = [ ("r", S.Int); ("t0", S.Int) ];
      t_actions =
        [
          Require
            (fun (s, params) ->
              T.and_
                [
                  T.le (i 0) (p 0 params);
                  T.lt (p 0 params) (i replicas);
                  T.eq (s.map_val "combiner" (p 0 params)) (T.int_of (-1));
                  T.le (s.map_val "local_versions" (p 0 params)) (p 1 params);
                  T.le (p 1 params) (s.get "tail");
                ]);
          Map_remove ("combiner", fun (_, params) -> p 0 params);
          Map_add ("combiner", (fun (_, params) -> p 0 params), fun (_, params) -> p 1 params);
        ];
    }
  in
  (* reader_finish (Figure 5): the combiner retires, publishing its target
     as the replica's new version. *)
  let combiner_finish =
    {
      t_name = "combiner_finish";
      t_params = [ ("r", S.Int) ];
      t_actions =
        [
          Require (fun (s, params) -> T.ge (s.map_val "combiner" (p 0 params)) (i 0));
          Map_remove ("local_versions", fun (_, params) -> p 0 params);
          Map_add
            ( "local_versions",
              (fun (_, params) -> p 0 params),
              fun (s, params) -> s.map_val "combiner" (p 0 params) );
          Map_remove ("combiner", fun (_, params) -> p 0 params);
          Map_add ("combiner", (fun (_, params) -> p 0 params), fun _ -> T.int_of (-1));
        ];
    }
  in
  {
    m_name = "nrlog";
    m_fields = fields;
    m_init = init;
    m_transitions = [ append; combiner_start; combiner_finish ];
    m_invariant = invariant;
    m_properties =
      [
        ( "versions_bounded_by_tail",
          fun s ->
            forall_replica
              (T.implies
                 (s.map_dom "local_versions" rvar)
                 (T.le (s.map_val "local_versions" rvar) (s.get "tail"))) );
      ];
  }

let check ?config ~replicas () = Verus.Vsync.check ?config (machine ~replicas)

(* The atomic specification NR refines (§3.4's soundness story): a log
   whose length grows atomically.  Appends simulate the [grow] step; the
   combiner's internal phases are stutters — invisible at the spec level,
   which is exactly the linearizability claim clients rely on. *)
let atomic_log_spec : spec =
  {
    sp_name = "atomic-log";
    sp_fields = [ ("len", S.Int) ];
    sp_init = (fun v -> T.eq (v "len") (T.int_of 0));
    sp_steps =
      [
        ( "grow",
          fun pre post params ->
            T.and_
              [
                T.ge (List.nth params 0) (T.int_of 1);
                T.eq (post "len") (T.add [ pre "len"; List.nth params 0 ]);
              ] );
      ];
  }

let refinement : refinement =
  {
    r_spec = atomic_log_spec;
    r_abs = (fun s f -> match f with "len" -> s.get "tail" | _ -> invalid_arg f);
    r_map =
      [ ("append", Some "grow"); ("combiner_start", None); ("combiner_finish", None) ];
  }

let check_refinement ?config ~replicas () =
  Verus.Vsync.check_refinement ?config (machine ~replicas) refinement

let make_runtime ~replicas ~log_size =
  let m = machine ~replicas in
  let inst =
    Verus.Vsync.Runtime.create m
      ~init:
        [
          ("tail", `Var 0);
          ("buffer_size", `Var log_size);
          ("local_versions", `Map (List.init replicas (fun r -> (r, 0))));
          ("combiner", `Map (List.init replicas (fun r -> (r, -1))));
        ]
  in
  (inst, Verus.Vsync.Runtime.shards_of inst)
