(* Node replication over a shared cyclic operation log.

   Concurrency structure:
   - [tail] is the global log frontier (atomic fetch-and-add reserves
     slots);
   - each slot holds [Some (seq, op)] once its writer fills it; readers
     spin until the slot for the sequence number they need appears
     (the seq tag disambiguates wrap-around);
   - each replica applies the log in order under its combiner mutex and
     publishes its version for the writers' GC check. *)

type op = Put of int * int | Del of int

type slot = (int * op) option

type replica = {
  mutex : Mutex.t;
  state : (int, int) Hashtbl.t;
  mutable version : int; (* log prefix applied (under mutex) *)
  version_pub : int Atomic.t; (* published for GC *)
}

type t = {
  log_size : int;
  slots : slot Atomic.t array;
  tail : int Atomic.t;
  replicas : replica array;
  next_reg : int Atomic.t;
}

type handle = { replica : int }

let create ?(log_size = 4096) ~replicas () =
  if replicas < 1 then invalid_arg "Nr.create: replicas";
  {
    log_size;
    slots = Array.init log_size (fun _ -> Atomic.make None);
    tail = Atomic.make 0;
    replicas =
      Array.init replicas (fun _ ->
          {
            mutex = Mutex.create ();
            state = Hashtbl.create 256;
            version = 0;
            version_pub = Atomic.make 0;
          });
    next_reg = Atomic.make 0;
  }

let register t =
  let n = Atomic.fetch_and_add t.next_reg 1 in
  { replica = n mod Array.length t.replicas }

let replica_count t = Array.length t.replicas
let tail_value t = Atomic.get t.tail

let apply_op state = function
  | Put (k, v) -> Hashtbl.replace state k v
  | Del k -> Hashtbl.remove state k

(* Apply the log to replica [r] up to (excluding) [target]; caller holds
   the mutex.  With [spin = false] (helper mode) stop at the first
   reserved-but-unfilled slot instead of waiting — a helper spinning there
   would deadlock against itself when it is also the slot's writer. *)
let catch_up ?(spin = true) t (r : replica) target =
  let stop = ref false in
  while (not !stop) && r.version < target do
    let seq = r.version in
    let slot = t.slots.(seq mod t.log_size) in
    let rec wait () =
      match Atomic.get slot with
      | Some (s, op) when s = seq -> Some op
      | _ ->
        if spin then begin
          Domain.cpu_relax ();
          wait ()
        end
        else None
    in
    match wait () with
    | Some op ->
      apply_op r.state op;
      r.version <- seq + 1;
      Atomic.set r.version_pub r.version
    | None -> stop := true
  done

let min_version t =
  Array.fold_left (fun acc r -> min acc (Atomic.get r.version_pub)) max_int t.replicas

(* Help the slowest replica when the log is full (otherwise a writer could
   spin forever waiting on a replica no thread is advancing). *)
let help_laggard t =
  Array.iter
    (fun r ->
      if Atomic.get r.version_pub + t.log_size <= Atomic.get t.tail then
        if Mutex.try_lock r.mutex then begin
          catch_up ~spin:false t r (Atomic.get t.tail);
          Mutex.unlock r.mutex
        end)
    t.replicas

let execute_mut t h op =
  let seq = Atomic.fetch_and_add t.tail 1 in
  (* GC: wait until the slot we're about to overwrite has been consumed
     everywhere. *)
  while min_version t + t.log_size <= seq do
    help_laggard t;
    Domain.cpu_relax ()
  done;
  Atomic.set t.slots.(seq mod t.log_size) (Some (seq, op));
  let r = t.replicas.(h.replica) in
  Mutex.lock r.mutex;
  catch_up t r (seq + 1);
  Mutex.unlock r.mutex

let read t h key =
  let target = Atomic.get t.tail in
  let r = t.replicas.(h.replica) in
  Mutex.lock r.mutex;
  catch_up t r target;
  let result = Hashtbl.find_opt r.state key in
  Mutex.unlock r.mutex;
  result

let read_local t h key =
  let r = t.replicas.(h.replica) in
  Mutex.lock r.mutex;
  let result = Hashtbl.find_opt r.state key in
  Mutex.unlock r.mutex;
  result

let sync t h =
  let target = Atomic.get t.tail in
  let r = t.replicas.(h.replica) in
  Mutex.lock r.mutex;
  catch_up t r target;
  Mutex.unlock r.mutex
