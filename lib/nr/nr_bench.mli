(** Throughput measurements for the Figure 11 reproduction: NR vs. a
    global-mutex baseline at configurable thread counts and write ratios.

    Note the hardware substitution (DESIGN.md): the paper measures on a
    4-socket 192-hyperthread Xeon; this container exposes a single CPU, so
    absolute scaling is not reproducible here — the harness measures real
    domains and reports whatever parallelism the host offers. *)

type result = { threads : int; mops_per_s : float }

val nr : threads:int -> ops_per_thread:int -> write_pct:int -> result
(** The verified-style NR instance (runtime checks on). *)

val nr_unverified : threads:int -> ops_per_thread:int -> write_pct:int -> result
(** The same NR implementation with verification-era checks compiled out —
    the paper's "unverified NR" comparator. *)

val mutex_baseline : threads:int -> ops_per_thread:int -> write_pct:int -> result
(** A single shared structure behind one global mutex. *)
