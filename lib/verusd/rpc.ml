module J = Vbase.Json

let schema_version = "verus-rpc/1"
let max_frame_bytes = 16 * 1024 * 1024

type error = { code : string; message : string }

let error_codes =
  [
    ("RPC001", "malformed frame: payload is not valid JSON");
    ("RPC002", "schema version missing or unsupported (expected verus-rpc/1)");
    ("RPC003", "unknown method");
    ("RPC004", "invalid or missing request parameters");
    ("RPC005", "daemon is shutting down");
    ("RPC006", "internal error while serving the request");
    ("RPC007", "frame length invalid, over the limit, or truncated");
  ]

let err code message = { code; message }
let errf code fmt = Printf.ksprintf (err code) fmt

type lint_level = Lint_off | Lint_warn | Lint_strict
type job_kind = Verify | Lint | Profile

type query = {
  q_kind : job_kind;
  q_program : string;
  q_profile : string;
  q_lint : lint_level;
  q_certify : bool;
  q_analyze : bool;
  q_cache : bool;
  q_deadline_s : float option;
  q_max_rounds : int option;
  q_ladder : string option;
  q_rung : int option;
  q_stream : bool;
}

type method_ = M_ping | M_status | M_shutdown | M_job of query

type request = { r_id : int; r_method : method_ }

let request ?(id = 0) m = { r_id = id; r_method = m }

let query ?(profile = "Verus") ?(lint = Lint_off) ?(certify = false) ?(analyze = false)
    ?(cache = true) ?deadline_s ?max_rounds ?ladder ?rung ?(stream = true) kind program =
  {
    q_kind = kind;
    q_program = program;
    q_profile = profile;
    q_lint = lint;
    q_certify = certify;
    q_analyze = analyze;
    q_cache = cache;
    q_deadline_s = deadline_s;
    q_max_rounds = max_rounds;
    q_ladder = ladder;
    q_rung = rung;
    q_stream = stream;
  }

(* ------------------------------------------------------------------ *)
(* JSON encoding                                                       *)
(* ------------------------------------------------------------------ *)

let method_name = function
  | M_ping -> "ping"
  | M_status -> "status"
  | M_shutdown -> "shutdown"
  | M_job q -> (
    match q.q_kind with Verify -> "verify" | Lint -> "lint" | Profile -> "profile")

let lint_name = function
  | Lint_off -> "ignore"
  | Lint_warn -> "warn"
  | Lint_strict -> "strict"

(* Envelope key order: rpc, id, then the frame body — purely cosmetic,
   but it keeps documented examples and emitted frames diffable. *)
let envelope id rest =
  J.Obj (("rpc", J.String schema_version) :: ("id", J.Int id) :: rest)

let request_to_json (r : request) =
  let params =
    match r.r_method with
    | M_ping | M_status | M_shutdown -> []
    | M_job q ->
      let base =
        [
          ("program", J.String q.q_program);
          ("profile", J.String q.q_profile);
          ("certify", J.Bool q.q_certify);
          ("analyze", J.Bool q.q_analyze);
          ("cache", J.Bool q.q_cache);
          ("stream", J.Bool q.q_stream);
          ("lint", J.String (lint_name q.q_lint));
        ]
      in
      let base =
        base
        @ (match q.q_deadline_s with Some d -> [ ("deadline_s", J.Float d) ] | None -> [])
        @ (match q.q_max_rounds with Some n -> [ ("max_rounds", J.Int n) ] | None -> [])
        @ (match q.q_ladder with Some l -> [ ("ladder", J.String l) ] | None -> [])
        @ match q.q_rung with Some r -> [ ("rung", J.Int r) ] | None -> []
      in
      [ ("params", J.Obj base) ]
  in
  envelope r.r_id (("method", J.String (method_name r.r_method)) :: params)

(* ------------------------------------------------------------------ *)
(* JSON decoding helpers                                               *)
(* ------------------------------------------------------------------ *)

let str_field o k = match J.member k o with Some (J.String s) -> Some s | _ -> None
let int_field o k = match J.member k o with Some (J.Int i) -> Some i | _ -> None
let bool_field o k = match J.member k o with Some (J.Bool b) -> Some b | _ -> None

let num_field o k =
  match J.member k o with Some j -> J.to_float j | None -> None

let check_version j =
  match str_field j "rpc" with
  | Some v when String.equal v schema_version -> Ok ()
  | Some v -> Error (errf "RPC002" "unsupported schema version %S (expected %s)" v schema_version)
  | None -> Error (errf "RPC002" "missing \"rpc\" version field (expected %s)" schema_version)

let parse_query kind params =
  let ( let* ) = Result.bind in
  let* program =
    match str_field params "program" with
    | Some p -> Ok p
    | None -> Error (err "RPC004" "missing required params.program")
  in
  let profile = Option.value ~default:"Verus" (str_field params "profile") in
  let* lint =
    match str_field params "lint" with
    | None -> Ok (if kind = Profile then Lint_warn else Lint_off)
    | Some "ignore" -> Ok Lint_off
    | Some "warn" -> Ok Lint_warn
    | Some "strict" -> Ok Lint_strict
    | Some other -> Error (errf "RPC004" "params.lint must be ignore|warn|strict, got %S" other)
  in
  let* deadline_s =
    match (J.member "deadline_s" params, num_field params "deadline_s") with
    | None, _ -> Ok None
    | Some _, Some d when d > 0.0 -> Ok (Some d)
    | Some _, _ -> Error (err "RPC004" "params.deadline_s must be a positive number")
  in
  let* max_rounds =
    match J.member "max_rounds" params with
    | None -> Ok None
    | Some (J.Int n) when n >= 1 -> Ok (Some n)
    | Some _ -> Error (err "RPC004" "params.max_rounds must be a positive integer")
  in
  let* ladder =
    match J.member "ladder" params with
    | None -> Ok None
    | Some (J.String l) -> Ok (Some l)
    | Some _ -> Error (err "RPC004" "params.ladder must be a ladder name string")
  in
  let* rung =
    match J.member "rung" params with
    | None -> Ok None
    | Some (J.Int r) when r >= 0 -> Ok (Some r)
    | Some _ -> Error (err "RPC004" "params.rung must be a non-negative integer")
  in
  Ok
    {
      q_kind = kind;
      q_program = program;
      q_profile = profile;
      q_lint = lint;
      q_certify = Option.value ~default:false (bool_field params "certify");
      q_analyze = Option.value ~default:false (bool_field params "analyze");
      q_cache = Option.value ~default:true (bool_field params "cache");
      q_deadline_s = deadline_s;
      q_max_rounds = max_rounds;
      q_ladder = ladder;
      q_rung = rung;
      q_stream = Option.value ~default:true (bool_field params "stream");
    }

let request_of_json j =
  let ( let* ) = Result.bind in
  let* () = check_version j in
  let* id =
    match int_field j "id" with
    | Some i when i >= 0 -> Ok i
    | _ -> Error (err "RPC004" "missing or invalid \"id\" (expected a non-negative integer)")
  in
  let* meth =
    match str_field j "method" with
    | Some m -> Ok m
    | None -> Error (err "RPC003" "missing \"method\" field")
  in
  let params = match J.member "params" j with Some (J.Obj _ as p) -> p | _ -> J.Obj [] in
  let* r_method =
    match meth with
    | "ping" -> Ok M_ping
    | "status" -> Ok M_status
    | "shutdown" -> Ok M_shutdown
    | "verify" -> Result.map (fun q -> M_job q) (parse_query Verify params)
    | "lint" -> Result.map (fun q -> M_job q) (parse_query Lint params)
    | "profile" -> Result.map (fun q -> M_job q) (parse_query Profile params)
    | other -> Error (errf "RPC003" "unknown method %S" other)
  in
  Ok { r_id = id; r_method }

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

type event =
  | E_vc of {
      fn : string;
      vc : string;
      answer : string;
      reason : string option;
      time_s : float;
      cached : bool;
      rung : int option;
    }
  | E_fn of { fn : string; ok : bool; time_s : float; vcs : int }
  | E_done of J.t
  | E_error of error
  | E_pong
  | E_status of J.t

let event_to_json ~id = function
  | E_vc { fn; vc; answer; reason; time_s; cached; rung } ->
    envelope id
      ([
         ("event", J.String "vc");
         ("fn", J.String fn);
         ("vc", J.String vc);
         ("answer", J.String answer);
       ]
      @ (match reason with Some r -> [ ("reason", J.String r) ] | None -> [])
      @ [ ("time_s", J.Float time_s); ("cached", J.Bool cached) ]
      @ (match rung with Some r -> [ ("rung", J.Int r) ] | None -> []))
  | E_fn { fn; ok; time_s; vcs } ->
    envelope id
      [
        ("event", J.String "fn");
        ("fn", J.String fn);
        ("ok", J.Bool ok);
        ("time_s", J.Float time_s);
        ("vcs", J.Int vcs);
      ]
  | E_done result -> envelope id [ ("event", J.String "done"); ("result", result) ]
  | E_error e ->
    envelope id
      [ ("event", J.String "error"); ("code", J.String e.code); ("message", J.String e.message) ]
  | E_pong -> envelope id [ ("event", J.String "pong") ]
  | E_status s -> envelope id [ ("event", J.String "status"); ("status", s) ]

(* The required surface of a `done` result object.  `kind` says which
   request family produced it; job results additionally carry the
   program/profile pair, wall-clock and the decisions-only digest. *)
let validate_done result =
  let ( let* ) = Result.bind in
  let* kind =
    match str_field result "kind" with
    | Some k -> Ok k
    | None -> Error "done.result: missing \"kind\""
  in
  let* () =
    match (J.member "ok" result, int_field result "exit_code") with
    | Some (J.Bool _), Some _ -> Ok ()
    | _ -> Error "done.result: \"ok\" (bool) and \"exit_code\" (int) are required"
  in
  match kind with
  | "verify" | "lint" | "profile" ->
    let need_str k =
      match str_field result k with
      | Some _ -> Ok ()
      | None -> Error (Printf.sprintf "done.result: missing %S" k)
    in
    let* () = need_str "program" in
    let* () = need_str "profile" in
    let* () = need_str "digest" in
    (match num_field result "time_s" with
    | Some _ -> Ok ()
    | None -> Error "done.result: missing \"time_s\"")
  | "shutdown" -> Ok ()
  | other -> Error (Printf.sprintf "done.result: unknown kind %S" other)

let validate_status s =
  let need k ok_kind =
    match (J.member k s, ok_kind) with
    | Some (J.Int _), `Num | Some (J.Float _), `Num | Some (J.Int _), `Int -> Ok ()
    | _ -> Error (Printf.sprintf "status: missing or mistyped %S" k)
  in
  let ( let* ) = Result.bind in
  let* () = need "uptime_s" `Num in
  let* () = need "requests" `Int in
  need "domains" `Int

let event_of_json j =
  let ( let* ) = Result.bind in
  let* () = check_version j in
  let* id =
    match int_field j "id" with
    | Some i when i >= 0 -> Ok i
    | _ -> Error (err "RPC004" "missing or invalid \"id\" on event frame")
  in
  let* ev =
    match str_field j "event" with
    | Some e -> Ok e
    | None -> Error (err "RPC004" "missing \"event\" field")
  in
  let* event =
    match ev with
    | "pong" -> Ok E_pong
    | "vc" -> (
      match (str_field j "fn", str_field j "vc", str_field j "answer", num_field j "time_s") with
      | Some fn, Some vc, Some answer, Some time_s
        when List.mem answer [ "unsat"; "sat"; "unknown" ] ->
        Ok
          (E_vc
             {
               fn;
               vc;
               answer;
               reason = str_field j "reason";
               time_s;
               cached = Option.value ~default:false (bool_field j "cached");
               rung = int_field j "rung";
             })
      | _ -> Error (err "RPC004" "vc event: fn/vc/answer/time_s missing or mistyped"))
    | "fn" -> (
      match (str_field j "fn", bool_field j "ok", num_field j "time_s", int_field j "vcs") with
      | Some fn, Some ok, Some time_s, Some vcs -> Ok (E_fn { fn; ok; time_s; vcs })
      | _ -> Error (err "RPC004" "fn event: fn/ok/time_s/vcs missing or mistyped"))
    | "done" -> (
      match J.member "result" j with
      | Some (J.Obj _ as result) -> (
        match validate_done result with
        | Ok () -> Ok (E_done result)
        | Error e -> Error (err "RPC004" e))
      | _ -> Error (err "RPC004" "done event: missing \"result\" object"))
    | "error" -> (
      match (str_field j "code", str_field j "message") with
      | Some code, Some message when List.mem_assoc code error_codes ->
        Ok (E_error { code; message })
      | Some code, Some _ -> Error (errf "RPC004" "error event: unknown code %S" code)
      | _ -> Error (err "RPC004" "error event: missing code/message"))
    | "status" -> (
      match J.member "status" j with
      | Some (J.Obj _ as s) -> (
        match validate_status s with
        | Ok () -> Ok (E_status s)
        | Error e -> Error (err "RPC004" e))
      | _ -> Error (err "RPC004" "status event: missing \"status\" object"))
    | other -> Error (errf "RPC004" "unknown event %S" other)
  in
  Ok (id, event)

let validate_frame j =
  match j with
  | J.Obj _ -> (
    let fail (e : error) = Error (Printf.sprintf "[%s] %s" e.code e.message) in
    match (J.member "method" j, J.member "event" j) with
    | Some _, None -> (
      match request_of_json j with Ok _ -> Ok () | Error e -> fail e)
    | None, Some _ -> (
      match event_of_json j with Ok _ -> Ok () | Error e -> fail e)
    | Some _, Some _ -> Error "frame carries both \"method\" and \"event\""
    | None, None -> Error "frame carries neither \"method\" nor \"event\"")
  | _ -> Error "frame is not a JSON object"

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let rec write_all fd b off len =
  if len > 0 then begin
    let n = Unix.write fd b off len in
    write_all fd b (off + n) (len - n)
  end

let write_frame fd j =
  let payload = Bytes.of_string (J.to_string ~indent:false j) in
  let len = Bytes.length payload in
  if len > max_frame_bytes then
    invalid_arg (Printf.sprintf "Rpc.write_frame: %d-byte payload exceeds the %d-byte limit" len max_frame_bytes);
  let frame = Bytes.create (4 + len) in
  Bytes.set_uint8 frame 0 ((len lsr 24) land 0xff);
  Bytes.set_uint8 frame 1 ((len lsr 16) land 0xff);
  Bytes.set_uint8 frame 2 ((len lsr 8) land 0xff);
  Bytes.set_uint8 frame 3 (len land 0xff);
  Bytes.blit payload 0 frame 4 len;
  write_all fd frame 0 (4 + len)

type read_result = Frame of J.t | Eof | Bad of error

(* Read exactly [len] bytes; [`Eof n] reports how many arrived before
   the stream closed (0 = clean close at a frame boundary). *)
let read_exact fd len =
  let b = Bytes.create len in
  let rec go off =
    if off = len then `Ok b
    else
      match Unix.read fd b off (len - off) with
      | 0 -> `Eof off
      | n -> go (off + n)
  in
  go 0

let read_frame fd =
  match read_exact fd 4 with
  | `Eof 0 -> Eof
  | `Eof _ -> Bad (err "RPC007" "stream truncated inside a length prefix")
  | `Ok hdr -> (
    let len =
      (Bytes.get_uint8 hdr 0 lsl 24)
      lor (Bytes.get_uint8 hdr 1 lsl 16)
      lor (Bytes.get_uint8 hdr 2 lsl 8)
      lor Bytes.get_uint8 hdr 3
    in
    if len <= 0 || len > max_frame_bytes then
      Bad (errf "RPC007" "frame length %d outside (0, %d]" len max_frame_bytes)
    else
      match read_exact fd len with
      | `Eof _ -> Bad (err "RPC007" "stream truncated inside a frame payload")
      | `Ok payload -> (
        match J.of_string (Bytes.to_string payload) with
        | Ok j -> Frame j
        | Error e -> Bad (errf "RPC001" "frame payload is not valid JSON: %s" e)))
