(** Client — the calling side of [verus-rpc/1].

    A thin, blocking client over one Unix-domain socket connection:
    write a request frame, then read event frames until the terminal
    one arrives.  Used by [verus_cli client], the daemon smoke binary,
    the daemon bench section and the test suite; anything speaking the
    protocol from OCaml should go through this module rather than
    hand-rolling frames (the negative-path tests use {!send_raw} to do
    exactly that on purpose).

    One {!call} at a time per connection: requests on a connection are
    answered in order, so interleaving calls from multiple threads on
    one [t] would garble who owns which reply.  Open one connection
    per concurrent client instead — that is also what exercises the
    daemon's cross-client scheduling. *)

type t

val connect : socket_path:string -> (t, string) result
(** Connect to a daemon's socket.  The error string is human-readable
    (what [verus_cli client] prints before exiting with code 6). *)

val close : t -> unit
(** Idempotent. *)

val call :
  t -> ?on_event:(Rpc.event -> unit) -> Rpc.request -> (Rpc.event, string) result
(** Send [request] and read frames until a terminal event for its id
    arrives: [E_done], [E_error], [E_pong] or [E_status], which is
    returned.  Streamed [E_vc]/[E_fn] events are fed to [on_event] in
    arrival order (completion order of the obligations).  Events whose
    id does not match are discarded (stale stream of an aborted
    predecessor).  [Error] covers transport failures: unreadable
    frames, invalid event frames, or the daemon closing the stream
    before a terminal event. *)

val send_raw : t -> string -> unit
(** Write raw bytes, bypassing framing and validation — for the
    protocol-negative tests (truncated frames, garbage payloads).
    Never use this to speak the actual protocol. *)

val read_event : t -> (int * Rpc.event, string) result
(** Read and decode a single event frame — the low-level half of
    {!call}, exposed for the negative tests that need to observe the
    daemon's error reply to a raw byte sequence. *)
