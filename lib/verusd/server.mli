(** Server — the persistent daemon loop.

    Owns the transport only: a Unix-domain listening socket, one
    handler thread per accepted connection, per-connection framed
    reads, and a thread-safe [emit] for writes.  What a request {e
    means} is delegated to the injected {!handler} — the daemon binary
    wires in {!Verus.Vservice}'s handler, the tests wire in scripted
    ones — so the transport layer has no dependency on the
    verification stack and the protocol can be exercised without a
    solver behind it.

    Protocol errors the transport itself detects are answered before
    the handler ever runs: an unreadable frame ([RPC001]/[RPC007])
    closes the connection after an error event (framing is lost, the
    byte stream cannot be resynchronized); an invalid request on an
    intact frame ([RPC002]/[RPC003]/[RPC004]) is answered with an
    error event and the connection {e stays open} — one bad request
    does not cost a client its connection.

    Concurrency: each connection runs on its own thread and requests
    on one connection are served in order; concurrency across clients
    comes from multiple connections, whose solve work interleaves in
    the shared {!Sched} pool.  [emit] may be called from any domain
    (streamed verdicts land from scheduler workers); writes are
    serialized per connection. *)

(** What the handler tells the transport after each request. *)
type directive =
  | Continue  (** keep serving this connection *)
  | Stop  (** shut the whole daemon down (the [shutdown] method) *)

type handler = emit:(Vbase.Json.t -> unit) -> Rpc.request -> directive
(** Serve one validated request, emitting zero or more event frames
    (the final [done]/[error] frame included).  Exceptions escaping the
    handler are caught and answered with an [RPC006] error event. *)

type config = {
  socket_path : string;  (** Unix-domain socket path; created at {!create} *)
  backlog : int;  (** listen(2) backlog *)
}

val default_config : socket_path:string -> config
(** [backlog = 64]. *)

(** Transport-level counters, surfaced by the [status] method. *)
type stats = {
  sv_connections : int;  (** connections ever accepted *)
  sv_requests : int;  (** well-formed requests dispatched to the handler *)
  sv_proto_errors : int;  (** error events answered at the transport layer *)
  sv_started_at : float;  (** [Unix.gettimeofday] at {!create} *)
}

type t

val create : config -> (t, string) result
(** Bind and listen.  A stale socket file at [socket_path] is
    unlinked first; a live one (another daemon still bound) is an
    error. *)

val socket_path : t -> string
val stats : t -> stats

val serve : t -> handler -> unit
(** Accept loop; blocks until {!shutdown} is called (by another
    thread, or by a handler returning {!Stop}).  Connection threads
    are joined before returning, and the socket file is removed. *)

val shutdown : t -> unit
(** Thread-safe, idempotent: stop accepting, wake {!serve}. *)
