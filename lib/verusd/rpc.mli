(** Rpc — the [verus-rpc/1] wire protocol.

    Everything the daemon speaks: length-prefixed JSON framing over a
    byte stream (a Unix-domain socket or a pipe), the request and event
    schemas, the stable [RPCxxx] error codes, and the validator the CI
    docs gate runs over every example in [docs/PROTOCOL.md].  The
    schema is defined {e by} this module: the daemon emits through
    {!event_to_json}, the client parses through {!event_of_json}, and
    the documentation's examples must round-trip through
    {!validate_frame} — one implementation, so the emitted schema, the
    parsed schema and the documented schema cannot drift apart.

    Framing: each frame is a 4-byte big-endian payload length followed
    by that many bytes of UTF-8 JSON.  Payloads above
    {!max_frame_bytes} are rejected ([RPC007]) before any allocation.

    Versioning: every frame carries ["rpc": "verus-rpc/1"].  The major
    number is the only compatibility promise — servers reject frames
    whose version string is missing or different ([RPC002]); within a
    major version fields are only ever {e added}, and both ends ignore
    object keys they do not recognize.  See [docs/PROTOCOL.md] for the
    full specification. *)

val schema_version : string
(** ["verus-rpc/1"]. *)

val max_frame_bytes : int
(** Upper bound on a frame payload (16 MiB). *)

(** A protocol-level failure, as carried by [event: "error"] frames. *)
type error = { code : string; message : string }

val error_codes : (string * string) list
(** The stable code table ([RPC001]–[RPC007]), code to description —
    what [docs/PROTOCOL.md]'s error-code section is generated against. *)

(** When a job request runs the static analyses. *)
type lint_level = Lint_off | Lint_warn | Lint_strict

(** What a job request asks the daemon to do — the daemon-side analogue
    of the CLI's [verify] / [lint] / [profile] subcommands. *)
type job_kind = Verify | Lint | Profile

(** Parameters of a [verify] / [lint] / [profile] request. *)
type query = {
  q_kind : job_kind;
  q_program : string;  (** bundled program name (required) *)
  q_profile : string;  (** framework profile name (default ["Verus"]) *)
  q_lint : lint_level;
      (** for {!Verify}: when to run {!Vlint}; for {!Lint}: [Lint_strict]
          means warnings also fail *)
  q_certify : bool;  (** replay certificates through the Vcheck kernel *)
  q_analyze : bool;
      (** for {!Verify}: run the Vflow abstract-interpretation prescreen
          before cache/solver (default [false]; ignored under
          [q_certify] — the prescreen has no certificate to replay) *)
  q_cache : bool;
      (** consult the daemon's shared verification cache (default [true];
          a daemon started without a cache directory ignores this) *)
  q_deadline_s : float option;
      (** solver wall-clock budget override — deprecated sugar for a
          single-rung ladder carrying the absolute budget; rejected
          ([RPC004]) when combined with [q_ladder]/[q_rung] *)
  q_max_rounds : int option;
      (** instantiation-round budget override — same deprecated sugar *)
  q_ladder : string option;
      (** escalation-ladder name ({!Vladder.Ladder.builtins}: ["escalate"],
          ["deep"], ["cautious"]); each obligation climbs it, cheap rungs
          first *)
  q_rung : int option;
      (** pin every obligation to one rung of [q_ladder] (default: the
          ["escalate"] ladder) instead of climbing *)
  q_stream : bool;
      (** stream per-VC / per-function verdict events as they land
          (default [true]); [false] sends only the final [done] frame *)
}

(** One request frame. *)
type method_ =
  | M_ping
  | M_status
  | M_shutdown
  | M_job of query

type request = { r_id : int; r_method : method_ }

val request : ?id:int -> method_ -> request
(** Build a request ([id] defaults to 0; clients that multiplex pick
    unique ids so replies can be correlated). *)

val query :
  ?profile:string ->
  ?lint:lint_level ->
  ?certify:bool ->
  ?analyze:bool ->
  ?cache:bool ->
  ?deadline_s:float ->
  ?max_rounds:int ->
  ?ladder:string ->
  ?rung:int ->
  ?stream:bool ->
  job_kind ->
  string ->
  query
(** [query kind program] with the documented defaults for everything
    else. *)

val request_to_json : request -> Vbase.Json.t

val request_of_json : Vbase.Json.t -> (request, error) result
(** Validate and decode a request frame.  Errors use the documented
    codes: [RPC002] version missing/unsupported, [RPC003] unknown
    method, [RPC004] invalid or missing parameters.  Unknown object
    keys are ignored (additive-evolution rule). *)

(** One server-to-client frame.  [E_vc] and [E_fn] stream while a job
    runs; exactly one [E_done] or [E_error] terminates each request. *)
type event =
  | E_vc of {
      fn : string;  (** enclosing function *)
      vc : string;  (** obligation name *)
      answer : string;  (** ["unsat"] / ["sat"] / ["unknown"] *)
      reason : string option;  (** present when [answer = "unknown"] *)
      time_s : float;
      cached : bool;  (** served from the shared verification cache *)
      rung : int option;
          (** the escalation-ladder rung that produced the verdict;
              present only when the job ran with an explicit ladder *)
    }
  | E_fn of { fn : string; ok : bool; time_s : float; vcs : int }
  | E_done of Vbase.Json.t
      (** terminal result object; see {!validate_frame} for its
          required keys and [docs/PROTOCOL.md] for the full schema *)
  | E_error of error  (** terminal protocol/internal failure *)
  | E_pong
  | E_status of Vbase.Json.t  (** daemon status object *)

val event_to_json : id:int -> event -> Vbase.Json.t

val event_of_json : Vbase.Json.t -> (int * event, error) result
(** Validate and decode an event frame (the client side of the
    stream).  [fst] is the request id the event answers. *)

val validate_frame : Vbase.Json.t -> (unit, string) result
(** Accept any well-formed [verus-rpc/1] frame, request or event —
    the docs gate runs this over every fenced JSON example in
    [docs/PROTOCOL.md], so a schema change that forgets to update the
    documentation (or vice versa) fails [scripts/check.sh]. *)

(** {2 Framing} *)

val write_frame : Unix.file_descr -> Vbase.Json.t -> unit
(** Serialize compactly and write one length-prefixed frame.  Raises
    [Invalid_argument] if the payload exceeds {!max_frame_bytes} and
    [Unix.Unix_error] on I/O failure. *)

(** Result of reading one frame. *)
type read_result =
  | Frame of Vbase.Json.t
  | Eof  (** orderly close before a length prefix *)
  | Bad of error
      (** [RPC001] payload not valid JSON; [RPC007] length invalid,
          over the limit, or stream truncated mid-frame *)

val read_frame : Unix.file_descr -> read_result
