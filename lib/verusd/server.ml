type directive = Continue | Stop
type handler = emit:(Vbase.Json.t -> unit) -> Rpc.request -> directive

type config = { socket_path : string; backlog : int }

let default_config ~socket_path = { socket_path; backlog = 64 }

type stats = {
  sv_connections : int;
  sv_requests : int;
  sv_proto_errors : int;
  sv_started_at : float;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;  (* self-pipe: shutdown wakes the select in serve *)
  wake_w : Unix.file_descr;
  stop : bool Atomic.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;  (* live connections, under [lock] *)
  threads : Thread.t list ref;
  lock : Mutex.t;
  connections : int Atomic.t;
  requests : int Atomic.t;
  proto_errors : int Atomic.t;
  started_at : float;
}

let create cfg =
  (* A worker writing an event to a client that already hung up must
     see EPIPE as an exception, not die of SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let ( let* ) = Result.bind in
  let* () =
    if not (Sys.file_exists cfg.socket_path) then Ok ()
    else begin
      (* Distinguish a stale socket file (previous daemon died) from a
         live one (another daemon is still bound to it). *)
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect probe (Unix.ADDR_UNIX cfg.socket_path) with
      | () ->
        Unix.close probe;
        Error (Printf.sprintf "socket %s is already served by a live daemon" cfg.socket_path)
      | exception Unix.Unix_error _ ->
        Unix.close probe;
        (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
        Ok ()
    end
  in
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path);
       Unix.listen fd cfg.backlog
     with e ->
       Unix.close fd;
       raise e);
    fd
  with
  | fd ->
    let wake_r, wake_w = Unix.pipe () in
    Ok
      {
        cfg;
        listen_fd = fd;
        wake_r;
        wake_w;
        stop = Atomic.make false;
        conns = Hashtbl.create 16;
        threads = ref [];
        lock = Mutex.create ();
        connections = Atomic.make 0;
        requests = Atomic.make 0;
        proto_errors = Atomic.make 0;
        started_at = Unix.gettimeofday ();
      }
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "cannot listen on %s: %s" cfg.socket_path (Unix.error_message e))

let socket_path t = t.cfg.socket_path

let stats t =
  {
    sv_connections = Atomic.get t.connections;
    sv_requests = Atomic.get t.requests;
    sv_proto_errors = Atomic.get t.proto_errors;
    sv_started_at = t.started_at;
  }

let shutdown t =
  if not (Atomic.exchange t.stop true) then begin
    (* Wake the select in [serve]; the byte's value is irrelevant. *)
    try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with Unix.Unix_error _ -> ()
  end

let request_id_of json =
  match Vbase.Json.member "id" json with Some (Vbase.Json.Int i) when i >= 0 -> i | _ -> 0

let handle_conn t (handler : handler) fd =
  let wm = Mutex.create () in
  let emit j =
    Mutex.lock wm;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock wm)
      (fun () -> try Rpc.write_frame fd j with Unix.Unix_error _ -> ())
  in
  let emit_error ~id e =
    Atomic.incr t.proto_errors;
    emit (Rpc.event_to_json ~id (Rpc.E_error e))
  in
  let rec loop () =
    match Rpc.read_frame fd with
    | Rpc.Eof -> ()
    | Rpc.Bad e ->
      (* The length prefix is gone: the stream cannot be resynchronized,
         so answer once and drop the connection. *)
      emit_error ~id:0 e
    | Rpc.Frame json -> (
      let id = request_id_of json in
      if Atomic.get t.stop then
        emit_error ~id { Rpc.code = "RPC005"; message = "daemon is shutting down" }
      else
        match Rpc.request_of_json json with
        | Error e ->
          (* The frame itself was intact: the client can try again. *)
          emit_error ~id e;
          loop ()
        | Ok req -> (
          Atomic.incr t.requests;
          let directive =
            try handler ~emit req
            with e ->
              emit_error ~id:req.Rpc.r_id
                {
                  Rpc.code = "RPC006";
                  message = Printf.sprintf "internal error: %s" (Printexc.to_string e);
                };
              Continue
          in
          match directive with Continue -> loop () | Stop -> shutdown t))
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.lock;
      Hashtbl.remove t.conns fd;
      Mutex.unlock t.lock;
      try Unix.close fd with Unix.Unix_error _ -> ())
    loop

let serve t handler =
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      let readable =
        match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      if (not (Atomic.get t.stop)) && List.mem t.listen_fd readable then begin
        (match Unix.accept t.listen_fd with
        | fd, _ ->
          Atomic.incr t.connections;
          Mutex.lock t.lock;
          Hashtbl.replace t.conns fd ();
          let th = Thread.create (handle_conn t handler) fd in
          t.threads := th :: !(t.threads);
          Mutex.unlock t.lock
        | exception Unix.Unix_error _ -> ());
        loop ()
      end
      else loop ()
    end
  in
  loop ();
  (* Drain: wake blocked readers with an orderly EOF, then join.  Each
     connection thread closes its own fd on the way out. *)
  Mutex.lock t.lock;
  let live = Hashtbl.fold (fun fd () acc -> fd :: acc) t.conns [] in
  let ths = !(t.threads) in
  Mutex.unlock t.lock;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    live;
  List.iter Thread.join ths;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ()
