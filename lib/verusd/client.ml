type t = { fd : Unix.file_descr; mutable closed : bool }

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | () -> Ok { fd; closed = false }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to daemon socket %s: %s (is verusd running?)"
         socket_path (Unix.error_message e))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send_raw t bytes =
  let b = Bytes.of_string bytes in
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write t.fd b off len in
      go (off + n) (len - n)
    end
  in
  go 0 (Bytes.length b)

let read_event t =
  match Rpc.read_frame t.fd with
  | Rpc.Eof -> Error "daemon closed the connection"
  | Rpc.Bad e -> Error (Printf.sprintf "[%s] %s" e.Rpc.code e.Rpc.message)
  | Rpc.Frame j -> (
    match Rpc.event_of_json j with
    | Ok (id, ev) -> Ok (id, ev)
    | Error e -> Error (Printf.sprintf "invalid event frame: [%s] %s" e.Rpc.code e.Rpc.message))

let call t ?on_event (req : Rpc.request) =
  match Rpc.write_frame t.fd (Rpc.request_to_json req) with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "write failed: %s" (Unix.error_message e))
  | () ->
    let rec await () =
      match read_event t with
      | Error _ as e -> e
      | Ok (id, _) when id <> req.Rpc.r_id -> await ()
      | Ok (_, ((Rpc.E_done _ | Rpc.E_error _ | Rpc.E_pong | Rpc.E_status _) as final)) ->
        Ok final
      | Ok (_, ((Rpc.E_vc _ | Rpc.E_fn _) as ev)) ->
        (match on_event with Some f -> f ev | None -> ());
        await ()
    in
    await ()
