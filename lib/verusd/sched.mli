(** Sched — the obligation work queue.

    Every proof obligation the driver discharges — one verification
    condition, not one program or one function — is an independently
    schedulable unit of work.  This module owns {e all} of their
    execution: a persistent pool of OCaml 5 domains with per-worker
    deques and work stealing, shared by every request a daemon serves,
    plus inline execution paths ({!run_seq}, {!submit_now}) so
    single-job runs execute obligations through the same entry points
    without spawning domains.

    The pool is deliberately generic: tasks are closures, results are
    whatever the closure returns.  [Driver.verify_program] submits its
    per-VC solves here (a transient pool for [jobs > 1], an external
    shared pool when [Config.sched] is set), and the daemon's many
    concurrent requests interleave their batches in the same workers —
    which is what turns per-program parallelism into fleet-wide
    obligation scheduling.

    Scheduling discipline: tasks submitted from outside the pool are
    dealt round-robin to the {e tail} of the worker deques; a task
    submitted from {e inside} a worker (a task spawning subtasks — the
    driver's per-function encode task spawning its per-VC solves) goes
    to the {e head} of that worker's own deque.  Workers pop their own
    head (newest first, so a function's obligations run depth-first,
    right after its encode) and steal from other deques' tails (oldest
    first — the coarse, still-unsplit tasks).  Keeping each function's
    encode adjacent to its solves is load-bearing: proof certificates
    are sensitive to term-interning order, and this discipline
    reproduces the interning layout of a sequential run (see
    [test_vcheck]'s jobs-determinism test).

    Concurrency contract: {!run} and batches may be used from any
    number of threads at once; batches share the workers fairly.  The
    [on_result] callback runs in the worker domain that finished the
    task, so it must be thread-safe; {!run} returns (and {!await}
    unblocks) only after every task {e and} every [on_result] callback
    of the batch has completed. *)

type t
(** A pool of worker domains with per-worker deques. *)

(** Lifetime counters, for [verusd status] and the daemon bench. *)
type stats = {
  sd_domains : int;  (** worker domains in the pool *)
  sd_submitted : int;  (** tasks ever enqueued *)
  sd_executed : int list;  (** tasks taken and run, per worker (length [sd_domains]) *)
  sd_stolen : int;  (** tasks a worker took from another worker's deque *)
  sd_batches : int;  (** batches ever started ({!run} calls + {!batch}es run on the pool) *)
}

val create : domains:int -> t
(** Spawn a pool of [domains] worker domains ([domains >= 1];
    [Invalid_argument] otherwise).  Workers sleep when every deque is
    empty and are woken by submission. *)

val domain_count : t -> int
(** Number of worker domains in the pool. *)

val run : t -> ?on_result:(int -> 'a -> unit) -> (unit -> 'a) array -> 'a array
(** Execute one fixed batch.  Tasks are dealt round-robin across the
    worker deques; idle workers steal.  [on_result i r] is invoked in
    the finishing worker's domain as soon as task [i] completes — this
    is what the daemon's streamed per-VC verdicts ride on.  The
    returned array is index-aligned with the input regardless of
    completion order.  If a task (or its callback) raises, the first
    exception is re-raised here after the whole batch has drained —
    stragglers are never abandoned in the queue. *)

val run_seq : ?on_result:(int -> 'a -> unit) -> (unit -> 'a) array -> 'a array
(** The sequential path: execute a fixed batch inline on the calling
    thread, in submission order, with the same [on_result] contract.
    Obligation execution stays in this module even when no pool
    exists. *)

(** {2 Dynamic batches}

    A {!batch} is an open-ended set of tasks that can grow while it
    runs: a task may {!submit} further tasks into its own batch (the
    driver's per-function tasks submit their per-VC solves once the
    function is encoded and the obligation count is known).  {!await}
    blocks until the batch has fully drained — including every task
    submitted mid-flight. *)

type batch
(** An open-ended task set with a completion barrier. *)

val batch : unit -> batch

val submit : t -> batch -> ?on_result:(unit -> unit) -> (unit -> unit) -> unit
(** Enqueue one task of [batch] on the pool.  Called from a worker of
    the same pool, the task goes to the head of that worker's own
    deque (depth-first, stealable from the tail); called from outside,
    it is dealt round-robin.  [on_result] runs in the finishing
    worker's domain right after the task.  Submitting after the batch
    has fully drained and {!await} returned is a programming error
    (the barrier is one-shot). *)

val submit_now : batch -> ?on_result:(unit -> unit) -> (unit -> unit) -> unit
(** Run one task of [batch] inline, immediately, on the calling
    thread — the sequential twin of {!submit}, so [jobs = 1] and pool
    runs share the batch bookkeeping (exception capture included). *)

val await : batch -> unit
(** Block until every task of the batch (and every [on_result]) has
    completed, then return.  If any task or callback raised, the first
    exception is re-raised here after the batch has drained. *)

val stats : t -> stats

val shutdown : t -> unit
(** Stop and join every worker.  Idempotent.  Pending tasks of an
    in-flight batch are drained before workers exit (shutdown waits
    for the deques to empty, so no batch is left incomplete). *)
