(* Work-stealing obligation pool.  Each worker owns a deque (mutex-
   guarded — obligations are millisecond-scale SMT solves, so a lock
   per push/pop is noise): external submission deals tasks round-robin
   to deque tails, a worker pushes its own spawned subtasks to its
   head, pops its own head (depth-first) and steals from other deques'
   tails (oldest-first).  Depth-first own-execution keeps a function's
   encode adjacent to its VC solves — proof certificates are sensitive
   to term-interning order, and this discipline reproduces a
   sequential run's layout (see sched.mli).

   A single (mutex, condition, pending-counter) triple handles
   sleep/wake: the counter is only read under the mutex on the sleep
   path, and every increment is followed by a broadcast under the same
   mutex, so the classic lost-wakeup interleaving cannot occur. *)

type job = unit -> unit

(* Two-list deque, head = front.  All access is under [w_lock]. *)
type dq = { mutable front : job list; mutable back : job list (* reversed *) }

type worker = { w_lock : Mutex.t; w_q : dq }

type t = {
  workers : worker array;
  mutable handles : unit Domain.t list;
  m : Mutex.t;
  c : Condition.t;
  pending : int Atomic.t;  (* enqueued, not yet taken *)
  stop : bool Atomic.t;
  rr : int Atomic.t;  (* round-robin deal cursor *)
  submitted : int Atomic.t;
  executed : int Atomic.t array;
  stolen : int Atomic.t;
  batches : int Atomic.t;
}

type stats = {
  sd_domains : int;
  sd_submitted : int;
  sd_executed : int list;
  sd_stolen : int;
  sd_batches : int;
}

(* Which pool/worker the current domain is, if it is a pool worker —
   lets [submit] route a worker's own subtasks to its own deque head. *)
let dls_worker : (Obj.t * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let self_index t =
  match !(Domain.DLS.get dls_worker) with
  | Some (pool, i) when pool == Obj.repr t -> Some i
  | _ -> None

let pop_front (d : dq) =
  match d.front with
  | j :: rest ->
    d.front <- rest;
    Some j
  | [] -> (
    match List.rev d.back with
    | [] -> None
    | j :: rest ->
      d.back <- [];
      d.front <- rest;
      Some j)

let pop_back (d : dq) =
  match d.back with
  | j :: rest ->
    d.back <- rest;
    Some j
  | [] -> (
    match List.rev d.front with
    | [] -> None
    | j :: rest ->
      d.front <- [];
      d.back <- rest;
      Some j)

let locked (w : worker) f =
  Mutex.lock w.w_lock;
  let r = f w.w_q in
  Mutex.unlock w.w_lock;
  r

(* Own deque head first, then scan the others' tails from our right-
   hand neighbour (spreads thieves instead of mobbing worker 0). *)
let take t i =
  match locked t.workers.(i) pop_front with
  | Some j -> Some (j, false)
  | None ->
    let n = Array.length t.workers in
    let rec scan k =
      if k = n then None
      else
        match locked t.workers.((i + k) mod n) pop_back with
        | Some j -> Some (j, true)
        | None -> scan (k + 1)
    in
    scan 1

let worker_loop t i () =
  Domain.DLS.get dls_worker := Some (Obj.repr t, i);
  let rec go () =
    match take t i with
    | Some (j, was_steal) ->
      Atomic.decr t.pending;
      if was_steal then Atomic.incr t.stolen;
      (* Count before running: the job body is what signals batch
         completion, so counting after it would let [await] return
         with the last increment still in flight. *)
      Atomic.incr t.executed.(i);
      j ();
      go ()
    | None ->
      if Atomic.get t.stop then ()
        (* stop is only honoured with every deque empty: an in-flight
           batch is drained, never abandoned *)
      else begin
        Mutex.lock t.m;
        if Atomic.get t.pending = 0 && not (Atomic.get t.stop) then
          Condition.wait t.c t.m;
        Mutex.unlock t.m;
        go ()
      end
  in
  go ()

let create ~domains =
  if domains < 1 then invalid_arg "Sched.create: domains must be >= 1";
  let t =
    {
      workers =
        Array.init domains (fun _ ->
            { w_lock = Mutex.create (); w_q = { front = []; back = [] } });
      handles = [];
      m = Mutex.create ();
      c = Condition.create ();
      pending = Atomic.make 0;
      stop = Atomic.make false;
      rr = Atomic.make 0;
      submitted = Atomic.make 0;
      executed = Array.init domains (fun _ -> Atomic.make 0);
      stolen = Atomic.make 0;
      batches = Atomic.make 0;
    }
  in
  t.handles <- List.init domains (fun i -> Domain.spawn (worker_loop t i));
  t

let domain_count t = Array.length t.workers

let enqueue t (j : job) =
  (match self_index t with
  | Some i -> locked t.workers.(i) (fun d -> d.front <- j :: d.front)
  | None ->
    let i = Atomic.fetch_and_add t.rr 1 mod Array.length t.workers in
    locked t.workers.(i) (fun d -> d.back <- j :: d.back));
  Atomic.incr t.submitted;
  Atomic.incr t.pending;
  Mutex.lock t.m;
  Condition.broadcast t.c;
  Mutex.unlock t.m

(* --- dynamic batches -------------------------------------------------- *)

type batch = {
  b_outstanding : int Atomic.t;  (* submitted, not yet finished *)
  b_first_exn : exn option Atomic.t;
  b_m : Mutex.t;
  b_c : Condition.t;
}

let batch () =
  {
    b_outstanding = Atomic.make 0;
    b_first_exn = Atomic.make None;
    b_m = Mutex.create ();
    b_c = Condition.create ();
  }

(* Run a batch member inline: capture the first exception, count down,
   and wake the awaiter on the last task.  The caller must have
   incremented [b_outstanding] before this runs (submit-before-run), so
   the count can only reach zero when the batch is truly drained. *)
let run_member b ?on_result task () =
  (try
     task ();
     match on_result with Some cb -> cb () | None -> ()
   with e -> ignore (Atomic.compare_and_set b.b_first_exn None (Some e)));
  if Atomic.fetch_and_add b.b_outstanding (-1) = 1 then begin
    Mutex.lock b.b_m;
    Condition.broadcast b.b_c;
    Mutex.unlock b.b_m
  end

let submit t b ?on_result task =
  Atomic.incr b.b_outstanding;
  enqueue t (run_member b ?on_result task)

let submit_now b ?on_result task =
  Atomic.incr b.b_outstanding;
  run_member b ?on_result task ()

let await b =
  Mutex.lock b.b_m;
  while Atomic.get b.b_outstanding > 0 do
    Condition.wait b.b_c b.b_m
  done;
  Mutex.unlock b.b_m;
  match Atomic.get b.b_first_exn with Some e -> raise e | None -> ()

(* --- fixed batches ---------------------------------------------------- *)

(* Wrap fixed tasks so each records its index-aligned result before the
   shared batch bookkeeping counts it done. *)
let wrap_fixed ?on_result tasks =
  let n = Array.length tasks in
  let results = Array.make n None in
  let b = batch () in
  let member i () =
    let r = tasks.(i) () in
    results.(i) <- Some r;
    match on_result with Some cb -> cb i r | None -> ()
  in
  let collect () =
    await b;
    Array.map (function Some r -> r | None -> assert false (* drained *)) results
  in
  (b, member, collect)

let run t ?on_result tasks =
  if Array.length tasks = 0 then [||]
  else begin
    Atomic.incr t.batches;
    let b, member, collect = wrap_fixed ?on_result tasks in
    Array.iteri (fun i _ -> submit t b (member i)) tasks;
    collect ()
  end

let run_seq ?on_result tasks =
  if Array.length tasks = 0 then [||]
  else begin
    let b, member, collect = wrap_fixed ?on_result tasks in
    Array.iteri (fun i _ -> submit_now b (member i)) tasks;
    collect ()
  end

let stats t =
  {
    sd_domains = Array.length t.workers;
    sd_submitted = Atomic.get t.submitted;
    sd_executed = Array.to_list (Array.map Atomic.get t.executed);
    sd_stolen = Atomic.get t.stolen;
    sd_batches = Atomic.get t.batches;
  }

let shutdown t =
  Atomic.set t.stop true;
  Mutex.lock t.m;
  Condition.broadcast t.c;
  Mutex.unlock t.m;
  List.iter Domain.join t.handles;
  t.handles <- []
