(** VIR — the verification intermediate representation.

    This plays the role of the typed, ownership-checked Rust AST that Verus
    consumes: benchmark and case-study programs are written once as VIR
    values, then verified under the different framework profiles (ownership
    vs. heap vs. prophecy encodings, trigger policies, pruning).

    Mirroring the paper's language split (§3.1):
    - [Spec] functions are pure, total mathematical functions (directly
      encodable as SMT functions — the key encoding economy Verus gets);
    - [Proof] functions carry lemmas (no runtime effect);
    - [Exec] functions are compiled code with requires/ensures, loops with
      invariants, and bounded integer types whose overflow must be proved
      absent. *)

type mode = Spec | Proof | Exec

type int_kind = I_math  (** unbounded mathematical int *) | I_u8 | I_u16 | I_u32 | I_u64

type ty =
  | TBool
  | TInt of int_kind
  | TSeq of ty  (** spec-level sequence *)
  | TData of string  (** declared algebraic datatype *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** Euclidean *)
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
  | Implies
  | BitAnd
  | BitOr
  | BitXor
  | Shl
  | Shr

type trigger_attr = Term_auto  (** let the tool pick *) | Term_explicit of expr list list

and expr =
  | EVar of string
  | EOld of string  (** pre-state value of a mutable parameter, in ensures *)
  | EBool of bool
  | EInt of int
  | EUnop of unop * expr
  | EBinop of binop * expr * expr
  | EIte of expr * expr * expr
  | ECall of string * expr list  (** spec-function application in specs *)
  | ECtor of string * string * expr list  (** datatype, variant, args *)
  | EField of expr * string  (** selector *)
  | EIs of expr * string  (** variant test *)
  | ESeq of seq_op
  | EForall of (string * ty) list * trigger_attr * expr
  | EExists of (string * ty) list * trigger_attr * expr

and unop = Not | Neg

and seq_op =
  | SeqEmpty of ty
  | SeqLen of expr
  | SeqIndex of expr * expr
  | SeqPush of expr * expr  (** append one element at the back *)
  | SeqSkip of expr * expr  (** drop the first k elements *)
  | SeqTake of expr * expr
  | SeqUpdate of expr * expr * expr
  | SeqAppend of expr * expr

type proof_hint = H_default | H_bit_vector | H_nonlinear | H_integer_ring | H_compute

type stmt =
  | SLet of string * ty * expr  (** let binding (shadowing not allowed) *)
  | SAssign of string * expr  (** mutation of a local *)
  | SIf of expr * stmt list * stmt list
  | SWhile of { cond : expr; invariants : expr list; decreases : expr option; body : stmt list }
      (** [decreases] is a nonnegative integer measure that must strictly
          decrease each iteration (termination, as in Verus) *)
  | SCall of string option * string * expr list
      (** [SCall (Some x, f, args)] binds the result; mutable arguments are
          written back by the encoding *)
  | SAssert of expr * proof_hint
  | SAssume of expr
  | SReturn of expr option

type param = { pname : string; pty : ty; pmut : bool  (** &mut parameter *) }

type fndecl = {
  fname : string;
  fmode : mode;
  params : param list;
  ret : (string * ty) option;
  requires : expr list;
  ensures : expr list;
  body : stmt list option;  (** [None]: trusted external function *)
  spec_body : expr option;  (** definition, for Spec functions *)
  attrs : attr list;
}

and attr =
  | A_epr_mode
  | A_opaque  (** never unfold the spec body *)
  | A_decreases of expr
      (** well-founded measure for a recursive Spec/Proof function *)

type datatype = {
  dname : string;
  variants : (string * (string * ty) list) list;  (** variant, fields *)
}

type program = { datatypes : datatype list; functions : fndecl list }

(** {2 Convenience constructors} *)

val v : string -> expr
val i : int -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( ==: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr
val ( ==>: ) : expr -> expr -> expr
val enot : expr -> expr

val find_fn : program -> string -> fndecl
(** Raises [Not_found]. *)

val find_datatype : program -> string -> datatype

val ty_equal : ty -> ty -> bool
val ty_to_string : ty -> string
val int_bounds : int_kind -> (Vbase.Bigint.t * Vbase.Bigint.t) option
(** [None] for mathematical ints; [Some (lo, hi)] inclusive otherwise. *)

(** {2 Traversal accessors}

    Structural helpers used by the static-analysis passes ([Vlint]) and
    other consumers that need to walk VIR without caring about every
    constructor. *)

val subexprs : expr -> expr list
(** Immediate sub-expressions (one level). *)

val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a
(** Pre-order fold over an expression and all its sub-expressions. *)

val stmt_exprs : stmt -> expr list
(** Expressions appearing directly in one statement (loop invariants and
    decreases included; does not recurse into nested statements). *)

val sub_stmts : stmt -> stmt list
(** Immediate nested statements (branches, loop body). *)

val fold_stmt : ('a -> stmt -> 'a) -> 'a -> stmt -> 'a
(** Pre-order fold over a statement and all nested statements. *)

val fn_stmts : fndecl -> stmt list
(** Every statement of the body, pre-order, or [[]] for bodyless fns. *)

val fn_exprs : fndecl -> expr list
(** All expressions of a function: requires, ensures, spec body,
    decreases measures, and every expression in the executable body. *)

val calls_in_expr : expr -> string list
(** Names of [ECall] targets in an expression (with duplicates). *)

val spec_callees : fndecl -> string list
(** Sorted, deduplicated callees reachable from spec positions
    (spec body, contracts, decreases). *)

val body_callees : fndecl -> string list
(** Sorted, deduplicated callees of the executable/proof body:
    statement-position [SCall]s plus spec calls in body expressions. *)

val free_vars : expr -> string list
(** Free variables, sorted; quantifier-bound names removed, [EOld x]
    counts as a read of [x]. *)

val assigned_vars : program -> stmt list -> string list
(** Variables assigned anywhere in the statements: [SAssign] targets,
    [SCall] result bindings, and variables passed in [&mut] argument
    positions (callee looked up in [program]). Sorted, deduplicated. *)

val fn_decreases : fndecl -> expr option
(** The function's [A_decreases] measure, if any. *)
