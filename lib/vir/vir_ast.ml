type mode = Spec | Proof | Exec

type int_kind = I_math | I_u8 | I_u16 | I_u32 | I_u64

type ty = TBool | TInt of int_kind | TSeq of ty | TData of string

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
  | Implies
  | BitAnd
  | BitOr
  | BitXor
  | Shl
  | Shr

type trigger_attr = Term_auto | Term_explicit of expr list list

and expr =
  | EVar of string
  | EOld of string
  | EBool of bool
  | EInt of int
  | EUnop of unop * expr
  | EBinop of binop * expr * expr
  | EIte of expr * expr * expr
  | ECall of string * expr list
  | ECtor of string * string * expr list
  | EField of expr * string
  | EIs of expr * string
  | ESeq of seq_op
  | EForall of (string * ty) list * trigger_attr * expr
  | EExists of (string * ty) list * trigger_attr * expr

and unop = Not | Neg

and seq_op =
  | SeqEmpty of ty
  | SeqLen of expr
  | SeqIndex of expr * expr
  | SeqPush of expr * expr
  | SeqSkip of expr * expr
  | SeqTake of expr * expr
  | SeqUpdate of expr * expr * expr
  | SeqAppend of expr * expr

type proof_hint = H_default | H_bit_vector | H_nonlinear | H_integer_ring | H_compute

type stmt =
  | SLet of string * ty * expr
  | SAssign of string * expr
  | SIf of expr * stmt list * stmt list
  | SWhile of { cond : expr; invariants : expr list; decreases : expr option; body : stmt list }
  | SCall of string option * string * expr list
  | SAssert of expr * proof_hint
  | SAssume of expr
  | SReturn of expr option

type param = { pname : string; pty : ty; pmut : bool }

type fndecl = {
  fname : string;
  fmode : mode;
  params : param list;
  ret : (string * ty) option;
  requires : expr list;
  ensures : expr list;
  body : stmt list option;
  spec_body : expr option;
  attrs : attr list;
}

and attr = A_epr_mode | A_opaque | A_decreases of expr

type datatype = { dname : string; variants : (string * (string * ty) list) list }

type program = { datatypes : datatype list; functions : fndecl list }

let v x = EVar x
let i n = EInt n
let ( +: ) a b = EBinop (Add, a, b)
let ( -: ) a b = EBinop (Sub, a, b)
let ( *: ) a b = EBinop (Mul, a, b)
let ( <: ) a b = EBinop (Lt, a, b)
let ( <=: ) a b = EBinop (Le, a, b)
let ( >: ) a b = EBinop (Gt, a, b)
let ( >=: ) a b = EBinop (Ge, a, b)
let ( ==: ) a b = EBinop (Eq, a, b)
let ( <>: ) a b = EBinop (Ne, a, b)
let ( &&: ) a b = EBinop (And, a, b)
let ( ||: ) a b = EBinop (Or, a, b)
let ( ==>: ) a b = EBinop (Implies, a, b)
let enot e = EUnop (Not, e)

let find_fn p name = List.find (fun f -> String.equal f.fname name) p.functions
let find_datatype p name = List.find (fun d -> String.equal d.dname name) p.datatypes

let rec ty_equal a b =
  match (a, b) with
  | TBool, TBool -> true
  | TInt k1, TInt k2 -> k1 = k2
  | TSeq t1, TSeq t2 -> ty_equal t1 t2
  | TData n1, TData n2 -> String.equal n1 n2
  | (TBool | TInt _ | TSeq _ | TData _), _ -> false

let rec ty_to_string = function
  | TBool -> "bool"
  | TInt I_math -> "int"
  | TInt I_u8 -> "u8"
  | TInt I_u16 -> "u16"
  | TInt I_u32 -> "u32"
  | TInt I_u64 -> "u64"
  | TSeq t -> "Seq<" ^ ty_to_string t ^ ">"
  | TData n -> n

let int_bounds = function
  | I_math -> None
  | I_u8 -> Some (Vbase.Bigint.zero, Vbase.Bigint.of_int 255)
  | I_u16 -> Some (Vbase.Bigint.zero, Vbase.Bigint.of_int 65535)
  | I_u32 -> Some (Vbase.Bigint.zero, Vbase.Bigint.of_int 0xFFFFFFFF)
  | I_u64 ->
    Some (Vbase.Bigint.zero, Vbase.Bigint.sub (Vbase.Bigint.pow Vbase.Bigint.two 64) Vbase.Bigint.one)

(* ------------------------------------------------------------------ *)
(* Traversal accessors (used by Vlint and other analyses)             *)
(* ------------------------------------------------------------------ *)

let subexprs (e : expr) : expr list =
  match e with
  | EVar _ | EOld _ | EBool _ | EInt _ -> []
  | EUnop (_, a) -> [ a ]
  | EBinop (_, a, b) -> [ a; b ]
  | EIte (a, b, c) -> [ a; b; c ]
  | ECall (_, args) -> args
  | ECtor (_, _, args) -> args
  | EField (a, _) -> [ a ]
  | EIs (a, _) -> [ a ]
  | ESeq s -> (
      match s with
      | SeqEmpty _ -> []
      | SeqLen a -> [ a ]
      | SeqIndex (a, b) | SeqPush (a, b) | SeqSkip (a, b) | SeqTake (a, b) | SeqAppend (a, b) ->
          [ a; b ]
      | SeqUpdate (a, b, c) -> [ a; b; c ])
  | EForall (_, _, b) | EExists (_, _, b) -> [ b ]

let rec fold_expr (f : 'a -> expr -> 'a) (acc : 'a) (e : expr) : 'a =
  List.fold_left (fold_expr f) (f acc e) (subexprs e)

(* Expressions appearing directly in one statement (not recursing into
   nested statements). *)
let stmt_exprs (s : stmt) : expr list =
  match s with
  | SLet (_, _, e) | SAssign (_, e) -> [ e ]
  | SIf (c, _, _) -> [ c ]
  | SWhile { cond; invariants; decreases; body = _ } ->
      (cond :: invariants) @ Option.to_list decreases
  | SCall (_, _, args) -> args
  | SAssert (e, _) | SAssume (e) -> [ e ]
  | SReturn e -> Option.to_list e

let sub_stmts (s : stmt) : stmt list =
  match s with
  | SIf (_, a, b) -> a @ b
  | SWhile { body; _ } -> body
  | SLet _ | SAssign _ | SCall _ | SAssert _ | SAssume _ | SReturn _ -> []

let rec fold_stmt (f : 'a -> stmt -> 'a) (acc : 'a) (s : stmt) : 'a =
  List.fold_left (fold_stmt f) (f acc s) (sub_stmts s)

let fn_stmts (fd : fndecl) : stmt list =
  match fd.body with
  | None -> []
  | Some body -> List.fold_left (fold_stmt (fun acc s -> s :: acc)) [] body |> List.rev

(* All expressions of a function: contracts, spec body, decreases
   measures, and every expression in the executable body. *)
let fn_exprs (fd : fndecl) : expr list =
  fd.requires @ fd.ensures
  @ Option.to_list fd.spec_body
  @ List.filter_map (function A_decreases e -> Some e | A_epr_mode | A_opaque -> None) fd.attrs
  @ List.concat_map stmt_exprs (fn_stmts fd)

let calls_in_expr (e : expr) : string list =
  fold_expr (fun acc e -> match e with ECall (f, _) -> f :: acc | _ -> acc) [] e
  |> List.rev

(* Callees reachable from a function's spec positions only (spec body +
   contracts + decreases). *)
let spec_callees (fd : fndecl) : string list =
  List.concat_map calls_in_expr
    (fd.requires @ fd.ensures @ Option.to_list fd.spec_body
    @ List.filter_map (function A_decreases e -> Some e | A_epr_mode | A_opaque -> None) fd.attrs)
  |> List.sort_uniq compare

(* Callees of the executable/proof body: statement-position SCalls plus
   spec calls in body expressions. *)
let body_callees (fd : fndecl) : string list =
  let stmts = fn_stmts fd in
  let scalls = List.filter_map (function SCall (_, f, _) -> Some f | _ -> None) stmts in
  let ecalls = List.concat_map (fun s -> List.concat_map calls_in_expr (stmt_exprs s)) stmts in
  List.sort_uniq compare (scalls @ ecalls)

(* Free variables of an expression; quantifier-bound variables are
   removed, [EOld x] counts as a read of [x]. *)
let free_vars (e : expr) : string list =
  let module SS = Set.Make (String) in
  let rec go bound acc e =
    match e with
    | EVar x | EOld x -> if SS.mem x bound then acc else SS.add x acc
    | EForall (qs, _, b) | EExists (qs, _, b) ->
        let bound' = List.fold_left (fun s (x, _) -> SS.add x s) bound qs in
        go bound' acc b
    | _ -> List.fold_left (go bound) acc (subexprs e)
  in
  SS.elements (go SS.empty SS.empty e)

(* Variables assigned within a statement list: SAssign targets, SCall
   result bindings, and variables passed to &mut parameters of callees.
   [prog] is consulted for parameter mutability; unknown callees are
   treated as non-mutating. *)
let assigned_vars (prog : program) (stmts : stmt list) : string list =
  let acc = ref [] in
  let visit s =
    match s with
    | SAssign (x, _) -> acc := x :: !acc
    | SCall (bind, f, args) ->
        (match bind with Some x -> acc := x :: !acc | None -> ());
        (match List.find_opt (fun fd -> String.equal fd.fname f) prog.functions with
        | Some fd ->
            List.iteri
              (fun i p ->
                if p.pmut then
                  match List.nth_opt args i with
                  | Some (EVar x) -> acc := x :: !acc
                  | _ -> ())
              fd.params
        | None -> ())
    | SLet _ | SIf _ | SWhile _ | SAssert _ | SAssume _ | SReturn _ -> ()
  in
  List.iter (fun s -> ignore (fold_stmt (fun () s -> visit s) () s)) stmts;
  List.sort_uniq compare !acc

let fn_decreases (fd : fndecl) : expr option =
  List.find_map (function A_decreases e -> Some e | A_epr_mode | A_opaque -> None) fd.attrs
