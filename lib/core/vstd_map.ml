(* A vstd-style verified lemma library for finite maps, stated directly over
   the SMT theory (the analogue of Verus's [vstd::map] broadcast lemmas).

   Maps are an uninterpreted sort axiomatized by read-over-write, domain and
   cardinality axioms with curated triggers — the same encoding style
   [Theories] uses for sequences.  Every lemma below is an obligation
   discharged by the in-repo solver; nothing is assumed beyond the axioms. *)

module T = Smt.Term
module S = Smt.Sort

let map_sort = S.Usort "VMap"
let sel_sym = T.Sym.declare "vmap.sel" [ map_sort; S.Int ] S.Int
let dom_sym = T.Sym.declare "vmap.dom" [ map_sort; S.Int ] S.Bool
let store_sym = T.Sym.declare "vmap.store" [ map_sort; S.Int; S.Int ] map_sort
let remove_sym = T.Sym.declare "vmap.remove" [ map_sort; S.Int ] map_sort
let empty_sym = T.Sym.declare "vmap.empty" [] map_sort
let card_sym = T.Sym.declare "vmap.card" [ map_sort ] S.Int

let sel m k = T.app sel_sym [ m; k ]
let dom m k = T.app dom_sym [ m; k ]
let store m k v = T.app store_sym [ m; k; v ]
let remove m k = T.app remove_sym [ m; k ]
let empty = T.const empty_sym
let card m = T.app card_sym [ m ]
let i = T.int_of

let axioms =
  let m = T.bvar "m" map_sort in
  let k = T.bvar "k" S.Int
  and j = T.bvar "j" S.Int
  and v = T.bvar "v" S.Int in
  [
    (* Read-over-write, as one ite-axiom (the case split is the SAT
       solver's job, not the instantiation engine's). *)
    T.forall
      ~triggers:[ [ sel (store m k v) j ] ]
      [ ("m", map_sort); ("k", S.Int); ("v", S.Int); ("j", S.Int) ]
      (T.eq (sel (store m k v) j) (T.ite (T.eq j k) v (sel m j)));
    T.forall
      ~triggers:[ [ dom (store m k v) j ] ]
      [ ("m", map_sort); ("k", S.Int); ("v", S.Int); ("j", S.Int) ]
      (T.iff (dom (store m k v) j) (T.or_ [ T.eq j k; dom m j ]));
    T.forall
      ~triggers:[ [ sel (remove m k) j ] ]
      [ ("m", map_sort); ("k", S.Int); ("j", S.Int) ]
      (T.implies (T.neq j k) (T.eq (sel (remove m k) j) (sel m j)));
    T.forall
      ~triggers:[ [ dom (remove m k) j ] ]
      [ ("m", map_sort); ("k", S.Int); ("j", S.Int) ]
      (T.iff (dom (remove m k) j) (T.and_ [ T.neq j k; dom m j ]));
    T.forall ~triggers:[ [ dom empty k ] ] [ ("k", S.Int) ] (T.not_ (dom empty k));
    (* Cardinality tracks the domain. *)
    T.eq (card empty) (i 0);
    T.forall
      ~triggers:[ [ card (store m k v) ] ]
      [ ("m", map_sort); ("k", S.Int); ("v", S.Int) ]
      (T.eq (card (store m k v)) (T.ite (dom m k) (card m) (T.add [ card m; i 1 ])));
    T.forall
      ~triggers:[ [ card (remove m k) ] ]
      [ ("m", map_sort); ("k", S.Int) ]
      (T.eq (card (remove m k)) (T.ite (dom m k) (T.sub (card m) (i 1)) (card m)));
    T.forall ~triggers:[ [ card m ] ] [ ("m", map_sort) ] (T.ge (card m) (i 0));
  ]

type obligation = { name : string; proved : bool; detail : string; time_s : float }

let check name ?(hyps = []) goal =
  let t0 = Unix.gettimeofday () in
  let r = Smt.Solver.check_valid ~hyps:(axioms @ hyps) goal in
  {
    name;
    proved = r.Smt.Solver.answer = Smt.Solver.Unsat;
    detail =
      (match r.Smt.Solver.answer with
      | Smt.Solver.Unsat -> ""
      | Smt.Solver.Sat -> "countermodel"
      | Smt.Solver.Unknown msg -> msg);
    time_s = Unix.gettimeofday () -. t0;
  }

let fc name sort = T.const (T.Sym.declare ("vm." ^ name) [] sort)

let run () =
  let m = fc "m" map_sort in
  let k = fc "k" S.Int
  and j = fc "j" S.Int
  and t = fc "t" S.Int
  and v = fc "v" S.Int
  and w = fc "w" S.Int in
  [
    check "sel_store_same: store(m,k,v)[k] == v" (T.eq (sel (store m k v) k) v);
    check "sel_store_other: j != k ==> store(m,k,v)[j] == m[j]"
      ~hyps:[ T.neq j k ]
      (T.eq (sel (store m k v) j) (sel m j));
    check "dom_store: dom(store(m,k,v), j) <=> j == k || dom(m, j)"
      (T.iff (dom (store m k v) j) (T.or_ [ T.eq j k; dom m j ]));
    check "dom_empty: !dom(empty, k)" (T.not_ (dom empty k));
    check "store_store_same collapses (pointwise)"
      (T.eq (sel (store (store m k v) k w) j) (sel (store m k w) j));
    check "store_store_commute at distinct keys (pointwise)"
      ~hyps:[ T.neq k j ]
      (T.eq (sel (store (store m k v) j w) t) (sel (store (store m j w) k v) t));
    check "remove_store_same: dom(remove(store(m,k,v),k), j) <=> dom(remove(m,k), j)"
      (T.iff (dom (remove (store m k v) k) j) (dom (remove m k) j));
    check "card_store_fresh: !dom(m,k) ==> |store(m,k,v)| == |m| + 1"
      ~hyps:[ T.not_ (dom m k) ]
      (T.eq (card (store m k v)) (T.add [ card m; i 1 ]));
    check "card_store_update: dom(m,k) ==> |store(m,k,v)| == |m|"
      ~hyps:[ dom m k ]
      (T.eq (card (store m k v)) (card m));
    check "card_remove_store: dom(m,k) ==> |store(remove(m,k),k,v)| == |m|"
      ~hyps:[ dom m k ]
      (T.eq (card (store (remove m k) k v)) (card m));
    check "card_singleton: |store(empty,k,v)| == 1"
      (T.eq (card (store empty k v)) (i 1));
    check "card_remove_bound: |remove(m,k)| <= |m|"
      (T.le (card (remove m k)) (card m));
    (* The vstd analogue carries a one-line proof hint
       (assert(m.remove(k).len() >= 0)): mentioning card(remove(m,k)) seeds
       the instantiation (the hint is itself an instance of the
       nonnegativity axiom, so assuming it is sound). *)
    check "nonempty_dom: dom(m,k) ==> |m| >= 1"
      ~hyps:[ dom m k; T.ge (card (remove m k)) (i 0) ]
      (T.ge (card m) (i 1));
  ]

let all_proved obs = List.for_all (fun o -> o.proved) obs
