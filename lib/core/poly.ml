module Rat = Vbase.Rat
module T = Smt.Term

type mono = (string * int) list
type t = (mono * Rat.t) list

(* Lex order on monomials: compare variable by variable; a missing variable
   counts as exponent 0, and smaller variable names are "more significant".
   Higher total ordering first in the polynomial representation. *)
let rec mono_compare (a : mono) (b : mono) =
  match (a, b) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | (xa, ea) :: ra, (xb, eb) :: rb ->
    let c = compare xa xb in
    if c < 0 then 1 (* a has a more significant variable *)
    else if c > 0 then -1
    else if ea <> eb then compare ea eb
    else mono_compare ra rb

let zero : t = []
let is_zero (p : t) = p = []

let normalize (l : (mono * Rat.t) list) : t =
  let merged = Hashtbl.create 16 in
  List.iter
    (fun (m, c) ->
      let cur = match Hashtbl.find_opt merged m with Some x -> x | None -> Rat.zero in
      Hashtbl.replace merged m (Rat.add cur c))
    l;
  Hashtbl.fold (fun m c acc -> if Rat.is_zero c then acc else (m, c) :: acc) merged []
  |> List.sort (fun (m1, _) (m2, _) -> -mono_compare m1 m2)

let const c : t = if Rat.is_zero c then [] else [ ([], c) ]
let var x : t = [ ([ (x, 1) ], Rat.one) ]
let add (a : t) (b : t) : t = normalize (a @ b)
let neg (a : t) : t = List.map (fun (m, c) -> (m, Rat.neg c)) a
let sub a b = add a (neg b)
let scale k (a : t) : t = if Rat.is_zero k then [] else List.map (fun (m, c) -> (m, Rat.mul k c)) a

let mono_mul (a : mono) (b : mono) : mono =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (x, e) -> Hashtbl.replace tbl x e) a;
  List.iter
    (fun (x, e) ->
      let cur = match Hashtbl.find_opt tbl x with Some v -> v | None -> 0 in
      Hashtbl.replace tbl x (cur + e))
    b;
  Hashtbl.fold (fun x e acc -> (x, e) :: acc) tbl [] |> List.sort compare

let mul (a : t) (b : t) : t =
  normalize
    (List.concat_map (fun (ma, ca) -> List.map (fun (mb, cb) -> (mono_mul ma mb, Rat.mul ca cb)) b) a)

let equal (a : t) (b : t) = sub a b = []

let leading (p : t) = match p with [] -> None | hd :: _ -> Some hd

let mono_divides (b : mono) (a : mono) =
  List.for_all (fun (x, e) -> match List.assoc_opt x a with Some ea -> ea >= e | None -> false) b

let mono_div (a : mono) (b : mono) : mono =
  List.filter_map
    (fun (x, e) ->
      let eb = match List.assoc_opt x b with Some v -> v | None -> 0 in
      if e - eb > 0 then Some (x, e - eb) else None)
    a

let mono_lcm (a : mono) (b : mono) : mono =
  let vars = List.sort_uniq compare (List.map fst a @ List.map fst b) in
  List.map
    (fun x ->
      let ea = match List.assoc_opt x a with Some v -> v | None -> 0 in
      let eb = match List.assoc_opt x b with Some v -> v | None -> 0 in
      (x, max ea eb))
    vars

let mul_mono (m : mono) (c : Rat.t) (p : t) : t =
  normalize (List.map (fun (mp, cp) -> (mono_mul m mp, Rat.mul c cp)) p)

(* --- term conversion ------------------------------------------------- *)

let rec of_term (tm : T.t) : t =
  match tm.T.node with
  | T.Int_lit v -> const (Rat.of_bigint v)
  | T.Add xs -> List.fold_left (fun acc x -> add acc (of_term x)) zero xs
  | T.Sub (a, b) -> sub (of_term a) (of_term b)
  | T.Neg a -> neg (of_term a)
  | T.Mul (a, b) -> mul (of_term a) (of_term b)
  | T.App (f, []) -> var f.T.sname
  | _ -> var (Printf.sprintf "$t%d" tm.T.tid)

let to_term resolve (p : t) : T.t =
  let mono_term (m : mono) =
    List.concat_map (fun (x, e) -> List.init e (fun _ -> resolve x)) m
  in
  let parts =
    List.map
      (fun (m, c) ->
        let factors = mono_term m in
        let base =
          match factors with
          | [] -> T.int_of 1
          | f :: rest -> List.fold_left T.mul f rest
        in
        (* c is integral for the use-sites that rebuild terms. *)
        let num = (c : Rat.t).Rat.num in
        T.mul (T.int_lit num) base)
      p
  in
  match parts with [] -> T.int_of 0 | _ -> T.add parts

let to_string (p : t) =
  if p = [] then "0"
  else
    String.concat " + "
      (List.map
         (fun (m, c) ->
           let ms = String.concat "*" (List.map (fun (x, e) -> if e = 1 then x else Printf.sprintf "%s^%d" x e) m) in
           if m = [] then Rat.to_string c
           else if Rat.equal c Rat.one then ms
           else Rat.to_string c ^ "*" ^ ms)
         p)
