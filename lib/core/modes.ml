module T = Smt.Term
module S = Smt.Sort
module B = Vbase.Bigint
module Rat = Vbase.Rat

type outcome = Proved | Refuted of string | Unsupported of string

exception Untranslatable of string

(* ------------------------------------------------------------------ *)
(* bit_vector mode                                                     *)
(* ------------------------------------------------------------------ *)

let pow2_log v =
  (* Position of the highest set bit. *)
  let rec go i = if B.testbit v i then i else go (i - 1) in
  go 200

let exact_pow2 v =
  (* Some k with v = 2^k, if any. *)
  if B.sign v <= 0 then None
  else begin
    let k = pow2_log v in
    if B.equal v (B.pow B.two k) then Some k else None
  end

(* Translate an integer-semantics boolean term into bit-vector semantics. *)
let translate_bv ~width (goal : T.t) : T.t =
  let cache = Hashtbl.create 64 in
  let max_plus1 = B.pow B.two width in
  let bv_of_int v =
    if B.sign v < 0 || B.compare v max_plus1 >= 0 then
      raise (Untranslatable (Printf.sprintf "literal %s out of bv%d range" (B.to_string v) width));
    T.bv_lit ~width v
  in
  let rec tr_int (t : T.t) : T.t =
    match Hashtbl.find_opt cache t.T.tid with
    | Some r -> r
    | None ->
      let r =
        match t.T.node with
        | T.Int_lit v -> bv_of_int v
        | T.App (f, []) ->
          (* Integer constant reinterpreted as a BV constant. *)
          T.const (T.Sym.declare (f.T.sname ^ "$bv" ^ string_of_int width) [] (S.Bv width))
        | T.Bvar (x, S.Int) -> T.bvar (x ^ "$bv") (S.Bv width)
        | T.App (f, [ a; b ]) -> (
          (* The uninterpreted bounded bit operations become real ones. *)
          let op_of_name n =
            if Filename.check_suffix n ".and" then Some `And
            else if Filename.check_suffix n ".or" then Some `Or
            else if Filename.check_suffix n ".xor" then Some `Xor
            else if Filename.check_suffix n ".shl" then Some `Shl
            else if Filename.check_suffix n ".shr" then Some `Shr
            else None
          in
          match op_of_name f.T.sname with
          | Some `And -> T.bv_op T.Band [ tr_int a; tr_int b ]
          | Some `Or -> T.bv_op T.Bor [ tr_int a; tr_int b ]
          | Some `Xor -> T.bv_op T.Bxor [ tr_int a; tr_int b ]
          | Some `Shl -> (
            match b.T.node with
            | T.Int_lit k -> T.bv_op T.Bshl [ tr_int a; T.int_lit k ]
            | _ -> raise (Untranslatable "shift by non-literal"))
          | Some `Shr -> (
            match b.T.node with
            | T.Int_lit k -> T.bv_op T.Blshr [ tr_int a; T.int_lit k ]
            | _ -> raise (Untranslatable "shift by non-literal"))
          | None -> raise (Untranslatable ("uninterpreted int function " ^ f.T.sname)))
        | T.Add xs ->
          List.fold_left
            (fun acc x -> T.bv_op T.Badd [ acc; tr_int x ])
            (bv_of_int B.zero) xs
        | T.Sub (a, b) -> T.bv_op T.Bsub [ tr_int a; tr_int b ]
        | T.Mul (a, b) -> T.bv_op T.Bmul [ tr_int a; tr_int b ]
        | T.Neg a -> T.bv_op T.Bneg [ tr_int a ]
        | T.Imod (a, b) -> (
          match b.T.node with
          | T.Int_lit v -> (
            match exact_pow2 v with
            | Some _ ->
              (* x mod 2^k = x & (2^k - 1) *)
              T.bv_op T.Band [ tr_int a; bv_of_int (B.sub v B.one) ]
            | None -> raise (Untranslatable "mod by non-power-of-two"))
          | _ -> raise (Untranslatable "mod by non-literal"))
        | T.Idiv (a, b) -> (
          match b.T.node with
          | T.Int_lit v -> (
            match exact_pow2 v with
            | Some k -> T.bv_op T.Blshr [ tr_int a; T.int_of k ]
            | None -> raise (Untranslatable "div by non-power-of-two"))
          | _ -> raise (Untranslatable "div by non-literal"))
        | T.Ite (c, a, b) -> T.ite (tr_bool c) (tr_int a) (tr_int b)
        | _ -> raise (Untranslatable ("no bv translation for " ^ T.to_string t))
      in
      Hashtbl.replace cache t.T.tid r;
      r
  and tr_bool (t : T.t) : T.t =
    match t.T.node with
    | T.True | T.False -> t
    | T.Not a -> T.not_ (tr_bool a)
    | T.And xs -> T.and_ (List.map tr_bool xs)
    | T.Or xs -> T.or_ (List.map tr_bool xs)
    | T.Implies (a, b) -> T.implies (tr_bool a) (tr_bool b)
    | T.Iff (a, b) -> T.iff (tr_bool a) (tr_bool b)
    | T.Ite (c, a, b) -> T.ite (tr_bool c) (tr_bool a) (tr_bool b)
    | T.Eq (a, b) when S.equal (T.sort_of a) S.Int -> T.eq (tr_int a) (tr_int b)
    | T.Le (a, b) -> T.bv_op T.Bule [ tr_int a; tr_int b ]
    | T.Lt (a, b) -> T.bv_op T.Bult [ tr_int a; tr_int b ]
    | T.Forall q ->
      (* forall x:int ... over u64 range: the BV variable covers the whole
         range, so the quantifier becomes a BV quantifier; validity
         checking skolemizes it away. *)
      T.forall
        (List.map (fun (x, s) -> if S.equal s S.Int then (x ^ "$bv", S.Bv width) else (x, s)) q.T.qvars)
        (tr_bool q.T.body)
    | _ -> raise (Untranslatable ("no bv translation for formula " ^ T.to_string t))
  in
  tr_bool goal

(* Every mode that searches takes the same {!Smt.Solver.budget} record
   the main solver, the EPR grounding and the CLI flags use; a mode with
   nothing to bound ([compute]) still accepts it so the driver can thread
   one budget everywhere uniformly. *)
let config_of_budget budget =
  match budget with
  | None -> Smt.Solver.default_config
  | Some b -> { Smt.Solver.default_config with Smt.Solver.budget = b }

(* Shared solver dispatch for the search-based modes.  With [certify] the
   isolated query runs with proof recording on and the Unsat certificate
   rides back with the outcome; certify-off callers pay nothing. *)
let solve_outcome ~certify ~budget ~refuted assertions =
  let base = config_of_budget budget in
  let config = if certify then { base with Smt.Solver.certify = true } else base in
  let r = Smt.Solver.solve ~config assertions in
  match r.Smt.Solver.answer with
  | Smt.Solver.Unsat -> (Proved, r.Smt.Solver.cert)
  | Smt.Solver.Sat -> (Refuted refuted, None)
  | Smt.Solver.Unknown reason -> (Unsupported ("solver: " ^ reason), None)

let bit_vector ~certify ?budget ~width goal =
  match translate_bv ~width goal with
  | exception Untranslatable msg -> (Unsupported msg, None)
  | bv_goal ->
    solve_outcome ~certify ~budget ~refuted:"bit-vector countermodel exists"
      [ T.not_ bv_goal ]

let prove_bit_vector ?budget ?(width = 64) goal =
  fst (bit_vector ~certify:false ?budget ~width goal)

let prove_bit_vector_cert ?budget ?(width = 64) goal =
  bit_vector ~certify:true ?budget ~width goal

(* ------------------------------------------------------------------ *)
(* nonlinear_arith mode                                                *)
(* ------------------------------------------------------------------ *)

(* Collect nonlinear product subterms (Mul with two non-literal sides). *)
let products_of (t : T.t) =
  T.fold_subterms
    (fun acc s ->
      match s.T.node with
      | T.Mul (a, b) -> (
        match (a.T.node, b.T.node) with
        | T.Int_lit _, _ | _, T.Int_lit _ -> acc
        | _ -> (s, a, b) :: acc)
      | _ -> acc)
    [] t

let int_literals_of (t : T.t) =
  let found =
    T.fold_subterms
      (fun acc s -> match s.T.node with T.Int_lit v -> v :: acc | _ -> acc)
      [] t
  in
  (* Include negations and small defaults: monotonicity lemmas against a
     literal k are useful for either comparison direction. *)
  List.concat_map (fun v -> [ v; B.neg v ]) found @ [ B.zero; B.one; B.two ]
  |> List.sort_uniq B.compare

let nonlinear_lemmas goal =
  let products = products_of goal in
  let lits = int_literals_of goal in
  let zero = T.int_of 0 in
  let lemmas = ref [] in
  let push l = lemmas := l :: !lemmas in
  List.iter
    (fun (p, a, b) ->
      (* Squares are nonnegative. *)
      if T.equal a b then push (T.ge p zero);
      (* Sign rules. *)
      push (T.implies (T.and_ [ T.ge a zero; T.ge b zero ]) (T.ge p zero));
      push (T.implies (T.and_ [ T.le a zero; T.le b zero ]) (T.ge p zero));
      push (T.implies (T.and_ [ T.ge a zero; T.le b zero ]) (T.le p zero));
      push (T.implies (T.and_ [ T.gt a zero; T.gt b zero ]) (T.gt p zero));
      (* Monotonicity against the literals in the goal: for literal k,
         0 <= a /\ k <= b ==> k*a <= a*b, and dually. *)
      List.iter
        (fun k ->
          let kt = T.int_lit k in
          push
            (T.implies (T.and_ [ T.ge a zero; T.le kt b ]) (T.le (T.mul kt a) p));
          push
            (T.implies (T.and_ [ T.ge a zero; T.le b kt ]) (T.le p (T.mul kt a)));
          push
            (T.implies (T.and_ [ T.ge b zero; T.le kt a ]) (T.le (T.mul kt b) p));
          push
            (T.implies (T.and_ [ T.ge b zero; T.le a kt ]) (T.le p (T.mul kt b))))
        lits)
    products;
  (* Pairwise monotonicity for products sharing a factor:
     0 <= a /\ b <= c ==> a*b <= a*c. *)
  List.iter
    (fun (p1, a1, b1) ->
      List.iter
        (fun (p2, a2, b2) ->
          if not (T.equal p1 p2) then begin
            let shared =
              if T.equal a1 a2 then Some (a1, b1, b2)
              else if T.equal a1 b2 then Some (a1, b1, a2)
              else if T.equal b1 a2 then Some (b1, a1, b2)
              else if T.equal b1 b2 then Some (b1, a1, a2)
              else None
            in
            match shared with
            | Some (shared_factor, x, y) ->
              push
                (T.implies
                   (T.and_ [ T.ge shared_factor zero; T.le x y ])
                   (T.le p1 p2));
              push
                (T.implies
                   (T.and_ [ T.ge shared_factor zero; T.le y x ])
                   (T.le p2 p1))
            | None -> ()
          end)
        products)
    products;
  !lemmas

(* Normalize polynomial (in)equalities: move everything to one side and
   rebuild in polynomial normal form, so ring identities hold
   definitionally. *)
let rec normalize_goal (t : T.t) : T.t =
  let resolve_tbl : (string, T.t) Hashtbl.t = Hashtbl.create 16 in
  let remember (x : T.t) =
    match x.T.node with
    | T.App (f, []) -> Hashtbl.replace resolve_tbl f.T.sname x
    | _ -> Hashtbl.replace resolve_tbl (Printf.sprintf "$t%d" x.T.tid) x
  in
  let norm_side a b mk =
    ignore (T.fold_subterms (fun () s -> remember s) () a);
    ignore (T.fold_subterms (fun () s -> remember s) () b);
    let d = Poly.sub (Poly.of_term a) (Poly.of_term b) in
    (* Clear denominators (coefficients may be rational). *)
    let lcm_den =
      List.fold_left
        (fun acc (_, c) ->
          let den = (c : Rat.t).Rat.den in
          B.mul acc (fst (B.div_rem den (B.gcd acc den))))
        B.one d
    in
    let d = Poly.scale (Rat.of_bigint lcm_den) d in
    let resolve x =
      match Hashtbl.find_opt resolve_tbl x with
      | Some t -> t
      | None -> T.const (T.Sym.declare x [] S.Int)
    in
    mk (Poly.to_term resolve d) (T.int_of 0)
  in
  match t.T.node with
  | T.Eq (a, b) when S.equal (T.sort_of a) S.Int -> norm_side a b T.eq
  | T.Le (a, b) -> norm_side a b T.le
  | T.Lt (a, b) -> norm_side a b T.lt
  | T.Not a -> T.not_ (normalize_goal a)
  | T.And xs -> T.and_ (List.map normalize_goal xs)
  | T.Or xs -> T.or_ (List.map normalize_goal xs)
  | T.Implies (a, b) -> T.implies (normalize_goal a) (normalize_goal b)
  | T.Iff (a, b) -> T.iff (normalize_goal a) (normalize_goal b)
  | _ -> t

let nonlinear ~certify ?budget ~hyps goal =
  let goal = normalize_goal goal in
  let lemmas = nonlinear_lemmas goal in
  solve_outcome ~certify ~budget
    ~refuted:"nonlinear countermodel exists (under lemma approximation)"
    (hyps @ lemmas @ [ T.not_ goal ])

let prove_nonlinear ?budget ?(hyps = []) goal =
  fst (nonlinear ~certify:false ?budget ~hyps goal)

let prove_nonlinear_cert ?budget ?(hyps = []) goal =
  nonlinear ~certify:true ?budget ~hyps goal

(* ------------------------------------------------------------------ *)
(* integer_ring mode                                                   *)
(* ------------------------------------------------------------------ *)

(* Split an implication chain into premises and conclusion. *)
let rec split_implications (t : T.t) =
  match t.T.node with
  | T.Implies (a, b) ->
    let prems, concl = split_implications b in
    let conj = match a.T.node with T.And xs -> xs | _ -> [ a ] in
    (conj @ prems, concl)
  | _ -> ([], t)

(* A ring fact is an equality or a [t % c == 0]; translate to polynomial
   generators (with fresh quotient variables for mod facts). *)
let counter = ref 0

let ring_poly_of_fact (t : T.t) : (Poly.t * Poly.t option, string) result =
  (* Returns (generator polynomial, Some modulus polynomial when the fact
     is a mod-zero fact). *)
  match t.T.node with
  | T.Eq (a, b) -> (
    match (a.T.node, b.T.node) with
    | T.Imod (x, c), T.Int_lit z when B.is_zero z ->
      incr counter;
      let k = Poly.var (Printf.sprintf "$k%d" !counter) in
      let cp = Poly.of_term c in
      (* x mod c = 0  ~~>  x - k*c = 0 *)
      Ok (Poly.sub (Poly.of_term x) (Poly.mul k cp), Some cp)
    | T.Int_lit z, T.Imod (x, c) when B.is_zero z ->
      incr counter;
      let k = Poly.var (Printf.sprintf "$k%d" !counter) in
      let cp = Poly.of_term c in
      Ok (Poly.sub (Poly.of_term x) (Poly.mul k cp), Some cp)
    | _ ->
      if S.equal (T.sort_of a) S.Int then Ok (Poly.sub (Poly.of_term a) (Poly.of_term b), None)
      else Error "non-integer equality"
  )
  | _ -> Error ("not a ring fact: " ^ T.to_string t)

(* {!Smt.Cert.groebner} wants (coefficient, monomial) pairs. *)
let cert_poly (p : Poly.t) = List.map (fun (m, c) -> (c, m)) p

let integer_ring ~certify ?budget goal =
  let max_pairs =
    match budget with
    | None -> None
    | Some b -> Some b.Smt.Solver.ring_pairs_budget
  in
  let prems, concl = split_implications goal in
  let gens = ref [] in
  let errors = ref [] in
  List.iter
    (fun prem ->
      match ring_poly_of_fact prem with
      | Ok (g, _) -> gens := g :: !gens
      | Error e -> errors := e :: !errors)
    prems;
  if !errors <> [] then (Unsupported (String.concat "; " !errors), None)
  else begin
    match ring_poly_of_fact concl with
    | Error e -> (Unsupported e, None)
    | Ok (target, modulus) -> (
      (* For a mod-zero conclusion the quotient variable is existential:
         the claim is target' ∈ ideal(gens ∪ {modulus}) where target' is
         the left-hand side without the quotient term. *)
      let target, gens =
        match (modulus, concl.T.node) with
        | Some cp, T.Eq (a, b) ->
          let x = match (a.T.node, b.T.node) with
            | T.Imod (x, _), _ -> x
            | _, T.Imod (x, _) -> x
            | _ -> assert false
          in
          (Poly.of_term x, cp :: !gens)
        | _ -> (target, !gens)
      in
      if certify then
        match Groebner.ideal_member_cert ?max_pairs target gens with
        | Some q ->
          let cert =
            Smt.Cert.groebner ~target:(cert_poly target)
              ~gens:(List.map cert_poly gens)
              ~cofactors:(Array.to_list q |> List.map cert_poly)
          in
          (Proved, Some cert)
        | None -> (Refuted "polynomial is not in the hypothesis ideal", None)
        | exception Failure msg -> (Unsupported msg, None)
      else
        match Groebner.ideal_member ?max_pairs target gens with
        | true -> (Proved, None)
        | false -> (Refuted "polynomial is not in the hypothesis ideal", None)
        | exception Failure msg -> (Unsupported msg, None))
  end

let prove_integer_ring ?budget goal = fst (integer_ring ~certify:false ?budget goal)
let prove_integer_ring_cert ?budget goal = integer_ring ~certify:true ?budget goal

(* ------------------------------------------------------------------ *)
(* compute mode                                                        *)
(* ------------------------------------------------------------------ *)

let prove_compute ?budget prog expr =
  ignore budget;
  match Interp.eval_expr ~quant_bound:0 prog [] expr with
  | Interp.VBool true -> Proved
  | Interp.VBool false -> Refuted "expression evaluates to false"
  | v -> Unsupported ("expression computes to non-boolean " ^ Interp.value_to_string v)
  | exception Interp.Runtime_error msg -> Unsupported ("evaluation failed: " ^ msg)

let prove_compute_cert ?budget prog expr =
  (* The interpreter has no sub-structure to log: its verdict enters the
     trusted computing base explicitly as a trusted certificate. *)
  match prove_compute ?budget prog expr with
  | Proved -> (Proved, Some (Smt.Cert.trusted "compute"))
  | o -> (o, None)
