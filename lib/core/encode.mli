(** Verification-condition generation: forward symbolic execution of VIR
    under a framework profile.

    The profile decides the memory encoding:
    - {b Ownership} (Verus): datatype values are algebraic terms; mutation
      of a local rebinds it to a new term.  No heap, no aliasing reasoning —
      the ownership checker justifies this.
    - {b Heap} (Dafny, Low-star): datatype values are references; constructors
      allocate; field reads/writes go through a global heap with
      select/store frame axioms.  Every mutation makes the heap grow a
      write-chain that later reads must see through — the cost the
      memory-reasoning millibenchmark (Figure 7b) measures.
    - {b Prophecy} (Creusot): ownership encoding plus prophecy ("final
      value") constants for [&mut] parameters with resolution equations.

    Exec-mode arithmetic over bounded integers emits side obligations that
    the result stays in range (Verus's overflow proof obligations), and
    division emits nonzero-divisor obligations. *)

type vc = {
  vc_name : string;
  vc_hyps : Smt.Term.t list;  (** function-local context (no theory axioms) *)
  vc_goal : Smt.Term.t;
  vc_hint : Vir.proof_hint;
  vc_expr : Vir.expr option;  (** source expression, kept for [by(compute)] *)
}

val encode_function : Profiles.t -> Vir.program -> Vir.fndecl -> vc list
(** All proof obligations of one function, in program order.  Asserts with
    a non-default hint become isolated VCs (empty context, per §3.3). *)

val spec_fn_axiom : Profiles.t -> Vir.program -> Vir.fndecl -> Smt.Term.t option
(** The definitional axiom for a spec function with a body ([None] for
    uninterpreted or opaque spec functions). *)

val spec_fn_sym : Profiles.t -> Vir.program -> Vir.fndecl -> Smt.Term.sym
(** The SMT function symbol for a spec function (includes a heap parameter
    under the heap encoding). *)

val wrapper_sym : int -> Smt.Sort.t -> Smt.Term.sym
(** Identity wrapper function used by the effect-layer emulation. *)

val ownok_sym : Smt.Sort.t -> Smt.Term.sym
(** The ownership-recheck marker predicate (Prusti emulation). *)

val bitop_axioms : Profiles.t -> Smt.Term.t list
(** Range axioms for the uninterpreted bounded bit-operation symbols used
    by the default encoding (the precise semantics lives in
    [by(bit_vector)] queries, per §3.3). *)

val program_types : Vir.program -> Vir.ty list
(** Every VIR type mentioned anywhere in the program (params, returns,
    contracts, bodies, datatype fields), deduplicated. *)

val program_axioms : Profiles.t -> Vir.program -> Smt.Term.t list
(** The complete quantified-axiom set a profile would put in scope for
    this program: sequence/datatype (or heap) theory axioms, spec-function
    definitional axioms, bit-op range axioms when used, effect-wrapper and
    ownership-recheck axioms.  This is the set the driver builds VC
    contexts from (before pruning) and the set [Vlint]'s matching-loop
    detector analyses. *)
