(** Framework profiles: encoding configurations that emulate the comparison
    verifiers of the paper's evaluation (§4.1) as settings of one pipeline.

    The substitution table in DESIGN.md maps each profile to the mechanisms
    §3.1/§5 identifies as the source of each tool's cost: heap vs. ownership
    encodings, trigger policy, context pruning, effect-layer indirection,
    re-verified type checking, and prophecy variables. *)

type mem_encoding =
  | Ownership  (** Verus-style: mutation is functional update; no heap *)
  | Heap  (** Dafny/F*-style: global heap, select/store, frame axioms *)
  | Prophecy  (** Creusot-style: &mut as (current, final) pairs *)

type t = {
  name : string;
  encoding : mem_encoding;
  trigger_policy : Smt.Triggers.policy;
  curated_triggers : bool;
      (** attach hand-tuned minimal triggers to theory axioms (Verus) vs.
          leaving selection to the policy (Dafny-style broad selection) *)
  pruning : bool;  (** prune unreachable axioms/contracts from the context *)
  wrapper_depth : int;
      (** definitional indirection layers per value: Low*'s effect layers,
          Viper's snapshot functions *)
  recheck_ownership : bool;  (** extra type-checking VCs (Prusti) *)
  epr_only : bool;  (** reject anything outside EPR (Ivy) *)
  solver_config : Smt.Solver.config;
}

val verus : t
val dafny : t
val fstar : t
val prusti : t
val creusot : t
val ivy : t

val all : t list
val by_name : string -> t option
