(** Framework profiles: encoding configurations that emulate the comparison
    verifiers of the paper's evaluation (§4.1) as settings of one pipeline.

    The substitution table in DESIGN.md maps each profile to the mechanisms
    §3.1/§5 identifies as the source of each tool's cost: heap vs. ownership
    encodings, trigger policy, context pruning, effect-layer indirection,
    re-verified type checking, and prophecy variables. *)

(** How mutable state is modelled in the encoding. *)
type mem_encoding =
  | Ownership  (** Verus-style: mutation is functional update; no heap *)
  | Heap  (** Dafny/F*-style: global heap, select/store, frame axioms *)
  | Prophecy  (** Creusot-style: &mut as (current, final) pairs *)

(** A framework profile: one point in the encoding-design space. *)
type t = {
  name : string;  (** display name, e.g. ["Verus"], ["Dafny-liberal"] *)
  encoding : mem_encoding;  (** memory model (see {!mem_encoding}) *)
  trigger_policy : Smt.Triggers.policy;
      (** how triggers are inferred for quantifiers that lack them *)
  curated_triggers : bool;
      (** attach hand-tuned minimal triggers to theory axioms (Verus) vs.
          leaving selection to the policy (Dafny-style broad selection) *)
  pruning : bool;  (** prune unreachable axioms/contracts from the context *)
  wrapper_depth : int;
      (** definitional indirection layers per value: Low*'s effect layers,
          Viper's snapshot functions *)
  recheck_ownership : bool;  (** extra type-checking VCs (Prusti) *)
  epr_only : bool;  (** reject anything outside EPR (Ivy) *)
  solver_config : Smt.Solver.config;  (** budgets and phase limits *)
}

val verus : t
(** Ownership encoding, curated triggers, pruning on — the paper's
    baseline. *)

val dafny : t
(** Heap encoding with frame axioms, broad trigger selection, no
    pruning. *)

val fstar : t
(** Heap encoding plus effect-layer wrapper indirection. *)

val prusti : t
(** Ownership encoding with re-verified type-checking obligations. *)

val creusot : t
(** Prophecy encoding: [&mut] as (current, final) pairs. *)

val ivy : t
(** EPR-only: decidable fragment, rejects anything outside it. *)

val all : t list
(** The six shipped profiles, in the paper's table order. *)

val by_name : string -> t option
(** Exact-name lookup over {!all} ([None] for unknown names). *)

val liberal : t -> t
(** The "[-liberal]" degradation of a profile: Dafny-style broad trigger
    selection with the curated axiom triggers dropped, applied both to the
    static analyses (so [Vlint] VL010 sees the liberal trigger choice) and
    to the solver configuration (so E-matching actually uses it).  This is
    the configuration behind the ablation row "liberal triggers" and the
    VL010 ↔ profiler cross-validation: the matching loop the lint predicts
    statically is the instantiation hot-spot the profiler measures
    dynamically.  The name gains a "-liberal" suffix. *)

val budget : t -> Smt.Solver.budget
(** The profile's solver search budgets ([solver_config.budget]). *)

val with_budget : Smt.Solver.budget -> t -> t
(** The profile with its solver budgets replaced (trigger policy and
    every encoding choice kept).  This is how the CLI's
    [--deadline]/[--max-rounds] overrides and {!Driver.Config.budget}
    are applied. *)

val solver_fingerprint : t -> string
(** Canonical rendering of the profile facets that can change a VC's
    answer without changing the VC's terms: solving path (EPR or
    default), trigger policies, curated-trigger flag, and the full
    {!Smt.Solver.budget}.  The display name is excluded on purpose —
    renaming a profile must not invalidate a verification cache.  Used
    as a fingerprint component by {!Vcache}. *)
