open Vir

let u64 = TInt I_u64
let seq_u64 = TSeq (TInt I_u64)
let tlist = TData "List"

let p name ty = { pname = name; pty = ty; pmut = false }
let pmut name ty = { pname = name; pty = ty; pmut = true }

let view e = ECall ("view", [ e ])
let len e = ESeq (SeqLen e)
let idx s i' = ESeq (SeqIndex (s, i'))
let skip s k = ESeq (SeqSkip (s, k))
let take s k = ESeq (SeqTake (s, k))
let push_ s x = ESeq (SeqPush (s, x))
let update_ s i' x = ESeq (SeqUpdate (s, i', x))
let append_ a b = ESeq (SeqAppend (a, b))
let empty_u64 = ESeq (SeqEmpty u64)

(* ------------------------------------------------------------------ *)
(* Singly linked list                                                  *)
(* ------------------------------------------------------------------ *)

let list_dt =
  { dname = "List"; variants = [ ("Nil", []); ("Cons", [ ("val", u64); ("tail", tlist) ]) ] }

(* spec fn view(l: List) -> Seq<u64> =
     if l is Nil { [] } else { [l.val] + view(l.tail) } *)
let view_fn =
  {
    fname = "view";
    fmode = Spec;
    params = [ p "l" tlist ];
    ret = Some ("result", seq_u64);
    requires = [];
    ensures = [];
    body = None;
    spec_body =
      Some
        (EIte
           ( EIs (v "l", "Nil"),
             empty_u64,
             append_ (push_ empty_u64 (EField (v "l", "val"))) (view (EField (v "l", "tail"))) ));
    (* Structural decreases on the list argument, as Verus writes
       [decreases l]: each recursive call peels one Cons (Vlint VL001). *)
    attrs = [ A_decreases (v "l") ];
  }

let new_fn =
  {
    fname = "list_new";
    fmode = Exec;
    params = [];
    ret = Some ("result", tlist);
    requires = [];
    ensures = [ view (v "result") ==: empty_u64 ];
    body = Some [ SReturn (Some (ECtor ("List", "Nil", []))) ];
    spec_body = None;
    attrs = [];
  }

let push_front_fn =
  {
    fname = "push_front";
    fmode = Exec;
    params = [ pmut "self" tlist; p "x" u64 ];
    ret = None;
    requires = [];
    ensures = [ view (v "self") ==: append_ (push_ empty_u64 (v "x")) (view (EOld "self")) ];
    body = Some [ SAssign ("self", ECtor ("List", "Cons", [ v "x"; v "self" ])) ];
    spec_body = None;
    attrs = [];
  }

let pop_front_fn ~with_requires =
  {
    fname = "pop_front";
    fmode = Exec;
    params = [ pmut "self" tlist ];
    ret = Some ("res", u64);
    requires = (if with_requires then [ len (view (v "self")) >: i 0 ] else []);
    ensures =
      [
        v "res" ==: idx (view (EOld "self")) (i 0);
        view (v "self") ==: skip (view (EOld "self")) (i 1);
      ];
    body =
      Some
        [
          SAssert (EIs (v "self", "Cons"), H_default);
          SLet ("h", u64, EField (v "self", "val"));
          SAssign ("self", EField (v "self", "tail"));
          SAssert (view (v "self") ==: skip (view (EOld "self")) (i 1), H_default);
          SReturn (Some (v "h"));
        ];
    spec_body = None;
    attrs = [];
  }

let index_fn ~with_requires =
  {
    fname = "list_index";
    fmode = Exec;
    params = [ p "self" tlist; p "i" u64 ];
    ret = Some ("res", u64);
    requires = (if with_requires then [ v "i" <: len (view (v "self")) ] else []);
    ensures = [ v "res" ==: idx (view (v "self")) (v "i") ];
    body =
      Some
        [
          SLet ("cur", tlist, v "self");
          SLet ("j", u64, i 0);
          SWhile
            {
              cond = v "j" <: v "i";
              invariants =
                [
                  (* NB: an earlier revision also carried the invariant
                     [i < len(view(self))]; both [i] and [self] are
                     loop-constant, so the encoding (which havocs only
                     modified variables) preserves it trivially and it
                     proved nothing — Vlint VL030 flagged it and it was
                     removed. *)
                  v "j" <=: v "i";
                  view (v "cur") ==: skip (view (v "self")) (v "j");
                ];
              decreases = Some (v "i" -: v "j");
              body =
                [
                  SAssert (EIs (v "cur", "Cons"), H_default);
                  SAssert
                    ( view (EField (v "cur", "tail")) ==: skip (view (v "cur")) (i 1),
                      H_default );
                  SAssign ("cur", EField (v "cur", "tail"));
                  SAssign ("j", v "j" +: i 1);
                ];
            };
          SAssert (EIs (v "cur", "Cons"), H_default);
          SAssert (idx (view (v "cur")) (i 0) ==: idx (view (v "self")) (v "i"), H_default);
          SReturn (Some (EField (v "cur", "val")));
        ];
    spec_body = None;
    attrs = [];
  }

let singly_linked =
  {
    datatypes = [ list_dt ];
    functions = [ view_fn; new_fn; push_front_fn; pop_front_fn ~with_requires:true; index_fn ~with_requires:true ];
  }

let break_pop =
  {
    datatypes = [ list_dt ];
    functions = [ view_fn; new_fn; push_front_fn; pop_front_fn ~with_requires:false ];
  }

let break_index =
  {
    datatypes = [ list_dt ];
    functions = [ view_fn; new_fn; push_front_fn; index_fn ~with_requires:false ];
  }

(* ------------------------------------------------------------------ *)
(* Doubly linked list (arena representation)                           *)
(* ------------------------------------------------------------------ *)

let tdll = TData "Dll"
let tdnode = TData "DNode"
let seq_dnode = TSeq tdnode

let dnode_dt =
  {
    dname = "DNode";
    variants = [ ("DNode", [ ("nval", u64); ("nprev", u64); ("nnext", u64) ]) ];
  }

let dll_dt =
  { dname = "Dll"; variants = [ ("Dll", [ ("nodes", seq_dnode); ("vals", seq_u64) ]) ] }

let nodes e = EField (e, "nodes")
let vals e = EField (e, "vals")
let node_at e k = ESeq (SeqIndex (nodes e, k))

(* Well-formedness: the two sequences agree; prev/next links encode the
   arena order with self-loop sentinels at the ends. *)
let dll_wf_fn =
  let d = v "d" in
  let k = v "k" in
  {
    fname = "dll_wf";
    fmode = Spec;
    params = [ p "d" tdll ];
    ret = Some ("result", TBool);
    requires = [];
    ensures = [];
    body = None;
    spec_body =
      Some
        (EBinop
           ( And,
             len (nodes d) ==: len (vals d),
             EForall
               ( [ ("k", TInt I_math) ],
                 Term_auto,
                 EBinop
                   ( Implies,
                     EBinop (And, i 0 <=: k, k <: len (nodes d)),
                     EBinop
                       ( And,
                         EField (node_at d k, "nval") ==: idx (vals d) k,
                         EBinop
                           ( And,
                             EField (node_at d k, "nprev")
                             ==: EIte (k ==: i 0, i 0, k -: i 1),
                             EField (node_at d k, "nnext")
                             ==: EIte (k ==: len (nodes d) -: i 1, k, k +: i 1) ) ) ) ) ));
    attrs = [];
  }

let dll_view_fn =
  {
    fname = "dll_view";
    fmode = Spec;
    params = [ p "d" tdll ];
    ret = Some ("result", seq_u64);
    requires = [];
    ensures = [];
    body = None;
    spec_body = Some (vals (v "d"));
    attrs = [];
  }

let wf e = ECall ("dll_wf", [ e ])
let dview e = ECall ("dll_view", [ e ])

let dll_new_fn =
  {
    fname = "dll_new";
    fmode = Exec;
    params = [];
    ret = Some ("result", tdll);
    requires = [];
    ensures = [ wf (v "result"); dview (v "result") ==: empty_u64 ];
    body =
      Some [ SReturn (Some (ECtor ("Dll", "Dll", [ ESeq (SeqEmpty tdnode); empty_u64 ]))) ];
    spec_body = None;
    attrs = [];
  }

let dll_push_back_fn =
  let d = v "d" in
  let n = len (nodes d) in
  {
    fname = "dll_push_back";
    fmode = Exec;
    params = [ pmut "d" tdll; p "x" u64 ];
    ret = None;
    requires = [ wf (v "d") ];
    ensures = [ wf (v "d"); dview (v "d") ==: push_ (dview (EOld "d")) (v "x") ];
    body =
      Some
        [
          (* Fix the old last node's next pointer, then append the new
             node (prev = old last or self-loop when first). *)
          SLet
            ( "fixed",
              seq_dnode,
              EIte
                ( n ==: i 0,
                  nodes d,
                  update_ (nodes d)
                    (n -: i 1)
                    (ECtor
                       ( "DNode",
                         "DNode",
                         [
                           EField (node_at d (n -: i 1), "nval");
                           EField (node_at d (n -: i 1), "nprev");
                           n;
                         ] )) ) );
          SLet
            ( "newnode",
              tdnode,
              ECtor ("DNode", "DNode", [ v "x"; EIte (n ==: i 0, i 0, n -: i 1); n ]) );
          SAssign
            ("d", ECtor ("Dll", "Dll", [ push_ (v "fixed") (v "newnode"); push_ (vals d) (v "x") ]));
          SAssert (wf (v "d"), H_default);
        ];
    spec_body = None;
    attrs = [];
  }

let dll_pop_back_fn =
  let d = v "d" in
  let n = len (nodes d) in
  {
    fname = "dll_pop_back";
    fmode = Exec;
    params = [ pmut "d" tdll ];
    ret = Some ("res", u64);
    requires = [ wf (v "d"); len (dview (v "d")) >: i 0 ];
    ensures =
      [
        wf (v "d");
        v "res" ==: idx (dview (EOld "d")) (len (dview (EOld "d")) -: i 1);
        dview (v "d") ==: take (dview (EOld "d")) (len (dview (EOld "d")) -: i 1);
      ];
    body =
      Some
        [
          SLet ("r", u64, idx (vals d) (n -: i 1));
          (* Drop the last node; restore the new last node's self-loop
             next pointer. *)
          SLet ("shrunk", seq_dnode, take (nodes d) (n -: i 1));
          SLet
            ( "fixed",
              seq_dnode,
              EIte
                ( len (v "shrunk") ==: i 0,
                  v "shrunk",
                  update_ (v "shrunk")
                    (len (v "shrunk") -: i 1)
                    (ECtor
                       ( "DNode",
                         "DNode",
                         [
                           EField (idx (v "shrunk") (len (v "shrunk") -: i 1), "nval");
                           EField (idx (v "shrunk") (len (v "shrunk") -: i 1), "nprev");
                           len (v "shrunk") -: i 1;
                         ] )) ) );
          SAssign ("d", ECtor ("Dll", "Dll", [ v "fixed"; take (vals d) (n -: i 1) ]));
          SAssert (wf (v "d"), H_default);
          SReturn (Some (v "r"));
        ];
    spec_body = None;
    attrs = [];
  }

let dll_get_fn =
  {
    fname = "dll_get";
    fmode = Exec;
    params = [ p "d" tdll; p "i" u64 ];
    ret = Some ("res", u64);
    requires = [ wf (v "d"); v "i" <: len (dview (v "d")) ];
    ensures = [ v "res" ==: idx (dview (v "d")) (v "i") ];
    body = Some [ SReturn (Some (idx (vals (v "d")) (v "i"))) ];
    spec_body = None;
    attrs = [];
  }

let doubly_linked =
  {
    datatypes = [ dnode_dt; dll_dt ];
    functions = [ dll_wf_fn; dll_view_fn; dll_new_fn; dll_push_back_fn; dll_pop_back_fn; dll_get_fn ];
  }

(* ------------------------------------------------------------------ *)
(* Memory-reasoning benchmark: n pushes to four lists                  *)
(* ------------------------------------------------------------------ *)

let memory_reasoning n =
  let names = [ "la"; "lb"; "lc"; "ld" ] in
  let mk_push list_name value = SCall (None, "push_front", [ v list_name; i value ]) in
  let pushes =
    List.concat_map
      (fun round -> List.mapi (fun li name -> mk_push name ((round * 4) + li)) names)
      (List.init n (fun r -> r))
  in
  let asserts =
    List.map (fun name -> SAssert (len (view (v name)) ==: i n, H_default)) names
    @
    if n > 0 then
      (* The most recent push is at the head of each list. *)
      List.mapi
        (fun li name ->
          SAssert (idx (view (v name)) (i 0) ==: i (((n - 1) * 4) + li), H_default))
        names
    else []
  in
  let main_fn =
    {
      fname = Printf.sprintf "mem_reasoning_%d" n;
      fmode = Exec;
      params = List.map (fun name -> pmut name tlist) names;
      ret = None;
      requires = List.map (fun name -> view (v name) ==: empty_u64) names;
      ensures = [];
      body = Some (pushes @ asserts);
      spec_body = None;
      attrs = [];
    }
  in
  { datatypes = [ list_dt ]; functions = [ view_fn; push_front_fn; main_fn ] }

(* ------------------------------------------------------------------ *)
(* Distributed lock, default mode                                      *)
(* ------------------------------------------------------------------ *)

(* State: held: Seq<bool>.  Safety: at most one node holds the lock.
   Transfer step: the holder [src] passes the lock to [dst]. *)
let tseq_bool = TSeq TBool

let dlock_safe_fn =
  let held = v "held" in
  {
    fname = "dlock_safe";
    fmode = Spec;
    params = [ p "held" tseq_bool ];
    ret = Some ("result", TBool);
    requires = [];
    ensures = [];
    body = None;
    spec_body =
      Some
        (EForall
           ( [ ("i", TInt I_math); ("j", TInt I_math) ],
             Term_auto,
             EBinop
               ( Implies,
                 EBinop
                   ( And,
                     EBinop (And, i 0 <=: v "i", v "i" <: len held),
                     EBinop
                       ( And,
                         EBinop (And, i 0 <=: v "j", v "j" <: len held),
                         EBinop (And, idx held (v "i"), idx held (v "j")) ) ),
                 v "i" ==: v "j" ) ));
    attrs = [];
  }

let dlock_transfer_fn =
  let held = v "held" in
  let held' = update_ (update_ held (v "src") (EBool false)) (v "dst") (EBool true) in
  {
    fname = "dlock_transfer_preserves";
    fmode = Proof;
    params = [ p "held" tseq_bool; p "src" (TInt I_math); p "dst" (TInt I_math) ];
    ret = None;
    requires =
      [
        ECall ("dlock_safe", [ held ]);
        i 0 <=: v "src";
        v "src" <: len held;
        i 0 <=: v "dst";
        v "dst" <: len held;
        idx held (v "src");
      ];
    ensures = [ ECall ("dlock_safe", [ held' ]) ];
    body =
      Some
        [
          (* Anyone holding the lock after the step must be dst: case
             split fed to the solver as a helper assertion. *)
          SAssert
            ( EForall
                ( [ ("k", TInt I_math) ],
                  Term_auto,
                  EBinop
                    ( Implies,
                      EBinop
                        ( And,
                          EBinop (And, i 0 <=: v "k", v "k" <: len held),
                          idx held' (v "k") ),
                      v "k" ==: v "dst" ) ),
              H_default );
        ];
    spec_body = None;
    attrs = [];
  }

let dlock_default =
  { datatypes = []; functions = [ dlock_safe_fn; dlock_transfer_fn ] }

(* ------------------------------------------------------------------ *)
(* Constant-condition program (Vflow prescreen / VL043 pin)            *)
(* ------------------------------------------------------------------ *)

(* A deliberately prescreen-friendly function: with a, b < 1000 the sum
   fits u64 by pure interval reasoning (the overflow obligation is
   dischargeable at rung 0), and since s is unsigned the guard [s >= 0]
   is constant-true — VL043 flags the condition, VL040 the dead else
   branch, and the interpreter pin in test_vflow confirms the 4242
   sentinel is never returned. *)
let clamp_add_fn =
  {
    fname = "clamp_add";
    fmode = Exec;
    params = [ p "a" u64; p "b" u64 ];
    ret = Some ("r", u64);
    requires = [ v "a" <: i 1000; v "b" <: i 1000 ];
    ensures = [ v "r" ==: v "a" +: v "b" ];
    body =
      Some
        [
          SLet ("s", u64, v "a" +: v "b");
          SIf (v "s" >=: i 0, [ SReturn (Some (v "s")) ], [ SReturn (Some (i 4242)) ]);
        ];
    spec_body = None;
    attrs = [];
  }

let const_cond = { datatypes = []; functions = [ clamp_add_fn ] }
