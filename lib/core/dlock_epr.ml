module T = Smt.Term
module S = Smt.Sort

type obligation = { name : string; answer : Smt.Solver.answer; time_s : float }

let node = S.Usort "LNode"
let epoch = S.Usort "LEpoch"

(* Relational state (pre and post copies). *)
let held = T.Sym.declare "dl.held" [ node ] S.Bool
let held' = T.Sym.declare "dl.held'" [ node ] S.Bool
let lte = T.Sym.declare "dl.lte" [ epoch; epoch ] S.Bool
let transfer = T.Sym.declare "dl.transfer" [ epoch; node ] S.Bool (* in-flight messages *)
let transfer' = T.Sym.declare "dl.transfer'" [ epoch; node ] S.Bool
let locked = T.Sym.declare "dl.locked" [ epoch; node ] S.Bool (* history: held at epoch *)
let locked' = T.Sym.declare "dl.locked'" [ epoch; node ] S.Bool
let ep = T.Sym.declare "dl.ep" [ node; epoch ] S.Bool (* node's current epoch *)
let ep' = T.Sym.declare "dl.ep'" [ node; epoch ] S.Bool

let n v = T.bvar v node
let e v = T.bvar v epoch
let ap f args = T.app f args
let fa vars body = T.forall vars body

let order_axioms =
  [
    fa [ ("x", epoch) ] (ap lte [ e "x"; e "x" ]);
    fa
      [ ("x", epoch); ("y", epoch) ]
      (T.implies
         (T.and_ [ ap lte [ e "x"; e "y" ]; ap lte [ e "y"; e "x" ] ])
         (T.eq (e "x") (e "y")));
    fa
      [ ("x", epoch); ("y", epoch); ("z", epoch) ]
      (T.implies
         (T.and_ [ ap lte [ e "x"; e "y" ]; ap lte [ e "y"; e "z" ] ])
         (ap lte [ e "x"; e "z" ]));
    fa
      [ ("x", epoch); ("y", epoch) ]
      (T.or_ [ ap lte [ e "x"; e "y" ]; ap lte [ e "y"; e "x" ] ]);
  ]

(* --- model 1: direct hand-off ------------------------------------------ *)

let mutex rel =
  fa
    [ ("n1", node); ("n2", node) ]
    (T.implies (T.and_ [ ap rel [ n "n1" ]; ap rel [ n "n2" ] ]) (T.eq (n "n1") (n "n2")))

let src = T.const (T.Sym.declare "dl.src" [] node)
let dst = T.const (T.Sym.declare "dl.dst" [] node)

let grant_update =
  fa
    [ ("x", node) ]
    (T.iff
       (ap held' [ n "x" ])
       (T.or_
          [ T.and_ [ ap held [ n "x" ]; T.not_ (T.eq (n "x") src) ]; T.eq (n "x") dst ]))

(* --- model 2: message passing with epochs ------------------------------- *)

(* Invariant (after Ivy's lock example):
   I1: at most one node holds per epoch:     locked(e,n1) & locked(e,n2) -> n1=n2
   I2: in-flight transfers are unique per epoch: transfer(e,n1) & transfer(e,n2) -> n1=n2
   I3: a transfer at epoch e rules out locks at e: transfer(e,n) & locked(e,m) -> false
   (The paper's §3.2 example formula is exactly I2's shape.) *)
let msg_invariant tr lk =
  T.and_
    [
      fa
        [ ("e", epoch); ("n1", node); ("n2", node) ]
        (T.implies
           (T.and_ [ ap lk [ e "e"; n "n1" ]; ap lk [ e "e"; n "n2" ] ])
           (T.eq (n "n1") (n "n2")));
      fa
        [ ("e", epoch); ("n1", node); ("n2", node) ]
        (T.implies
           (T.and_ [ ap tr [ e "e"; n "n1" ]; ap tr [ e "e"; n "n2" ] ])
           (T.eq (n "n1") (n "n2")));
      fa
        [ ("e", epoch); ("n1", node); ("n2", node) ]
        (T.implies (T.and_ [ ap tr [ e "e"; n "n1" ]; ap lk [ e "e"; n "n2" ] ]) T.fls);
    ]

let e_new = T.const (T.Sym.declare "dl.e_new" [] epoch)
let e_cur = T.const (T.Sym.declare "dl.e_cur" [] epoch)

(* grant: src holds at e_cur (locked(e_cur, src)), picks a strictly larger
   fresh epoch e_new with no traffic or locks, and emits transfer(e_new, dst),
   releasing the lock (no new lock until accept). *)
let msg_grant_updates =
  [
    (* enabling *)
    ap locked [ e_cur; src ];
    T.not_ (ap lte [ e_new; e_cur ]);
    (* freshness of e_new: nothing has happened at it *)
    fa [ ("x", node) ] (T.not_ (ap transfer [ e_new; n "x" ]));
    fa [ ("x", node) ] (T.not_ (ap locked [ e_new; n "x" ]));
    (* transfer' = transfer + (e_new, dst) *)
    fa
      [ ("e", epoch); ("x", node) ]
      (T.iff
         (ap transfer' [ e "e"; n "x" ])
         (T.or_
            [ ap transfer [ e "e"; n "x" ]; T.and_ [ T.eq (e "e") e_new; T.eq (n "x") dst ] ]));
    (* locked unchanged *)
    fa
      [ ("e", epoch); ("x", node) ]
      (T.iff (ap locked' [ e "e"; n "x" ]) (ap locked [ e "e"; n "x" ]));
  ]

(* accept: dst takes a pending transfer at e_new and locks at e_new,
   consuming the message. *)
let msg_accept_updates =
  [
    ap transfer [ e_new; dst ];
    fa
      [ ("e", epoch); ("x", node) ]
      (T.iff
         (ap transfer' [ e "e"; n "x" ])
         (T.and_
            [
              ap transfer [ e "e"; n "x" ];
              T.not_ (T.and_ [ T.eq (e "e") e_new; T.eq (n "x") dst ]);
            ]));
    fa
      [ ("e", epoch); ("x", node) ]
      (T.iff
         (ap locked' [ e "e"; n "x" ])
         (T.or_
            [ ap locked [ e "e"; n "x" ]; T.and_ [ T.eq (e "e") e_new; T.eq (n "x") dst ] ]));
  ]

let run () =
  let results = ref [] in
  let prove name ~hyps goal =
    let t0 = Unix.gettimeofday () in
    let r = Smt.Epr.check_valid ~hyps goal in
    results :=
      { name; answer = r.Smt.Solver.answer; time_s = Unix.gettimeofday () -. t0 } :: !results
  in
  (* Model 1: hand-off. *)
  let n0 = T.const (T.Sym.declare "dl.n0" [] node) in
  let init = fa [ ("x", node) ] (T.iff (ap held [ n "x" ]) (T.eq (n "x") n0)) in
  prove "hand-off: init establishes mutual exclusion" ~hyps:[ init ] (mutex held);
  prove "hand-off: grant preserves mutual exclusion"
    ~hyps:[ mutex held; ap held [ src ]; grant_update ]
    (mutex held');
  (* Model 2: messages + epochs. *)
  prove "messages: grant preserves the invariant"
    ~hyps:((msg_invariant transfer locked :: order_axioms) @ msg_grant_updates)
    (msg_invariant transfer' locked');
  prove "messages: accept preserves the invariant"
    ~hyps:((msg_invariant transfer locked :: order_axioms) @ msg_accept_updates)
    (msg_invariant transfer' locked');
  (* The safety property itself follows from I1. *)
  prove "messages: per-epoch mutual exclusion"
    ~hyps:[ msg_invariant transfer locked ]
    (fa
       [ ("e", epoch); ("n1", node); ("n2", node) ]
       (T.implies
          (T.and_ [ ap locked [ e "e"; n "n1" ]; ap locked [ e "e"; n "n2" ] ])
          (T.eq (n "n1") (n "n2"))));
  ignore ep;
  ignore ep';
  List.rev !results

let all_proved obs = List.for_all (fun o -> o.answer = Smt.Solver.Unsat) obs

let boilerplate_lines = 102
