module B = Vbase.Bigint
open Vir

type value = VBool of bool | VInt of B.t | VSeq of value list | VData of string * value list

exception Runtime_error of string
exception Assertion_failed of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let rec value_equal a b =
  match (a, b) with
  | VBool x, VBool y -> x = y
  | VInt x, VInt y -> B.equal x y
  | VSeq xs, VSeq ys -> List.length xs = List.length ys && List.for_all2 value_equal xs ys
  | VData (v1, f1), VData (v2, f2) ->
    String.equal v1 v2 && List.length f1 = List.length f2 && List.for_all2 value_equal f1 f2
  | _ -> false

let rec value_to_string = function
  | VBool b -> string_of_bool b
  | VInt n -> B.to_string n
  | VSeq vs -> "[" ^ String.concat "; " (List.map value_to_string vs) ^ "]"
  | VData (v, []) -> v
  | VData (v, fs) -> v ^ "(" ^ String.concat ", " (List.map value_to_string fs) ^ ")"

let as_bool = function VBool b -> b | v -> err "expected bool, got %s" (value_to_string v)
let as_int = function VInt n -> n | v -> err "expected int, got %s" (value_to_string v)
let as_seq = function VSeq s -> s | v -> err "expected seq, got %s" (value_to_string v)

let bit_op op kind a b =
  (* Operate on the two's-complement-free unsigned representation. *)
  let width = match kind with I_u8 -> 8 | I_u16 -> 16 | I_u32 -> 32 | I_u64 -> 64 | I_math -> err "bit op on int" in
  let mask v = B.fmod v (B.pow B.two width) in
  let a = mask a and b = mask b in
  match op with
  | BitAnd | BitOr | BitXor ->
    let f =
      match op with BitAnd -> ( && ) | BitOr -> ( || ) | _ -> ( <> )
    in
    let r = ref B.zero in
    for i = width - 1 downto 0 do
      r := B.add (B.add !r !r) (if f (B.testbit a i) (B.testbit b i) then B.one else B.zero)
    done;
    !r
  | Shl -> mask (B.shift_left a (B.to_int_exn b))
  | Shr -> fst (B.ediv_rem a (B.pow B.two (B.to_int_exn b)))
  | _ -> err "not a bit op"

let rec eval_expr ?(quant_bound = 0) (p : program) env (e : expr) : value =
  let ev e = eval_expr ~quant_bound p env e in
  match e with
  | EVar x -> (
    match List.assoc_opt x env with Some v -> v | None -> err "unbound variable %s" x)
  | EOld x -> (
    match List.assoc_opt ("old$" ^ x) env with
    | Some v -> v
    | None -> err "old(%s) not available" x)
  | EBool b -> VBool b
  | EInt n -> VInt (B.of_int n)
  | EUnop (Not, a) -> VBool (not (as_bool (ev a)))
  | EUnop (Neg, a) -> VInt (B.neg (as_int (ev a)))
  | EBinop (op, a, b) -> (
    match op with
    | And -> VBool (as_bool (ev a) && as_bool (ev b))
    | Or -> VBool (as_bool (ev a) || as_bool (ev b))
    | Implies -> VBool ((not (as_bool (ev a))) || as_bool (ev b))
    | Eq -> VBool (value_equal (ev a) (ev b))
    | Ne -> VBool (not (value_equal (ev a) (ev b)))
    | Add -> VInt (B.add (as_int (ev a)) (as_int (ev b)))
    | Sub -> VInt (B.sub (as_int (ev a)) (as_int (ev b)))
    | Mul -> VInt (B.mul (as_int (ev a)) (as_int (ev b)))
    | Div ->
      let d = as_int (ev b) in
      if B.is_zero d then err "division by zero";
      VInt (fst (B.ediv_rem (as_int (ev a)) d))
    | Mod ->
      let d = as_int (ev b) in
      if B.is_zero d then err "mod by zero";
      VInt (snd (B.ediv_rem (as_int (ev a)) d))
    | Lt -> VBool (B.compare (as_int (ev a)) (as_int (ev b)) < 0)
    | Le -> VBool (B.compare (as_int (ev a)) (as_int (ev b)) <= 0)
    | Gt -> VBool (B.compare (as_int (ev a)) (as_int (ev b)) > 0)
    | Ge -> VBool (B.compare (as_int (ev a)) (as_int (ev b)) >= 0)
    | BitAnd | BitOr | BitXor | Shl | Shr -> (
      (* Kind from the static typing (either operand may carry it). *)
      let kind_of e =
        try
          match Typecheck.ty_of_expr p (env_types p env) e with
          | TInt k when k <> I_math -> Some k
          | _ -> None
        with Failure _ -> None
      in
      match (kind_of a, kind_of b) with
      | Some k, _ | _, Some k -> VInt (bit_op op k (as_int (ev a)) (as_int (ev b)))
      | None, None -> err "bit op needs bounded ints"))
  | EIte (c, a, b) -> if as_bool (ev c) then ev a else ev b
  | ECall (f, args) -> (
    let fd = find_fn p f in
    match fd.spec_body with
    | Some body ->
      let env' =
        List.map2 (fun (prm : param) a -> (prm.pname, ev a)) fd.params args
      in
      eval_expr ~quant_bound p env' body
    | None -> err "call to bodiless spec function %s" f)
  | ECtor (_, vname, args) -> VData (vname, List.map ev args)
  | EField (e1, fname) -> (
    match ev e1 with
    | VData (vname, fields) -> (
      (* Locate the field position within this variant. *)
      let d =
        List.find
          (fun d -> List.exists (fun (vn, _) -> String.equal vn vname) d.variants)
          p.datatypes
      in
      let vfields = List.assoc vname d.variants in
      match List.find_index (fun (fn, _) -> String.equal fn fname) vfields with
      | Some idx -> List.nth fields idx
      | None -> err "variant %s has no field %s" vname fname)
    | v -> err "field access on %s" (value_to_string v))
  | EIs (e1, vname) -> (
    match ev e1 with
    | VData (vn, _) -> VBool (String.equal vn vname)
    | v -> err "variant test on %s" (value_to_string v))
  | ESeq op -> (
    match op with
    | SeqEmpty _ -> VSeq []
    | SeqLen s -> VInt (B.of_int (List.length (as_seq (ev s))))
    | SeqIndex (s, i) -> (
      let l = as_seq (ev s) in
      let idx = B.to_int_exn (as_int (ev i)) in
      match List.nth_opt l idx with
      | Some v -> v
      | None -> err "seq index %d out of bounds (len %d)" idx (List.length l))
    | SeqPush (s, x) -> VSeq (as_seq (ev s) @ [ ev x ])
    | SeqSkip (s, k) ->
      let l = as_seq (ev s) in
      let k = B.to_int_exn (as_int (ev k)) in
      VSeq (List.filteri (fun i _ -> i >= k) l)
    | SeqTake (s, k) ->
      let l = as_seq (ev s) in
      let k = B.to_int_exn (as_int (ev k)) in
      VSeq (List.filteri (fun i _ -> i < k) l)
    | SeqUpdate (s, i, x) ->
      let l = as_seq (ev s) in
      let idx = B.to_int_exn (as_int (ev i)) in
      let nv = ev x in
      VSeq (List.mapi (fun j old -> if j = idx then nv else old) l)
    | SeqAppend (a, b) -> VSeq (as_seq (ev a) @ as_seq (ev b)))
  | EForall (vars, _, body) | EExists (vars, _, body) -> (
    if quant_bound <= 0 then err "cannot evaluate quantifier (no bound)";
    let is_forall = match e with EForall _ -> true | _ -> false in
    let rec enum env' = function
      | [] ->
        let r = as_bool (eval_expr ~quant_bound p env' body) in
        if is_forall then r else r
      | (x, t) :: rest -> (
        match t with
        | TInt _ ->
          let range = List.init ((2 * quant_bound) + 1) (fun k -> k - quant_bound) in
          let results =
            List.map (fun k -> enum ((x, VInt (B.of_int k)) :: env') rest) range
          in
          if is_forall then List.for_all Fun.id results else List.exists Fun.id results
        | TBool ->
          let results = List.map (fun b -> enum ((x, VBool b) :: env') rest) [ true; false ] in
          if is_forall then List.for_all Fun.id results else List.exists Fun.id results
        | _ -> err "cannot evaluate quantifier over %s" (ty_to_string t))
    in
    VBool (enum env vars))

and env_types (p : program) env =
  (* Recover types of values for bit-op kind resolution: conservative. *)
  ignore p;
  List.filter_map
    (fun (x, v) ->
      match v with
      | VInt _ -> Some (x, TInt I_u64)
      | VBool _ -> Some (x, TBool)
      | _ -> None)
    env

exception Return_exc of value option

let rec exec_stmts ?(quant_bound = 0) ~check p (env : (string * value) list ref) stmts =
  List.iter (exec_stmt ~quant_bound ~check p env) stmts

and exec_stmt ?(quant_bound = 0) ~check p env s =
  let ev e = eval_expr ~quant_bound p !env e in
  match s with
  | SLet (x, _, e) | SAssign (x, e) ->
    let value = ev e in
    env := (x, value) :: List.remove_assoc x !env
  | SIf (c, a, b) -> if as_bool (ev c) then exec_stmts ~quant_bound ~check p env a else exec_stmts ~quant_bound ~check p env b
  | SWhile { cond; invariants; decreases = _; body } ->
    let check_invs () =
      if check then
        List.iteri
          (fun i inv ->
            (* Invariants may quantify; tolerate evaluation failures in
               dynamic checking rather than failing the run. *)
            try
              if not (as_bool (ev inv)) then
                raise (Assertion_failed (Printf.sprintf "loop invariant %d" i))
            with Runtime_error _ -> ())
          invariants
    in
    check_invs ();
    while as_bool (ev cond) do
      exec_stmts ~quant_bound ~check p env body;
      check_invs ()
    done
  | SCall (binding, f, args) -> (
    let fd = find_fn p f in
    let arg_values = List.map ev args in
    let result, mut_out = call_fn ~quant_bound ~check p fd arg_values in
    (* Write back &mut arguments. *)
    List.iter2
      (fun (prm : param) a ->
        if prm.pmut then
          match a with
          | EVar x ->
            let nv = List.assoc prm.pname mut_out in
            env := (x, nv) :: List.remove_assoc x !env
          | _ -> err "&mut argument must be a variable")
      fd.params args;
    match (binding, result) with
    | Some x, Some value -> env := (x, value) :: List.remove_assoc x !env
    | Some _, None -> err "no result from %s" f
    | None, _ -> ())
  | SAssert (e, _) ->
    if check then begin
      try
        if not (as_bool (ev e)) then raise (Assertion_failed "assert")
      with Runtime_error _ -> () (* unbounded quantifier in ghost assert *)
    end
  | SAssume _ -> ()
  | SReturn eo -> raise (Return_exc (Option.map ev eo))

and call_fn ?(quant_bound = 0) ~check p (fd : fndecl) (args : value list) :
    value option * (string * value) list =
  let env0 =
    List.map2 (fun (prm : param) v -> (prm.pname, v)) fd.params args
    @ List.map2 (fun (prm : param) v -> ("old$" ^ prm.pname, v)) fd.params args
  in
  if check then
    List.iteri
      (fun i req ->
        try
          if not (as_bool (eval_expr ~quant_bound p env0 req)) then
            raise (Assertion_failed (Printf.sprintf "%s: requires %d" fd.fname i))
        with Runtime_error _ -> ())
      fd.requires;
  let body = match fd.body with Some b -> b | None -> err "no body for %s" fd.fname in
  let env = ref env0 in
  let result =
    try
      exec_stmts ~quant_bound ~check p env body;
      None
    with Return_exc v -> v
  in
  let mut_out =
    List.filter_map
      (fun (prm : param) ->
        if prm.pmut then Some (prm.pname, List.assoc prm.pname !env) else None)
      fd.params
  in
  if check then begin
    let env_post =
      (match (result, fd.ret) with
      | Some value, Some (rname, _) -> [ (rname, value) ]
      | _ -> [])
      @ List.map
          (fun (prm : param) ->
            match List.assoc_opt prm.pname mut_out with
            | Some v -> (prm.pname, v)
            | None -> (prm.pname, List.assoc prm.pname env0))
          fd.params
      @ List.map (fun (prm : param) -> ("old$" ^ prm.pname, List.assoc prm.pname env0)) fd.params
    in
    List.iteri
      (fun i ens ->
        try
          if not (as_bool (eval_expr ~quant_bound p env_post ens)) then
            raise (Assertion_failed (Printf.sprintf "%s: ensures %d" fd.fname i))
        with Runtime_error _ -> ())
      fd.ensures
  end;
  (result, mut_out)

let run_fn ?(check_contracts = true) p fname args =
  let fd = find_fn p fname in
  call_fn ~quant_bound:0 ~check:check_contracts p fd args
