module T = Smt.Term
module S = Smt.Sort
open Vir

type vc_result = {
  vcr_name : string;
  vcr_answer : Smt.Solver.answer;
  vcr_time_s : float;
  vcr_bytes : int;
  vcr_detail : string;
}

type fn_result = {
  fnr_name : string;
  fnr_vcs : vc_result list;
  fnr_ok : bool;
  fnr_time_s : float;
  fnr_bytes : int;
}

type program_result = {
  pr_profile : string;
  pr_fns : fn_result list;
  pr_ok : bool;
  pr_time_s : float;
  pr_bytes : int;
  pr_front_end_errors : string list;
  pr_lint : Vlint.diag list;
}

type lint_mode = Lint_ignore | Lint_warn | Lint_strict

(* ------------------------------------------------------------------ *)
(* Pruning                                                             *)
(* ------------------------------------------------------------------ *)

let syms_of_term t =
  T.fold_subterms
    (fun acc s -> match s.T.node with T.App (f, _) -> f.T.sid :: acc | _ -> acc)
    [] t
  |> List.sort_uniq compare

let prune_context axioms (vc : Encode.vc) =
  let module IS = Set.Make (Int) in
  let reachable =
    ref
      (IS.of_list
         (List.concat_map syms_of_term (vc.Encode.vc_goal :: vc.Encode.vc_hyps)))
  in
  let remaining = ref (List.map (fun a -> (a, syms_of_term a)) axioms) in
  let included = ref [] in
  let changed = ref true in
  while !changed do
    changed := false;
    remaining :=
      List.filter
        (fun (ax, syms) ->
          if List.exists (fun s -> IS.mem s !reachable) syms then begin
            included := ax :: !included;
            reachable := IS.union !reachable (IS.of_list syms);
            changed := true;
            false
          end
          else true)
        !remaining
  done;
  List.rev !included

let context_for (p : Profiles.t) (prog : program) (vc : Encode.vc) =
  let axioms = Encode.program_axioms p prog in
  if p.Profiles.pruning then prune_context axioms vc else axioms

(* ------------------------------------------------------------------ *)
(* VC dispatch                                                         *)
(* ------------------------------------------------------------------ *)

let outcome_to_answer = function
  | Modes.Proved -> (Smt.Solver.Unsat, "")
  | Modes.Refuted msg -> (Smt.Solver.Sat, msg)
  | Modes.Unsupported msg -> (Smt.Solver.Unknown msg, msg)

let run_vc (p : Profiles.t) (prog : program) ~axioms (vc : Encode.vc) : vc_result =
  let t0 = Unix.gettimeofday () in
  let context =
    if p.Profiles.pruning then prune_context axioms vc else axioms
  in
  let bytes =
    List.fold_left (fun acc t -> acc + T.printed_size t) 0 (vc.Encode.vc_goal :: vc.Encode.vc_hyps)
    + List.fold_left (fun acc t -> acc + T.printed_size t) 0 context
  in
  let answer, detail =
    match vc.Encode.vc_hint with
    | H_default ->
      if p.Profiles.epr_only then begin
        let all = context @ vc.Encode.vc_hyps @ [ T.not_ vc.Encode.vc_goal ] in
        match Smt.Epr.check_fragment all with
        | Error e -> (Smt.Solver.Unknown ("outside EPR: " ^ e), "Ivy cannot express this")
        | Ok () ->
          let r = Smt.Epr.solve ~config:p.Profiles.solver_config all in
          (r.Smt.Solver.answer, "EPR-decided")
      end
      else begin
        let r =
          Smt.Solver.check_valid ~config:p.Profiles.solver_config
            ~hyps:(context @ vc.Encode.vc_hyps) vc.Encode.vc_goal
        in
        let d =
          Printf.sprintf "inst=%d confl=%d sat=%.2f theory=%.2f em=%.2f"
            r.Smt.Solver.stats.Smt.Solver.instances r.Smt.Solver.stats.Smt.Solver.conflicts
            r.Smt.Solver.stats.Smt.Solver.t_sat r.Smt.Solver.stats.Smt.Solver.t_theory
            r.Smt.Solver.stats.Smt.Solver.t_ematch
        in
        (r.Smt.Solver.answer, d)
      end
    | H_bit_vector -> outcome_to_answer (Modes.prove_bit_vector vc.Encode.vc_goal)
    | H_nonlinear -> outcome_to_answer (Modes.prove_nonlinear vc.Encode.vc_goal)
    | H_integer_ring -> outcome_to_answer (Modes.prove_integer_ring vc.Encode.vc_goal)
    | H_compute -> (
      match vc.Encode.vc_expr with
      | Some e -> outcome_to_answer (Modes.prove_compute prog e)
      | None -> (Smt.Solver.Unknown "compute assert lost its expression", ""))
  in
  {
    vcr_name = vc.Encode.vc_name;
    vcr_answer = answer;
    vcr_time_s = Unix.gettimeofday () -. t0;
    vcr_bytes = bytes;
    vcr_detail = detail;
  }

let verify_function_with_axioms (p : Profiles.t) (prog : program) ~axioms (fd : fndecl) :
    fn_result =
  let t0 = Unix.gettimeofday () in
  let vcs = Encode.encode_function p prog fd in
  let results = List.map (run_vc p prog ~axioms) vcs in
  let ok = List.for_all (fun r -> r.vcr_answer = Smt.Solver.Unsat) results in
  {
    fnr_name = fd.fname;
    fnr_vcs = results;
    fnr_ok = ok;
    fnr_time_s = Unix.gettimeofday () -. t0;
    fnr_bytes = List.fold_left (fun acc r -> acc + r.vcr_bytes) 0 results;
  }

let verify_function (p : Profiles.t) (prog : program) (fd : fndecl) : fn_result =
  verify_function_with_axioms p prog ~axioms:(Encode.program_axioms p prog) fd

let verify_program ?(jobs = 1) ?(lint = Lint_ignore) (p : Profiles.t) (prog : program) :
    program_result =
  let t0 = Unix.gettimeofday () in
  (* Static analysis first: in [Lint_strict] mode Error-severity findings
     abort before any SMT work (fail fast); [Lint_warn] records them in
     [pr_lint] without affecting the verdict. *)
  let lint_diags = match lint with Lint_ignore -> [] | _ -> Vlint.lint p prog in
  let lint_errors = Vlint.errors lint_diags in
  if lint = Lint_strict && lint_errors <> [] then
    {
      pr_profile = p.Profiles.name;
      pr_fns = [];
      pr_ok = false;
      pr_time_s = Unix.gettimeofday () -. t0;
      pr_bytes = 0;
      pr_front_end_errors = [];
      pr_lint = lint_diags;
    }
  else
  let front_end_errors =
    (match Typecheck.check_program prog with Ok () -> [] | Error es -> es)
    @ (match Ownership.check_program prog with Ok () -> [] | Error es -> es)
  in
  if front_end_errors <> [] then
    {
      pr_profile = p.Profiles.name;
      pr_fns = [];
      pr_ok = false;
      pr_time_s = Unix.gettimeofday () -. t0;
      pr_bytes = 0;
      pr_front_end_errors = front_end_errors;
      pr_lint = lint_diags;
    }
  else begin
    let axioms = Encode.program_axioms p prog in
    let targets =
      List.filter (fun fd -> fd.fmode <> Spec && fd.body <> None) prog.functions
    in
    let results =
      if jobs <= 1 then List.map (verify_function_with_axioms p prog ~axioms) targets
      else begin
        (* Round-robin chunks over domains. *)
        let n = List.length targets in
        let arr = Array.of_list targets in
        let out = Array.make n None in
        let next = Atomic.make 0 in
        let worker () =
          let rec go () =
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              out.(i) <- Some (verify_function_with_axioms p prog ~axioms arr.(i));
              go ()
            end
          in
          go ()
        in
        let domains = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
        List.iter Domain.join domains;
        Array.to_list out |> List.filter_map Fun.id
      end
    in
    {
      pr_profile = p.Profiles.name;
      pr_fns = results;
      pr_ok = List.for_all (fun r -> r.fnr_ok) results;
      pr_time_s = Unix.gettimeofday () -. t0;
      pr_bytes = List.fold_left (fun acc r -> acc + r.fnr_bytes) 0 results;
      pr_front_end_errors = [];
      pr_lint = lint_diags;
    }
  end

let first_failure (pr : program_result) =
  match Vlint.errors pr.pr_lint with
  | d :: _ when pr.pr_fns = [] && pr.pr_front_end_errors = [] ->
    Some ((match d.Vlint.fn with Some f -> f | None -> "<program>"), d.Vlint.message, d.Vlint.code)
  | _ -> (
    match pr.pr_front_end_errors with
    | e :: _ -> Some ("<front-end>", e, "FE001")
    | [] ->
      List.find_map
        (fun fnr ->
          List.find_map
            (fun v ->
              match v.vcr_answer with
              | Smt.Solver.Unsat -> None
              | Smt.Solver.Sat -> Some (fnr.fnr_name, v.vcr_name, "VC001")
              | Smt.Solver.Unknown _ -> Some (fnr.fnr_name, v.vcr_name, "VC002"))
            fnr.fnr_vcs)
        pr.pr_fns)
