module T = Smt.Term
module S = Smt.Sort
open Vir

type vc_result = {
  vcr_name : string;
  vcr_answer : Smt.Solver.answer;
  vcr_time_s : float;
  vcr_bytes : int;
  vcr_detail : string;
}

type fn_result = {
  fnr_name : string;
  fnr_vcs : vc_result list;
  fnr_ok : bool;
  fnr_time_s : float;
  fnr_bytes : int;
}

type program_result = {
  pr_profile : string;
  pr_fns : fn_result list;
  pr_ok : bool;
  pr_time_s : float;
  pr_bytes : int;
  pr_front_end_errors : string list;
}

(* ------------------------------------------------------------------ *)
(* Type collection                                                     *)
(* ------------------------------------------------------------------ *)

let rec add_ty acc (t : ty) =
  match t with
  | TSeq e -> add_ty (if List.exists (ty_equal t) acc then acc else t :: acc) e
  | TBool | TInt _ | TData _ -> if List.exists (ty_equal t) acc then acc else t :: acc

let rec tys_in_expr acc (e : expr) =
  match e with
  | ESeq (SeqEmpty t) -> add_ty acc (TSeq t)
  | EForall (vars, _, b) | EExists (vars, _, b) ->
    tys_in_expr (List.fold_left (fun a (_, t) -> add_ty a t) acc vars) b
  | EUnop (_, a) -> tys_in_expr acc a
  | EBinop (_, a, b) -> tys_in_expr (tys_in_expr acc a) b
  | EIte (a, b, c) -> tys_in_expr (tys_in_expr (tys_in_expr acc a) b) c
  | ECall (_, args) | ECtor (_, _, args) -> List.fold_left tys_in_expr acc args
  | EField (a, _) | EIs (a, _) -> tys_in_expr acc a
  | ESeq op -> (
    match op with
    | SeqEmpty _ -> acc
    | SeqLen a -> tys_in_expr acc a
    | SeqIndex (a, b) | SeqPush (a, b) | SeqSkip (a, b) | SeqTake (a, b) | SeqAppend (a, b) ->
      tys_in_expr (tys_in_expr acc a) b
    | SeqUpdate (a, b, c) -> tys_in_expr (tys_in_expr (tys_in_expr acc a) b) c)
  | EVar _ | EOld _ | EBool _ | EInt _ -> acc

let rec tys_in_stmt acc (s : stmt) =
  match s with
  | SLet (_, t, e) -> tys_in_expr (add_ty acc t) e
  | SAssign (_, e) -> tys_in_expr acc e
  | SIf (c, a, b) ->
    List.fold_left tys_in_stmt (List.fold_left tys_in_stmt (tys_in_expr acc c) a) b
  | SWhile { cond; invariants; decreases; body } ->
    let acc = match decreases with Some d -> tys_in_expr acc d | None -> acc in
    List.fold_left tys_in_stmt
      (List.fold_left tys_in_expr (tys_in_expr acc cond) invariants)
      body
  | SCall (_, _, args) -> List.fold_left tys_in_expr acc args
  | SAssert (e, _) | SAssume e -> tys_in_expr acc e
  | SReturn (Some e) -> tys_in_expr acc e
  | SReturn None -> acc

let program_types (p : program) =
  let acc = [] in
  let acc =
    List.fold_left
      (fun acc d -> List.fold_left (fun a (_, t) -> add_ty a t) acc (List.concat_map snd d.variants))
      acc p.datatypes
  in
  List.fold_left
    (fun acc fd ->
      let acc = List.fold_left (fun a (prm : param) -> add_ty a prm.pty) acc fd.params in
      let acc = match fd.ret with Some (_, t) -> add_ty acc t | None -> acc in
      let acc = List.fold_left tys_in_expr acc (fd.requires @ fd.ensures) in
      let acc = match fd.spec_body with Some e -> tys_in_expr acc e | None -> acc in
      match fd.body with Some b -> List.fold_left tys_in_stmt acc b | None -> acc)
    acc p.functions

(* ------------------------------------------------------------------ *)
(* Axiom assembly                                                      *)
(* ------------------------------------------------------------------ *)

let wrapper_axioms (p : Profiles.t) sorts =
  List.concat_map
    (fun srt ->
      List.init p.Profiles.wrapper_depth (fun i ->
          let w = Encode.wrapper_sym (i + 1) srt in
          let x = T.bvar "x" srt in
          T.forall [ ("x", srt) ] (T.eq (T.app w [ x ]) x)))
    sorts

let ownok_axioms sorts =
  List.map
    (fun srt ->
      let x = T.bvar "x" srt in
      T.forall [ ("x", srt) ] (T.app (Encode.ownok_sym srt) [ x ]))
    sorts

let all_axioms (p : Profiles.t) (prog : program) : T.t list =
  let curated = p.Profiles.curated_triggers in
  let heap = p.Profiles.encoding = Profiles.Heap in
  let tys = program_types prog in
  let seq_elems = List.filter_map (function TSeq e -> Some e | _ -> None) tys in
  let seq_axs = List.concat_map (fun e -> Theories.seq_axioms ~curated ~heap e) seq_elems in
  let data_axs =
    if heap then Theories.heap_axioms ~curated prog
    else List.concat_map (fun d -> Theories.data_axioms ~curated d) prog.datatypes
  in
  let spec_axs =
    List.filter_map (fun fd -> Encode.spec_fn_axiom p prog fd) prog.functions
  in
  let uses_bitops =
    (* Only include the bit-op range axioms when the program uses them. *)
    List.exists
      (fun fd ->
        let rec expr_has e =
          match e with
          | EBinop ((BitAnd | BitOr | BitXor | Shl | Shr), _, _) -> true
          | EUnop (_, a) -> expr_has a
          | EBinop (_, a, b) -> expr_has a || expr_has b
          | EIte (a, b, c) -> expr_has a || expr_has b || expr_has c
          | ECall (_, args) | ECtor (_, _, args) -> List.exists expr_has args
          | EField (a, _) | EIs (a, _) -> expr_has a
          | EForall (_, _, b) | EExists (_, _, b) -> expr_has b
          | ESeq _ | EVar _ | EOld _ | EBool _ | EInt _ -> false
        in
        let rec stmt_has s =
          match s with
          | SLet (_, _, e) | SAssign (_, e) | SAssert (e, _) | SAssume e -> expr_has e
          | SReturn (Some e) -> expr_has e
          | SReturn None -> false
          | SIf (c, a, b) -> expr_has c || List.exists stmt_has a || List.exists stmt_has b
          | SWhile { cond; invariants; decreases; body } ->
            expr_has cond
            || List.exists expr_has invariants
            || (match decreases with Some d -> expr_has d | None -> false)
            || List.exists stmt_has body
          | SCall (_, _, args) -> List.exists expr_has args
        in
        List.exists expr_has (fd.requires @ fd.ensures)
        || (match fd.spec_body with Some e -> expr_has e | None -> false)
        || match fd.body with Some b -> List.exists stmt_has b | None -> false)
      prog.functions
  in
  let bit_axs = if uses_bitops then Encode.bitop_axioms p else [] in
  let sorts_used =
    List.sort_uniq compare (List.map (Theories.sort_of_ty ~heap) tys)
  in
  let wrap_axs = wrapper_axioms p sorts_used in
  let own_axs =
    if p.Profiles.recheck_ownership then
      ownok_axioms (List.filter (function S.Usort _ -> true | _ -> false) sorts_used)
    else []
  in
  seq_axs @ data_axs @ spec_axs @ bit_axs @ wrap_axs @ own_axs

(* ------------------------------------------------------------------ *)
(* Pruning                                                             *)
(* ------------------------------------------------------------------ *)

let syms_of_term t =
  T.fold_subterms
    (fun acc s -> match s.T.node with T.App (f, _) -> f.T.sid :: acc | _ -> acc)
    [] t
  |> List.sort_uniq compare

let prune_context axioms (vc : Encode.vc) =
  let module IS = Set.Make (Int) in
  let reachable =
    ref
      (IS.of_list
         (List.concat_map syms_of_term (vc.Encode.vc_goal :: vc.Encode.vc_hyps)))
  in
  let remaining = ref (List.map (fun a -> (a, syms_of_term a)) axioms) in
  let included = ref [] in
  let changed = ref true in
  while !changed do
    changed := false;
    remaining :=
      List.filter
        (fun (ax, syms) ->
          if List.exists (fun s -> IS.mem s !reachable) syms then begin
            included := ax :: !included;
            reachable := IS.union !reachable (IS.of_list syms);
            changed := true;
            false
          end
          else true)
        !remaining
  done;
  List.rev !included

let context_for (p : Profiles.t) (prog : program) (vc : Encode.vc) =
  let axioms = all_axioms p prog in
  if p.Profiles.pruning then prune_context axioms vc else axioms

(* ------------------------------------------------------------------ *)
(* VC dispatch                                                         *)
(* ------------------------------------------------------------------ *)

let outcome_to_answer = function
  | Modes.Proved -> (Smt.Solver.Unsat, "")
  | Modes.Refuted msg -> (Smt.Solver.Sat, msg)
  | Modes.Unsupported msg -> (Smt.Solver.Unknown msg, msg)

let run_vc (p : Profiles.t) (prog : program) ~axioms (vc : Encode.vc) : vc_result =
  let t0 = Unix.gettimeofday () in
  let context =
    if p.Profiles.pruning then prune_context axioms vc else axioms
  in
  let bytes =
    List.fold_left (fun acc t -> acc + T.printed_size t) 0 (vc.Encode.vc_goal :: vc.Encode.vc_hyps)
    + List.fold_left (fun acc t -> acc + T.printed_size t) 0 context
  in
  let answer, detail =
    match vc.Encode.vc_hint with
    | H_default ->
      if p.Profiles.epr_only then begin
        let all = context @ vc.Encode.vc_hyps @ [ T.not_ vc.Encode.vc_goal ] in
        match Smt.Epr.check_fragment all with
        | Error e -> (Smt.Solver.Unknown ("outside EPR: " ^ e), "Ivy cannot express this")
        | Ok () ->
          let r = Smt.Epr.solve ~config:p.Profiles.solver_config all in
          (r.Smt.Solver.answer, "EPR-decided")
      end
      else begin
        let r =
          Smt.Solver.check_valid ~config:p.Profiles.solver_config
            ~hyps:(context @ vc.Encode.vc_hyps) vc.Encode.vc_goal
        in
        let d =
          Printf.sprintf "inst=%d confl=%d sat=%.2f theory=%.2f em=%.2f"
            r.Smt.Solver.stats.Smt.Solver.instances r.Smt.Solver.stats.Smt.Solver.conflicts
            r.Smt.Solver.stats.Smt.Solver.t_sat r.Smt.Solver.stats.Smt.Solver.t_theory
            r.Smt.Solver.stats.Smt.Solver.t_ematch
        in
        (r.Smt.Solver.answer, d)
      end
    | H_bit_vector -> outcome_to_answer (Modes.prove_bit_vector vc.Encode.vc_goal)
    | H_nonlinear -> outcome_to_answer (Modes.prove_nonlinear vc.Encode.vc_goal)
    | H_integer_ring -> outcome_to_answer (Modes.prove_integer_ring vc.Encode.vc_goal)
    | H_compute -> (
      match vc.Encode.vc_expr with
      | Some e -> outcome_to_answer (Modes.prove_compute prog e)
      | None -> (Smt.Solver.Unknown "compute assert lost its expression", ""))
  in
  {
    vcr_name = vc.Encode.vc_name;
    vcr_answer = answer;
    vcr_time_s = Unix.gettimeofday () -. t0;
    vcr_bytes = bytes;
    vcr_detail = detail;
  }

let verify_function_with_axioms (p : Profiles.t) (prog : program) ~axioms (fd : fndecl) :
    fn_result =
  let t0 = Unix.gettimeofday () in
  let vcs = Encode.encode_function p prog fd in
  let results = List.map (run_vc p prog ~axioms) vcs in
  let ok = List.for_all (fun r -> r.vcr_answer = Smt.Solver.Unsat) results in
  {
    fnr_name = fd.fname;
    fnr_vcs = results;
    fnr_ok = ok;
    fnr_time_s = Unix.gettimeofday () -. t0;
    fnr_bytes = List.fold_left (fun acc r -> acc + r.vcr_bytes) 0 results;
  }

let verify_function (p : Profiles.t) (prog : program) (fd : fndecl) : fn_result =
  verify_function_with_axioms p prog ~axioms:(all_axioms p prog) fd

let verify_program ?(jobs = 1) (p : Profiles.t) (prog : program) : program_result =
  let t0 = Unix.gettimeofday () in
  let front_end_errors =
    (match Typecheck.check_program prog with Ok () -> [] | Error es -> es)
    @ (match Ownership.check_program prog with Ok () -> [] | Error es -> es)
  in
  if front_end_errors <> [] then
    {
      pr_profile = p.Profiles.name;
      pr_fns = [];
      pr_ok = false;
      pr_time_s = Unix.gettimeofday () -. t0;
      pr_bytes = 0;
      pr_front_end_errors = front_end_errors;
    }
  else begin
    let axioms = all_axioms p prog in
    let targets =
      List.filter (fun fd -> fd.fmode <> Spec && fd.body <> None) prog.functions
    in
    let results =
      if jobs <= 1 then List.map (verify_function_with_axioms p prog ~axioms) targets
      else begin
        (* Round-robin chunks over domains. *)
        let n = List.length targets in
        let arr = Array.of_list targets in
        let out = Array.make n None in
        let next = Atomic.make 0 in
        let worker () =
          let rec go () =
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              out.(i) <- Some (verify_function_with_axioms p prog ~axioms arr.(i));
              go ()
            end
          in
          go ()
        in
        let domains = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
        List.iter Domain.join domains;
        Array.to_list out |> List.filter_map Fun.id
      end
    in
    {
      pr_profile = p.Profiles.name;
      pr_fns = results;
      pr_ok = List.for_all (fun r -> r.fnr_ok) results;
      pr_time_s = Unix.gettimeofday () -. t0;
      pr_bytes = List.fold_left (fun acc r -> acc + r.fnr_bytes) 0 results;
      pr_front_end_errors = [];
    }
  end

let first_failure (pr : program_result) =
  List.find_map
    (fun fnr ->
      List.find_map
        (fun v ->
          if v.vcr_answer <> Smt.Solver.Unsat then Some (fnr.fnr_name, v.vcr_name) else None)
        fnr.fnr_vcs)
    pr.pr_fns
