module T = Smt.Term
module S = Smt.Sort
open Vir

type vc_profile = { vp_smt : Smt.Profile.t; vp_axioms : int list }

type cert_status =
  | Cert_off
  | Cert_checked of string
  | Cert_cached of string
  | Cert_uncertified_hit
  | Cert_rejected of string * string
  | Cert_unavailable of string

type vc_source = Src_solver | Src_prescreen | Src_cache

type vc_result = {
  vcr_name : string;
  vcr_answer : Smt.Solver.answer;
  vcr_time_s : float;
  vcr_bytes : int;
  vcr_detail : string;
  vcr_prof : vc_profile option;
  vcr_cert : cert_status;
  vcr_source : vc_source;
  vcr_rung : int option;
  vcr_rungs_tried : int list;
  vcr_prescreen_refuted : bool;
}

type fn_result = {
  fnr_name : string;
  fnr_vcs : vc_result list;
  fnr_ok : bool;
  fnr_time_s : float;
  fnr_bytes : int;
  fnr_prof : Smt.Profile.t option;
}

type axiom_cost = {
  ac_index : int;
  ac_label : string;
  ac_heads : string list;
  ac_self_bytes : int;
  ac_contexts : int;
  ac_bytes : int;
}

type program_profile = {
  pp_smt : Smt.Profile.t;
  pp_axiom_costs : axiom_cost list;
  pp_vcs : int;
}

type ladder_stats = {
  ls_ladder : string;
  ls_rungs : int;
  ls_attempts : int array;
  ls_wins : int array;
  ls_escalations : int;
  ls_steered : int;
  ls_cache_hits : int;
  ls_hint_starts : int;
}

type program_result = {
  pr_profile : string;
  pr_fns : fn_result list;
  pr_ok : bool;
  pr_time_s : float;
  pr_bytes : int;
  pr_front_end_errors : string list;
  pr_lint : Vlint.diag list;
  pr_prof : program_profile option;
  pr_cache : Vcache.stats option;
  pr_ladder : ladder_stats option;
}

type lint_mode = Lint_ignore | Lint_warn | Lint_strict

type progress = Vc_done of string * vc_result | Fn_done of fn_result

module Config = struct
  type t = {
    jobs : int;
    lint : lint_mode;
    profile : bool;
    cache : Vcache.config option;
    ladder : Vladder.Ladder.t option;
    certify : bool;
    analyze : bool;
    sched : Verusd.Sched.t option;
  }

  let default =
    {
      jobs = 1;
      lint = Lint_ignore;
      profile = false;
      cache = None;
      ladder = None;
      certify = false;
      analyze = false;
      sched = None;
    }

  let with_jobs jobs c = { c with jobs }
  let with_lint lint c = { c with lint }
  let with_profile profile c = { c with profile }
  let with_cache dir c = { c with cache = Some { Vcache.dir } }
  let without_cache c = { c with cache = None }
  let with_ladder l c = { c with ladder = Some l }
  let without_ladder c = { c with ladder = None }

  (* Deprecated single-rung wrapper: a budget override is exactly a
     one-rung ladder whose rung carries the absolute budget (test-pinned
     equivalent in test_vladder). *)
  let with_budget b c = with_ladder (Vladder.Ladder.of_budget b) c

  let with_certify certify c = { c with certify }
  let with_analyze analyze c = { c with analyze }
  let with_sched s c = { c with sched = Some s }
  let without_sched c = { c with sched = None }
end

(* ------------------------------------------------------------------ *)
(* Pruning                                                             *)
(* ------------------------------------------------------------------ *)

let syms_of_term t =
  T.fold_subterms
    (fun acc s -> match s.T.node with T.App (f, _) -> f.T.sid :: acc | _ -> acc)
    [] t
  |> List.sort_uniq compare

let prune_context axioms (vc : Encode.vc) =
  let module IS = Set.Make (Int) in
  let reachable =
    ref
      (IS.of_list
         (List.concat_map syms_of_term (vc.Encode.vc_goal :: vc.Encode.vc_hyps)))
  in
  let remaining = ref (List.map (fun a -> (a, syms_of_term a)) axioms) in
  let included = ref [] in
  let changed = ref true in
  while !changed do
    changed := false;
    remaining :=
      List.filter
        (fun (ax, syms) ->
          if List.exists (fun s -> IS.mem s !reachable) syms then begin
            included := ax :: !included;
            reachable := IS.union !reachable (IS.of_list syms);
            changed := true;
            false
          end
          else true)
        !remaining
  done;
  List.rev !included

let context_for (p : Profiles.t) (prog : program) (vc : Encode.vc) =
  let axioms = Encode.program_axioms p prog in
  if p.Profiles.pruning then prune_context axioms vc else axioms

(* ------------------------------------------------------------------ *)
(* VC dispatch                                                         *)
(* ------------------------------------------------------------------ *)

let outcome_to_answer = function
  | Modes.Proved -> (Smt.Solver.Unsat, "")
  | Modes.Refuted msg -> (Smt.Solver.Sat, msg)
  | Modes.Unsupported msg -> (Smt.Solver.Unknown msg, msg)

(* [ax_index] maps an axiom's term id to its position in the
   [Encode.program_axioms] list, so per-VC context membership can be
   recorded by stable index (the same index VL0xx diagnostics cite). *)
let axiom_index_table axioms =
  let tbl = Hashtbl.create 64 in
  List.iteri (fun i (ax : T.t) -> Hashtbl.replace tbl ax.T.tid i) axioms;
  tbl

(* The per-VC axiom membership is recomputed locally even on a cache hit —
   it is a deterministic function of the context, not of the solve. *)
let vp_axioms_of_context ~ax_index context =
  List.filter_map (fun (ax : T.t) -> Hashtbl.find_opt ax_index ax.T.tid) context
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* The escalation ladder (solver-side rungs above the Vflow prescreen)  *)
(* ------------------------------------------------------------------ *)

module Rung = Vladder.Rung
module Ladder = Vladder.Ladder

(* Everything one run's obligations share.  [ev_ladder] is [Some] iff the
   caller configured an explicit ladder; implicit runs climb the same
   machinery with {!Vladder.Ladder.identity} (one profile rung) and keep
   the pre-ladder observable surface — no rung provenance, no detail
   suffix, no ladder salt in the cache key. *)
type vc_env = {
  ev_profile : bool;
  ev_certify : bool;
  ev_analyze : bool;  (** already demoted under [ev_certify] *)
  ev_cache : Vcache.t option;
  ev_p : Profiles.t;
  ev_prog : program;
  ev_axioms : T.t list;
  ev_ax_index : (int, int) Hashtbl.t;
  ev_ladder : Ladder.t option;
  ev_rungs : Rung.t array;
  ev_vl010 : string list;
      (** head symbols of axioms VL010 flagged as matching-loop-prone —
          the steering signal that skips liberal-trigger rungs *)
}

let make_env ?(profile = false) ?(certify = false) ?(analyze = false) ?cache ?ladder
    ?(vl010 = []) (p : Profiles.t) (prog : program) ~axioms ~ax_index =
  {
    ev_profile = profile;
    ev_certify = certify;
    (* The prescreen is demoted to ordinary SMT under [certify] — Vflow
       emits no replayable certificate, and a certified run must not
       contain uncertifiable verdicts. *)
    ev_analyze = analyze && not certify;
    ev_cache = cache;
    ev_p = p;
    ev_prog = prog;
    ev_axioms = axioms;
    ev_ax_index = ax_index;
    ev_ladder = ladder;
    ev_rungs = Ladder.rungs (match ladder with Some l -> l | None -> Ladder.identity);
    ev_vl010 = vl010;
  }

(* One obligation mid-climb: everything computed once in [start_vc] plus
   the attempt history.  Escalations travel through the scheduler as
   values of this type, so a stronger retry is an ordinary task that
   overlaps other obligations' first attempts. *)
type pending = {
  pd_vc : Encode.vc;
  pd_context : T.t list;  (** the profile-level context ([P_profile] rungs) *)
  pd_pruned : T.t list;  (** the always-pruned context ([P_prune] rungs) *)
  pd_eff_hyps : T.t list;
  pd_facts : T.t list;
  pd_drop : T.t list;
  pd_fp : string option;
  pd_prescreen_refuted : bool;
  pd_t0 : float;
  pd_next : int;  (** rung index of the next attempt *)
  pd_tried : int list;  (** rungs already attempted, most recent first *)
  pd_bytes : int;  (** query bytes shipped by the attempts so far *)
  pd_profs : Smt.Profile.t list;  (** their solver profiles, most recent first *)
}

type step = Finished of vc_result | Escalated of pending

(* Whether a rung's effective solver trigger policy is Liberal — the
   rungs VL010-steering skips when the attempt below them churned. *)
let rung_is_liberal env (r : Rung.t) =
  match r.Rung.r_triggers with
  | Rung.T_liberal -> true
  | Rung.T_conservative -> false
  | Rung.T_profile ->
    env.ev_p.Profiles.solver_config.Smt.Solver.trigger_policy = Smt.Triggers.Liberal

(* Pick the rung after a failed (non-final) attempt at [i].  Default is
   [i + 1]; when the candidate is liberal-triggered, not the top rung,
   and the failed attempt showed E-matching churn — the round budget
   saturated, one quantifier ate half its instance cap, or the hottest
   quantifier's trigger heads intersect VL010's matching-loop heads —
   liberal triggers would amplify the loop, so steering skips ahead one
   more rung.  Deterministic: depends only on the attempt's own stats. *)
let next_rung env ~(budget : Smt.Solver.budget) ~stats ~prof i =
  let n = Array.length env.ev_rungs in
  let cand = i + 1 in
  if cand >= n - 1 then n - 1
  else
    let churn =
      (match stats with
      | Some (s : Smt.Solver.stats) ->
        s.Smt.Solver.instances >= budget.Smt.Solver.max_instances_per_round
      | None -> false)
      ||
      match prof with
      | Some (pr : Smt.Profile.t) -> (
        match pr.Smt.Profile.quants with
        | (q : Smt.Profile.quant_profile) :: _ ->
          2 * q.Smt.Profile.q_instances >= budget.Smt.Solver.max_instances_per_quant
          || List.exists (fun h -> List.mem h env.ev_vl010) q.Smt.Profile.q_heads
        | [] -> false)
      | None -> false
    in
    if churn && rung_is_liberal env env.ev_rungs.(cand) then min (cand + 1) (n - 1)
    else cand

(* First half of an obligation: prescreen, profile-level context, cache
   fingerprint and lookup.  Returns [Finished] when the prescreen or a
   warm hit settles it, [Escalated] (attempt 0 still to run) otherwise. *)
let start_vc env (vc : Encode.vc) : step =
  let t0 = Unix.gettimeofday () in
  let p = env.ev_p in
  let context =
    if p.Profiles.pruning then prune_context env.ev_axioms vc else env.ev_axioms
  in
  (* Prescreen (rung 0 of the escalation ladder): abstract interpretation
     over the VC before any solver or cache involvement. *)
  let pre =
    if not env.ev_analyze then None
    else
      Some
        (Vflow.Prescreen.check ~hyps:(context @ vc.Encode.vc_hyps) ~goal:vc.Encode.vc_goal ())
  in
  match pre with
  | Some pr when pr.Vflow.Prescreen.verdict = Vflow.Prescreen.Proved ->
    (* Discharged without the solver: zero query bytes, no cache entry
       (the prescreen re-derives this faster than a disk hit). *)
    let vcr_prof =
      if not env.ev_profile then None
      else
        Some
          {
            vp_smt = Smt.Profile.empty;
            vp_axioms = vp_axioms_of_context ~ax_index:env.ev_ax_index context;
          }
    in
    Finished
      {
        vcr_name = vc.Encode.vc_name;
        vcr_answer = Smt.Solver.Unsat;
        vcr_time_s = Unix.gettimeofday () -. t0;
        vcr_bytes = 0;
        vcr_detail =
          (if pr.Vflow.Prescreen.vacuous then
             "prescreen: hypotheses contradictory (infeasible path)"
           else
             Printf.sprintf "prescreen: interval+congruence+bool (%d passes)"
               pr.Vflow.Prescreen.passes);
        vcr_prof;
        vcr_cert = Cert_off;
        vcr_source = Src_prescreen;
        vcr_rung = None;
        vcr_rungs_tried = [];
        vcr_prescreen_refuted = false;
      }
  | _ ->
  (* Fall through to SMT, carrying the prescreen's derived facts as extra
     ground hypotheses and dropping hypotheses whose path condition the
     analysis proved infeasible (both sound: facts are consequences of
     the hypotheses, and removing hypotheses never helps the prover).
     A [Refuted] verdict — an abstract counterexample — is advisory
     (recorded for the VL047 lint) and escalates like [Unknown]. *)
  let prescreen_refuted =
    match pre with
    | Some pr -> pr.Vflow.Prescreen.verdict = Vflow.Prescreen.Refuted
    | None -> false
  in
  let facts, drop =
    match pre with
    | Some pr -> (pr.Vflow.Prescreen.facts, pr.Vflow.Prescreen.drop)
    | None -> ([], [])
  in
  let eff_hyps =
    if drop = [] then vc.Encode.vc_hyps
    else List.filter (fun h -> not (List.exists (T.equal h) drop)) vc.Encode.vc_hyps
  in
  let explicit = env.ev_ladder <> None in
  let fp =
    match env.ev_cache with
    | None -> None
    | Some _ ->
      (* Containment: the fingerprint must cover every axiom any rung may
         ship.  A widening ladder ([P_full] rungs) under a pruning profile
         can consult axioms outside the pruned context, so the key is
         taken over the full set; the ladder fingerprint itself salts the
         key whenever a ladder is explicit. *)
      let fp_context =
        match env.ev_ladder with
        | Some l when Ladder.widens l && p.Profiles.pruning -> env.ev_axioms
        | _ -> context
      in
      Some
        (Vcache.fingerprint ~analyze:env.ev_analyze
           ?ladder:(Option.map Ladder.fingerprint env.ev_ladder)
           ~profile:p ~prog:env.ev_prog ~context:fp_context vc)
  in
  let cached =
    match (env.ev_cache, fp) with
    | Some c, Some fp ->
      Vcache.lookup c ~name:vc.Encode.vc_name ~fp ~profile_wanted:env.ev_profile
        ~certified_wanted:env.ev_certify
    | _ -> None
  in
  match cached with
  | Some e ->
    (* Hit: reproduce the recorded solve verbatim (answer, detail, bytes,
       original solve time, winning rung) — warm results are
       indistinguishable from the cold run that filled the cache. *)
    let vcr_prof =
      if not env.ev_profile then None
      else
        Some
          {
            vp_smt = (match e.Vcache.e_profile with Some pr -> pr | None -> Smt.Profile.empty);
            vp_axioms = vp_axioms_of_context ~ax_index:env.ev_ax_index context;
          }
    in
    let vcr_cert =
      (* The digest makes the warm hit a checked claim: the filling run's
         certificate replayed Checked before the entry was stored.  An
         uncertified Unsat hit is unreachable under [certify] ({!Vcache.lookup}
         gates on the digest) and flagged as VL034 material otherwise. *)
      match (env.ev_certify, e.Vcache.e_answer, e.Vcache.e_cert_digest) with
      | true, Smt.Solver.Unsat, Some d -> Cert_cached d
      | true, Smt.Solver.Unsat, None -> Cert_unavailable "cache hit without certificate"
      | false, Smt.Solver.Unsat, None -> Cert_uncertified_hit
      | _ -> Cert_off
    in
    Finished
      {
        vcr_name = vc.Encode.vc_name;
        vcr_answer = e.Vcache.e_answer;
        vcr_time_s = e.Vcache.e_time_s;
        vcr_bytes = e.Vcache.e_bytes;
        vcr_detail = e.Vcache.e_detail;
        vcr_prof;
        vcr_cert;
        vcr_source = Src_cache;
        vcr_rung = (if explicit then e.Vcache.e_rung else None);
        vcr_rungs_tried = [];
        vcr_prescreen_refuted = prescreen_refuted;
      }
  | None ->
    let n = Array.length env.ev_rungs in
    (* The winning-rung jump: a prior run under this exact fingerprint
       recorded which rung finally answered (the entry itself may have
       been gated out of [lookup] — e.g. it lacks a profile and this run
       profiles).  Starting there spends zero attempts on rungs already
       known too weak; [Unsat] at the recorded rung stays definitive. *)
    let start =
      match (env.ev_ladder, env.ev_cache, fp) with
      | Some _, Some c, Some fp -> (
        match Vcache.rung_hint c ~fp with
        | Some r when r > 0 -> min r (n - 1)
        | _ -> 0)
      | _ -> 0
    in
    let pruned =
      if p.Profiles.pruning then context
      else if Array.exists (fun (r : Rung.t) -> r.Rung.r_pruning = Rung.P_prune) env.ev_rungs
      then prune_context env.ev_axioms vc
      else []
    in
    Escalated
      {
        pd_vc = vc;
        pd_context = context;
        pd_pruned = pruned;
        pd_eff_hyps = eff_hyps;
        pd_facts = facts;
        pd_drop = drop;
        pd_fp = fp;
        pd_prescreen_refuted = prescreen_refuted;
        pd_t0 = t0;
        pd_next = start;
        pd_tried = [];
        pd_bytes = 0;
        pd_profs = [];
      }

(* One solver attempt at rung [pd.pd_next].  [Unsat] at any rung is
   definitive — it was obtained from a subset of the full context under a
   sound trigger policy, so it implies the monolithic answer; [Sat] and
   [Unknown] below the top rung escalate (a counterexample found with
   part of the context missing proves nothing), and the top rung's
   answer is final whatever it is. *)
let attempt_vc env (pd : pending) : step =
  let p = env.ev_p in
  let vc = pd.pd_vc in
  let n = Array.length env.ev_rungs in
  let i = pd.pd_next in
  let rung = env.ev_rungs.(i) in
  let base_ctx =
    match rung.Rung.r_pruning with
    | Rung.P_profile -> pd.pd_context
    | Rung.P_prune -> pd.pd_pruned
    | Rung.P_full -> env.ev_axioms
  in
  let eff_context =
    if pd.pd_drop = [] then base_ctx
    else List.filter (fun h -> not (List.exists (T.equal h) pd.pd_drop)) base_ctx
  in
  let attempt_bytes =
    List.fold_left (fun acc t -> acc + T.printed_size t) 0
      ((vc.Encode.vc_goal :: pd.pd_eff_hyps) @ pd.pd_facts)
    + List.fold_left (fun acc t -> acc + T.printed_size t) 0 eff_context
  in
  let solver_cfg =
    let base =
      if env.ev_certify then { p.Profiles.solver_config with Smt.Solver.certify = true }
      else p.Profiles.solver_config
    in
    Rung.apply_config rung base
  in
  let budget = solver_cfg.Smt.Solver.budget in
  (* Outcome of a §3.3 mode, with or without a certificate attached. *)
  let mode_plain o = let a, d = outcome_to_answer o in (a, d, None) in
  let mode_cert (o, c) = let a, d = outcome_to_answer o in (a, d, c) in
  (* The attempt's profile/stats are kept regardless of [ev_profile]:
     they are the steering signal for [next_rung].  §3.3 modes yield
     neither, so escalation after them is always to the adjacent rung. *)
  let smt_prof = ref None in
  let smt_stats = ref None in
  let answer, detail, cert =
    match vc.Encode.vc_hint with
    | H_default ->
      if p.Profiles.epr_only then begin
        let all = base_ctx @ vc.Encode.vc_hyps @ [ T.not_ vc.Encode.vc_goal ] in
        match Smt.Epr.check_fragment all with
        | Error e ->
          (Smt.Solver.Unknown ("outside EPR: " ^ e), "Ivy cannot express this", None)
        | Ok () ->
          let r = Smt.Epr.solve ~config:solver_cfg all in
          smt_prof := Some r.Smt.Solver.profile;
          smt_stats := Some r.Smt.Solver.stats;
          (r.Smt.Solver.answer, "EPR-decided", r.Smt.Solver.cert)
      end
      else begin
        (* Only the general SMT path consumes the prescreen's residue:
           derived facts join the hypotheses and provably-vacuous
           hypotheses are dropped.  EPR and the §3.3 modes keep their
           exact inputs — their completeness arguments are fragile. *)
        let r =
          Smt.Solver.check_valid ~config:solver_cfg
            ~hyps:(eff_context @ pd.pd_eff_hyps @ pd.pd_facts) vc.Encode.vc_goal
        in
        smt_prof := Some r.Smt.Solver.profile;
        smt_stats := Some r.Smt.Solver.stats;
        let d =
          Printf.sprintf "inst=%d confl=%d sat=%.2f theory=%.2f em=%.2f"
            r.Smt.Solver.stats.Smt.Solver.instances r.Smt.Solver.stats.Smt.Solver.conflicts
            r.Smt.Solver.stats.Smt.Solver.t_sat r.Smt.Solver.stats.Smt.Solver.t_theory
            r.Smt.Solver.stats.Smt.Solver.t_ematch
        in
        (r.Smt.Solver.answer, d, r.Smt.Solver.cert)
      end
    | H_bit_vector ->
      if env.ev_certify then mode_cert (Modes.prove_bit_vector_cert ~budget vc.Encode.vc_goal)
      else mode_plain (Modes.prove_bit_vector ~budget vc.Encode.vc_goal)
    | H_nonlinear ->
      if env.ev_certify then mode_cert (Modes.prove_nonlinear_cert ~budget vc.Encode.vc_goal)
      else mode_plain (Modes.prove_nonlinear ~budget vc.Encode.vc_goal)
    | H_integer_ring ->
      if env.ev_certify then
        mode_cert (Modes.prove_integer_ring_cert ~budget vc.Encode.vc_goal)
      else mode_plain (Modes.prove_integer_ring ~budget vc.Encode.vc_goal)
    | H_compute -> (
      match vc.Encode.vc_expr with
      | Some e ->
        if env.ev_certify then mode_cert (Modes.prove_compute_cert ~budget env.ev_prog e)
        else mode_plain (Modes.prove_compute ~budget env.ev_prog e)
      | None -> (Smt.Solver.Unknown "compute assert lost its expression", "", None))
  in
  let final = answer = Smt.Solver.Unsat || i >= n - 1 in
  if not final then
    Escalated
      {
        pd with
        pd_next = next_rung env ~budget ~stats:!smt_stats ~prof:!smt_prof i;
        pd_tried = i :: pd.pd_tried;
        pd_bytes = pd.pd_bytes + attempt_bytes;
        pd_profs =
          (match !smt_prof with Some pr -> pr :: pd.pd_profs | None -> pd.pd_profs);
      }
  else begin
    (* Under [certify], every Unsat must survive the independent kernel's
       replay before it counts as proved; a rejection or a missing
       certificate demotes the obligation (see fn_result_of_vcs) while
       keeping the raw solver answer visible. *)
    let vcr_cert =
      if not env.ev_certify then Cert_off
      else
        match answer with
        | Smt.Solver.Unsat -> (
          match cert with
          | None -> Cert_unavailable "solver returned Unsat without a certificate"
          | Some c -> (
            match Vcheck.check (Smt.Cert.to_json c) with
            | Vcheck.Checked _ -> Cert_checked (Smt.Cert.digest c)
            | Vcheck.Rejected { code; reason } -> Cert_rejected (code, reason)))
        | _ -> Cert_off
    in
    let explicit = env.ev_ladder <> None in
    let detail =
      if not explicit then detail
      else
        let suffix = Printf.sprintf "[rung %d/%d %s]" (i + 1) n rung.Rung.r_name in
        if detail = "" then suffix else detail ^ " " ^ suffix
    in
    let tried = List.rev (i :: pd.pd_tried) in
    let time_s = Unix.gettimeofday () -. pd.pd_t0 in
    let bytes = pd.pd_bytes + attempt_bytes in
    (* The obligation's profile is the merge across its attempts (a
       single-attempt climb keeps that attempt's profile as-is, matching
       the ladder-free driver byte for byte). *)
    let profs =
      List.rev (match !smt_prof with Some pr -> pr :: pd.pd_profs | None -> pd.pd_profs)
    in
    let merged_prof =
      match profs with
      | [] -> None
      | [ pr ] -> Some pr
      | prs -> Some (List.fold_left Smt.Profile.merge Smt.Profile.empty prs)
    in
    (match (env.ev_cache, pd.pd_fp) with
    | Some c, Some fp ->
      Vcache.store c ~name:vc.Encode.vc_name ~fp
        {
          Vcache.e_answer = answer;
          e_detail = detail;
          e_bytes = bytes;
          e_time_s = time_s;
          e_profile = (if env.ev_profile then merged_prof else None);
          (* Only a kernel-Checked certificate earns a digest; a rejected
             one must not become a "checked claim" on the next warm run. *)
          e_cert_digest = (match vcr_cert with Cert_checked d -> Some d | _ -> None);
          e_rung = (if explicit then Some i else None);
        }
    | _ -> ());
    let vcr_prof =
      if not env.ev_profile then None
      else
        Some
          {
            vp_smt = (match merged_prof with Some pr -> pr | None -> Smt.Profile.empty);
            vp_axioms = vp_axioms_of_context ~ax_index:env.ev_ax_index pd.pd_context;
          }
    in
    Finished
      {
        vcr_name = vc.Encode.vc_name;
        vcr_answer = answer;
        vcr_time_s = time_s;
        vcr_bytes = bytes;
        vcr_detail = detail;
        vcr_prof;
        vcr_cert;
        vcr_source = Src_solver;
        vcr_rung = (if explicit then Some i else None);
        vcr_rungs_tried = (if explicit then tried else []);
        vcr_prescreen_refuted = pd.pd_prescreen_refuted;
      }
  end

(* Drive one obligation's climb to completion inline — the sequential
   path; the scheduler version resubmits each [Escalated] instead. *)
let run_vc env (vc : Encode.vc) : vc_result =
  let rec go = function
    | Finished r -> r
    | Escalated pd -> go (attempt_vc env pd)
  in
  go (start_vc env vc)

let cert_ok r =
  match r.vcr_cert with Cert_rejected _ | Cert_unavailable _ -> false | _ -> true

(* Assemble a function verdict from its per-VC results, whichever
   scheduler produced them.  [fnr_time_s] is the sum of the VC solve
   times — the function's compute cost, stable whether its obligations
   ran back-to-back on one domain or interleaved across the pool. *)
let fn_result_of_vcs (fd : fndecl) ~profile (results : vc_result list) : fn_result =
  (* An Unsat whose certificate the kernel rejected (or that arrived
     without one under --certify) does not count as proved. *)
  let ok =
    List.for_all (fun r -> r.vcr_answer = Smt.Solver.Unsat && cert_ok r) results
  in
  let fnr_prof =
    if not profile then None
    else
      Some
        (List.fold_left
           (fun acc r ->
             match r.vcr_prof with
             | Some vp -> Smt.Profile.merge acc vp.vp_smt
             | None -> acc)
           Smt.Profile.empty results)
  in
  {
    fnr_name = fd.fname;
    fnr_vcs = results;
    fnr_ok = ok;
    fnr_time_s = List.fold_left (fun acc r -> acc +. r.vcr_time_s) 0.0 results;
    fnr_bytes = List.fold_left (fun acc r -> acc + r.vcr_bytes) 0 results;
    fnr_prof;
  }

let verify_function_with_axioms ?profile ?certify ?analyze ?cache ?ladder ?vl010
    (p : Profiles.t) (prog : program) ~axioms ~ax_index (fd : fndecl) : fn_result =
  let env = make_env ?profile ?certify ?analyze ?cache ?ladder ?vl010 p prog ~axioms ~ax_index in
  let vcs = Encode.encode_function p prog fd in
  let results = List.map (run_vc env) vcs in
  fn_result_of_vcs fd ~profile:env.ev_profile results

let verify_function ?profile (p : Profiles.t) (prog : program) (fd : fndecl) : fn_result =
  let axioms = Encode.program_axioms p prog in
  verify_function_with_axioms ?profile p prog ~axioms ~ax_index:(axiom_index_table axioms) fd

(* ------------------------------------------------------------------ *)
(* Program-level profile aggregation                                    *)
(* ------------------------------------------------------------------ *)

(* The label/heads of an axiom, derived from the trigger patterns the
   profile's policy would select — the same abstraction Vlint's VL010
   matching-loop report uses, which is what makes the two tables
   cross-checkable. *)
let axiom_label (p : Profiles.t) (ax : T.t) =
  match ax.T.node with
  | T.Forall q ->
    let patterns = List.concat (Smt.Triggers.select p.Profiles.trigger_policy q) in
    let heads =
      List.filter_map
        (fun (pat : T.t) ->
          match pat.T.node with T.App (f, _) -> Some f.T.sname | _ -> None)
        patterns
      |> List.sort_uniq compare
    in
    (Smt.Profile.label_of ~nvars:(List.length q.T.qvars) ~patterns, heads)
  | _ -> ("<ground axiom>", [])

let aggregate_program_profile (p : Profiles.t) ~axioms (fns : fn_result list) :
    program_profile =
  let vc_profs =
    List.concat_map
      (fun fnr -> List.filter_map (fun v -> v.vcr_prof) fnr.fnr_vcs)
      fns
  in
  let pp_smt =
    List.fold_left (fun acc vp -> Smt.Profile.merge acc vp.vp_smt) Smt.Profile.empty vc_profs
  in
  let ax_arr = Array.of_list axioms in
  let contexts = Array.make (Array.length ax_arr) 0 in
  List.iter
    (fun vp ->
      List.iter
        (fun i -> if i >= 0 && i < Array.length contexts then contexts.(i) <- contexts.(i) + 1)
        vp.vp_axioms)
    vc_profs;
  let pp_axiom_costs =
    Array.to_list
      (Array.mapi
         (fun i (ax : T.t) ->
           let label, heads = axiom_label p ax in
           let self = T.printed_size ax in
           {
             ac_index = i;
             ac_label = label;
             ac_heads = heads;
             ac_self_bytes = self;
             ac_contexts = contexts.(i);
             ac_bytes = self * contexts.(i);
           })
         ax_arr)
    |> List.sort (fun a b ->
           match compare b.ac_bytes a.ac_bytes with
           | 0 -> compare a.ac_index b.ac_index
           | c -> c)
  in
  { pp_smt; pp_axiom_costs; pp_vcs = List.length vc_profs }

let verify_program ?(config = Config.default) ?on_progress (p : Profiles.t)
    (prog : program) : program_result =
  let t0 = Unix.gettimeofday () in
  let { Config.jobs; lint; profile; cache = cache_cfg; ladder; certify; analyze; sched } =
    config
  in
  (* Static analysis first: in [Lint_strict] mode Error-severity findings
     abort before any SMT work (fail fast); [Lint_warn] records them in
     [pr_lint] without affecting the verdict. *)
  let lint_diags = match lint with Lint_ignore -> [] | _ -> Vlint.lint p prog in
  let lint_errors = Vlint.errors lint_diags in
  if lint = Lint_strict && lint_errors <> [] then
    {
      pr_profile = p.Profiles.name;
      pr_fns = [];
      pr_ok = false;
      pr_time_s = Unix.gettimeofday () -. t0;
      pr_bytes = 0;
      pr_front_end_errors = [];
      pr_lint = lint_diags;
      pr_prof = None;
      pr_cache = None;
      pr_ladder = None;
    }
  else
  let front_end_errors =
    (match Typecheck.check_program prog with Ok () -> [] | Error es -> es)
    @ (match Ownership.check_program prog with Ok () -> [] | Error es -> es)
  in
  if front_end_errors <> [] then
    {
      pr_profile = p.Profiles.name;
      pr_fns = [];
      pr_ok = false;
      pr_time_s = Unix.gettimeofday () -. t0;
      pr_bytes = 0;
      pr_front_end_errors = front_end_errors;
      pr_lint = lint_diags;
      pr_prof = None;
      pr_cache = None;
      pr_ladder = None;
    }
  else begin
    let cache = Option.map Vcache.open_ cache_cfg in
    let axioms = Encode.program_axioms p prog in
    let ax_index = axiom_index_table axioms in
    (* The steering signal: VL010's matching-loop verdicts over the
       program's axiom set, computed once per run (only worth it when a
       multi-rung ladder can actually steer). *)
    let vl010 =
      match ladder with
      | Some l when Ladder.length l > 1 -> Vlint.vl010_heads (Vlint.check_axioms p axioms)
      | _ -> []
    in
    let env =
      make_env ~profile ~certify ~analyze ?cache ?ladder ~vl010 p prog ~axioms ~ax_index
    in
    let targets =
      List.filter (fun fd -> fd.fmode <> Spec && fd.body <> None) prog.functions
    in
    (* Obligation scheduling.  One {!Verusd.Sched.batch} covers the
       whole program: a per-function task encodes the function and then
       submits one solve task per VC into the same batch; [Sched.await]
       is the barrier.  The batch runs on the caller's long-lived pool
       ([config.sched], the daemon's warm pool), on a transient pool of
       [config.jobs] domains (the CLI's [--jobs]), or inline when
       [jobs <= 1] — three executions of the same code path, so
       verdicts and {!result_digest} are identical whichever ran.

       Encoding inside the scheduled task (rather than up front) is
       load-bearing: proof certificates are sensitive to global
       term-interning order, and keeping each function's encode
       adjacent to its solves reproduces a sequential run's interning
       layout (Sched's depth-first own-deque discipline does the same
       under work stealing — see sched.mli).

       Results are published by index: a worker writes [vc_out.(fi).(vi)]
       and then counts down [remaining.(fi)] with an atomic RMW; the
       worker that sees the count hit zero assembles the function verdict
       (the atomic orders the writes, so it sees all of them).  Progress
       events fire in the finishing worker's domain — [on_progress] must
       be thread-safe when a pool is in play. *)
    let emit ev = match on_progress with Some f -> f ev | None -> () in
    let fn_arr = Array.of_list targets in
    let nfns = Array.length fn_arr in
    let fn_out = Array.make nfns None in
    let vc_out = Array.make nfns [||] in
    let remaining = Array.map (fun _ -> Atomic.make 0) fn_out in
    let b = Verusd.Sched.batch () in
    let go submit =
      (* A function's obligations form a sequential chain: finishing VC
         [vi] submits VC [vi + 1].  The chain head is an ordinary
         stealable task — obligations migrate between workers at VC
         granularity (a long function does not hog its worker, which is
         what keeps the daemon's burst queue latency flat) — but two VCs
         of one function never run concurrently or out of order.  That
         ordering is load-bearing: a function's solves share interned
         terms, and racing their creation order perturbs the proof
         certificates (term interning is layout-sensitive; see
         sched.mli).

         Escalation makes the chain dynamic: an attempt that must climb
         resubmits itself as a fresh task ([`Resume]), so one stubborn
         obligation's stronger retries overlap other chains' first
         attempts instead of blocking a worker — but VC [vi]'s whole
         climb still completes before [vi + 1] starts. *)
      let rec solve_step fi vi vcs st () =
        let step =
          match st with
          | `Start -> (
            match start_vc env vcs.(vi) with
            | Escalated pd -> attempt_vc env pd
            | fin -> fin)
          | `Resume pd -> attempt_vc env pd
        in
        match step with
        | Escalated pd -> submit (solve_step fi vi vcs (`Resume pd))
        | Finished r ->
          vc_out.(fi).(vi) <- Some r;
          emit (Vc_done (fn_arr.(fi).fname, r));
          (if vi + 1 < Array.length vcs then submit (solve_step fi (vi + 1) vcs `Start));
          if Atomic.fetch_and_add remaining.(fi) (-1) = 1 then begin
            let results = Array.to_list vc_out.(fi) |> List.filter_map Fun.id in
            let fnr = fn_result_of_vcs fn_arr.(fi) ~profile results in
            fn_out.(fi) <- Some fnr;
            emit (Fn_done fnr)
          end
      in
      let fn_task fi () =
        let vcs = Array.of_list (Encode.encode_function p prog fn_arr.(fi)) in
        if Array.length vcs = 0 then begin
          (* Everything discharged during encoding. *)
          let fnr = fn_result_of_vcs fn_arr.(fi) ~profile [] in
          fn_out.(fi) <- Some fnr;
          emit (Fn_done fnr)
        end
        else begin
          vc_out.(fi) <- Array.make (Array.length vcs) None;
          Atomic.set remaining.(fi) (Array.length vcs);
          (* The chain head lands on this worker's own deque head (or
             runs inline on the sequential path), so the first solve
             executes right after the encode unless stolen. *)
          submit (solve_step fi 0 vcs `Start)
        end
      in
      for fi = 0 to nfns - 1 do
        submit (fn_task fi)
      done;
      Verusd.Sched.await b
    in
    (match sched with
    | Some pool -> go (fun task -> Verusd.Sched.submit pool b task)
    | None ->
      if jobs <= 1 || nfns = 0 then go (fun task -> Verusd.Sched.submit_now b task)
      else begin
        (* Domains are not capped at the function count: obligations are
           stolen at VC granularity, so extra domains still help a
           single many-VC function. *)
        let pool = Verusd.Sched.create ~domains:jobs in
        Fun.protect
          ~finally:(fun () -> Verusd.Sched.shutdown pool)
          (fun () -> go (fun task -> Verusd.Sched.submit pool b task))
      end);
    let results = Array.to_list fn_out |> List.filter_map Fun.id in
    let pr_cache =
      match cache with
      | None -> None
      | Some c ->
        (match Vcache.flush c with
        | Ok () -> ()
        | Error e -> Printf.eprintf "warning: verification cache not saved: %s\n%!" e);
        Some (Vcache.stats c)
    in
    (* Post-verification lints only the driver can see — both excluded
       from {!result_digest}: VL034 flags verdicts served from cache hits
       that never passed the certificate kernel (only warm runs have
       hits, and warm/cold must digest equally); VL047 surfaces the
       prescreen's [Refuted] advisories (only analyzed runs have a
       prescreen, and analyzed/plain runs that agree must digest
       equally). *)
    let cache_lint =
      if lint = Lint_ignore then []
      else
        List.concat_map
          (fun fnr ->
            List.filter_map
              (fun v ->
                match v.vcr_cert with
                | Cert_uncertified_hit ->
                  Some
                    {
                      Vlint.code = "VL034";
                      severity = Vlint.Info;
                      fn = Some fnr.fnr_name;
                      message =
                        Printf.sprintf
                          "verdict for %S served from a cache hit with no certificate \
                           digest; re-run with --certify to upgrade the entry"
                          v.vcr_name;
                    }
                | _ -> None)
              fnr.fnr_vcs)
          results
    in
    let prescreen_lint =
      if lint = Lint_ignore then []
      else
        List.concat_map
          (fun fnr ->
            List.filter_map
              (fun v ->
                if not v.vcr_prescreen_refuted then None
                else
                  Some
                    {
                      Vlint.code = "VL047";
                      severity = Vlint.Info;
                      fn = Some fnr.fnr_name;
                      message =
                        Printf.sprintf
                          "prescreen found an abstract counterexample for %S (rung-0 \
                           Refuted advisory); if the solver fails too, suspect the \
                           obligation itself before blaming automation strength"
                          v.vcr_name;
                    })
              fnr.fnr_vcs)
          results
    in
    (* Ladder observability, rebuilt deterministically from the per-VC
       provenance fields (no shared-counter races under [jobs > 1]). *)
    let pr_ladder =
      match ladder with
      | None -> None
      | Some l ->
        let nr = Ladder.length l in
        let attempts = Array.make nr 0 in
        let wins = Array.make nr 0 in
        let escalations = ref 0 in
        let steered = ref 0 in
        let cache_hits = ref 0 in
        let hint_starts = ref 0 in
        List.iter
          (fun fnr ->
            List.iter
              (fun v ->
                if v.vcr_source = Src_cache then incr cache_hits;
                (match v.vcr_rung with
                | Some w when w >= 0 && w < nr -> wins.(w) <- wins.(w) + 1
                | _ -> ());
                match v.vcr_rungs_tried with
                | [] -> ()
                | first :: _ as tried ->
                  if first > 0 then incr hint_starts;
                  List.iteri
                    (fun k r ->
                      if r >= 0 && r < nr then attempts.(r) <- attempts.(r) + 1;
                      if k > 0 then incr escalations)
                    tried;
                  let rec gaps = function
                    | a :: (b :: _ as rest) ->
                      if b - a > 1 then incr steered;
                      gaps rest
                    | _ -> ()
                  in
                  gaps tried)
              fnr.fnr_vcs)
          results;
        Some
          {
            ls_ladder = Ladder.name l;
            ls_rungs = nr;
            ls_attempts = attempts;
            ls_wins = wins;
            ls_escalations = !escalations;
            ls_steered = !steered;
            ls_cache_hits = !cache_hits;
            ls_hint_starts = !hint_starts;
          }
    in
    {
      pr_profile = p.Profiles.name;
      pr_fns = results;
      pr_ok = List.for_all (fun r -> r.fnr_ok) results;
      pr_time_s = Unix.gettimeofday () -. t0;
      pr_bytes = List.fold_left (fun acc r -> acc + r.fnr_bytes) 0 results;
      pr_front_end_errors = [];
      pr_lint = lint_diags @ cache_lint @ prescreen_lint;
      pr_prof =
        (if profile then Some (aggregate_program_profile p ~axioms results) else None);
      pr_cache;
      pr_ladder;
    }
  end

let verify_program_opts ?(jobs = 1) ?(lint = Lint_ignore) ?(profile = false) (p : Profiles.t)
    (prog : program) : program_result =
  verify_program ~config:{ Config.default with Config.jobs; lint; profile } p prog

(* How many obligations the Vflow prescreen discharged without a solver
   query — the numerator of the bench ablation's discharge rate. *)
let prescreen_discharged (pr : program_result) : int =
  List.fold_left
    (fun acc fnr ->
      acc
      + List.fold_left
          (fun acc r -> if r.vcr_source = Src_prescreen then acc + 1 else acc)
          0 fnr.fnr_vcs)
    0 pr.pr_fns

let result_digest (pr : program_result) : string =
  let b = Buffer.create 2048 in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  let ans = function
    | Smt.Solver.Unsat -> "unsat"
    | Smt.Solver.Sat -> "sat"
    | Smt.Solver.Unknown r -> "unknown:" ^ r
  in
  (* Cold-checked and warm-cached certificates render identically (the
     digest is the same certificate's), preserving cache transparency;
     Cert_off and Cert_uncertified_hit render nothing for the same reason
     (a certify-off cold run cannot know it will be served warm later). *)
  let cert = function
    | Cert_off | Cert_uncertified_hit -> ""
    | Cert_checked d | Cert_cached d -> "|cert=" ^ d
    | Cert_rejected (code, _) -> "|cert-rejected=" ^ code
    | Cert_unavailable _ -> "|cert-unavailable"
  in
  add "profile=%s ok=%b" pr.pr_profile pr.pr_ok;
  List.iter (fun e -> add "fe:%s" e) pr.pr_front_end_errors;
  List.iter
    (fun (d : Vlint.diag) ->
      (* VL034 only fires on warm runs and VL047 only on analyzed ones;
         including either would break the warm/cold (and analyzed/plain)
         digest-equality invariants. *)
      if d.Vlint.code <> "VL034" && d.Vlint.code <> "VL047" then
        add "lint:%s" (Vlint.diag_to_string d))
    pr.pr_lint;
  List.iter
    (fun fnr ->
      add "fn:%s ok=%b" fnr.fnr_name fnr.fnr_ok;
      (* [vcr_detail] and the byte counts are deliberately excluded: the
         default-mode detail string embeds solver phase times (wall-clock),
         and printed sizes vary with the process-global fresh-symbol
         counter — run artifacts, not decisions. *)
      List.iter
        (fun v -> add "vc:%s|%s%s" v.vcr_name (ans v.vcr_answer) (cert v.vcr_cert))
        fnr.fnr_vcs)
    pr.pr_fns;
  Vbase.Hash.string128 (Buffer.contents b)

let first_failure (pr : program_result) =
  match Vlint.errors pr.pr_lint with
  | d :: _ when pr.pr_fns = [] && pr.pr_front_end_errors = [] ->
    Some ((match d.Vlint.fn with Some f -> f | None -> "<program>"), d.Vlint.message, d.Vlint.code)
  | _ -> (
    match pr.pr_front_end_errors with
    | e :: _ -> Some ("<front-end>", e, "FE001")
    | [] ->
      List.find_map
        (fun fnr ->
          List.find_map
            (fun v ->
              match v.vcr_answer with
              | Smt.Solver.Unsat when cert_ok v -> None
              | Smt.Solver.Unsat ->
                (* Proved by the solver, disowned by the kernel. *)
                Some (fnr.fnr_name, v.vcr_name, "VC003")
              | Smt.Solver.Sat -> Some (fnr.fnr_name, v.vcr_name, "VC001")
              | Smt.Solver.Unknown _ -> Some (fnr.fnr_name, v.vcr_name, "VC002"))
            fnr.fnr_vcs)
        pr.pr_fns)
