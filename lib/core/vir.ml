(* The VIR AST lives in its own library ([lib/vir], module [Vir_ast]) so
   analysis layers below the driver — notably [lib/vflow], which the
   driver itself calls — can speak VIR without depending on lib/core.
   [include] preserves type identity: [Verus.Vir.expr] and
   [Vir_ast.expr] are the same type, so existing consumers (tests,
   bench, bin) keep compiling unchanged. *)
include Vir_ast
