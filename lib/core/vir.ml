type mode = Spec | Proof | Exec

type int_kind = I_math | I_u8 | I_u16 | I_u32 | I_u64

type ty = TBool | TInt of int_kind | TSeq of ty | TData of string

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
  | Implies
  | BitAnd
  | BitOr
  | BitXor
  | Shl
  | Shr

type trigger_attr = Term_auto | Term_explicit of expr list list

and expr =
  | EVar of string
  | EOld of string
  | EBool of bool
  | EInt of int
  | EUnop of unop * expr
  | EBinop of binop * expr * expr
  | EIte of expr * expr * expr
  | ECall of string * expr list
  | ECtor of string * string * expr list
  | EField of expr * string
  | EIs of expr * string
  | ESeq of seq_op
  | EForall of (string * ty) list * trigger_attr * expr
  | EExists of (string * ty) list * trigger_attr * expr

and unop = Not | Neg

and seq_op =
  | SeqEmpty of ty
  | SeqLen of expr
  | SeqIndex of expr * expr
  | SeqPush of expr * expr
  | SeqSkip of expr * expr
  | SeqTake of expr * expr
  | SeqUpdate of expr * expr * expr
  | SeqAppend of expr * expr

type proof_hint = H_default | H_bit_vector | H_nonlinear | H_integer_ring | H_compute

type stmt =
  | SLet of string * ty * expr
  | SAssign of string * expr
  | SIf of expr * stmt list * stmt list
  | SWhile of { cond : expr; invariants : expr list; decreases : expr option; body : stmt list }
  | SCall of string option * string * expr list
  | SAssert of expr * proof_hint
  | SAssume of expr
  | SReturn of expr option

type param = { pname : string; pty : ty; pmut : bool }

type fndecl = {
  fname : string;
  fmode : mode;
  params : param list;
  ret : (string * ty) option;
  requires : expr list;
  ensures : expr list;
  body : stmt list option;
  spec_body : expr option;
  attrs : attr list;
}

and attr = A_epr_mode | A_opaque

type datatype = { dname : string; variants : (string * (string * ty) list) list }

type program = { datatypes : datatype list; functions : fndecl list }

let v x = EVar x
let i n = EInt n
let ( +: ) a b = EBinop (Add, a, b)
let ( -: ) a b = EBinop (Sub, a, b)
let ( *: ) a b = EBinop (Mul, a, b)
let ( <: ) a b = EBinop (Lt, a, b)
let ( <=: ) a b = EBinop (Le, a, b)
let ( >: ) a b = EBinop (Gt, a, b)
let ( >=: ) a b = EBinop (Ge, a, b)
let ( ==: ) a b = EBinop (Eq, a, b)
let ( <>: ) a b = EBinop (Ne, a, b)
let ( &&: ) a b = EBinop (And, a, b)
let ( ||: ) a b = EBinop (Or, a, b)
let ( ==>: ) a b = EBinop (Implies, a, b)
let enot e = EUnop (Not, e)

let find_fn p name = List.find (fun f -> String.equal f.fname name) p.functions
let find_datatype p name = List.find (fun d -> String.equal d.dname name) p.datatypes

let rec ty_equal a b =
  match (a, b) with
  | TBool, TBool -> true
  | TInt k1, TInt k2 -> k1 = k2
  | TSeq t1, TSeq t2 -> ty_equal t1 t2
  | TData n1, TData n2 -> String.equal n1 n2
  | (TBool | TInt _ | TSeq _ | TData _), _ -> false

let rec ty_to_string = function
  | TBool -> "bool"
  | TInt I_math -> "int"
  | TInt I_u8 -> "u8"
  | TInt I_u16 -> "u16"
  | TInt I_u32 -> "u32"
  | TInt I_u64 -> "u64"
  | TSeq t -> "Seq<" ^ ty_to_string t ^ ">"
  | TData n -> n

let int_bounds = function
  | I_math -> None
  | I_u8 -> Some (Vbase.Bigint.zero, Vbase.Bigint.of_int 255)
  | I_u16 -> Some (Vbase.Bigint.zero, Vbase.Bigint.of_int 65535)
  | I_u32 -> Some (Vbase.Bigint.zero, Vbase.Bigint.of_int 0xFFFFFFFF)
  | I_u64 ->
    Some (Vbase.Bigint.zero, Vbase.Bigint.sub (Vbase.Bigint.pow Vbase.Bigint.two 64) Vbase.Bigint.one)
