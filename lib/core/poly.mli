(** Multivariate polynomials over the rationals.

    Substrate for the [by(integer_ring)] mode (Gröbner-basis congruence
    proofs, §3.3) and for the normalization step of [by(nonlinear_arith)].
    Variables are named; monomials are sorted exponent lists; polynomials
    are monomial-to-coefficient maps kept in a canonical sorted form. *)

type mono = (string * int) list
(** Variable–exponent pairs, sorted by variable, exponents >= 1. *)

type t = (mono * Vbase.Rat.t) list
(** Monomial–coefficient pairs, nonzero coefficients, sorted by the lex
    order on monomials (largest first). *)

val zero : t
val const : Vbase.Rat.t -> t
val var : string -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val scale : Vbase.Rat.t -> t -> t
val equal : t -> t -> bool
val is_zero : t -> bool

val mono_compare : mono -> mono -> int
(** Lexicographic order (by variable name, then exponent). *)

val leading : t -> (mono * Vbase.Rat.t) option

val mono_divides : mono -> mono -> bool
val mono_div : mono -> mono -> mono
(** [mono_div a b] = a / b; requires [mono_divides b a]. *)

val mono_mul : mono -> mono -> mono
val mono_lcm : mono -> mono -> mono

val mul_mono : mono -> Vbase.Rat.t -> t -> t
(** Multiply a polynomial by [c * m]. *)

val of_term : Smt.Term.t -> t
(** Interpret an integer-sorted SMT term as a polynomial; opaque subterms
    (uninterpreted applications, div/mod) become fresh polynomial variables
    keyed by their term id. *)

val to_term : (string -> Smt.Term.t) -> t -> Smt.Term.t
(** Rebuild a term, resolving polynomial variables with the given map. *)

val to_string : t -> string
