(** A vstd-style verified lemma library for finite sets (the analogue of
    Verus's [vstd::set] broadcast lemmas).

    Sets of math integers are axiomatized as an uninterpreted sort with
    membership axioms, a Skolem-witness encoding of [subset] (both using
    and establishing subset are plain matching problems), and cardinality
    recurrences; {!run} discharges each lemma with the in-repo solver. *)

val set_sort : Smt.Sort.t

val axioms : Smt.Term.t list
(** The set theory; usable as extra context in other proofs. *)

(** Term-building helpers over the set theory's symbols. *)

val mem : Smt.Term.t -> Smt.Term.t -> Smt.Term.t
val empty : Smt.Term.t
val insert : Smt.Term.t -> Smt.Term.t -> Smt.Term.t
val remove : Smt.Term.t -> Smt.Term.t -> Smt.Term.t
val union : Smt.Term.t -> Smt.Term.t -> Smt.Term.t
val inter : Smt.Term.t -> Smt.Term.t -> Smt.Term.t
val diff : Smt.Term.t -> Smt.Term.t -> Smt.Term.t
val subset : Smt.Term.t -> Smt.Term.t -> Smt.Term.t
val card : Smt.Term.t -> Smt.Term.t

type obligation = { name : string; proved : bool; detail : string; time_s : float }

val run : unit -> obligation list
(** Prove every lemma in the library; all should come back [proved]. *)

val all_proved : obligation list -> bool
