(** A simplified ownership / borrow checker for VIR exec functions.

    This stands in for the part of the Rust type system Verus leans on
    (§2 "Memory Reasoning"): datatype values are affine resources — moved
    when passed by value or stored into a constructor, dead afterwards.
    Because the checker guarantees exclusive ownership, the ownership
    encoding can model mutation as functional update with no aliasing
    reasoning; that is the encoding-economy story of the paper.

    The checker covers the fragment the benchmarks and case studies use:
    move tracking through lets, assignments, calls (by-value consumes,
    [&mut] retains), branch joins (a value moved in either branch is dead
    after the join), and loop bodies (moving a loop-external value inside a
    loop is an error). *)

val check_program : Vir.program -> (unit, string list) result
