module T = Smt.Term
module S = Smt.Sort

let ref_sort = S.Usort "Ref"
let heap_sort = S.Usort "Heap"

let rec ty_mangle = function
  | Vir.TBool -> "bool"
  | Vir.TInt _ -> "int"
  | Vir.TSeq t -> "seq$" ^ ty_mangle t
  | Vir.TData n -> n

let sort_of_ty ~heap (t : Vir.ty) =
  match t with
  | Vir.TBool -> S.Bool
  | Vir.TInt _ -> S.Int
  | Vir.TSeq elem -> S.Usort ("Seq$" ^ ty_mangle elem ^ if heap then "$h" else "")
  | Vir.TData n -> if heap then ref_sort else S.Usort ("Data$" ^ n)

(* ------------------------------------------------------------------ *)
(* Sequences                                                           *)
(* ------------------------------------------------------------------ *)

type seq_syms = {
  s_sort : S.t;
  s_len : T.sym;
  s_index : T.sym;
  s_empty : T.sym;
  s_push : T.sym;
  s_skip : T.sym;
  s_take : T.sym;
  s_update : T.sym;
  s_append : T.sym;
}

let seq_syms_for ~heap elem_ty =
  let s = sort_of_ty ~heap (Vir.TSeq elem_ty) in
  let e = sort_of_ty ~heap elem_ty in
  let m = ty_mangle elem_ty ^ if heap then "$h" else "" in
  {
    s_sort = s;
    s_len = T.Sym.declare ("seq." ^ m ^ ".len") [ s ] S.Int;
    s_index = T.Sym.declare ("seq." ^ m ^ ".index") [ s; S.Int ] e;
    s_empty = T.Sym.declare ("seq." ^ m ^ ".empty") [] s;
    s_push = T.Sym.declare ("seq." ^ m ^ ".push") [ s; e ] s;
    s_skip = T.Sym.declare ("seq." ^ m ^ ".skip") [ s; S.Int ] s;
    s_take = T.Sym.declare ("seq." ^ m ^ ".take") [ s; S.Int ] s;
    s_update = T.Sym.declare ("seq." ^ m ^ ".update") [ s; S.Int; e ] s;
    s_append = T.Sym.declare ("seq." ^ m ^ ".append") [ s; s ] s;
  }

let seq_axioms ~curated ~heap elem_ty =
  let sy = seq_syms_for ~heap elem_ty in
  let s_sort = sy.s_sort and e_sort = sort_of_ty ~heap elem_ty in
  let s = T.bvar "s" s_sort
  and t = T.bvar "t" s_sort
  and x = T.bvar "x" e_sort
  and i = T.bvar "i" S.Int
  and k = T.bvar "k" S.Int in
  let len a = T.app sy.s_len [ a ] in
  let idx a j = T.app sy.s_index [ a; j ] in
  let push a b = T.app sy.s_push [ a; b ] in
  let skip a j = T.app sy.s_skip [ a; j ] in
  let take a j = T.app sy.s_take [ a; j ] in
  let update a j b = T.app sy.s_update [ a; j; b ] in
  let append a b = T.app sy.s_append [ a; b ] in
  let fa vars ~trigger body =
    if curated then T.forall ~triggers:[ trigger ] vars body else T.forall vars body
  in
  [
    (* len(empty) = 0 *)
    T.eq (len (T.app sy.s_empty [])) (T.int_of 0);
    (* len nonnegative *)
    fa [ ("s", s_sort) ] ~trigger:[ len s ] (T.ge (len s) (T.int_of 0));
    (* push: length *)
    fa
      [ ("s", s_sort); ("x", e_sort) ]
      ~trigger:[ push s x ]
      (T.eq (len (push s x)) (T.add [ len s; T.int_of 1 ]));
    (* push: contents *)
    fa
      [ ("s", s_sort); ("x", e_sort); ("i", S.Int) ]
      ~trigger:[ idx (push s x) i ]
      (T.and_
         [
           T.implies
             (T.and_ [ T.le (T.int_of 0) i; T.lt i (len s) ])
             (T.eq (idx (push s x) i) (idx s i));
           T.implies (T.eq i (len s)) (T.eq (idx (push s x) i) x);
         ]);
    (* skip: length *)
    fa
      [ ("s", s_sort); ("k", S.Int) ]
      ~trigger:[ skip s k ]
      (T.implies
         (T.and_ [ T.le (T.int_of 0) k; T.le k (len s) ])
         (T.eq (len (skip s k)) (T.sub (len s) k)));
    (* skip: contents *)
    fa
      [ ("s", s_sort); ("k", S.Int); ("i", S.Int) ]
      ~trigger:[ idx (skip s k) i ]
      (T.implies
         (T.and_ [ T.le (T.int_of 0) k; T.le (T.int_of 0) i; T.lt i (T.sub (len s) k) ])
         (T.eq (idx (skip s k) i) (idx s (T.add [ i; k ]))));
    (* take: length *)
    fa
      [ ("s", s_sort); ("k", S.Int) ]
      ~trigger:[ take s k ]
      (T.implies
         (T.and_ [ T.le (T.int_of 0) k; T.le k (len s) ])
         (T.eq (len (take s k)) k));
    (* take: contents *)
    fa
      [ ("s", s_sort); ("k", S.Int); ("i", S.Int) ]
      ~trigger:[ idx (take s k) i ]
      (T.implies
         (T.and_ [ T.le (T.int_of 0) i; T.lt i k; T.le k (len s) ])
         (T.eq (idx (take s k) i) (idx s i)));
    (* update: length *)
    fa
      [ ("s", s_sort); ("k", S.Int); ("x", e_sort) ]
      ~trigger:[ update s k x ]
      (T.eq (len (update s k x)) (len s));
    (* update: contents *)
    fa
      [ ("s", s_sort); ("k", S.Int); ("x", e_sort); ("i", S.Int) ]
      ~trigger:[ idx (update s k x) i ]
      (T.and_
         [
           T.implies
             (T.and_ [ T.le (T.int_of 0) k; T.lt k (len s); T.eq i k ])
             (T.eq (idx (update s k x) i) x);
           T.implies (T.not_ (T.eq i k)) (T.eq (idx (update s k x) i) (idx s i));
         ]);
    (* append: length *)
    fa
      [ ("s", s_sort); ("t", s_sort) ]
      ~trigger:[ append s t ]
      (T.eq (len (append s t)) (T.add [ len s; len t ]));
    (* append: contents *)
    fa
      [ ("s", s_sort); ("t", s_sort); ("i", S.Int) ]
      ~trigger:[ idx (append s t) i ]
      (T.and_
         [
           T.implies
             (T.and_ [ T.le (T.int_of 0) i; T.lt i (len s) ])
             (T.eq (idx (append s t) i) (idx s i));
           T.implies
             (T.and_ [ T.le (len s) i; T.lt i (T.add [ len s; len t ]) ])
             (T.eq (idx (append s t) i) (idx t (T.sub i (len s))));
         ]);
  ]

let seq_ext_hypothesis ~heap elem_ty a b =
  let sy = seq_syms_for ~heap elem_ty in
  let len x = T.app sy.s_len [ x ] in
  let idx x j = T.app sy.s_index [ x; j ] in
  let i = T.bvar "i!ext" S.Int in
  T.implies
    (T.and_
       [
         T.eq (len a) (len b);
         T.forall
           ~triggers:[ [ idx a i ] ]
           [ ("i!ext", S.Int) ]
           (T.implies
              (T.and_ [ T.le (T.int_of 0) i; T.lt i (len a) ])
              (T.eq (idx a i) (idx b i)));
       ])
    (T.eq a b)

(* ------------------------------------------------------------------ *)
(* Datatypes (ownership encoding)                                      *)
(* ------------------------------------------------------------------ *)

type data_syms = {
  d_sort : S.t;
  d_ctors : (string * T.sym) list;
  d_testers : (string * T.sym) list;
  d_selectors : (string * T.sym) list;
}

let data_syms_for (d : Vir.datatype) =
  let sort = S.Usort ("Data$" ^ d.Vir.dname) in
  let ctors =
    List.map
      (fun (vn, fields) ->
        let args = List.map (fun (_, t) -> sort_of_ty ~heap:false t) fields in
        (vn, T.Sym.declare (d.Vir.dname ^ "." ^ vn) args sort))
      d.Vir.variants
  in
  let testers =
    List.map
      (fun (vn, _) -> (vn, T.Sym.declare (d.Vir.dname ^ ".is_" ^ vn) [ sort ] S.Bool))
      d.Vir.variants
  in
  let selectors =
    List.concat_map
      (fun (_, fields) ->
        List.map
          (fun (fn, ft) ->
            (fn, T.Sym.declare (d.Vir.dname ^ ".get_" ^ fn) [ sort ] (sort_of_ty ~heap:false ft)))
          fields)
      d.Vir.variants
  in
  { d_sort = sort; d_ctors = ctors; d_testers = testers; d_selectors = selectors }

let data_axioms ~curated (d : Vir.datatype) =
  let sy = data_syms_for d in
  let fa vars ~trigger body =
    if curated then T.forall ~triggers:[ trigger ] vars body else T.forall vars body
  in
  let x = T.bvar "x" sy.d_sort in
  let per_variant (vn, fields) =
    let ctor = List.assoc vn sy.d_ctors in
    let vars = List.mapi (fun j (fn, ft) -> (Printf.sprintf "a%d_%s" j fn, ft)) fields in
    let bvars =
      List.map (fun (nm, ft) -> T.bvar nm (sort_of_ty ~heap:false ft)) vars
    in
    let qvars = List.map (fun (nm, ft) -> (nm, sort_of_ty ~heap:false ft)) vars in
    let made = if bvars = [] then T.const ctor else T.app ctor bvars in
    let mk_forall body =
      if qvars = [] then body else fa qvars ~trigger:[ made ] body
    in
    (* Selectors invert the constructor. *)
    let sel_axioms =
      List.map2
        (fun (fn, _) bv -> mk_forall (T.eq (T.app (List.assoc fn sy.d_selectors) [ made ]) bv))
        fields bvars
    in
    (* Tester true on own constructor, false on others. *)
    let tester_axioms =
      List.map
        (fun (vn2, _) ->
          let tst = T.app (List.assoc vn2 sy.d_testers) [ made ] in
          mk_forall (if String.equal vn vn2 then tst else T.not_ tst))
        d.Vir.variants
    in
    (* Inversion: a value of this variant equals its reconstruction. *)
    let inversion =
      let recon_args =
        List.map (fun (fn, _) -> T.app (List.assoc fn sy.d_selectors) [ x ]) fields
      in
      let recon = if recon_args = [] then T.const ctor else T.app ctor recon_args in
      fa
        [ ("x", sy.d_sort) ]
        ~trigger:[ T.app (List.assoc vn sy.d_testers) [ x ] ]
        (T.implies (T.app (List.assoc vn sy.d_testers) [ x ]) (T.eq x recon))
    in
    sel_axioms @ tester_axioms @ [ inversion ]
  in
  (* Exhaustiveness: every value is one of the variants. *)
  let exhaustive =
    let tests = List.map (fun (vn, _) -> T.app (List.assoc vn sy.d_testers) [ x ]) d.Vir.variants in
    if curated then
      T.forall
        ~triggers:(List.map (fun t -> [ t ]) tests)
        [ ("x", sy.d_sort) ] (T.or_ tests)
    else T.forall [ ("x", sy.d_sort) ] (T.or_ tests)
  in
  exhaustive :: List.concat_map per_variant d.Vir.variants

(* ------------------------------------------------------------------ *)
(* Heap encoding                                                       *)
(* ------------------------------------------------------------------ *)

let box_sort = S.Usort "Box"

(* Dafny's heap is polymorphic: stored values are boxed.  Each value sort
   gets box/unbox functions with the two roundtrip axioms; every heap read
   in the encoding goes through an unbox — the per-access indirection that
   inflates Dafny-style queries. *)
let box_syms (vs : S.t) =
  let m = S.to_string vs in
  ( T.Sym.declare ("box$" ^ m) [ vs ] box_sort,
    T.Sym.declare ("unbox$" ^ m) [ box_sort ] vs )

let box_axioms ~curated (vs : S.t) =
  let bx, ub = box_syms vs in
  let x = T.bvar "x" vs in
  let b = T.bvar "b" box_sort in
  let ax1 = T.eq (T.app ub [ T.app bx [ x ] ]) x in
  let ax2 = T.eq (T.app bx [ T.app ub [ b ] ]) b in
  [
    (if curated then T.forall ~triggers:[ [ T.app bx [ x ] ] ] [ ("x", vs) ] ax1
     else T.forall [ ("x", vs) ] ax1);
    (if curated then T.forall ~triggers:[ [ T.app ub [ b ] ] ] [ ("b", box_sort) ] ax2
     else T.forall [ ("b", box_sort) ] ax2);
  ]

(* Allocatedness predicate (Dafny's $IsAlloc): lets proofs conclude that
   pre-existing references differ from fresh allocations. *)
let alloc_sym = T.Sym.declare "heap.alloc" [ heap_sort; ref_sort ] S.Bool

type heap_syms = {
  h_tag_rd : T.sym;
  h_tag_wr : T.sym;
  h_fields : (string * (T.sym * T.sym)) list;
}

let heap_syms_for (_p : Vir.program) (d : Vir.datatype) =
  let fields = List.concat_map snd d.Vir.variants in
  {
    h_tag_rd = T.Sym.declare ("rd." ^ d.Vir.dname ^ ".tag") [ heap_sort; ref_sort ] S.Int;
    h_tag_wr = T.Sym.declare ("wr." ^ d.Vir.dname ^ ".tag") [ heap_sort; ref_sort; S.Int ] heap_sort;
    h_fields =
      List.map
        (fun (fn, _ft) ->
          (* Fields store boxed values (polymorphic heap). *)
          ( fn,
            ( T.Sym.declare ("rd." ^ d.Vir.dname ^ "." ^ fn) [ heap_sort; ref_sort ] box_sort,
              T.Sym.declare
                ("wr." ^ d.Vir.dname ^ "." ^ fn)
                [ heap_sort; ref_sort; box_sort ]
                heap_sort ) ))
        fields;
  }

let heap_axioms ~curated (p : Vir.program) =
  (* Gather every (rd, wr, value sort) triple in the program, tags
     included, then emit the full frame matrix. *)
  let accessors =
    List.concat_map
      (fun d ->
        let hs = heap_syms_for p d in
        (hs.h_tag_rd, hs.h_tag_wr, S.Int)
        :: List.map (fun (_, (rd, wr)) -> (rd, wr, (wr : T.sym).T.sargs |> fun l -> List.nth l 2)) hs.h_fields)
      p.Vir.datatypes
  in
  (* Box/unbox roundtrips for every value sort stored in the heap. *)
  let value_sorts =
    List.sort_uniq compare
      (List.concat_map
         (fun d ->
           List.map (fun (_, ft) -> sort_of_ty ~heap:true ft) (List.concat_map snd d.Vir.variants))
         p.Vir.datatypes)
  in
  let boxing = List.concat_map (fun vs -> box_axioms ~curated vs) value_sorts in
  (* Allocatedness machinery (Dafny's $IsAlloc):
     1. writes preserve allocatedness;
     2. fields of allocated objects are allocated (reachability), both for
        direct datatype fields and through sequence containers. *)
  let h = T.bvar "h" heap_sort in
  let r = T.bvar "r" ref_sort in
  let rho = T.bvar "rho" ref_sort in
  let alloc_axioms =
    List.concat_map
      (fun d ->
        let hs = heap_syms_for p d in
        let wr_pres (wr : T.sym) vs =
          let x = T.bvar "v" vs in
          let body =
            T.implies
              (T.app alloc_sym [ h; rho ])
              (T.app alloc_sym [ T.app wr [ h; r; x ]; rho ])
          in
          if curated then
            T.forall
              ~triggers:[ [ T.app alloc_sym [ T.app wr [ h; r; x ]; rho ] ] ]
              [ ("h", heap_sort); ("r", ref_sort); ("v", vs); ("rho", ref_sort) ]
              body
          else
            T.forall
              [ ("h", heap_sort); ("r", ref_sort); ("v", vs); ("rho", ref_sort) ]
              body
        in
        let pres =
          wr_pres hs.h_tag_wr S.Int
          :: List.map (fun (_, (_, wr)) -> wr_pres wr box_sort) hs.h_fields
        in
        (* Reachability per field. *)
        let fields = List.concat_map snd d.Vir.variants in
        let reach =
          List.concat_map
            (fun (fn, ft) ->
              let rd, _ = List.assoc fn hs.h_fields in
              let read = T.app rd [ h; rho ] in
              match ft with
              | Vir.TData _ ->
                let _, ub = box_syms ref_sort in
                let target = T.app ub [ read ] in
                [
                  (if curated then
                     (* Fire from the read itself or goal-directed. *)
                     T.forall
                       ~triggers:[ [ read ]; [ T.app alloc_sym [ h; target ] ] ]
                       [ ("h", heap_sort); ("rho", ref_sort) ]
                       (T.implies (T.app alloc_sym [ h; rho ]) (T.app alloc_sym [ h; target ]))
                   else
                     T.forall
                       [ ("h", heap_sort); ("rho", ref_sort) ]
                       (T.implies (T.app alloc_sym [ h; rho ]) (T.app alloc_sym [ h; target ])));
                ]
              | Vir.TSeq (Vir.TData _ as elem) ->
                let seq_sort = sort_of_ty ~heap:true ft in
                let _, ub = box_syms seq_sort in
                let sy = seq_syms_for ~heap:true elem in
                ignore sy;
                let seq_val = T.app ub [ read ] in
                let k = T.bvar "k" S.Int in
                let elem_ref = T.app (seq_syms_for ~heap:true elem).s_index [ seq_val; k ] in
                [
                  (if curated then
                     (* The element access itself triggers; the heap/rho
                        pair comes from the read, k from the index term. *)
                     T.forall
                       ~triggers:[ [ elem_ref ]; [ T.app alloc_sym [ h; elem_ref ] ] ]
                       [ ("h", heap_sort); ("rho", ref_sort); ("k", S.Int) ]
                       (T.implies (T.app alloc_sym [ h; rho ]) (T.app alloc_sym [ h; elem_ref ]))
                   else
                     T.forall
                       [ ("h", heap_sort); ("rho", ref_sort); ("k", S.Int) ]
                       (T.implies (T.app alloc_sym [ h; rho ]) (T.app alloc_sym [ h; elem_ref ])));
                ]
              | _ -> [])
            fields
        in
        pres @ reach)
      p.Vir.datatypes
  in
  boxing @ alloc_axioms @
  let fa vars ~trigger body =
    if curated then T.forall ~triggers:[ trigger ] vars body else T.forall vars body
  in
  let h = T.bvar "h" heap_sort
  and r = T.bvar "r" ref_sort
  and r' = T.bvar "r2" ref_sort in
  (* Typing axioms: variant tags are well-formed for every reference (the
     role Dafny's type axioms play). *)
  let tag_range =
    List.map
      (fun d ->
        let hs = heap_syms_for p d in
        let rd = T.app hs.h_tag_rd [ h; r ] in
        let body =
          T.and_
            [ T.le (T.int_of 0) rd; T.lt rd (T.int_of (List.length d.Vir.variants)) ]
        in
        if curated then T.forall ~triggers:[ [ rd ] ] [ ("h", heap_sort); ("r", ref_sort) ] body
        else T.forall [ ("h", heap_sort); ("r", ref_sort) ] body)
      p.Vir.datatypes
  in
  tag_range
  @ List.concat_map
    (fun (rd, _, _) ->
      List.concat_map
        (fun (rd2, wr2, vs2) ->
          let x = T.bvar "v" vs2 in
          if T.Sym.equal rd rd2 then
            [
              (* Read over same-field write: hit and miss. *)
              fa
                [ ("h", heap_sort); ("r", ref_sort); ("v", vs2) ]
                ~trigger:[ T.app rd [ T.app wr2 [ h; r; x ]; r ] ]
                (T.eq (T.app rd [ T.app wr2 [ h; r; x ]; r ]) x);
              fa
                [ ("h", heap_sort); ("r", ref_sort); ("r2", ref_sort); ("v", vs2) ]
                ~trigger:[ T.app rd [ T.app wr2 [ h; r; x ]; r' ] ]
                (T.implies (T.not_ (T.eq r r'))
                   (T.eq (T.app rd [ T.app wr2 [ h; r; x ]; r' ]) (T.app rd [ h; r' ])));
            ]
          else
            [
              (* Read over different-field write: commutes. *)
              fa
                [ ("h", heap_sort); ("r", ref_sort); ("r2", ref_sort); ("v", vs2) ]
                ~trigger:[ T.app rd [ T.app wr2 [ h; r; x ]; r' ] ]
                (T.eq (T.app rd [ T.app wr2 [ h; r; x ]; r' ]) (T.app rd [ h; r' ]));
            ])
        accessors)
    accessors
