(** Vlint — static diagnostics over VIR programs and the profile's
    quantified axiom set, run before (or instead of) verification.

    The paper attributes much of Verus's solver headroom to conservative
    trigger selection and lean encodings (§3.1); this pass framework makes
    the two classic failure modes of that design *statically* visible:
    unbounded E-matching loops in the axiom set, and recursive spec
    definitions without a well-founded measure (a soundness hole — the
    definitional axiom is satisfiable only for terminating definitions).
    Alongside those it checks mode discipline and proof hygiene.

    Diagnostic codes are stable and grouped by pass:

    - [VL00x] termination / call graph
    - [VL01x] quantifier instantiation (matching loops, dead axioms)
    - [VL02x] mode discipline
    - [VL03x] proof hygiene
    - [VL04x] abstract interpretation ({!Vflow.Absint}: unreachable
      branches, constant conditions, vacuous asserts/invariants,
      impossible overflow obligations, contradictory preconditions,
      invariants not inductive at rung 0)

    One code is emitted by the driver rather than a pass here: VL034
    (verdict served from a cache hit lacking a certificate digest) needs
    per-obligation cache visibility only [Driver.verify_program] has; it
    still lives in {!code_table} so [lint --codes] lists it.

    See the README's "Static analysis" section for the full table. *)

type severity = Error | Warn | Info

type diag = {
  code : string;  (** stable [VL0xx] code *)
  severity : severity;
  fn : string option;  (** function concerned, [None] for program-level *)
  message : string;
}

val severity_to_string : severity -> string

val diag_to_string : diag -> string
(** ["VL001 error [view]: ..."] — one line, stable format. *)

val code_table : (string * severity * string) list
(** Every code with its default severity and a one-line description
    (drives [verus_cli lint --codes] and the README table). *)

val errors : diag list -> diag list
(** The [Error]-severity subset. *)

val vl010_heads : diag list -> string list
(** The trigger-head symbols named by VL010 (matching-loop) findings,
    parsed back out of their stable message format ("... through trigger
    heads [{h1, h2}] ..."), sorted and deduplicated; other codes contribute
    nothing.  This is what the profiler's cross-validation compares its
    measured top instantiation hot-spot against. *)

(** {2 Individual passes}

    Each pass can be run alone; [lint] runs all of them. *)

val check_termination : Vir.program -> diag list
(** VL001–VL003: call-graph SCCs (Tarjan over [Vbase.Graph]); recursive
    [Spec]/[Proof] functions must carry an [A_decreases] measure, loops in
    [Proof] bodies must carry [decreases], and measures must mention a
    variable that can actually decrease. *)

val check_matching_loops : Profiles.t -> Vir.program -> diag list
(** VL010–VL011: builds the instantiation graph over
    [Encode.program_axioms]: one vertex per quantified axiom, an edge
    A → B when instantiating A produces a term that matches a trigger of
    B (up to head-symbol abstraction), weighted by the per-sort term-depth
    growth minus the pattern structure consumed.  A strictly-positive-
    weight cycle (Bellman–Ford inside each Tarjan SCC) is a potential
    matching loop.  Productions equated in the axiom body to a strictly
    smaller term are skipped (the E-graph collapses them), and
    self-productions of spec functions carrying a [decreases] measure are
    exempt (fuel bounds their unfolding).  See DESIGN.md for why this
    over-approximates within a sort. *)

val check_axioms : Profiles.t -> Smt.Term.t list -> diag list
(** The axiom-set half of [check_matching_loops] for a caller-supplied
    list of (already-built) quantified axioms, with no decreases
    exemptions.  Useful for vetting a hand-written theory before wiring
    it into an encoding. *)

val check_modes : Vir.program -> diag list
(** VL020–VL024: exec/proof/spec call-position discipline, mutable
    parameters on spec functions, opaque spec functions that contracts
    depend on. *)

val check_hygiene : Vir.program -> diag list
(** VL030–VL033: loop invariants over loop-constant variables (vacuous
    under the havoc-modified-only loop encoding), ensures that never
    mention the result, unused requires, unreachable statements. *)

val check_flow : Vir.program -> diag list
(** VL040–VL046: findings of the {!Vflow.Absint} flow-sensitive abstract
    interpretation (interval × congruence × boolean domains, widening at
    loop heads, invariant-guided narrowing), mapped onto diagnostics with
    severities from {!code_table}.  Deterministic program order. *)

val lint : Profiles.t -> Vir.program -> diag list
(** All passes, diagnostics in pass order (severity-stable). *)

(** {2 Machine-readable report} *)

val report_schema : string
(** ["verus-lint/1"] — the ["schema"] key of {!report_to_json}. *)

val report_to_json : prog_name:string -> profile_name:string -> diag list -> Vbase.Json.t
(** The findings as a versioned JSON document ([verus_cli lint --json]).
    Top-level keys: ["schema"], ["program"], ["profile"], ["counts"]
    (object with [error]/[warn]/[info]) and ["findings"] (array of
    [{code, severity, fn, message}], [fn] null for program-level). *)

val validate_report : Vbase.Json.t -> (unit, string) result
(** Structural validation of a {!report_to_json} document: schema tag,
    required keys, every finding's code present in {!code_table}, its
    severity well-formed, and the counts consistent with the findings
    list. *)
