module Rat = Vbase.Rat

(* Multivariate division by a set. *)
let reduce (p : Poly.t) (gs : Poly.t list) : Poly.t =
  let rec go p =
    match Poly.leading p with
    | None -> p
    | Some (lm, lc) -> (
      (* Find a divisor whose leading monomial divides lm. *)
      let divisor =
        List.find_opt
          (fun g ->
            match Poly.leading g with
            | Some (gm, _) -> Poly.mono_divides gm lm
            | None -> false)
          gs
      in
      match divisor with
      | Some g ->
        let gm, gc = Option.get (Poly.leading g) in
        let factor_m = Poly.mono_div lm gm in
        let factor_c = Rat.div lc gc in
        go (Poly.sub p (Poly.mul_mono factor_m factor_c g))
      | None ->
        (* Leading term irreducible: move it out and keep reducing. *)
        let rest = go (List.tl p) in
        (lm, lc) :: rest)
  in
  go p

let s_poly (f : Poly.t) (g : Poly.t) : Poly.t =
  match (Poly.leading f, Poly.leading g) with
  | Some (fm, fc), Some (gm, gc) ->
    let l = Poly.mono_lcm fm gm in
    Poly.sub
      (Poly.mul_mono (Poly.mono_div l fm) (Rat.inv fc) f)
      (Poly.mul_mono (Poly.mono_div l gm) (Rat.inv gc) g)
  | _ -> Poly.zero

let basis ?(max_pairs = 2000) (gens : Poly.t list) : Poly.t list =
  let gens = List.filter (fun p -> not (Poly.is_zero p)) gens in
  let g = ref gens in
  let pairs = Queue.create () in
  let add_pairs_for p =
    List.iter (fun q -> Queue.push (p, q) pairs) !g
  in
  List.iteri
    (fun i p -> List.iteri (fun j q -> if j < i then Queue.push (p, q) pairs) gens; ignore p)
    gens;
  let count = ref 0 in
  while not (Queue.is_empty pairs) do
    incr count;
    if !count > max_pairs then failwith "Groebner.basis: pair budget exhausted";
    let f, h = Queue.pop pairs in
    let s = reduce (s_poly f h) !g in
    if not (Poly.is_zero s) then begin
      add_pairs_for s;
      g := s :: !g
    end
  done;
  !g

let ideal_member ?max_pairs (p : Poly.t) (gens : Poly.t list) : bool =
  let b = basis ?max_pairs gens in
  Poly.is_zero (reduce p b)
