module Rat = Vbase.Rat

(* Multivariate division by a set. *)
let reduce (p : Poly.t) (gs : Poly.t list) : Poly.t =
  let rec go p =
    match Poly.leading p with
    | None -> p
    | Some (lm, lc) -> (
      (* Find a divisor whose leading monomial divides lm. *)
      let divisor =
        List.find_opt
          (fun g ->
            match Poly.leading g with
            | Some (gm, _) -> Poly.mono_divides gm lm
            | None -> false)
          gs
      in
      match divisor with
      | Some g ->
        let gm, gc = Option.get (Poly.leading g) in
        let factor_m = Poly.mono_div lm gm in
        let factor_c = Rat.div lc gc in
        go (Poly.sub p (Poly.mul_mono factor_m factor_c g))
      | None ->
        (* Leading term irreducible: move it out and keep reducing. *)
        let rest = go (List.tl p) in
        (lm, lc) :: rest)
  in
  go p

let s_poly (f : Poly.t) (g : Poly.t) : Poly.t =
  match (Poly.leading f, Poly.leading g) with
  | Some (fm, fc), Some (gm, gc) ->
    let l = Poly.mono_lcm fm gm in
    Poly.sub
      (Poly.mul_mono (Poly.mono_div l fm) (Rat.inv fc) f)
      (Poly.mul_mono (Poly.mono_div l gm) (Rat.inv gc) g)
  | _ -> Poly.zero

let basis ?(max_pairs = 2000) (gens : Poly.t list) : Poly.t list =
  let gens = List.filter (fun p -> not (Poly.is_zero p)) gens in
  let g = ref gens in
  let pairs = Queue.create () in
  let add_pairs_for p =
    List.iter (fun q -> Queue.push (p, q) pairs) !g
  in
  List.iteri
    (fun i p -> List.iteri (fun j q -> if j < i then Queue.push (p, q) pairs) gens; ignore p)
    gens;
  let count = ref 0 in
  while not (Queue.is_empty pairs) do
    incr count;
    if !count > max_pairs then failwith "Groebner.basis: pair budget exhausted";
    let f, h = Queue.pop pairs in
    let s = reduce (s_poly f h) !g in
    if not (Poly.is_zero s) then begin
      add_pairs_for s;
      g := s :: !g
    end
  done;
  !g

let ideal_member ?max_pairs (p : Poly.t) (gens : Poly.t list) : bool =
  let b = basis ?max_pairs gens in
  Poly.is_zero (reduce p b)

(* --- cofactor-tracked membership --------------------------------------- *)

(* A polynomial carried together with its expression over the original
   generator list: the invariant is [tp = sum_i tc.(i) * gen_i].  Tracking
   it through Buchberger and through division is what turns a membership
   verdict into a checkable identity. *)
type tracked = { tp : Poly.t; tc : Poly.t array }

let t_mul_mono m c (a : tracked) =
  { tp = Poly.mul_mono m c a.tp; tc = Array.map (Poly.mul_mono m c) a.tc }

let t_sub (a : tracked) (b : tracked) =
  { tp = Poly.sub a.tp b.tp; tc = Array.map2 Poly.sub a.tc b.tc }

(* Multivariate division keeping quotients: returns the normal form [rem]
   and cofactors [q] over the original generators such that
   [p = sum_i q.(i) * gen_i + rem]. *)
let reduce_cof (p : Poly.t) (gs : tracked list) ~ngens : Poly.t * Poly.t array =
  let q = Array.make ngens Poly.zero in
  let rem = ref Poly.zero in
  let work = ref p in
  let continue_ = ref true in
  while !continue_ do
    match Poly.leading !work with
    | None -> continue_ := false
    | Some (lm, lc) -> (
      let divisor =
        List.find_opt
          (fun g ->
            match Poly.leading g.tp with
            | Some (gm, _) -> Poly.mono_divides gm lm
            | None -> false)
          gs
      in
      match divisor with
      | Some g ->
        let gm, gc = Option.get (Poly.leading g.tp) in
        let m = Poly.mono_div lm gm in
        let c = Rat.div lc gc in
        work := Poly.sub !work (Poly.mul_mono m c g.tp);
        Array.iteri (fun i cq -> q.(i) <- Poly.add q.(i) (Poly.mul_mono m c cq)) g.tc
      | None ->
        rem := Poly.add !rem [ (lm, lc) ];
        work := Poly.sub !work [ (lm, lc) ])
  done;
  (!rem, q)

let basis_tracked ?(max_pairs = 2000) (gens : Poly.t list) : tracked list =
  let ngens = List.length gens in
  let unit i =
    Array.init ngens (fun j -> if i = j then Poly.const Rat.one else Poly.zero)
  in
  (* Indices stay aligned with the original list; zero generators are
     skipped but keep their (never consulted) cofactor slot. *)
  let tracked_gens =
    List.mapi (fun i p -> { tp = p; tc = unit i }) gens
    |> List.filter (fun t -> not (Poly.is_zero t.tp))
  in
  let g = ref tracked_gens in
  let pairs = Queue.create () in
  let add_pairs_for p = List.iter (fun q -> Queue.push (p, q) pairs) !g in
  List.iteri
    (fun i p ->
      List.iteri (fun j q -> if j < i then Queue.push (p, q) pairs) tracked_gens;
      ignore p)
    tracked_gens;
  let count = ref 0 in
  while not (Queue.is_empty pairs) do
    incr count;
    if !count > max_pairs then failwith "Groebner.basis: pair budget exhausted";
    let f, h = Queue.pop pairs in
    let s =
      match (Poly.leading f.tp, Poly.leading h.tp) with
      | Some (fm, fc), Some (gm, gc) ->
        let l = Poly.mono_lcm fm gm in
        t_sub
          (t_mul_mono (Poly.mono_div l fm) (Rat.inv fc) f)
          (t_mul_mono (Poly.mono_div l gm) (Rat.inv gc) h)
      | _ -> { tp = Poly.zero; tc = Array.make ngens Poly.zero }
    in
    let rem, q = reduce_cof s.tp !g ~ngens in
    if not (Poly.is_zero rem) then begin
      let tc = Array.init ngens (fun i -> Poly.sub s.tc.(i) q.(i)) in
      let t = { tp = rem; tc } in
      add_pairs_for t;
      g := t :: !g
    end
  done;
  !g

let ideal_member_cert ?max_pairs (p : Poly.t) (gens : Poly.t list) : Poly.t array option =
  let ngens = List.length gens in
  let b = basis_tracked ?max_pairs gens in
  let rem, q = reduce_cof p b ~ngens in
  if Poly.is_zero rem then Some q else None
