module T = Smt.Term
module G = Vbase.Graph
open Vir

type severity = Error | Warn | Info

type diag = {
  code : string;
  severity : severity;
  fn : string option;
  message : string;
}

let severity_to_string = function Error -> "error" | Warn -> "warn" | Info -> "info"

let diag_to_string d =
  Printf.sprintf "%s %-5s %s%s" d.code (severity_to_string d.severity)
    (match d.fn with Some f -> "[" ^ f ^ "] " | None -> "")
    d.message

let code_table =
  [
    ("VL001", Error, "recursive Spec/Proof function without a decreases measure");
    ("VL002", Error, "loop without decreases in a Proof function (warn in Exec)");
    ("VL003", Warn, "decreases measure mentions no variable that can decrease");
    ("VL010", Warn, "potential matching loop: positive-growth instantiation cycle");
    ("VL011", Info, "quantified axiom with no selectable trigger (never instantiates)");
    ("VL020", Error, "statement-position call to a Spec function");
    ("VL021", Error, "Proof function body calls an Exec function");
    ("VL022", Error, "spec-position call to a non-Spec function");
    ("VL023", Warn, "Spec function takes a &mut parameter");
    ("VL024", Warn, "opaque spec function is relied on by an ensures clause");
    ("VL030", Warn, "loop invariant mentions no variable assigned in the loop body");
    ("VL031", Warn, "ensures never mention the function result");
    ("VL032", Info, "requires clause unused by body and ensures");
    ("VL033", Warn, "unreachable statements after return / assert(false)");
    ("VL034", Info, "verdict served from a cache hit lacking a certificate digest");
    ("VL040", Info, "conditional branch is unreachable (abstract interpretation)");
    ("VL041", Info, "loop invariant conjunct already implied by the loop's abstract fixpoint");
    ("VL042", Warn, "requires clause is provably false or contradicts earlier clauses");
    ("VL043", Info, "condition is constant (always true or always false)");
    ("VL044", Info, "overflow obligation provably impossible: result range fits the type");
    ("VL045", Info, "assert is implied by the abstract state (range-vacuous)");
    ("VL046", Info, "loop invariant not inductive at rung 0 (abstract body does not preserve it)");
    ("VL047", Info, "prescreen found an abstract counterexample (rung-0 Refuted advisory)");
  ]

let errors ds = List.filter (fun d -> d.severity = Error) ds

(* Parses the trigger heads back out of VL010's stable message format:
   "... through trigger heads {h1, h2} ...".  Kept next to the format's
   producer (check_axiom_set below) so the two cannot drift silently. *)
let vl010_heads ds =
  List.concat_map
    (fun d ->
      if d.code <> "VL010" then []
      else
        match (String.index_opt d.message '{', String.index_opt d.message '}') with
        | Some i, Some j when j > i + 1 ->
          String.sub d.message (i + 1) (j - i - 1)
          |> String.split_on_char ','
          |> List.map String.trim
        | _ -> [])
    ds
  |> List.sort_uniq compare

let mk code fn fmt =
  Printf.ksprintf
    (fun message ->
      let severity =
        match List.find_opt (fun (c, _, _) -> String.equal c code) code_table with
        | Some (_, s, _) -> s
        | None -> Warn
      in
      { code; severity; fn; message })
    fmt

(* ------------------------------------------------------------------ *)
(* VL00x — call graph + termination                                    *)
(* ------------------------------------------------------------------ *)

let check_termination (prog : program) : diag list =
  let fns = Array.of_list prog.functions in
  let n = Array.length fns in
  let idx_of = Hashtbl.create 16 in
  Array.iteri (fun i fd -> Hashtbl.replace idx_of fd.fname i) fns;
  let g = G.create n in
  Array.iteri
    (fun i fd ->
      let callees = List.sort_uniq compare (spec_callees fd @ body_callees fd) in
      List.iter
        (fun c ->
          match Hashtbl.find_opt idx_of c with
          | Some j -> G.add_edge g i j
          | None -> ())
        callees)
    fns;
  let out = ref [] in
  (* VL001: recursive Spec/Proof function without a measure. *)
  List.iter
    (fun comp ->
      if G.is_cyclic_component g comp then begin
        let names = List.map (fun i -> fns.(i).fname) comp in
        List.iter
          (fun i ->
            let fd = fns.(i) in
            match fd.fmode with
            | (Spec | Proof) when fn_decreases fd = None ->
                let how =
                  if List.length comp = 1 then "recursive"
                  else "mutually recursive with " ^ String.concat ", "
                         (List.filter (fun n -> not (String.equal n fd.fname)) names)
                in
                out :=
                  mk "VL001" (Some fd.fname)
                    "%s %s function has no decreases measure; its definitional axiom is a soundness risk"
                    how
                    (match fd.fmode with Spec -> "Spec" | _ -> "Proof")
                  :: !out
            | _ -> ())
          comp
      end)
    (G.scc g);
  (* VL002 / VL003 on loops and measures. *)
  Array.iter
    (fun fd ->
      let stmts = fn_stmts fd in
      List.iter
        (fun s ->
          match s with
          | SWhile { decreases = None; _ } ->
              let d =
                match fd.fmode with
                | Proof ->
                    mk "VL002" (Some fd.fname)
                      "while loop in a Proof function has no decreases clause"
                | _ ->
                    {
                      (mk "VL002" (Some fd.fname)
                         "while loop has no decreases clause; termination is unchecked")
                      with
                      severity = Warn;
                    }
              in
              out := d :: !out
          | SWhile { decreases = Some m; body; _ } ->
              let fv = free_vars m in
              let assigned = assigned_vars prog body in
              if fv <> [] && List.for_all (fun x -> not (List.mem x assigned)) fv then
                out :=
                  mk "VL003" (Some fd.fname)
                    "loop decreases measure (%s) mentions no variable assigned in the loop body"
                    (String.concat ", " fv)
                  :: !out
          | _ -> ())
        stmts;
      match fn_decreases fd with
      | Some m ->
          let fv = free_vars m in
          let params = List.map (fun p -> p.pname) fd.params in
          if not (List.exists (fun x -> List.mem x params) fv) then
            out :=
              mk "VL003" (Some fd.fname)
                "function decreases measure mentions no parameter; it cannot decrease across recursive calls"
              :: !out
      | None -> ())
    fns;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* VL01x — matching loops over the profile's axiom set                 *)
(* ------------------------------------------------------------------ *)

let tchildren (t : T.t) : T.t list =
  match t.T.node with
  | T.True | T.False | T.Int_lit _ | T.Bv_lit _ | T.Bvar _ -> []
  | T.App (_, args) -> args
  | T.Eq (a, b)
  | T.Implies (a, b)
  | T.Iff (a, b)
  | T.Sub (a, b)
  | T.Mul (a, b)
  | T.Le (a, b)
  | T.Lt (a, b)
  | T.Idiv (a, b)
  | T.Imod (a, b) -> [ a; b ]
  | T.Not a | T.Neg a -> [ a ]
  | T.And xs | T.Or xs | T.Add xs | T.Bv_op (_, xs) -> xs
  | T.Ite (a, b, c) -> [ a; b; c ]
  | T.Forall q | T.Exists q -> [ q.T.body ]

let rec height (t : T.t) : int =
  match tchildren t with
  | [] -> 0
  | cs -> 1 + List.fold_left (fun acc c -> max acc (height c)) 0 cs

(* Max depth, within [t], of a bound variable whose name is in [vars] and
   whose sort equals [srt]; [None] when no such occurrence. *)
let max_var_depth ~vars ~srt (t : T.t) : int option =
  let best = ref (-1) in
  let rec go d (t : T.t) =
    (match t.T.node with
    | T.Bvar (x, s) when List.mem x vars && Smt.Sort.equal s srt -> if d > !best then best := d
    | _ -> ());
    match t.T.node with
    | T.Forall _ | T.Exists _ -> () (* inner binders shadow *)
    | _ -> List.iter (go (d + 1)) (tchildren t)
  in
  go 0 t;
  if !best < 0 then None else Some !best

let contains_var ~vars (t : T.t) : bool =
  let rec go (t : T.t) =
    match t.T.node with
    | T.Bvar (x, _) -> List.mem x vars
    | T.Forall _ | T.Exists _ -> false
    | _ -> List.exists go (tchildren t)
  in
  go t

(* One axiom of the instantiation graph. *)
type ax = {
  ax_id : int;
  ax_vars : (string * Smt.Sort.t) list;  (* qvars *)
  ax_patterns : T.t list;  (* flattened trigger patterns *)
  ax_productions : T.t list;  (* App subterms of the body containing qvars *)
}

(* Structural one-directional match of trigger [pat] (vars [pvars], from
   the target axiom) against production [prod] (vars [tvars], from the
   source axiom).  On success returns the per-binding growth contributions
   (depth of same-sort source vars inside what each pattern var captured)
   and the consumption contributions (height of pattern structure matched
   below a source var). *)
let amatch ~pvars ~tvars (pat : T.t) (prod : T.t) : (int list * int list) option =
  let tnames = List.map fst tvars in
  let bindings : (string, T.t) Hashtbl.t = Hashtbl.create 8 in
  let growths = ref [] in
  let cons = ref [] in
  let rec go (pat : T.t) (prod : T.t) : bool =
    match (pat.T.node, prod.T.node) with
    | T.Bvar (x, srt), _ when List.mem_assoc x pvars -> (
        match Hashtbl.find_opt bindings x with
        | Some prev -> T.equal prev prod
        | None ->
            Hashtbl.replace bindings x prod;
            if contains_var ~vars:tnames prod then
              growths :=
                (match max_var_depth ~vars:tnames ~srt prod with Some d -> d | None -> 0)
                :: !growths;
            true)
    | _, T.Bvar (y, _) when List.mem y tnames ->
        (* Pattern structure descends below a source-axiom variable: the
           match only fires when that variable is instantiated with this
           much structure — consumption. *)
        cons := height pat :: !cons;
        true
    | T.App (f, args), T.App (g, brgs) ->
        T.Sym.equal f g && List.length args = List.length brgs && List.for_all2 go args brgs
    | T.Eq (a, b), T.Eq (c, d) | T.Implies (a, b), T.Implies (c, d) | T.Iff (a, b), T.Iff (c, d)
    | T.Sub (a, b), T.Sub (c, d) | T.Mul (a, b), T.Mul (c, d) | T.Le (a, b), T.Le (c, d)
    | T.Lt (a, b), T.Lt (c, d) | T.Idiv (a, b), T.Idiv (c, d) | T.Imod (a, b), T.Imod (c, d) ->
        go a c && go b d
    | T.Not a, T.Not b | T.Neg a, T.Neg b -> go a b
    | T.And xs, T.And ys | T.Or xs, T.Or ys | T.Add xs, T.Add ys ->
        List.length xs = List.length ys && List.for_all2 go xs ys
    | T.Bv_op (o1, xs), T.Bv_op (o2, ys) ->
        o1 = o2 && List.length xs = List.length ys && List.for_all2 go xs ys
    | T.Ite (a, b, c), T.Ite (d, e, f) -> go a d && go b e && go c f
    | _ -> T.equal pat prod
  in
  if go pat prod then Some (!growths, !cons) else None

(* Collect App subterms of [body] containing at least one qvar, without
   descending under nested binders (their instances only exist after the
   inner quantifier fires).  Productions equated in the body to a strictly
   smaller term are dropped: the E-graph merges them with existing
   material, so they cannot fuel unbounded growth. *)
let productions_of ~qvars ~exempt_ok (body : T.t) : T.t list =
  let names = List.map fst qvars in
  let small_eq = Hashtbl.create 8 in
  let rec scan_eq (t : T.t) =
    (match t.T.node with
    | T.Eq (a, b) | T.Iff (a, b) ->
        let ha = height a and hb = height b in
        if hb < ha then Hashtbl.replace small_eq a.T.tid ()
        else if ha < hb then Hashtbl.replace small_eq b.T.tid ()
    | _ -> ());
    match t.T.node with
    | T.Forall _ | T.Exists _ -> ()
    | _ -> List.iter scan_eq (tchildren t)
  in
  scan_eq body;
  let acc = ref [] in
  let rec go (t : T.t) =
    (match t.T.node with
    | T.App (_, args)
      when args <> []
           && contains_var ~vars:names t
           && not (Hashtbl.mem small_eq t.T.tid)
           && exempt_ok t ->
        if not (List.exists (T.equal t) !acc) then acc := t :: !acc
    | _ -> ());
    match t.T.node with
    | T.Forall _ | T.Exists _ -> ()
    | _ -> List.iter go (tchildren t)
  in
  go body;
  List.rev !acc

let head_name (t : T.t) =
  match t.T.node with T.App (f, _) -> Some f.T.sname | _ -> None

let check_axiom_set (p : Profiles.t) ~exempt_heads (axioms : T.t list) : diag list =
  let out = ref [] in
  let axs =
    List.mapi
      (fun i (axm : T.t) ->
        match axm.T.node with
        | T.Forall q ->
            let patterns = List.concat (Smt.Triggers.select p.Profiles.trigger_policy q) in
            if patterns = [] && q.T.qvars <> [] then
              out :=
                mk "VL011" None
                  "axiom #%d (%s) has no selectable trigger: it can never instantiate" i
                  (String.concat ", " (List.map fst q.T.qvars))
                :: !out;
            Some
              {
                ax_id = i;
                ax_vars = q.T.qvars;
                ax_patterns = patterns;
                ax_productions =
                  productions_of ~qvars:q.T.qvars ~exempt_ok:(fun _ -> true) q.T.body;
              }
        | _ -> None)
      axioms
  in
  let axs = List.filter_map Fun.id axs in
  let n = List.length axs in
  let arr = Array.of_list axs in
  let g = G.create n in
  let edge_info = Hashtbl.create 32 in
  Array.iteri
    (fun i ai ->
      Array.iteri
        (fun j aj ->
          (* Best (max) delta over production/pattern pairs from axiom i
             into axiom j. *)
          let best = ref None in
          List.iter
            (fun prodt ->
              List.iter
                (fun pat ->
                  let exempt =
                    match (head_name pat, head_name prodt) with
                    | Some hp, Some hq ->
                        String.equal hp hq && List.mem hp exempt_heads
                    | _ -> false
                  in
                  if not exempt then
                    match amatch ~pvars:aj.ax_vars ~tvars:ai.ax_vars pat prodt with
                    | Some (growths, cons) when growths <> [] ->
                        let gmax = List.fold_left max 0 growths in
                        let cmax = List.fold_left max 0 cons in
                        let delta = gmax - cmax in
                        (match !best with
                        | Some (d, _) when d >= delta -> ()
                        | _ -> best := Some (delta, (prodt, pat)))
                    | _ -> ())
                aj.ax_patterns)
            ai.ax_productions;
          match !best with
          | Some (delta, info) ->
              G.add_edge g ~w:delta i j;
              Hashtbl.replace edge_info (i, j) (delta, info)
          | None -> ())
        arr)
    arr;
  List.iter
    (fun comp ->
      if G.is_cyclic_component g comp then
        match G.positive_cycle g comp with
        | Some witnesses ->
            let heads =
              List.sort_uniq compare
                (List.concat_map
                   (fun v ->
                     List.filter_map head_name arr.(v).ax_patterns)
                   comp)
            in
            let growth =
              List.fold_left
                (fun acc u ->
                  List.fold_left
                    (fun acc (v, w) -> if List.mem v comp then max acc w else acc)
                    acc (G.succ g u))
                0 comp
            in
            out :=
              mk "VL010" None
                "potential matching loop: instantiation cycle over %d axiom(s) through trigger heads {%s} grows term depth by +%d per round (witness axioms: %s)"
                (List.length comp)
                (String.concat ", " heads)
                growth
                (String.concat ", "
                   (List.map (fun v -> "#" ^ string_of_int arr.(v).ax_id) witnesses))
              :: !out
        | None -> ())
    (G.scc g);
  List.rev !out

let check_axioms (p : Profiles.t) (axioms : T.t list) : diag list =
  check_axiom_set p ~exempt_heads:[] axioms

let check_matching_loops (p : Profiles.t) (prog : program) : diag list =
  let axioms = Encode.program_axioms p prog in
  (* Spec functions carrying a decreases measure unfold boundedly (fuel):
     skip pattern/production pairs whose heads are both that symbol. *)
  let exempt_heads =
    List.filter_map
      (fun fd ->
        match (fd.fmode, fd.spec_body, fn_decreases fd) with
        | Spec, Some _, Some _ when fd.ret <> None ->
            Some (Encode.spec_fn_sym p prog fd).T.sname
        | _ -> None)
      prog.functions
  in
  check_axiom_set p ~exempt_heads axioms

(* ------------------------------------------------------------------ *)
(* VL02x — mode discipline                                             *)
(* ------------------------------------------------------------------ *)

let check_modes (prog : program) : diag list =
  let out = ref [] in
  let mode_of name =
    match List.find_opt (fun fd -> String.equal fd.fname name) prog.functions with
    | Some fd -> Some fd.fmode
    | None -> None
  in
  List.iter
    (fun fd ->
      (* VL020 / VL021: statement-position calls. *)
      List.iter
        (fun s ->
          match s with
          | SCall (_, callee, _) -> (
              match mode_of callee with
              | Some Spec ->
                  out :=
                    mk "VL020" (Some fd.fname)
                      "statement-position call to Spec function %s (spec functions have no effect; call it in an expression)"
                      callee
                    :: !out
              | Some Exec when fd.fmode = Proof ->
                  out :=
                    mk "VL021" (Some fd.fname)
                      "Proof function calls Exec function %s; proofs are erased and may not execute code"
                      callee
                    :: !out
              | _ -> ())
          | _ -> ())
        (fn_stmts fd);
      (* VL022: expression-position (spec) calls must target Spec fns. *)
      List.iter
        (fun e ->
          List.iter
            (fun callee ->
              match mode_of callee with
              | Some (Exec | Proof) ->
                  out :=
                    mk "VL022" (Some fd.fname)
                      "spec-position call to %s-mode function %s"
                      (match mode_of callee with Some Exec -> "Exec" | _ -> "Proof")
                      callee
                    :: !out
              | _ -> ())
            (calls_in_expr e))
        (fn_exprs fd);
      (* VL023: spec functions with &mut parameters. *)
      if fd.fmode = Spec then
        List.iter
          (fun p ->
            if p.pmut then
              out :=
                mk "VL023" (Some fd.fname)
                  "Spec function takes &mut parameter %s; spec functions are pure and cannot observe mutation"
                  p.pname
                :: !out)
          fd.params)
    prog.functions;
  (* VL024: opaque spec fn with a body relied on by some ensures. *)
  let opaque =
    List.filter
      (fun fd -> fd.fmode = Spec && fd.spec_body <> None && List.mem A_opaque fd.attrs)
      prog.functions
  in
  List.iter
    (fun ofd ->
      List.iter
        (fun fd ->
          if
            not (String.equal fd.fname ofd.fname)
            && List.exists
                 (fun e -> List.mem ofd.fname (calls_in_expr e))
                 fd.ensures
          then
            out :=
              mk "VL024" (Some fd.fname)
                "ensures relies on opaque spec function %s whose body is never revealed (it stays uninterpreted)"
                ofd.fname
              :: !out)
        prog.functions)
    opaque;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* VL03x — proof hygiene                                               *)
(* ------------------------------------------------------------------ *)

let check_hygiene (prog : program) : diag list =
  let out = ref [] in
  List.iter
    (fun fd ->
      (* VL030: invariants over loop-constant variables.  The loop encoding
         havocs only modified variables, so such an invariant is implied by
         the pre-loop context and proves nothing new. *)
      List.iter
        (fun s ->
          match s with
          | SWhile { invariants; body; cond = _; decreases = _ } ->
              let assigned = assigned_vars prog body in
              List.iteri
                (fun k inv ->
                  let fv = free_vars inv in
                  if List.for_all (fun x -> not (List.mem x assigned)) fv then
                    out :=
                      mk "VL030" (Some fd.fname)
                        "loop invariant #%d mentions no variable assigned in the loop body (%s); it is preserved trivially"
                        k
                        (match fv with [] -> "no variables at all" | _ -> String.concat ", " fv)
                      :: !out)
                invariants
          | _ -> ())
        (fn_stmts fd);
      (* VL031: ensures that never name the result or a &mut param. *)
      (match (fd.ret, fd.ensures) with
      | Some (rname, _), (_ :: _ as ens) when fd.fmode <> Spec ->
          let mut_params = List.filter_map (fun p -> if p.pmut then Some p.pname else None) fd.params in
          let mentions =
            List.exists
              (fun e ->
                let fv = free_vars e in
                List.mem rname fv || List.exists (fun m -> List.mem m fv) mut_params)
              ens
          in
          if not mentions then
            out :=
              mk "VL031" (Some fd.fname)
                "no ensures clause mentions the result %s (or any &mut parameter); the contract does not constrain the output"
                rname
              :: !out
      | _ -> ());
      (* VL032: requires whose variables touch neither body nor ensures.
         Trusted externals (no body, no ensures) are exempt. *)
      if fd.body <> None || fd.ensures <> [] || fd.spec_body <> None then begin
        let footprint =
          List.concat_map free_vars
            (fd.ensures
            @ Option.to_list fd.spec_body
            @ List.concat_map stmt_exprs (fn_stmts fd))
          |> List.sort_uniq compare
        in
        List.iteri
          (fun k req ->
            let fv = free_vars req in
            if List.for_all (fun x -> not (List.mem x footprint)) fv then
              out :=
                mk "VL032" (Some fd.fname)
                  "requires clause #%d constrains %s, which neither the body nor the ensures mention"
                  k
                  (match fv with [] -> "nothing" | _ -> String.concat ", " fv)
                :: !out)
          fd.requires
      end;
      (* VL033: unreachable statements. *)
      let rec check_block block =
        let rec walk = function
          | [] -> ()
          | s :: rest ->
              (match s with
              | SIf (_, a, b) ->
                  check_block a;
                  check_block b
              | SWhile { body; _ } -> check_block body
              | _ -> ());
              let terminal =
                match s with
                | SReturn _ -> true
                | SAssert (EBool false, _) | SAssume (EBool false) -> true
                | _ -> false
              in
              if terminal && rest <> [] then
                out :=
                  mk "VL033" (Some fd.fname)
                    "%d unreachable statement(s) after %s"
                    (List.length rest)
                    (match s with
                    | SReturn _ -> "return"
                    | SAssert _ -> "assert(false)"
                    | _ -> "assume(false)")
                  :: !out
              else walk rest
        in
        walk block
      in
      (match fd.body with Some b -> check_block b | None -> ()))
    prog.functions;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* VL04x — abstract-interpretation findings (Vflow)                     *)
(* ------------------------------------------------------------------ *)

(* The analysis itself lives below this layer (lib/vflow, shared with the
   driver's prescreen); this pass only maps its findings — already in
   deterministic program order — onto diagnostics, so severities come from
   one place: [code_table]. *)
let check_flow (prog : program) : diag list =
  List.map
    (fun (f : Vflow.Absint.finding) ->
      mk f.Vflow.Absint.f_code (Some f.Vflow.Absint.f_fn) "%s" f.Vflow.Absint.f_msg)
    (Vflow.Absint.analyze_program prog)

(* ------------------------------------------------------------------ *)
(* Machine-readable report (verus_cli lint --json)                      *)
(* ------------------------------------------------------------------ *)

module J = Vbase.Json

let report_schema = "verus-lint/1"

let report_to_json ~prog_name ~profile_name (ds : diag list) : J.t =
  let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  J.Obj
    [
      ("schema", J.String report_schema);
      ("program", J.String prog_name);
      ("profile", J.String profile_name);
      ( "counts",
        J.Obj
          [
            ("error", J.Int (count Error));
            ("warn", J.Int (count Warn));
            ("info", J.Int (count Info));
          ] );
      ( "findings",
        J.List
          (List.map
             (fun d ->
               J.Obj
                 [
                   ("code", J.String d.code);
                   ("severity", J.String (severity_to_string d.severity));
                   ("fn", match d.fn with Some f -> J.String f | None -> J.Null);
                   ("message", J.String d.message);
                 ])
             ds) );
    ]

let validate_report (j : J.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let str o k = match J.member k o with Some (J.String s) -> Some s | _ -> None in
  let int_ o k = match J.member k o with Some (J.Int n) -> Some n | _ -> None in
  let need what o k f =
    match f o k with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "%s: missing or mistyped %S" what k)
  in
  let* () =
    match str j "schema" with
    | Some s when s = report_schema -> Ok ()
    | Some s -> Error (Printf.sprintf "schema %S (expected %s)" s report_schema)
    | None -> Error "missing schema tag"
  in
  let* _ = need "report" j "program" str in
  let* _ = need "report" j "profile" str in
  let* counts = match J.member "counts" j with Some c -> Ok c | None -> Error "missing counts" in
  let* n_err = need "counts" counts "error" int_ in
  let* n_warn = need "counts" counts "warn" int_ in
  let* n_info = need "counts" counts "info" int_ in
  let* findings =
    match J.member "findings" j with
    | Some (J.List fs) -> Ok fs
    | _ -> Error "findings: missing or not a list"
  in
  let tally = Hashtbl.create 4 in
  let* () =
    List.fold_left
      (fun acc f ->
        let* () = acc in
        let* code = need "findings[]" f "code" str in
        let* () =
          if List.exists (fun (c, _, _) -> String.equal c code) code_table then Ok ()
          else Error (Printf.sprintf "findings[]: unknown code %S" code)
        in
        let* sev = need "findings[]" f "severity" str in
        let* () =
          match sev with
          | "error" | "warn" | "info" ->
            Hashtbl.replace tally sev (1 + Option.value ~default:0 (Hashtbl.find_opt tally sev));
            Ok ()
          | _ -> Error (Printf.sprintf "findings[]: bad severity %S" sev)
        in
        let* () =
          match J.member "fn" f with
          | Some (J.String _) | Some J.Null -> Ok ()
          | _ -> Error "findings[]: fn must be a string or null"
        in
        let* _ = need "findings[]" f "message" str in
        Ok ())
      (Ok ()) findings
  in
  let seen k = Option.value ~default:0 (Hashtbl.find_opt tally k) in
  if seen "error" <> n_err || seen "warn" <> n_warn || seen "info" <> n_info then
    Error "counts do not match the findings list"
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let lint (p : Profiles.t) (prog : program) : diag list =
  check_termination prog
  @ check_matching_loops p prog
  @ check_modes prog
  @ check_hygiene prog
  @ check_flow prog
