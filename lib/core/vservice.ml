(* The daemon's service layer: resolves verus-rpc/1 requests against
   the bundled program/profile tables, runs them through
   Driver.verify_program on one long-lived Sched pool, and streams
   verdict events back through the transport's [emit].  The CLI reuses
   the same tables and exit-code policy, so daemon and CLI answers for
   one job are the same computation. *)

(* ------------------- bundled programs and profiles ----------------- *)

let programs =
  [
    ("singly_linked", fun () -> Bench_programs.singly_linked);
    ("doubly_linked", fun () -> Bench_programs.doubly_linked);
    ("mem4", fun () -> Bench_programs.memory_reasoning 4);
    ("mem8", fun () -> Bench_programs.memory_reasoning 8);
    ("dlock", fun () -> Bench_programs.dlock_default);
    ("break_pop", fun () -> Bench_programs.break_pop);
    ("break_index", fun () -> Bench_programs.break_index);
    ("vstd_seq", fun () -> Vstd_seq.program);
    ("const_cond", fun () -> Bench_programs.const_cond);
  ]

let program_names = List.map fst programs

let profile_names = List.map (fun (p : Profiles.t) -> p.Profiles.name) Profiles.all

let find_program name =
  match List.assoc_opt name programs with
  | Some f -> Ok (f ())
  | None ->
    Error
      (Printf.sprintf "unknown program %s (have: %s)" name
         (String.concat ", " program_names))

let find_profile name =
  (* Case-insensitive, and "fstar"/"lowstar" for the awkward "F*/Low*". *)
  let norm s = String.lowercase_ascii s in
  let matches (p : Profiles.t) =
    String.equal (norm p.Profiles.name) (norm name)
    || (String.equal p.Profiles.name "F*/Low*"
       && List.mem (norm name) [ "fstar"; "f*"; "lowstar"; "low*" ])
  in
  match List.find_opt matches Profiles.all with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown profile %s (have: %s)" name
         (String.concat ", " profile_names))

(* ------------------------- exit-code policy ------------------------ *)

(* A run that failed *only* on Unknown answers (solver deadline /
   instantiation budget) is a budget exhaustion, not a refutation: exit
   3 so callers can distinguish "needs a bigger --deadline" from "has a
   counterexample". *)
let budget_only (r : Driver.program_result) =
  (not r.Driver.pr_ok)
  && r.Driver.pr_front_end_errors = []
  && r.Driver.pr_fns <> []
  && List.for_all
       (fun (fnr : Driver.fn_result) ->
         List.for_all
           (fun (vr : Driver.vc_result) ->
             match vr.Driver.vcr_answer with
             | Smt.Solver.Unsat | Smt.Solver.Unknown _ -> true
             | Smt.Solver.Sat -> false)
           fnr.Driver.fnr_vcs)
       r.Driver.pr_fns

(* Any obligation the certificate kernel disowned (rejected or missing
   certificate under --certify).  Checked before [budget_only]: such a
   run's answers are all Unsat, which would otherwise read as exit 3. *)
let cert_failed (r : Driver.program_result) =
  List.exists
    (fun (fnr : Driver.fn_result) ->
      List.exists
        (fun (vr : Driver.vc_result) ->
          match vr.Driver.vcr_cert with
          | Driver.Cert_rejected _ | Driver.Cert_unavailable _ -> true
          | _ -> false)
        fnr.Driver.fnr_vcs)
    r.Driver.pr_fns

let exit_cert_rejected = 5

let result_exit_code (r : Driver.program_result) =
  if r.Driver.pr_ok then 0
  else if cert_failed r then exit_cert_rejected
  else if budget_only r then 3
  else 1

(* ---------------------------- the engine --------------------------- *)

type t = {
  pool : Verusd.Sched.t;
  cache_dir : string option;
  started_at : float;
  n_requests : int Atomic.t;
}

let create ~domains ?cache_dir () =
  {
    pool = Verusd.Sched.create ~domains;
    cache_dir;
    started_at = Unix.gettimeofday ();
    n_requests = Atomic.make 0;
  }

let sched t = t.pool
let domains t = Verusd.Sched.domain_count t.pool
let requests t = Atomic.get t.n_requests
let shutdown t = Verusd.Sched.shutdown t.pool

(* ---------------------------- job runners --------------------------- *)

module J = Vbase.Json
module Rpc = Verusd.Rpc

let answer_string = function
  | Smt.Solver.Unsat -> "unsat"
  | Smt.Solver.Sat -> "sat"
  | Smt.Solver.Unknown _ -> "unknown"

let answer_reason = function Smt.Solver.Unknown m -> Some m | _ -> None

(* A warm hit in the shared cache, whether or not the entry carried a
   certificate digest — what the protocol's per-VC [cached] flag means. *)
let vc_cached (vr : Driver.vc_result) =
  match vr.Driver.vcr_cert with
  | Driver.Cert_cached _ | Driver.Cert_uncertified_hit -> true
  | _ -> false

let lint_level_to_mode = function
  | Rpc.Lint_off -> Driver.Lint_ignore
  | Rpc.Lint_warn -> Driver.Lint_warn
  | Rpc.Lint_strict -> Driver.Lint_strict

let kind_string = function
  | Rpc.Verify -> "verify"
  | Rpc.Lint -> "lint"
  | Rpc.Profile -> "profile"

(* The one resolver for automation strength, shared by the daemon and
   the CLI: a ladder name and/or rung pin, or the deprecated
   deadline/max_rounds sugar (a single-rung ladder carrying the
   absolute budget).  Combining the two surfaces is an error — the
   sugar is a ladder, so "both" has no coherent meaning. *)
let resolve_ladder (profile : Profiles.t) ~ladder ~rung ~deadline_s ~max_rounds :
    (Vladder.Ladder.t option, string) result =
  let has_budget = deadline_s <> None || max_rounds <> None in
  match (ladder, rung) with
  | None, None ->
    if not has_budget then Ok None
    else
      let b = Profiles.budget profile in
      let b =
        {
          b with
          Smt.Solver.deadline_s = Option.value ~default:b.Smt.Solver.deadline_s deadline_s;
          Smt.Solver.max_rounds = Option.value ~default:b.Smt.Solver.max_rounds max_rounds;
        }
      in
      Ok (Some (Vladder.Ladder.of_budget b))
  | _ when has_budget ->
    Error
      "deadline/max_rounds are deprecated sugar for a single-rung ladder and cannot be \
       combined with ladder/rung"
  | _ ->
    let base =
      match ladder with
      | None -> Ok Vladder.Ladder.escalate
      | Some name -> (
        match Vladder.Ladder.by_name name with
        | Some l -> Ok l
        | None ->
          Error
            (Printf.sprintf "unknown ladder %s (have: %s)" name
               (String.concat ", " (List.map fst Vladder.Ladder.builtins))))
    in
    Result.bind base (fun l ->
        match rung with
        | None -> Ok (Some l)
        | Some r -> Result.map Option.some (Vladder.Ladder.pin l r))

let ladder_of_query (profile : Profiles.t) (q : Rpc.query) =
  resolve_ladder profile ~ladder:q.Rpc.q_ladder ~rung:q.Rpc.q_rung
    ~deadline_s:q.Rpc.q_deadline_s ~max_rounds:q.Rpc.q_max_rounds

let ladder_stats_json (r : Driver.program_result) =
  match r.Driver.pr_ladder with
  | None -> []
  | Some ls ->
    let ints a = J.List (Array.to_list (Array.map (fun n -> J.Int n) a)) in
    [
      ( "ladder",
        J.Obj
          [
            ("name", J.String ls.Driver.ls_ladder);
            ("rungs", J.Int ls.Driver.ls_rungs);
            ("attempts", ints ls.Driver.ls_attempts);
            ("wins", ints ls.Driver.ls_wins);
            ("escalations", J.Int ls.Driver.ls_escalations);
            ("steered", J.Int ls.Driver.ls_steered);
            ("cache_hits", J.Int ls.Driver.ls_cache_hits);
            ("hint_starts", J.Int ls.Driver.ls_hint_starts);
          ] );
    ]

let cache_stats_json (r : Driver.program_result) =
  match r.Driver.pr_cache with
  | None -> []
  | Some cs ->
    [
      ( "cache",
        J.Obj
          [
            ("hits", J.Int cs.Vcache.hits);
            ("misses", J.Int cs.Vcache.misses);
            ("invalidations", J.Int cs.Vcache.invalidations);
            ("stores", J.Int cs.Vcache.stores);
          ] );
    ]

(* A lint job runs only the static analyses — no SMT work, mirroring
   [verus_cli lint].  The digest covers the rendered findings, so two
   daemons (or a daemon and the CLI) disagreeing on lint output is
   detectable the same way verification digests are compared. *)
let run_lint_job ~(q : Rpc.query) (profile : Profiles.t) prog =
  let t0 = Unix.gettimeofday () in
  let ds = Vlint.lint profile prog in
  let time_s = Unix.gettimeofday () -. t0 in
  let strict = q.Rpc.q_lint = Rpc.Lint_strict in
  let count sev = List.length (List.filter (fun (d : Vlint.diag) -> d.Vlint.severity = sev) ds) in
  let errors = count Vlint.Error and warns = count Vlint.Warn in
  let ok = errors = 0 && ((not strict) || warns = 0) in
  let digest =
    Digest.to_hex (Digest.string (String.concat "\n" (List.map Vlint.diag_to_string ds)))
  in
  J.Obj
    [
      ("kind", J.String "lint");
      ("program", J.String q.Rpc.q_program);
      ("profile", J.String profile.Profiles.name);
      ("ok", J.Bool ok);
      ("exit_code", J.Int (if ok then 0 else 1));
      ("digest", J.String digest);
      ("time_s", J.Float time_s);
      ("findings", J.Int (List.length ds));
      ("errors", J.Int errors);
      ("warnings", J.Int warns);
      ("strict", J.Bool strict);
    ]

let run_verify_job t ~emit ~id ~(q : Rpc.query) ~ladder (profile : Profiles.t) prog =
  let is_profile = q.Rpc.q_kind = Rpc.Profile in
  let config =
    {
      Driver.Config.default with
      Driver.Config.lint =
        (* A profile job always lints in warn mode: the VL010 cross-check
           needs findings to compare measured hot-spots against. *)
        (if is_profile then Driver.Lint_warn else lint_level_to_mode q.Rpc.q_lint);
      profile = is_profile;
      certify = q.Rpc.q_certify;
      analyze = q.Rpc.q_analyze;
      ladder;
      cache =
        (match t.cache_dir with
        | Some dir when q.Rpc.q_cache -> Some { Vcache.dir }
        | _ -> None);
      sched = Some t.pool;
    }
  in
  let on_progress =
    if not q.Rpc.q_stream then None
    else
      Some
        (function
        | Driver.Vc_done (fn, vr) ->
          emit
            (Rpc.event_to_json ~id
               (Rpc.E_vc
                  {
                    fn;
                    vc = vr.Driver.vcr_name;
                    answer = answer_string vr.Driver.vcr_answer;
                    reason = answer_reason vr.Driver.vcr_answer;
                    time_s = vr.Driver.vcr_time_s;
                    cached = vc_cached vr;
                    rung = vr.Driver.vcr_rung;
                  }))
        | Driver.Fn_done fnr ->
          emit
            (Rpc.event_to_json ~id
               (Rpc.E_fn
                  {
                    fn = fnr.Driver.fnr_name;
                    ok = fnr.Driver.fnr_ok;
                    time_s = fnr.Driver.fnr_time_s;
                    vcs = List.length fnr.Driver.fnr_vcs;
                  })))
  in
  let r = Driver.verify_program ~config ?on_progress profile prog in
  let vcs =
    List.fold_left (fun acc (fnr : Driver.fn_result) -> acc + List.length fnr.Driver.fnr_vcs) 0
      r.Driver.pr_fns
  in
  J.Obj
    ([
       ("kind", J.String (kind_string q.Rpc.q_kind));
       ("program", J.String q.Rpc.q_program);
       ("profile", J.String profile.Profiles.name);
       ("ok", J.Bool r.Driver.pr_ok);
       ("exit_code", J.Int (result_exit_code r));
       ("digest", J.String (Driver.result_digest r));
       ("time_s", J.Float r.Driver.pr_time_s);
       ("fns", J.Int (List.length r.Driver.pr_fns));
       ("vcs", J.Int vcs);
       ("lint_findings", J.Int (List.length r.Driver.pr_lint));
       ( "front_end_errors",
         J.List (List.map (fun e -> J.String e) r.Driver.pr_front_end_errors) );
     ]
    @ cache_stats_json r @ ladder_stats_json r)

let status_json t =
  let s = Verusd.Sched.stats t.pool in
  J.Obj
    [
      ("uptime_s", J.Float (Unix.gettimeofday () -. t.started_at));
      ("requests", J.Int (Atomic.get t.n_requests));
      ("domains", J.Int s.Verusd.Sched.sd_domains);
      ( "cache_dir",
        match t.cache_dir with Some d -> J.String d | None -> J.Null );
      ( "sched",
        J.Obj
          [
            ("submitted", J.Int s.Verusd.Sched.sd_submitted);
            ( "executed",
              J.List (List.map (fun n -> J.Int n) s.Verusd.Sched.sd_executed) );
            ("stolen", J.Int s.Verusd.Sched.sd_stolen);
            ("batches", J.Int s.Verusd.Sched.sd_batches);
          ] );
      ("programs", J.List (List.map (fun n -> J.String n) program_names));
      ("profiles", J.List (List.map (fun n -> J.String n) profile_names));
    ]

(* ----------------------------- handler ----------------------------- *)

let handler t : Verusd.Server.handler =
 fun ~emit (req : Rpc.request) ->
  Atomic.incr t.n_requests;
  let id = req.Rpc.r_id in
  let send ev = emit (Rpc.event_to_json ~id ev) in
  match req.Rpc.r_method with
  | Rpc.M_ping ->
    send Rpc.E_pong;
    Verusd.Server.Continue
  | Rpc.M_status ->
    send (Rpc.E_status (status_json t));
    Verusd.Server.Continue
  | Rpc.M_shutdown ->
    send
      (Rpc.E_done
         (J.Obj
            [ ("kind", J.String "shutdown"); ("ok", J.Bool true); ("exit_code", J.Int 0) ]));
    Verusd.Server.Stop
  | Rpc.M_job q -> (
    match (find_program q.Rpc.q_program, find_profile q.Rpc.q_profile) with
    | Error msg, _ | _, Error msg ->
      send (Rpc.E_error { Rpc.code = "RPC004"; message = msg });
      Verusd.Server.Continue
    | Ok prog, Ok profile -> (
      match ladder_of_query profile q with
      | Error msg ->
        send (Rpc.E_error { Rpc.code = "RPC004"; message = msg });
        Verusd.Server.Continue
      | Ok ladder ->
        let done_ =
          match q.Rpc.q_kind with
          | Rpc.Lint -> run_lint_job ~q profile prog
          | Rpc.Verify | Rpc.Profile -> run_verify_job t ~emit ~id ~q ~ladder profile prog
        in
        send (Rpc.E_done done_);
        Verusd.Server.Continue))

(* --------------------- bench-document schema ----------------------- *)

let bench_schema = "verus-daemon-bench/1"

let validate_daemon_bench (j : J.t) =
  let ( let* ) = Result.bind in
  let str o k = match J.member k o with Some (J.String s) -> Some s | _ -> None in
  let num o k = match J.member k o with Some v -> J.to_float v | None -> None in
  let int_ o k = match J.member k o with Some (J.Int n) -> Some n | _ -> None in
  let bool_ o k = match J.member k o with Some (J.Bool b) -> Some b | _ -> None in
  let need what o k f =
    match f o k with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "%s: missing or mistyped %S" what k)
  in
  let* () =
    match str j "schema" with
    | Some s when s = bench_schema -> Ok ()
    | Some s -> Error (Printf.sprintf "schema %S (expected %s)" s bench_schema)
    | None -> Error "missing schema tag"
  in
  let* cold =
    match J.member "cold" j with
    | Some (J.Obj _ as c) -> Ok c
    | _ -> Error "missing cold object"
  in
  let* _ = need "cold" cold "baseline_jobs" int_ in
  let* _ = need "cold" cold "baseline_total_s" num in
  let* _ = need "cold" cold "daemon_total_s" num in
  let* rows =
    match J.member "rows" cold with
    | Some (J.List (_ :: _ as rows)) -> Ok rows
    | _ -> Error "cold.rows: missing or empty"
  in
  let* () =
    List.fold_left
      (fun acc row ->
        let* () = acc in
        let* _ = need "cold.rows[]" row "program" str in
        let* _ = need "cold.rows[]" row "baseline_s" num in
        let* _ = need "cold.rows[]" row "daemon_s" num in
        let* ok = need "cold.rows[]" row "digest_equal" bool_ in
        if ok then Ok () else Error "cold.rows[]: digest_equal is false"
      )
      (Ok ()) rows
  in
  let* warm =
    match J.member "warm" j with
    | Some (J.Obj _ as w) -> Ok w
    | _ -> Error "missing warm object"
  in
  let* _ = need "warm" warm "hits" int_ in
  let* _ = need "warm" warm "misses" int_ in
  let* rate = need "warm" warm "hit_rate" num in
  let* () =
    if rate >= 0.0 && rate <= 1.0 then Ok () else Error "warm.hit_rate out of [0,1]"
  in
  let* bursts =
    match J.member "burst" j with
    | Some (J.List (_ :: _ as bs)) -> Ok bs
    | _ -> Error "burst: missing or empty"
  in
  List.fold_left
    (fun acc b ->
      let* () = acc in
      let* _ = need "burst[]" b "domains" int_ in
      let* _ = need "burst[]" b "tasks" int_ in
      let* _ = need "burst[]" b "p50_us" num in
      let* _ = need "burst[]" b "p90_us" num in
      let* _ = need "burst[]" b "p99_us" num in
      Ok ())
    (Ok ()) bursts

(* ------------------------------ serve ------------------------------ *)

let serve ~socket_path ~domains ?cache_dir () =
  let eng = create ~domains ?cache_dir () in
  match Verusd.Server.create (Verusd.Server.default_config ~socket_path) with
  | Error e ->
    shutdown eng;
    Error e
  | Ok srv ->
    Fun.protect
      ~finally:(fun () -> shutdown eng)
      (fun () ->
        Verusd.Server.serve srv (handler eng);
        Ok ())
