(** A small verified sequence lemma library — the counterpart of the seq
    lemmas in Verus's standard library (vstd), stated as VIR proof
    functions and discharged by the verifier.

    These are the lemmas ported systems lean on (IronKV's marshalling and
    delegation proofs chain such facts); having them verified once in a
    library is part of the "consolidate the gains" story of the paper's
    conclusion. *)

val program : Vir.program
(** Proof functions:
    - [lemma_push_len], [lemma_push_last], [lemma_push_prefix]
    - [lemma_append_len], [lemma_append_index_left/right]
    - [lemma_take_skip_parts]: take/skip split a sequence
    - [lemma_update_same/other]
    - [lemma_skip_skip]: skip composes additively
    - [lemma_take_of_append]: take of an append at the boundary *)

val verify : ?profile:Profiles.t -> unit -> Driver.program_result
(** Verifies the whole library (defaults to the Verus profile). *)
