let schema_version = "verus-cache/1"
let file_name = "store.json"

type config = { dir : string }

type entry = {
  e_answer : Smt.Solver.answer;
  e_detail : string;
  e_bytes : int;
  e_time_s : float;
  e_profile : Smt.Profile.t option;
  e_cert_digest : string option;
  e_rung : int option;
}

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  stores : int;
  entries_loaded : int;
  entries_dropped : int;
  corrupt_load : bool;
}

type t = {
  dir : string;
  lock : Mutex.t;
  (* fingerprint -> (vc name, entry); immutable after open_ *)
  snapshot : (string, string * entry) Hashtbl.t;
  (* vc name -> a fingerprint it was cached under; immutable after open_ *)
  names : (string, string) Hashtbl.t;
  (* entries recorded this run, invisible to lookup until the next open_ *)
  fresh : (string, string * entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  entries_loaded : int;
  entries_dropped : int;
  corrupt_load : bool;
}

(* ----- entry (de)serialization ----- *)

let answer_kind = function
  | Smt.Solver.Unsat -> "unsat"
  | Smt.Solver.Sat -> "sat"
  | Smt.Solver.Unknown _ -> "unknown"

let entry_to_json name (e : entry) : Vbase.Json.t =
  let base =
    [
      ("name", Vbase.Json.String name);
      ("answer", Vbase.Json.String (answer_kind e.e_answer));
      ("detail", Vbase.Json.String e.e_detail);
      ("bytes", Vbase.Json.Int e.e_bytes);
      ("time_s", Vbase.Json.Float e.e_time_s);
    ]
  in
  let reason =
    match e.e_answer with
    | Smt.Solver.Unknown r -> [ ("reason", Vbase.Json.String r) ]
    | _ -> []
  in
  let prof =
    match e.e_profile with
    | None -> []
    | Some p -> [ ("profile", Smt.Profile.to_json p) ]
  in
  let cert =
    match e.e_cert_digest with
    | None -> []
    | Some d -> [ ("cert", Vbase.Json.String d) ]
  in
  let rung =
    match e.e_rung with None -> [] | Some r -> [ ("rung", Vbase.Json.Int r) ]
  in
  Vbase.Json.Obj (base @ reason @ prof @ cert @ rung)

let entry_of_json (j : Vbase.Json.t) : (string * entry) option =
  let ( let* ) = Option.bind in
  let str k = match Vbase.Json.member k j with Some (Vbase.Json.String s) -> Some s | _ -> None in
  let* name = str "name" in
  let* kind = str "answer" in
  let* answer =
    match kind with
    | "unsat" -> Some Smt.Solver.Unsat
    | "sat" -> Some Smt.Solver.Sat
    | "unknown" -> Some (Smt.Solver.Unknown (Option.value (str "reason") ~default:"cached"))
    | _ -> None
  in
  let* detail = str "detail" in
  let* bytes = match Vbase.Json.member "bytes" j with Some (Vbase.Json.Int n) -> Some n | _ -> None in
  let* time_s = Option.bind (Vbase.Json.member "time_s" j) Vbase.Json.to_float in
  let* profile =
    match Vbase.Json.member "profile" j with
    | None -> Some None
    | Some pj -> (
      (* a malformed profile poisons the whole entry: dropping just the
         profile would let a profiled warm run silently serve stale data *)
      match Smt.Profile.of_json pj with Ok p -> Some (Some p) | Error _ -> None)
  in
  let* cert_digest =
    match Vbase.Json.member "cert" j with
    | None -> Some None
    | Some (Vbase.Json.String d) -> Some (Some d)
    | Some _ -> None
  in
  let* rung =
    (* additive key: entries written before the ladder existed have no
       "rung"; a mistyped one poisons the entry like a mistyped profile *)
    match Vbase.Json.member "rung" j with
    | None -> Some None
    | Some (Vbase.Json.Int r) when r >= 0 -> Some (Some r)
    | Some _ -> None
  in
  Some
    ( name,
      {
        e_answer = answer;
        e_detail = detail;
        e_bytes = bytes;
        e_time_s = time_s;
        e_profile = profile;
        e_cert_digest = cert_digest;
        e_rung = rung;
      } )

(* ----- open / lookup / store / flush ----- *)

let open_ (cfg : config) : t =
  let loaded = Vbase.Store.load ~dir:cfg.dir ~file:file_name ~schema:schema_version in
  let snapshot = Hashtbl.create 256 in
  let names = Hashtbl.create 256 in
  let dropped = ref loaded.Vbase.Store.dropped in
  List.iter
    (fun (fp, j) ->
      match entry_of_json j with
      | None -> incr dropped
      | Some (name, e) ->
        Hashtbl.replace snapshot fp (name, e);
        Hashtbl.replace names name fp)
    loaded.Vbase.Store.entries;
  {
    dir = cfg.dir;
    lock = Mutex.create ();
    snapshot;
    names;
    fresh = Hashtbl.create 64;
    hits = 0;
    misses = 0;
    invalidations = 0;
    entries_loaded = Hashtbl.length snapshot;
    entries_dropped = !dropped;
    corrupt_load = loaded.Vbase.Store.corrupt;
  }

let lookup t ~name ~fp ~profile_wanted ~certified_wanted =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.snapshot fp with
    | Some (_, e)
      when ((not profile_wanted) || e.e_profile <> None)
           && ((not certified_wanted)
              || e.e_answer <> Smt.Solver.Unsat
              || e.e_cert_digest <> None) ->
      t.hits <- t.hits + 1;
      Some e
    | Some _ ->
      (* entry present but missing what the run wants — unprofiled under a
         profiled run, or an uncertified Unsat under --certify: re-solve
         and upgrade; a miss, not an invalidation (nothing changed) *)
      t.misses <- t.misses + 1;
      None
    | None ->
      (* the name's loaded fingerprint, if any, necessarily differs from
         [fp] here — otherwise the snapshot lookup would have found it *)
      if Hashtbl.mem t.names name then t.invalidations <- t.invalidations + 1
      else t.misses <- t.misses + 1;
      None
  in
  Mutex.unlock t.lock;
  r

let rung_hint t ~fp =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.snapshot fp with
    | Some (_, e) -> e.e_rung
    | None -> None
  in
  Mutex.unlock t.lock;
  r

let store t ~name ~fp (e : entry) =
  Mutex.lock t.lock;
  if not (Hashtbl.mem t.fresh fp) then Hashtbl.replace t.fresh fp (name, e);
  Mutex.unlock t.lock

let stats t : stats =
  Mutex.lock t.lock;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      invalidations = t.invalidations;
      stores = Hashtbl.length t.fresh;
      entries_loaded = t.entries_loaded;
      entries_dropped = t.entries_dropped;
      corrupt_load = t.corrupt_load;
    }
  in
  Mutex.unlock t.lock;
  s

let flush t =
  Mutex.lock t.lock;
  let dirty = Hashtbl.length t.fresh > 0 || t.corrupt_load || t.entries_dropped > 0 in
  let r =
    if not dirty then Ok ()
    else begin
      let merged = Hashtbl.copy t.snapshot in
      Hashtbl.iter (fun fp ne -> Hashtbl.replace merged fp ne) t.fresh;
      let entries =
        Hashtbl.fold (fun fp (name, e) acc -> (fp, entry_to_json name e) :: acc) merged []
      in
      Vbase.Store.save ~dir:t.dir ~file:file_name ~schema:schema_version entries
    end
  in
  Mutex.unlock t.lock;
  r

let clear ~dir = Vbase.Store.wipe ~dir ~file:file_name

(* ----- fingerprinting ----- *)

(* Canonical rendering of the VIR surface a [by(compute)] solve can
   observe: the interpreter evaluates the assert expression against spec
   bodies and datatype declarations directly, bypassing the SMT encoding,
   so its cache key must cover that surface rather than the encoded
   terms. *)

let add_ty b ty = Buffer.add_string b (Vir.ty_to_string ty)

let binop_tag : Vir.binop -> string = function
  | Vir.Add -> "+"
  | Vir.Sub -> "-"
  | Vir.Mul -> "*"
  | Vir.Div -> "div"
  | Vir.Mod -> "mod"
  | Vir.Lt -> "<"
  | Vir.Le -> "<="
  | Vir.Gt -> ">"
  | Vir.Ge -> ">="
  | Vir.Eq -> "="
  | Vir.Ne -> "!="
  | Vir.And -> "and"
  | Vir.Or -> "or"
  | Vir.Implies -> "=>"
  | Vir.BitAnd -> "bitand"
  | Vir.BitOr -> "bitor"
  | Vir.BitXor -> "bitxor"
  | Vir.Shl -> "shl"
  | Vir.Shr -> "shr"

let rec add_expr b (e : Vir.expr) =
  let list tag xs =
    Buffer.add_char b '(';
    Buffer.add_string b tag;
    List.iter
      (fun x ->
        Buffer.add_char b ' ';
        add_expr b x)
      xs;
    Buffer.add_char b ')'
  in
  match e with
  | Vir.EVar x -> Buffer.add_string b x
  | Vir.EOld x ->
    Buffer.add_string b "(old ";
    Buffer.add_string b x;
    Buffer.add_char b ')'
  | Vir.EBool v -> Buffer.add_string b (if v then "true" else "false")
  | Vir.EInt n -> Buffer.add_string b (string_of_int n)
  | Vir.EUnop (Vir.Not, x) -> list "not" [ x ]
  | Vir.EUnop (Vir.Neg, x) -> list "neg" [ x ]
  | Vir.EBinop (op, x, y) -> list (binop_tag op) [ x; y ]
  | Vir.EIte (c, x, y) -> list "ite" [ c; x; y ]
  | Vir.ECall (f, xs) -> list ("call:" ^ f) xs
  | Vir.ECtor (d, v, xs) -> list (Printf.sprintf "ctor:%s.%s" d v) xs
  | Vir.EField (x, f) -> list ("field:" ^ f) [ x ]
  | Vir.EIs (x, v) -> list ("is:" ^ v) [ x ]
  | Vir.ESeq s -> add_seq b s
  | Vir.EForall (vars, trig, body) -> add_quant b "forall" vars trig body
  | Vir.EExists (vars, trig, body) -> add_quant b "exists" vars trig body

and add_seq b (s : Vir.seq_op) =
  let list tag xs =
    Buffer.add_char b '(';
    Buffer.add_string b tag;
    List.iter
      (fun x ->
        Buffer.add_char b ' ';
        add_expr b x)
      xs;
    Buffer.add_char b ')'
  in
  match s with
  | Vir.SeqEmpty ty ->
    Buffer.add_string b "(seq-empty ";
    add_ty b ty;
    Buffer.add_char b ')'
  | Vir.SeqLen x -> list "seq-len" [ x ]
  | Vir.SeqIndex (x, i) -> list "seq-index" [ x; i ]
  | Vir.SeqPush (x, v) -> list "seq-push" [ x; v ]
  | Vir.SeqSkip (x, k) -> list "seq-skip" [ x; k ]
  | Vir.SeqTake (x, k) -> list "seq-take" [ x; k ]
  | Vir.SeqUpdate (x, i, v) -> list "seq-update" [ x; i; v ]
  | Vir.SeqAppend (x, y) -> list "seq-append" [ x; y ]

and add_quant b kw vars trig body =
  Buffer.add_char b '(';
  Buffer.add_string b kw;
  Buffer.add_string b " (";
  List.iteri
    (fun i (x, ty) ->
      if i > 0 then Buffer.add_char b ' ';
      Buffer.add_string b x;
      Buffer.add_char b ':';
      add_ty b ty)
    vars;
  Buffer.add_char b ')';
  (match trig with
  | Vir.Term_auto -> ()
  | Vir.Term_explicit groups ->
    List.iter
      (fun group ->
        Buffer.add_string b " :pattern (";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ' ';
            add_expr b x)
          group;
        Buffer.add_char b ')')
      groups);
  Buffer.add_char b ' ';
  add_expr b body;
  Buffer.add_char b ')'

let compute_surface (prog : Vir.program) (expr : Vir.expr option) : string =
  let b = Buffer.create 1024 in
  List.iter
    (fun (d : Vir.datatype) ->
      Buffer.add_string b ("datatype " ^ d.Vir.dname);
      List.iter
        (fun (v, fields) ->
          Buffer.add_string b (" | " ^ v ^ "(");
          List.iteri
            (fun i (f, ty) ->
              if i > 0 then Buffer.add_char b ',';
              Buffer.add_string b f;
              Buffer.add_char b ':';
              add_ty b ty)
            fields;
          Buffer.add_char b ')')
        d.Vir.variants;
      Buffer.add_char b '\n')
    prog.Vir.datatypes;
  List.iter
    (fun (f : Vir.fndecl) ->
      match f.Vir.spec_body with
      | None -> ()
      | Some body ->
        Buffer.add_string b ("spec " ^ f.Vir.fname ^ "(");
        List.iteri
          (fun i (p : Vir.param) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b p.Vir.pname;
            Buffer.add_char b ':';
            add_ty b p.Vir.pty)
          f.Vir.params;
        Buffer.add_string b ") = ";
        add_expr b body;
        Buffer.add_char b '\n')
    prog.Vir.functions;
  (match expr with
  | None -> ()
  | Some e ->
    Buffer.add_string b "expr: ";
    add_expr b e;
    Buffer.add_char b '\n');
  Buffer.contents b

let hint_tag : Vir.proof_hint -> string = function
  | Vir.H_default -> "default"
  | Vir.H_bit_vector -> "bit_vector"
  | Vir.H_nonlinear -> "nonlinear"
  | Vir.H_integer_ring -> "integer_ring"
  | Vir.H_compute -> "compute"

let fingerprint ?(analyze = false) ?ladder ~(profile : Profiles.t) ~(prog : Vir.program)
    ~(context : Smt.Term.t list) (vc : Encode.vc) : string =
  let s = Smt.Canon.create () in
  (* /2: the entry schema gained the winning-rung key and ladder-salted
     keys joined the space — pre-ladder entries must re-solve rather than
     replay under a key computed by different rules. *)
  Smt.Canon.add_string s "verus-cache-fp/2";
  (* The certificate schema is part of the key: bumping the cert format
     must invalidate every entry, or a warm hit could claim its stored
     digest names a certificate the current kernel would accept. *)
  Smt.Canon.add_string s ("cert-schema=" ^ Smt.Cert.schema_version);
  (* Prescreened solves ship a different query (derived facts appended,
     vacuous hypotheses dropped), so their entries must not alias plain
     ones; the analysis version is in the salt so a Vflow bump re-solves
     rather than replaying stale residue. *)
  if analyze then Smt.Canon.add_string s ("analyze=" ^ Vflow.version);
  (* An escalation ladder changes which configurations may produce the
     answer, so entries recorded under one ladder never satisfy a lookup
     under another (or under no ladder at all). *)
  (match ladder with
  | None -> ()
  | Some lfp -> Smt.Canon.add_string s ("ladder=" ^ lfp));
  Smt.Canon.add_string s (Profiles.solver_fingerprint profile);
  Smt.Canon.add_string s ("hint=" ^ hint_tag vc.Encode.vc_hint);
  (match vc.Encode.vc_hint with
  | Vir.H_compute -> Smt.Canon.add_string s (compute_surface prog vc.Encode.vc_expr)
  | _ -> ());
  Smt.Canon.add_string s "context:";
  List.iter (Smt.Canon.add_term s) context;
  Smt.Canon.add_string s "hyps:";
  List.iter (Smt.Canon.add_term s) vc.Encode.vc_hyps;
  Smt.Canon.add_string s "goal:";
  Smt.Canon.add_term s vc.Encode.vc_goal;
  Vbase.Hash.string128 (Smt.Canon.contents s)

(* ----- offline inspection ----- *)

type disk_stats = {
  ds_exists : bool;
  ds_entries : int;
  ds_dropped : int;
  ds_corrupt : bool;
  ds_bytes : int;
  ds_answers : (string * int) list;
}

let disk_stats ~dir : disk_stats =
  let path = Filename.concat dir file_name in
  let exists = Sys.file_exists path in
  let bytes =
    if not exists then 0
    else try In_channel.with_open_bin path In_channel.length |> Int64.to_int with Sys_error _ -> 0
  in
  let loaded = Vbase.Store.load ~dir ~file:file_name ~schema:schema_version in
  let dropped = ref loaded.Vbase.Store.dropped in
  let counts = Hashtbl.create 4 in
  List.iter
    (fun (_, j) ->
      match entry_of_json j with
      | None -> incr dropped
      | Some (_, e) ->
        let k = answer_kind e.e_answer in
        Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0))
    loaded.Vbase.Store.entries;
  let answers =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    ds_exists = exists;
    ds_entries = List.fold_left (fun acc (_, n) -> acc + n) 0 answers;
    ds_dropped = !dropped;
    ds_corrupt = loaded.Vbase.Store.corrupt;
    ds_bytes = bytes;
    ds_answers = answers;
  }
