open Vir

(* Only datatype values are affine; integers and bools are Copy, and Seq is
   a ghost (spec-level) type, also Copy. *)
let affine = function TData _ -> true | TBool | TInt _ | TSeq _ -> false

type lstate = (string, [ `Live | `Moved ]) Hashtbl.t

let fail fmt = Printf.ksprintf failwith fmt

(* Moves produced by evaluating an expression in exec position: variables
   consumed by being stored into constructors or passed by value.  Reading
   a field or testing a variant borrows (no move); so does mentioning a
   variable in a spec position (ghost code never consumes). *)
let rec moves_of_expr (p : program) env (e : expr) : string list =
  match e with
  | EVar x -> (
    match List.assoc_opt x env with
    | Some t when affine t -> [ x ]
    | _ -> [])
  | ECtor (_, _, args) -> List.concat_map (moves_of_expr p env) args
  | EIte (c, a, b) ->
    (* Condition only borrows; both branches may move. *)
    moves_of_expr p env c @ moves_of_expr p env a @ moves_of_expr p env b
  | EField (inner, _) | EIs (inner, _) | EUnop (_, inner) ->
    (* Borrow: traverse to find nested ctor arguments, but a plain
       variable under a borrow is not moved. *)
    (match inner with EVar _ -> [] | _ -> moves_of_expr p env inner)
  | EBinop (_, a, b) -> moves_of_expr p env a @ moves_of_expr p env b
  | ECall (_, _) -> [] (* spec call: ghost, borrows only *)
  | ESeq _ -> [] (* ghost *)
  | EForall _ | EExists _ -> []
  | EOld _ | EBool _ | EInt _ -> []

let use_of_expr (p : program) env e =
  (* All affine variables read by the expression (for liveness checks). *)
  let rec go acc = function
    | EVar x -> if List.mem_assoc x env then x :: acc else acc
    | EOld x -> x :: acc
    | EBool _ | EInt _ -> acc
    | EUnop (_, a) -> go acc a
    | EBinop (_, a, b) -> go (go acc a) b
    | EIte (a, b, c) -> go (go (go acc a) b) c
    | ECall (_, args) | ECtor (_, _, args) -> List.fold_left go acc args
    | EField (a, _) | EIs (a, _) -> go acc a
    | ESeq op -> (
      match op with
      | SeqEmpty _ -> acc
      | SeqLen a -> go acc a
      | SeqIndex (a, b) | SeqPush (a, b) | SeqSkip (a, b) | SeqTake (a, b) | SeqAppend (a, b) ->
        go (go acc a) b
      | SeqUpdate (a, b, c) -> go (go (go acc a) b) c)
    | EForall (_, _, b) | EExists (_, _, b) -> go acc b
  in
  ignore p;
  go [] e

let require_live st env e where_ =
  List.iter
    (fun x ->
      match (List.assoc_opt x env, Hashtbl.find_opt st x) with
      | Some t, Some `Moved when affine t -> fail "use of moved value %s in %s" x where_
      | _ -> ())
    (use_of_expr { datatypes = []; functions = [] } env e)

let apply_moves st env e where_ =
  List.iter
    (fun x ->
      match Hashtbl.find_opt st x with
      | Some `Moved -> fail "double move of %s in %s" x where_
      | _ -> Hashtbl.replace st x `Moved)
    (moves_of_expr { datatypes = []; functions = [] } env e);
  ignore where_

let copy_state st =
  let c = Hashtbl.create 16 in
  Hashtbl.iter (fun k v -> Hashtbl.replace c k v) st;
  c

let join_states st a b =
  (* Moved in either branch => moved after. *)
  Hashtbl.iter
    (fun k v ->
      match (v, Hashtbl.find_opt b k) with
      | `Moved, _ | _, Some `Moved -> Hashtbl.replace st k `Moved
      | _ -> Hashtbl.replace st k `Live)
    a

let rec check_stmts p st env stmts =
  match stmts with
  | [] -> env
  | s :: rest ->
    let env = check_stmt p st env s in
    check_stmts p st env rest

and check_stmt p (st : lstate) env s =
  match s with
  | SLet (x, t, e) ->
    require_live st env e ("let " ^ x);
    apply_moves st env e ("let " ^ x);
    Hashtbl.replace st x `Live;
    (x, t) :: env
  | SAssign (x, e) ->
    require_live st env e ("assign " ^ x);
    apply_moves st env e ("assign " ^ x);
    (* Overwriting re-initializes x, even if moved. *)
    Hashtbl.replace st x `Live;
    env
  | SIf (c, a, b) ->
    require_live st env c "if condition";
    let sa = copy_state st and sb = copy_state st in
    ignore (check_stmts p sa env a);
    ignore (check_stmts p sb env b);
    join_states st sa sb;
    env
  | SWhile { cond; invariants = _; decreases = _; body } ->
    require_live st env cond "while condition";
    (* The body must leave the ownership state unchanged for variables
       declared outside (it runs an unknown number of times). *)
    let sb = copy_state st in
    let env' = check_stmts p sb env body in
    ignore env';
    Hashtbl.iter
      (fun x v ->
        match (Hashtbl.find_opt st x, v) with
        | Some `Live, `Moved -> fail "loop body moves %s declared outside the loop" x
        | _ -> ())
      sb;
    env
  | SCall (binding, f, args) ->
    let callee = find_fn p f in
    List.iter2
      (fun (prm : param) a ->
        require_live st env a ("call " ^ f);
        if prm.pmut then () (* &mut borrows, stays live *)
        else if affine prm.pty then apply_moves st env a ("call " ^ f))
      callee.params args;
    (match binding with
    | Some x ->
      Hashtbl.replace st x `Live;
      (match callee.ret with Some (_, t) -> (x, t) :: env | None -> env)
    | None -> env)
  | SAssert (_, _) | SAssume _ ->
    (* Ghost position: specification code refers to the mathematical value
       of a variable, not the resource, so moved values may be mentioned
       (they were captured by the enclosing proof context). *)
    env
  | SReturn eo ->
    (match eo with
    | Some e ->
      require_live st env e "return";
      apply_moves st env e "return"
    | None -> ());
    env

let check_fn p fd =
  match (fd.fmode, fd.body) with
  | Exec, Some stmts ->
    let st : lstate = Hashtbl.create 16 in
    let env = List.map (fun (prm : param) -> (prm.pname, prm.pty)) fd.params in
    List.iter (fun (prm : param) -> Hashtbl.replace st prm.pname `Live) fd.params;
    ignore (check_stmts p st env stmts)
  | _ -> ()

let check_program p =
  let errors = ref [] in
  List.iter
    (fun fd ->
      try check_fn p fd
      with Failure msg -> errors := Printf.sprintf "%s: %s" fd.fname msg :: !errors)
    p.functions;
  if !errors = [] then Ok () else Error (List.rev !errors)
