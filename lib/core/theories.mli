(** SMT theory encodings for VIR types: sequences, algebraic datatypes, and
    the Dafny-style heap.

    Everything here is expressed as uninterpreted functions plus quantified
    axioms, which is how SMT program verifiers actually encode these
    theories; the instantiation cost of these axioms under different trigger
    policies is precisely what the paper's §3.1 performance results measure.
    With [curated = true] the axioms carry the hand-picked minimal triggers
    a Verus-style tool ships; otherwise trigger selection is left to the
    solver policy. *)

type seq_syms = {
  s_sort : Smt.Sort.t;
  s_len : Smt.Term.sym;
  s_index : Smt.Term.sym;
  s_empty : Smt.Term.sym;
  s_push : Smt.Term.sym;
  s_skip : Smt.Term.sym;
  s_take : Smt.Term.sym;
  s_update : Smt.Term.sym;
  s_append : Smt.Term.sym;
}

val sort_of_ty : heap:bool -> Vir.ty -> Smt.Sort.t
(** With [heap = true], datatype values are references ([Ref]). *)

val ref_sort : Smt.Sort.t
val heap_sort : Smt.Sort.t

val seq_syms_for : heap:bool -> Vir.ty -> seq_syms
(** Symbols of the sequence theory at the given element type. *)

val seq_axioms : curated:bool -> heap:bool -> Vir.ty -> Smt.Term.t list

val seq_ext_hypothesis : heap:bool -> Vir.ty -> Smt.Term.t -> Smt.Term.t -> Smt.Term.t
(** The instantiated extensionality fact for two sequence terms: pointwise
    equality at equal length implies equality.  The encoder injects this for
    [=~=]-style assertions (matching Verus's explicit extensional-equality
    operator). *)

(** Ownership-encoding datatype symbols. *)
type data_syms = {
  d_sort : Smt.Sort.t;
  d_ctors : (string * Smt.Term.sym) list;  (** variant -> constructor *)
  d_testers : (string * Smt.Term.sym) list;
  d_selectors : (string * Smt.Term.sym) list;  (** field -> selector *)
}

val data_syms_for : Vir.datatype -> data_syms
val data_axioms : curated:bool -> Vir.datatype -> Smt.Term.t list

val box_sort : Smt.Sort.t

val box_syms : Smt.Sort.t -> Smt.Term.sym * Smt.Term.sym
(** (box, unbox) functions for a stored value sort — the heap is
    polymorphic, Dafny-style. *)

(** Heap-encoding symbols for a datatype: per-field read/write functions
    over a global heap (boxed values), plus a variant tag. *)
type heap_syms = {
  h_tag_rd : Smt.Term.sym;
  h_tag_wr : Smt.Term.sym;
  h_fields : (string * (Smt.Term.sym * Smt.Term.sym)) list;  (** field -> (rd, wr) *)
}

val heap_syms_for : Vir.program -> Vir.datatype -> heap_syms

val alloc_sym : Smt.Term.sym
(** Allocatedness predicate (Dafny's [$IsAlloc]): freshness of allocations
    against pre-existing references flows through it. *)

val heap_axioms : curated:bool -> Vir.program -> Smt.Term.t list
(** The full frame-axiom matrix over every field of every datatype in the
    program (quadratic, as in Dafny-style encodings). *)
