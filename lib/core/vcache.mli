(** Vcache — persistent, content-addressed incremental verification.

    Re-verifying an unchanged program should cost file I/O, not SMT time
    (cf. F*'s hint database and Dafny's verification caching).  Vcache
    keys every proof obligation by a {e fingerprint}: a 128-bit digest of
    the canonical serialization ({!Smt.Canon}) of everything the solve's
    answer depends on —

    - the post-pruning context (theory axioms and spec-function
      definitions actually in scope for this VC),
    - the VC's hypotheses and goal,
    - the proof hint (default / EPR path / §3.3 custom mode), and for
      [by(compute)] obligations the interpreter-visible program surface
      (spec bodies and datatypes),
    - the solver-relevant profile facets and the full
      {!Smt.Solver.budget} ({!Profiles.solver_fingerprint}),
    - the certificate schema version ({!Smt.Cert.schema_version}), so a
      certificate-format bump invalidates every entry rather than letting
      a stored digest claim a certificate the current kernel never saw.

    Because the context is fingerprinted {e after} pruning, renaming or
    editing a function the VC does not depend on leaves the fingerprint —
    and the cache hit — intact; touching a spec function invalidates
    exactly the VCs whose pruned context contains its definition.  The
    soundness argument is containment: a hit is only valid because the
    fingerprint covers every input of the solve (see DESIGN.md,
    "Incremental verification").

    Storage is one {!Vbase.Store} document ([verus-cache/1]) per cache
    directory: atomically replaced (write-temp-rename), corruption-
    tolerant (truncated/garbage files and malformed entries degrade to
    misses, never failures), deterministically serialized (entries sorted
    by fingerprint).

    Lookups consult only the snapshot loaded at {!open_} — entries stored
    during the current run are kept aside until {!flush} — so hit/miss
    statistics are identical however many workers race ([jobs > 1]). *)

val schema_version : string
(** ["verus-cache/1"] — the on-disk document schema. *)

val file_name : string
(** The document's file name inside the cache directory. *)

(** Where the cache lives. *)
type config = { dir : string }

(** What a cached solve remembers.  [e_detail], [e_bytes] and [e_time_s]
    reproduce the original {!Driver.vc_result} verbatim on a hit (so warm
    results are byte-identical to the cold run that filled the cache);
    [e_profile] is present when the filling run profiled. *)
type entry = {
  e_answer : Smt.Solver.answer;
  e_detail : string;
  e_bytes : int;
  e_time_s : float;  (** wall-clock of the original solve *)
  e_profile : Smt.Profile.t option;
  e_cert_digest : string option;
      (** {!Smt.Cert.digest} of the kernel-checked certificate the filling
          run produced (present only when it ran with [--certify] and the
          answer is Unsat) — what makes a warm hit a checked claim *)
  e_rung : int option;
      (** the escalation-ladder rung that produced the answer (present
          only when the filling run had an explicit ladder) — what lets a
          later cold-ish run jump straight to the winning rung *)
}

(** Per-run counters, deterministic under [jobs > 1]. *)
type stats = {
  hits : int;
  misses : int;  (** obligations never seen before *)
  invalidations : int;
      (** obligations whose {e name} was cached but whose fingerprint
          changed — the "this edit re-solved N VCs" number *)
  stores : int;  (** distinct new entries recorded this run *)
  entries_loaded : int;  (** well-formed entries in the loaded snapshot *)
  entries_dropped : int;  (** malformed entries skipped at load *)
  corrupt_load : bool;  (** the whole document was unusable at load *)
}

type t

val open_ : config -> t
(** Load the snapshot from [config.dir].  Never fails: missing, truncated
    or corrupt stores open as empty caches (see [corrupt_load]/
    [entries_dropped] in {!stats}). *)

val fingerprint :
  ?analyze:bool ->
  ?ladder:string ->
  profile:Profiles.t ->
  prog:Vir.program ->
  context:Smt.Term.t list ->
  Encode.vc ->
  string
(** The VC's cache key, as described above.  [context] must cover every
    axiom any attempt may ship: the post-pruning context normally, the
    full axiom set when a widening ladder ([Vladder.Ladder.widens]) runs
    under a pruning profile (containment is the soundness argument).
    [analyze] (default false) salts the key with {!Vflow.version}:
    prescreened runs ship a modified query (derived facts, dropped
    vacuous hypotheses), so their entries never alias plain ones and a
    Vflow version bump invalidates them.  [ladder] (the
    {!Vladder.Ladder.fingerprint} of an explicit escalation ladder)
    salts the key so entries recorded under one ladder never satisfy a
    lookup under another — or under no ladder at all. *)

val lookup :
  t -> name:string -> fp:string -> profile_wanted:bool -> certified_wanted:bool -> entry option
(** Consult the snapshot.  [Some] and a hit is counted only when the entry
    exists {e and} carries a profile if [profile_wanted] (an unprofiled
    entry cannot serve a profiled run; it re-solves and upgrades) {e and},
    if [certified_wanted], any Unsat entry carries a certificate digest
    (an uncertified Unsat cannot serve a [--certify] run; it re-solves,
    re-checks and upgrades).  On [None], a miss or — when [name] was
    cached under a different fingerprint — an invalidation is counted. *)

val store : t -> name:string -> fp:string -> entry -> unit
(** Record a freshly solved obligation.  Not visible to {!lookup} until
    the next {!open_} (run-snapshot isolation; see module doc). *)

val rung_hint : t -> fp:string -> int option
(** The winning rung a snapshot entry under [fp] recorded, if any —
    consulted (without touching the hit/miss counters) when {!lookup}
    gated the entry out, e.g. an unprofiled entry under a profiled run:
    the answer must be re-derived, but the climb can still start at the
    rung that won last time. *)

val stats : t -> stats

val flush : t -> (unit, string) result
(** Merge fresh entries into the snapshot and atomically rewrite the
    store (also after corruption or dropped entries, repairing the file).
    No-op when nothing changed.  I/O failures are reported, not raised. *)

val clear : dir:string -> (unit, string) result
(** Delete the store document (keeps the directory). *)

(** Offline summary of a cache directory, for [verus_cli cache stats]. *)
type disk_stats = {
  ds_exists : bool;  (** a store document is present *)
  ds_entries : int;
  ds_dropped : int;  (** malformed entries in the document *)
  ds_corrupt : bool;  (** document present but unusable *)
  ds_bytes : int;  (** document size on disk *)
  ds_answers : (string * int) list;
      (** entry count per answer kind (["unsat"], ["sat"], ["unknown"]),
          sorted by kind *)
}

val disk_stats : dir:string -> disk_stats
