type mem_encoding = Ownership | Heap | Prophecy

type t = {
  name : string;
  encoding : mem_encoding;
  trigger_policy : Smt.Triggers.policy;
  curated_triggers : bool;
  pruning : bool;
  wrapper_depth : int;
  recheck_ownership : bool;
  epr_only : bool;
  solver_config : Smt.Solver.config;
}

let base_solver = Smt.Solver.default_config
let base_budget = Smt.Solver.default_budget

let verus =
  {
    name = "Verus";
    encoding = Ownership;
    trigger_policy = Smt.Triggers.Conservative;
    curated_triggers = true;
    pruning = true;
    wrapper_depth = 0;
    recheck_ownership = false;
    epr_only = false;
    solver_config = { base_solver with trigger_policy = Smt.Triggers.Conservative };
  }

let dafny =
  {
    name = "Dafny";
    encoding = Heap;
    trigger_policy = Smt.Triggers.Liberal;
    curated_triggers = true;
    pruning = false;
    wrapper_depth = 0;
    recheck_ownership = false;
    epr_only = false;
    solver_config = { base_solver with trigger_policy = Smt.Triggers.Conservative; budget = { base_budget with max_rounds = 60; max_instances_per_quant = 2000 } };
  }

let fstar =
  {
    name = "F*/Low*";
    encoding = Heap;
    trigger_policy = Smt.Triggers.Liberal;
    curated_triggers = true;
    pruning = false;
    wrapper_depth = 2;
    recheck_ownership = false;
    epr_only = false;
    solver_config = { base_solver with trigger_policy = Smt.Triggers.Conservative; budget = { base_budget with max_rounds = 80; max_instances_per_quant = 2000 } };
  }

let prusti =
  {
    name = "Prusti";
    encoding = Ownership;
    trigger_policy = Smt.Triggers.Liberal;
    curated_triggers = true;
    pruning = false;
    (* Viper encodes values through snapshot functions: definitional
       indirection on every value the solver must see through. *)
    wrapper_depth = 3;
    recheck_ownership = true;
    epr_only = false;
    solver_config = { base_solver with trigger_policy = Smt.Triggers.Liberal; budget = { base_budget with max_rounds = 30; max_instances_per_quant = 1000 } };
  }

let creusot =
  {
    name = "Creusot";
    encoding = Prophecy;
    trigger_policy = Smt.Triggers.Conservative;
    curated_triggers = false;
    pruning = false;
    wrapper_depth = 0;
    recheck_ownership = false;
    epr_only = false;
    solver_config = { base_solver with trigger_policy = Smt.Triggers.Conservative };
  }

let ivy =
  {
    name = "Ivy";
    encoding = Ownership;
    trigger_policy = Smt.Triggers.Conservative;
    curated_triggers = true;
    pruning = true;
    wrapper_depth = 0;
    recheck_ownership = false;
    epr_only = true;
    solver_config = base_solver;
  }

let all = [ verus; dafny; fstar; prusti; creusot; ivy ]
let by_name n = List.find_opt (fun p -> String.equal p.name n) all

let liberal p =
  {
    p with
    name = p.name ^ "-liberal";
    trigger_policy = Smt.Triggers.Liberal;
    curated_triggers = false;
    solver_config = { p.solver_config with trigger_policy = Smt.Triggers.Liberal };
  }

let budget p = p.solver_config.Smt.Solver.budget

let with_budget b p =
  { p with solver_config = { p.solver_config with Smt.Solver.budget = b } }

(* A canonical rendering of everything about a profile that can change a
   VC's *answer* beyond what the VC terms themselves already encode: the
   solving path (EPR vs default), the trigger policies (they steer
   E-matching and Vlint-visible trigger selection), and the search
   budgets.  The display name is deliberately excluded — renaming a
   profile must not invalidate a verification cache built under it.
   Encoding, wrapper depth and pruning need no mention: they are fully
   reflected in the encoded terms and the materialized context. *)
let solver_fingerprint p =
  Printf.sprintf "epr=%b;policy=%s;axpolicy=%s;curated=%b;%s"
    p.epr_only
    (match p.solver_config.Smt.Solver.trigger_policy with
    | Smt.Triggers.Conservative -> "conservative"
    | Smt.Triggers.Liberal -> "liberal")
    (match p.trigger_policy with
    | Smt.Triggers.Conservative -> "conservative"
    | Smt.Triggers.Liberal -> "liberal")
    p.curated_triggers
    (Smt.Solver.budget_fingerprint (budget p))
