type mem_encoding = Ownership | Heap | Prophecy

type t = {
  name : string;
  encoding : mem_encoding;
  trigger_policy : Smt.Triggers.policy;
  curated_triggers : bool;
  pruning : bool;
  wrapper_depth : int;
  recheck_ownership : bool;
  epr_only : bool;
  solver_config : Smt.Solver.config;
}

let base_solver = Smt.Solver.default_config

let verus =
  {
    name = "Verus";
    encoding = Ownership;
    trigger_policy = Smt.Triggers.Conservative;
    curated_triggers = true;
    pruning = true;
    wrapper_depth = 0;
    recheck_ownership = false;
    epr_only = false;
    solver_config = { base_solver with trigger_policy = Smt.Triggers.Conservative };
  }

let dafny =
  {
    name = "Dafny";
    encoding = Heap;
    trigger_policy = Smt.Triggers.Liberal;
    curated_triggers = true;
    pruning = false;
    wrapper_depth = 0;
    recheck_ownership = false;
    epr_only = false;
    solver_config =
      {
        base_solver with
        trigger_policy = Smt.Triggers.Conservative;
        max_rounds = 60;
        max_instances_per_quant = 2000;
      };
  }

let fstar =
  {
    name = "F*/Low*";
    encoding = Heap;
    trigger_policy = Smt.Triggers.Liberal;
    curated_triggers = true;
    pruning = false;
    wrapper_depth = 2;
    recheck_ownership = false;
    epr_only = false;
    solver_config =
      {
        base_solver with
        trigger_policy = Smt.Triggers.Conservative;
        max_rounds = 80;
        max_instances_per_quant = 2000;
      };
  }

let prusti =
  {
    name = "Prusti";
    encoding = Ownership;
    trigger_policy = Smt.Triggers.Liberal;
    curated_triggers = true;
    pruning = false;
    (* Viper encodes values through snapshot functions: definitional
       indirection on every value the solver must see through. *)
    wrapper_depth = 3;
    recheck_ownership = true;
    epr_only = false;
    solver_config =
      {
        base_solver with
        trigger_policy = Smt.Triggers.Liberal;
        max_rounds = 30;
        max_instances_per_quant = 1000;
      };
  }

let creusot =
  {
    name = "Creusot";
    encoding = Prophecy;
    trigger_policy = Smt.Triggers.Conservative;
    curated_triggers = false;
    pruning = false;
    wrapper_depth = 0;
    recheck_ownership = false;
    epr_only = false;
    solver_config = { base_solver with trigger_policy = Smt.Triggers.Conservative };
  }

let ivy =
  {
    name = "Ivy";
    encoding = Ownership;
    trigger_policy = Smt.Triggers.Conservative;
    curated_triggers = true;
    pruning = true;
    wrapper_depth = 0;
    recheck_ownership = false;
    epr_only = true;
    solver_config = base_solver;
  }

let all = [ verus; dafny; fstar; prusti; creusot; ivy ]
let by_name n = List.find_opt (fun p -> String.equal p.name n) all

let liberal p =
  {
    p with
    name = p.name ^ "-liberal";
    trigger_policy = Smt.Triggers.Liberal;
    curated_triggers = false;
    solver_config = { p.solver_config with trigger_policy = Smt.Triggers.Liberal };
  }
