(** The distributed lock in EPR mode (§4.1.2/§4.1.3): the same mutual-
    exclusion proof as {!Bench_programs.dlock_default}, but over an
    uninterpreted node sort with relational state, decided fully
    automatically by {!Smt.Epr} — the Ivy-style side of the comparison.

    Two models are checked:
    - the direct hand-off ([grant]): the holder passes the lock;
    - the message-passing protocol with epochs (IronFleet-style): a holder
      sends a transfer message at a higher epoch; a node accepts a message
      for an epoch newer than any it has held, making the "at most one
      holder per epoch" property inductive. *)

type obligation = { name : string; answer : Smt.Solver.answer; time_s : float }

val run : unit -> obligation list
(** Check fragment membership and decide each obligation by grounding;
    [answer = Unsat] means the invariant is inductive. *)

val all_proved : obligation list -> bool

val boilerplate_lines : int
(** Size of the relational abstraction (the §4.1.3 "~100 lines of
    straightforward boilerplate"). *)
