(** Concrete interpreter for VIR.

    Three uses:
    - [by(compute)] proofs (§3.3): a ground specification expression is
      evaluated to [true] by computation instead of being sent to the
      solver;
    - differential testing: exec functions run on random inputs that
      satisfy their preconditions, and the postconditions are checked
      dynamically — a soundness cross-check on the VC encoder;
    - the runnable examples.

    Spec quantifiers are evaluated only over bounded integer ranges
    supplied by [quant_bound]; anything else raises. *)

type value =
  | VBool of bool
  | VInt of Vbase.Bigint.t
  | VSeq of value list
  | VData of string * value list  (** variant name, field values *)

exception Runtime_error of string
exception Assertion_failed of string

val value_equal : value -> value -> bool
val value_to_string : value -> string

val eval_expr :
  ?quant_bound:int -> Vir.program -> (string * value) list -> Vir.expr -> value
(** Evaluate a (spec or exec) expression under an environment.  [EOld] and
    unbounded quantifiers raise [Runtime_error]; quantified integer
    variables range over [-quant_bound, quant_bound] (default 0: raise). *)

val run_fn :
  ?check_contracts:bool ->
  Vir.program ->
  string ->
  value list ->
  value option * (string * value) list
(** Execute an exec/proof function.  Returns (result, final values of &mut
    parameters by name).  With [check_contracts] (default true), requires/
    ensures/invariants/asserts are evaluated dynamically and raise
    [Assertion_failed] when violated. *)
