(** The verification driver: assembles per-VC contexts (theory axioms,
    spec-function definitions, with or without pruning), dispatches VCs to
    the right engine (default solver, EPR decision procedure, or one of the
    §3.3 custom modes), and reports results with the timing/query-size
    statistics the paper's tables are built from.

    With [~profile:true] the driver additionally retains every solve's
    {!Smt.Profile.t} and folds them into per-function and per-program
    hot-spot tables ({!program_profile}): top quantifiers by instantiation
    count and per-axiom context-bytes attribution.  Profiling off is the
    default and costs nothing — no per-VC profile records are allocated or
    retained. *)

module Rung = Vladder.Rung
(** Re-export: the escalation-ladder rung API ({!Vladder.Rung}), so
    driver callers name rungs without a separate vladder dependency. *)

module Ladder = Vladder.Ladder
(** Re-export: the escalation-ladder API ({!Vladder.Ladder}). *)

(** Per-VC observability, retained only under [~profile:true]. *)
type vc_profile = {
  vp_smt : Smt.Profile.t;
      (** the solver-side profile of this VC's solve ({!Smt.Profile.empty}
          for §3.3 custom-mode VCs, which bypass the main solver loop) *)
  vp_axioms : int list;
      (** sorted indices into [Encode.program_axioms] of the axioms this
          VC's context included (post-pruning) — the raw material of the
          per-axiom context-bytes attribution *)
}

(** Where this obligation's verdict stands with respect to the {!Vcheck}
    certificate kernel (the [--certify] pipeline). *)
type cert_status =
  | Cert_off
      (** certification not in play for this result: the run did not ask
          for it, or the answer was not [Unsat] (nothing to certify) *)
  | Cert_checked of string
      (** fresh solve; the certificate replayed [Checked] — the payload is
          its {!Smt.Cert.digest} (also stored in the cache entry) *)
  | Cert_cached of string
      (** warm hit whose entry carries the digest of a certificate the
          filling run checked — a hit that remains a checked claim *)
  | Cert_uncertified_hit
      (** warm hit on a certify-off run whose entry has no certificate
          digest; harmless, but what lint's VL034 flags *)
  | Cert_rejected of string * string
      (** the kernel rejected the certificate ([CKxxx] code, reason) — the
          obligation is demoted to a failure ([VC003]) *)
  | Cert_unavailable of string
      (** [Unsat] under [--certify] but no certificate arrived; demoted
          like a rejection (fail safe) *)

(** Which rung of the escalation ladder produced this verdict. *)
type vc_source =
  | Src_solver  (** a fresh solver run (default SMT, EPR, or a §3.3 mode) *)
  | Src_prescreen
      (** discharged by the {!Vflow} abstract-interpretation prescreen
          (rung 0) — no solver query was built, [vcr_bytes = 0].  Only
          possible under [Config.analyze] and never under [certify]
          (the prescreen emits no replayable certificate, so certified
          runs demote it to an ordinary SMT solve) *)
  | Src_cache  (** a warm {!Vcache} hit replaying a previous solve *)

(** Outcome of one proof obligation. *)
type vc_result = {
  vcr_name : string;  (** obligation name, e.g. ["push: ensures view"] *)
  vcr_answer : Smt.Solver.answer;  (** [Unsat] means proved *)
  vcr_time_s : float;  (** wall-clock for this obligation *)
  vcr_bytes : int;  (** context + goal printed size *)
  vcr_detail : string;  (** mode-specific info (instances, phase times) *)
  vcr_prof : vc_profile option;  (** [Some] iff profiling was requested *)
  vcr_cert : cert_status;
  vcr_source : vc_source;
      (** provenance only — excluded from {!result_digest}, so cold and
          warm runs (and prescreened vs. plain ones that agree) digest
          equally *)
  vcr_rung : int option;
      (** the escalation-ladder rung that produced the answer; [Some] iff
          the run had an explicit [Config.ladder] (a cache hit replays the
          filling run's winning rung).  Provenance only — excluded from
          {!result_digest} like [vcr_source] *)
  vcr_rungs_tried : int list;
      (** the rung indices attempted for this obligation, in order ([[]]
          for implicit-ladder runs, prescreen discharges and cache hits);
          non-adjacent consecutive entries mark a VL010/churn steering
          skip.  Provenance only — excluded from {!result_digest} *)
  vcr_prescreen_refuted : bool;
      (** the {!Vflow} prescreen found an abstract counterexample for this
          obligation (advisory; the solver still ran) — the trigger of the
          driver-emitted VL047 info lint.  Excluded from {!result_digest} *)
}

(** Outcome of all obligations of one function. *)
type fn_result = {
  fnr_name : string;
  fnr_vcs : vc_result list;  (** in encoding order, however they were scheduled *)
  fnr_ok : bool;  (** all VCs proved *)
  fnr_time_s : float;
      (** sum of the per-VC solve times — compute cost, not wall-clock,
          so it is stable whether the obligations ran back-to-back on one
          domain or interleaved across a pool *)
  fnr_bytes : int;
  fnr_prof : Smt.Profile.t option;
      (** merge of the function's per-VC solver profiles ([Some] iff
          profiling was requested) *)
}

(** Context-size attribution for one axiom of [Encode.program_axioms]. *)
type axiom_cost = {
  ac_index : int;  (** position in [Encode.program_axioms] (stable id) *)
  ac_label : string;  (** trigger-pattern label ({!Smt.Profile.label_of}) *)
  ac_heads : string list;  (** trigger head symbols, sorted *)
  ac_self_bytes : int;  (** printed size of the axiom itself *)
  ac_contexts : int;  (** number of profiled VC contexts that included it *)
  ac_bytes : int;  (** [ac_self_bytes * ac_contexts]: total bytes shipped *)
}

(** Program-level aggregate: the hot-spot tables behind
    [verus_cli profile]. *)
type program_profile = {
  pp_smt : Smt.Profile.t;
      (** all per-VC solver profiles merged; [pp_smt.quants] is the top-k
          table source, hottest first, deterministically ordered (stable
          under [jobs > 1]) *)
  pp_axiom_costs : axiom_cost list;
      (** per-axiom context-bytes attribution, sorted by [ac_bytes]
          descending then [ac_index] *)
  pp_vcs : int;  (** number of profiled VCs aggregated *)
}

(** Per-run escalation-ladder observability, rebuilt deterministically
    from the per-VC provenance fields — identical whatever scheduled the
    obligations. *)
type ladder_stats = {
  ls_ladder : string;  (** the ladder's display name *)
  ls_rungs : int;
  ls_attempts : int array;  (** solver attempts per rung (length [ls_rungs]) *)
  ls_wins : int array;
      (** verdicts produced per rung, cache hits included (their recorded
          winning rung counts) *)
  ls_escalations : int;  (** attempts beyond each obligation's first *)
  ls_steered : int;
      (** escalations that skipped a rung on the VL010/churn signal *)
  ls_cache_hits : int;  (** obligations settled by the warm cache *)
  ls_hint_starts : int;
      (** obligations whose climb started above rung 0 on a recorded
          winning-rung hint; a fully warm run has zero (hits need no
          attempts), so any wasted lower-rung attempt shows up here *)
}

(** Result of verifying a whole program under one profile. *)
type program_result = {
  pr_profile : string;  (** the framework profile's name *)
  pr_fns : fn_result list;
  pr_ok : bool;
  pr_time_s : float;
  pr_bytes : int;
  pr_front_end_errors : string list;
      (** type / ownership / EPR-fragment rejections (empty when verified) *)
  pr_lint : Vlint.diag list;
      (** static-analysis findings; populated when [verify_program] was
          called with [~lint:Lint_warn] or [~lint:Lint_strict] *)
  pr_prof : program_profile option;
      (** [Some] iff the run profiled ([Config.profile = true]) and
          verification reached the SMT stage *)
  pr_cache : Vcache.stats option;
      (** hit/miss/invalidation counters, [Some] iff a cache was configured
          and verification reached the SMT stage *)
  pr_ladder : ladder_stats option;
      (** per-rung attempt/win counters, [Some] iff the run had an
          explicit [Config.ladder] and verification reached the SMT
          stage *)
}

(** When (and whether) to run the {!Vlint} static analyses. *)
type lint_mode =
  | Lint_ignore  (** skip static analysis (default) *)
  | Lint_warn  (** record [Vlint] findings in [pr_lint], never fail on them *)
  | Lint_strict
      (** fail fast: Error-severity findings abort before any SMT work,
          with [pr_fns = []] and [pr_ok = false] *)

(** Incremental verdict stream, delivered to {!verify_program}'s
    [?on_progress] callback as obligations complete.  The daemon turns
    these into [vc]/[fn] protocol events ([docs/PROTOCOL.md]); the
    in-process caller is free to ignore them. *)
type progress =
  | Vc_done of string * vc_result
      (** one obligation finished, tagged with its function's name;
          arrival order is completion order, not program order *)
  | Fn_done of fn_result
      (** a function's last obligation finished and its verdict is
          assembled; [fnr_vcs] is already back in encoding order *)

(** Run configuration — the one record every knob of a verification run
    lives in.  Callers build it with {!Config.default} and the [with_*]
    builders; the CLI, the daemon, the benchmark harness and the test
    suites all feed the same record to {!verify_program}. *)
module Config : sig
  type t = {
    jobs : int;
        (** parallel verification domains (Figure 9); ignored when
            [sched] supplies a pool *)
    lint : lint_mode;  (** static analysis before SMT work *)
    profile : bool;  (** retain per-VC solver profiles *)
    cache : Vcache.config option;  (** persistent VC-result cache, if any *)
    ladder : Vladder.Ladder.t option;
        (** the per-obligation escalation ladder (what the CLI's
            [--ladder]/[--rung] and the daemon's [ladder] param set).
            [None] runs every obligation once under the profile's exact
            configuration — identical to {!Vladder.Ladder.identity}, and
            the pre-ladder observable surface is preserved bit for bit
            (no rung provenance, no detail suffix, no ladder salt in the
            cache key).  [Some l]: each obligation climbs [l] — cheap
            rungs first, escalating on anything but [Unsat] — with the
            ladder fingerprint salted into cache keys and the winning
            rung recorded per entry so warm runs jump straight to it *)
    certify : bool;
        (** solve with proof recording on, replay every Unsat's
            certificate through the independent {!Vcheck} kernel, and
            demote rejected obligations to failures; Unsat cache hits are
            honored only when their entry carries a certificate digest *)
    analyze : bool;
        (** run the {!Vflow} abstract-interpretation prescreen on every
            obligation before cache or solver (rung 0 of the escalation
            ladder).  A [Proved] verdict discharges the VC with no solver
            query ([vcr_source = Src_prescreen]); anything else falls
            through to SMT carrying the analysis's derived facts as extra
            hypotheses and with provably-vacuous hypotheses dropped.
            Prescreened runs salt the cache fingerprint with
            {!Vflow.version}.  Ignored (demoted to plain SMT) under
            [certify] — the prescreen has no replayable certificate. *)
    sched : Verusd.Sched.t option;
        (** when [Some], schedule this run's obligations on the given
            long-lived work-stealing pool instead of spawning domains per
            run — how the daemon amortizes domain start-up across
            requests.  The pool is borrowed, never shut down; [jobs] is
            ignored.  Verdicts and {!result_digest} are identical either
            way. *)
  }

  val default : t
  (** [jobs = 1], no lint, no profiling, no cache, no ladder (profile's
      own configuration, once per obligation), no certification, no
      external pool. *)

  val with_jobs : int -> t -> t
  val with_lint : lint_mode -> t -> t
  val with_profile : bool -> t -> t

  val with_cache : string -> t -> t
  (** Enable the verification cache in the given directory. *)

  val without_cache : t -> t

  val with_ladder : Vladder.Ladder.t -> t -> t
  (** The one entry point for automation strength: every knob that used
      to be a separate budget/deadline surface is a rung of the ladder
      installed here. *)

  val without_ladder : t -> t

  val with_budget : Smt.Solver.budget -> t -> t
  [@@ocaml.deprecated "use with_ladder (Vladder.Ladder.of_budget b)"]
  (** Deprecated budget-override surface, kept as a thin wrapper:
      equivalent to [with_ladder (Vladder.Ladder.of_budget b)] — a
      single-rung ladder carrying the absolute budget (pinned equivalent
      by test). *)

  val with_certify : bool -> t -> t
  val with_analyze : bool -> t -> t

  val with_sched : Verusd.Sched.t -> t -> t
  (** Borrow a long-lived obligation pool for this run's scheduling. *)

  val without_sched : t -> t
end

val context_for :
  Profiles.t -> Vir.program -> Encode.vc -> Smt.Term.t list
(** Theory axioms + spec-function definitions for one VC, pruned to the
    symbols reachable from the VC when the profile prunes. *)

val verify_function : ?profile:bool -> Profiles.t -> Vir.program -> Vir.fndecl -> fn_result
(** Verify one function.  [~profile] (default [false]) retains per-VC
    solver profiles in [vcr_prof]/[fnr_prof]. *)

val verify_program :
  ?config:Config.t ->
  ?on_progress:(progress -> unit) ->
  Profiles.t ->
  Vir.program ->
  program_result
(** The one entry point.  Runs [Vlint] (per [config.lint]) and the
    front-end checks, then encodes every target function, flattens the
    obligations into one batch, and schedules the batch: on
    [config.sched]'s pool when supplied, on a transient
    {!Verusd.Sched} pool of [config.jobs] domains when [jobs > 1] (the
    paper's 8-core column in Figure 9), inline otherwise.  All three
    paths share one code path, so per-program verdicts and
    {!result_digest} are identical whichever ran.

    Under an explicit [config.ladder], each obligation climbs the ladder
    as a chain of dynamically submitted tasks: an attempt that must
    escalate resubmits itself, so one stubborn obligation's stronger
    retries overlap other obligations' first attempts.  [Unsat] at any
    rung is definitive (proved from a subset of the context under a
    sound trigger policy); anything else below the top rung escalates —
    steered past liberal-trigger rungs when the failed attempt showed
    E-matching churn or its hot quantifier matches a VL010
    matching-loop verdict — and the top rung's answer is final.

    [?on_progress] streams {!progress} events as obligations complete.
    Events fire in the finishing worker's domain — the callback must be
    thread-safe whenever a pool is in play — and [verify_program]
    returns only after every event has been delivered.

    [config.profile] aggregates every solve's {!Smt.Profile.t} into
    [pr_prof]; the aggregation is keyed on stable quantifier labels, so
    the resulting tables are identical whichever domain finished first.
    [config.cache] opens the persistent VC cache before solving, serves
    hits from its load-time snapshot (statistics are deterministic under
    [jobs > 1]), and atomically flushes new entries at the end;
    [pr_cache] reports the counters. *)

val verify_program_opts :
  ?jobs:int -> ?lint:lint_mode -> ?profile:bool -> Profiles.t -> Vir.program -> program_result
[@@ocaml.deprecated "use verify_program ~config (Driver.Config)"]
(** The pre-[Config] optional-argument signature, kept as a thin wrapper
    for external callers mid-migration.  Equivalent to [verify_program
    ~config:{ default with jobs; lint; profile }]. *)

val result_digest : program_result -> string
(** Content digest of everything a verification run {e decided} — per-VC
    names and answers, per-function and overall verdicts, lint and
    front-end output.  Run artifacts are excluded: the timing fields and
    [vcr_detail] (whose default-mode string embeds solver phase times),
    the byte counts (printed sizes vary with the process-global
    fresh-symbol counter), and the profile/cache observability
    attachments.  Two runs of the same program under the same
    configuration digest equally whether their answers came from the
    solver or from a warm cache; [scripts/check.sh] and the cache bench
    assert exactly that. *)

val prescreen_discharged : program_result -> int
(** Number of obligations whose verdict came from the {!Vflow} prescreen
    ([vcr_source = Src_prescreen]) — the numerator of the analyze bench's
    discharge rate.  Zero unless the run had [Config.analyze] set. *)

val first_failure : program_result -> (string * string * string) option
(** [(origin, obligation, code)] of the first failure, if any: a lint
    Error ([VL0xx] code, strict mode), a front-end rejection ([FE001]),
    or the first unproved VC ([VC001] refuted / [VC002] unknown /
    [VC003] certificate rejected or missing under [--certify]).  The
    code lets callers assert on {e which} failure occurred. *)
