(** The verification driver: assembles per-VC contexts (theory axioms,
    spec-function definitions, with or without pruning), dispatches VCs to
    the right engine (default solver, EPR decision procedure, or one of the
    §3.3 custom modes), and reports results with the timing/query-size
    statistics the paper's tables are built from. *)

type vc_result = {
  vcr_name : string;
  vcr_answer : Smt.Solver.answer;
  vcr_time_s : float;
  vcr_bytes : int;  (** context + goal printed size *)
  vcr_detail : string;  (** mode-specific info *)
}

type fn_result = {
  fnr_name : string;
  fnr_vcs : vc_result list;
  fnr_ok : bool;
  fnr_time_s : float;
  fnr_bytes : int;
}

type program_result = {
  pr_profile : string;
  pr_fns : fn_result list;
  pr_ok : bool;
  pr_time_s : float;
  pr_bytes : int;
  pr_front_end_errors : string list;
      (** type / ownership / EPR-fragment rejections (empty when verified) *)
  pr_lint : Vlint.diag list;
      (** static-analysis findings; populated when [verify_program] was
          called with [~lint:Lint_warn] or [~lint:Lint_strict] *)
}

type lint_mode =
  | Lint_ignore  (** skip static analysis (default) *)
  | Lint_warn  (** record [Vlint] findings in [pr_lint], never fail on them *)
  | Lint_strict
      (** fail fast: Error-severity findings abort before any SMT work,
          with [pr_fns = []] and [pr_ok = false] *)

val context_for :
  Profiles.t -> Vir.program -> Encode.vc -> Smt.Term.t list
(** Theory axioms + spec-function definitions for one VC, pruned to the
    symbols reachable from the VC when the profile prunes. *)

val verify_function : Profiles.t -> Vir.program -> Vir.fndecl -> fn_result

val verify_program :
  ?jobs:int -> ?lint:lint_mode -> Profiles.t -> Vir.program -> program_result
(** Runs [Vlint] (per [lint], default [Lint_ignore]) and the front-end
    checks, then verifies every function.  [jobs > 1] verifies functions
    in parallel on that many domains (the paper's 8-core column in
    Figure 9). *)

val first_failure : program_result -> (string * string * string) option
(** [(origin, obligation, code)] of the first failure, if any: a lint
    Error ([VL0xx] code, strict mode), a front-end rejection ([FE001]),
    or the first unproved VC ([VC001] refuted / [VC002] unknown).  The
    code lets callers assert on {e which} failure occurred. *)
