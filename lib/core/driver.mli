(** The verification driver: assembles per-VC contexts (theory axioms,
    spec-function definitions, with or without pruning), dispatches VCs to
    the right engine (default solver, EPR decision procedure, or one of the
    §3.3 custom modes), and reports results with the timing/query-size
    statistics the paper's tables are built from. *)

type vc_result = {
  vcr_name : string;
  vcr_answer : Smt.Solver.answer;
  vcr_time_s : float;
  vcr_bytes : int;  (** context + goal printed size *)
  vcr_detail : string;  (** mode-specific info *)
}

type fn_result = {
  fnr_name : string;
  fnr_vcs : vc_result list;
  fnr_ok : bool;
  fnr_time_s : float;
  fnr_bytes : int;
}

type program_result = {
  pr_profile : string;
  pr_fns : fn_result list;
  pr_ok : bool;
  pr_time_s : float;
  pr_bytes : int;
  pr_front_end_errors : string list;
      (** type / ownership / EPR-fragment rejections (empty when verified) *)
}

val context_for :
  Profiles.t -> Vir.program -> Encode.vc -> Smt.Term.t list
(** Theory axioms + spec-function definitions for one VC, pruned to the
    symbols reachable from the VC when the profile prunes. *)

val verify_function : Profiles.t -> Vir.program -> Vir.fndecl -> fn_result

val verify_program : ?jobs:int -> Profiles.t -> Vir.program -> program_result
(** Runs the front-end checks, then verifies every function.  [jobs > 1]
    verifies functions in parallel on that many domains (the paper's
    8-core column in Figure 9). *)

val first_failure : program_result -> (string * string) option
(** (function, vc) of the first unproved obligation, if any. *)
