module T = Smt.Term
module S = Smt.Sort
open Vir

type vc = {
  vc_name : string;
  vc_hyps : T.t list;
  vc_goal : T.t;
  vc_hint : Vir.proof_hint;
  vc_expr : Vir.expr option; (* original VIR expr, for compute-mode asserts *)
}

let is_heap (p : Profiles.t) = p.Profiles.encoding = Profiles.Heap

let sort_of (p : Profiles.t) ty = Theories.sort_of_ty ~heap:(is_heap p) ty

(* ------------------------------------------------------------------ *)
(* Symbols shared with the driver                                      *)
(* ------------------------------------------------------------------ *)

let spec_fn_sym (p : Profiles.t) (_prog : program) (fd : fndecl) =
  let param_sorts = List.map (fun (prm : param) -> sort_of p prm.pty) fd.params in
  let param_sorts = if is_heap p then Theories.heap_sort :: param_sorts else param_sorts in
  let ret_sort =
    match fd.ret with Some (_, t) -> sort_of p t | None -> invalid_arg "spec fn without result"
  in
  let suffix = if is_heap p then "$h" else "" in
  T.Sym.declare ("spec." ^ fd.fname ^ suffix) param_sorts ret_sort

let bitop_sym (kind : int_kind) (op : binop) =
  let k = match kind with I_u8 -> 8 | I_u16 -> 16 | I_u32 -> 32 | I_u64 -> 64 | I_math -> 0 in
  let name =
    match op with
    | BitAnd -> "and"
    | BitOr -> "or"
    | BitXor -> "xor"
    | Shl -> "shl"
    | Shr -> "shr"
    | _ -> invalid_arg "bitop_sym"
  in
  T.Sym.declare (Printf.sprintf "u%d.%s" k name) [ S.Int; S.Int ] S.Int

let bitop_axioms (p : Profiles.t) =
  let curated = p.Profiles.curated_triggers in
  List.concat_map
    (fun kind ->
      let hi = match int_bounds kind with Some (_, hi) -> hi | None -> assert false in
      List.map
        (fun op ->
          let sym = bitop_sym kind op in
          let x = T.bvar "x" S.Int and y = T.bvar "y" S.Int in
          let ap = T.app sym [ x; y ] in
          let body = T.and_ [ T.le (T.int_of 0) ap; T.le ap (T.int_lit hi) ] in
          if curated then T.forall ~triggers:[ [ ap ] ] [ ("x", S.Int); ("y", S.Int) ] body
          else T.forall [ ("x", S.Int); ("y", S.Int) ] body)
        [ BitAnd; BitOr; BitXor; Shl; Shr ])
    [ I_u8; I_u16; I_u32; I_u64 ]

let wrapper_sym depth srt =
  T.Sym.declare (Printf.sprintf "effw%d$%s" depth (S.to_string srt)) [ srt ] srt

let ownok_sym srt = T.Sym.declare ("ownok$" ^ S.to_string srt) [ srt ] S.Bool

(* ------------------------------------------------------------------ *)
(* Encoder state                                                       *)
(* ------------------------------------------------------------------ *)

type st = {
  profile : Profiles.t;
  prog : program;
  fd : fndecl;
  mutable tenv : (string * ty) list;
  mutable hyps : T.t list; (* reversed *)
  mutable vcs : vc list; (* reversed *)
  mutable path : T.t list;
  mutable cur_heap : T.t; (* heap encoding: the heap of the exec flow *)
  mutable allocated : T.t list;
  mutable seq_eqs_done : (int * int) list;
  mutable olds : (string * T.t) list; (* entry values of params *)
  mutable old_heap : T.t;
}

let fresh_const name srt = T.const (T.Sym.fresh name [] srt)

let assume st fact =
  let fact = match st.path with [] -> fact | path -> T.implies (T.and_ path) fact in
  if not (T.equal fact T.tru) then st.hyps <- fact :: st.hyps

let oblige st ?(hint = H_default) name goal =
  let goal = match st.path with [] -> goal | path -> T.implies (T.and_ path) goal in
  if not (T.equal goal T.tru) then
    st.vcs <-
      {
        vc_name = st.fd.fname ^ ": " ^ name;
        vc_hyps = List.rev st.hyps;
        vc_goal = goal;
        vc_hint = hint;
        vc_expr = None;
      }
      :: st.vcs

let oblige_isolated st ~hint ?expr name goal =
  st.vcs <-
    {
      vc_name = st.fd.fname ^ ": " ^ name;
      vc_hyps = [];
      vc_goal = goal;
      vc_hint = hint;
      vc_expr = expr;
    }
    :: st.vcs

let range_hyp kind tm =
  match int_bounds kind with
  | None -> T.tru
  | Some (lo, hi) -> T.and_ [ T.le (T.int_lit lo) tm; T.le tm (T.int_lit hi) ]

let ty_range_hyp ty tm = match ty with TInt k -> range_hyp k tm | _ -> T.tru

let wrap st tm =
  let rec go i tm =
    if i = 0 then tm else go (i - 1) (T.app (wrapper_sym i (T.sort_of tm)) [ tm ])
  in
  go st.profile.Profiles.wrapper_depth tm

let tag_index (d : datatype) vname =
  let rec go i = function
    | [] -> invalid_arg ("no variant " ^ vname)
    | (vn, _) :: rest -> if String.equal vn vname then i else go (i + 1) rest
  in
  go 0 d.variants

let datatype_of_field (prog : program) fname =
  List.find
    (fun d -> List.exists (fun (_, fields) -> List.mem_assoc fname fields) d.variants)
    prog.datatypes

let datatype_of_variant (prog : program) vname =
  List.find (fun d -> List.mem_assoc vname d.variants) prog.datatypes

(* Allocatedness is monotone across any heap transition. *)
let emit_alloc_mono st ~h_old ~h_new =
  if st.profile.Profiles.encoding = Profiles.Heap && not (T.equal h_old h_new) then begin
    let rho = T.bvar "rho!a" Theories.ref_sort in
    assume st
      (T.forall
         ~triggers:[ [ T.app Theories.alloc_sym [ h_new; rho ] ] ]
         [ ("rho!a", Theories.ref_sort) ]
         (T.implies
            (T.app Theories.alloc_sym [ h_old; rho ])
            (T.app Theories.alloc_sym [ h_new; rho ])))
  end

(* Frame axioms for a heap transition (heap encoding): field reads and
   spec-function values are preserved — except at freshly allocated refs,
   which the optional [except] guard excludes.  This mirrors the
   reads-clause frame axioms Dafny generates; it is sound for VIR because
   object fields are immutable after construction. *)
let emit_heap_frames st ~h_old ~h_new ~except =
  if st.profile.Profiles.encoding = Profiles.Heap && not (T.equal h_old h_new) then begin
    let guard rho =
      match except with
      | Some r -> T.not_ (T.eq rho r)
      | None -> T.tru
    in
    (* Per-field read frames. *)
    List.iter
      (fun d ->
        let hs = Theories.heap_syms_for st.prog d in
        let rho = T.bvar "rho!f" Theories.ref_sort in
        let frame rd =
          let body =
            T.implies (guard rho)
              (T.eq (T.app rd [ h_new; rho ]) (T.app rd [ h_old; rho ]))
          in
          assume st
            (T.forall ~triggers:[ [ T.app rd [ h_new; rho ] ] ] [ ("rho!f", Theories.ref_sort) ] body)
        in
        frame hs.Theories.h_tag_rd;
        List.iter (fun (_, (rd, _)) -> frame rd) hs.Theories.h_fields)
      st.prog.datatypes;
    (* Per-spec-function frames. *)
    List.iter
      (fun fd ->
        match (fd.fmode, fd.ret) with
        | Spec, Some _ ->
          let sym = spec_fn_sym st.profile st.prog fd in
          let qvars =
            List.map (fun (prm : param) -> (prm.pname ^ "!f", sort_of st.profile prm.pty)) fd.params
          in
          let args = List.map (fun (x, srt) -> T.bvar x srt) qvars in
          let guards =
            List.filter_map
              (fun a ->
                if S.equal (T.sort_of a) Theories.ref_sort then Some (guard a) else None)
              args
          in
          let app_new = T.app sym (h_new :: args) in
          let app_old = T.app sym (h_old :: args) in
          let body = T.implies (T.and_ guards) (T.eq app_new app_old) in
          assume st (T.forall ~triggers:[ [ app_new ] ] qvars body)
        | _ -> ())
      st.prog.functions
  end

let rec contains_old = function
  | EOld _ -> true
  | EVar _ | EBool _ | EInt _ -> false
  | EUnop (_, a) -> contains_old a
  | EBinop (_, a, b) -> contains_old a || contains_old b
  | EIte (a, b, c) -> contains_old a || contains_old b || contains_old c
  | ECall (_, args) | ECtor (_, _, args) -> List.exists contains_old args
  | EField (a, _) | EIs (a, _) -> contains_old a
  | ESeq op -> (
    match op with
    | SeqEmpty _ -> false
    | SeqLen a -> contains_old a
    | SeqIndex (a, b) | SeqPush (a, b) | SeqSkip (a, b) | SeqTake (a, b) | SeqAppend (a, b) ->
      contains_old a || contains_old b
    | SeqUpdate (a, b, c) -> contains_old a || contains_old b || contains_old c)
  | EForall (_, _, b) | EExists (_, _, b) -> contains_old b

(* ------------------------------------------------------------------ *)
(* Expression encoding                                                 *)
(*                                                                     *)
(* [vars]: current variable environment.  [ambient]: the heap term     *)
(* field reads use (heap encoding); subtrees containing old() switch   *)
(* to the old heap.  [ghost] suppresses runtime obligations.           *)
(* ------------------------------------------------------------------ *)

let rec enc_expr st ~ghost ~vars ~ambient (e : expr) : T.t =
  let prog = st.prog and p = st.profile in
  let recur ?(ambient = ambient) e = enc_expr st ~ghost ~vars ~ambient e in
  (* Heap to use for a node whose subtree may mention old(). *)
  let node_heap sube =
    if is_heap p && List.exists contains_old sube then st.old_heap else ambient
  in
  match e with
  | EVar x -> (
    match List.assoc_opt x vars with
    | Some t -> t
    | None -> invalid_arg ("unbound " ^ x))
  | EOld x -> (
    match List.assoc_opt x st.olds with
    | Some t -> t
    | None -> invalid_arg ("old() of unknown parameter " ^ x))
  | EBool b -> T.bool_lit b
  | EInt n -> T.int_of n
  | EUnop (Not, a) -> T.not_ (recur a)
  | EUnop (Neg, a) -> T.neg (recur a)
  | EBinop (op, a, b) -> (
    let ty_a = Typecheck.ty_of_expr prog st.tenv a in
    let ta = recur a in
    let tb = recur b in
    match op with
    | Add | Sub | Mul ->
      let result =
        match op with Add -> T.add [ ta; tb ] | Sub -> T.sub ta tb | _ -> T.mul ta tb
      in
      (if not ghost then begin
         (* Overflow obligations: if either operand is bounded, the machine
            operation must stay in that range (math-typed literals adapt,
            as in Verus's exec arithmetic). *)
         let ty_b = Typecheck.ty_of_expr prog st.tenv b in
         let kind =
           match (ty_a, ty_b) with
           | TInt k, TInt I_math when k <> I_math -> Some k
           | TInt I_math, TInt k when k <> I_math -> Some k
           | TInt k1, TInt k2 when k1 = k2 && k1 <> I_math -> Some k1
           | TInt k1, TInt k2 when k1 <> I_math && k2 <> I_math ->
             (* Mixed bounded kinds: the wider one. *)
             Some (if int_bounds k1 < int_bounds k2 then k2 else k1)
           | _ -> None
         in
         match kind with
         | Some k -> oblige st "arithmetic overflow" (range_hyp k result)
         | None -> ()
       end);
      result
    | Div | Mod ->
      if not ghost then oblige st "division by zero" (T.not_ (T.eq tb (T.int_of 0)));
      if op = Div then T.idiv ta tb else T.imod ta tb
    | Lt -> T.lt ta tb
    | Le -> T.le ta tb
    | Gt -> T.gt ta tb
    | Ge -> T.ge ta tb
    | Eq | Ne ->
      (match Typecheck.ty_of_expr prog st.tenv a with
      | TSeq elem ->
        let key = (T.hash ta, T.hash tb) in
        if not (List.mem key st.seq_eqs_done) then begin
          st.seq_eqs_done <- key :: st.seq_eqs_done;
          st.hyps <- Theories.seq_ext_hypothesis ~heap:(is_heap p) elem ta tb :: st.hyps
        end
      | _ -> ());
      if op = Eq then T.eq ta tb else T.neq ta tb
    | And -> T.and_ [ ta; tb ]
    | Or -> T.or_ [ ta; tb ]
    | Implies -> T.implies ta tb
    | BitAnd | BitOr | BitXor | Shl | Shr -> (
      let ty_b = Typecheck.ty_of_expr prog st.tenv b in
      match (ty_a, ty_b) with
      | TInt k, _ when k <> I_math -> T.app (bitop_sym k op) [ ta; tb ]
      | _, TInt k when k <> I_math -> T.app (bitop_sym k op) [ ta; tb ]
      | _ -> invalid_arg "bit operation on unbounded int"))
  | EIte (c, a, b) -> T.ite (recur c) (recur a) (recur b)
  | ECall (f, args) ->
    let fd = find_fn prog f in
    let sym = spec_fn_sym p prog fd in
    let h = node_heap args in
    let targs = List.map (fun a -> recur ~ambient:h a) args in
    let targs = if is_heap p then h :: targs else targs in
    wrap st (T.app sym targs)
  | ECtor (dname, vname, args) ->
    let d = find_datatype prog dname in
    let targs = List.map (fun a -> recur a) args in
    if is_heap p then alloc_ctor st ~ghost ~ambient d vname targs
    else begin
      let sy = Theories.data_syms_for d in
      let ctor = List.assoc vname sy.Theories.d_ctors in
      if targs = [] then T.const ctor else T.app ctor targs
    end
  | EField (e1, fname) ->
    let h = node_heap [ e1 ] in
    let t1 = recur ~ambient:h e1 in
    let d = datatype_of_field prog fname in
    if is_heap p then begin
      let hs = Theories.heap_syms_for prog d in
      let rd, _ = List.assoc fname hs.Theories.h_fields in
      let field_ty = Typecheck.ty_of_expr prog st.tenv e in
      let _, ub = Theories.box_syms (sort_of p field_ty) in
      T.app ub [ T.app rd [ h; t1 ] ]
    end
    else
      let sy = Theories.data_syms_for d in
      T.app (List.assoc fname sy.Theories.d_selectors) [ t1 ]
  | EIs (e1, vname) ->
    let h = node_heap [ e1 ] in
    let t1 = recur ~ambient:h e1 in
    let d = datatype_of_variant prog vname in
    if is_heap p then
      let hs = Theories.heap_syms_for prog d in
      T.eq (T.app hs.Theories.h_tag_rd [ h; t1 ]) (T.int_of (tag_index d vname))
    else
      let sy = Theories.data_syms_for d in
      T.app (List.assoc vname sy.Theories.d_testers) [ t1 ]
  | ESeq op -> (
    let heap = is_heap p in
    let elem_of s =
      match Typecheck.ty_of_expr prog st.tenv s with
      | TSeq t -> t
      | _ -> invalid_arg "seq op on non-seq"
    in
    match op with
    | SeqEmpty t ->
      let sy = Theories.seq_syms_for ~heap t in
      wrap st (T.const sy.Theories.s_empty)
    | SeqLen s ->
      let sy = Theories.seq_syms_for ~heap (elem_of s) in
      wrap st (T.app sy.Theories.s_len [ recur s ])
    | SeqIndex (s, i) ->
      let sy = Theories.seq_syms_for ~heap (elem_of s) in
      wrap st (T.app sy.Theories.s_index [ recur s; recur i ])
    | SeqPush (s, x) ->
      let sy = Theories.seq_syms_for ~heap (elem_of s) in
      wrap st (T.app sy.Theories.s_push [ recur s; recur x ])
    | SeqSkip (s, k) ->
      let sy = Theories.seq_syms_for ~heap (elem_of s) in
      wrap st (T.app sy.Theories.s_skip [ recur s; recur k ])
    | SeqTake (s, k) ->
      let sy = Theories.seq_syms_for ~heap (elem_of s) in
      wrap st (T.app sy.Theories.s_take [ recur s; recur k ])
    | SeqUpdate (s, i, x) ->
      let sy = Theories.seq_syms_for ~heap (elem_of s) in
      wrap st (T.app sy.Theories.s_update [ recur s; recur i; recur x ])
    | SeqAppend (s1, s2) ->
      let sy = Theories.seq_syms_for ~heap (elem_of s1) in
      wrap st (T.app sy.Theories.s_append [ recur s1; recur s2 ]))
  | EForall (qv, trig, body) | EExists (qv, trig, body) ->
    let saved_tenv = st.tenv in
    st.tenv <- qv @ st.tenv;
    let qvars = List.map (fun (x, t) -> (x, sort_of p t)) qv in
    let vars' = List.map (fun (x, t) -> (x, T.bvar x (sort_of p t))) qv @ vars in
    let tbody = enc_expr st ~ghost ~vars:vars' ~ambient body in
    let triggers =
      match trig with
      | Term_auto -> []
      | Term_explicit groups ->
        List.map (List.map (fun g -> enc_expr st ~ghost ~vars:vars' ~ambient g)) groups
    in
    st.tenv <- saved_tenv;
    (match e with
    | EForall _ -> T.forall ~triggers qvars tbody
    | _ -> T.exists ~triggers qvars tbody)

(* Heap-mode constructor. In exec positions it allocates (fresh ref,
   write chain, heap advances); in ghost positions it denotes a fresh ref
   whose fields are assumed to hold the given values in the ambient heap
   (sufficient for the specs our programs write; documented in DESIGN.md). *)
and alloc_ctor st ~ghost ~ambient (d : datatype) vname targs : T.t =
  let prog = st.prog in
  let hs = Theories.heap_syms_for prog d in
  let r = fresh_const ("ref_" ^ vname) Theories.ref_sort in
  List.iter (fun r' -> assume st (T.not_ (T.eq r r'))) st.allocated;
  st.allocated <- r :: st.allocated;
  let fields = List.assoc vname d.variants in
  if ghost then begin
    assume st (T.eq (T.app hs.Theories.h_tag_rd [ ambient; r ]) (T.int_of (tag_index d vname)));
    List.iter2
      (fun (fn, _) value ->
        let rd, _ = List.assoc fn hs.Theories.h_fields in
        let bx, _ = Theories.box_syms (T.sort_of value) in
        assume st (T.eq (T.app rd [ ambient; r ]) (T.app bx [ value ])))
      fields targs;
    r
  end
  else begin
    let h_before = st.cur_heap in
    (* Freshness via allocatedness: r was not allocated before, and is
       after; everything allocated before remains allocated. *)
    assume st (T.not_ (T.app Theories.alloc_sym [ h_before; r ]));
    let h1 = T.app hs.Theories.h_tag_wr [ st.cur_heap; r; T.int_of (tag_index d vname) ] in
    let hfinal =
      List.fold_left2
        (fun h (fn, _) value ->
          let _, wr = List.assoc fn hs.Theories.h_fields in
          let bx, _ = Theories.box_syms (T.sort_of value) in
          T.app wr [ h; r; T.app bx [ value ] ])
        h1 fields targs
    in
    st.cur_heap <- hfinal;
    assume st (T.app Theories.alloc_sym [ hfinal; r ]);
    (* Spec-function values at other refs are unaffected by this
       allocation (field reads go through the read-over-write axioms). *)
    emit_heap_frames st ~h_old:h_before ~h_new:hfinal ~except:(Some r);
    r
  end

(* ------------------------------------------------------------------ *)
(* Statement encoding (forward symbolic execution)                     *)
(* ------------------------------------------------------------------ *)

type outcome = Continue of (string * T.t) list (* variable env *) | Returned

(* Variables assigned (or heap-mutated) by a statement list — for loop
   havocking. *)
let rec assigned_vars stmts =
  List.concat_map
    (function
      | SAssign (x, _) -> [ x ]
      | SIf (_, a, b) -> assigned_vars a @ assigned_vars b
      | SWhile { body; _ } -> assigned_vars body
      | SCall (_, _, _) -> [] (* &mut handled separately *)
      | _ -> [])
    stmts

let rec mut_call_targets (prog : program) stmts =
  List.concat_map
    (function
      | SCall (_, f, args) ->
        let callee = find_fn prog f in
        List.concat
          (List.map2
             (fun (prm : param) a ->
               match (prm.pmut, a) with true, EVar x -> [ x ] | _ -> [])
             callee.params args)
      | SIf (_, a, b) -> mut_call_targets prog a @ mut_call_targets prog b
      | SWhile { body; _ } -> mut_call_targets prog body
      | _ -> [])
    stmts

let ownok_oblige st tm =
  if st.profile.Profiles.recheck_ownership then
    match T.sort_of tm with
    | S.Usort _ -> oblige st "ownership recheck" (T.app (ownok_sym (T.sort_of tm)) [ tm ])
    | _ -> ()

let rec exec_stmts st vars (stmts : stmt list) : outcome =
  match stmts with
  | [] -> Continue vars
  | s :: rest -> (
    match exec_stmt st vars s with
    | Continue vars' -> exec_stmts st vars' rest
    | Returned -> Returned)

and exec_stmt st vars (s : stmt) : outcome =
  let p = st.profile in
  let enc ?(ghost = false) e = enc_expr st ~ghost ~vars ~ambient:st.cur_heap e in
  let coercion_oblige target_ty expr tv =
    (* Binding into a bounded type from a wider/math expression requires a
       range proof (Verus's int -> uN coercion obligation). *)
    match (target_ty, Typecheck.ty_of_expr st.prog st.tenv expr) with
    | TInt k, TInt k' when k <> I_math && k <> k' ->
      oblige st "value fits target type" (range_hyp k tv)
    | _ -> ()
  in
  match s with
  | SLet (x, tyx, e) ->
    let tv = enc e in
    coercion_oblige tyx e tv;
    st.tenv <- (x, tyx) :: st.tenv;
    ownok_oblige st tv;
    Continue ((x, tv) :: vars)
  | SAssign (x, e) ->
    let tv = enc e in
    (match List.assoc_opt x st.tenv with
    | Some tyx -> coercion_oblige tyx e tv
    | None -> ());
    ownok_oblige st tv;
    Continue ((x, tv) :: List.remove_assoc x vars)
  | SIf (c, a, b) ->
    let tc = enc c in
    let saved_path = st.path and saved_heap = st.cur_heap in
    st.path <- tc :: saved_path;
    let out_a = exec_stmts st vars a in
    let heap_a = st.cur_heap in
    st.path <- T.not_ tc :: saved_path;
    st.cur_heap <- saved_heap;
    let out_b = exec_stmts st vars b in
    let heap_b = st.cur_heap in
    st.path <- saved_path;
    (match (out_a, out_b) with
    | Returned, Returned -> Returned
    | Returned, Continue vb ->
      st.cur_heap <- heap_b;
      Continue vb
    | Continue va, Returned ->
      st.cur_heap <- heap_a;
      Continue va
    | Continue va, Continue vb ->
      st.cur_heap <- T.ite tc heap_a heap_b;
      (* Merge: variables from the pre-branch scope (locals declared
         inside a branch go out of scope). *)
      let merged =
        List.map
          (fun (x, _) ->
            let tva = List.assoc x va and tvb = List.assoc x vb in
            (x, if T.equal tva tvb then tva else T.ite tc tva tvb))
          vars
      in
      Continue merged)
  | SWhile { cond; invariants; decreases; body } ->
    (* 1. invariants hold on entry *)
    List.iteri
      (fun idx inv -> oblige st (Printf.sprintf "loop invariant %d holds on entry" idx) (enc ~ghost:true inv))
      invariants;
    (* 2. havoc modified state *)
    let modified =
      List.sort_uniq compare (assigned_vars body @ mut_call_targets st.prog body)
    in
    let havoc_vars =
      List.map
        (fun (x, old) ->
          if List.mem x modified then begin
            let tyx = List.assoc x st.tenv in
            let fresh = fresh_const (x ^ "_loop") (sort_of p tyx) in
            assume st (ty_range_hyp tyx fresh);
            (x, fresh)
          end
          else (x, old))
        vars
    in
    let pre_loop_heap = st.cur_heap in
    if is_heap p then begin
      st.cur_heap <- fresh_const "heap_loop" Theories.heap_sort;
      emit_heap_frames st ~h_old:pre_loop_heap ~h_new:st.cur_heap ~except:None;
      emit_alloc_mono st ~h_old:pre_loop_heap ~h_new:st.cur_heap
    end;
    let loop_heap = st.cur_heap in
    (* 3. assume invariants for the arbitrary iteration *)
    let enc_h ?(ghost = true) e = enc_expr st ~ghost ~vars:havoc_vars ~ambient:st.cur_heap e in
    List.iter (fun inv -> assume st (enc_h inv)) invariants;
    (* Termination: the measure is nonnegative at the head of an arbitrary
       iteration... *)
    let measure_entry =
      match decreases with
      | Some d ->
        let tm = enc_h d in
        oblige st "loop measure nonnegative" (T.ge tm (T.int_of 0));
        Some tm
      | None -> None
    in
    let tc = enc_h ~ghost:false cond in
    (* 4. body preserves invariants *)
    let saved_path = st.path in
    st.path <- tc :: saved_path;
    (match exec_stmts st havoc_vars body with
    | Returned -> ()
    | Continue vars_end ->
      List.iteri
        (fun idx inv ->
          oblige st
            (Printf.sprintf "loop invariant %d preserved" idx)
            (enc_expr st ~ghost:true ~vars:vars_end ~ambient:st.cur_heap inv))
        invariants;
      (* ... and strictly decreases across the body. *)
      match (measure_entry, decreases) with
      | Some m0, Some d ->
        let m1 = enc_expr st ~ghost:true ~vars:vars_end ~ambient:st.cur_heap d in
        oblige st "loop measure decreases" (T.lt m1 m0)
      | _ -> ());
    st.path <- saved_path;
    (* 5. continue after the loop: invariants hold, condition false *)
    st.cur_heap <- loop_heap;
    assume st (T.not_ tc);
    Continue havoc_vars
  | SCall (binding, f, args) ->
    let callee = find_fn st.prog f in
    let targs = List.map (fun a -> enc a) args in
    (* requires *)
    let param_map = List.map2 (fun (prm : param) tv -> (prm.pname, tv)) callee.params targs in
    let saved_tenv = st.tenv in
    st.tenv <- List.map (fun (prm : param) -> (prm.pname, prm.pty)) callee.params @ st.tenv;
    List.iteri
      (fun idx req ->
        oblige st
          (Printf.sprintf "precondition %d of %s" idx f)
          (enc_expr st ~ghost:true ~vars:param_map ~ambient:st.cur_heap req))
      callee.requires;
    List.iter (fun tv -> ownok_oblige st tv) targs;
    (* havoc: result, &mut arguments, and (heap mode) the heap *)
    let result_binding =
      match callee.ret with
      | Some (rname, rty) ->
        let rterm = fresh_const (f ^ "_res") (sort_of p rty) in
        assume st (ty_range_hyp rty rterm);
        Some (rname, rty, rterm)
      | None -> None
    in
    let mut_updates =
      List.concat
        (List.map2
           (fun (prm : param) a ->
             match (prm.pmut, a) with
             | true, EVar x ->
               let fresh = fresh_const (x ^ "_post") (sort_of p prm.pty) in
               assume st (ty_range_hyp prm.pty fresh);
               [ (x, prm.pname, fresh) ]
             | _ -> [])
           callee.params args)
    in
    let old_heap_for_call = st.cur_heap in
    if is_heap p then begin
      st.cur_heap <- fresh_const "heap_post" Theories.heap_sort;
      (* Callees only allocate (no field mutation in VIR): everything
         pre-existing is framed. *)
      emit_heap_frames st ~h_old:old_heap_for_call ~h_new:st.cur_heap ~except:None;
      emit_alloc_mono st ~h_old:old_heap_for_call ~h_new:st.cur_heap
    end;
    (* assume ensures: params bound to post values for &mut, pre values
       otherwise; old(param) resolves to the pre value. *)
    let post_param_map =
      List.map
        (fun (pname, pre) ->
          match List.find_opt (fun (_, pn, _) -> String.equal pn pname) mut_updates with
          | Some (_, _, fresh) -> (pname, fresh)
          | None -> (pname, pre))
        param_map
    in
    let post_param_map =
      match result_binding with
      | Some (rname, _, rterm) -> (rname, rterm) :: post_param_map
      | None -> post_param_map
    in
    let saved_olds = st.olds and saved_old_heap = st.old_heap in
    st.olds <- param_map;
    st.old_heap <- old_heap_for_call;
    st.tenv <-
      (match callee.ret with Some (rn, rt) -> [ (rn, rt) ] | None -> [])
      @ List.map (fun (prm : param) -> (prm.pname, prm.pty)) callee.params
      @ saved_tenv;
    List.iter
      (fun ens ->
        assume st (enc_expr st ~ghost:true ~vars:post_param_map ~ambient:st.cur_heap ens))
      callee.ensures;
    st.olds <- saved_olds;
    st.old_heap <- saved_old_heap;
    st.tenv <- saved_tenv;
    (* write back &mut variables, bind result *)
    let vars =
      List.fold_left
        (fun vars (x, _, fresh) -> (x, fresh) :: List.remove_assoc x vars)
        vars mut_updates
    in
    (match (binding, result_binding) with
    | Some x, Some (_, rty, rterm) ->
      st.tenv <- (x, rty) :: st.tenv;
      Continue ((x, rterm) :: vars)
    | None, _ -> Continue vars
    | Some _, None -> invalid_arg "binding result of unit function")
  | SAssert (e, H_default) ->
    let te = enc ~ghost:true e in
    oblige st "assertion" te;
    assume st te;
    Continue vars
  | SAssert (e, hint) ->
    (* Isolated query per §3.3; the main flow gets to assume it. *)
    let te = enc ~ghost:true e in
    let hint_name =
      match hint with
      | H_bit_vector -> "assert by(bit_vector)"
      | H_nonlinear -> "assert by(nonlinear_arith)"
      | H_integer_ring -> "assert by(integer_ring)"
      | H_compute -> "assert by(compute)"
      | H_default -> assert false
    in
    oblige_isolated st ~hint ~expr:e hint_name te;
    assume st te;
    Continue vars
  | SAssume e ->
    assume st (enc ~ghost:true e);
    Continue vars
  | SReturn eo ->
    (match (eo, st.fd.ret) with
    | Some e, Some (rname, rty) ->
      let tv = enc e in
      coercion_oblige rty e tv;
      let vars' = (rname, tv) :: vars in
      st.tenv <- (rname, rty) :: st.tenv;
      check_ensures st vars'
    | None, None -> check_ensures st vars
    | _ -> invalid_arg "return arity");
    Returned

and check_ensures st vars =
  List.iteri
    (fun idx ens ->
      oblige st
        (Printf.sprintf "postcondition %d" idx)
        (enc_expr st ~ghost:true ~vars ~ambient:st.cur_heap ens))
    st.fd.ensures

(* ------------------------------------------------------------------ *)
(* Function entry                                                      *)
(* ------------------------------------------------------------------ *)

let encode_function (p : Profiles.t) (prog : program) (fd : fndecl) : vc list =
  match (fd.fmode, fd.body) with
  | Spec, _ | _, None -> []
  | (Proof | Exec), Some body ->
    let heap0 =
      if is_heap p then fresh_const "heap0" Theories.heap_sort
      else T.const (T.Sym.declare "no_heap" [] Theories.heap_sort)
    in
    let st =
      {
        profile = p;
        prog;
        fd;
        tenv = List.map (fun (prm : param) -> (prm.pname, prm.pty)) fd.params;
        hyps = [];
        vcs = [];
        path = [];
        cur_heap = heap0;
        allocated = [];
        seq_eqs_done = [];
        olds = [];
        old_heap = heap0;
      }
    in
    (* Parameters as fresh constants with range hypotheses. *)
    let vars =
      List.map
        (fun (prm : param) ->
          let c = fresh_const prm.pname (sort_of p prm.pty) in
          (prm.pname, c))
        fd.params
    in
    List.iter2
      (fun (prm : param) (_, c) ->
        assume st (ty_range_hyp prm.pty c);
        (* Heap mode: reference parameters are allocated on entry. *)
        if is_heap p && S.equal (T.sort_of c) Theories.ref_sort then
          assume st (T.app Theories.alloc_sym [ heap0; c ]))
      fd.params vars;
    st.olds <- vars;
    st.old_heap <- heap0;
    (* Prophecy (Creusot) overhead: final-value constants for &mut
       parameters plus resolution equations at exit. *)
    let prophecy =
      if p.Profiles.encoding = Profiles.Prophecy then
        List.filter_map
          (fun (prm : param) ->
            if prm.pmut then
              Some (prm.pname, fresh_const (prm.pname ^ "_fin") (sort_of p prm.pty))
            else None)
          fd.params
      else []
    in
    (* requires *)
    List.iter (fun req -> assume st (enc_expr st ~ghost:true ~vars ~ambient:heap0 req)) fd.requires;
    (* body *)
    (match exec_stmts st vars body with
    | Returned -> ()
    | Continue vars_end ->
      (* Fell off the end: unit function; check ensures. *)
      (match fd.ret with
      | None ->
        (* Prophecy resolution: the final value of each &mut parameter is
           its value at exit. *)
        List.iter
          (fun (x, fin) ->
            match List.assoc_opt x vars_end with
            | Some cur -> assume st (T.eq fin cur)
            | None -> ())
          prophecy;
        check_ensures st vars_end
      | Some _ -> oblige st "missing return" T.fls));
    List.rev st.vcs

(* ------------------------------------------------------------------ *)
(* Spec function definitional axioms                                   *)
(* ------------------------------------------------------------------ *)

let spec_fn_axiom (p : Profiles.t) (prog : program) (fd : fndecl) =
  match (fd.fmode, fd.spec_body) with
  | Spec, Some body when not (List.mem A_opaque fd.attrs) ->
    let sym = spec_fn_sym p prog fd in
    let heap_var = ("heap!q", Theories.heap_sort) in
    let qvars = List.map (fun (prm : param) -> (prm.pname, sort_of p prm.pty)) fd.params in
    let qvars = if is_heap p then heap_var :: qvars else qvars in
    let vars =
      List.map (fun (prm : param) -> (prm.pname, T.bvar prm.pname (sort_of p prm.pty))) fd.params
    in
    let ambient = T.bvar "heap!q" Theories.heap_sort in
    let st =
      {
        profile = p;
        prog;
        fd;
        tenv = List.map (fun (prm : param) -> (prm.pname, prm.pty)) fd.params;
        hyps = [];
        vcs = [];
        path = [];
        cur_heap = ambient;
        allocated = [];
        seq_eqs_done = [];
        olds = [];
        old_heap = ambient;
      }
    in
    let tbody = enc_expr st ~ghost:true ~vars ~ambient body in
    let app_args = List.map snd vars in
    let app_args = if is_heap p then ambient :: app_args else app_args in
    let ap = T.app sym app_args in
    let ax =
      if p.Profiles.curated_triggers then T.forall ~triggers:[ [ ap ] ] qvars (T.eq ap tbody)
      else T.forall qvars (T.eq ap tbody)
    in
    Some ax
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Whole-program axiom assembly (shared by the driver and Vlint)       *)
(* ------------------------------------------------------------------ *)

let rec add_ty acc (t : ty) =
  match t with
  | TSeq e -> add_ty (if List.exists (ty_equal t) acc then acc else t :: acc) e
  | TBool | TInt _ | TData _ -> if List.exists (ty_equal t) acc then acc else t :: acc

let rec tys_in_expr acc (e : expr) =
  match e with
  | ESeq (SeqEmpty t) -> add_ty acc (TSeq t)
  | EForall (vars, _, b) | EExists (vars, _, b) ->
    tys_in_expr (List.fold_left (fun a (_, t) -> add_ty a t) acc vars) b
  | EUnop (_, a) -> tys_in_expr acc a
  | EBinop (_, a, b) -> tys_in_expr (tys_in_expr acc a) b
  | EIte (a, b, c) -> tys_in_expr (tys_in_expr (tys_in_expr acc a) b) c
  | ECall (_, args) | ECtor (_, _, args) -> List.fold_left tys_in_expr acc args
  | EField (a, _) | EIs (a, _) -> tys_in_expr acc a
  | ESeq op -> (
    match op with
    | SeqEmpty _ -> acc
    | SeqLen a -> tys_in_expr acc a
    | SeqIndex (a, b) | SeqPush (a, b) | SeqSkip (a, b) | SeqTake (a, b) | SeqAppend (a, b) ->
      tys_in_expr (tys_in_expr acc a) b
    | SeqUpdate (a, b, c) -> tys_in_expr (tys_in_expr (tys_in_expr acc a) b) c)
  | EVar _ | EOld _ | EBool _ | EInt _ -> acc

let rec tys_in_stmt acc (s : stmt) =
  match s with
  | SLet (_, t, e) -> tys_in_expr (add_ty acc t) e
  | SAssign (_, e) -> tys_in_expr acc e
  | SIf (c, a, b) ->
    List.fold_left tys_in_stmt (List.fold_left tys_in_stmt (tys_in_expr acc c) a) b
  | SWhile { cond; invariants; decreases; body } ->
    let acc = match decreases with Some d -> tys_in_expr acc d | None -> acc in
    List.fold_left tys_in_stmt
      (List.fold_left tys_in_expr (tys_in_expr acc cond) invariants)
      body
  | SCall (_, _, args) -> List.fold_left tys_in_expr acc args
  | SAssert (e, _) | SAssume e -> tys_in_expr acc e
  | SReturn (Some e) -> tys_in_expr acc e
  | SReturn None -> acc

let program_types (p : program) =
  let acc = [] in
  let acc =
    List.fold_left
      (fun acc d -> List.fold_left (fun a (_, t) -> add_ty a t) acc (List.concat_map snd d.variants))
      acc p.datatypes
  in
  List.fold_left
    (fun acc fd ->
      let acc = List.fold_left (fun a (prm : param) -> add_ty a prm.pty) acc fd.params in
      let acc = match fd.ret with Some (_, t) -> add_ty acc t | None -> acc in
      let acc = List.fold_left tys_in_expr acc (fd.requires @ fd.ensures) in
      let acc = match fd.spec_body with Some e -> tys_in_expr acc e | None -> acc in
      match fd.body with Some b -> List.fold_left tys_in_stmt acc b | None -> acc)
    acc p.functions

let wrapper_axioms (p : Profiles.t) sorts =
  List.concat_map
    (fun srt ->
      List.init p.Profiles.wrapper_depth (fun i ->
          let w = wrapper_sym (i + 1) srt in
          let x = T.bvar "x" srt in
          T.forall [ ("x", srt) ] (T.eq (T.app w [ x ]) x)))
    sorts

let ownok_axioms sorts =
  List.map
    (fun srt ->
      let x = T.bvar "x" srt in
      T.forall [ ("x", srt) ] (T.app (ownok_sym srt) [ x ]))
    sorts

let program_axioms (p : Profiles.t) (prog : program) : T.t list =
  let curated = p.Profiles.curated_triggers in
  let heap = p.Profiles.encoding = Profiles.Heap in
  let tys = program_types prog in
  let seq_elems = List.filter_map (function TSeq e -> Some e | _ -> None) tys in
  let seq_axs = List.concat_map (fun e -> Theories.seq_axioms ~curated ~heap e) seq_elems in
  let data_axs =
    if heap then Theories.heap_axioms ~curated prog
    else List.concat_map (fun d -> Theories.data_axioms ~curated d) prog.datatypes
  in
  let spec_axs = List.filter_map (fun fd -> spec_fn_axiom p prog fd) prog.functions in
  let uses_bitops =
    (* Only include the bit-op range axioms when the program uses them. *)
    List.exists
      (fun fd ->
        List.exists
          (fun top ->
            fold_expr
              (fun acc e ->
                acc || match e with EBinop ((BitAnd | BitOr | BitXor | Shl | Shr), _, _) -> true | _ -> false)
              false top)
          (fn_exprs fd))
      prog.functions
  in
  let bit_axs = if uses_bitops then bitop_axioms p else [] in
  let sorts_used = List.sort_uniq compare (List.map (Theories.sort_of_ty ~heap) tys) in
  let wrap_axs = wrapper_axioms p sorts_used in
  let own_axs =
    if p.Profiles.recheck_ownership then
      ownok_axioms (List.filter (function S.Usort _ -> true | _ -> false) sorts_used)
    else []
  in
  seq_axs @ data_axs @ spec_axs @ bit_axs @ wrap_axs @ own_axs
