open Vir

let int_t = TInt I_math
let seq_t = TSeq int_t

let p name ty = { pname = name; pty = ty; pmut = false }
let len e = ESeq (SeqLen e)
let idx s k = ESeq (SeqIndex (s, k))
let push_ s x = ESeq (SeqPush (s, x))
let skip s k = ESeq (SeqSkip (s, k))
let take s k = ESeq (SeqTake (s, k))
let update_ s k x = ESeq (SeqUpdate (s, k, x))
let append_ a b = ESeq (SeqAppend (a, b))

let lemma name ~params ~requires ~ensures =
  {
    fname = name;
    fmode = Proof;
    params;
    ret = None;
    requires;
    ensures;
    body = Some []; (* push-button: the solver needs no proof body *)
    spec_body = None;
    attrs = [];
  }

let s = v "s"
let t = v "t"
let x = v "x"
let k = v "k"
let j = v "j"

let program =
  {
    datatypes = [];
    functions =
      [
        lemma "lemma_push_len"
          ~params:[ p "s" seq_t; p "x" int_t ]
          ~requires:[]
          ~ensures:[ len (push_ s x) ==: len s +: i 1 ];
        lemma "lemma_push_last"
          ~params:[ p "s" seq_t; p "x" int_t ]
          ~requires:[]
          ~ensures:[ idx (push_ s x) (len s) ==: x ];
        lemma "lemma_push_prefix"
          ~params:[ p "s" seq_t; p "x" int_t; p "k" int_t ]
          ~requires:[ i 0 <=: k; k <: len s ]
          ~ensures:[ idx (push_ s x) k ==: idx s k ];
        lemma "lemma_append_len"
          ~params:[ p "s" seq_t; p "t" seq_t ]
          ~requires:[]
          ~ensures:[ len (append_ s t) ==: len s +: len t ];
        lemma "lemma_append_index_left"
          ~params:[ p "s" seq_t; p "t" seq_t; p "k" int_t ]
          ~requires:[ i 0 <=: k; k <: len s ]
          ~ensures:[ idx (append_ s t) k ==: idx s k ];
        lemma "lemma_append_index_right"
          ~params:[ p "s" seq_t; p "t" seq_t; p "k" int_t ]
          ~requires:[ len s <=: k; k <: len s +: len t ]
          ~ensures:[ idx (append_ s t) k ==: idx t (k -: len s) ];
        lemma "lemma_update_same"
          ~params:[ p "s" seq_t; p "k" int_t; p "x" int_t ]
          ~requires:[ i 0 <=: k; k <: len s ]
          ~ensures:[ idx (update_ s k x) k ==: x; len (update_ s k x) ==: len s ];
        lemma "lemma_update_other"
          ~params:[ p "s" seq_t; p "k" int_t; p "j" int_t; p "x" int_t ]
          ~requires:[ i 0 <=: j; j <: len s; j <>: k ]
          ~ensures:[ idx (update_ s k x) j ==: idx s j ];
        lemma "lemma_skip_len"
          ~params:[ p "s" seq_t; p "k" int_t ]
          ~requires:[ i 0 <=: k; k <=: len s ]
          ~ensures:[ len (skip s k) ==: len s -: k ];
        lemma "lemma_take_skip_parts"
          ~params:[ p "s" seq_t; p "k" int_t; p "j" int_t ]
          ~requires:[ i 0 <=: k; k <=: len s; i 0 <=: j; j <: len s -: k ]
          ~ensures:
            [
              (* take keeps the front, skip exposes the back. *)
              (k >: i 0 ==>: (idx (take s k) (i 0) ==: idx s (i 0)));
              idx (skip s k) j ==: idx s (j +: k);
            ];
        lemma "lemma_skip_skip"
          ~params:[ p "s" seq_t; p "k" int_t; p "j" int_t ]
          ~requires:[ i 0 <=: k; i 0 <=: j; k +: j <=: len s ]
          ~ensures:
            [
              (* skip composes additively: both sides agree pointwise.
                 Stated extensionally (the == on sequences triggers the
                 extensionality rule, like Verus's =~=). *)
              skip (skip s k) j ==: skip s (k +: j);
            ];
        lemma "lemma_take_of_append"
          ~params:[ p "s" seq_t; p "t" seq_t ]
          ~requires:[]
          ~ensures:[ take (append_ s t) (len s) ==: s ];
        lemma "lemma_take_len"
          ~params:[ p "s" seq_t; p "k" int_t ]
          ~requires:[ i 0 <=: k; k <=: len s ]
          ~ensures:[ len (take s k) ==: k ];
        lemma "lemma_take_full"
          ~params:[ p "s" seq_t ]
          ~requires:[]
          ~ensures:[ take s (len s) ==: s ];
        lemma "lemma_append_take_skip"
          ~params:[ p "s" seq_t; p "k" int_t ]
          ~requires:[ i 0 <=: k; k <=: len s ]
          ~ensures:
            [
              (* Splitting and re-concatenating is the identity — the
                 workhorse fact behind every chunked-buffer proof. *)
              append_ (take s k) (skip s k) ==: s;
            ];
      ];
  }

let verify ?(profile = Profiles.verus) () = Driver.verify_program profile program

let _ = (s, t, x, k, j)
