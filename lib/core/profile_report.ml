module J = Vbase.Json
module P = Smt.Profile

(* /2 added the "cache" key (verification-cache counters, null when the
   run had no cache configured). *)
let schema_version = "verus-profile/2"

let required_keys =
  [
    "schema";
    "program";
    "profile";
    "ok";
    "time_s";
    "query_bytes";
    "vcs_profiled";
    "phase";
    "inst_rounds";
    "euf_conflicts";
    "lia_conflicts";
    "theory_lemmas";
    "quantifiers";
    "axioms";
    "functions";
    "lint";
    "cache";
  ]

(* ------------------------------------------------------------------ *)
(* VL010 cross-check                                                   *)
(* ------------------------------------------------------------------ *)

let vl010_cross_check (r : Driver.program_result) =
  match r.Driver.pr_prof with
  | None -> None
  | Some pp -> (
    let heads = Vlint.vl010_heads r.Driver.pr_lint in
    match pp.Driver.pp_smt.P.quants with
    | [] -> None
    | top :: _ when top.P.q_instances = 0 -> None
    | top :: _ ->
      Some (heads, List.exists (fun h -> List.mem h top.P.q_heads) heads))

(* ------------------------------------------------------------------ *)
(* Text rendering                                                      *)
(* ------------------------------------------------------------------ *)

let truncate_label width s =
  if String.length s <= width then s else String.sub s 0 (width - 3) ^ "..."

let render_text ?(top = 10) ~prog_name (r : Driver.program_result) =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  match r.Driver.pr_prof with
  | None ->
    pf
      "no profile collected for %s / %s (front-end rejection, strict lint abort, or \
       profiling not requested)\n"
      prog_name r.Driver.pr_profile;
    Buffer.contents b
  | Some pp ->
    let smt = pp.Driver.pp_smt in
    pf "== profile: %s / %s ==\n" prog_name r.Driver.pr_profile;
    pf "verdict: %s in %.3fs — %d function(s), %d VC(s) profiled, %d query bytes\n"
      (if r.Driver.pr_ok then "VERIFIED" else "NOT VERIFIED")
      r.Driver.pr_time_s
      (List.length r.Driver.pr_fns)
      pp.Driver.pp_vcs r.Driver.pr_bytes;
    let ph = smt.P.phase in
    pf
      "phase times: sat %.3fs | euf %.3fs | lia %.3fs | comb %.3fs | ematch %.3fs   \
       (inst rounds %d, euf conflicts %d, lia conflicts %d, theory lemmas %d)\n"
      ph.P.ph_sat ph.P.ph_euf ph.P.ph_lia ph.P.ph_comb ph.P.ph_ematch smt.P.inst_rounds
      smt.P.euf_conflicts smt.P.lia_conflicts smt.P.theory_lemmas;
    (match r.Driver.pr_cache with
    | None -> ()
    | Some cs ->
      pf "cache: %d hit(s) | %d miss(es) | %d invalidation(s) | %d store(s)%s\n"
        cs.Vcache.hits cs.Vcache.misses cs.Vcache.invalidations cs.Vcache.stores
        (if cs.Vcache.corrupt_load then "   (store was corrupt at load; rebuilt)"
         else if cs.Vcache.entries_dropped > 0 then
           Printf.sprintf "   (%d malformed entr%s dropped at load)" cs.Vcache.entries_dropped
             (if cs.Vcache.entries_dropped = 1 then "y" else "ies")
         else ""));
    (* Quantifier hot-spots. *)
    pf "\ntop %d quantifiers by instantiation:\n" top;
    pf "  %4s %10s %10s %8s %7s  %s\n" "#" "instances" "matched" "dup" "rounds" "quantifier";
    let rows = P.top top smt in
    if rows = [] then pf "  (no quantifier ever fired)\n"
    else
      List.iteri
        (fun i (q : P.quant_profile) ->
          pf "  %4d %10d %10d %8d %3d..%-3d  %s\n" (i + 1) q.P.q_instances q.P.q_matched
            q.P.q_duplicates q.P.q_first_round q.P.q_last_round
            (truncate_label 100 q.P.q_label))
        rows;
    (* Axiom context-bytes attribution. *)
    pf "\ncontext bytes by axiom (printed size x contexts shipped in):\n";
    pf "  %4s %12s %10s %9s  %s\n" "ax#" "bytes" "contexts" "self" "axiom triggers";
    let axs = List.filteri (fun i _ -> i < top) pp.Driver.pp_axiom_costs in
    List.iter
      (fun (a : Driver.axiom_cost) ->
        pf "  %4d %12d %10d %9d  %s\n" a.Driver.ac_index a.Driver.ac_bytes a.Driver.ac_contexts
          a.Driver.ac_self_bytes
          (truncate_label 100 a.Driver.ac_label))
      axs;
    (* Per-function totals. *)
    pf "\nper-function:\n";
    pf "  %-28s %8s %12s %12s\n" "function" "ok" "time" "instances";
    List.iter
      (fun (f : Driver.fn_result) ->
        let insts =
          match f.Driver.fnr_prof with Some fp -> P.total_instances fp | None -> 0
        in
        pf "  %-28s %8s %11.3fs %12d\n" f.Driver.fnr_name
          (if f.Driver.fnr_ok then "ok" else "FAIL")
          f.Driver.fnr_time_s insts)
      r.Driver.pr_fns;
    (* VL010 cross-check. *)
    (match vl010_cross_check r with
    | None -> pf "\nlint cross-check: no quantifier activity to compare against VL010\n"
    | Some ([], _) ->
      pf
        "\nlint cross-check: no VL010 matching-loop findings to compare against (the axiom \
         set lints clean under this profile, or lint was not run)\n"
    | Some (heads, matches) ->
      pf "\nlint cross-check: VL010 flags trigger heads {%s} — top hot-spot %s\n"
        (String.concat ", " heads)
        (if matches then "MATCHES the flagged matching loop"
         else "does not share a head with the flagged loop"));
    Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let quant_json (q : P.quant_profile) =
  J.Obj
    [
      ("label", J.String q.P.q_label);
      ("heads", J.List (List.map (fun h -> J.String h) q.P.q_heads));
      ("nvars", J.Int q.P.q_nvars);
      ("instances", J.Int q.P.q_instances);
      ("matched", J.Int q.P.q_matched);
      ("duplicates", J.Int q.P.q_duplicates);
      ("first_round", J.Int q.P.q_first_round);
      ("last_round", J.Int q.P.q_last_round);
    ]

let axiom_json (a : Driver.axiom_cost) =
  J.Obj
    [
      ("index", J.Int a.Driver.ac_index);
      ("label", J.String a.Driver.ac_label);
      ("heads", J.List (List.map (fun h -> J.String h) a.Driver.ac_heads));
      ("self_bytes", J.Int a.Driver.ac_self_bytes);
      ("contexts", J.Int a.Driver.ac_contexts);
      ("bytes", J.Int a.Driver.ac_bytes);
    ]

let phase_json (ph : P.phase) =
  J.Obj
    [
      ("sat", J.Float ph.P.ph_sat);
      ("euf", J.Float ph.P.ph_euf);
      ("lia", J.Float ph.P.ph_lia);
      ("comb", J.Float ph.P.ph_comb);
      ("ematch", J.Float ph.P.ph_ematch);
    ]

let fn_json (f : Driver.fn_result) =
  let insts =
    match f.Driver.fnr_prof with Some fp -> P.total_instances fp | None -> 0
  in
  J.Obj
    [
      ("name", J.String f.Driver.fnr_name);
      ("ok", J.Bool f.Driver.fnr_ok);
      ("time_s", J.Float f.Driver.fnr_time_s);
      ("bytes", J.Int f.Driver.fnr_bytes);
      ("instances", J.Int insts);
      ("vcs", J.Int (List.length f.Driver.fnr_vcs));
    ]

let to_json ~prog_name (r : Driver.program_result) =
  let pp =
    match r.Driver.pr_prof with
    | Some pp -> pp
    | None ->
      { Driver.pp_smt = P.empty; pp_axiom_costs = []; pp_vcs = 0 }
  in
  let smt = pp.Driver.pp_smt in
  let lint =
    match vl010_cross_check r with
    | None -> J.Obj [ ("vl010_heads", J.List []); ("top_hotspot_matches_vl010", J.Null) ]
    | Some (heads, matches) ->
      J.Obj
        [
          ("vl010_heads", J.List (List.map (fun h -> J.String h) heads));
          ( "top_hotspot_matches_vl010",
            if heads = [] then J.Null else J.Bool matches );
        ]
  in
  J.Obj
    [
      ("schema", J.String schema_version);
      ("program", J.String prog_name);
      ("profile", J.String r.Driver.pr_profile);
      ("ok", J.Bool r.Driver.pr_ok);
      ("time_s", J.Float r.Driver.pr_time_s);
      ("query_bytes", J.Int r.Driver.pr_bytes);
      ("vcs_profiled", J.Int pp.Driver.pp_vcs);
      ("phase", phase_json smt.P.phase);
      ("inst_rounds", J.Int smt.P.inst_rounds);
      ("euf_conflicts", J.Int smt.P.euf_conflicts);
      ("lia_conflicts", J.Int smt.P.lia_conflicts);
      ("theory_lemmas", J.Int smt.P.theory_lemmas);
      ("quantifiers", J.List (List.map quant_json smt.P.quants));
      ("axioms", J.List (List.map axiom_json pp.Driver.pp_axiom_costs));
      ("functions", J.List (List.map fn_json r.Driver.pr_fns));
      ("lint", lint);
      ( "cache",
        match r.Driver.pr_cache with
        | None -> J.Null
        | Some cs ->
          J.Obj
            [
              ("hits", J.Int cs.Vcache.hits);
              ("misses", J.Int cs.Vcache.misses);
              ("invalidations", J.Int cs.Vcache.invalidations);
              ("stores", J.Int cs.Vcache.stores);
              ("entries_loaded", J.Int cs.Vcache.entries_loaded);
              ("entries_dropped", J.Int cs.Vcache.entries_dropped);
              ("corrupt_load", J.Bool cs.Vcache.corrupt_load);
            ] );
    ]

(* ------------------------------------------------------------------ *)
(* Validation (the CI smoke)                                           *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = Result.bind r f

let require_member key j =
  match J.member key j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing required key %S" key)

let require_number key j =
  match Option.bind (J.member key j) J.to_float with
  | Some _ -> Ok ()
  | None -> Error (Printf.sprintf "key %S missing or not a number" key)

let require_string key j =
  match J.member key j with
  | Some (J.String _) -> Ok ()
  | _ -> Error (Printf.sprintf "key %S missing or not a string" key)

let validate_rows kind required j =
  match j with
  | J.List rows ->
    List.fold_left
      (fun acc row ->
        let* () = acc in
        match row with
        | J.Obj _ ->
          List.fold_left
            (fun acc k ->
              let* () = acc in
              match J.member k row with
              | Some _ -> Ok ()
              | None -> Error (Printf.sprintf "%s row missing key %S" kind k))
            (Ok ()) required
        | _ -> Error (kind ^ " row is not an object"))
      (Ok ()) rows
  | _ -> Error (kind ^ " is not an array")

let validate j =
  let* () =
    match j with J.Obj _ -> Ok () | _ -> Error "document is not a JSON object"
  in
  let* () =
    List.fold_left
      (fun acc k ->
        let* () = acc in
        let* _ = require_member k j in
        Ok ())
      (Ok ()) required_keys
  in
  let* () =
    match J.member "schema" j with
    | Some (J.String s) when s = schema_version -> Ok ()
    | Some (J.String s) -> Error (Printf.sprintf "schema %S, expected %S" s schema_version)
    | _ -> Error "schema key is not a string"
  in
  let* () = require_string "program" j in
  let* () = require_string "profile" j in
  let* phase = require_member "phase" j in
  let* () =
    List.fold_left
      (fun acc k ->
        let* () = acc in
        require_number k phase)
      (Ok ())
      [ "sat"; "euf"; "lia"; "comb"; "ematch" ]
  in
  let* quants = require_member "quantifiers" j in
  let* () =
    validate_rows "quantifier"
      [ "label"; "heads"; "instances"; "matched"; "duplicates" ]
      quants
  in
  let* axioms = require_member "axioms" j in
  let* () = validate_rows "axiom" [ "index"; "label"; "bytes"; "contexts" ] axioms in
  let* fns = require_member "functions" j in
  let* () = validate_rows "function" [ "name"; "ok"; "time_s"; "instances" ] fns in
  let* lint = require_member "lint" j in
  let* _ = require_member "vl010_heads" lint in
  let* _ = require_member "top_hotspot_matches_vl010" lint in
  let* cache = require_member "cache" j in
  let* () =
    match cache with
    | J.Null -> Ok ()
    | J.Obj _ ->
      List.fold_left
        (fun acc k ->
          let* () = acc in
          require_number k cache)
        (Ok ())
        [ "hits"; "misses"; "invalidations"; "stores" ]
    | _ -> Error "cache is neither null nor an object"
  in
  Ok ()
