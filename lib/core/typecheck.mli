(** Type and mode checking for VIR programs.

    Validates what the Rust compiler + Verus mode checker would: name
    resolution, expression typing, spec/proof/exec mode discipline
    (quantifiers only in specification positions, spec functions pure and
    total).  Errors are human-readable strings with the enclosing function
    name. *)

val check_program : Vir.program -> (unit, string list) result

val ty_of_expr : Vir.program -> (string * Vir.ty) list -> Vir.expr -> Vir.ty
(** Type of an expression in the given variable environment.  Raises
    [Failure] with a descriptive message on ill-typed input; used by the
    encoder, which runs after [check_program] has passed. *)
