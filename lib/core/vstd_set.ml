(* A vstd-style verified lemma library for finite sets (the analogue of
   Verus's [vstd::set] broadcast lemmas).

   Sets of math integers are an uninterpreted sort with membership axioms
   for the constructors and boolean algebra, a Skolem-witness axiom pair
   for [subset] (so both using and *establishing* subset are matching
   problems rather than nested quantifiers), and cardinality recurrences.
   Every lemma is an obligation discharged by the in-repo solver. *)

module T = Smt.Term
module S = Smt.Sort

let set_sort = S.Usort "VSet"
let mem_sym = T.Sym.declare "vset.mem" [ set_sort; S.Int ] S.Bool
let empty_sym = T.Sym.declare "vset.empty" [] set_sort
let insert_sym = T.Sym.declare "vset.insert" [ set_sort; S.Int ] set_sort
let remove_sym = T.Sym.declare "vset.remove" [ set_sort; S.Int ] set_sort
let union_sym = T.Sym.declare "vset.union" [ set_sort; set_sort ] set_sort
let inter_sym = T.Sym.declare "vset.inter" [ set_sort; set_sort ] set_sort
let diff_sym = T.Sym.declare "vset.diff" [ set_sort; set_sort ] set_sort
let subset_sym = T.Sym.declare "vset.subset" [ set_sort; set_sort ] S.Bool
let wit_sym = T.Sym.declare "vset.subset_wit" [ set_sort; set_sort ] S.Int
let card_sym = T.Sym.declare "vset.card" [ set_sort ] S.Int

let mem s x = T.app mem_sym [ s; x ]
let empty = T.const empty_sym
let insert s x = T.app insert_sym [ s; x ]
let remove s x = T.app remove_sym [ s; x ]
let union s t = T.app union_sym [ s; t ]
let inter s t = T.app inter_sym [ s; t ]
let diff s t = T.app diff_sym [ s; t ]
let subset s t = T.app subset_sym [ s; t ]
let wit s t = T.app wit_sym [ s; t ]
let card s = T.app card_sym [ s ]
let i = T.int_of

let axioms =
  let s = T.bvar "s" set_sort
  and t = T.bvar "t" set_sort in
  let x = T.bvar "x" S.Int
  and y = T.bvar "y" S.Int in
  let ss = ("s", set_sort) and ts = ("t", set_sort) in
  let xs = ("x", S.Int) and ys = ("y", S.Int) in
  [
    T.forall ~triggers:[ [ mem empty y ] ] [ ys ] (T.not_ (mem empty y));
    T.forall
      ~triggers:[ [ mem (insert s x) y ] ]
      [ ss; xs; ys ]
      (T.iff (mem (insert s x) y) (T.or_ [ T.eq y x; mem s y ]));
    T.forall
      ~triggers:[ [ mem (remove s x) y ] ]
      [ ss; xs; ys ]
      (T.iff (mem (remove s x) y) (T.and_ [ T.neq y x; mem s y ]));
    T.forall
      ~triggers:[ [ mem (union s t) y ] ]
      [ ss; ts; ys ]
      (T.iff (mem (union s t) y) (T.or_ [ mem s y; mem t y ]));
    T.forall
      ~triggers:[ [ mem (inter s t) y ] ]
      [ ss; ts; ys ]
      (T.iff (mem (inter s t) y) (T.and_ [ mem s y; mem t y ]));
    T.forall
      ~triggers:[ [ mem (diff s t) y ] ]
      [ ss; ts; ys ]
      (T.iff (mem (diff s t) y) (T.and_ [ mem s y; T.not_ (mem t y) ]));
    (* Subset elimination: a multi-pattern trigger, so the axiom fires only
       when both a subset fact and a membership fact are around. *)
    T.forall
      ~triggers:[ [ subset s t; mem s y ] ]
      [ ss; ts; ys ]
      (T.implies (T.and_ [ subset s t; mem s y ]) (mem t y));
    (* Subset introduction via a Skolem witness: if subset(s,t) is false
       there is a definite counterexample element. *)
    T.forall
      ~triggers:[ [ subset s t ] ]
      [ ss; ts ]
      (T.implies
         (T.not_ (subset s t))
         (T.and_ [ mem s (wit s t); T.not_ (mem t (wit s t)) ]));
    (* Cardinality recurrences. *)
    T.eq (card empty) (i 0);
    T.forall
      ~triggers:[ [ card (insert s x) ] ]
      [ ss; xs ]
      (T.eq (card (insert s x)) (T.ite (mem s x) (card s) (T.add [ card s; i 1 ])));
    T.forall
      ~triggers:[ [ card (remove s x) ] ]
      [ ss; xs ]
      (T.eq (card (remove s x)) (T.ite (mem s x) (T.sub (card s) (i 1)) (card s)));
    T.forall ~triggers:[ [ card s ] ] [ ss ] (T.ge (card s) (i 0));
  ]

type obligation = { name : string; proved : bool; detail : string; time_s : float }

let check name ?(hyps = []) goal =
  let t0 = Unix.gettimeofday () in
  let r = Smt.Solver.check_valid ~hyps:(axioms @ hyps) goal in
  {
    name;
    proved = r.Smt.Solver.answer = Smt.Solver.Unsat;
    detail =
      (match r.Smt.Solver.answer with
      | Smt.Solver.Unsat -> ""
      | Smt.Solver.Sat -> "countermodel"
      | Smt.Solver.Unknown msg -> msg);
    time_s = Unix.gettimeofday () -. t0;
  }

let fc name sort = T.const (T.Sym.declare ("vs." ^ name) [] sort)

let run () =
  let s = fc "s" set_sort
  and t = fc "t" set_sort
  and u = fc "u" set_sort in
  let x = fc "x" S.Int
  and y = fc "y" S.Int
  and z = fc "z" S.Int in
  [
    check "mem_insert: x in insert(s,x)" (mem (insert s x) x);
    check "insert_commutes (pointwise)"
      (T.iff (mem (insert (insert s x) y) z) (mem (insert (insert s y) x) z));
    check "union_commutes (pointwise)"
      (T.iff (mem (union s t) z) (mem (union t s) z));
    check "union_empty (pointwise)" (T.iff (mem (union s empty) z) (mem s z));
    check "subset_refl: s <= s" (subset s s);
    check "inter_subset: s&t <= s" (subset (inter s t) s);
    check "diff_subset: s\\t <= s" (subset (diff s t) s);
    check "subset_trans: s <= t && t <= u ==> s <= u"
      ~hyps:[ subset s t; subset t u ]
      (subset s u);
    check "subset_union: s <= s|t" (subset s (union s t));
    check "diff_inter (pointwise): s \\ (s&t) == s \\ t"
      (T.iff (mem (diff s (inter s t)) z) (mem (diff s t) z));
    check "remove_insert_fresh (pointwise): !x-in-s ==> remove(insert(s,x),x) == s"
      ~hyps:[ T.not_ (mem s x) ]
      (T.iff (mem (remove (insert s x) x) z) (mem s z));
    check "card_insert_fresh: !mem(s,x) ==> |insert(s,x)| == |s| + 1"
      ~hyps:[ T.not_ (mem s x) ]
      (T.eq (card (insert s x)) (T.add [ card s; i 1 ]));
    check "card_insert_mem: mem(s,x) ==> |insert(s,x)| == |s|" ~hyps:[ mem s x ]
      (T.eq (card (insert s x)) (card s));
    check "card_pair_distinct: x != y ==> |{x,y}| == 2"
      ~hyps:[ T.neq x y ]
      (T.eq (card (insert (insert empty x) y)) (i 2));
    (* Like vstd's lemma_set_nonempty: a member forces positive size; the
       hypothesis mentioning card(remove(s,x)) is the one-line proof hint
       (itself an axiom instance, hence sound to assume). *)
    check "mem_card_pos: mem(s,x) ==> |s| >= 1"
      ~hyps:[ mem s x; T.ge (card (remove s x)) (i 0) ]
      (T.ge (card s) (i 1));
  ]

let all_proved obs = List.for_all (fun o -> o.proved) obs
