module T = Smt.Term
module S = Smt.Sort

type strategy = Variable | Constant | Map

type field = {
  f_name : string;
  f_strategy : strategy;
  f_sort : S.t;
  f_key_sort : S.t option;
}

type state = {
  get : string -> T.t;
  map_val : string -> T.t -> T.t;
  map_dom : string -> T.t -> T.t;
}

type action =
  | Require of (state * T.t list -> T.t)
  | Assert of (state * T.t list -> T.t)
  | Update of string * (state * T.t list -> T.t)
  | Map_remove of string * (state * T.t list -> T.t)
  | Map_add of string * (state * T.t list -> T.t) * (state * T.t list -> T.t)

type transition = { t_name : string; t_params : (string * S.t) list; t_actions : action list }

type machine = {
  m_name : string;
  m_fields : field list;
  m_init : state -> T.t;
  m_transitions : transition list;
  m_invariant : state -> T.t;
  m_properties : (string * (state -> T.t)) list;
}

type obligation_result = { ob_name : string; ob_answer : Smt.Solver.answer; ob_time_s : float }
type report = { machine : string; obligations : obligation_result list; ok : bool }

(* ------------------------------------------------------------------ *)
(* Symbolic states                                                     *)
(* ------------------------------------------------------------------ *)

let field_of m name =
  match List.find_opt (fun f -> String.equal f.f_name name) m.m_fields with
  | Some f -> f
  | None -> invalid_arg ("VerusSync: unknown field " ^ name)

(* A fresh symbolic state: variable/constant fields are constants; map
   fields are (value, domain) function symbols. *)
let fresh_state m tag =
  let syms =
    List.map
      (fun f ->
        match f.f_strategy with
        | Variable | Constant ->
          (f.f_name, `Var (T.const (T.Sym.fresh (m.m_name ^ "." ^ f.f_name ^ tag) [] f.f_sort)))
        | Map ->
          let k = Option.get f.f_key_sort in
          ( f.f_name,
            `Map
              ( T.Sym.fresh (m.m_name ^ "." ^ f.f_name ^ ".val" ^ tag) [ k ] f.f_sort,
                T.Sym.fresh (m.m_name ^ "." ^ f.f_name ^ ".dom" ^ tag) [ k ] S.Bool ) ))
      m.m_fields
  in
  let get name =
    match List.assoc name syms with
    | `Var t -> t
    | `Map _ -> invalid_arg ("field " ^ name ^ " is a map")
  in
  let map_val name k =
    match List.assoc name syms with
    | `Map (v, _) -> T.app v [ k ]
    | `Var _ -> invalid_arg ("field " ^ name ^ " is not a map")
  in
  let map_dom name k =
    match List.assoc name syms with
    | `Map (_, d) -> T.app d [ k ]
    | `Var _ -> invalid_arg ("field " ^ name ^ " is not a map")
  in
  ({ get; map_val; map_dom }, syms)

(* ------------------------------------------------------------------ *)
(* Inductiveness obligations                                           *)
(* ------------------------------------------------------------------ *)

(* Symbolically execute a transition's actions over the pre-state,
   accumulating: enabling assumptions, safety obligations, and the final
   (intermediate) formulas describing each field. *)
type sym_exec = {
  mutable assumes : T.t list;
  mutable safeties : (string * T.t) list;
  (* Per variable field: current value term.  Per map field: current value
     and domain as term-level functions of a key. *)
  mutable var_now : (string * T.t) list;
  mutable map_now : (string * ((T.t -> T.t) * (T.t -> T.t))) list;
}

let exec_transition m (pre : state) params (tr : transition) =
  let ex =
    {
      assumes = [];
      safeties = [];
      var_now =
        List.filter_map
          (fun f ->
            match f.f_strategy with
            | Variable | Constant -> Some (f.f_name, pre.get f.f_name)
            | Map -> None)
          m.m_fields;
      map_now =
        List.filter_map
          (fun f ->
            match f.f_strategy with
            | Map ->
              Some (f.f_name, ((fun k -> pre.map_val f.f_name k), fun k -> pre.map_dom f.f_name k))
            | Variable | Constant -> None)
          m.m_fields;
    }
  in
  (* The state view actions see: the evolving intermediate state. *)
  let mid_state =
    {
      get = (fun n -> List.assoc n ex.var_now);
      map_val = (fun n k -> (fst (List.assoc n ex.map_now)) k);
      map_dom = (fun n k -> (snd (List.assoc n ex.map_now)) k);
    }
  in
  List.iteri
    (fun i a ->
      match a with
      | Require g -> ex.assumes <- g (mid_state, params) :: ex.assumes
      | Assert g ->
        ex.safeties <-
          (Printf.sprintf "%s: assert %d" tr.t_name i, g (mid_state, params)) :: ex.safeties
      | Update (fname, f) ->
        (match (field_of m fname).f_strategy with
        | Constant -> invalid_arg ("VerusSync: update of constant field " ^ fname)
        | _ -> ());
        let nv = f (mid_state, params) in
        ex.var_now <- (fname, nv) :: List.remove_assoc fname ex.var_now
      | Map_remove (fname, fk) ->
        let k0 = fk (mid_state, params) in
        let vf, df = List.assoc fname ex.map_now in
        (* Ownership of the shard guarantees presence. *)
        ex.assumes <- df k0 :: ex.assumes;
        let df' k = T.and_ [ df k; T.not_ (T.eq k k0) ] in
        ex.map_now <- (fname, (vf, df')) :: List.remove_assoc fname ex.map_now
      | Map_add (fname, fk, fv) ->
        let k0 = fk (mid_state, params) in
        let v0 = fv (mid_state, params) in
        let vf, df = List.assoc fname ex.map_now in
        (* Safety condition: the key must be absent (shard disjointness). *)
        ex.safeties <-
          (Printf.sprintf "%s: add to %s targets an absent key" tr.t_name fname, T.not_ (df k0))
          :: ex.safeties;
        (* ... and then it is assumed for constructing the post-state. *)
        ex.assumes <- T.not_ (df k0) :: ex.assumes;
        let vf' k = T.ite (T.eq k k0) v0 (vf k) in
        let df' k = T.or_ [ df k; T.eq k k0 ] in
        ex.map_now <- (fname, (vf', df')) :: List.remove_assoc fname ex.map_now)
    tr.t_actions;
  ex

(* Build the post-state as fresh symbols constrained to the final formulas
   (map fields get pointwise definitional axioms). *)
let post_state_of m (ex : sym_exec) tag =
  let post, _syms = fresh_state m tag in
  let defs = ref [] in
  List.iter
    (fun f ->
      match f.f_strategy with
      | Variable | Constant ->
        defs := T.eq (post.get f.f_name) (List.assoc f.f_name ex.var_now) :: !defs
      | Map ->
        let k_sort = Option.get f.f_key_sort in
        let kv = T.bvar ("k!" ^ f.f_name) k_sort in
        let vf, df = List.assoc f.f_name ex.map_now in
        defs :=
          T.forall
            ~triggers:[ [ post.map_val f.f_name kv ] ]
            [ ("k!" ^ f.f_name, k_sort) ]
            (T.eq (post.map_val f.f_name kv) (vf kv))
          :: T.forall
               ~triggers:[ [ post.map_dom f.f_name kv ] ]
               [ ("k!" ^ f.f_name, k_sort) ]
               (T.iff (post.map_dom f.f_name kv) (df kv))
          :: !defs)
    m.m_fields;
  (post, !defs)

let check ?(config = Smt.Solver.default_config) (m : machine) : report =
  let results = ref [] in
  let prove name ~hyps goal =
    let t0 = Unix.gettimeofday () in
    let r = Smt.Solver.check_valid ~config ~hyps goal in
    results :=
      { ob_name = name; ob_answer = r.Smt.Solver.answer; ob_time_s = Unix.gettimeofday () -. t0 }
      :: !results
  in
  (* 1. init => invariant *)
  let s0, _ = fresh_state m "!init" in
  prove (m.m_name ^ ": init establishes invariant") ~hyps:[ m.m_init s0 ] (m.m_invariant s0);
  (* 2. each transition preserves the invariant (and its safety conditions
        hold). *)
  List.iter
    (fun tr ->
      let pre, _ = fresh_state m ("!pre_" ^ tr.t_name) in
      let params =
        List.map (fun (pn, ps) -> T.const (T.Sym.fresh (tr.t_name ^ "." ^ pn) [] ps)) tr.t_params
      in
      let ex = exec_transition m pre params tr in
      let inv_pre = m.m_invariant pre in
      (* Safety conditions: invariant + enabling conditions so far imply
         each safety assertion. *)
      List.iter
        (fun (name, safety) ->
          prove (m.m_name ^ ": " ^ name) ~hyps:(inv_pre :: ex.assumes) safety)
        (List.rev ex.safeties);
      (* Inductiveness. *)
      let post, defs = post_state_of m ex ("!post_" ^ tr.t_name) in
      prove
        (m.m_name ^ ": " ^ tr.t_name ^ " preserves invariant")
        ~hyps:((inv_pre :: ex.assumes) @ defs)
        (m.m_invariant post))
    m.m_transitions;
  (* 3. properties follow from the invariant *)
  List.iter
    (fun (pname, prop) ->
      let s, _ = fresh_state m ("!prop_" ^ pname) in
      prove (m.m_name ^ ": property " ^ pname) ~hyps:[ m.m_invariant s ] (prop s))
    m.m_properties;
  let obligations = List.rev !results in
  {
    machine = m.m_name;
    obligations;
    ok = List.for_all (fun o -> o.ob_answer = Smt.Solver.Unsat) obligations;
  }

(* ------------------------------------------------------------------ *)
(* Refinement to an atomic specification                               *)
(* ------------------------------------------------------------------ *)

type spec = {
  sp_name : string;
  sp_fields : (string * S.t) list;
  sp_init : (string -> T.t) -> T.t;
  sp_steps : (string * ((string -> T.t) -> (string -> T.t) -> T.t list -> T.t)) list;
}

type refinement = {
  r_spec : spec;
  r_abs : state -> string -> T.t;
  r_map : (string * string option) list;
}

let check_refinement ?(config = Smt.Solver.default_config) (m : machine) (r : refinement) :
    report =
  let results = ref [] in
  let prove name ~hyps goal =
    let t0 = Unix.gettimeofday () in
    let res = Smt.Solver.check_valid ~config ~hyps goal in
    results :=
      {
        ob_name = name;
        ob_answer = res.Smt.Solver.answer;
        ob_time_s = Unix.gettimeofday () -. t0;
      }
      :: !results
  in
  let spec_step_of tr =
    match List.assoc_opt tr.t_name r.r_map with
    | None ->
      invalid_arg
        (Printf.sprintf "VerusSync refinement: transition %s has no spec mapping" tr.t_name)
    | Some None -> None
    | Some (Some sname) -> (
      match List.assoc_opt sname r.r_spec.sp_steps with
      | Some f -> Some f
      | None -> invalid_arg ("VerusSync refinement: unknown spec step " ^ sname))
  in
  (* 1. Initial states abstract to spec initial states. *)
  let s0, _ = fresh_state m "!rinit" in
  prove
    (Printf.sprintf "%s refines %s: init" m.m_name r.r_spec.sp_name)
    ~hyps:[ m.m_init s0 ]
    (r.r_spec.sp_init (r.r_abs s0));
  (* 2. Every transition simulates its named spec step (or stutters:
        the abstraction is unchanged). *)
  List.iter
    (fun tr ->
      let pre, _ = fresh_state m ("!rpre_" ^ tr.t_name) in
      let params =
        List.map (fun (pn, ps) -> T.const (T.Sym.fresh (tr.t_name ^ ".r." ^ pn) [] ps)) tr.t_params
      in
      let ex = exec_transition m pre params tr in
      let post, defs = post_state_of m ex ("!rpost_" ^ tr.t_name) in
      let hyps = (m.m_invariant pre :: ex.assumes) @ defs in
      let abs_pre = r.r_abs pre and abs_post = r.r_abs post in
      let goal =
        match spec_step_of tr with
        | Some step -> step abs_pre abs_post params
        | None ->
          (* Stutter: the abstraction must be unchanged. *)
          T.and_
            (List.map (fun (f, _) -> T.eq (abs_post f) (abs_pre f)) r.r_spec.sp_fields)
      in
      prove
        (Printf.sprintf "%s refines %s: %s" m.m_name r.r_spec.sp_name tr.t_name)
        ~hyps goal)
    m.m_transitions;
  let obligations = List.rev !results in
  {
    machine = m.m_name ^ " ⊑ " ^ r.r_spec.sp_name;
    obligations;
    ok = List.for_all (fun o -> o.ob_answer = Smt.Solver.Unsat) obligations;
  }

(* ------------------------------------------------------------------ *)
(* Runtime tokens                                                      *)
(* ------------------------------------------------------------------ *)

module Runtime = struct
  type shard = S_var of string * int | S_map of string * int * int

  exception Protocol_violation of string

  type conc_state = {
    vars : (string, int) Hashtbl.t;
    maps : (string, (int, int) Hashtbl.t) Hashtbl.t;
  }

  type inst = {
    machine : machine;
    st : conc_state;
    lock : Mutex.t;
    mutable steps : int;
  }

  let viol fmt = Printf.ksprintf (fun s -> raise (Protocol_violation s)) fmt

  (* Evaluate a guard/update term under the concrete state + params.
     Values are ints (booleans as 0/1; uninterpreted sorts as ids). *)
  let rec eval (inst : inst) (bindings : (string * int) list) (t : T.t) : int =
    let ev x = eval inst bindings x in
    match t.T.node with
    | T.True -> 1
    | T.False -> 0
    | T.Int_lit v -> Vbase.Bigint.to_int_exn v
    | T.App (f, []) -> (
      (* A constant: either a parameter binding or a state field. *)
      match List.assoc_opt f.T.sname bindings with
      | Some v -> v
      | None -> (
        match Hashtbl.find_opt inst.st.vars f.T.sname with
        | Some v -> v
        | None -> viol "unbound constant %s in guard" f.T.sname))
    | T.App (f, [ k ]) -> (
      (* Map field access: value or domain function. *)
      let kv = ev k in
      match Hashtbl.find_opt inst.st.maps f.T.sname with
      | Some tbl -> (
        if Filename.check_suffix f.T.sname ".dom$rt" then
          if Hashtbl.mem tbl kv then 1 else 0
        else
          match Hashtbl.find_opt tbl kv with
          | Some v -> v
          | None -> viol "map %s has no key %d" f.T.sname kv)
      | None -> viol "unknown map function %s" f.T.sname)
    | T.Eq (a, b) -> if ev a = ev b then 1 else 0
    | T.Not a -> 1 - ev a
    | T.And xs -> if List.for_all (fun x -> ev x = 1) xs then 1 else 0
    | T.Or xs -> if List.exists (fun x -> ev x = 1) xs then 1 else 0
    | T.Implies (a, b) -> if ev a = 0 || ev b = 1 then 1 else 0
    | T.Iff (a, b) -> if ev a = ev b then 1 else 0
    | T.Ite (c, a, b) -> if ev c = 1 then ev a else ev b
    | T.Add xs -> List.fold_left (fun acc x -> acc + ev x) 0 xs
    | T.Sub (a, b) -> ev a - ev b
    | T.Mul (a, b) -> ev a * ev b
    | T.Neg a -> -ev a
    | T.Le (a, b) -> if ev a <= ev b then 1 else 0
    | T.Lt (a, b) -> if ev a < ev b then 1 else 0
    | T.Imod (a, b) ->
      let bb = ev b in
      if bb = 0 then viol "mod by zero in guard" else ((ev a mod bb) + abs bb) mod abs bb
    | T.Idiv (a, b) ->
      let bb = ev b in
      if bb = 0 then viol "div by zero in guard" else ev a / bb
    | _ -> viol "cannot evaluate %s at runtime" (T.to_string t)

  (* The runtime uses a distinguished symbolic state whose field accessors
     are named so [eval] can route them to the concrete tables. *)
  let rt_state (m : machine) =
    {
      get = (fun n -> T.const (T.Sym.declare (m.m_name ^ "/" ^ n ^ "$rt") [] (field_of m n).f_sort));
      map_val =
        (fun n k ->
          let f = field_of m n in
          T.app
            (T.Sym.declare (m.m_name ^ "/" ^ n ^ ".val$rt") [ Option.get f.f_key_sort ] f.f_sort)
            [ k ]);
      map_dom =
        (fun n k ->
          let f = field_of m n in
          T.app
            (T.Sym.declare (m.m_name ^ "/" ^ n ^ ".dom$rt") [ Option.get f.f_key_sort ] S.Bool)
            [ k ]);
    }
  [@@warning "-32"]

  (* Direct interpretation of actions against concrete state is simpler and
     avoids symbolic evaluation: guards built by the machine's functions are
     evaluated through [eval] with state fields resolved by name. *)

  let create (m : machine) ~init =
    let st = { vars = Hashtbl.create 8; maps = Hashtbl.create 8 } in
    List.iter
      (fun f ->
        match (f.f_strategy, List.assoc_opt f.f_name init) with
        | (Variable | Constant), Some (`Var v) ->
          Hashtbl.replace st.vars (m.m_name ^ "/" ^ f.f_name ^ "$rt") v
        | Map, Some (`Map kvs) ->
          let tbl = Hashtbl.create 16 in
          List.iter (fun (k, v) -> Hashtbl.replace tbl k v) kvs;
          Hashtbl.replace st.maps (m.m_name ^ "/" ^ f.f_name ^ ".val$rt") tbl;
          (* dom shares the same table *)
          Hashtbl.replace st.maps (m.m_name ^ "/" ^ f.f_name ^ ".dom$rt") tbl
        | _ -> viol "missing or mismatched initial value for field %s" f.f_name)
      m.m_fields;
    { machine = m; st; lock = Mutex.create (); steps = 0 }

  let state_view inst =
    let m = inst.machine in
    {
      get =
        (fun n ->
          T.const (T.Sym.declare (m.m_name ^ "/" ^ n ^ "$rt") [] (field_of m n).f_sort));
      map_val =
        (fun n k ->
          let f = field_of m n in
          T.app
            (T.Sym.declare (m.m_name ^ "/" ^ n ^ ".val$rt") [ Option.get f.f_key_sort ] f.f_sort)
            [ k ]);
      map_dom =
        (fun n k ->
          let f = field_of m n in
          T.app
            (T.Sym.declare (m.m_name ^ "/" ^ n ^ ".dom$rt") [ Option.get f.f_key_sort ] S.Bool)
            [ k ]);
    }

  let shards_of inst =
    Mutex.lock inst.lock;
    let m = inst.machine in
    let out = ref [] in
    List.iter
      (fun f ->
        match f.f_strategy with
        | Constant -> ()
        | Variable ->
          out :=
            S_var (f.f_name, Hashtbl.find inst.st.vars (m.m_name ^ "/" ^ f.f_name ^ "$rt"))
            :: !out
        | Map ->
          let tbl = Hashtbl.find inst.st.maps (m.m_name ^ "/" ^ f.f_name ^ ".val$rt") in
          Hashtbl.iter (fun k v -> out := S_map (f.f_name, k, v) :: !out) tbl)
      m.m_fields;
    Mutex.unlock inst.lock;
    !out

  let constant inst name =
    let f = field_of inst.machine name in
    if f.f_strategy <> Constant then viol "%s is not a constant field" name;
    Hashtbl.find inst.st.vars (inst.machine.m_name ^ "/" ^ name ^ "$rt")

  let steps_taken inst = inst.steps

  let step inst ~transition_name ~params ~consume =
    let m = inst.machine in
    let tr =
      match List.find_opt (fun t -> String.equal t.t_name transition_name) m.m_transitions with
      | Some t -> t
      | None -> viol "unknown transition %s" transition_name
    in
    if List.length params <> List.length tr.t_params then
      viol "%s: wrong number of parameters" transition_name;
    Mutex.lock inst.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock inst.lock)
      (fun () ->
        let bindings =
          List.map2 (fun (pn, _) v -> (transition_name ^ "." ^ pn ^ "$rtp", v)) tr.t_params params
        in
        let param_terms =
          List.map
            (fun (pn, ps) -> T.const (T.Sym.declare (transition_name ^ "." ^ pn ^ "$rtp") [] ps))
            tr.t_params
        in
        let sview = state_view inst in
        (* Validate shard coverage: every Map_remove key must be covered by
           a consumed shard; every Update field needs its variable shard. *)
        let consumed_ok (needed : shard) =
          List.exists
            (fun s ->
              match (s, needed) with
              | S_var (f1, _), S_var (f2, _) -> String.equal f1 f2
              | S_map (f1, k1, _), S_map (f2, k2, _) -> String.equal f1 f2 && k1 = k2
              | _ -> false)
            consume
        in
        let produced = ref [] in
        let removals = ref [] in
        List.iter
          (fun a ->
            match a with
            | Require g ->
              if eval inst bindings (g (sview, param_terms)) <> 1 then
                viol "%s: enabling condition failed" transition_name
            | Assert g ->
              if eval inst bindings (g (sview, param_terms)) <> 1 then
                viol "%s: safety assertion failed" transition_name
            | Update (fname, f) ->
              if not (consumed_ok (S_var (fname, 0))) then
                viol "%s: missing shard for field %s" transition_name fname;
              let nv = eval inst bindings (f (sview, param_terms)) in
              Hashtbl.replace inst.st.vars (m.m_name ^ "/" ^ fname ^ "$rt") nv;
              produced := S_var (fname, nv) :: !produced
            | Map_remove (fname, fk) ->
              let k = eval inst bindings (fk (sview, param_terms)) in
              if not (consumed_ok (S_map (fname, k, 0))) then
                viol "%s: missing map shard %s[%d]" transition_name fname k;
              let tbl = Hashtbl.find inst.st.maps (m.m_name ^ "/" ^ fname ^ ".val$rt") in
              if not (Hashtbl.mem tbl k) then
                viol "%s: removing absent key %s[%d]" transition_name fname k;
              removals := (fname, k) :: !removals
            | Map_add (fname, fk, fv) ->
              let k = eval inst bindings (fk (sview, param_terms)) in
              let nv = eval inst bindings (fv (sview, param_terms)) in
              (* Apply pending removals before the presence check so that
                 remove-then-add of the same key works. *)
              List.iter
                (fun (fn, kk) ->
                  let tbl = Hashtbl.find inst.st.maps (m.m_name ^ "/" ^ fn ^ ".val$rt") in
                  Hashtbl.remove tbl kk)
                !removals;
              removals := [];
              let tbl = Hashtbl.find inst.st.maps (m.m_name ^ "/" ^ fname ^ ".val$rt") in
              if Hashtbl.mem tbl k then
                viol "%s: adding present key %s[%d]" transition_name fname k;
              Hashtbl.replace tbl k nv;
              produced := S_map (fname, k, nv) :: !produced)
          tr.t_actions;
        (* Flush any trailing removals. *)
        List.iter
          (fun (fn, kk) ->
            let tbl = Hashtbl.find inst.st.maps (m.m_name ^ "/" ^ fn ^ ".val$rt") in
            Hashtbl.remove tbl kk)
          !removals;
        inst.steps <- inst.steps + 1;
        !produced)
end
