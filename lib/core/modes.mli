(** Custom proof automation for system idioms — the paper's §3.3.

    Each mode checks a claim with dedicated machinery, isolated from the
    main SMT context:

    - [bit_vector]: the goal is reinterpreted over fixed-width bit-vectors
      (integers become BV constants, arithmetic becomes wrapping BV
      arithmetic, the uninterpreted [uN.and]-style symbols become real BV
      operations) and discharged by bit-blasting.
    - [nonlinear_arith]: the goal is polynomial-normalized, instrumented
      with ground nonlinear lemmas (squares, sign rules, monotonicity) for
      the products it mentions, and sent to the solver as an isolated
      query.
    - [integer_ring]: ring congruence goals ([% c == 0] facts and
      equalities under the ring operations) are decided by Gröbner-basis ideal
      membership.
    - [compute]: ground spec expressions are evaluated by the interpreter. *)

type outcome = Proved | Refuted of string | Unsupported of string

(** Every mode accepts the same [?budget] the main solver, the EPR
    grounding and the CLI flags consume ({!Smt.Solver.budget}): the
    bit-vector and nonlinear modes run their isolated queries under it,
    the ring mode bounds Gröbner completion by its [ring_pairs_budget],
    and [compute] accepts (and ignores) it so the driver can thread one
    budget uniformly.  Default: {!Smt.Solver.default_budget}. *)

val prove_bit_vector : ?budget:Smt.Solver.budget -> ?width:int -> Smt.Term.t -> outcome
(** Validity of the goal under bit-vector semantics at [width] (default
    64).  [Unsupported] if the goal uses operations with no BV translation
    (e.g. division by a non-power-of-two). *)

val prove_nonlinear : ?budget:Smt.Solver.budget -> ?hyps:Smt.Term.t list -> Smt.Term.t -> outcome

val prove_integer_ring : ?budget:Smt.Solver.budget -> Smt.Term.t -> outcome
(** Goal shape: [premises ==> conclusion] where premises and conclusion are
    equalities or [t % c == 0] facts over ring operations.  Completion is
    bounded by [budget.ring_pairs_budget] S-polynomial pairs. *)

val prove_compute : ?budget:Smt.Solver.budget -> Vir.program -> Vir.expr -> outcome
(** Evaluates the (closed) expression; [Proved] iff it computes to true. *)

(** {2 Certificate-producing variants}

    Each [_cert] variant behaves exactly like its plain counterpart but
    runs with proof recording on, and on [Proved] additionally returns a
    {!Smt.Cert.t} the {!Vcheck} kernel can replay:

    - bit-vector and nonlinear goals certify via the solver's SMT
      certificate (the isolated query's Unsat derivation);
    - ring goals certify via a Gröbner cofactor identity
      [target = sum_i q_i * gen_i] re-checked by exact polynomial
      arithmetic;
    - [compute] verdicts have no checkable sub-structure and return a
      trusted certificate, making the interpreter's membership in the
      trusted computing base explicit.

    [None] whenever the outcome is not [Proved] (nothing to certify). *)

val prove_bit_vector_cert :
  ?budget:Smt.Solver.budget -> ?width:int -> Smt.Term.t -> outcome * Smt.Cert.t option

val prove_nonlinear_cert :
  ?budget:Smt.Solver.budget -> ?hyps:Smt.Term.t list -> Smt.Term.t -> outcome * Smt.Cert.t option

val prove_integer_ring_cert :
  ?budget:Smt.Solver.budget -> Smt.Term.t -> outcome * Smt.Cert.t option

val prove_compute_cert :
  ?budget:Smt.Solver.budget -> Vir.program -> Vir.expr -> outcome * Smt.Cert.t option
