(** Rendering of driver profiles ({!Driver.program_profile}) as human
    tables and machine-readable JSON.

    One renderer is shared by all three surfaces — the
    [verus_cli profile] subcommand, the benchmark harness's per-section
    summaries / [BENCH_profile.json], and the CI smoke check — so the
    emitted schema and the validated schema cannot drift apart.  The JSON
    schema is versioned through the ["schema"] key
    (currently {!schema_version}). *)

val schema_version : string
(** The value of the ["schema"] key in every emitted document
    (["verus-profile/2"]; [/2] added the ["cache"] key). *)

val render_text : ?top:int -> prog_name:string -> Driver.program_result -> string
(** The profile as text tables: verdict line, phase-time breakdown, the
    top-[top] (default 10) quantifier hot-spots, per-axiom context-bytes
    attribution, per-function totals, and — when the result carries lint
    findings — the VL010 cross-check line stating whether the measured #1
    hot-spot coincides with the axiom the matching-loop lint flagged.
    Returns [""]-adjacent explanatory text when the result carries no
    profile (run [verify_program ~profile:true]). *)

val to_json : prog_name:string -> Driver.program_result -> Vbase.Json.t
(** The same information as a versioned JSON document.  Top-level keys:
    ["schema"], ["program"], ["profile"], ["ok"], ["time_s"],
    ["query_bytes"], ["vcs_profiled"], ["phase"] (object with [sat], [euf],
    [lia], [comb], [ematch]), ["inst_rounds"], ["euf_conflicts"],
    ["lia_conflicts"], ["theory_lemmas"], ["quantifiers"] (array),
    ["axioms"] (array), ["functions"] (array), ["lint"] (object with
    [vl010_heads] and [top_hotspot_matches_vl010]) and ["cache"] (the
    {!Vcache.stats} counters of the run, or [null] when no cache was
    configured). *)

val validate : Vbase.Json.t -> (unit, string) result
(** Structural validation of a document produced by {!to_json}: the schema
    version matches, every required top-level key is present, the phase
    object carries all five numeric phases, and each quantifier/axiom row
    has its required fields.  This is what the [@profile] smoke check and
    the unit tests run against the real CLI output. *)

val required_keys : string list
(** The top-level keys {!validate} insists on (exported so tests and docs
    can enumerate them). *)

val vl010_cross_check : Driver.program_result -> (string list * bool) option
(** [(vl010 heads, top hot-spot matches)] — [None] when the result has no
    profile or no quantifier ever fired.  The boolean is [true] when the
    measured #1 quantifier hot-spot shares a trigger head with a VL010
    finding in [pr_lint] (the static prediction and the dynamic
    measurement agree on the culprit). *)
