open Vir

let fail fmt = Printf.ksprintf failwith fmt

let is_int = function TInt _ -> true | _ -> false

(* Arithmetic result kind: like Verus, bounded kinds stay bounded only when
   both sides agree; mixing produces a mathematical int (spec-level). *)
let join_int a b =
  match (a, b) with
  | TInt k1, TInt k2 when k1 = k2 -> TInt k1
  | TInt _, TInt _ -> TInt I_math
  | _ -> fail "arithmetic on non-integers"

let rec ty_of_expr (p : program) env (e : expr) : ty =
  match e with
  | EVar x | EOld x -> (
    match List.assoc_opt x env with
    | Some t -> t
    | None -> fail "unbound variable %s" x)
  | EBool _ -> TBool
  | EInt _ -> TInt I_math
  | EUnop (Not, a) ->
    if ty_of_expr p env a <> TBool then fail "not on non-bool";
    TBool
  | EUnop (Neg, a) ->
    let t = ty_of_expr p env a in
    if not (is_int t) then fail "negation of non-integer";
    TInt I_math
  | EBinop (op, a, b) -> (
    let ta = ty_of_expr p env a and tb = ty_of_expr p env b in
    match op with
    | Add | Sub | Mul | Div | Mod ->
      if not (is_int ta && is_int tb) then fail "arithmetic on non-integers";
      join_int ta tb
    | BitAnd | BitOr | BitXor | Shl | Shr -> (
      (* Bounded kinds must agree; integer literals (typed as math ints)
         adapt to the bounded side's width. *)
      match (ta, tb) with
      | TInt k1, TInt k2 when k1 = k2 && k1 <> I_math -> TInt k1
      | TInt k, TInt I_math when k <> I_math -> TInt k
      | TInt I_math, TInt k when k <> I_math -> TInt k
      | TInt _, TInt _ -> fail "bitwise operators need at least one bounded operand"
      | _ -> fail "bitwise operators on non-integers")
    | Lt | Le | Gt | Ge ->
      if not (is_int ta && is_int tb) then fail "comparison on non-integers";
      TBool
    | Eq | Ne ->
      (* Integer kinds compare freely; other types must match exactly. *)
      if is_int ta && is_int tb then TBool
      else if ty_equal ta tb then TBool
      else fail "equality between %s and %s" (ty_to_string ta) (ty_to_string tb)
    | And | Or | Implies ->
      if ta <> TBool || tb <> TBool then fail "boolean operator on non-bools";
      TBool)
  | EIte (c, a, b) ->
    if ty_of_expr p env c <> TBool then fail "ite condition not bool";
    let ta = ty_of_expr p env a and tb = ty_of_expr p env b in
    if is_int ta && is_int tb then join_int ta tb
    else if ty_equal ta tb then ta
    else fail "ite branches disagree: %s vs %s" (ty_to_string ta) (ty_to_string tb)
  | ECall (f, args) -> (
    match List.find_opt (fun fd -> String.equal fd.fname f) p.functions with
    | None -> fail "unknown function %s" f
    | Some fd ->
      if fd.fmode <> Spec then fail "%s is not a spec function (expression calls are spec-only)" f;
      if List.length args <> List.length fd.params then fail "arity mismatch calling %s" f;
      List.iter2
        (fun (prm : param) a ->
          let ta = ty_of_expr p env a in
          if not (ty_equal prm.pty ta || (is_int prm.pty && is_int ta)) then
            fail "argument type mismatch calling %s: expected %s, got %s" f
              (ty_to_string prm.pty) (ty_to_string ta))
        fd.params args;
      (match fd.ret with Some (_, t) -> t | None -> fail "spec function %s has no result" f))
  | ECtor (dname, vname, args) -> (
    match List.find_opt (fun d -> String.equal d.dname dname) p.datatypes with
    | None -> fail "unknown datatype %s" dname
    | Some d -> (
      match List.assoc_opt vname d.variants with
      | None -> fail "unknown variant %s::%s" dname vname
      | Some fields ->
        if List.length fields <> List.length args then fail "arity mismatch for %s::%s" dname vname;
        List.iter2
          (fun (fname, fty) a ->
            let ta = ty_of_expr p env a in
            if not (ty_equal fty ta || (is_int fty && is_int ta)) then
              fail "field %s of %s::%s: expected %s, got %s" fname dname vname
                (ty_to_string fty) (ty_to_string ta))
          fields args;
        TData dname))
  | EField (e1, fname) -> (
    match ty_of_expr p env e1 with
    | TData dname -> (
      let d = find_datatype p dname in
      let all_fields = List.concat_map snd d.variants in
      match List.assoc_opt fname all_fields with
      | Some t -> t
      | None -> fail "datatype %s has no field %s" dname fname)
    | t -> fail "field access on non-datatype %s" (ty_to_string t))
  | EIs (e1, vname) -> (
    match ty_of_expr p env e1 with
    | TData dname ->
      let d = find_datatype p dname in
      if not (List.mem_assoc vname d.variants) then fail "datatype %s has no variant %s" dname vname;
      TBool
    | t -> fail "variant test on non-datatype %s" (ty_to_string t))
  | ESeq op -> (
    match op with
    | SeqEmpty t -> TSeq t
    | SeqLen s -> (
      match ty_of_expr p env s with
      | TSeq _ -> TInt I_math
      | t -> fail "len of non-seq %s" (ty_to_string t))
    | SeqIndex (s, idx) -> (
      if not (is_int (ty_of_expr p env idx)) then fail "seq index not integer";
      match ty_of_expr p env s with
      | TSeq t -> t
      | t -> fail "index of non-seq %s" (ty_to_string t))
    | SeqPush (s, x) -> (
      match ty_of_expr p env s with
      | TSeq t ->
        let tx = ty_of_expr p env x in
        if not (ty_equal t tx || (is_int t && is_int tx)) then fail "push element type mismatch";
        TSeq t
      | t -> fail "push on non-seq %s" (ty_to_string t))
    | SeqSkip (s, k) | SeqTake (s, k) -> (
      if not (is_int (ty_of_expr p env k)) then fail "skip/take count not integer";
      match ty_of_expr p env s with
      | TSeq t -> TSeq t
      | t -> fail "skip/take on non-seq %s" (ty_to_string t))
    | SeqUpdate (s, idx, x) -> (
      if not (is_int (ty_of_expr p env idx)) then fail "update index not integer";
      match ty_of_expr p env s with
      | TSeq t ->
        let tx = ty_of_expr p env x in
        if not (ty_equal t tx || (is_int t && is_int tx)) then fail "update element type mismatch";
        TSeq t
      | t -> fail "update on non-seq %s" (ty_to_string t))
    | SeqAppend (s1, s2) -> (
      match (ty_of_expr p env s1, ty_of_expr p env s2) with
      | TSeq t1, TSeq t2 when ty_equal t1 t2 -> TSeq t1
      | _ -> fail "append of mismatched seqs"))
  | EForall (vars, _, body) | EExists (vars, _, body) ->
    let env = List.map (fun (x, t) -> (x, t)) vars @ env in
    if ty_of_expr p env body <> TBool then fail "quantifier body not bool";
    TBool

(* --- statements ------------------------------------------------------- *)

let rec check_stmts p fd env stmts =
  match stmts with
  | [] -> ()
  | s :: rest ->
    let env' = check_stmt p fd env s in
    check_stmts p fd env' rest

and check_stmt p fd env s : (string * ty) list =
  match s with
  | SLet (x, t, e) ->
    if List.mem_assoc x env then fail "shadowing of %s (not allowed in VIR)" x;
    let te = ty_of_expr p env e in
    if not (ty_equal t te || (is_int t && is_int te)) then
      fail "let %s: declared %s, got %s" x (ty_to_string t) (ty_to_string te);
    (x, t) :: env
  | SAssign (x, e) ->
    let t =
      match List.assoc_opt x env with
      | Some t -> t
      | None -> fail "assignment to unbound %s" x
    in
    let te = ty_of_expr p env e in
    if not (ty_equal t te || (is_int t && is_int te)) then
      fail "assign %s: expected %s, got %s" x (ty_to_string t) (ty_to_string te);
    env
  | SIf (c, a, b) ->
    if ty_of_expr p env c <> TBool then fail "if condition not bool";
    check_stmts p fd env a;
    check_stmts p fd env b;
    env
  | SWhile { cond; invariants; decreases; body } ->
    if ty_of_expr p env cond <> TBool then fail "while condition not bool";
    List.iter (fun inv -> if ty_of_expr p env inv <> TBool then fail "invariant not bool") invariants;
    (match decreases with
    | Some d -> if not (is_int (ty_of_expr p env d)) then fail "decreases measure not an integer"
    | None -> ());
    check_stmts p fd env body;
    env
  | SCall (binding, f, args) -> (
    match List.find_opt (fun g -> String.equal g.fname f) p.functions with
    | None -> fail "unknown function %s" f
    | Some callee ->
      if callee.fmode = Spec then fail "exec call to spec function %s (use ECall)" f;
      if List.length args <> List.length callee.params then fail "arity mismatch calling %s" f;
      List.iter2
        (fun (prm : param) a ->
          (if prm.pmut then
             match a with
             | EVar _ -> ()
             | _ -> fail "&mut argument of %s must be a variable" f);
          let ta = ty_of_expr p env a in
          if not (ty_equal prm.pty ta || (is_int prm.pty && is_int ta)) then
            fail "argument type mismatch calling %s" f)
        callee.params args;
      (match (binding, callee.ret) with
      | Some x, Some (_, t) ->
        if List.mem_assoc x env then fail "shadowing of %s" x;
        (x, t) :: env
      | Some _, None -> fail "binding result of unit function %s" f
      | None, _ -> env))
  | SAssert (e, _) | SAssume e ->
    if ty_of_expr p env e <> TBool then fail "assert/assume not bool";
    env
  | SReturn eo ->
    (match (eo, fd.ret) with
    | None, None -> ()
    | Some e, Some (_, t) ->
      let te = ty_of_expr p env e in
      if not (ty_equal t te || (is_int t && is_int te)) then fail "return type mismatch"
    | Some _, None -> fail "return value from unit function"
    | None, Some _ -> fail "missing return value");
    env

let check_fn p fd =
  let env = List.map (fun (prm : param) -> (prm.pname, prm.pty)) fd.params in
  let env_with_ret =
    match fd.ret with Some (r, t) -> (r, t) :: env | None -> env
  in
  (* Specs. *)
  List.iter
    (fun e -> if ty_of_expr p env e <> TBool then fail "requires clause not bool")
    fd.requires;
  List.iter
    (fun e -> if ty_of_expr p env_with_ret e <> TBool then fail "ensures clause not bool")
    fd.ensures;
  (match fd.fmode with
  | Spec -> (
    if fd.body <> None then fail "spec function with statement body";
    match fd.spec_body with
    | Some e ->
      let te = ty_of_expr p env e in
      let rt = match fd.ret with Some (_, t) -> t | None -> fail "spec fn without result type" in
      if not (ty_equal rt te || (is_int rt && is_int te)) then fail "spec body type mismatch"
    | None -> () (* uninterpreted spec function *))
  | Proof | Exec -> (
    if fd.spec_body <> None then fail "non-spec function with spec body";
    match fd.body with
    | Some stmts -> check_stmts p fd env stmts
    | None -> () (* trusted external *)));
  ()

let check_program p =
  let errors = ref [] in
  (* Datatype sanity. *)
  let dnames = List.map (fun d -> d.dname) p.datatypes in
  if List.length dnames <> List.length (List.sort_uniq compare dnames) then
    errors := "duplicate datatype names" :: !errors;
  List.iter
    (fun d ->
      let vnames = List.map fst d.variants in
      if List.length vnames <> List.length (List.sort_uniq compare vnames) then
        errors := Printf.sprintf "duplicate variants in %s" d.dname :: !errors;
      (* Field names must be unique across variants (selector namespace). *)
      let fnames = List.map fst (List.concat_map snd d.variants) in
      if List.length fnames <> List.length (List.sort_uniq compare fnames) then
        errors := Printf.sprintf "duplicate field names in %s" d.dname :: !errors)
    p.datatypes;
  let fnames = List.map (fun f -> f.fname) p.functions in
  if List.length fnames <> List.length (List.sort_uniq compare fnames) then
    errors := "duplicate function names" :: !errors;
  List.iter
    (fun fd ->
      try check_fn p fd
      with Failure msg -> errors := Printf.sprintf "%s: %s" fd.fname msg :: !errors)
    p.functions;
  if !errors = [] then Ok () else Error (List.rev !errors)
