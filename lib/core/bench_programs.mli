(** The paper's millibenchmark programs (§4.1), written once in VIR and
    verified under every framework profile.

    - {!singly_linked}: a cons-list with verified [push_front], [pop_front]
      and [index] against a [Seq] abstraction (Figure 7a, left column).
    - {!doubly_linked}: an arena-based doubly linked list with prev/next
      link well-formedness and a value view — the heavier proof with
      quantified invariants (Figure 7a, right column).
    - {!memory_reasoning}: [n] interleaved pushes to four lists followed by
      assertions across all of them (Figure 7b's x-axis is [n]).
    - {!dlock_default}: the distributed-lock safety proof in default mode
      (transition preserves the mutual-exclusion invariant).
    - Broken variants ([break_*]) drop a precondition, for the
      time-to-error experiment (Figure 8). *)

val singly_linked : Vir.program
val doubly_linked : Vir.program

val memory_reasoning : int -> Vir.program
(** [memory_reasoning n]: four lists, [n] pushes each. *)

val dlock_default : Vir.program

val break_pop : Vir.program
(** [singly_linked] with [pop_front]'s precondition removed — must fail. *)

val break_index : Vir.program
(** [singly_linked] with [index]'s precondition removed — must fail. *)

val const_cond : Vir.program
(** A single exec function ([clamp_add]) whose overflow obligation is
    provable by pure interval reasoning and whose [s >= 0] guard on an
    unsigned value is constant-true: the Vflow prescreen discharge / VL043
    + VL040 pin program ([test_vflow] additionally confirms with the
    concrete interpreter that the dead else branch never executes). *)
