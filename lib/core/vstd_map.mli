(** A vstd-style verified lemma library for finite maps (the analogue of
    Verus's [vstd::map] broadcast lemmas).

    Maps over math integers are axiomatized as an uninterpreted sort with
    read-over-write, domain and cardinality axioms under curated triggers;
    {!run} discharges each lemma with the in-repo solver. *)

val map_sort : Smt.Sort.t

val axioms : Smt.Term.t list
(** The map theory: read-over-write for [sel]/[dom], [remove], the empty
    map, and cardinality recurrences.  Usable as extra context in other
    proofs. *)

(** Term-building helpers over the map theory's symbols. *)

val sel : Smt.Term.t -> Smt.Term.t -> Smt.Term.t
val dom : Smt.Term.t -> Smt.Term.t -> Smt.Term.t
val store : Smt.Term.t -> Smt.Term.t -> Smt.Term.t -> Smt.Term.t
val remove : Smt.Term.t -> Smt.Term.t -> Smt.Term.t
val empty : Smt.Term.t
val card : Smt.Term.t -> Smt.Term.t

type obligation = { name : string; proved : bool; detail : string; time_s : float }

val run : unit -> obligation list
(** Prove every lemma in the library; all should come back [proved]. *)

val all_proved : obligation list -> bool
