(** Vservice — the daemon's service layer.

    {!Verusd.Server} owns the transport (socket, framing, connection
    threads) and knows nothing about verification; this module is the
    injected brain: it owns the long-lived {!Verusd.Sched} pool, the
    shared verification-cache directory, the bundled program / profile
    tables, and the mapping from [verus-rpc/1] requests to
    {!Driver.verify_program} runs with streamed verdict events.

    The same tables and exit-code policy back the [verus_cli] verify /
    lint / profile subcommands, so a daemon answer and a CLI answer for
    the same job are {e the same computation}: one [Driver.Config], one
    digest, one exit code — the CLI client simply mirrors the daemon's
    [exit_code] field ([docs/PROTOCOL.md]). *)

(** {2 Bundled programs and profiles}

    The name tables the CLI and the daemon both resolve requests
    against.  Lookup failures return [Error msg] (the daemon answers
    [RPC004]; the CLI prints usage) instead of exiting, so the daemon
    survives a typo in a request. *)

val programs : (string * (unit -> Vir.program)) list
(** Bundled benchmark programs, name to thunk (programs are built on
    demand — some are generated parametrically). *)

val program_names : string list

val profile_names : string list

val find_program : string -> (Vir.program, string) result

val find_profile : string -> (Profiles.t, string) result
(** Case-insensitive; ["fstar"] / ["lowstar"] alias the awkward
    ["F*/Low*"]. *)

val resolve_ladder :
  Profiles.t ->
  ladder:string option ->
  rung:int option ->
  deadline_s:float option ->
  max_rounds:int option ->
  (Vladder.Ladder.t option, string) result
(** The one resolver for automation strength, shared by the daemon's
    request handler and the CLI's flag parsing.  [ladder] names a
    {!Vladder.Ladder.builtins} entry; [rung] pins every obligation to
    one rung of it (of the default ["escalate"] ladder when [ladder] is
    absent); [deadline_s]/[max_rounds] are the deprecated budget sugar,
    resolved to a single-rung {!Vladder.Ladder.of_budget} ladder over
    the profile's own budget.  Combining the sugar with [ladder]/[rung]
    is an error, as are unknown names and out-of-range rungs.  All
    [None] resolves to [Ok None] — the implicit identity ladder. *)

(** {2 Exit-code policy}

    One verdict-to-exit-code mapping for every surface (CLI process
    exit, daemon [done.exit_code] field, client process exit).  See
    the [verus_cli] usage text for the full code table. *)

val budget_only : Driver.program_result -> bool
(** The run failed {e only} on [Unknown] answers (solver deadline /
    instantiation budget) — exit 3, "needs a bigger [--deadline]",
    never mistaken for a counterexample. *)

val cert_failed : Driver.program_result -> bool
(** Some obligation's certificate was rejected or missing under
    [--certify] — exit {!exit_cert_rejected}, checked {e before}
    {!budget_only} (such runs answer all-[Unsat], which would
    otherwise read as budget exhaustion). *)

val exit_cert_rejected : int
(** [5]. *)

val result_exit_code : Driver.program_result -> int
(** [0] verified / [1] failed / [3] budget exhausted / [5] certificate
    rejected. *)

(** {2 The engine} *)

type t
(** One daemon engine: a warm {!Verusd.Sched} pool shared by every
    request, an optional shared cache directory, and lifetime
    counters.  Thread-safe — the server dispatches concurrent
    connections into the same engine and their obligations interleave
    in the same pool. *)

val create : domains:int -> ?cache_dir:string -> unit -> t
(** Spawn the engine's worker pool ([domains >= 1]).  [cache_dir], when
    given, is the persistent verification cache every job with
    [q_cache = true] shares — the second client onto a warm daemon hits
    in it without re-solving. *)

val sched : t -> Verusd.Sched.t

val domains : t -> int

val requests : t -> int
(** Requests handled so far (snapshot; the counter is atomic). *)

val shutdown : t -> unit
(** Stop and join the pool's workers.  Idempotent. *)

val handler : t -> Verusd.Server.handler
(** The request brain, ready to plug into {!Verusd.Server.serve}:
    [ping] answers [pong]; [status] answers a document with uptime,
    request and scheduler counters; [verify]/[lint]/[profile] run the
    job on the shared pool, streaming [vc] / [fn] events as obligations
    complete (when the query asks to stream) and terminating with a
    [done] event carrying the verdict, digest and exit code;
    [shutdown] acknowledges with [done] and returns
    {!Verusd.Server.Stop}.  Unknown program or profile names answer
    [RPC004] and keep the connection open. *)

val validate_daemon_bench : Vbase.Json.t -> (unit, string) Stdlib.result
(** Validate a [BENCH_daemon.json] document against the
    [verus-daemon-bench/1] schema the bench harness's [daemon] section
    emits: the cold suite comparison (per-program rows with digest
    agreement, baseline vs daemon totals), the warm shared-cache pass
    (hit rate), and the burst queue-latency percentiles per domain
    count.  The harness self-validates what it writes, so the emitted
    schema and the checked schema cannot drift apart. *)

val serve : socket_path:string -> domains:int -> ?cache_dir:string -> unit -> (unit, string) result
(** Run a complete daemon in the calling thread: create the engine and
    the server, serve until a [shutdown] request (or
    {!Verusd.Server.shutdown} from another thread), then tear both
    down.  [Error msg] if the socket cannot be bound (e.g. a live
    daemon already owns it).  This is the whole body of the [verusd]
    binary and of [verus_cli daemon]. *)
