(** VerusSync (§3.4): a transition-system language for sharded ghost state.

    A machine declares {e fields}, each with a {e sharding strategy}
    ([Variable], [Constant], or [Map] — one shard per key/value entry), an
    initial-state predicate, guarded {e transitions} written against the
    aggregate state, and an inductive invariant.

    {!check} generates and discharges the well-formedness obligations the
    paper describes: the invariant holds initially, every transition
    preserves it, [add]s to map fields go to absent keys (the safety
    condition justifying shard disjointness), and every declared
    [property] follows from the invariant.  Per the paper's metatheory, a
    machine passing these checks corresponds to a resource algebra whose
    shards can be distributed across threads.

    {!module-Runtime} provides the executable shard/token API: concurrent
    case studies (the NR queue) thread real shard tokens through their code
    and the runtime re-checks enabling conditions dynamically — the
    executable counterpart of the ghost-token manipulation in Verus. *)

type strategy = Variable | Constant | Map

type field = {
  f_name : string;
  f_strategy : strategy;
  f_sort : Smt.Sort.t;  (** value sort *)
  f_key_sort : Smt.Sort.t option;  (** key sort, for [Map] fields *)
}

(** Accessors over a symbolic state, used to write guards and updates. *)
type state = {
  get : string -> Smt.Term.t;  (** variable/constant field value *)
  map_val : string -> Smt.Term.t -> Smt.Term.t;  (** map field value at key *)
  map_dom : string -> Smt.Term.t -> Smt.Term.t;  (** key-presence predicate *)
}

type action =
  | Require of (state * Smt.Term.t list -> Smt.Term.t)
      (** enabling condition over the (intermediate) state and the
          transition parameters *)
  | Assert of (state * Smt.Term.t list -> Smt.Term.t)
      (** safety condition: must follow from invariant + enabling *)
  | Update of string * (state * Smt.Term.t list -> Smt.Term.t)
      (** variable field := f (pre-state, params) *)
  | Map_remove of string * (state * Smt.Term.t list -> Smt.Term.t)
      (** consume the shard at this key (presence comes from ownership) *)
  | Map_add of string * (state * Smt.Term.t list -> Smt.Term.t) * (state * Smt.Term.t list -> Smt.Term.t)
      (** produce a shard (key, value); absence is a proof obligation *)

type transition = { t_name : string; t_params : (string * Smt.Sort.t) list; t_actions : action list }

type machine = {
  m_name : string;
  m_fields : field list;
  m_init : state -> Smt.Term.t;
  m_transitions : transition list;
  m_invariant : state -> Smt.Term.t;
  m_properties : (string * (state -> Smt.Term.t)) list;
}

type obligation_result = {
  ob_name : string;
  ob_answer : Smt.Solver.answer;
  ob_time_s : float;
}

type report = { machine : string; obligations : obligation_result list; ok : bool }

val check : ?config:Smt.Solver.config -> machine -> report

(** {2 Refinement}

    The paper's soundness story for VerusSync: the sharded machine refines
    an {e atomic} specification — every implementation transition either
    simulates a named spec step or stutters (leaves the abstraction
    unchanged), so clients reasoning against the atomic spec are sound
    against the sharded implementation. *)

(** An atomic specification machine: named fields, an initial-state
    predicate over a field-value accessor, and named step relations over
    (pre-accessor, post-accessor, params). *)
type spec = {
  sp_name : string;
  sp_fields : (string * Smt.Sort.t) list;
  sp_init : (string -> Smt.Term.t) -> Smt.Term.t;
  sp_steps :
    (string * ((string -> Smt.Term.t) -> (string -> Smt.Term.t) -> Smt.Term.t list -> Smt.Term.t))
    list;
}

type refinement = {
  r_spec : spec;
  r_abs : state -> string -> Smt.Term.t;
      (** abstraction function: the spec field's value in an impl state *)
  r_map : (string * string option) list;
      (** impl transition → spec step it simulates; [None] = stutter.
          Every impl transition must be mapped. *)
}

val check_refinement : ?config:Smt.Solver.config -> machine -> refinement -> report
(** Discharge the refinement obligations: initial states abstract to spec
    initial states, and each transition (under the machine's invariant and
    its enabling conditions) satisfies its spec step's relation between
    the abstracted pre- and post-states — or keeps the abstraction
    unchanged if mapped to a stutter.  Raises [Invalid_argument] if a
    transition is unmapped or names an unknown spec step. *)

(** Executable shard semantics: a machine instance holds the concrete
    aggregate state; threads hold shard tokens; transitions check enabling
    conditions dynamically and update state + tokens atomically. *)
module Runtime : sig
  type inst

  type shard =
    | S_var of string * int  (** variable-field shard holding the value *)
    | S_map of string * int * int  (** map-field shard: key, value *)

  exception Protocol_violation of string

  val create : machine -> init:(string * [ `Var of int | `Map of (int * int) list ]) list -> inst
  (** Concrete initial state; raises [Protocol_violation] if it does not
      satisfy the machine's init predicate. *)

  val shards_of : inst -> shard list
  (** The full initial shard decomposition (call once, then distribute). *)

  val step :
    inst -> transition_name:string -> params:int list -> consume:shard list -> shard list
  (** Fires a transition: validates that [consume] covers every shard the
      transition reads or removes, checks enabling conditions against the
      aggregate state, applies updates, and returns the replacement
      shards.  Thread-safe (internally locked) — the aggregate-state check
      is the dynamic analogue of the VerusSync ghost-state update. *)

  val constant : inst -> string -> int
  (** Read a [Constant] field (always shared). *)

  val steps_taken : inst -> int
end
