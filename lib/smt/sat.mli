(** CDCL SAT solver.

    Standard conflict-driven clause learning with two-watched-literal
    propagation, first-UIP learning, VSIDS decision ordering and Luby
    restarts.  Used incrementally by the ground SMT loop: the theory layer
    adds blocking clauses between [solve] calls.

    Literals are ints: [2*v] is the positive literal of var [v], [2*v+1] the
    negative one. *)

type t
(** A solver instance: clause database, watch lists, trail and heuristics. *)

type result = Sat | Unsat  (** Verdict of {!solve} on the current clause set. *)

val create : unit -> t
(** A fresh solver with no variables and no clauses. *)

val new_var : t -> int
(** Allocates a fresh variable, returns its index. *)

val n_vars : t -> int
(** Number of variables allocated so far. *)

val pos : int -> int
(** Positive literal of a variable. *)

val neg : int -> int
(** Negative literal of a variable. *)

val lit_var : int -> int
(** The variable a literal belongs to. *)

val lit_negate : int -> int
(** The opposite literal. *)

val add_clause : t -> int list -> unit
(** Adds a clause.  Safe to call between [solve] calls; the solver
    backtracks as needed.  An empty (or falsified-at-level-0) clause makes
    the instance permanently unsat. *)

val solve : ?limit_conflicts:int -> t -> result
(** Solves the current clause set.  [limit_conflicts] bounds the search
    (raises [Budget_exceeded] past it). *)

exception Budget_exceeded
(** Raised by {!solve} when the conflict budget given via
    [limit_conflicts] is exhausted before a verdict is reached. *)

val value : t -> int -> bool
(** Model value of a variable; only meaningful right after [solve] returned
    [Sat]. *)

(** {2 Clause-derivation logging}

    With proof logging enabled (before any variable or clause exists), the
    solver records a DRAT-style derivation log: every input clause as
    given, a derived step whenever level-0 simplification strengthened a
    stored clause, and every learned clause with the resolution antecedents
    collected during 1UIP analysis.  Each non-input step is checkable by
    unit propagation restricted to its listed antecedents (restricted RUP);
    once the instance is unsat, {!empty_step} points at the derivation of
    the empty clause.  All hooks are no-ops (and cost nothing) when logging
    is off. *)

type proof_step = {
  ps_lits : int array;  (** the clause *)
  ps_ante : int array;  (** antecedent step ids; empty for input steps *)
  ps_tag : int;  (** encoder phase for input steps (see {!set_input_tag}) *)
}

val enable_proof : t -> unit
(** Turns on logging.  Raises [Invalid_argument] if the solver already has
    variables or clauses. *)

val proof_enabled : t -> bool

val set_input_tag : t -> int -> unit
(** Tag recorded on subsequent input steps; the SMT layer uses it to
    classify trusted encoding clauses (Tseitin vs. instantiation vs.
    bit-blasting). *)

val proof_steps : t -> proof_step array
(** The derivation log so far ([[||]] when logging is off). *)

val last_input_step : t -> int
(** Step id of the clause passed to the most recent {!add_clause}, or -1
    if that clause was dropped as a tautology (or logging is off).  Lets
    the caller attach a theory justification to the clause it just
    added. *)

val empty_step : t -> int
(** Step id deriving the empty clause, or -1 while the instance is not
    known unsat. *)

val stats_conflicts : t -> int
(** Total conflicts encountered over the solver's lifetime. *)

val stats_decisions : t -> int
(** Total branching decisions made over the solver's lifetime. *)

val stats_propagations : t -> int
(** Total unit propagations performed over the solver's lifetime. *)
