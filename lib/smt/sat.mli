(** CDCL SAT solver.

    Standard conflict-driven clause learning with two-watched-literal
    propagation, first-UIP learning, VSIDS decision ordering and Luby
    restarts.  Used incrementally by the ground SMT loop: the theory layer
    adds blocking clauses between [solve] calls.

    Literals are ints: [2*v] is the positive literal of var [v], [2*v+1] the
    negative one. *)

type t

type result = Sat | Unsat

val create : unit -> t

val new_var : t -> int
(** Allocates a fresh variable, returns its index. *)

val n_vars : t -> int

val pos : int -> int
(** Positive literal of a variable. *)

val neg : int -> int
(** Negative literal of a variable. *)

val lit_var : int -> int
val lit_negate : int -> int

val add_clause : t -> int list -> unit
(** Adds a clause.  Safe to call between [solve] calls; the solver
    backtracks as needed.  An empty (or falsified-at-level-0) clause makes
    the instance permanently unsat. *)

val solve : ?limit_conflicts:int -> t -> result
(** Solves the current clause set.  [limit_conflicts] bounds the search
    (raises [Budget_exceeded] past it). *)

exception Budget_exceeded

val value : t -> int -> bool
(** Model value of a variable; only meaningful right after [solve] returned
    [Sat]. *)

val stats_conflicts : t -> int
val stats_decisions : t -> int
val stats_propagations : t -> int
