(** CDCL SAT solver.

    Standard conflict-driven clause learning with two-watched-literal
    propagation, first-UIP learning, VSIDS decision ordering and Luby
    restarts.  Used incrementally by the ground SMT loop: the theory layer
    adds blocking clauses between [solve] calls.

    Literals are ints: [2*v] is the positive literal of var [v], [2*v+1] the
    negative one. *)

type t
(** A solver instance: clause database, watch lists, trail and heuristics. *)

type result = Sat | Unsat  (** Verdict of {!solve} on the current clause set. *)

val create : unit -> t
(** A fresh solver with no variables and no clauses. *)

val new_var : t -> int
(** Allocates a fresh variable, returns its index. *)

val n_vars : t -> int
(** Number of variables allocated so far. *)

val pos : int -> int
(** Positive literal of a variable. *)

val neg : int -> int
(** Negative literal of a variable. *)

val lit_var : int -> int
(** The variable a literal belongs to. *)

val lit_negate : int -> int
(** The opposite literal. *)

val add_clause : t -> int list -> unit
(** Adds a clause.  Safe to call between [solve] calls; the solver
    backtracks as needed.  An empty (or falsified-at-level-0) clause makes
    the instance permanently unsat. *)

val solve : ?limit_conflicts:int -> t -> result
(** Solves the current clause set.  [limit_conflicts] bounds the search
    (raises [Budget_exceeded] past it). *)

exception Budget_exceeded
(** Raised by {!solve} when the conflict budget given via
    [limit_conflicts] is exhausted before a verdict is reached. *)

val value : t -> int -> bool
(** Model value of a variable; only meaningful right after [solve] returned
    [Sat]. *)

val stats_conflicts : t -> int
(** Total conflicts encountered over the solver's lifetime. *)

val stats_decisions : t -> int
(** Total branching decisions made over the solver's lifetime. *)

val stats_propagations : t -> int
(** Total unit propagations performed over the solver's lifetime. *)
