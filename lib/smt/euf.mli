(** Congruence closure for equality + uninterpreted functions, with
    explanations.

    Used non-incrementally by the ground solver's final check: register the
    relevant terms, assert the equalities/disequalities from the current
    boolean model (each tagged with an integer [reason], typically the index
    of the asserting atom), then {!check}.  Conflicts come back as the set of
    reasons involved — exactly what the SAT solver needs for a blocking
    clause (Nieuwenhuis–Oliveras proof-forest explanations keep that set
    small).

    Terms that are not function applications (arithmetic composites,
    literals) are treated as opaque leaves; two distinct integer or
    bit-vector literals in one class are a conflict. *)

type t
(** A congruence-closure instance: union-find over registered terms plus a
    proof forest for explanations. *)

val create : unit -> t
(** A fresh instance with no terms and no assertions. *)

val add_term : t -> Term.t -> unit
(** Registers a term (and its application subterms) as congruence nodes. *)

val merge : t -> Term.t -> Term.t -> reason:int -> unit
(** Asserts an equality.  Congruence consequences propagate eagerly. *)

val assert_diseq : t -> Term.t -> Term.t -> reason:int -> unit
(** Asserts a disequality, to be checked by {!check}. *)

val check : t -> (unit, int list) result
(** [Error reasons] when some asserted disequality (or literal
    distinctness) is violated; [reasons] are the tags of the input
    equalities/disequalities responsible. *)

val are_equal : t -> Term.t -> Term.t -> bool
(** Whether two registered terms are currently in the same class. *)

val explain : t -> Term.t -> Term.t -> int list
(** Reasons implying the equality of two terms currently in the same
    class.  Undefined behaviour if they are not. *)

val iter_classes : t -> (Term.t list -> unit) -> unit
(** Iterates over the current equivalence classes (each as a list of
    registered terms); used for cross-theory equality propagation. *)

val class_id : t -> Term.t -> int option
(** Canonical class id of a registered term ([None] if never seen); does
    not register the term. *)

val class_members : t -> Term.t -> Term.t list
(** All registered terms equal to the given term ([[t]] itself when the
    term was never registered).  Used for E-matching modulo congruence. *)
