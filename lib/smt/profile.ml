type quant_profile = {
  q_label : string;
  q_heads : string list;
  q_nvars : int;
  q_instances : int;
  q_matched : int;
  q_duplicates : int;
  q_first_round : int;
  q_last_round : int;
}

type phase = {
  ph_sat : float;
  ph_euf : float;
  ph_lia : float;
  ph_comb : float;
  ph_ematch : float;
}

type t = {
  quants : quant_profile list;
  phase : phase;
  inst_rounds : int;
  euf_conflicts : int;
  lia_conflicts : int;
  theory_lemmas : int;
}

let empty_phase = { ph_sat = 0.0; ph_euf = 0.0; ph_lia = 0.0; ph_comb = 0.0; ph_ematch = 0.0 }

let empty =
  {
    quants = [];
    phase = empty_phase;
    inst_rounds = 0;
    euf_conflicts = 0;
    lia_conflicts = 0;
    theory_lemmas = 0;
  }

(* Fresh symbols print as "name!N" with a global counter; under [jobs > 1]
   the counter interleaves between domains, so the same logical quantifier
   can print differently run to run.  Masking the digits keeps labels (and
   aggregation keys) stable. *)
let mask_fresh s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    Buffer.add_char b c;
    incr i;
    if c = '!' then begin
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      if !j > !i then begin
        Buffer.add_char b '*';
        i := !j
      end
    end
  done;
  Buffer.contents b

(* The term printer line-breaks large terms; labels are table cells and
   aggregation keys, so collapse every whitespace run to a single space. *)
let normalize_ws s =
  let b = Buffer.create (String.length s) in
  let in_ws = ref false in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\n' | '\t' | '\r' -> in_ws := true
      | c ->
        if !in_ws && Buffer.length b > 0 then Buffer.add_char b ' ';
        in_ws := false;
        Buffer.add_char b c)
    s;
  Buffer.contents b

let label_of ~nvars ~patterns =
  match patterns with
  | [] -> Printf.sprintf "forall/%d {<no trigger: sort enumeration>}" nvars
  | _ ->
    let pats =
      List.map (fun p -> normalize_ws (mask_fresh (Term.to_string p))) patterns
      |> List.sort_uniq compare
    in
    Printf.sprintf "forall/%d {%s}" nvars (String.concat ", " pats)

let sort_quants qs =
  List.sort
    (fun a b ->
      match compare b.q_instances a.q_instances with
      | 0 -> (
        match compare b.q_matched a.q_matched with
        | 0 -> compare a.q_label b.q_label
        | c -> c)
      | c -> c)
    qs

let add_phase a b =
  {
    ph_sat = a.ph_sat +. b.ph_sat;
    ph_euf = a.ph_euf +. b.ph_euf;
    ph_lia = a.ph_lia +. b.ph_lia;
    ph_comb = a.ph_comb +. b.ph_comb;
    ph_ematch = a.ph_ematch +. b.ph_ematch;
  }

let merge_rounds ~first_a ~first_b ~last_a ~last_b =
  let first =
    match (first_a, first_b) with
    | 0, r | r, 0 -> r
    | a, b -> min a b
  in
  (first, max last_a last_b)

let merge a b =
  let tbl = Hashtbl.create 32 in
  let absorb q =
    match Hashtbl.find_opt tbl q.q_label with
    | None -> Hashtbl.replace tbl q.q_label q
    | Some q0 ->
      let first, last =
        merge_rounds ~first_a:q0.q_first_round ~first_b:q.q_first_round
          ~last_a:q0.q_last_round ~last_b:q.q_last_round
      in
      Hashtbl.replace tbl q.q_label
        {
          q0 with
          q_instances = q0.q_instances + q.q_instances;
          q_matched = q0.q_matched + q.q_matched;
          q_duplicates = q0.q_duplicates + q.q_duplicates;
          q_first_round = first;
          q_last_round = last;
        }
  in
  List.iter absorb a.quants;
  List.iter absorb b.quants;
  {
    quants = sort_quants (Hashtbl.fold (fun _ q acc -> q :: acc) tbl []);
    phase = add_phase a.phase b.phase;
    inst_rounds = a.inst_rounds + b.inst_rounds;
    euf_conflicts = a.euf_conflicts + b.euf_conflicts;
    lia_conflicts = a.lia_conflicts + b.lia_conflicts;
    theory_lemmas = a.theory_lemmas + b.theory_lemmas;
  }

let top k t = List.filteri (fun i _ -> i < k) t.quants

let total_instances t =
  List.fold_left (fun acc q -> acc + q.q_instances) 0 t.quants

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(*                                                                     *)
(* The verification cache persists the profile of the solve that        *)
(* produced a cached answer, so a warm run under [~profile:true] can    *)
(* reconstruct the same hot-spot tables without re-solving.  The format *)
(* is a private detail of the cache entry; the public document schema   *)
(* stays Profile_report's.                                              *)
(* ------------------------------------------------------------------ *)

module J = Vbase.Json

let quant_to_json q =
  J.Obj
    [
      ("label", J.String q.q_label);
      ("heads", J.List (List.map (fun h -> J.String h) q.q_heads));
      ("nvars", J.Int q.q_nvars);
      ("instances", J.Int q.q_instances);
      ("matched", J.Int q.q_matched);
      ("duplicates", J.Int q.q_duplicates);
      ("first_round", J.Int q.q_first_round);
      ("last_round", J.Int q.q_last_round);
    ]

let to_json t =
  J.Obj
    [
      ("quants", J.List (List.map quant_to_json t.quants));
      ( "phase",
        J.Obj
          [
            ("sat", J.Float t.phase.ph_sat);
            ("euf", J.Float t.phase.ph_euf);
            ("lia", J.Float t.phase.ph_lia);
            ("comb", J.Float t.phase.ph_comb);
            ("ematch", J.Float t.phase.ph_ematch);
          ] );
      ("inst_rounds", J.Int t.inst_rounds);
      ("euf_conflicts", J.Int t.euf_conflicts);
      ("lia_conflicts", J.Int t.lia_conflicts);
      ("theory_lemmas", J.Int t.theory_lemmas);
    ]

let ( let* ) r f = Result.bind r f

let get_int k j =
  match J.member k j with
  | Some (J.Int n) -> Ok n
  | _ -> Error (Printf.sprintf "profile: key %S missing or not an int" k)

let get_float k j =
  match Option.bind (J.member k j) J.to_float with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "profile: key %S missing or not a number" k)

let get_string k j =
  match J.member k j with
  | Some (J.String s) -> Ok s
  | _ -> Error (Printf.sprintf "profile: key %S missing or not a string" k)

let quant_of_json j =
  let* q_label = get_string "label" j in
  let* heads =
    match J.member "heads" j with
    | Some (J.List hs) ->
      List.fold_left
        (fun acc h ->
          let* acc = acc in
          match h with
          | J.String s -> Ok (s :: acc)
          | _ -> Error "profile: head is not a string")
        (Ok []) hs
      |> Result.map List.rev
    | _ -> Error "profile: heads missing or not a list"
  in
  let* q_nvars = get_int "nvars" j in
  let* q_instances = get_int "instances" j in
  let* q_matched = get_int "matched" j in
  let* q_duplicates = get_int "duplicates" j in
  let* q_first_round = get_int "first_round" j in
  let* q_last_round = get_int "last_round" j in
  Ok
    {
      q_label;
      q_heads = heads;
      q_nvars;
      q_instances;
      q_matched;
      q_duplicates;
      q_first_round;
      q_last_round;
    }

let of_json j =
  let* quants =
    match J.member "quants" j with
    | Some (J.List qs) ->
      List.fold_left
        (fun acc q ->
          let* acc = acc in
          let* q = quant_of_json q in
          Ok (q :: acc))
        (Ok []) qs
      |> Result.map List.rev
    | _ -> Error "profile: quants missing or not a list"
  in
  let* phase =
    match J.member "phase" j with
    | Some ph ->
      let* ph_sat = get_float "sat" ph in
      let* ph_euf = get_float "euf" ph in
      let* ph_lia = get_float "lia" ph in
      let* ph_comb = get_float "comb" ph in
      let* ph_ematch = get_float "ematch" ph in
      Ok { ph_sat; ph_euf; ph_lia; ph_comb; ph_ematch }
    | None -> Error "profile: phase missing"
  in
  let* inst_rounds = get_int "inst_rounds" j in
  let* euf_conflicts = get_int "euf_conflicts" j in
  let* lia_conflicts = get_int "lia_conflicts" j in
  let* theory_lemmas = get_int "theory_lemmas" j in
  Ok { quants; phase; inst_rounds; euf_conflicts; lia_conflicts; theory_lemmas }
