(** The SMT solver: a lazy CDCL(T) loop combining the CDCL SAT core with
    congruence closure, linear integer arithmetic, eager bit-blasting for
    bit-vector atoms, and E-matching quantifier instantiation.

    Architecture (per ground-solve round):
    - assertions are purified (ground composite arguments of uninterpreted
      functions get proxy constants; integer div/mod by literals and
      integer-sorted if-then-else are compiled away), put in negation normal
      form with polarity-driven skolemization, and Tseitin-encoded;
    - the SAT core enumerates boolean models; EUF and LIA validate each
      model and contribute blocking clauses (with proof-forest / Farkas
      explanations) on conflict;
    - theories are combined model-style: equalities implied by congruence
      or shared by the arithmetic model become lemmas over fresh equality
      atoms;
    - remaining universal quantifiers instantiate by E-matching under the
      configured trigger policy.

    Answers: [Unsat] is definitive (this is what "verified" means
    downstream).  [Sat] is definitive only for quantifier-free problems;
    problems whose candidate model still involves uninstantiated quantifiers
    report [Unknown]. *)

(** Every search budget of the verification stack, in one record.  The
    driver, the EPR decision procedure, the §3.3 custom modes and the CLI's
    [--deadline]/[--max-rounds] flags all consume this same record — there
    is exactly one place a budget knob can live. *)
type budget = {
  deadline_s : float;  (** wall-clock budget per solve (timeout -> Unknown) *)
  max_rounds : int;  (** instantiation rounds before giving up *)
  max_instances_per_round : int;  (** instantiation cap per round *)
  max_instances_per_quant : int;
      (** fuel-style cap per quantifier (bounds definitional unfolding
          chains, like Dafny's fuel) *)
  sat_conflict_budget : int;  (** cumulative CDCL conflict budget *)
  bb_budget : int;  (** LIA branch-and-bound node budget per check *)
  combination_pairs_per_round : int;  (** cross-theory equality guesses *)
  ring_pairs_budget : int;
      (** S-polynomial pair budget of the [integer_ring] mode's
          Gröbner-basis completion *)
}

val default_budget : budget
(** Generous defaults; the baseline the shipped profiles override. *)

val budget_fingerprint : budget -> string
(** Canonical one-line [k=v;...] rendering of every budget field, included
    in the verification cache's fingerprints: an answer recorded under one
    budget never satisfies a lookup under another (a looser budget might
    succeed where the recorded solve gave up, and vice versa). *)

(** The trigger policy plus the search budgets; each framework profile
    carries its own copy. *)
type config = {
  trigger_policy : Triggers.policy;
      (** how triggers are inferred for quantifiers that lack them *)
  budget : budget;  (** all search budgets (see {!budget}) *)
  certify : bool;
      (** record a replayable proof certificate for [Unsat] answers (see
          {!Cert}); off by default — emission threads clause-derivation
          logging through the SAT core and Farkas capture through the LIA
          core, and costs nothing when off *)
}

val default_config : config
(** Conservative triggers and {!default_budget}. *)

(** Verdict of one solve. *)
type answer =
  | Unsat  (** definitive — downstream this means "proved" *)
  | Sat  (** definitive only for quantifier-free problems *)
  | Unknown of string  (** reason: budget, quantifiers, ... *)

(** Coarse per-solve totals (the paper's table columns).  For attribution —
    {e which} quantifier produced the instances, how theory time splits
    between congruence, arithmetic and combination — see the
    {!type:result.profile} field. *)
type stats = {
  rounds : int;  (** CDCL(T) major rounds (SAT solve + final check) *)
  instances : int;  (** quantifier instantiations asserted *)
  matches_tried : int;  (** pattern-match attempts inside E-matching *)
  conflicts : int;  (** CDCL conflicts *)
  decisions : int;  (** CDCL decisions *)
  query_bytes : int;  (** printed size of everything sent to the core *)
  time_s : float;  (** wall-clock for the whole solve *)
  t_sat : float;  (** time in CDCL search *)
  t_theory : float;  (** time in EUF/LIA final checks *)
  t_ematch : float;  (** time in quantifier instantiation *)
}

(** Everything a solve returns. *)
type result = {
  answer : answer;  (** the verdict *)
  stats : stats;  (** coarse totals (see {!stats}) *)
  model : (string * string) list;
      (** best-effort assignment of boolean constants when [Sat] *)
  profile : Profile.t;
      (** per-quantifier instantiation attribution and fine-grained phase
          times (EUF vs LIA vs combination inside [t_theory]); always
          collected — the counters ride state the solver maintains
          anyway *)
  cert : Cert.t option;
      (** proof certificate, present iff [answer = Unsat] and the solve ran
          with [config.certify = true]; replayable by the independent
          [Vcheck] kernel *)
}

val solve : ?config:config -> Term.t list -> result
(** Satisfiability of the conjunction of the assertions. *)

val check_valid : ?config:config -> ?hyps:Term.t list -> Term.t -> result
(** [check_valid ~hyps goal] checks that [hyps] entail [goal] by refuting
    [hyps /\ not goal]; [Unsat] means valid (proved). *)

val dump_debug : unit -> unit
(** With [SMT_DEBUG] set, prints cumulative theory-phase timings to
    stderr (development aid). *)
