(* Congruence closure with a Nieuwenhuis-Oliveras proof forest for
   explanations.

   Each registered term gets a node.  Application nodes carry a label (the
   symbol id) and child nodes; everything else is an opaque leaf.  The
   union-find tracks equivalence classes; a separate "proof forest" stores,
   for every merged pair, the edge that caused the merge (an input equation
   or a congruence step), from which explanations are reconstructed. *)

type edge_label =
  | Input of int (* reason tag *)
  | Congruence of int * int (* the two application nodes found congruent *)

type t = {
  mutable nodes : int; (* node count *)
  term_of : Term.t Vbase.Vecbuf.t; (* node id -> term *)
  node_of : (int, int) Hashtbl.t; (* term tid -> node id *)
  mutable uf : int array; (* union-find parent (roots point to self) *)
  mutable rank : int array;
  mutable proof_parent : int array; (* proof forest parent, -1 at roots *)
  mutable proof_label : edge_label array;
  mutable use_list : int list array; (* class rep -> app nodes using it *)
  mutable members : int list array; (* class rep -> member nodes *)
  sig_table : (int * int list, int) Hashtbl.t; (* (label, child reps) -> app node *)
  app_info : (int * int list) Vbase.Vecbuf.t; (* node -> (label, children); (-1,[]) for leaves *)
  mutable diseqs : (int * int * int) list; (* (node, node, reason) *)
  pending : (int * int * edge_label) Queue.t;
}

let create () =
  {
    nodes = 0;
    term_of = Vbase.Vecbuf.create ~dummy:Term.tru;
    node_of = Hashtbl.create 64;
    uf = Array.make 64 0;
    rank = Array.make 64 0;
    proof_parent = Array.make 64 (-1);
    proof_label = Array.make 64 (Input (-1));
    use_list = Array.make 64 [];
    members = Array.make 64 [];
    sig_table = Hashtbl.create 64;
    app_info = Vbase.Vecbuf.create ~dummy:(-1, []);
    diseqs = [];
    pending = Queue.create ();
  }

let ensure_capacity t n =
  let cap = Array.length t.uf in
  if n > cap then begin
    let newcap = max (2 * cap) n in
    let grow a fill =
      let b = Array.make newcap fill in
      Array.blit a 0 b 0 cap;
      b
    in
    t.uf <- grow t.uf 0;
    t.rank <- grow t.rank 0;
    t.proof_parent <- grow t.proof_parent (-1);
    t.proof_label <- grow t.proof_label (Input (-1));
    t.use_list <- grow t.use_list [];
    t.members <- grow t.members []
  end

let rec find t i = if t.uf.(i) = i then i else
    let r = find t t.uf.(i) in
    t.uf.(i) <- r;
    r

(* Register a term; applications register children recursively. *)
let rec node_of_term t tm =
  match Hashtbl.find_opt t.node_of (Term.hash tm) with
  | Some n -> n
  | None ->
    let info =
      match tm.Term.node with
      | Term.App (f, args) when args <> [] ->
        let children = List.map (node_of_term t) args in
        (f.Term.sid, children)
      | _ -> (-1, [])
    in
    let n = t.nodes in
    t.nodes <- n + 1;
    ensure_capacity t t.nodes;
    Vbase.Vecbuf.push t.term_of tm;
    Vbase.Vecbuf.push t.app_info info;
    Hashtbl.add t.node_of (Term.hash tm) n;
    t.uf.(n) <- n;
    t.rank.(n) <- 0;
    t.use_list.(n) <- [];
    t.members.(n) <- [ n ];
    (match info with
    | -1, [] -> ()
    | label, children ->
      let key = (label, List.map (find t) children) in
      (match Hashtbl.find_opt t.sig_table key with
      | Some existing when find t existing <> find t n ->
        Queue.push (n, existing, Congruence (n, existing)) t.pending
      | Some _ -> ()
      | None -> Hashtbl.add t.sig_table key n);
      List.iter (fun c -> let r = find t c in t.use_list.(r) <- n :: t.use_list.(r)) children);
    n

let add_term t tm = ignore (node_of_term t tm)

(* --- proof forest --------------------------------------------------- *)

(* Add edge a -- b with label, making a the new root of its proof tree
   (reverse the path from a to its current root first). *)
let proof_add_edge t a b label =
  let rec reverse i prev_parent prev_label =
    let next = t.proof_parent.(i) in
    let lbl = t.proof_label.(i) in
    t.proof_parent.(i) <- prev_parent;
    t.proof_label.(i) <- prev_label;
    if next >= 0 then reverse next i lbl
  in
  (* Re-root a's proof tree at a. *)
  if t.proof_parent.(a) >= 0 then reverse a (-1) (Input (-1));
  t.proof_parent.(a) <- b;
  t.proof_label.(a) <- label

(* --- merging --------------------------------------------------------- *)

let rec process_pending t =
  match Queue.take_opt t.pending with
  | None -> ()
  | Some (a, b, label) ->
    do_merge t a b label;
    process_pending t

and do_merge t a b label =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    proof_add_edge t a b label;
    (* Union by rank; rehash the use list of the side losing its rep. *)
    let small, big = if t.rank.(ra) <= t.rank.(rb) then (ra, rb) else (rb, ra) in
    t.uf.(small) <- big;
    if t.rank.(small) = t.rank.(big) then t.rank.(big) <- t.rank.(big) + 1;
    t.members.(big) <- List.rev_append t.members.(small) t.members.(big);
    t.members.(small) <- [];
    let uses = t.use_list.(small) in
    t.use_list.(small) <- [];
    List.iter
      (fun app ->
        let label_app, children = Vbase.Vecbuf.get t.app_info app in
        let key = (label_app, List.map (find t) children) in
        match Hashtbl.find_opt t.sig_table key with
        | Some existing when find t existing <> find t app ->
          Queue.push (app, existing, Congruence (app, existing)) t.pending
        | Some _ -> ()
        | None -> Hashtbl.add t.sig_table key app)
      uses;
    t.use_list.(big) <- List.rev_append uses t.use_list.(big)
  end

let merge t tm1 tm2 ~reason =
  let a = node_of_term t tm1 and b = node_of_term t tm2 in
  do_merge t a b (Input reason);
  process_pending t

let assert_diseq t tm1 tm2 ~reason =
  let a = node_of_term t tm1 and b = node_of_term t tm2 in
  t.diseqs <- (a, b, reason) :: t.diseqs

(* --- explanations ---------------------------------------------------- *)

let rec explain_nodes t acc a b =
  if a = b then acc
  else begin
    (* Find common ancestor in the proof forest. *)
    let rec ancestors i acc = if i < 0 then acc else ancestors t.proof_parent.(i) (i :: acc) in
    let pa = ancestors a [] and pb = ancestors b [] in
    (* Paths from root; find last common prefix element. *)
    let rec common x = function
      | ha :: ta, hb :: tb when ha = hb -> common (Some ha) (ta, tb)
      | _ -> x
    in
    let lca = common None (pa, pb) in
    let lca = match lca with Some l -> l | None -> invalid_arg "Euf.explain: not equal" in
    let rec walk acc i =
      if i = lca then acc
      else begin
        let acc =
          match t.proof_label.(i) with
          | Input r -> r :: acc
          | Congruence (n1, n2) ->
            (* n1, n2 congruent apps: explain pairwise children equality. *)
            let _, c1 = Vbase.Vecbuf.get t.app_info n1 in
            let _, c2 = Vbase.Vecbuf.get t.app_info n2 in
            List.fold_left2 (fun acc x y -> explain_nodes t acc x y) acc c1 c2
        in
        walk acc t.proof_parent.(i)
      end
    in
    walk (walk acc a) b
  end

let explain t tm1 tm2 =
  let a = node_of_term t tm1 and b = node_of_term t tm2 in
  List.sort_uniq compare (explain_nodes t [] a b)

let are_equal t tm1 tm2 =
  match (Hashtbl.find_opt t.node_of (Term.hash tm1), Hashtbl.find_opt t.node_of (Term.hash tm2)) with
  | Some a, Some b -> find t a = find t b
  | _ -> Term.equal tm1 tm2

(* --- conflict detection ---------------------------------------------- *)

let is_literal tm =
  match tm.Term.node with
  | Term.Int_lit _ | Term.Bv_lit _ | Term.True | Term.False -> true
  | _ -> false

let check t =
  (* Congruences discovered during registration may still be queued. *)
  process_pending t;
  (* Asserted disequalities. *)
  let conflict = ref None in
  List.iter
    (fun (a, b, reason) ->
      if !conflict = None && find t a = find t b then
        conflict := Some (List.sort_uniq compare (reason :: explain_nodes t [] a b)))
    t.diseqs;
  (* Distinct literals merged into one class. *)
  if !conflict = None then begin
    let by_class = Hashtbl.create 16 in
    for n = 0 to t.nodes - 1 do
      let tm = Vbase.Vecbuf.get t.term_of n in
      if is_literal tm then begin
        let r = find t n in
        match Hashtbl.find_opt by_class r with
        | Some (n0, tm0) ->
          if !conflict = None && not (Term.equal tm0 tm) then
            conflict := Some (List.sort_uniq compare (explain_nodes t [] n0 n))
        | None -> Hashtbl.add by_class r (n, tm)
      end
    done
  end;
  match !conflict with None -> Ok () | Some reasons -> Error reasons

let iter_classes t f =
  for r = 0 to t.nodes - 1 do
    if find t r = r then
      f (List.map (fun n -> Vbase.Vecbuf.get t.term_of n) t.members.(r))
  done

let class_id t tm =
  match Hashtbl.find_opt t.node_of (Term.hash tm) with
  | Some n -> Some (find t n)
  | None -> None

let class_members t tm =
  match Hashtbl.find_opt t.node_of (Term.hash tm) with
  | Some n ->
    let r = find t n in
    List.map (fun m -> Vbase.Vecbuf.get t.term_of m) t.members.(r)
  | None -> [ tm ]
