(** Decision procedure for EPR (effectively propositional logic), the
    fragment behind the paper's [#[epr_mode]] (§3.2).

    EPR formulas use only boolean connectives, quantifiers, equality and
    uninterpreted functions/predicates over uninterpreted sorts.  After
    polarity-driven skolemization, decidability additionally requires the
    sort dependency graph of the function symbols (including skolem
    functions) to be acyclic — the quantifier-alternation condition the
    paper inherits from Ivy.  Under that condition the Herbrand universe is
    finite, so full grounding plus the ground solver is a complete decision
    procedure: both [Unsat] and [Sat] answers are definitive. *)

val check_fragment : Term.t list -> (unit, string) result
(** Syntactic membership: no arithmetic, no bit-vectors, only uninterpreted
    sorts under quantifiers, and an acyclic sort graph.  The error string
    names the offending construct. *)

val solve : ?config:Solver.config -> ?max_universe:int -> Term.t list -> Solver.result
(** Decides satisfiability by grounding over the finite Herbrand universe.
    Reports [Unknown] only if the fragment check fails or the universe/
    grounding exceeds [max_universe] (default 4000) terms. *)

val check_valid :
  ?config:Solver.config -> ?max_universe:int -> ?hyps:Term.t list -> Term.t -> Solver.result
(** [check_valid ~hyps goal]: refutation of [hyps /\ not goal], decided. *)
