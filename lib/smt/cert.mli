(** Proof certificates for Unsat verdicts.

    Every layer of the solver contributes evidence while it runs: the CDCL
    core logs each learned clause with its resolution antecedents
    (DRAT-style, restricted-RUP checkable), the theory layers attach
    justifications to the clauses they inject — congruence cores from EUF,
    Farkas coefficient vectors from the simplex core — and the Gröbner mode
    emits ideal-membership cofactors.  {!Solver} assembles the pieces into
    one certificate per Unsat result when its [certify] flag is on.

    The certificate serializes to {!Vbase.Json} under the versioned schema
    {!schema_version} so the replay kernel ([lib/vcheck]) can consume it
    with no dependency on any solver module: the kernel re-derives the
    empty clause from the serialized steps alone.  What the kernel cannot
    re-derive — the mapping from SAT literals to theory atoms, Tseitin /
    bit-blasting / instantiation clauses, and the few steps explicitly
    tagged trusted — is exactly the residual trusted computing base,
    documented in DESIGN.md. *)

val schema_version : string
(** ["verus-cert/1"]; bumped on any change to the serialized grammar.  The
    verification cache salts its fingerprints with this string so a format
    bump invalidates every stored certificate digest. *)

(** {2 Building the shared tables}

    A [builder] accumulates the per-certificate term-node table and the
    literal-semantics table while the solve runs.  Node ids are
    per-certificate intern indices (children always precede parents), so
    certificates are self-contained and deterministic for a given solve. *)

type builder

val create_builder : unit -> builder

val intern_term : builder -> Term.t -> int
(** Node id of a term, mirroring the EUF solver's view: non-nullary
    applications are labeled nodes over their children; integer, bit-vector
    and boolean literals are distinguished constants; everything else is an
    opaque leaf. *)

val lit_eq : builder -> int -> bool * int * int -> unit
(** [lit_eq b lit (is_eq, a, b)] records that asserting SAT literal [lit]
    means node [a] equals (or, when [is_eq] is false, differs from) node
    [b].  Idempotent; the meaning of a literal never changes. *)

val lit_view : builder -> int -> (int * Vbase.Bigint.t) list -> Vbase.Rat.t -> int
(** [lit_view b lit coeffs bound] records that asserting [lit] implies the
    integer-tightened constraint [coeffs·x <= bound] (coefficients over
    arithmetic variable ids, sorted).  Returns the index of the view in the
    literal's view list; structurally equal views are shared. *)

(** {2 Clause-step justifications} *)

type just =
  | J_euf of int list
      (** Assumption literals whose recorded equalities are jointly
          congruence-unsatisfiable; the clause contains their negations. *)
  | J_farkas of (int * Vbase.Rat.t * int) list
      (** [(lit, lambda, view_ix)] entries: a non-negative combination of
          the literals' recorded bound views summing to the contradiction
          [0 <= c] with [c < 0]. *)
  | J_trichotomy of int * int * int
      (** [(l_eq, l_lt1, l_lt2)]: the integer totality lemma
          [eq \/ lt1 \/ lt2] checked against the three atoms' bound
          views. *)
  | J_trusted of string
      (** A theory clause the emitter could not certify (e.g. conflicts
          built from branch-and-bound unions or gcd elimination); counted
          against the trusted computing base. *)

(** {2 Certificates} *)

type t

val assemble :
  builder ->
  steps:Sat.proof_step array ->
  empty:int ->
  justs:(int, just) Hashtbl.t ->
  t
(** An SMT certificate: the SAT core's derivation log with theory
    justifications attached to input steps by id, ending at the empty
    clause [empty]. *)

val groebner :
  target:(Vbase.Rat.t * (string * int) list) list ->
  gens:(Vbase.Rat.t * (string * int) list) list list ->
  cofactors:(Vbase.Rat.t * (string * int) list) list list ->
  t
(** An ideal-membership witness: [target = sum_i cofactors_i * gens_i],
    polynomials as (coefficient, monomial) lists. *)

val trusted : string -> t
(** A verdict with no checkable content (e.g. the compute-mode
    interpreter); replaying it records one trusted step. *)

val to_json : t -> Vbase.Json.t

val digest : t -> string
(** 128-bit content fingerprint of the canonical serialization; this is
    what {!Vcache} stores so a warm hit remains a checked claim. *)
