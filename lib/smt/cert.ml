module Json = Vbase.Json
module Rat = Vbase.Rat
module Bigint = Vbase.Bigint

let schema_version = "verus-cert/1"

(* --- term nodes ------------------------------------------------------- *)

(* The node universe mirrors Euf.node_of_term: non-nullary applications are
   the only structured nodes; literals are distinguished constants; any
   other term (including arithmetic compounds, which the EUF solver treats
   as leaves) is opaque, keyed by its hash-consed id. *)
type node =
  | N_app of int * int list (* interned symbol label, children *)
  | N_int of string
  | N_bv of int * string (* width, value *)
  | N_true
  | N_false
  | N_opaque of int (* per-certificate opaque index *)

type lit_sem = {
  mutable ls_eq : (bool * int * int) option;
  mutable ls_views : ((int * Bigint.t) list * Rat.t) list; (* reversed *)
}

type builder = {
  mutable nodes : node list; (* reversed *)
  mutable n_nodes : int;
  node_of_tid : (int, int) Hashtbl.t;
  sym_ix : (int, int) Hashtbl.t; (* sid -> per-cert label *)
  mutable n_syms : int;
  mutable n_opaque : int;
  lits : (int, lit_sem) Hashtbl.t; (* signed SAT literal -> semantics *)
}

let create_builder () =
  {
    nodes = [];
    n_nodes = 0;
    node_of_tid = Hashtbl.create 64;
    sym_ix = Hashtbl.create 32;
    n_syms = 0;
    n_opaque = 0;
    lits = Hashtbl.create 64;
  }

let push_node b n =
  let id = b.n_nodes in
  b.nodes <- n :: b.nodes;
  b.n_nodes <- id + 1;
  id

let sym_label b (f : Term.sym) =
  match Hashtbl.find_opt b.sym_ix f.Term.sid with
  | Some i -> i
  | None ->
    let i = b.n_syms in
    Hashtbl.add b.sym_ix f.Term.sid i;
    b.n_syms <- i + 1;
    i

let rec intern_term b (tm : Term.t) =
  match Hashtbl.find_opt b.node_of_tid tm.Term.tid with
  | Some id -> id
  | None ->
    let n =
      match tm.Term.node with
      | Term.App (f, (_ :: _ as args)) ->
        let children = List.map (intern_term b) args in
        N_app (sym_label b f, children)
      | Term.Int_lit v -> N_int (Bigint.to_string v)
      | Term.Bv_lit { width; value } -> N_bv (width, Bigint.to_string value)
      | Term.True -> N_true
      | Term.False -> N_false
      | _ ->
        let k = b.n_opaque in
        b.n_opaque <- k + 1;
        N_opaque k
    in
    let id = push_node b n in
    Hashtbl.add b.node_of_tid tm.Term.tid id;
    id

let lit_sem_of b lit =
  match Hashtbl.find_opt b.lits lit with
  | Some s -> s
  | None ->
    let s = { ls_eq = None; ls_views = [] } in
    Hashtbl.add b.lits lit s;
    s

let lit_eq b lit meaning =
  let s = lit_sem_of b lit in
  if s.ls_eq = None then s.ls_eq <- Some meaning

let view_equal (c1, b1) (c2, b2) =
  Rat.equal b1 b2
  && List.length c1 = List.length c2
  && List.for_all2 (fun (v1, x1) (v2, x2) -> v1 = v2 && Bigint.equal x1 x2) c1 c2

let lit_view b lit coeffs bound =
  let s = lit_sem_of b lit in
  let v = (coeffs, bound) in
  let existing = List.rev s.ls_views in
  let rec find i = function
    | [] -> None
    | w :: rest -> if view_equal w v then Some i else find (i + 1) rest
  in
  match find 0 existing with
  | Some i -> i
  | None ->
    s.ls_views <- v :: s.ls_views;
    List.length existing

(* --- certificates ------------------------------------------------------ *)

type just =
  | J_euf of int list
  | J_farkas of (int * Rat.t * int) list
  | J_trichotomy of int * int * int
  | J_trusted of string

type t =
  | C_smt of {
      nodes : node array;
      lits : (int * lit_sem) list; (* sorted by literal *)
      steps : Sat.proof_step array;
      justs : (int, just) Hashtbl.t;
      empty : int;
    }
  | C_groebner of {
      target : (Rat.t * (string * int) list) list;
      gens : (Rat.t * (string * int) list) list list;
      cofactors : (Rat.t * (string * int) list) list list;
    }
  | C_trusted of string

let assemble b ~steps ~empty ~justs =
  let nodes = Array.of_list (List.rev b.nodes) in
  let lits =
    Hashtbl.fold (fun l s acc -> (l, s) :: acc) b.lits []
    |> List.sort (fun (a, _) (c, _) -> compare a c)
  in
  C_smt { nodes; lits; steps; justs; empty }

let groebner ~target ~gens ~cofactors = C_groebner { target; gens; cofactors }
let trusted tag = C_trusted tag

(* --- serialization ----------------------------------------------------- *)

let json_node = function
  | N_app (f, children) ->
    Json.List [ Json.String "a"; Json.Int f; Json.List (List.map (fun c -> Json.Int c) children) ]
  | N_int v -> Json.List [ Json.String "i"; Json.String v ]
  | N_bv (w, v) -> Json.List [ Json.String "v"; Json.Int w; Json.String v ]
  | N_true -> Json.List [ Json.String "t" ]
  | N_false -> Json.List [ Json.String "f" ]
  | N_opaque k -> Json.List [ Json.String "o"; Json.Int k ]

let json_view (coeffs, bound) =
  Json.List
    [
      Json.List
        (List.map
           (fun (v, c) -> Json.List [ Json.Int v; Json.String (Bigint.to_string c) ])
           coeffs);
      Json.String (Rat.to_string bound);
    ]

let json_lit (l, s) =
  let eq =
    match s.ls_eq with
    | None -> Json.Null
    | Some (is_eq, a, b) -> Json.List [ Json.Bool is_eq; Json.Int a; Json.Int b ]
  in
  Json.List [ Json.Int l; eq; Json.List (List.rev_map json_view s.ls_views) ]

let json_just = function
  | J_euf lits -> Json.List (Json.String "e" :: List.map (fun l -> Json.Int l) lits)
  | J_farkas combo ->
    Json.List
      (Json.String "f"
      :: List.map
           (fun (l, lam, ix) ->
             Json.List [ Json.Int l; Json.String (Rat.to_string lam); Json.Int ix ])
           combo)
  | J_trichotomy (leq, l1, l2) ->
    Json.List [ Json.String "3"; Json.Int leq; Json.Int l1; Json.Int l2 ]
  | J_trusted tag -> Json.List [ Json.String "t"; Json.String tag ]

let json_step justs i (st : Sat.proof_step) =
  let lits = Json.List (Array.to_list (Array.map (fun l -> Json.Int l) st.Sat.ps_lits)) in
  let just =
    if Array.length st.Sat.ps_ante > 0 then
      Json.List
        (Json.String "r" :: Array.to_list (Array.map (fun a -> Json.Int a) st.Sat.ps_ante))
    else
      match Hashtbl.find_opt justs i with
      | Some j -> json_just j
      | None -> Json.Int st.Sat.ps_tag
  in
  Json.List [ lits; just ]

let json_poly p =
  Json.List
    (List.map
       (fun (c, mono) ->
         Json.List
           [
             Json.String (Rat.to_string c);
             Json.List
               (List.map (fun (v, e) -> Json.List [ Json.String v; Json.Int e ]) mono);
           ])
       p)

let to_json = function
  | C_smt { nodes; lits; steps; justs; empty } ->
    Json.Obj
      [
        ("schema", Json.String schema_version);
        ("kind", Json.String "smt");
        ("nodes", Json.List (Array.to_list (Array.map json_node nodes)));
        ("lits", Json.List (List.map json_lit lits));
        ("steps", Json.List (Array.to_list (Array.mapi (json_step justs) steps)));
        ("empty", Json.Int empty);
      ]
  | C_groebner { target; gens; cofactors } ->
    Json.Obj
      [
        ("schema", Json.String schema_version);
        ("kind", Json.String "groebner");
        ("target", json_poly target);
        ("gens", Json.List (List.map json_poly gens));
        ("cofactors", Json.List (List.map json_poly cofactors));
      ]
  | C_trusted tag ->
    Json.Obj
      [
        ("schema", Json.String schema_version);
        ("kind", Json.String "trusted");
        ("tag", Json.String tag);
      ]

let digest c = Vbase.Hash.string128 (Json.to_string ~indent:false (to_json c))
