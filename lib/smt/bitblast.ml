module Bigint = Vbase.Bigint

type t = {
  sat : Sat.t;
  bits : (int, int array) Hashtbl.t; (* term tid -> bit literals *)
  atoms : (int, int) Hashtbl.t; (* bool term tid -> literal *)
  mutable const_true : int option; (* literal fixed true *)
}

let create sat = { sat; bits = Hashtbl.create 64; atoms = Hashtbl.create 64; const_true = None }

let lit_true t =
  match t.const_true with
  | Some l -> l
  | None ->
    let v = Sat.new_var t.sat in
    Sat.add_clause t.sat [ Sat.pos v ];
    t.const_true <- Some (Sat.pos v);
    t.const_true |> Option.get

let lit_false t = Sat.lit_negate (lit_true t)
let fresh t = Sat.pos (Sat.new_var t.sat)

(* Gate encodings.  Each returns the output literal. *)

let gate_and t a b =
  let o = fresh t in
  Sat.add_clause t.sat [ Sat.lit_negate o; a ];
  Sat.add_clause t.sat [ Sat.lit_negate o; b ];
  Sat.add_clause t.sat [ o; Sat.lit_negate a; Sat.lit_negate b ];
  o

let gate_or t a b = Sat.lit_negate (gate_and t (Sat.lit_negate a) (Sat.lit_negate b))

let gate_xor t a b =
  let o = fresh t in
  Sat.add_clause t.sat [ Sat.lit_negate o; a; b ];
  Sat.add_clause t.sat [ Sat.lit_negate o; Sat.lit_negate a; Sat.lit_negate b ];
  Sat.add_clause t.sat [ o; Sat.lit_negate a; b ];
  Sat.add_clause t.sat [ o; a; Sat.lit_negate b ];
  o

let gate_ite t c a b =
  (* o = if c then a else b *)
  let o = fresh t in
  Sat.add_clause t.sat [ Sat.lit_negate c; Sat.lit_negate a; o ];
  Sat.add_clause t.sat [ Sat.lit_negate c; a; Sat.lit_negate o ];
  Sat.add_clause t.sat [ c; Sat.lit_negate b; o ];
  Sat.add_clause t.sat [ c; b; Sat.lit_negate o ];
  o

(* Full adder: returns (sum, carry_out). *)
let full_adder t a b cin =
  let s = gate_xor t (gate_xor t a b) cin in
  let c = gate_or t (gate_and t a b) (gate_and t cin (gate_xor t a b)) in
  (s, c)

let ripple_add t xs ys cin =
  let w = Array.length xs in
  let out = Array.make w 0 in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, c = full_adder t xs.(i) ys.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  (out, !carry)

(* Unsigned comparison xs < ys (or <=): chain from MSB. *)
let compare_lit t xs ys ~strict =
  let w = Array.length xs in
  (* lt_i: result considering bits [0..i]. *)
  let acc = ref (if strict then lit_false t else lit_true t) in
  for i = 0 to w - 1 do
    let xi = xs.(i) and yi = ys.(i) in
    let x_lt_y = gate_and t (Sat.lit_negate xi) yi in
    let x_eq_y = Sat.lit_negate (gate_xor t xi yi) in
    acc := gate_or t x_lt_y (gate_and t x_eq_y !acc)
  done;
  !acc

let rec term_bits t (tm : Term.t) =
  match Hashtbl.find_opt t.bits tm.Term.tid with
  | Some bs -> bs
  | None ->
    let width = match tm.Term.sort with Sort.Bv w -> w | _ -> invalid_arg "Bitblast.term_bits: not a bit-vector" in
    let bs =
      match tm.Term.node with
      | Term.Bv_lit { value; _ } ->
        Array.init width (fun i -> if Bigint.testbit value i then lit_true t else lit_false t)
      | Term.App (_, []) -> Array.init width (fun _ -> fresh t)
      | Term.Ite (c, a, b) ->
        let cl = atom_literal t c in
        let ba = term_bits t a and bb = term_bits t b in
        Array.init width (fun i -> gate_ite t cl ba.(i) bb.(i))
      | Term.Bv_op (op, args) -> blast_op t op args width
      | _ -> invalid_arg "Bitblast.term_bits: unsupported bit-vector term"
    in
    Hashtbl.replace t.bits tm.Term.tid bs;
    bs

and blast_op t op args width =
  match (op, args) with
  | Term.Band, [ a; b ] ->
    let xa = term_bits t a and xb = term_bits t b in
    Array.init width (fun i -> gate_and t xa.(i) xb.(i))
  | Term.Bor, [ a; b ] ->
    let xa = term_bits t a and xb = term_bits t b in
    Array.init width (fun i -> gate_or t xa.(i) xb.(i))
  | Term.Bxor, [ a; b ] ->
    let xa = term_bits t a and xb = term_bits t b in
    Array.init width (fun i -> gate_xor t xa.(i) xb.(i))
  | Term.Bnot, [ a ] ->
    let xa = term_bits t a in
    Array.init width (fun i -> Sat.lit_negate xa.(i))
  | Term.Badd, [ a; b ] ->
    let xa = term_bits t a and xb = term_bits t b in
    fst (ripple_add t xa xb (lit_false t))
  | Term.Bsub, [ a; b ] ->
    let xa = term_bits t a and xb = term_bits t b in
    let nb = Array.map Sat.lit_negate xb in
    fst (ripple_add t xa nb (lit_true t))
  | Term.Bneg, [ a ] ->
    let xa = term_bits t a in
    let na = Array.map Sat.lit_negate xa in
    let zero = Array.make width (lit_false t) in
    fst (ripple_add t na zero (lit_true t))
  | Term.Bmul, [ a; b ] ->
    (* Shift-add partial products. *)
    let xa = term_bits t a and xb = term_bits t b in
    let acc = ref (Array.make width (lit_false t)) in
    for i = 0 to width - 1 do
      (* partial = (a << i) AND-gated by b_i *)
      let partial =
        Array.init width (fun j -> if j < i then lit_false t else gate_and t xa.(j - i) xb.(i))
      in
      acc := fst (ripple_add t !acc partial (lit_false t))
    done;
    !acc
  | Term.Bshl, [ a; { Term.node = Term.Int_lit k; _ } ] ->
    let xa = term_bits t a in
    let k = Bigint.to_int_exn k in
    Array.init width (fun j -> if j < k then lit_false t else xa.(j - k))
  | Term.Blshr, [ a; { Term.node = Term.Int_lit k; _ } ] ->
    let xa = term_bits t a in
    let k = Bigint.to_int_exn k in
    Array.init width (fun j -> if j + k < width then xa.(j + k) else lit_false t)
  | Term.Bconcat, [ a; b ] ->
    let xa = term_bits t a and xb = term_bits t b in
    let wb = Array.length xb in
    Array.init width (fun j -> if j < wb then xb.(j) else xa.(j - wb))
  | Term.Bextract (_, lo), [ a ] ->
    let xa = term_bits t a in
    Array.init width (fun j -> xa.(j + lo))
  | _ -> invalid_arg "Bitblast.blast_op: unsupported operation"

and atom_literal t (tm : Term.t) =
  match Hashtbl.find_opt t.atoms tm.Term.tid with
  | Some l -> l
  | None ->
    let l =
      match tm.Term.node with
      | Term.True -> lit_true t
      | Term.False -> lit_false t
      | Term.Not a -> Sat.lit_negate (atom_literal t a)
      | Term.And xs ->
        List.fold_left (fun acc x -> gate_and t acc (atom_literal t x)) (lit_true t) xs
      | Term.Or xs ->
        List.fold_left (fun acc x -> gate_or t acc (atom_literal t x)) (lit_false t) xs
      | Term.Implies (a, b) ->
        gate_or t (Sat.lit_negate (atom_literal t a)) (atom_literal t b)
      | Term.Iff (a, b) -> Sat.lit_negate (gate_xor t (atom_literal t a) (atom_literal t b))
      | Term.Ite (c, a, b) -> gate_ite t (atom_literal t c) (atom_literal t a) (atom_literal t b)
      | Term.Eq (a, b) when (match a.Term.sort with Sort.Bv _ -> true | _ -> false) ->
        let xa = term_bits t a and xb = term_bits t b in
        let acc = ref (lit_true t) in
        Array.iteri (fun i xi -> acc := gate_and t !acc (Sat.lit_negate (gate_xor t xi xb.(i)))) xa;
        !acc
      | Term.Bv_op (Term.Bule, [ a; b ]) ->
        compare_lit t (term_bits t a) (term_bits t b) ~strict:false
      | Term.Bv_op (Term.Bult, [ a; b ]) ->
        compare_lit t (term_bits t a) (term_bits t b) ~strict:true
      | Term.App (_, []) when Sort.equal tm.Term.sort Sort.Bool -> fresh t
      | _ -> invalid_arg ("Bitblast.atom_literal: unsupported atom " ^ Term.to_string tm)
    in
    Hashtbl.replace t.atoms tm.Term.tid l;
    l
