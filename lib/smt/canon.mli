(** Canonical term serialization — the byte sequence the verification
    cache fingerprints.

    {!Term.to_string} is fine for humans but unsuitable as a fingerprint
    input for two reasons:

    - {b Fresh-symbol counters are run-dependent.}  Symbols minted by
      [Term.Sym.fresh] print as ["name!N"] with a global counter, and under
      [jobs > 1] the counter interleaves between domains — the same logical
      VC would serialize differently run to run, destroying both cache hits
      and the determinism of hit/miss statistics.  Here every fresh symbol
      is renamed to ["name!k"] where [k] is the order of first occurrence
      {e within the serialized payload}: distinct symbols stay distinct,
      identical structure serializes identically, and the numbering no
      longer depends on global construction order.
    - {b Sorts are invisible.}  The pretty-printer renders applications by
      name only; a program edit that changes a symbol's sort while leaving
      the printed tree unchanged must not produce the same fingerprint, so
      this serialization annotates every application head and bound
      variable with its sort.

    One {!serializer} must span everything that ends up in one fingerprint
    (context axioms, hypotheses, goal): the fresh-symbol renaming table is
    shared, which is what keeps a constant appearing in both a hypothesis
    and the goal recognizably the same symbol. *)

type serializer

val create : unit -> serializer
(** A fresh serializer with an empty fresh-symbol renaming table. *)

val add_term : serializer -> Term.t -> unit
(** Append the canonical rendering of one term to the payload. *)

val add_string : serializer -> string -> unit
(** Append a raw component (profile discriminants, budget renderings,
    section separators). *)

val contents : serializer -> string
(** The accumulated canonical payload. *)

val term_to_string : Term.t -> string
(** One-shot canonical rendering of a single term (its own renaming
    table); for tests and debugging. *)
