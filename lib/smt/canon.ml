type serializer = {
  buf : Buffer.t;
  (* fresh symbol sid -> canonical alias, assigned in order of first
     occurrence in the payload *)
  alias : (int, string) Hashtbl.t;
  mutable next_alias : int;
}

let create () = { buf = Buffer.create 4096; alias = Hashtbl.create 32; next_alias = 0 }

(* A symbol is "fresh" when its name carries a ['!' digits] suffix — the
   shape [Term.Sym.fresh] mints and nothing else produces (declared
   symbols come from source-level names). *)
let fresh_prefix name =
  match String.rindex_opt name '!' with
  | None -> None
  | Some i ->
    let n = String.length name in
    let rec digits j = j >= n || (name.[j] >= '0' && name.[j] <= '9' && digits (j + 1)) in
    if i + 1 < n && digits (i + 1) then Some (String.sub name 0 i) else None

let sym_name s (f : Term.sym) =
  match fresh_prefix f.Term.sname with
  | None -> f.Term.sname
  | Some prefix -> (
    match Hashtbl.find_opt s.alias f.Term.sid with
    | Some a -> a
    | None ->
      let a = Printf.sprintf "%s!%d" prefix s.next_alias in
      s.next_alias <- s.next_alias + 1;
      Hashtbl.add s.alias f.Term.sid a;
      a)

let bvop_tag : Term.bvop -> string = function
  | Term.Band -> "bvand"
  | Term.Bor -> "bvor"
  | Term.Bxor -> "bvxor"
  | Term.Bnot -> "bvnot"
  | Term.Badd -> "bvadd"
  | Term.Bsub -> "bvsub"
  | Term.Bmul -> "bvmul"
  | Term.Bneg -> "bvneg"
  | Term.Bshl -> "bvshl"
  | Term.Blshr -> "bvlshr"
  | Term.Bule -> "bvule"
  | Term.Bult -> "bvult"
  | Term.Bconcat -> "concat"
  | Term.Bextract (hi, lo) -> Printf.sprintf "extract:%d:%d" hi lo

let rec emit s (t : Term.t) =
  let b = s.buf in
  let list tag xs =
    Buffer.add_char b '(';
    Buffer.add_string b tag;
    List.iter
      (fun x ->
        Buffer.add_char b ' ';
        emit s x)
      xs;
    Buffer.add_char b ')'
  in
  match t.Term.node with
  | Term.True -> Buffer.add_string b "true"
  | Term.False -> Buffer.add_string b "false"
  | Term.Int_lit v -> Buffer.add_string b (Vbase.Bigint.to_string v)
  | Term.Bv_lit { width; value } ->
    Buffer.add_string b (Printf.sprintf "#bv%d:%s" width (Vbase.Bigint.to_string value))
  | Term.Bvar (x, srt) ->
    Buffer.add_string b x;
    Buffer.add_char b ':';
    Buffer.add_string b (Sort.to_string srt)
  | Term.App (f, []) ->
    Buffer.add_string b (sym_name s f);
    Buffer.add_char b ':';
    Buffer.add_string b (Sort.to_string f.Term.sret)
  | Term.App (f, xs) -> list (sym_name s f ^ ":" ^ Sort.to_string f.Term.sret) xs
  | Term.Eq (a, x) -> list "=" [ a; x ]
  | Term.Not a -> list "not" [ a ]
  | Term.And xs -> list "and" xs
  | Term.Or xs -> list "or" xs
  | Term.Implies (a, x) -> list "=>" [ a; x ]
  | Term.Iff (a, x) -> list "iff" [ a; x ]
  | Term.Ite (a, x, y) -> list "ite" [ a; x; y ]
  | Term.Add xs -> list "+" xs
  | Term.Sub (a, x) -> list "-" [ a; x ]
  | Term.Mul (a, x) -> list "*" [ a; x ]
  | Term.Neg a -> list "neg" [ a ]
  | Term.Le (a, x) -> list "<=" [ a; x ]
  | Term.Lt (a, x) -> list "<" [ a; x ]
  | Term.Idiv (a, x) -> list "div" [ a; x ]
  | Term.Imod (a, x) -> list "mod" [ a; x ]
  | Term.Bv_op (o, xs) -> list (bvop_tag o) xs
  | Term.Forall q | Term.Exists q ->
    let kw = match t.Term.node with Term.Forall _ -> "forall" | _ -> "exists" in
    Buffer.add_char b '(';
    Buffer.add_string b kw;
    Buffer.add_string b " (";
    List.iteri
      (fun i (x, srt) ->
        if i > 0 then Buffer.add_char b ' ';
        Buffer.add_string b x;
        Buffer.add_char b ':';
        Buffer.add_string b (Sort.to_string srt))
      q.Term.qvars;
    Buffer.add_char b ')';
    List.iter
      (fun pats ->
        Buffer.add_string b " :pattern ";
        list "" pats)
      q.Term.triggers;
    Buffer.add_char b ' ';
    emit s q.Term.body;
    Buffer.add_char b ')'

let add_term s t =
  emit s t;
  Buffer.add_char s.buf '\n'

let add_string s x =
  Buffer.add_string s.buf x;
  Buffer.add_char s.buf '\n'

let contents s = Buffer.contents s.buf

let term_to_string t =
  let s = create () in
  emit s t;
  contents s
