(** SMT sorts.

    Uninterpreted sorts carry a name; the verifier encodes datatypes,
    sequences, maps and heap references as uninterpreted sorts plus
    quantified axioms (this is the encoding style whose cost the paper's
    benchmarks measure). *)

type t =
  | Bool
  | Int
  | Bv of int  (** fixed-width bit-vector *)
  | Usort of string  (** uninterpreted sort *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
