(** SMT sorts.

    Uninterpreted sorts carry a name; the verifier encodes datatypes,
    sequences, maps and heap references as uninterpreted sorts plus
    quantified axioms (this is the encoding style whose cost the paper's
    benchmarks measure). *)

type t =
  | Bool
  | Int
  | Bv of int  (** fixed-width bit-vector *)
  | Usort of string  (** uninterpreted sort *)

val equal : t -> t -> bool
(** Structural equality of sorts. *)

val compare : t -> t -> int
(** Total order on sorts, suitable for [Map]/[Set] functors. *)

val hash : t -> int
(** Hash consistent with {!equal}. *)

val to_string : t -> string
(** SMT-LIB-style rendering, e.g. ["Bool"], ["(_ BitVec 64)"]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer wrapping {!to_string}. *)
