(** Hash-consed SMT terms.

    The whole pipeline — VC generation, E-matching, theory solvers, query
    printing — shares this representation.  Terms are maximally shared
    (physical equality coincides with structural equality), which makes the
    term-size statistics the benchmarks report meaningful and keeps
    substitution cheap.

    Construction is thread-safe: a single mutex guards the hash-cons tables
    so that the 8-core verification runs of Figure 9 can build terms from
    multiple domains. *)

type sym = private {
  sid : int;  (** unique id *)
  sname : string;
  sargs : Sort.t list;
  sret : Sort.t;
}

type bvop =
  | Band
  | Bor
  | Bxor
  | Bnot
  | Badd
  | Bsub
  | Bmul
  | Bneg
  | Bshl  (** shift left by constant amount (second arg must be a literal) *)
  | Blshr  (** logical shift right by constant amount *)
  | Bule
  | Bult
  | Bconcat
  | Bextract of int * int  (** [Bextract (hi, lo)], inclusive bounds *)

type t = private { tid : int; node : node; sort : Sort.t }

and node =
  | True
  | False
  | Int_lit of Vbase.Bigint.t
  | Bv_lit of { width : int; value : Vbase.Bigint.t }
  | Bvar of string * Sort.t  (** bound variable (occurs under a quantifier) *)
  | App of sym * t list  (** constants are 0-ary applications *)
  | Eq of t * t
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Ite of t * t * t
  | Add of t list
  | Sub of t * t
  | Mul of t * t
  | Neg of t
  | Le of t * t
  | Lt of t * t
  | Idiv of t * t  (** Euclidean integer division *)
  | Imod of t * t  (** Euclidean remainder, in [0, |divisor|) *)
  | Bv_op of bvop * t list
  | Forall of quant
  | Exists of quant

and quant = { qvars : (string * Sort.t) list; triggers : t list list; body : t }

(** {2 Symbols} *)

module Sym : sig
  val declare : string -> Sort.t list -> Sort.t -> sym
  (** Declares (or retrieves) the symbol with this name; raises
      [Invalid_argument] if redeclared at a different signature. *)

  val fresh : string -> Sort.t list -> Sort.t -> sym
  (** A brand-new symbol whose name starts with the given prefix. *)

  val equal : sym -> sym -> bool
  (** Symbol identity (by unique id). *)

  val hash : sym -> int
  (** Hash consistent with {!equal}. *)
end

(** {2 Constructors}

    All constructors perform light simplification (constant folding,
    flattening of [and]/[or]/[+], double-negation elimination) and check
    argument sorts, raising [Invalid_argument] on ill-sorted input. *)

val tru : t
val fls : t
val bool_lit : bool -> t
val int_lit : Vbase.Bigint.t -> t
val int_of : int -> t
val bv_lit : width:int -> Vbase.Bigint.t -> t
val bvar : string -> Sort.t -> t
val const : sym -> t
val app : sym -> t list -> t
val eq : t -> t -> t
val neq : t -> t -> t
val distinct : t list -> t
val not_ : t -> t
val and_ : t list -> t
val or_ : t list -> t
val implies : t -> t -> t
val iff : t -> t -> t
val ite : t -> t -> t -> t
val add : t list -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val le : t -> t -> t
val lt : t -> t -> t
val ge : t -> t -> t
val gt : t -> t -> t
val idiv : t -> t -> t
val imod : t -> t -> t
val bv_op : bvop -> t list -> t

val forall : ?triggers:t list list -> (string * Sort.t) list -> t -> t
(** Empty [vars] collapses to the body. *)

val exists : ?triggers:t list list -> (string * Sort.t) list -> t -> t
(** Existential counterpart of {!forall}; empty [vars] collapses to the
    body. *)

(** {2 Operations} *)

val equal : t -> t -> bool
(** Term equality; physical thanks to hash-consing, so O(1). *)

val compare : t -> t -> int
(** Total order by hash-cons id (arbitrary but stable within a run). *)

val hash : t -> int
(** Hash consistent with {!equal}; O(1). *)

val sort_of : t -> Sort.t
(** The sort a term was constructed at. *)

val subst : (string * t) list -> t -> t
(** Capture-free substitution of bound variables by name.  Binder variable
    names are assumed unique per binder (the constructors do not enforce
    this; VC generation freshens names). *)

val free_bvars : t -> (string * Sort.t) list
(** Bound variables occurring free in the term, each listed once. *)

val size : t -> int
(** Number of nodes counted with sharing (each distinct subterm once). *)

val tree_size : t -> int
(** Number of nodes counted as a tree (duplicates counted repeatedly);
    this is what dominates printed query size. *)

val fold_subterms : (('a -> t -> 'a) -> 'a -> t -> 'a)
(** [fold_subterms f acc t] folds over every distinct subterm of [t]
    (including [t] itself), each visited exactly once. *)

val pp : Format.formatter -> t -> unit
(** SMT-LIB-flavoured printing. *)

val to_string : t -> string
(** SMT-LIB-flavoured rendering as a string; see {!pp}. *)

val printed_size : t -> int
(** Byte count of the SMT-LIB rendering, without building the string when
    avoidable; used for the paper's "SMT (MB)" query-size statistics. *)
