(** Quantifier-trigger selection policies.

    The paper (§3.1) attributes much of Verus's solver-performance advantage
    to *conservative* trigger selection — picking as few patterns as
    possible — where Dafny-style tools default to broad triggers that cause
    instantiation blowups.  Both policies are implemented here so the
    benchmark harness can compare them on identical queries. *)

type policy = Conservative | Liberal

val select : policy -> Term.quant -> Term.t list list
(** Trigger groups for a quantifier.  Explicit triggers on the quantifier
    are honoured as-is; otherwise candidates are uninterpreted application
    subterms of the body mentioning at least one bound variable.

    [Conservative] returns a single minimal group covering all bound
    variables; [Liberal] returns one group per candidate (each greedily
    completed to cover all variables), the Dafny-style behaviour. *)
